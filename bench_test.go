// Package rfpsim_bench regenerates every paper table and figure as a Go
// benchmark: `go test -bench=. -benchmem` runs a reduced version of each
// experiment and reports its headline numbers as custom benchmark metrics
// (speedup_pct, coverage_pct, ...), alongside the simulator's raw
// throughput. The full-fidelity reproduction is `go run ./cmd/experiments
// -run all`; these benches keep every experiment's machinery exercised and
// timed.
package rfpsim_bench

import (
	"context"

	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/core"
	"rfpsim/internal/experiments"
	"rfpsim/internal/isa"
	"rfpsim/internal/trace"
)

// benchOpts returns a small but representative option set so a single
// benchmark iteration stays in the tens-of-milliseconds range.
func benchOpts() experiments.Options {
	names := []string{
		"spec06_hmmer", "spec06_mcf", "spec06_xalancbmk", "spec06_wrf",
		"spec17_deepsjeng", "spark",
	}
	specs := make([]trace.Spec, 0, len(names))
	for _, n := range names {
		s, ok := trace.ByName(n)
		if !ok {
			panic("missing workload " + n)
		}
		specs = append(specs, s)
	}
	return experiments.Options{WarmupUops: 5000, MeasureUops: 10000, Workloads: specs}
}

// runExperiment is the shared driver: run the experiment once per b.N and
// surface its metrics.
func runExperiment(b *testing.B, id string, metricKeys ...string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	opts := benchOpts()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := e.Run(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, k := range metricKeys {
		if v, ok := last.Metrics[k]; ok {
			b.ReportMetric(v*100, k+"_pct")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed in uops/s on
// the baseline core — the cost model everything else is built on.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, _ := trace.ByName("spec06_gcc")
	c := core.New(config.Baseline(), spec.New())
	c.WarmCaches()
	b.ResetTimer()
	const chunk = 10000
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(context.Background(), chunk); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(chunk*b.N)/b.Elapsed().Seconds(), "uops/s")
}

// BenchmarkRFPSimulatorThroughput measures simulation speed with the full
// RFP machinery active.
func BenchmarkRFPSimulatorThroughput(b *testing.B) {
	spec, _ := trace.ByName("spec06_gcc")
	c := core.New(config.Baseline().WithRFP(), spec.New())
	c.WarmCaches()
	b.ResetTimer()
	const chunk = 10000
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(context.Background(), chunk); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(chunk*b.N)/b.Elapsed().Seconds(), "uops/s")
}

// BenchmarkFig1OracleHeadroom regenerates Figure 1 (oracle prefetching
// between adjacent hierarchy levels).
func BenchmarkFig1OracleHeadroom(b *testing.B) {
	runExperiment(b, "fig1", "speedup_L1->RF", "speedup_Mem->LLC")
}

// BenchmarkFig2LoadDistribution regenerates Figure 2 (demand load hit
// distribution).
func BenchmarkFig2LoadDistribution(b *testing.B) {
	runExperiment(b, "fig2", "frac_L1")
}

// BenchmarkFig10RFPBaseline regenerates Figure 10 (RFP speedup and
// coverage on the baseline core).
func BenchmarkFig10RFPBaseline(b *testing.B) {
	runExperiment(b, "fig10", "speedup", "coverage")
}

// BenchmarkFig11PerWorkload regenerates Figure 11 (per-workload gain vs
// coverage).
func BenchmarkFig11PerWorkload(b *testing.B) {
	runExperiment(b, "fig11", "frac_improved")
}

// BenchmarkFig12Upscaled regenerates Figure 12 (RFP on Baseline-2x).
func BenchmarkFig12Upscaled(b *testing.B) {
	runExperiment(b, "fig12", "speedup", "coverage")
}

// BenchmarkFig13Timeliness regenerates Figure 13 (injected/executed/useful
// funnel).
func BenchmarkFig13Timeliness(b *testing.B) {
	runExperiment(b, "fig13", "injected", "executed", "useful")
}

// BenchmarkFig14DedicatedPorts regenerates Figure 14 (dedicated RFP L1
// ports).
func BenchmarkFig14DedicatedPorts(b *testing.B) {
	runExperiment(b, "fig14", "speedup_shared", "speedup_dedicated")
}

// BenchmarkEffectiveness regenerates §5.2.2 (fully vs partially hidden).
func BenchmarkEffectiveness(b *testing.B) {
	runExperiment(b, "effectiveness", "fully_hidden", "partial")
}

// BenchmarkFig15VPvsRFP regenerates Figure 15 (RFP vs value prediction and
// the VP+RFP fusion).
func BenchmarkFig15VPvsRFP(b *testing.B) {
	runExperiment(b, "fig15", "speedup_rfp", "speedup_vp_eves", "speedup_vp+rfp")
}

// BenchmarkFig16DLVPWaterfall regenerates Figure 16 (DLVP constraints).
func BenchmarkFig16DLVPWaterfall(b *testing.B) {
	runExperiment(b, "fig16", "address_predictable", "probe_in_time")
}

// BenchmarkFig17Confidence regenerates Figure 17 (confidence width sweep).
func BenchmarkFig17Confidence(b *testing.B) {
	runExperiment(b, "fig17", "speedup_1bit", "speedup_4bit")
}

// BenchmarkFig18PTSize regenerates Figure 18 (Prefetch Table size sweep).
func BenchmarkFig18PTSize(b *testing.B) {
	runExperiment(b, "fig18", "speedup_1k", "speedup_16k")
}

// BenchmarkL1LatencySensitivity regenerates §5.5.2.
func BenchmarkL1LatencySensitivity(b *testing.B) {
	runExperiment(b, "l1lat", "speedup_l1_5", "speedup_l1_6")
}

// BenchmarkContextPrefetcher regenerates §5.5.3.
func BenchmarkContextPrefetcher(b *testing.B) {
	runExperiment(b, "context", "speedup_stride", "speedup_context")
}

// BenchmarkPATOptimization regenerates §5.5.4 (PAT area optimization).
func BenchmarkPATOptimization(b *testing.B) {
	runExperiment(b, "pat", "speedup_full", "speedup_pat", "storage_saving")
}

// BenchmarkSimplifications regenerates §5.5.5 (pipeline simplifications).
func BenchmarkSimplifications(b *testing.B) {
	runExperiment(b, "simplifications", "speedup_0")
}

// BenchmarkTable1Storage regenerates Table 1 (storage accounting; no
// simulation).
func BenchmarkTable1Storage(b *testing.B) {
	runExperiment(b, "table1")
}

// BenchmarkWorkloadGeneration measures trace generation speed alone (the
// substrate under everything).
func BenchmarkWorkloadGeneration(b *testing.B) {
	spec, _ := trace.ByName("spark")
	gen := spec.New()
	var op isa.MicroOp
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&op)
	}
}

// BenchmarkPowerAnalysis regenerates the quantified §5.6 energy study.
func BenchmarkPowerAnalysis(b *testing.B) {
	runExperiment(b, "power", "epu_baseline", "epu_rfp")
}

// BenchmarkBandwidth regenerates the quantified §5.6 L1-traffic study.
func BenchmarkBandwidth(b *testing.B) {
	runExperiment(b, "bandwidth", "l1apu_baseline", "l1apu_rfp")
}

// BenchmarkCriticalRFP regenerates the criticality-targeted extension.
func BenchmarkCriticalRFP(b *testing.B) {
	runExperiment(b, "critical", "speedup_full", "speedup_critical")
}

// BenchmarkHWPrefetchComposition regenerates the cache-prefetcher
// orthogonality check.
func BenchmarkHWPrefetchComposition(b *testing.B) {
	runExperiment(b, "hwprefetch", "speedup_rfp_on_hw")
}

// BenchmarkBPQuality regenerates the branch-predictor-quality cross.
func BenchmarkBPQuality(b *testing.B) {
	runExperiment(b, "bpquality", "speedup_tage", "speedup_gshare")
}

// BenchmarkLateAlloc regenerates the §3.3 register file variation.
func BenchmarkLateAlloc(b *testing.B) {
	runExperiment(b, "latealloc", "speedup_rename", "speedup_late")
}

// BenchmarkCycleAccounting regenerates the top-down slot breakdown.
func BenchmarkCycleAccounting(b *testing.B) {
	runExperiment(b, "cycleacct", "retired_rfp", "loadstall_baseline", "loadstall_rfp")
}
