module rfpsim

go 1.24
