package tracefile

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"rfpsim/internal/isa"
	"rfpsim/internal/trace"
)

func roundTrip(t *testing.T, ops []isa.MicroOp) []isa.MicroOp {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range ops {
		if err := w.Write(&ops[i]); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf, "test")
	if err != nil {
		t.Fatal(err)
	}
	var out []isa.MicroOp
	var op isa.MicroOp
	for r.Next(&op) {
		out = append(out, op)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("reader error: %v", err)
	}
	return out
}

func TestRoundTripBasic(t *testing.T) {
	ops := []isa.MicroOp{
		{PC: 0x1000, Class: isa.OpLoad, Dst: 3, Src1: 1, Src2: isa.NoReg, Addr: 0x8000, Size: 8, Value: 42},
		{PC: 0x1004, Class: isa.OpALU, Dst: 4, Src1: 3, Src2: 2},
		{PC: 0x1008, Class: isa.OpStore, Dst: isa.NoReg, Src1: 1, Src2: 4, Addr: 0x9000, Size: 8},
		{PC: 0x100c, Class: isa.OpBranch, Dst: isa.NoReg, Src1: 4, Src2: isa.NoReg, Taken: true, Target: 0x1000},
	}
	got := roundTrip(t, ops)
	if len(got) != len(ops) {
		t.Fatalf("decoded %d of %d", len(got), len(ops))
	}
	for i := range ops {
		want := ops[i]
		want.Seq = uint64(i) // reader assigns sequence numbers
		if got[i] != want {
			t.Errorf("record %d:\n want %+v\n got  %+v", i, want, got[i])
		}
	}
}

func TestRoundTripSyntheticWorkload(t *testing.T) {
	// A real workload through the codec must survive bit-exactly, and the
	// reader must behave as a drop-in isa.Generator.
	spec, ok := trace.ByName("spec06_gcc")
	if !ok {
		t.Fatal("workload missing")
	}
	gen := spec.New()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want []isa.MicroOp
	var op isa.MicroOp
	for i := 0; i < 20000; i++ {
		gen.Next(&op)
		want = append(want, op)
		if err := w.Write(&op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 20000 {
		t.Errorf("count = %d", w.Count())
	}
	// Compression sanity: delta varints should be well under the 46-byte
	// fixed-width record.
	if perOp := float64(buf.Len()) / 20000; perOp > 25 {
		t.Errorf("encoded %.1f bytes/op, too large for a compact format", perOp)
	}

	r, err := NewReader(&buf, spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != spec.Name {
		t.Error("reader name mismatch")
	}
	for i := range want {
		if !r.Next(&op) {
			t.Fatalf("trace ended at %d: %v", i, r.Err())
		}
		if op != want[i] {
			t.Fatalf("record %d mismatch:\n want %+v\n got  %+v", i, want[i], op)
		}
	}
	if r.Next(&op) {
		t.Error("trace did not end")
	}
	if err := r.Err(); err != nil {
		t.Errorf("clean EOF reported as error: %v", err)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf, "empty")
	if err != nil {
		t.Fatal(err)
	}
	var op isa.MicroOp
	if r.Next(&op) {
		t.Error("empty trace produced a record")
	}
	if err := r.Err(); err != nil {
		t.Errorf("empty trace EOF is an error: %v", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("NOPE0123456789ABCDEF")), "x")
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestBadVersionRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(Magic[:])
	buf.Write([]byte{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	_, err := NewReader(&buf, "x")
	if !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestTruncatedHeaderRejected(t *testing.T) {
	_, err := NewReader(bytes.NewReader(Magic[:]), "x")
	if err == nil {
		t.Error("truncated header accepted")
	}
}

func TestTruncatedRecordReported(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	op := isa.MicroOp{PC: 0x4000, Class: isa.OpLoad, Dst: 1, Src1: 2, Src2: isa.NoReg, Addr: 0xFFF0, Size: 8}
	if err := w.Write(&op); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	r, err := NewReader(bytes.NewReader(trunc), "x")
	if err != nil {
		t.Fatal(err)
	}
	var got isa.MicroOp
	if r.Next(&got) {
		t.Error("truncated record decoded")
	}
	if r.Err() == nil {
		t.Error("truncation not reported as an error")
	}
}

// Property: any sequence of micro-ops round-trips exactly (with Seq
// renumbered).
func TestRoundTripProperty(t *testing.T) {
	f := func(raw []struct {
		PC, Addr, Value, Target uint64
		Class, Dst, S1, S2, Sz  uint8
		Taken                   bool
	}) bool {
		ops := make([]isa.MicroOp, len(raw))
		for i, r := range raw {
			ops[i] = isa.MicroOp{
				PC:    r.PC,
				Class: isa.OpClass(r.Class % uint8(isa.NumOpClasses)),
				Dst:   isa.RegID(r.Dst), Src1: isa.RegID(r.S1), Src2: isa.RegID(r.S2),
				Addr: r.Addr, Size: r.Sz, Value: r.Value, Taken: r.Taken, Target: r.Target,
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i := range ops {
			if w.Write(&ops[i]) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf, "prop")
		if err != nil {
			return false
		}
		var op isa.MicroOp
		for i := range ops {
			if !r.Next(&op) {
				return false
			}
			want := ops[i]
			want.Seq = uint64(i)
			if op != want {
				return false
			}
		}
		return !r.Next(&op) && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 127, -128, 1 << 40, -(1 << 40), -9e15} {
		if got := unzig(zigzag(v)); got != v {
			t.Errorf("zigzag(%d) round-trip = %d", v, got)
		}
	}
}

// The reader must be usable wherever an isa.Generator is expected.
var _ isa.Generator = (*Reader)(nil)

// The writer must accept any io.Writer.
var _ io.Writer = (*bytes.Buffer)(nil)

// failWriter errors after n bytes, exercising the writer's error paths.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, io.ErrClosedPipe
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, io.ErrClosedPipe
	}
	return n, nil
}

func TestWriterErrorPropagation(t *testing.T) {
	op := isa.MicroOp{PC: 0x10, Class: isa.OpALU, Dst: 1, Src1: 2, Src2: isa.NoReg}
	// Fail during the header.
	w := NewWriter(&failWriter{left: 2})
	if err := w.Write(&op); err == nil {
		if err := w.Flush(); err == nil {
			t.Error("header write error swallowed")
		}
	}
	// Fail mid-record: enough for the header, not the stream.
	w2 := NewWriter(&failWriter{left: 20})
	var err error
	for i := 0; i < 100000 && err == nil; i++ {
		err = w2.Write(&op)
		if err == nil {
			err = w2.Flush()
		}
	}
	if err == nil {
		t.Error("record write error never surfaced")
	}
}

func TestFlushOnEmptyWritesHeaderOnce(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 16 { // magic(4) + version(2) + flags(2) + count(8)
		t.Errorf("double flush wrote %d bytes, want one 16-byte header", buf.Len())
	}
}

func TestReaderNextAfterError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	op := isa.MicroOp{PC: 0x4000, Class: isa.OpLoad, Dst: 1, Src1: 2, Src2: isa.NoReg, Addr: 0xF0, Size: 8}
	w.Write(&op)
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-1]
	r, err := NewReader(bytes.NewReader(trunc), "x")
	if err != nil {
		t.Fatal(err)
	}
	var got isa.MicroOp
	if r.Next(&got) {
		t.Fatal("truncated record decoded")
	}
	// A second Next must stay failed and not panic.
	if r.Next(&got) {
		t.Error("Next succeeded after an error")
	}
	if r.Err() == nil {
		t.Error("error lost")
	}
}
