package tracefile

import (
	"bytes"
	"testing"

	"rfpsim/internal/isa"
)

// FuzzTracefileDecode feeds arbitrary bytes to the trace reader: it must
// reject or decode them without panicking, and never loop forever.
func FuzzTracefileDecode(f *testing.F) {
	// Seed with a valid one-record trace and a few corruptions.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	op := isa.MicroOp{PC: 0x40, Class: isa.OpLoad, Dst: 1, Src1: 2, Src2: isa.NoReg, Addr: 0x8000, Size: 8}
	w.Write(&op)
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("RFPT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data), "fuzz")
		if err != nil {
			return // rejected: fine
		}
		var op isa.MicroOp
		for i := 0; i < 1000 && r.Next(&op); i++ {
			if !op.Dst.Valid() && op.Dst != isa.NoReg {
				// Arbitrary bytes may decode to out-of-range registers;
				// the reader's contract is only lossless round-tripping
				// of valid traces, so this is acceptable — the simulator
				// validates uops separately. Nothing to assert here.
				_ = op
			}
		}
	})
}

// FuzzRoundTrip checks that any single uop encodes and decodes losslessly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x40), uint8(6), uint8(1), uint8(2), uint8(255), uint64(0x8000), uint8(8), uint64(42), true, uint64(0))
	f.Fuzz(func(t *testing.T, pc uint64, class, dst, s1, s2 uint8, addr uint64, size uint8, value uint64, taken bool, target uint64) {
		in := isa.MicroOp{
			PC: pc, Class: isa.OpClass(class % uint8(isa.NumOpClasses)),
			Dst: isa.RegID(dst), Src1: isa.RegID(s1), Src2: isa.RegID(s2),
			Addr: addr, Size: size, Value: value, Taken: taken, Target: target,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(&in); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf, "fuzz")
		if err != nil {
			t.Fatal(err)
		}
		var out isa.MicroOp
		if !r.Next(&out) {
			t.Fatalf("decode failed: %v", r.Err())
		}
		in.Seq = 0
		if out != in {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
		}
	})
}
