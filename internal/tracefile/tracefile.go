// Package tracefile defines a compact binary trace format so the simulator
// can consume externally produced micro-op traces (e.g. from a Pin/DynamoRIO
// tool or another simulator) instead of the built-in synthetic suite — the
// main adoption path for anyone wanting to evaluate RFP on their own
// workloads.
//
// Format (little-endian):
//
//	header:  magic "RFPT" | u16 version | u16 flags | u64 uop count (0 = unknown)
//	record:  u8 class | u8 dst | u8 src1 | u8 src2 | u8 size | u8 flags |
//	         uvarint pc | uvarint addr | uvarint value | uvarint target
//
// PCs, addresses, values and targets are delta-encoded against the previous
// record of the same kind (zig-zag varints), which compresses typical traces
// by 4-6x versus fixed-width records. Branch direction lives in record flag
// bit 0.
package tracefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"rfpsim/internal/isa"
)

// Magic identifies a trace file.
var Magic = [4]byte{'R', 'F', 'P', 'T'}

// Version is the current format version.
const Version = 1

// record flag bits.
const (
	flagTaken = 1 << 0
)

// ErrBadMagic reports a file that is not a trace.
var ErrBadMagic = errors.New("tracefile: bad magic")

// ErrBadVersion reports an unsupported format version.
var ErrBadVersion = errors.New("tracefile: unsupported version")

// Writer streams micro-ops to a trace file.
type Writer struct {
	w     *bufio.Writer
	count uint64

	lastPC     uint64
	lastAddr   uint64
	lastValue  uint64
	lastTarget uint64

	headerDone bool
	buf        [binary.MaxVarintLen64]byte
}

// NewWriter wraps w. The header is emitted lazily on the first record; the
// uop count in the header is written as 0 (unknown) because the writer
// cannot seek.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (t *Writer) header() error {
	if t.headerDone {
		return nil
	}
	t.headerDone = true
	if _, err := t.w.Write(Magic[:]); err != nil {
		return err
	}
	var h [12]byte
	binary.LittleEndian.PutUint16(h[0:], Version)
	binary.LittleEndian.PutUint16(h[2:], 0)
	binary.LittleEndian.PutUint64(h[4:], 0) // unknown count
	_, err := t.w.Write(h[:])
	return err
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }
func unzig(v uint64) int64  { return int64(v>>1) ^ -int64(v&1) }
func delta(prev, cur uint64) uint64 {
	return zigzag(int64(cur) - int64(prev))
}

func (t *Writer) varint(v uint64) error {
	n := binary.PutUvarint(t.buf[:], v)
	_, err := t.w.Write(t.buf[:n])
	return err
}

// Write appends one micro-op.
func (t *Writer) Write(op *isa.MicroOp) error {
	if err := t.header(); err != nil {
		return err
	}
	var flags byte
	if op.Taken {
		flags |= flagTaken
	}
	fixed := [6]byte{byte(op.Class), byte(op.Dst), byte(op.Src1), byte(op.Src2), op.Size, flags}
	if _, err := t.w.Write(fixed[:]); err != nil {
		return err
	}
	for _, f := range [4]struct {
		prev *uint64
		cur  uint64
	}{
		{&t.lastPC, op.PC},
		{&t.lastAddr, op.Addr},
		{&t.lastValue, op.Value},
		{&t.lastTarget, op.Target},
	} {
		if err := t.varint(delta(*f.prev, f.cur)); err != nil {
			return err
		}
		*f.prev = f.cur
	}
	t.count++
	return nil
}

// Count returns the number of records written so far.
func (t *Writer) Count() uint64 { return t.count }

// Flush writes buffered data through to the underlying writer.
func (t *Writer) Flush() error {
	if err := t.header(); err != nil { // an empty trace still gets a header
		return err
	}
	return t.w.Flush()
}

// Reader decodes a trace file and implements isa.Generator.
type Reader struct {
	r    *bufio.Reader
	name string
	seq  uint64
	err  error

	lastPC     uint64
	lastAddr   uint64
	lastValue  uint64
	lastTarget uint64
}

// NewReader validates the header and returns a generator named name.
func NewReader(r io.Reader, name string) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("tracefile: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	var h [12]byte
	if _, err := io.ReadFull(br, h[:]); err != nil {
		return nil, fmt.Errorf("tracefile: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(h[0:]); v != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	return &Reader{r: br, name: name}, nil
}

// Name implements isa.Generator.
func (t *Reader) Name() string { return t.name }

// Err returns the first decode error encountered (io.EOF is not an error:
// it is the normal end of the trace).
func (t *Reader) Err() error {
	if t.err == io.EOF {
		return nil
	}
	return t.err
}

// Next implements isa.Generator.
func (t *Reader) Next(op *isa.MicroOp) bool {
	if t.err != nil {
		return false
	}
	var fixed [6]byte
	if _, err := io.ReadFull(t.r, fixed[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.ErrUnexpectedEOF // truncated mid-record: a real error
		}
		t.err = err
		return false
	}
	*op = isa.MicroOp{
		Class: isa.OpClass(fixed[0]),
		Dst:   isa.RegID(fixed[1]),
		Src1:  isa.RegID(fixed[2]),
		Src2:  isa.RegID(fixed[3]),
		Size:  fixed[4],
		Taken: fixed[5]&flagTaken != 0,
	}
	for _, f := range [4]struct {
		prev *uint64
		dst  *uint64
	}{
		{&t.lastPC, &op.PC},
		{&t.lastAddr, &op.Addr},
		{&t.lastValue, &op.Value},
		{&t.lastTarget, &op.Target},
	} {
		d, err := binary.ReadUvarint(t.r)
		if err != nil {
			t.err = fmt.Errorf("tracefile: truncated record: %w", err)
			return false
		}
		*f.prev = uint64(int64(*f.prev) + unzig(d))
		*f.dst = *f.prev
	}
	op.Seq = t.seq
	t.seq++
	return true
}
