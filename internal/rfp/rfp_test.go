package rfp

import (
	"testing"
	"testing/quick"

	"rfpsim/internal/config"
	"rfpsim/internal/isa"
)

// fastConf returns an RFP config whose confidence saturates on every
// repeat, so tests don't depend on the probabilistic counter.
func fastConf() config.RFPConfig {
	cfg := config.DefaultRFP()
	cfg.ConfidenceProb = 1
	return cfg
}

func trainStride(t *Table, pc, base uint64, stride int64, n int) {
	addr := base
	for i := 0; i < n; i++ {
		t.Commit(pc, addr)
		addr = uint64(int64(addr) + stride)
	}
}

func TestTableLearnsStride(t *testing.T) {
	tab := NewTable(fastConf(), 1)
	pc := uint64(0x1000)
	trainStride(tab, pc, 0x8000, 8, 4)
	// Next dynamic instance: base is the last committed (0x8018),
	// inflight becomes 1, so the prediction is 0x8020.
	addr, ok := tab.Allocate(pc)
	if !ok {
		t.Fatal("trained stride not eligible")
	}
	if addr != 0x8020 {
		t.Errorf("predicted %#x, want 0x8020", addr)
	}
}

func TestTableInflightCounterScalesPrediction(t *testing.T) {
	tab := NewTable(fastConf(), 1)
	pc := uint64(0x1000)
	trainStride(tab, pc, 0x8000, 8, 4)
	// Three instances in flight before any commits: predictions must
	// march forward by the stride each time.
	want := []uint64{0x8020, 0x8028, 0x8030}
	for i, w := range want {
		addr, ok := tab.Allocate(pc)
		if !ok || addr != w {
			t.Fatalf("allocation %d: got %#x ok=%v, want %#x", i, addr, ok, w)
		}
	}
	// Commits retire the oldest instance; a new allocation keeps pace.
	tab.Commit(pc, 0x8020)
	addr, ok := tab.Allocate(pc)
	if !ok || addr != 0x8038 {
		t.Fatalf("post-commit allocation got %#x ok=%v, want 0x8038", addr, ok)
	}
}

func TestTableSquashReleasesInflight(t *testing.T) {
	tab := NewTable(fastConf(), 1)
	pc := uint64(0x1000)
	trainStride(tab, pc, 0x8000, 8, 4)
	a1, _ := tab.Allocate(pc)
	tab.Squash(pc)
	a2, _ := tab.Allocate(pc)
	if a1 != a2 {
		t.Errorf("squash did not release inflight slot: %#x vs %#x", a1, a2)
	}
}

func TestTableStrideChangeResetsConfidence(t *testing.T) {
	tab := NewTable(fastConf(), 1)
	pc := uint64(0x1000)
	trainStride(tab, pc, 0x8000, 8, 4)
	if _, ok := tab.Allocate(pc); !ok {
		t.Fatal("not eligible after training")
	}
	tab.Squash(pc)
	// Break the stride.
	tab.Commit(pc, 0x9000)
	if _, ok := tab.Allocate(pc); ok {
		t.Error("still eligible right after a stride break")
	}
}

func TestTableProbabilisticConfidenceIsSlow(t *testing.T) {
	cfg := config.DefaultRFP()
	cfg.ConfidenceProb = 16
	tab := NewTable(cfg, 7)
	pc := uint64(0x2000)
	// A couple of repeats must usually NOT saturate a p=1/16 counter.
	trainStride(tab, pc, 0x8000, 8, 3)
	if _, ok := tab.Allocate(pc); ok {
		t.Error("confidence saturated after 2 stride repeats at p=1/16")
	}
	tab.Squash(pc)
	// But a long run must.
	trainStride(tab, pc, 0x8018, 8, 200)
	if _, ok := tab.Allocate(pc); !ok {
		t.Error("confidence not saturated after 200 repeats")
	}
}

func TestTableWideConfidenceNeedsLongerRuns(t *testing.T) {
	// With w-bit confidence the counter must reach 2^w-1; wider counters
	// need strictly more p=1 increments.
	for _, bits := range []int{1, 2, 3, 4} {
		cfg := fastConf()
		cfg.ConfidenceBits = bits
		tab := NewTable(cfg, 1)
		pc := uint64(0x3000)
		need := 1<<uint(bits) - 1
		// Commit 1 establishes the base, commit 2 sets the stride (and
		// resets confidence), and each further matching commit
		// increments confidence once (p=1). So eligibility requires
		// exactly need+2 commits.
		trainStride(tab, pc, 0x8000, 8, need+1) // conf = need-1
		if _, ok := tab.Allocate(pc); ok {
			t.Errorf("%d-bit: eligible one increment early", bits)
		}
		tab.Squash(pc)
		trainStride(tab, pc, uint64(0x8000+8*(need+1)), 8, 1)
		if _, ok := tab.Allocate(pc); !ok {
			t.Errorf("%d-bit: not eligible at saturation", bits)
		}
	}
}

func TestTableUnencodableStrideNeverEligible(t *testing.T) {
	tab := NewTable(fastConf(), 1)
	pc := uint64(0x4000)
	trainStride(tab, pc, 0x8000, 4096, 50) // stride >> 127
	if _, ok := tab.Allocate(pc); ok {
		t.Error("4KiB stride must not be 8-bit encodable")
	}
}

func TestTableNegativeStride(t *testing.T) {
	tab := NewTable(fastConf(), 1)
	pc := uint64(0x5000)
	trainStride(tab, pc, 0x9000, -16, 5)
	addr, ok := tab.Allocate(pc)
	if !ok {
		t.Fatal("negative stride not learned")
	}
	want := uint64(0x9000 - 16*4 - 16)
	if addr != want {
		t.Errorf("predicted %#x, want %#x", addr, want)
	}
}

func TestTableZeroStride(t *testing.T) {
	tab := NewTable(fastConf(), 1)
	pc := uint64(0x6000)
	for i := 0; i < 5; i++ {
		tab.Commit(pc, 0xABC0)
	}
	addr, ok := tab.Allocate(pc)
	if !ok || addr != 0xABC0 {
		t.Errorf("zero-stride prediction %#x ok=%v, want 0xABC0", addr, ok)
	}
}

func TestTableUtilityBasedEviction(t *testing.T) {
	cfg := fastConf()
	cfg.PTEntries = 8 // one set of 8 ways
	cfg.PTWays = 8
	tab := NewTable(cfg, 1)
	// Fill the set with 8 high-utility strided PCs. PC index uses pc>>2,
	// and sets=1 so all PCs collide.
	for i := 0; i < 8; i++ {
		pc := uint64(0x100 + i*4)
		trainStride(tab, pc, uint64(0x10000*(i+1)), 8, 8)
	}
	// A new fluctuating PC evicts... something; train it so it allocates.
	newPC := uint64(0x200)
	tab.Commit(newPC, 0x999000)
	// All original entries had utility 3; the victim was one of them but
	// the remaining 7 must survive. Count how many are still eligible.
	still := 0
	for i := 0; i < 8; i++ {
		pc := uint64(0x100 + i*4)
		if _, ok := tab.Allocate(pc); ok {
			still++
		}
	}
	if still != 7 {
		t.Errorf("%d high-utility entries survived, want 7", still)
	}
}

func TestTableInflightSaturates(t *testing.T) {
	tab := NewTable(fastConf(), 1)
	pc := uint64(0x7000)
	trainStride(tab, pc, 0x8000, 8, 4)
	for i := 0; i < 500; i++ { // far beyond the 7-bit counter
		tab.Allocate(pc)
	}
	addr, ok := tab.Allocate(pc)
	if !ok {
		t.Fatal("entry lost")
	}
	base := uint64(0x8018)
	if addr != base+8*inflightMax {
		t.Errorf("saturated prediction %#x, want %#x", addr, base+8*inflightMax)
	}
	// Draining commits must not underflow.
	for i := 0; i < 600; i++ {
		tab.Commit(pc, base+uint64(8*(i+1)))
	}
}

// Property: for any (not too large) stride in the encodable range and any
// base, a long training run makes the table predict base + stride*(n+1)
// after n outstanding allocations.
func TestTableStrideLearningProperty(t *testing.T) {
	f := func(strideRaw int8, baseRaw uint32, outstandingRaw uint8) bool {
		stride := int64(strideRaw)
		base := uint64(baseRaw) + 1<<32 // keep adds positive
		outstanding := int(outstandingRaw%8) + 1
		tab := NewTable(fastConf(), 1)
		pc := uint64(0xF00)
		trainStride(tab, pc, base, stride, 10)
		last := uint64(int64(base) + 9*stride)
		var got uint64
		var ok bool
		for i := 0; i < outstanding; i++ {
			got, ok = tab.Allocate(pc)
			if !ok {
				return false
			}
		}
		want := uint64(int64(last) + stride*int64(outstanding))
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPATReconstruct(t *testing.T) {
	p := NewPAT(64, 4)
	addr := uint64(0x123456789)
	idx := p.LookupOrInsert(isa.PageFrame(addr))
	got, ok := p.Reconstruct(idx, uint16(isa.PageOffset(addr)))
	if !ok || got != addr {
		t.Errorf("reconstructed %#x ok=%v, want %#x", got, ok, addr)
	}
	if _, ok := p.Reconstruct(-1, 0); ok {
		t.Error("negative index reconstructed")
	}
	if _, ok := p.Reconstruct(999, 0); ok {
		t.Error("out-of-range index reconstructed")
	}
}

func TestPATSamePageSharesEntry(t *testing.T) {
	p := NewPAT(64, 4)
	i1 := p.LookupOrInsert(isa.PageFrame(0x5000))
	i2 := p.LookupOrInsert(isa.PageFrame(0x5FF8))
	if i1 != i2 {
		t.Error("same page got two PAT entries")
	}
}

func TestPATEvictionCausesStaleness(t *testing.T) {
	p := NewPAT(4, 4) // tiny: one set of 4
	idx0 := p.LookupOrInsert(100)
	// Evict frame 100 by inserting 4 more frames into the same set.
	for f := uint64(101); f <= 104; f++ {
		p.LookupOrInsert(f)
	}
	frame, ok := p.Frame(idx0)
	if ok && frame == 100 {
		t.Error("frame 100 survived 4 conflicting inserts in a 4-way set")
	}
	// The stale pointer now reconstructs a DIFFERENT address — this is
	// the §5.5.4 staleness that surfaces as an RFP mispredict.
	got, ok := p.Reconstruct(idx0, 0x10)
	if ok && got == 100<<isa.PageShift|0x10 {
		t.Error("stale pointer reconstructed the old address")
	}
}

func TestPATGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad PAT geometry did not panic")
		}
	}()
	NewPAT(10, 4)
}

func TestTableGeometryPanics(t *testing.T) {
	cfg := fastConf()
	cfg.PTEntries = 10
	cfg.PTWays = 4
	defer func() {
		if recover() == nil {
			t.Error("bad PT geometry did not panic")
		}
	}()
	NewTable(cfg, 1)
}

func TestTableWithPATLearnsAndPredicts(t *testing.T) {
	cfg := fastConf()
	cfg.UsePAT = true
	tab := NewTable(cfg, 1)
	pc := uint64(0xA000)
	trainStride(tab, pc, 0x40000, 8, 6)
	addr, ok := tab.Allocate(pc)
	if !ok {
		t.Fatal("PAT-mode table not eligible")
	}
	want := uint64(0x40000 + 8*5 + 8)
	if addr != want {
		t.Errorf("PAT-mode predicted %#x, want %#x", addr, want)
	}
}

func TestStorageMatchesTable1(t *testing.T) {
	// Table 1: 1K-entry PT with PAT = 6.5KB; 2K = 12KB (order of
	// magnitude check: our per-entry bits are 16+1+2+8+7+6+12 = 52 → 1K
	// entries = 52Kb = 6.5KB exactly).
	cfg := config.DefaultRFP()
	cfg.UsePAT = true
	rep := Storage(cfg, 128)
	if got := rep.PTBits / 8 / 1024; got != 6 { // 6.5KB truncates to 6
		t.Errorf("PT storage = %dKB (%d bits), want ~6.5KB", got, rep.PTBits)
	}
	if rep.PTBits != 1024*52 {
		t.Errorf("PT bits = %d, want %d", rep.PTBits, 1024*52)
	}
	if rep.PATBits != 64*44 {
		t.Errorf("PAT bits = %d, want %d (Table 1: 352B ≈ 2816b)", rep.PATBits, 64*44)
	}
	if rep.RFPInflightBits != 128 {
		t.Errorf("RFP-inflight bits = %d, want 128", rep.RFPInflightBits)
	}
	// PAT encoding must save roughly half the storage vs full VA.
	full := Storage(config.DefaultRFP(), 128)
	if float64(rep.TotalBits()) > 0.6*float64(full.TotalBits()) {
		t.Errorf("PAT saves too little: %d vs %d bits", rep.TotalBits(), full.TotalBits())
	}
	if full.PATBits != 0 {
		t.Error("full-VA mode reports PAT bits")
	}
}

func TestTableStorageBitsConsistent(t *testing.T) {
	cfg := fastConf()
	tab := NewTable(cfg, 1)
	if tab.StorageBits() != Storage(cfg, 0).PTBits {
		t.Error("Table.StorageBits disagrees with Storage()")
	}
	cfg.UsePAT = true
	tab = NewTable(cfg, 1)
	rep := Storage(cfg, 0)
	if tab.StorageBits() != rep.PTBits+rep.PATBits {
		t.Error("PAT-mode StorageBits mismatch")
	}
}

func TestContextPredictor(t *testing.T) {
	c := NewContext(1024)
	pc, path := uint64(0x100), uint64(0xDEAD)
	if _, ok := c.Predict(pc, path); ok {
		t.Error("cold context predicted")
	}
	for i := 0; i < 5; i++ {
		c.Train(pc, path, 0x7777)
	}
	addr, ok := c.Predict(pc, path)
	if !ok || addr != 0x7777 {
		t.Errorf("context predicted %#x ok=%v", addr, ok)
	}
	// A different path must not hit the same way.
	if addr, ok := c.Predict(pc, 0xBEEF); ok && addr == 0x7777 {
		t.Error("different path aliased to same prediction")
	}
	// Address change resets confidence.
	c.Train(pc, path, 0x8888)
	if _, ok := c.Predict(pc, path); ok {
		t.Error("context still confident after address change")
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(4)
	if q.Cap() != 4 || q.Len() != 0 {
		t.Fatal("fresh queue state wrong")
	}
	for i := 0; i < 4; i++ {
		if !q.Push(Packet{LoadID: i}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(Packet{LoadID: 99}) {
		t.Error("push into full queue succeeded")
	}
	for i := 0; i < 4; i++ {
		p, ok := q.Pop()
		if !ok || p.LoadID != i {
			t.Fatalf("pop %d got %v ok=%v", i, p.LoadID, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop from empty queue succeeded")
	}
}

func TestQueuePeek(t *testing.T) {
	q := NewQueue(2)
	if _, ok := q.Peek(); ok {
		t.Error("peek on empty succeeded")
	}
	q.Push(Packet{LoadID: 7})
	p, ok := q.Peek()
	if !ok || p.LoadID != 7 || q.Len() != 1 {
		t.Error("peek wrong or consumed")
	}
}

func TestQueueDropWhere(t *testing.T) {
	q := NewQueue(8)
	for i := 0; i < 6; i++ {
		q.Push(Packet{LoadID: i})
	}
	q.Pop() // exercise wrap-around bookkeeping
	q.Push(Packet{LoadID: 6})
	q.Push(Packet{LoadID: 7})
	dropped := q.DropWhere(func(p Packet) bool { return p.LoadID%2 == 0 })
	if dropped != 3 { // 2,4,6 (0 was popped)
		t.Errorf("dropped %d, want 3", dropped)
	}
	var got []int
	for {
		p, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, p.LoadID)
	}
	want := []int{1, 3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("remaining %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("remaining %v, want %v (FIFO order must survive)", got, want)
		}
	}
}

func TestQueuePanicsOnZeroCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewQueue(0) did not panic")
		}
	}()
	NewQueue(0)
}

func TestPrefetcherFacade(t *testing.T) {
	cfg := fastConf()
	cfg.UseContext = true
	p := NewPrefetcher(cfg, 3)
	pc, path := uint64(0x100), uint64(0)
	// Stride path.
	for a := uint64(0x8000); a < 0x8000+80; a += 8 {
		p.Commit(pc, path, a)
	}
	if _, ok := p.Allocate(pc, path); !ok {
		t.Error("facade stride prediction failed")
	}
	// Context fallback: a PC with alternating addresses per path.
	pc2 := uint64(0x9990)
	for i := 0; i < 6; i++ {
		p.Commit(pc2, 0x1, 0x111000)
		p.Commit(pc2, 0x2, 0x222000)
	}
	addr, ok := p.Allocate(pc2, 0x1)
	if !ok || addr != 0x111000 {
		t.Errorf("context fallback got %#x ok=%v", addr, ok)
	}
	if p.StorageBits() <= NewTable(cfg, 1).StorageBits() {
		t.Error("facade storage must include context table")
	}
	p.Squash(pc)
}

// Property: the queue preserves FIFO order for any push/pop/drop sequence.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(opsRaw []uint8) bool {
		q := NewQueue(8)
		var model []int
		next := 1
		for _, op := range opsRaw {
			switch op % 3 {
			case 0: // push
				ok := q.Push(Packet{LoadID: next})
				if ok != (len(model) < 8) {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			case 1: // pop
				p, ok := q.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if p.LoadID != model[0] {
						return false
					}
					model = model[1:]
				}
			case 2: // drop evens
				dropped := q.DropWhere(func(p Packet) bool { return p.LoadID%2 == 0 })
				want := 0
				var kept []int
				for _, id := range model {
					if id%2 == 0 {
						want++
					} else {
						kept = append(kept, id)
					}
				}
				if dropped != want {
					return false
				}
				model = kept
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
