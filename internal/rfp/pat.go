// Package rfp implements the paper's contribution: the Register File
// Prefetch engine of Section 3 — a PC-indexed stride Prefetch Table with
// probabilistic confidence, utility-based replacement and per-entry
// in-flight counters; the area-saving Page Address Table (PAT, §3.5); an
// optional path-based context prefetcher (§5.5.3); and the RFP request
// queue that arbitrates for free L1 ports at the lowest priority (§3.2).
//
// The pipeline integration (RFP-inflight bit, dependent wakeup alignment,
// cancel-on-mismatch) lives in internal/core; this package is the predictor
// and bookkeeping hardware.
package rfp

import "rfpsim/internal/isa"

// patEntry is one way of the Page Address Table.
type patEntry struct {
	frame uint64 // page frame number (address bits 63:12)
	valid bool
	freq  uint8 // 2-bit popularity counter: hot pages resist eviction
	lru   uint64
}

// PAT is the 64-entry, 4-way set-associative Page Address Table of §3.5. It
// memoizes frequently occurring page frame numbers so Prefetch Table
// entries can store a 6-bit PAT pointer plus a 12-bit page offset instead
// of a full virtual address (≈50% storage saving). PAT entries may be
// evicted and reused while PT pointers still reference them; the resulting
// stale reconstructions surface as ordinary RFP address mispredictions and
// are relearnt — exactly the paper's behaviour.
type PAT struct {
	sets    int
	ways    int
	entries []patEntry
	stamp   uint64
}

// NewPAT builds a PAT with the given total entries and associativity.
func NewPAT(entries, ways int) *PAT {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("rfp: invalid PAT geometry")
	}
	return &PAT{sets: entries / ways, ways: ways, entries: make([]patEntry, entries)}
}

func (p *PAT) setFor(frame uint64) int { return int(frame % uint64(p.sets)) }

// LookupOrInsert returns the index of the entry holding frame, installing
// it if absent. The PAT records the *most frequently occurring* page frames
// (§3.5), so replacement victimizes the least popular way (ties broken by
// LRU): pages touched once by a large sweep cannot evict the hot pages the
// strided loads live in.
func (p *PAT) LookupOrInsert(frame uint64) int {
	set := p.setFor(frame)
	base := set * p.ways
	p.stamp++
	victim := base
	for i := base; i < base+p.ways; i++ {
		e := &p.entries[i]
		if e.valid && e.frame == frame {
			e.lru = p.stamp
			if e.freq < 3 {
				e.freq++
			}
			return i
		}
		if !e.valid {
			victim = i
			break
		}
		v := &p.entries[victim]
		if e.freq < v.freq || (e.freq == v.freq && e.lru < v.lru) {
			victim = i
		}
	}
	p.entries[victim] = patEntry{frame: frame, valid: true, lru: p.stamp}
	return victim
}

// Frame returns the page frame currently stored at index idx. A stale
// pointer silently returns whatever frame now occupies the slot; the
// mismatch is caught downstream when the load compares addresses.
func (p *PAT) Frame(idx int) (uint64, bool) {
	if idx < 0 || idx >= len(p.entries) || !p.entries[idx].valid {
		return 0, false
	}
	return p.entries[idx].frame, true
}

// StorageBits returns the PAT's storage cost in bits (44-bit page frames,
// per Table 1).
func (p *PAT) StorageBits() int { return len(p.entries) * 44 }

// Reconstruct rebuilds a full virtual address from a PAT pointer and a page
// offset, reporting whether the pointer was valid.
func (p *PAT) Reconstruct(idx int, pageOff uint16) (uint64, bool) {
	frame, ok := p.Frame(idx)
	if !ok {
		return 0, false
	}
	return frame<<isa.PageShift | uint64(pageOff), true
}
