package rfp

import (
	"rfpsim/internal/config"
	"rfpsim/internal/isa"
	"rfpsim/internal/prng"
)

// ptEntry is one Prefetch Table entry (§3.1): logically a 16-bit tag, 2-bit
// utility, configurable-width confidence, 8-bit stride, 7-bit in-flight
// counter and the base address (a full VA, or a PAT pointer + 12-bit page
// offset when the area optimization is on).
type ptEntry struct {
	tag      uint16
	valid    bool
	util     uint8 // 2-bit utility, replacement victim selection
	conf     uint8 // saturating confidence, width configurable (Fig 17)
	stride   int16 // 8-bit encodable stride; out-of-range strides never train
	inflight int16 // 7-bit outstanding-instance counter
	lru      uint64

	// hasBase records whether a retirement has established the base
	// address yet (entries are created at allocation so the in-flight
	// counter counts every instance from the start).
	hasBase bool
	// Full-VA mode base address (the last retired address).
	lastAddr uint64
	// PAT mode base address.
	patIdx  int16
	pageOff uint16
	usePAT  bool
}

// Stride encodability limits (8-bit signed field).
const (
	strideMin = -128
	strideMax = 127
)

// utilMax saturates the 2-bit utility counter.
const utilMax = 3

// inflightMax saturates the 7-bit in-flight counter.
const inflightMax = 127

// Table is the Prefetch Table: an 8-way set-associative, static-load-PC
// indexed stride predictor trained at load retirement (which makes stride
// detection trivial: retirement is program order). Confidence increments
// probabilistically (p = 1/ConfidenceProb) on a repeating stride and resets
// on a stride change; once saturated, the load PC is RFP-eligible.
type Table struct {
	cfg     config.RFPConfig
	sets    int
	ways    int
	entries []ptEntry
	pat     *PAT
	rng     *prng.Source
	confMax uint8
	stamp   uint64

	// inflightDebt holds pending decrements with no counted increment to
	// match: evicting a live entry discards its in-flight count, and a
	// saturated counter swallows increments, yet every such instance still
	// commits or squashes later. Decrements that find a zero counter
	// consume this debt first; only a decrement with no live count AND no
	// debt is a genuine underflow (a double decrement somewhere).
	inflightDebt uint64
	underflows   uint64
}

// NewTable builds the Prefetch Table (and its PAT when cfg.UsePAT).
func NewTable(cfg config.RFPConfig, seed uint64) *Table {
	if cfg.PTEntries <= 0 || cfg.PTWays <= 0 || cfg.PTEntries%cfg.PTWays != 0 {
		panic("rfp: invalid prefetch table geometry")
	}
	t := &Table{
		cfg:     cfg,
		sets:    cfg.PTEntries / cfg.PTWays,
		ways:    cfg.PTWays,
		entries: make([]ptEntry, cfg.PTEntries),
		rng:     prng.New(seed),
		confMax: uint8(1<<uint(cfg.ConfidenceBits) - 1),
	}
	if cfg.UsePAT {
		t.pat = NewPAT(cfg.PATEntries, cfg.PATWays)
	}
	return t
}

func (t *Table) setFor(pc uint64) int { return int((pc >> 2) % uint64(t.sets)) }

func (t *Table) tagFor(pc uint64) uint16 {
	return uint16((pc >> 2) / uint64(t.sets))
}

// find returns the entry for pc, or nil.
func (t *Table) find(pc uint64) *ptEntry {
	set := t.setFor(pc)
	tag := t.tagFor(pc)
	base := set * t.ways
	for i := base; i < base+t.ways; i++ {
		e := &t.entries[i]
		if e.valid && e.tag == tag {
			return e
		}
	}
	return nil
}

// alloc victimizes the lowest-utility (ties: LRU) way of pc's set and
// returns a fresh entry for pc.
func (t *Table) alloc(pc uint64) *ptEntry {
	set := t.setFor(pc)
	base := set * t.ways
	victim := base
	for i := base; i < base+t.ways; i++ {
		e := &t.entries[i]
		if !e.valid {
			victim = i
			break
		}
		v := &t.entries[victim]
		if e.util < v.util || (e.util == v.util && e.lru < v.lru) {
			victim = i
		}
	}
	if v := &t.entries[victim]; v.valid && v.inflight > 0 {
		t.inflightDebt += uint64(v.inflight)
	}
	t.stamp++
	t.entries[victim] = ptEntry{tag: t.tagFor(pc), valid: true, lru: t.stamp}
	return &t.entries[victim]
}

// base returns the entry's base address (last retired address),
// reconstructing through the PAT when the area optimization is on.
func (t *Table) base(e *ptEntry) (uint64, bool) {
	if !e.usePAT {
		return e.lastAddr, true
	}
	return t.pat.Reconstruct(int(e.patIdx), e.pageOff)
}

// setBase records addr as the entry's base address in the configured
// encoding.
func (t *Table) setBase(e *ptEntry, addr uint64) {
	if t.pat == nil {
		e.lastAddr = addr
		e.usePAT = false
		return
	}
	e.usePAT = true
	e.patIdx = int16(t.pat.LookupOrInsert(isa.PageFrame(addr)))
	e.pageOff = uint16(isa.PageOffset(addr))
}

// Allocate is called when a load at pc is allocated into the OOO. It bumps
// the entry's in-flight counter and, if the entry's confidence is
// saturated, returns the predicted address for this dynamic instance:
// base + stride × inflight (the counter accounts for older in-flight
// instances of the same PC whose retirement has not yet advanced the base,
// per §3.1).
//
// A missing entry is created here rather than at first retirement: the PT
// is looked up at allocation anyway to mark RFP-eligible loads (§3.2), and
// creating the entry at the same point keeps the in-flight counter exact
// from the first dynamic instance. Creating it at retirement instead would
// leave the counter permanently short by however many instances were in
// flight at creation time, mispredicting every address by that skew times
// the stride.
func (t *Table) Allocate(pc uint64) (addr uint64, eligible bool) {
	e := t.find(pc)
	if e == nil {
		e = t.alloc(pc)
	}
	if e.inflight < inflightMax {
		e.inflight++
	} else {
		t.inflightDebt++ // saturated: the swallowed increment becomes debt
	}
	t.stamp++
	e.lru = t.stamp
	if e.conf < t.confMax || !e.hasBase {
		return 0, false
	}
	base, ok := t.base(e)
	if !ok {
		return 0, false
	}
	return uint64(int64(base) + int64(e.stride)*int64(e.inflight)), true
}

// Commit trains the table at load retirement with the load's actual
// address, and releases the in-flight slot taken at allocation.
func (t *Table) Commit(pc, addr uint64) {
	e := t.find(pc)
	if e == nil {
		// The entry allocated for this instance was evicted while it was
		// in flight; its pending decrement sits in the debt pool. Recreate
		// the entry with the base established.
		if t.inflightDebt > 0 {
			t.inflightDebt--
		}
		e = t.alloc(pc)
		t.setBase(e, addr)
		e.hasBase = true
		return
	}
	t.releaseInflight(e)
	if !e.hasBase {
		// First retirement through this entry: establish the base; the
		// stride is learnt from the next one.
		t.setBase(e, addr)
		e.hasBase = true
		return
	}
	base, baseOK := t.base(e)
	stride := int64(addr) - int64(base)
	switch {
	case !baseOK:
		// Stale PAT pointer: relearn the base, keep the stride guess.
		t.setBase(e, addr)
		e.conf = 0
	case stride == int64(e.stride) && stride >= strideMin && stride <= strideMax:
		// Repeating stride: probabilistic confidence (p = 1/ConfidenceProb),
		// which makes eligibility demand a long run of stable strides
		// without paying for wide counters (§3.1).
		if e.conf < t.confMax && t.rng.OneIn(t.cfg.ConfidenceProb) {
			e.conf++
		}
		if e.util < utilMax {
			e.util++
		}
		t.setBase(e, addr)
	case stride >= strideMin && stride <= strideMax:
		// Stride changed: reset confidence and utility; a persistently
		// fluctuating entry keeps low utility and eventually gets evicted.
		e.stride = int16(stride)
		e.conf = 0
		e.util = 0
		t.setBase(e, addr)
	default:
		// Stride not encodable in 8 bits: never becomes eligible.
		e.conf = 0
		e.util = 0
		t.setBase(e, addr)
	}
}

// Squash releases the in-flight slot of a wrong-path load that was
// allocated but will never commit (§3.1: the counter is decremented for
// each squashed load on a branch misprediction).
func (t *Table) Squash(pc uint64) {
	if e := t.find(pc); e != nil {
		t.releaseInflight(e)
	}
}

// releaseInflight performs one in-flight decrement: the live counter if
// positive, otherwise the debt pool (see inflightDebt); a decrement with
// neither is counted as an underflow for the checking layer.
func (t *Table) releaseInflight(e *ptEntry) {
	switch {
	case e.inflight > 0:
		e.inflight--
	case t.inflightDebt > 0:
		t.inflightDebt--
	default:
		t.underflows++
	}
}

// InflightUnderflows returns how many in-flight decrements found neither a
// live counter nor matching debt — each one is a bookkeeping bug, surfaced
// by the checking layer as a PTInflightUnderflow violation.
func (t *Table) InflightUnderflows() uint64 { return t.underflows }

// StorageBits returns the PT's storage in bits, matching Table 1's
// accounting: per entry a 16b tag, confidence bits, 2b utility, 8b stride
// and 7b inflight, plus either a 64b virtual address (full-VA mode) or a
// 6b PAT pointer + 12b page offset (PAT mode, plus the PAT itself).
func (t *Table) StorageBits() int {
	per := 16 + t.cfg.ConfidenceBits + 2 + 8 + 7
	if t.pat != nil {
		per += 6 + 12
		return len(t.entries)*per + t.pat.StorageBits()
	}
	per += 64
	return len(t.entries) * per
}
