package rfp

import "testing"

func fillQueue(q *Queue, n int) {
	for i := 0; i < n; i++ {
		if !q.Push(Packet{LoadID: i, Addr: uint64(i) * 64}) {
			panic("queue full during test fill")
		}
	}
}

func TestQueueContestedThreshold(t *testing.T) {
	q := NewQueue(8)
	fillQueue(q, 3)
	if q.Contested() {
		t.Errorf("queue contested at %d/%d occupancy", q.Len(), q.Cap())
	}
	fillQueue(q, 1)
	if !q.Contested() {
		t.Errorf("queue not contested at %d/%d occupancy", q.Len(), q.Cap())
	}
	// Draining back below half clears the pressure signal.
	q.Pop()
	if q.Contested() {
		t.Errorf("queue still contested at %d/%d after drain", q.Len(), q.Cap())
	}
	// An odd capacity rounds the threshold up: 3 of 5 is contested, 2 is not.
	odd := NewQueue(5)
	fillQueue(odd, 2)
	if odd.Contested() {
		t.Error("5-entry queue contested at 2")
	}
	fillQueue(odd, 1)
	if !odd.Contested() {
		t.Error("5-entry queue not contested at 3")
	}
}

func TestQueueFIFOAndWraparound(t *testing.T) {
	q := NewQueue(4)
	fillQueue(q, 4)
	if q.Push(Packet{LoadID: 99}) {
		t.Fatal("push into a full queue succeeded")
	}
	// Pop two, push two more: head is now mid-buffer and the ring wraps.
	for want := 0; want < 2; want++ {
		p, ok := q.Pop()
		if !ok || p.LoadID != want {
			t.Fatalf("pop = %v,%v, want LoadID %d", p, ok, want)
		}
	}
	q.Push(Packet{LoadID: 4})
	q.Push(Packet{LoadID: 5})
	for want := 2; want <= 5; want++ {
		p, ok := q.Pop()
		if !ok || p.LoadID != want {
			t.Fatalf("pop after wrap = %v,%v, want LoadID %d", p, ok, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestDropWherePreservesOrderAcrossWrap(t *testing.T) {
	q := NewQueue(8)
	fillQueue(q, 8)
	// Advance head so the live window wraps the buffer edge.
	q.Pop()
	q.Pop()
	q.Pop()
	q.Push(Packet{LoadID: 8})
	q.Push(Packet{LoadID: 9})
	// Live contents: 3 4 5 6 7 8 9. Drop the even LoadIDs.
	dropped := q.DropWhere(func(p Packet) bool { return p.LoadID%2 == 0 })
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
	var got []int
	for {
		p, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, p.LoadID)
	}
	want := []int{3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("kept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kept %v, want %v (FIFO order broken)", got, want)
		}
	}
}

func TestDropWhereAllAndNone(t *testing.T) {
	q := NewQueue(8)
	fillQueue(q, 5)
	if d := q.DropWhere(func(Packet) bool { return false }); d != 0 || q.Len() != 5 {
		t.Fatalf("drop-none: dropped %d, len %d", d, q.Len())
	}
	if d := q.DropWhere(func(Packet) bool { return true }); d != 5 || q.Len() != 0 {
		t.Fatalf("drop-all: dropped %d, len %d", d, q.Len())
	}
	// The queue must remain fully usable after being emptied in place.
	fillQueue(q, 8)
	if q.Len() != 8 {
		t.Fatalf("refill after drop-all: len %d, want 8", q.Len())
	}
}

// TestDropWhereDoesNotAllocate pins the zero-allocation guarantee:
// DropWhere runs once per load that beats its own prefetch, which is hot
// enough that a per-call slice allocation shows up in suite-wide profiles.
func TestDropWhereDoesNotAllocate(t *testing.T) {
	q := NewQueue(64)
	pred := func(p Packet) bool { return p.LoadID%3 == 0 }
	allocs := testing.AllocsPerRun(100, func() {
		for q.Len() < 64 {
			q.Push(Packet{LoadID: q.Len()})
		}
		q.DropWhere(pred)
	})
	if allocs != 0 {
		t.Fatalf("DropWhere allocates %.1f times per call, want 0", allocs)
	}
}

func BenchmarkQueueDropWhere(b *testing.B) {
	q := NewQueue(64)
	pred := func(p Packet) bool { return p.LoadID%3 == 0 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for q.Len() < 64 {
			q.Push(Packet{LoadID: q.Len()})
		}
		q.DropWhere(pred)
	}
}
