package rfp

// Packet is one RFP prefetch request (§3.2): the predicted virtual address
// plus the physical destination register of the load it serves. LoadID
// identifies the in-flight load (its ROB index in this simulator); PRFID is
// the renamed destination the prefetched data will be written to.
type Packet struct {
	// LoadID identifies the load instance this prefetch serves.
	LoadID int
	// PC is the load's static program counter.
	PC uint64
	// Addr is the predicted virtual address.
	Addr uint64
	// PRFID is the load's physical destination register — where the
	// prefetched data will be written.
	PRFID int
	// Slot is the load's reservation-station/ROB slot, used to find the
	// load and set its RFP-inflight bit in O(1).
	Slot int
}

// Queue is the 64-entry RFP FIFO of §3.5. Older requests have priority over
// younger ones; the whole queue has lower priority than demand loads at the
// L1 ports. A full queue drops new packets (the load simply executes
// normally).
type Queue struct {
	buf  []Packet
	head int
	size int
}

// NewQueue builds a FIFO with the given capacity.
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		panic("rfp: queue capacity must be positive")
	}
	return &Queue{buf: make([]Packet, capacity)}
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return q.size }

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return len(q.buf) }

// Contested reports whether at least half the queue's slots are occupied —
// the pressure threshold at which the CLP-extended arming schedule lets
// only criticality-flagged loads claim the remaining slots
// (docs/predictors.md).
func (q *Queue) Contested() bool { return 2*q.size >= len(q.buf) }

// Push enqueues a packet, reporting false if the queue is full.
func (q *Queue) Push(p Packet) bool {
	if q.size == len(q.buf) {
		return false
	}
	q.buf[(q.head+q.size)%len(q.buf)] = p
	q.size++
	return true
}

// Peek returns the oldest packet without removing it.
func (q *Queue) Peek() (Packet, bool) {
	if q.size == 0 {
		return Packet{}, false
	}
	return q.buf[q.head], true
}

// Pop removes and returns the oldest packet.
func (q *Queue) Pop() (Packet, bool) {
	p, ok := q.Peek()
	if ok {
		q.head = (q.head + 1) % len(q.buf)
		q.size--
	}
	return p, ok
}

// DropWhere removes every queued packet matching pred (used when the
// corresponding load issues first, §3.3, or is squashed by a branch flush)
// and returns how many were dropped. It runs on the simulator's hot path —
// once per load that beats its own prefetch — so the ring is compacted in
// place: kept packets slide toward head, preserving FIFO order, with zero
// allocations (guarded by TestDropWhereDoesNotAllocate).
func (q *Queue) DropWhere(pred func(Packet) bool) int {
	n := len(q.buf)
	w := 0 // packets kept so far; write cursor is head+w
	for i := 0; i < q.size; i++ {
		p := q.buf[(q.head+i)%n]
		if pred(p) {
			continue
		}
		if w != i {
			q.buf[(q.head+w)%n] = p
		}
		w++
	}
	dropped := q.size - w
	q.size = w
	return dropped
}
