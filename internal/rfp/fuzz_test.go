package rfp

import "testing"

// FuzzQueueOps mutates the op-string the queue/model interpreter of
// queue_prop_test.go executes: any byte sequence is a valid program, so
// the fuzzer freely explores interleavings of push/pop/peek/drop across
// capacities 1..8 hunting for a ring-buffer state the reference model
// disagrees with. Seed corpus under testdata/fuzz/FuzzQueueOps.
func FuzzQueueOps(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{3, 0, 4, 8, 12, 3, 1, 1, 0, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // bound per-exec work; the contract is length-invariant
		}
		checkQueueOps(t, data)
	})
}
