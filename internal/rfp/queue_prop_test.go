package rfp

import (
	"testing"

	"rfpsim/internal/prng"
)

// checkQueueOps drives a Queue and a trivially correct reference model
// (a bounded slice) through the same op sequence, failing on the first
// observable difference. Encoding: the first byte picks the capacity
// (1..8, small so wrap-around is constantly exercised); every following
// byte is one operation, op = b&3 with the argument in the high bits:
//
//	0 push   — must succeed exactly when the model is not full
//	1 pop    — must return the model's oldest packet
//	2 peek   — ditto, without removing it
//	3 drop   — DropWhere(LoadID%m == 0) must drop the same packets the
//	           model filter does, preserving FIFO order of the rest
//
// Both the property test (prng-generated sequences) and FuzzQueueOps
// (mutated byte strings) run this interpreter, so the fuzzer explores
// the same contract the property test pins.
func checkQueueOps(t *testing.T, data []byte) {
	t.Helper()
	if len(data) == 0 {
		return
	}
	capacity := int(data[0]%8) + 1
	q := NewQueue(capacity)
	var model []Packet
	next := 0 // LoadID generator, so packets are distinguishable

	for i, b := range data[1:] {
		arg := int(b >> 2)
		switch b & 3 {
		case 0:
			p := Packet{
				LoadID: next,
				PC:     uint64(arg) * 8,
				Addr:   uint64(arg) * 64,
				PRFID:  arg % 32,
				Slot:   arg % 16,
			}
			next++
			ok := q.Push(p)
			if want := len(model) < capacity; ok != want {
				t.Fatalf("op %d: Push ok=%t, want %t (len %d cap %d)", i, ok, want, len(model), capacity)
			}
			if ok {
				model = append(model, p)
			}
		case 1:
			p, ok := q.Pop()
			if want := len(model) > 0; ok != want {
				t.Fatalf("op %d: Pop ok=%t, want %t", i, ok, want)
			}
			if ok {
				if p != model[0] {
					t.Fatalf("op %d: Pop = %+v, want %+v", i, p, model[0])
				}
				model = model[1:]
			}
		case 2:
			p, ok := q.Peek()
			if want := len(model) > 0; ok != want {
				t.Fatalf("op %d: Peek ok=%t, want %t", i, ok, want)
			}
			if ok && p != model[0] {
				t.Fatalf("op %d: Peek = %+v, want %+v", i, p, model[0])
			}
		case 3:
			m := arg%4 + 1
			pred := func(p Packet) bool { return p.LoadID%m == 0 }
			dropped := q.DropWhere(pred)
			kept := model[:0:0]
			for _, p := range model {
				if !pred(p) {
					kept = append(kept, p)
				}
			}
			if want := len(model) - len(kept); dropped != want {
				t.Fatalf("op %d: DropWhere dropped %d, want %d", i, dropped, want)
			}
			model = kept
		}
		if q.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, want %d", i, q.Len(), len(model))
		}
		if q.Len() > q.Cap() {
			t.Fatalf("op %d: Len %d exceeds Cap %d", i, q.Len(), q.Cap())
		}
	}
	// Drain: the survivors must come out in model order.
	for len(model) > 0 {
		p, ok := q.Pop()
		if !ok || p != model[0] {
			t.Fatalf("drain: Pop = %+v ok=%t, want %+v", p, ok, model[0])
		}
		model = model[1:]
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("drain: queue still non-empty after the model emptied")
	}
}

// TestQueueRingProperty drives the ring through long randomized op
// sequences against the reference model. The prng seeds are fixed, so
// the sequences — and therefore the test — are fully deterministic.
func TestQueueRingProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		src := prng.New(seed * 0x9E3779B97F4A7C15)
		ops := make([]byte, 20000)
		for i := range ops {
			ops[i] = byte(src.Uint64())
		}
		checkQueueOps(t, ops)
	}
}
