package rfp

import "rfpsim/internal/config"

// Prefetcher is the complete RFP address-prediction engine: the stride
// Prefetch Table, optionally backed by the path-based context predictor.
// The core calls Allocate at rename, Commit at retirement and Squash on
// wrong-path loads; the queue and pipeline integration live in the core.
type Prefetcher struct {
	table *Table
	ctx   *Context
	cfg   config.RFPConfig
}

// NewPrefetcher builds the engine for cfg; seed drives the probabilistic
// confidence counters.
func NewPrefetcher(cfg config.RFPConfig, seed uint64) *Prefetcher {
	p := &Prefetcher{table: NewTable(cfg, seed), cfg: cfg}
	if cfg.UseContext {
		p.ctx = NewContext(cfg.ContextEntries)
	}
	return p
}

// Allocate is called when a load allocates into the OOO window. path is the
// global branch-path hash at the load (used only by the context predictor).
// It returns the predicted prefetch address when the load is RFP-eligible.
func (p *Prefetcher) Allocate(pc, path uint64) (addr uint64, eligible bool) {
	addr, eligible = p.table.Allocate(pc)
	if eligible {
		return addr, true
	}
	if p.ctx != nil {
		return p.ctx.Predict(pc, path)
	}
	return 0, false
}

// Commit trains all predictors at load retirement.
func (p *Prefetcher) Commit(pc, path, addr uint64) {
	p.table.Commit(pc, addr)
	if p.ctx != nil {
		p.ctx.Train(pc, path, addr)
	}
}

// Squash releases the in-flight slot of a squashed load.
func (p *Prefetcher) Squash(pc uint64) { p.table.Squash(pc) }

// InflightUnderflows exposes the Prefetch Table's in-flight underflow
// count for the runtime invariant layer (config.Checks).
func (p *Prefetcher) InflightUnderflows() uint64 { return p.table.InflightUnderflows() }

// StorageBits returns the total predictor storage in bits (Table 1).
func (p *Prefetcher) StorageBits() int {
	bits := p.table.StorageBits()
	if p.ctx != nil {
		bits += p.ctx.StorageBits()
	}
	return bits
}

// StorageReport describes the Table 1 storage accounting for a
// configuration.
type StorageReport struct {
	// PTBits is the Prefetch Table cost in bits.
	PTBits int
	// PATBits is the Page Address Table cost in bits (0 when disabled).
	PATBits int
	// RFPInflightBits is one bit per reservation-station entry.
	RFPInflightBits int
}

// TotalBits sums the report.
func (r StorageReport) TotalBits() int { return r.PTBits + r.PATBits + r.RFPInflightBits }

// Storage computes the Table 1 storage bill for an RFP configuration and
// reservation-station size.
func Storage(cfg config.RFPConfig, rsEntries int) StorageReport {
	per := 16 + cfg.ConfidenceBits + 2 + 8 + 7
	var patBits int
	if cfg.UsePAT {
		per += 6 + 12
		patBits = cfg.PATEntries * 44
	} else {
		per += 64
	}
	return StorageReport{
		PTBits:          cfg.PTEntries * per,
		PATBits:         patBits,
		RFPInflightBits: rsEntries,
	}
}
