package rfp

// Context is the optional path-based context prefetcher of §5.5.3, modelled
// on DLVP's Path-based Address Predictor: it indexes on a hash of the load
// PC and recent global branch path, and predicts that the load repeats the
// address it produced the last time the same path led to it. It recovers
// some loads whose addresses correlate with control flow rather than with
// a stride; the paper measures only +0.3% on top of the stride table.
type Context struct {
	mask    uint64
	entries []ctxEntry
	confMax uint8
}

type ctxEntry struct {
	tag   uint16
	addr  uint64
	conf  uint8
	valid bool
}

// NewContext builds a direct-mapped context predictor with the given number
// of entries (rounded down to a power of two).
func NewContext(entries int) *Context {
	size := 1
	for size*2 <= entries {
		size *= 2
	}
	return &Context{
		mask:    uint64(size - 1),
		entries: make([]ctxEntry, size),
		confMax: 3,
	}
}

func (c *Context) index(pc, path uint64) uint64 {
	h := pc ^ (path * 0x9E3779B97F4A7C15)
	return (h ^ h>>16) & c.mask
}

func (c *Context) tag(pc, path uint64) uint16 {
	h := pc ^ path>>7
	return uint16(h>>2) | 1
}

// Predict returns the context-predicted address for (pc, path) when
// confident.
func (c *Context) Predict(pc, path uint64) (uint64, bool) {
	e := &c.entries[c.index(pc, path)]
	if e.valid && e.tag == c.tag(pc, path) && e.conf >= c.confMax {
		return e.addr, true
	}
	return 0, false
}

// Train records the actual address a load produced under the given path.
func (c *Context) Train(pc, path, addr uint64) {
	e := &c.entries[c.index(pc, path)]
	tag := c.tag(pc, path)
	if !e.valid || e.tag != tag {
		*e = ctxEntry{tag: tag, addr: addr, conf: 0, valid: true}
		return
	}
	if e.addr == addr {
		if e.conf < c.confMax {
			e.conf++
		}
	} else {
		e.addr = addr
		e.conf = 0
	}
}

// StorageBits returns the context table's storage cost (16b tag + 64b
// address + 2b confidence per entry).
func (c *Context) StorageBits() int { return len(c.entries) * (16 + 64 + 2) }
