package mem

// sppPrefetcher is a signature-path prefetcher (Kim et al., MICRO 2016,
// as fielded in the DPC ChampSim reference): a per-page Signature Table
// compresses the recent delta history of each 4 KiB page into a 12-bit
// signature, a Pattern Table correlates signatures with the deltas that
// followed them, and prediction walks the pattern table speculatively —
// compounding per-step confidence along the path and stopping when the
// product drops below a throttle threshold. Global accuracy feedback
// (fills vs hits, the Prefetcher Fill/Hit channels) tightens the
// threshold when the pattern table is issuing junk.
//
// Everything is fixed-size integer state: no maps, no RNG, no floats, so
// the scheme is deterministic and allocation-free in steady state.
type sppPrefetcher struct {
	st []sppSigEntry // signature table, direct-mapped by page
	pt []sppPatEntry // pattern table, indexed by signature

	// issued/useful implement the global-accuracy throttle; both are
	// halved together when issued saturates so the ratio tracks the
	// recent window rather than all history.
	issued uint64
	useful uint64

	scratch []uint64
}

// SPP geometry. The signature folds 3 bits per delta, so it covers the
// last four deltas of a page — enough to separate interleaved strides
// without growing the pattern table past 4K entries.
const (
	sppSigBits    = 12
	sppSigMask    = (1 << sppSigBits) - 1
	sppSigShift   = 3
	sppSTEntries  = 256
	sppPatDeltas  = 4
	sppCounterMax = 15
	sppMaxDegree  = 8

	// sppBaseThreshold is the minimum path confidence (percent) to keep
	// walking; sppLowAccThreshold replaces it once global accuracy falls
	// below sppMinAccuracyPct.
	sppBaseThreshold   = 25
	sppLowAccThreshold = 60
	sppMinAccuracyPct  = 30
	// sppAccWindow bounds the accuracy counters; at the bound both halve.
	sppAccWindow = 4096

	lineShift      = 6
	pageLineOffset = 64 // lines per 4 KiB page
)

type sppSigEntry struct {
	page    uint64
	sig     uint16
	lastOff int8
	valid   bool
}

type sppPatEntry struct {
	delta [sppPatDeltas]int8
	count [sppPatDeltas]uint8
	total uint8
}

func newSPP() *sppPrefetcher {
	return &sppPrefetcher{
		st:      make([]sppSigEntry, sppSTEntries),
		pt:      make([]sppPatEntry, 1<<sppSigBits),
		scratch: make([]uint64, 0, sppMaxDegree),
	}
}

// Name implements Prefetcher.
func (p *sppPrefetcher) Name() string { return "spp" }

// Fill implements Prefetcher: every issued prefetch opens the accuracy
// window.
func (p *sppPrefetcher) Fill(line uint64) {
	p.issued++
	if p.issued >= sppAccWindow {
		p.issued >>= 1
		p.useful >>= 1
	}
}

// Hit implements Prefetcher: a consumed prefetch closes the loop.
func (p *sppPrefetcher) Hit(line uint64) { p.useful++ }

// threshold returns the current path-confidence floor in percent: the
// base throttle, or the tightened one while global accuracy is poor. The
// accuracy gate only arms after enough fills to be meaningful.
func (p *sppPrefetcher) threshold() int {
	if p.issued >= 256 && p.useful*100 < p.issued*sppMinAccuracyPct {
		return sppLowAccThreshold
	}
	return sppBaseThreshold
}

// Observe implements Prefetcher. Every access trains the tables (SPP
// observes the full L1 stream, hits included — patterns must keep
// advancing once their lines start hitting), and every access may emit a
// path of candidates within the same page.
func (p *sppPrefetcher) Observe(ev AccessEvent) []uint64 {
	page := ev.Line >> 12
	off := int8((ev.Line >> lineShift) & (pageLineOffset - 1))

	e := &p.st[page%sppSTEntries]
	if !e.valid || e.page != page {
		// First touch of (this alias slot for) the page: start a fresh
		// signature; no delta to learn, nothing confident to predict.
		*e = sppSigEntry{page: page, sig: 0, lastOff: off, valid: true}
		return nil
	}
	delta := off - e.lastOff
	if delta == 0 {
		return nil // same line again: no pattern information
	}

	// Learn (old signature -> delta), then advance the signature.
	p.pt[e.sig].update(delta)
	e.sig = sppNextSig(e.sig, delta)
	e.lastOff = off

	// Speculative lookahead: follow the most likely delta chain while the
	// compounded confidence stays above the throttle and the path stays
	// inside the page (SPP's page-local contract; crossing pages would
	// need the GHR machinery the paper's L1 budget doesn't justify).
	out := p.scratch[:0]
	conf := 100
	sig, cur := e.sig, off
	thresh := p.threshold()
	for len(out) < sppMaxDegree {
		delta, c, total := p.pt[sig].best()
		if total == 0 {
			break
		}
		conf = conf * int(c) / int(total)
		if conf < thresh {
			break
		}
		next := cur + delta
		if next < 0 || next >= pageLineOffset {
			break
		}
		out = append(out, (page<<12)|uint64(next)<<lineShift)
		sig = sppNextSig(sig, delta)
		cur = next
	}
	return out
}

// sppNextSig folds one delta into a signature. The delta is mapped into
// 7 bits sign-magnitude style (as in the reference implementation) so
// ascending and descending strides hash apart.
func sppNextSig(sig uint16, delta int8) uint16 {
	d := uint16(delta) & 0x7F
	return ((sig << sppSigShift) ^ d) & sppSigMask
}

// update credits delta in the entry, claiming the weakest way when the
// delta is new. Counters saturate; at saturation of the total all ways
// halve, aging out stale patterns without ever resetting cold.
func (e *sppPatEntry) update(delta int8) {
	if e.total >= sppCounterMax {
		for i := range e.count {
			e.count[i] >>= 1
		}
		e.total >>= 1
	}
	e.total++
	victim := 0
	for i := range e.delta {
		if e.count[i] > 0 && e.delta[i] == delta {
			e.count[i]++
			return
		}
		if e.count[i] < e.count[victim] {
			victim = i
		}
	}
	e.delta[victim] = delta
	e.count[victim] = 1
}

// best returns the highest-confidence delta (lowest index wins ties, so
// the choice is deterministic), its counter, and the entry total.
func (e *sppPatEntry) best() (delta int8, count, total uint8) {
	bi := 0
	for i := 1; i < sppPatDeltas; i++ {
		if e.count[i] > e.count[bi] {
			bi = i
		}
	}
	if e.count[bi] == 0 {
		return 0, 0, 0
	}
	return e.delta[bi], e.count[bi], e.total
}
