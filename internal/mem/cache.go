// Package mem models the data-side memory hierarchy: set-associative cache
// arrays with LRU replacement, an MSHR file with miss merging, a DTLB with
// page-walk latency, and DRAM. Latencies follow the paper's Figure 1
// (5-cycle L1, ~14-cycle L2, ~40-cycle LLC, 200-cycle memory).
package mem

import (
	"fmt"
	"math/bits"

	"rfpsim/internal/isa"
)

// cacheLine is one way of one set.
type cacheLine struct {
	tag   uint64
	valid bool
	pf    bool   // filled by a hardware prefetch and not yet consumed
	lru   uint64 // last-touch stamp; higher is more recent
}

// Cache is a single set-associative cache array with true-LRU replacement.
// It tracks presence only; data values live in the workload model.
type Cache struct {
	sets     int
	ways     int
	setShift uint
	setMask  uint64
	lines    []cacheLine // sets*ways, row-major by set
	stamp    uint64
	pfUnused uint64 // prefetched lines evicted before any consumption
}

// NewCache builds a cache with the given geometry. sets must be a power of
// two and both parameters positive; otherwise NewCache panics, since a bad
// geometry is a programming error in a configuration.
func NewCache(sets, ways int) *Cache {
	if sets <= 0 || ways <= 0 || bits.OnesCount(uint(sets)) != 1 {
		panic(fmt.Sprintf("mem: invalid cache geometry %dx%d", sets, ways))
	}
	return &Cache{
		sets:     sets,
		ways:     ways,
		setShift: uint(bits.TrailingZeros(uint(isa.CacheLineSize))),
		setMask:  uint64(sets - 1),
		lines:    make([]cacheLine, sets*ways),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes returns the total capacity in bytes.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * isa.CacheLineSize }

func (c *Cache) setFor(addr uint64) []cacheLine {
	idx := int((addr >> c.setShift) & c.setMask)
	return c.lines[idx*c.ways : (idx+1)*c.ways]
}

func (c *Cache) tagFor(addr uint64) uint64 {
	return addr >> (c.setShift + uint(bits.TrailingZeros(uint(c.sets))))
}

// Lookup probes for the line containing addr; on a hit it refreshes LRU
// state and returns true.
func (c *Cache) Lookup(addr uint64) bool {
	set := c.setFor(addr)
	tag := c.tagFor(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stamp++
			set[i].lru = c.stamp
			return true
		}
	}
	return false
}

// Contains probes for the line without touching replacement state.
func (c *Cache) Contains(addr uint64) bool {
	set := c.setFor(addr)
	tag := c.tagFor(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Insert fills the line containing addr, evicting the LRU way if needed.
// Inserting a line already present refreshes its LRU state.
func (c *Cache) Insert(addr uint64) {
	set := c.setFor(addr)
	tag := c.tagFor(addr)
	c.stamp++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.stamp
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid && set[victim].pf {
		c.pfUnused++
	}
	set[victim] = cacheLine{tag: tag, valid: true, lru: c.stamp}
}

// InsertPrefetched fills the line containing addr like Insert, but marks
// it prefetched so the hierarchy can attribute the first consumption (or
// an unconsumed eviction) back to the prefetcher.
func (c *Cache) InsertPrefetched(addr uint64) {
	set := c.setFor(addr)
	tag := c.tagFor(addr)
	c.stamp++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.stamp
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid && set[victim].pf {
		c.pfUnused++
	}
	set[victim] = cacheLine{tag: tag, valid: true, pf: true, lru: c.stamp}
}

// LookupConsume is Lookup plus prefetch attribution: on a hit it clears
// and reports the line's prefetched mark, so exactly one demand access
// gets credited per prefetched fill.
func (c *Cache) LookupConsume(addr uint64) (hit, wasPrefetched bool) {
	set := c.setFor(addr)
	tag := c.tagFor(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stamp++
			set[i].lru = c.stamp
			wasPrefetched = set[i].pf
			set[i].pf = false
			return true, wasPrefetched
		}
	}
	return false, false
}

// ConsumePrefetch clears the prefetched mark on the line containing addr
// without touching replacement state, reporting whether the mark was set.
// The hierarchy uses it when a demand access merges with an in-flight
// prefetch (a "late" prefetch: covered, but not fully).
func (c *Cache) ConsumePrefetch(addr uint64) bool {
	set := c.setFor(addr)
	tag := c.tagFor(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag && set[i].pf {
			set[i].pf = false
			return true
		}
	}
	return false
}

// TakePFUnused returns and resets the count of prefetched lines evicted
// without ever being consumed (the pollution signal).
func (c *Cache) TakePFUnused() uint64 {
	u := c.pfUnused
	c.pfUnused = 0
	return u
}

// Flush invalidates the whole cache.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
}
