package mem

// sisbPrefetcher is a simplified irregular stream buffer (the SISB
// temporal prefetcher of the ChampSim prefetching championship): a
// training unit remembers the last miss line of each load PC, a mapping
// table records (line -> next line observed under the same PC), and
// prediction replays the recorded chain with degree-2 lookahead. Where
// the reference uses unbounded hash maps, this implementation uses
// fixed-size direct-mapped tables (tag + payload) so the scheme stays
// deterministic, bounded and allocation-free in steady state — the
// contract the zero-alloc cycle loop imposes on everything on the demand
// path.
type sisbPrefetcher struct {
	tu []sisbTrainEntry // training unit: PC -> last miss line
	mc []sisbMapEntry   // mapping table: line -> successor line

	issued uint64
	useful uint64

	scratch []uint64
}

const (
	sisbTUEntries = 1 << 10
	sisbMCEntries = 1 << 13
	sisbDegree    = 2
)

type sisbTrainEntry struct {
	pc    uint64
	last  uint64
	valid bool
}

type sisbMapEntry struct {
	line  uint64
	next  uint64
	valid bool
}

func newSISB() *sisbPrefetcher {
	return &sisbPrefetcher{
		tu:      make([]sisbTrainEntry, sisbTUEntries),
		mc:      make([]sisbMapEntry, sisbMCEntries),
		scratch: make([]uint64, 0, sisbDegree),
	}
}

// Name implements Prefetcher.
func (p *sisbPrefetcher) Name() string { return "sisb" }

// Fill implements Prefetcher.
func (p *sisbPrefetcher) Fill(line uint64) { p.issued++ }

// Hit implements Prefetcher.
func (p *sisbPrefetcher) Hit(line uint64) { p.useful++ }

// sisbHash spreads a key over a table of size 2^bits with a Fibonacci
// multiplicative hash; direct-mapped conflicts simply retrain, which is
// the bounded-table substitute for the reference's unbounded maps.
func sisbHash(key uint64, bits uint) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> (64 - bits)
}

// Observe implements Prefetcher. SISB is a temporal scheme over the miss
// stream: only demand-load misses train the chain (hits would record the
// whole access stream and drown the miss correlations the replay needs)
// and only they trigger replay.
func (p *sisbPrefetcher) Observe(ev AccessEvent) []uint64 {
	if !ev.Load || !ev.Miss {
		return nil
	}

	// Training: link the PC's previous miss line to this one.
	t := &p.tu[sisbHash(ev.PC, 10)]
	if t.valid && t.pc == ev.PC && t.last != ev.Line {
		m := &p.mc[sisbHash(t.last, 13)]
		*m = sisbMapEntry{line: t.last, next: ev.Line, valid: true}
	}
	*t = sisbTrainEntry{pc: ev.PC, last: ev.Line, valid: true}

	// Replay: follow the recorded chain from the current miss, degree-2
	// lookahead as in the reference harness. Self-loops and revisits are
	// cut by refusing a prediction equal to the line it extends.
	out := p.scratch[:0]
	cur := ev.Line
	for len(out) < sisbDegree {
		m := &p.mc[sisbHash(cur, 13)]
		if !m.valid || m.line != cur || m.next == cur {
			break
		}
		out = append(out, m.next)
		cur = m.next
	}
	return out
}
