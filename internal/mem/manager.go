package mem

import "rfpsim/internal/stats"

// managedPrefetcher is the adaptive per-workload policy motivated by
// Puppeteer (a learned manager selecting/throttling prefetchers across
// the hierarchy): it trains ALL candidate prefetchers on the demand
// stream, issues only from the currently active one, and re-decides the
// active choice every fixed epoch from feedback counters. Where
// Puppeteer uses random forests, this manager uses a deterministic
// shadow-scoring policy — no RNG, no floats on the hot path — so runs
// stay bit-reproducible and content addresses stay meaningful:
//
//   - every candidate's predictions (issued or not) enter a per-candidate
//     shadow ring; a later demand miss on a shadowed line is a "shadow
//     hit" — the miss that candidate would have covered had it been
//     active. Shadow hits per epoch are the coverage score.
//   - at each epoch boundary the best-scoring candidate challenges the
//     incumbent and takes over only with a 25% margin (hysteresis, so a
//     noisy epoch cannot flap the policy).
//   - the active prefetcher is throttled to degree 1 for the next epoch
//     when its shadow accuracy (hits per emitted candidate) falls below
//     1/8 — pollution control without switching.
type managedPrefetcher struct {
	cands  []Prefetcher
	active int

	shadow [][managerShadowLines]uint64 // per-candidate recent predictions
	spos   []int
	hits   []uint64 // shadow hits this epoch
	emit   []uint64 // candidates emitted this epoch

	accesses  int
	throttled bool

	st *stats.Sim
}

const (
	// managerEpoch is the decision interval in observed L1 accesses (the
	// deterministic stand-in for uop epochs: the hierarchy has no uop
	// clock, and demand accesses track uops closely on this suite).
	managerEpoch = 2048
	// managerShadowLines bounds how long a prediction stays eligible to
	// claim a shadow hit.
	managerShadowLines = 64
	// managerMinEvidence is the epoch score below which no challenger can
	// displace the incumbent (prefetching is irrelevant this epoch).
	managerMinEvidence = 8
	// managerShadowEmpty marks an empty or consumed ring slot. Line
	// addresses are 64-aligned, so 1 can never collide (0 would: the
	// line holding address 0 is a legitimate line address).
	managerShadowEmpty = 1
)

func newManager(streamDegree int, st *stats.Sim) *managedPrefetcher {
	cands := []Prefetcher{newStreamPrefetcher(streamDegree), newSPP(), newSISB()}
	p := &managedPrefetcher{
		cands:  cands,
		shadow: make([][managerShadowLines]uint64, len(cands)),
		spos:   make([]int, len(cands)),
		hits:   make([]uint64, len(cands)),
		emit:   make([]uint64, len(cands)),
		st:     st,
	}
	for i := range p.shadow {
		for j := range p.shadow[i] {
			p.shadow[i][j] = managerShadowEmpty
		}
	}
	return p
}

// Name implements Prefetcher.
func (p *managedPrefetcher) Name() string { return "managed" }

// ActiveName returns the currently selected candidate's name (tests and
// the stats block read it; the policy is otherwise opaque).
func (p *managedPrefetcher) ActiveName() string { return p.cands[p.active].Name() }

// Fill implements Prefetcher, forwarding to the active candidate (only
// its candidates are ever issued).
func (p *managedPrefetcher) Fill(line uint64) { p.cands[p.active].Fill(line) }

// Hit implements Prefetcher. A consumed prefetch is the active
// candidate's equivalent of a shadow hit: its issued lines turn would-be
// misses into hits, so the miss-driven shadow scan can never credit them.
// Without this credit the incumbent is systematically underrated — every
// miss it covers disappears from the scoring stream while idle candidates
// keep collecting hypothetical credit — and the manager switches away
// from exactly the schemes that are working.
func (p *managedPrefetcher) Hit(line uint64) {
	p.hits[p.active]++
	p.cands[p.active].Hit(line)
}

// Observe implements Prefetcher: score shadows on misses, train every
// candidate, return the active candidate's emissions (throttled to one
// line while its accuracy is poor), and run the epoch policy.
func (p *managedPrefetcher) Observe(ev AccessEvent) []uint64 {
	if ev.Miss {
		for i := range p.cands {
			ring := &p.shadow[i]
			for j := range ring {
				if ring[j] == ev.Line {
					p.hits[i]++
					ring[j] = managerShadowEmpty // consume: one miss, one credit
					break
				}
			}
		}
	}

	var out []uint64
	for i, c := range p.cands {
		cand := c.Observe(ev)
		p.emit[i] += uint64(len(cand))
		for _, line := range cand {
			p.shadow[i][p.spos[i]] = line
			p.spos[i] = (p.spos[i] + 1) % managerShadowLines
		}
		if i == p.active {
			out = cand
		}
	}
	if p.throttled && len(out) > 1 {
		out = out[:1]
	}

	if p.accesses++; p.accesses >= managerEpoch {
		p.endEpoch()
	}
	return out
}

// endEpoch applies the selection and throttle policy and resets the
// epoch counters.
func (p *managedPrefetcher) endEpoch() {
	p.accesses = 0
	if p.st != nil {
		p.st.L1PF.ManagerEpochs++
	}

	// Deterministic argmax: lowest index wins ties, so candidate order
	// (stream, spp, sisb) is the documented preference order.
	best := 0
	for i := 1; i < len(p.cands); i++ {
		if p.hits[i] > p.hits[best] {
			best = i
		}
	}
	if best != p.active && p.hits[best] >= managerMinEvidence &&
		p.hits[best]*4 > p.hits[p.active]*5 {
		p.active = best
		p.throttled = false
		if p.st != nil {
			p.st.L1PF.ManagerSwitches++
		}
	}

	// Throttle the incumbent when it floods candidates that cover
	// nothing; recover as soon as an epoch shows acceptable accuracy.
	a := p.active
	p.throttled = p.emit[a] >= 32 && p.hits[a]*8 < p.emit[a]
	if p.throttled && p.st != nil {
		p.st.L1PF.ManagerThrottledEpochs++
	}

	for i := range p.cands {
		p.hits[i], p.emit[i] = 0, 0
	}
}
