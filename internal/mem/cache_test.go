package mem

import (
	"testing"
	"testing/quick"

	"rfpsim/internal/isa"
)

func TestNewCachePanicsOnBadGeometry(t *testing.T) {
	cases := [][2]int{{0, 4}, {64, 0}, {3, 4}, {-1, 2}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%d,%d) did not panic", c[0], c[1])
				}
			}()
			NewCache(c[0], c[1])
		}()
	}
}

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache(4, 2)
	addr := uint64(0x1000)
	if c.Lookup(addr) {
		t.Error("cold cache must miss")
	}
	c.Insert(addr)
	if !c.Lookup(addr) {
		t.Error("inserted line must hit")
	}
	// A different offset in the same line must hit.
	if !c.Lookup(addr + 63) {
		t.Error("same-line access must hit")
	}
	// The next line must miss.
	if c.Lookup(addr + 64) {
		t.Error("next line must miss")
	}
}

func TestCacheSizeBytes(t *testing.T) {
	c := NewCache(64, 12)
	if got := c.SizeBytes(); got != 48*1024 {
		t.Errorf("SizeBytes = %d, want 48KiB", got)
	}
	if c.Sets() != 64 || c.Ways() != 12 {
		t.Error("geometry accessors wrong")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1, 2) // one set, two ways
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Insert(a)
	c.Insert(b)
	c.Lookup(a) // a becomes MRU
	c.Insert(d) // must evict b
	if !c.Contains(a) {
		t.Error("MRU line a was evicted")
	}
	if c.Contains(b) {
		t.Error("LRU line b should have been evicted")
	}
	if !c.Contains(d) {
		t.Error("new line d missing")
	}
}

func TestCacheInsertRefreshesExisting(t *testing.T) {
	c := NewCache(1, 2)
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Insert(a)
	c.Insert(b)
	c.Insert(a) // refresh, not duplicate
	c.Insert(d) // should evict b (a is MRU)
	if c.Contains(b) || !c.Contains(a) || !c.Contains(d) {
		t.Error("re-insert did not refresh LRU")
	}
}

func TestCacheContainsDoesNotTouchLRU(t *testing.T) {
	c := NewCache(1, 2)
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Insert(a)
	c.Insert(b)
	c.Contains(a) // must NOT refresh a
	c.Insert(d)   // evicts a (still LRU)
	if c.Contains(a) {
		t.Error("Contains perturbed replacement state")
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(4, 2)
	for i := uint64(0); i < 8; i++ {
		c.Insert(i * 64)
	}
	c.Flush()
	for i := uint64(0); i < 8; i++ {
		if c.Contains(i * 64) {
			t.Fatalf("line %d survived flush", i)
		}
	}
}

// Property: a line just inserted is always present; capacity is never
// exceeded per set (inserting `ways` distinct lines of one set keeps all).
func TestCacheInsertionProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := NewCache(16, 4)
		for _, a := range addrs {
			addr := uint64(a)
			c.Insert(addr)
			if !c.Contains(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a set retains its `ways` most-recently-touched distinct lines.
func TestCacheLRUStackProperty(t *testing.T) {
	const ways = 4
	c := NewCache(1, ways)
	var touched []uint64
	// Touch a deterministic pseudo-random sequence of 12 distinct lines.
	for i := 0; i < 200; i++ {
		line := uint64((i*7)%12) * isa.CacheLineSize
		c.Insert(line)
		touched = append(touched, line)
	}
	// Compute the 4 most recently touched distinct lines.
	recent := map[uint64]bool{}
	for i := len(touched) - 1; i >= 0 && len(recent) < ways; i-- {
		recent[touched[i]] = true
	}
	for line := range recent {
		if !c.Contains(line) {
			t.Errorf("recently used line %#x evicted", line)
		}
	}
}

func TestTLBGeometryPanics(t *testing.T) {
	cases := [][2]int{{0, 4}, {64, 0}, {64, 48}, {6, 4}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTLB(%d,%d) did not panic", c[0], c[1])
				}
			}()
			NewTLB(c[0], c[1])
		}()
	}
}

func TestTLBHitMissAndLRU(t *testing.T) {
	tlb := NewTLB(4, 4) // 1 set, 4 ways
	if tlb.Lookup(1) {
		t.Error("cold TLB must miss")
	}
	for p := uint64(0); p < 4; p++ {
		tlb.Insert(p)
	}
	tlb.Lookup(0) // page 0 now MRU
	tlb.Insert(9) // evicts page 1 (LRU)
	if !tlb.Lookup(0) {
		t.Error("MRU page evicted")
	}
	if tlb.Lookup(1) {
		t.Error("LRU page should be gone")
	}
	// Re-insert existing refreshes.
	tlb.Insert(2)
	tlb.Insert(10)
	if !tlb.Lookup(2) {
		t.Error("refreshed page evicted")
	}
}
