package mem

import (
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/stats"
)

// TestPrefetcherFactoryNames pins the factory to the config-level name
// list: every name config validation accepts must build, and must answer
// to its own name.
func TestPrefetcherFactoryNames(t *testing.T) {
	for _, name := range config.Prefetchers() {
		p := newPrefetcher(name, 2, nil)
		if p.Name() != name {
			t.Errorf("newPrefetcher(%q).Name() = %q", name, p.Name())
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown prefetcher name did not panic")
		}
	}()
	newPrefetcher("bogus", 2, nil)
}

// refSPP is an unbounded-map reference model of the SPP training and
// lookahead rules, written independently of the fixed-table
// implementation: per-page signature state in a map, pattern rows as
// plain (delta -> counter) slices with the documented 4-way /
// weakest-victim / halve-at-saturation semantics. The property test
// below drives both models with the same access stream and requires
// identical candidate sequences, so any indexing, aliasing or
// confidence-arithmetic bug in the fixed-table version shows up as a
// divergence.
type refSPP struct {
	st map[uint64]*refSig
	pt map[uint16]*refPat
}

type refSig struct {
	sig  uint16
	last int8
}

type refPat struct {
	deltas []int8
	counts []uint8
	total  uint8
}

func (r *refPat) update(delta int8) {
	if r.total >= sppCounterMax {
		for i := range r.counts {
			r.counts[i] >>= 1
		}
		r.total >>= 1
	}
	r.total++
	for i, d := range r.deltas {
		if r.counts[i] > 0 && d == delta {
			r.counts[i]++
			return
		}
	}
	if len(r.deltas) < sppPatDeltas {
		// Claim an empty way. The fixed-table entry scans ways in order
		// and stops at the first zero-count way, so append matches.
		for i := range r.deltas {
			if r.counts[i] == 0 {
				r.deltas[i], r.counts[i] = delta, 1
				return
			}
		}
		r.deltas = append(r.deltas, delta)
		r.counts = append(r.counts, 1)
		return
	}
	victim := 0
	for i := range r.counts {
		if r.counts[i] < r.counts[victim] {
			victim = i
		}
	}
	r.deltas[victim], r.counts[victim] = delta, 1
}

func (r *refPat) best() (delta int8, count, total uint8) {
	bi := -1
	for i := range r.counts {
		if bi == -1 || r.counts[i] > r.counts[bi] {
			bi = i
		}
	}
	if bi == -1 || r.counts[bi] == 0 {
		return 0, 0, 0
	}
	return r.deltas[bi], r.counts[bi], r.total
}

func (r *refSPP) observe(line uint64) []uint64 {
	page := line >> 12
	off := int8((line >> lineShift) & (pageLineOffset - 1))
	e, seen := r.st[page]
	if !seen {
		r.st[page] = &refSig{last: off}
		return nil
	}
	delta := off - e.last
	if delta == 0 {
		return nil
	}
	if r.pt[e.sig] == nil {
		r.pt[e.sig] = &refPat{}
	}
	r.pt[e.sig].update(delta)
	e.sig = sppNextSig(e.sig, delta)
	e.last = off

	var out []uint64
	conf := 100
	sig, cur := e.sig, off
	for len(out) < sppMaxDegree {
		p := r.pt[sig]
		if p == nil {
			break
		}
		d, c, total := p.best()
		if total == 0 {
			break
		}
		conf = conf * int(c) / int(total)
		if conf < sppBaseThreshold {
			break
		}
		next := cur + d
		if next < 0 || next >= pageLineOffset {
			break
		}
		out = append(out, (page<<12)|uint64(next)<<lineShift)
		sig = sppNextSig(sig, d)
		cur = next
	}
	return out
}

// TestSPPMatchesReferenceModel drives the fixed-table SPP and the
// unbounded reference over an interleaved multi-page strided stream
// (with the page population kept under the signature table's 256 slots
// so direct mapping cannot alias) and requires candidate-for-candidate
// agreement on every access.
func TestSPPMatchesReferenceModel(t *testing.T) {
	impl := newSPP()
	ref := &refSPP{st: map[uint64]*refSig{}, pt: map[uint16]*refPat{}}

	// Deterministic LCG interleaving 40 pages, each walking its own
	// stride pattern (stride = 1 + page%5, with occasional direction
	// flips) through the 64-line page.
	state := uint64(0xDEADBEEF)
	next := func(n uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % n
	}
	offs := make([]int8, 40)
	for i := 0; i < 20000; i++ {
		page := next(40)
		stride := int8(1 + page%5)
		if next(13) == 0 {
			stride = -stride
		}
		off := offs[page] + stride
		if off < 0 {
			off += pageLineOffset
		}
		off %= pageLineOffset
		offs[page] = off
		line := page<<12 | uint64(off)<<lineShift

		got := impl.Observe(AccessEvent{Line: line, Miss: next(3) == 0, Load: true})
		want := ref.observe(line)
		if len(got) != len(want) {
			t.Fatalf("access %d (line %#x): impl emitted %d candidates %v, reference %d %v",
				i, line, len(got), got, len(want), want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("access %d (line %#x): candidate %d: impl %#x, reference %#x",
					i, line, j, got[j], want[j])
			}
		}
	}
}

// TestSPPCandidatesStayInPage pins SPP's page-local contract: no
// candidate may leave the triggering access's 4 KiB page, and the path
// is bounded by the maximum degree.
func TestSPPCandidatesStayInPage(t *testing.T) {
	p := newSPP()
	for i := 0; i < 200; i++ {
		line := uint64(7)<<12 | uint64(i%pageLineOffset)<<lineShift
		for _, cand := range p.Observe(AccessEvent{Line: line, Miss: true, Load: true}) {
			if cand>>12 != 7 {
				t.Fatalf("candidate %#x escaped page 7", cand)
			}
		}
	}
}

// TestSPPAccuracyThrottle pins the global feedback loop: a flood of
// fills with no consumption tightens the confidence threshold, and
// recovered accuracy relaxes it again.
func TestSPPAccuracyThrottle(t *testing.T) {
	p := newSPP()
	if got := p.threshold(); got != sppBaseThreshold {
		t.Fatalf("cold threshold = %d, want %d", got, sppBaseThreshold)
	}
	for i := 0; i < 300; i++ {
		p.Fill(uint64(i) << lineShift)
	}
	if got := p.threshold(); got != sppLowAccThreshold {
		t.Fatalf("all-junk threshold = %d, want %d", got, sppLowAccThreshold)
	}
	for i := 0; i < 300; i++ {
		p.Hit(uint64(i) << lineShift)
	}
	if got := p.threshold(); got != sppBaseThreshold {
		t.Fatalf("recovered threshold = %d, want %d", got, sppBaseThreshold)
	}
}

// TestSISBTrainReplayRoundTrip is the temporal-prefetching contract: a
// miss chain recorded under one PC replays, successor-first with
// degree-2 lookahead, when the chain restarts.
func TestSISBTrainReplayRoundTrip(t *testing.T) {
	p := newSISB()
	const pc = 0x401000
	chain := []uint64{0x10000, 0x58040, 0x23080, 0x770C0}
	for _, line := range chain {
		p.Observe(AccessEvent{Line: line, PC: pc, Miss: true, Load: true})
	}
	// Revisit the head: the replay must walk the recorded chain.
	got := p.Observe(AccessEvent{Line: chain[0], PC: pc, Miss: true, Load: true})
	if len(got) != sisbDegree || got[0] != chain[1] || got[1] != chain[2] {
		t.Fatalf("replay from %#x = %#x, want [%#x %#x]", chain[0], got, chain[1], chain[2])
	}
	got = p.Observe(AccessEvent{Line: chain[1], PC: pc, Miss: true, Load: true})
	if len(got) != sisbDegree || got[0] != chain[2] || got[1] != chain[3] {
		t.Fatalf("replay from %#x = %#x, want [%#x %#x]", chain[1], got, chain[2], chain[3])
	}
}

// TestSISBTrainsOnLoadMissesOnly: hits, stores and MSHR merges carry no
// temporal information in this scheme and must neither train nor
// predict.
func TestSISBTrainsOnLoadMissesOnly(t *testing.T) {
	p := newSISB()
	const pc = 0x401000
	for i, ev := range []AccessEvent{
		{Line: 0x1000, PC: pc, Miss: false, Load: true},  // L1 hit
		{Line: 0x2000, PC: pc, Miss: true, Load: false},  // store miss
		{Line: 0x3000, PC: pc, Miss: false, Load: false}, // store hit
	} {
		if got := p.Observe(ev); len(got) != 0 {
			t.Errorf("event %d predicted %v", i, got)
		}
	}
	// The ignored events above must not have linked 0x1000 -> anything.
	if got := p.Observe(AccessEvent{Line: 0x1000, PC: pc, Miss: true, Load: true}); len(got) != 0 {
		t.Errorf("untrained replay predicted %v", got)
	}
}

// TestManagerSwitchesToTemporal drives the manager with a workload only
// the temporal scheme can cover — a repeating irregular miss chain with
// every line in its own page, so streams never confirm and SPP never
// sees a second in-page access — and requires the epoch policy to hand
// the reins to SISB.
func TestManagerSwitchesToTemporal(t *testing.T) {
	st := &stats.Sim{}
	m := newManager(2, st)
	if m.ActiveName() != "stream" {
		t.Fatalf("initial active = %q, want stream (documented preference order)", m.ActiveName())
	}

	const pc = 0x401000
	lines := make([]uint64, 256)
	for i := range lines {
		lines[i] = uint64(i*7+3) << 12 // one line per page, irregular spacing
	}
	for pass := 0; pass < 10; pass++ {
		for _, line := range lines {
			m.Observe(AccessEvent{Line: line, PC: pc, Miss: true, Load: true})
		}
	}
	if m.ActiveName() != "sisb" {
		t.Errorf("active = %q after temporal-only workload, want sisb", m.ActiveName())
	}
	if st.L1PF.ManagerEpochs == 0 || st.L1PF.ManagerSwitches == 0 {
		t.Errorf("epoch counters not recorded: epochs %d, switches %d",
			st.L1PF.ManagerEpochs, st.L1PF.ManagerSwitches)
	}
}

// TestManagerThrottlesInaccurateActive: when the active prefetcher
// floods candidates that never cover a miss (and no challenger scores
// either), the manager must throttle it to degree 1 rather than switch.
func TestManagerThrottlesInaccurateActive(t *testing.T) {
	st := &stats.Sim{}
	m := newManager(4, st)

	// Three ascending misses per region confirm a stream (emitting
	// degree-4 candidates on the third), then the workload jumps to a
	// fresh region forever — every prediction is junk, for every scheme:
	// the per-region deltas vary region to region (coprime cycles), so
	// SPP's pattern table never accumulates confidence, and no line ever
	// repeats, so SISB never replays.
	region := uint64(0)
	var out []uint64
	for i := 0; i < 3*1024; i++ {
		var off uint64
		switch i % 3 {
		case 1:
			off = 1 + (region*7)%13
		case 2:
			off = 2 + (region*7)%13 + (region*11)%17
		}
		line := region<<12 + off<<lineShift
		out = m.Observe(AccessEvent{Line: line, Miss: true, Load: true})
		if i%3 == 2 {
			region++
		}
	}
	if !m.throttled {
		t.Error("manager did not throttle an active prefetcher with zero accuracy")
	}
	if st.L1PF.ManagerThrottledEpochs == 0 {
		t.Error("throttled epochs not counted")
	}
	if st.L1PF.ManagerSwitches != 0 {
		t.Errorf("manager switched (%d times) on an all-junk workload", st.L1PF.ManagerSwitches)
	}
	// While throttled, multi-line emissions are truncated to one.
	for i := 0; len(out) == 0 && i < 3; i++ {
		line := region<<12 + uint64(i)<<lineShift
		out = m.Observe(AccessEvent{Line: line, Miss: true, Load: true})
	}
	if len(out) > 1 {
		t.Errorf("throttled manager emitted %d candidates, want at most 1", len(out))
	}
}

// TestHierarchyPrefetcherStats exercises the full lifecycle accounting
// through the hierarchy: issued fills, useful consumptions and the
// coverage/accuracy helpers, for each zoo member on a stream-friendly
// access pattern.
func TestHierarchyPrefetcherStats(t *testing.T) {
	for _, name := range config.Prefetchers() {
		t.Run(name, func(t *testing.T) {
			cfg := config.Baseline().Mem
			cfg.Prefetcher = name
			st := &stats.Sim{}
			h := NewHierarchy(cfg, config.OracleNone, st)
			// Two passes over a working set larger than the L1 (768
			// lines), so the second pass misses again: temporal schemes
			// need the revisit to replay the recorded chain, and the
			// stride schemes cover either pass.
			cycle := uint64(0)
			for pass := 0; pass < 2; pass++ {
				for line := uint64(0); line < 2048; line++ {
					h.Access(0x300000+line*64, 0x401000, cycle, true)
					cycle += 12
				}
			}
			if st.L1PF.Issued == 0 {
				t.Fatal("no prefetches issued on a pure stream")
			}
			if st.L1PF.Useful == 0 {
				t.Fatal("no prefetches consumed on a pure stream")
			}
			if st.L1PF.Useful > st.L1PF.Issued {
				t.Errorf("useful %d exceeds issued %d", st.L1PF.Useful, st.L1PF.Issued)
			}
			if acc := st.L1PFAccuracy(); acc <= 0 || acc > 1 {
				t.Errorf("accuracy %f out of range", acc)
			}
		})
	}
}

// TestHierarchyPrefetchTimingInvariant pins the refactor's timing
// contract: routing the stream prefetcher through the Prefetcher
// interface (and the prefetched-bit bookkeeping that came with it) must
// not change a single DoneAt relative to the legacy HWPrefetch knob —
// they are the same hardware.
func TestHierarchyPrefetchTimingInvariant(t *testing.T) {
	legacy := config.Baseline().Mem
	legacy.HWPrefetch = true
	zoo := config.Baseline().Mem
	zoo.Prefetcher = "stream"

	hl := NewHierarchy(legacy, config.OracleNone, nil)
	hz := NewHierarchy(zoo, config.OracleNone, nil)

	state := uint64(42)
	cycle := uint64(0)
	for i := 0; i < 5000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		// Mix of streaming and pointer-ish accesses over a few regions.
		var addr uint64
		if state>>62 == 0 {
			addr = (state >> 30) % (1 << 22)
		} else {
			addr = 0x100000 + uint64(i%2048)*64
		}
		rl := hl.Access(addr, 0x400000, cycle, true)
		rz := hz.Access(addr, 0x400000, cycle, true)
		if rl != rz {
			t.Fatalf("access %d (addr %#x): legacy %+v != zoo %+v", i, addr, rl, rz)
		}
		cycle += uint64(state>>58)%7 + 1
	}
}
