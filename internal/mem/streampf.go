package mem

// streamPrefetcher is a classic hardware next-line/stream cache prefetcher
// (Smith-style sequential prefetching with per-region direction
// confirmation). It exists to answer the natural question the paper leaves
// implicit: RFP attacks L1 *latency*, cache prefetchers attack *misses* —
// so their benefits compose. The experiments harness runs the ablation.
//
// It is the simplest Prefetcher implementation: PC-blind, trains on
// misses only, and ignores the fill/accuracy feedback channels.
type streamPrefetcher struct {
	entries [16]streamEntry
	stamp   uint64
	// degree is how many lines ahead a confirmed stream fetches.
	degree int
	// scratch backs observeMiss's return value, so a confirmed miss on
	// the demand path never allocates; see observeMiss's aliasing note.
	scratch []uint64
}

type streamEntry struct {
	region   uint64 // 4 KiB region tag
	lastLine uint64
	dir      int8 // +1 ascending, -1 descending, 0 unknown
	conf     uint8
	valid    bool
	lru      uint64
}

func newStreamPrefetcher(degree int) *streamPrefetcher {
	if degree <= 0 {
		degree = 2
	}
	return &streamPrefetcher{degree: degree, scratch: make([]uint64, 0, degree)}
}

// Name implements Prefetcher.
func (p *streamPrefetcher) Name() string { return "stream" }

// Observe implements Prefetcher: only true misses train a stream and can
// emit candidates, exactly as the pre-interface hierarchy drove it.
func (p *streamPrefetcher) Observe(ev AccessEvent) []uint64 {
	if !ev.Miss {
		return nil
	}
	return p.observeMiss(ev.Line)
}

// Fill implements Prefetcher; the stream scheme uses no fill feedback.
func (p *streamPrefetcher) Fill(line uint64) {}

// Hit implements Prefetcher; the stream scheme uses no accuracy feedback.
func (p *streamPrefetcher) Hit(line uint64) {}

// observeMiss records a demand miss to lineAddr and returns the line
// addresses worth prefetching (empty until a stream direction is
// confirmed twice). The returned slice aliases prefetcher-owned scratch
// storage and is only valid until the next observeMiss call; callers
// consume it immediately (as the hierarchy's miss path does).
func (p *streamPrefetcher) observeMiss(lineAddr uint64) []uint64 {
	region := lineAddr >> 12
	p.stamp++

	var e *streamEntry
	victim := 0
	for i := range p.entries {
		if p.entries[i].valid && p.entries[i].region == region {
			e = &p.entries[i]
			break
		}
		if !p.entries[i].valid {
			victim = i
			continue
		}
		if p.entries[victim].valid && p.entries[i].lru < p.entries[victim].lru {
			victim = i
		}
	}
	if e == nil {
		p.entries[victim] = streamEntry{
			region: region, lastLine: lineAddr, valid: true, lru: p.stamp,
		}
		return nil
	}
	e.lru = p.stamp

	var dir int8
	switch {
	case lineAddr > e.lastLine:
		dir = 1
	case lineAddr < e.lastLine:
		dir = -1
	default:
		return nil
	}
	if dir == e.dir {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.dir = dir
		e.conf = 0
	}
	e.lastLine = lineAddr
	if e.conf < 1 {
		return nil
	}

	out := p.scratch[:0]
	step := int64(dir) * 64
	next := int64(lineAddr)
	for i := 0; i < p.degree; i++ {
		next += step
		if next < 0 {
			break
		}
		out = append(out, uint64(next))
	}
	return out
}
