package mem

import (
	"fmt"
	"math/bits"
)

// tlbEntry is one way of one TLB set.
type tlbEntry struct {
	page  uint64
	valid bool
	lru   uint64
}

// TLB is a set-associative translation lookaside buffer indexed by page
// frame number. Translation itself is identity (the simulator runs on
// virtual addresses); the TLB exists to model the latency cliff of a miss
// and the paper's drop-RFP-on-DTLB-miss simplification.
type TLB struct {
	sets    int
	ways    int
	setMask uint64
	entries []tlbEntry
	stamp   uint64
}

// NewTLB builds a TLB with entries total entries and the given
// associativity. entries/ways must be a power of two.
func NewTLB(entries, ways int) *TLB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("mem: invalid TLB geometry %d/%d", entries, ways))
	}
	sets := entries / ways
	if bits.OnesCount(uint(sets)) != 1 {
		panic(fmt.Sprintf("mem: TLB sets %d not a power of two", sets))
	}
	return &TLB{
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		entries: make([]tlbEntry, sets*ways),
	}
}

func (t *TLB) setFor(page uint64) []tlbEntry {
	idx := int(page & t.setMask)
	return t.entries[idx*t.ways : (idx+1)*t.ways]
}

// Lookup probes for a page translation, refreshing LRU on a hit.
func (t *TLB) Lookup(page uint64) bool {
	set := t.setFor(page)
	for i := range set {
		if set[i].valid && set[i].page == page {
			t.stamp++
			set[i].lru = t.stamp
			return true
		}
	}
	return false
}

// Insert installs a translation, evicting LRU if needed.
func (t *TLB) Insert(page uint64) {
	set := t.setFor(page)
	t.stamp++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].page == page {
			set[i].lru = t.stamp
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = tlbEntry{page: page, valid: true, lru: t.stamp}
}
