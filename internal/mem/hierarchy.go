package mem

import (
	"rfpsim/internal/config"
	"rfpsim/internal/isa"
	"rfpsim/internal/stats"
)

// Result describes one hierarchy access.
type Result struct {
	// Level is the stats.Level* constant where the data was found.
	Level int
	// DoneAt is the cycle at which the data becomes available to
	// dependent instructions.
	DoneAt uint64
	// TLBMiss reports whether the access missed the DTLB (the page walk
	// latency is already folded into DoneAt).
	TLBMiss bool
}

// inflightMiss records an outstanding cache miss for MSHR merging: a second
// access to the same line before fillAt completes is an "MSHR hit" and gets
// its data when the original fill returns (Figure 2's MSHR-hits category).
type inflightMiss struct {
	lineAddr uint64
	fillAt   uint64
}

// Hierarchy is the three-level data cache hierarchy plus DTLB and DRAM. It
// is deliberately single-core and non-coherent: the paper's study is
// single-threaded.
type Hierarchy struct {
	cfg config.MemConfig

	l1  *Cache
	l2  *Cache
	llc *Cache
	tlb *TLB

	// latency[level] is the load-to-use latency when data is found at
	// level, after oracle adjustment.
	latency [stats.NumLevels]uint64

	inflight []inflightMiss // bounded by MSHR count; small linear scans

	pf Prefetcher // optional L1 hardware prefetcher (stream/spp/sisb/managed)

	st *stats.Sim
}

// NewHierarchy builds the hierarchy for cfg. oracle applies the Figure 1
// idealization (hits at level N served at level N-1's latency). st may be
// nil, in which case no statistics are recorded.
func NewHierarchy(cfg config.MemConfig, oracle config.OracleMode, st *stats.Sim) *Hierarchy {
	h := &Hierarchy{
		cfg: cfg,
		l1:  NewCache(cfg.L1Sets, cfg.L1Ways),
		l2:  NewCache(cfg.L2Sets, cfg.L2Ways),
		llc: NewCache(cfg.LLCSets, cfg.LLCWays),
		tlb: NewTLB(cfg.DTLBEntries, cfg.DTLBWays),
		st:  st,
	}
	if name := cfg.ActivePrefetcher(); name != "" {
		h.pf = newPrefetcher(name, cfg.HWPrefetchDegree, st)
	}
	h.latency[stats.LevelL1] = uint64(cfg.L1Latency)
	h.latency[stats.LevelL2] = uint64(cfg.L2Latency)
	h.latency[stats.LevelLLC] = uint64(cfg.LLCLatency)
	h.latency[stats.LevelMem] = uint64(cfg.MemLatency)
	switch oracle {
	case config.OracleL1ToRF:
		h.latency[stats.LevelL1] = 1
	case config.OracleL2ToL1:
		h.latency[stats.LevelL2] = uint64(cfg.L1Latency)
	case config.OracleLLCToL2:
		h.latency[stats.LevelLLC] = uint64(cfg.L2Latency)
	case config.OracleMemToLLC:
		h.latency[stats.LevelMem] = uint64(cfg.LLCLatency)
	}
	return h
}

// Latency returns the (oracle-adjusted) load-to-use latency for a given hit
// level.
func (h *Hierarchy) Latency(level int) uint64 { return h.latency[level] }

// NearHit reports whether a load served at level completes within the
// private-cache latency bound (the oracle-adjusted L2 latency). The
// CLP-driven RFP arming schedule treats a predicted near hit as safe to
// arm early: its fill time is short and precisely estimable, unlike an
// MSHR merge (whose latency depends on an unrelated in-flight miss) or an
// LLC/DRAM access (which a rename-time prefetch cannot beat anyway).
func (h *Hierarchy) NearHit(level int) bool {
	if level == stats.LevelMSHR {
		return false
	}
	return h.latency[level] <= h.latency[stats.LevelL2]
}

// L1Contains reports whether the line holding addr is present in the L1,
// without perturbing replacement state. DLVP's early probe uses this.
func (h *Hierarchy) L1Contains(addr uint64) bool {
	return h.l1.Contains(isa.LineAddr(addr))
}

// purge drops completed fills and returns the number of occupied MSHRs and
// the earliest completion among them.
func (h *Hierarchy) purge(now uint64) (occupied int, earliest uint64) {
	earliest = ^uint64(0)
	w := h.inflight[:0]
	for _, m := range h.inflight {
		if m.fillAt > now {
			w = append(w, m)
			if m.fillAt < earliest {
				earliest = m.fillAt
			}
		}
	}
	h.inflight = w
	return len(h.inflight), earliest
}

// findInflight returns the outstanding miss covering lineAddr, if any.
func (h *Hierarchy) findInflight(lineAddr uint64) (inflightMiss, bool) {
	for _, m := range h.inflight {
		if m.lineAddr == lineAddr {
			return m, true
		}
	}
	return inflightMiss{}, false
}

// Access performs a demand or prefetch access to addr at cycle now and
// returns where the data was found and when it is usable. pc is the program
// counter of the instruction behind the access (0 when the caller has none);
// the hardware prefetchers train on it. countLoad selects whether the access
// contributes to the Figure 2 load distribution statistics (demand loads and
// the RFP prefetches that stand in for them do; stores and wrong-address
// re-accesses pass false).
func (h *Hierarchy) Access(addr, pc, now uint64, countLoad bool) Result {
	line := isa.LineAddr(addr)
	page := isa.PageFrame(addr)
	var res Result
	if h.st != nil {
		h.st.L1Accesses++
	}

	start := now
	if !h.tlb.Lookup(page) {
		res.TLBMiss = true
		if h.st != nil {
			h.st.DTLBMisses++
		}
		h.tlb.Insert(page)
		start += uint64(h.cfg.PageWalkLatency)
	}

	// The fill for an in-flight miss has not reached the L1 array yet, so
	// outstanding misses take precedence over (eagerly updated) array
	// state: a second access to the line is an MSHR merge.
	occ, earliest := h.purge(start)
	trueMiss := false
	if m, merged := h.findInflight(line); merged {
		// Merge with the outstanding miss: data arrives with the
		// original fill (plus the L1-pipeline tail to deliver it).
		res.Level = stats.LevelMSHR
		res.DoneAt = m.fillAt
		if res.DoneAt < start+h.latency[stats.LevelL1] {
			res.DoneAt = start + h.latency[stats.LevelL1]
		}
		// A merge with an in-flight *prefetch* is a late prefetch:
		// covered, but the latency was only partly hidden.
		if h.pf != nil && h.l1.ConsumePrefetch(line) {
			h.pf.Hit(line)
			if h.st != nil {
				h.st.L1PF.Useful++
				h.st.L1PF.Late++
			}
		}
	} else if hit, wasPF := h.l1.LookupConsume(line); hit {
		res.Level = stats.LevelL1
		res.DoneAt = start + h.latency[stats.LevelL1]
		if wasPF && h.pf != nil {
			h.pf.Hit(line)
			if h.st != nil {
				h.st.L1PF.Useful++
			}
		}
	} else {
		trueMiss = true
		// A true miss needs a free MSHR; if all are busy the request
		// waits for the earliest completion.
		if occ >= h.cfg.L1MSHRs {
			start = earliest
		}
		switch {
		case h.l2.Lookup(line):
			res.Level = stats.LevelL2
		case h.llc.Lookup(line):
			res.Level = stats.LevelLLC
		default:
			res.Level = stats.LevelMem
		}
		res.DoneAt = start + h.latency[res.Level]
		// Fill the line into every level above the hit level
		// (inclusive hierarchy).
		h.l1.Insert(line)
		if res.Level >= stats.LevelLLC {
			h.l2.Insert(line)
		}
		if res.Level == stats.LevelMem {
			h.llc.Insert(line)
		}
		h.inflight = append(h.inflight, inflightMiss{lineAddr: line, fillAt: res.DoneAt})
	}

	// Hardware prefetching: the prefetcher observes every access (hits
	// train signature/temporal schemes; misses train streams) and its
	// candidates are issued behind the demand access, using leftover MSHRs
	// only.
	if h.pf != nil {
		ev := AccessEvent{Line: line, PC: pc, Miss: trueMiss, Load: countLoad}
		for _, pl := range h.pf.Observe(ev) {
			if len(h.inflight) >= h.cfg.L1MSHRs {
				if h.st != nil {
					h.st.L1PF.Dropped++
				}
				break
			}
			if h.l1.Contains(pl) {
				continue
			}
			if _, busy := h.findInflight(pl); busy {
				continue
			}
			lvl := stats.LevelMem
			if h.l2.Lookup(pl) {
				lvl = stats.LevelL2
			} else if h.llc.Lookup(pl) {
				lvl = stats.LevelLLC
			}
			fill := start + h.latency[lvl]
			h.l1.InsertPrefetched(pl)
			if lvl >= stats.LevelLLC {
				h.l2.Insert(pl)
			}
			if lvl == stats.LevelMem {
				h.llc.Insert(pl)
			}
			h.inflight = append(h.inflight, inflightMiss{lineAddr: pl, fillAt: fill})
			h.pf.Fill(pl)
			if h.st != nil {
				h.st.L1PF.Issued++
			}
		}
		if h.st != nil {
			h.st.L1PF.Unused += h.l1.TakePFUnused()
		}
	}

	if countLoad && h.st != nil {
		h.st.LoadHitLevel[res.Level]++
	}
	return res
}

// MSHRAvailable reports whether a new miss could take an MSHR at the given
// cycle, or whether the line is already present/in flight (in which case no
// new MSHR is needed). RFP requests, having the lowest priority, consult
// this before issuing so prefetch misses never starve demand loads of miss
// slots.
func (h *Hierarchy) MSHRAvailable(addr uint64, now uint64) bool {
	line := isa.LineAddr(addr)
	occ, _ := h.purge(now)
	if _, merged := h.findInflight(line); merged {
		return true
	}
	if h.l1.Contains(line) {
		return true
	}
	return occ < h.cfg.L1MSHRs
}

// TLBCovers reports whether addr's page currently hits in the DTLB, without
// triggering a walk or refill. RFP consults this to implement the
// drop-on-DTLB-miss simplification before committing L1 bandwidth.
func (h *Hierarchy) TLBCovers(addr uint64) bool {
	return h.tlb.Lookup(isa.PageFrame(addr))
}

// Warm preloads the line holding addr into all levels; workload warmup uses
// it so measurement windows start with realistic cache state.
func (h *Hierarchy) Warm(addr uint64) {
	line := isa.LineAddr(addr)
	h.llc.Insert(line)
	h.l2.Insert(line)
	h.l1.Insert(line)
	h.tlb.Insert(isa.PageFrame(addr))
}
