package mem

import (
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/stats"
)

func testHierarchy(oracle config.OracleMode) (*Hierarchy, *stats.Sim) {
	st := &stats.Sim{}
	cfg := config.Baseline().Mem
	return NewHierarchy(cfg, oracle, st), st
}

func TestHierarchyColdMissThenHit(t *testing.T) {
	h, st := testHierarchy(config.OracleNone)
	r := h.Access(0x10000, 0, 100, true)
	if r.Level != stats.LevelMem {
		t.Fatalf("cold access level = %s", stats.LevelName(r.Level))
	}
	if !r.TLBMiss {
		t.Error("cold access should miss DTLB")
	}
	// DoneAt = 100 + pagewalk(30) + mem(200).
	if r.DoneAt != 100+30+200 {
		t.Errorf("DoneAt = %d, want 330", r.DoneAt)
	}
	// Second access after fill: L1 hit at L1 latency, TLB warm.
	r2 := h.Access(0x10000, 0, 400, true)
	if r2.Level != stats.LevelL1 || r2.TLBMiss {
		t.Errorf("refill access level=%s tlbmiss=%v", stats.LevelName(r2.Level), r2.TLBMiss)
	}
	if r2.DoneAt != 400+5 {
		t.Errorf("L1 hit DoneAt = %d, want 405", r2.DoneAt)
	}
	if st.LoadHitLevel[stats.LevelMem] != 1 || st.LoadHitLevel[stats.LevelL1] != 1 {
		t.Errorf("level stats wrong: %v", st.LoadHitLevel)
	}
	if st.DTLBMisses != 1 {
		t.Errorf("DTLB misses = %d", st.DTLBMisses)
	}
}

func TestHierarchyMSHRMerge(t *testing.T) {
	h, st := testHierarchy(config.OracleNone)
	h.tlb.Insert(0x10000 >> 12)
	r1 := h.Access(0x10000, 0, 100, true)
	// Same line, before the fill completes: MSHR hit, data at the fill.
	r2 := h.Access(0x10020, 0, 150, true)
	if r2.Level != stats.LevelMSHR {
		t.Fatalf("merged access level = %s", stats.LevelName(r2.Level))
	}
	if r2.DoneAt != r1.DoneAt {
		t.Errorf("merge DoneAt = %d, want %d", r2.DoneAt, r1.DoneAt)
	}
	if st.LoadHitLevel[stats.LevelMSHR] != 1 {
		t.Error("MSHR stat not recorded")
	}
	// After the fill, it is a plain L1 hit.
	r3 := h.Access(0x10000, 0, r1.DoneAt+1, true)
	if r3.Level != stats.LevelL1 {
		t.Errorf("post-fill level = %s", stats.LevelName(r3.Level))
	}
}

func TestHierarchyMSHRMergeNeverFasterThanL1(t *testing.T) {
	h, _ := testHierarchy(config.OracleNone)
	h.tlb.Insert(0)
	r1 := h.Access(0, 0, 100, true)
	// Merge one cycle before the fill: data cannot appear faster than an
	// L1 pipeline traversal.
	r2 := h.Access(0, 0, r1.DoneAt-1, true)
	if r2.Level != stats.LevelMSHR {
		t.Fatalf("level = %s", stats.LevelName(r2.Level))
	}
	if r2.DoneAt < r1.DoneAt-1+5 {
		t.Errorf("merge returned faster than L1 latency: %d", r2.DoneAt)
	}
}

func TestHierarchyMSHRLimit(t *testing.T) {
	cfg := config.Baseline().Mem
	cfg.L1MSHRs = 2
	h := NewHierarchy(cfg, config.OracleNone, nil)
	// Pre-warm TLB for distinct pages.
	for i := uint64(0); i < 4; i++ {
		h.tlb.Insert(i * 16) // pages of addr i<<16
	}
	r1 := h.Access(0x0<<16, 0, 100, false)
	r2 := h.Access(0x1<<16, 0, 100, false)
	// Third distinct miss at the same cycle must wait for an MSHR.
	r3 := h.Access(0x2<<16, 0, 100, false)
	if r3.DoneAt <= r1.DoneAt && r3.DoneAt <= r2.DoneAt {
		t.Errorf("MSHR-starved miss did not queue: r3=%d r1=%d", r3.DoneAt, r1.DoneAt)
	}
	earliest := r1.DoneAt
	if r2.DoneAt < earliest {
		earliest = r2.DoneAt
	}
	if r3.DoneAt != earliest+200 {
		t.Errorf("queued miss DoneAt = %d, want %d", r3.DoneAt, earliest+200)
	}
}

func TestHierarchyLevelProgression(t *testing.T) {
	h, _ := testHierarchy(config.OracleNone)
	addr := uint64(0x4000)
	h.Warm(addr)
	// Evict from L1 only by filling its set with conflicting lines.
	// L1: 64 sets; lines conflicting with addr are addr + k*64*64.
	for k := 1; k <= 12; k++ {
		h.Access(addr+uint64(k)*64*64, 0, uint64(1000+k*300), false)
	}
	r := h.Access(addr, 0, 100000, false)
	if r.Level != stats.LevelL2 {
		t.Errorf("evicted-from-L1 access level = %s, want L2", stats.LevelName(r.Level))
	}
	if r.DoneAt != 100000+14 {
		t.Errorf("L2 latency wrong: %d", r.DoneAt-100000)
	}
}

func TestHierarchyOracleLatencies(t *testing.T) {
	cases := []struct {
		oracle config.OracleMode
		level  int
		want   uint64
	}{
		{config.OracleNone, stats.LevelL1, 5},
		{config.OracleL1ToRF, stats.LevelL1, 1},
		{config.OracleL2ToL1, stats.LevelL2, 5},
		{config.OracleLLCToL2, stats.LevelLLC, 14},
		{config.OracleMemToLLC, stats.LevelMem, 40},
	}
	for _, c := range cases {
		h, _ := testHierarchy(c.oracle)
		if got := h.Latency(c.level); got != c.want {
			t.Errorf("oracle %v: latency(%s) = %d, want %d",
				c.oracle, stats.LevelName(c.level), got, c.want)
		}
	}
	// Oracle must not change other levels.
	h, _ := testHierarchy(config.OracleL1ToRF)
	if h.Latency(stats.LevelMem) != 200 {
		t.Error("oracle L1->RF changed DRAM latency")
	}
}

func TestHierarchyTLBCoversIsNonDestructive(t *testing.T) {
	h, st := testHierarchy(config.OracleNone)
	if h.TLBCovers(0x123456) {
		t.Error("cold TLB should not cover")
	}
	if st.DTLBMisses != 0 {
		t.Error("TLBCovers must not count misses")
	}
	h.Warm(0x123456)
	if !h.TLBCovers(0x123456) {
		t.Error("warmed page should be covered")
	}
}

func TestHierarchyWarm(t *testing.T) {
	h, st := testHierarchy(config.OracleNone)
	h.Warm(0x8000)
	r := h.Access(0x8000, 0, 10, true)
	if r.Level != stats.LevelL1 || r.TLBMiss {
		t.Errorf("warmed access level=%s tlb=%v", stats.LevelName(r.Level), r.TLBMiss)
	}
	if st.LoadHitLevel[stats.LevelL1] != 1 {
		t.Error("stat missing")
	}
}

func TestHierarchyCountLoadFlag(t *testing.T) {
	h, st := testHierarchy(config.OracleNone)
	h.Access(0x9000, 0, 5, false)
	var total uint64
	for _, c := range st.LoadHitLevel {
		total += c
	}
	if total != 0 {
		t.Error("countLoad=false must not record distribution stats")
	}
}

func TestHierarchyL1Contains(t *testing.T) {
	h, _ := testHierarchy(config.OracleNone)
	if h.L1Contains(0x7000) {
		t.Error("cold L1 contains?")
	}
	h.Warm(0x7000)
	if !h.L1Contains(0x7010) {
		t.Error("same line should be contained")
	}
}

// Property: any access completes no earlier than now + L1 latency and no
// later than now + pagewalk + queued-MSHR wait + DRAM latency.
func TestHierarchyLatencyBoundsProperty(t *testing.T) {
	h, _ := testHierarchy(config.OracleNone)
	cfg := config.Baseline().Mem
	rng := uint64(0x12345)
	now := uint64(100)
	for i := 0; i < 20000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		addr := (rng >> 11) % (64 << 20)
		now += rng % 7
		r := h.Access(addr, 0, now, false)
		lo := now + uint64(cfg.L1Latency)
		hi := now + uint64(cfg.PageWalkLatency) + uint64(cfg.MemLatency)*2
		if r.DoneAt < lo || r.DoneAt > hi {
			t.Fatalf("access %d: DoneAt %d outside [%d, %d] (level %s)",
				i, r.DoneAt, lo, hi, stats.LevelName(r.Level))
		}
		if r.Level < 0 || r.Level >= stats.NumLevels {
			t.Fatalf("invalid level %d", r.Level)
		}
	}
}

// Property: an immediate re-access of the same address is always an L1 hit
// at exactly L1 latency once the fill has completed.
func TestHierarchyRefillProperty(t *testing.T) {
	h, _ := testHierarchy(config.OracleNone)
	rng := uint64(7)
	now := uint64(0)
	for i := 0; i < 5000; i++ {
		rng = rng*6364136223846793005 + 1
		addr := (rng >> 13) % (8 << 20)
		r1 := h.Access(addr, 0, now, false)
		r2 := h.Access(addr, 0, r1.DoneAt+1, false)
		if r2.Level != stats.LevelL1 {
			t.Fatalf("re-access after fill at level %s", stats.LevelName(r2.Level))
		}
		if r2.DoneAt != r1.DoneAt+1+5 {
			t.Fatalf("re-access latency %d, want 5", r2.DoneAt-r1.DoneAt-1)
		}
		now = r1.DoneAt + 2
	}
}
