package mem

import (
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/stats"
)

func TestStreamPrefetcherDetectsAscending(t *testing.T) {
	p := newStreamPrefetcher(2)
	if got := p.observeMiss(0x1000); got != nil {
		t.Errorf("first miss prefetched %v", got)
	}
	if got := p.observeMiss(0x1040); got != nil {
		t.Errorf("direction-setting miss prefetched %v", got)
	}
	got := p.observeMiss(0x1080) // confirmed ascending
	if len(got) != 2 || got[0] != 0x10c0 || got[1] != 0x1100 {
		t.Errorf("confirmed stream prefetched %v, want next two lines", got)
	}
}

func TestStreamPrefetcherDetectsDescending(t *testing.T) {
	p := newStreamPrefetcher(1)
	p.observeMiss(0x2100)
	p.observeMiss(0x20c0)
	got := p.observeMiss(0x2080)
	if len(got) != 1 || got[0] != 0x2040 {
		t.Errorf("descending stream prefetched %v", got)
	}
}

func TestStreamPrefetcherIgnoresRandom(t *testing.T) {
	p := newStreamPrefetcher(2)
	total := 0
	for _, l := range []uint64{0x3000, 0x3400, 0x3040, 0x3800, 0x30c0, 0x3240} {
		total += len(p.observeMiss(l))
	}
	// Alternating directions within the region must not confirm a stream.
	if total > 2 {
		t.Errorf("random pattern produced %d prefetches", total)
	}
}

func TestStreamPrefetcherRegionIsolation(t *testing.T) {
	p := newStreamPrefetcher(2)
	// Interleaved streams in two regions must both be detected.
	addrsA := []uint64{0x10000, 0x10040, 0x10080, 0x100c0}
	addrsB := []uint64{0x50000, 0x50040, 0x50080, 0x500c0}
	var gotA, gotB int
	for i := range addrsA {
		gotA += len(p.observeMiss(addrsA[i]))
		gotB += len(p.observeMiss(addrsB[i]))
	}
	if gotA == 0 || gotB == 0 {
		t.Errorf("interleaved streams not both detected: %d %d", gotA, gotB)
	}
}

func TestHierarchyHWPrefetchHidesStreamMisses(t *testing.T) {
	cfg := config.Baseline().Mem
	run := func(hw bool) (l1OrMerge, total uint64) {
		cfg.HWPrefetch = hw
		st := &stats.Sim{}
		h := NewHierarchy(cfg, config.OracleNone, st)
		// Stream through 512 lines, 4 accesses per line, with realistic
		// inter-access spacing so prefetch fills can land.
		cycle := uint64(0)
		for line := uint64(0); line < 512; line++ {
			for k := uint64(0); k < 4; k++ {
				h.Access(0x100000+line*64+k*16, 0, cycle, true)
				cycle += 3
			}
		}
		return st.LoadHitLevel[stats.LevelL1] + st.LoadHitLevel[stats.LevelMSHR],
			512 * 4
	}
	base, total := run(false)
	pf, _ := run(true)
	if pf <= base {
		t.Errorf("HW prefetch did not raise L1+MSHR hits: %d vs %d of %d", pf, base, total)
	}
}

func TestHierarchyHWPrefetchRespectsMSHRs(t *testing.T) {
	cfg := config.Baseline().Mem
	cfg.HWPrefetch = true
	cfg.HWPrefetchDegree = 8
	cfg.L1MSHRs = 3
	h := NewHierarchy(cfg, config.OracleNone, nil)
	// With accesses spaced beyond the fill latency, each demand miss
	// occupies one MSHR and the prefetcher may only use the remaining
	// budget, despite its degree of 8.
	for line := uint64(0); line < 64; line++ {
		h.Access(0x200000+line*64, 0, uint64(line)*300, false)
		if len(h.inflight) > cfg.L1MSHRs {
			t.Fatalf("inflight %d exceeds MSHR budget %d", len(h.inflight), cfg.L1MSHRs)
		}
	}
}

// TestObserveMissDoesNotAllocate pins the scratch-slice contract: a
// confirmed stream miss on the demand path returns prefetch candidates
// without heap-allocating (the returned slice aliases prefetcher-owned
// storage).
func TestObserveMissDoesNotAllocate(t *testing.T) {
	p := newStreamPrefetcher(4)
	// Confirm an ascending stream so the measured calls take the
	// candidate-producing path.
	p.observeMiss(0x7000)
	p.observeMiss(0x7040)
	// 40 runs of one-line steps stay inside the 4 KiB region, so every
	// measured call hits the confirmed-stream path.
	line := uint64(0x7080)
	avg := testing.AllocsPerRun(40, func() {
		out := p.observeMiss(line)
		if len(out) != 4 {
			t.Fatalf("confirmed stream produced %d candidates, want 4", len(out))
		}
		line += 0x40
	})
	if avg != 0 {
		t.Errorf("observeMiss allocated %.1f times per confirmed miss, want 0", avg)
	}
}
