package mem

import "rfpsim/internal/stats"

// AccessEvent is one L1 access as a prefetcher sees it. Events are
// delivered for every hierarchy access — demand loads and stores as well
// as the RFP prefetches and probes that stand in for loads — so temporal
// and signature schemes can train on the same stream the L1 actually
// serves.
type AccessEvent struct {
	// Line is the cache-line address (addr &^ 63).
	Line uint64
	// PC is the program counter of the instruction behind the access
	// (0 when the caller has none, e.g. hierarchy unit tests).
	PC uint64
	// Miss reports a true L1 miss: the line was absent from the array and
	// from the MSHRs, and a fill from a lower level began.
	Miss bool
	// Load reports a demand load (the Figure 2 population).
	Load bool
}

// Prefetcher is a pluggable L1 hardware prefetcher. Implementations are
// deterministic (no RNG, no wall clock) and allocation-free in steady
// state: candidate slices returned by Observe alias scratch storage owned
// by the prefetcher and are only valid until the next Observe call.
//
// The hierarchy drives the contract:
//
//   - Observe is called once per L1 access with the line, PC and hit/miss
//     outcome; the prefetcher returns the line addresses it wants fetched.
//   - Fill reports that a candidate actually won an MSHR and was brought
//     into the L1 (candidates may be dropped: line already present or in
//     flight, MSHR budget exhausted).
//   - Hit reports that a later access consumed a line this prefetcher
//     brought in — the accuracy feedback signal.
type Prefetcher interface {
	// Name returns the configuration name ("stream", "spp", ...).
	Name() string
	// Observe records one access and returns prefetch candidates.
	Observe(ev AccessEvent) []uint64
	// Fill reports a candidate was issued into the L1.
	Fill(line uint64)
	// Hit reports a demand access consumed a prefetched line.
	Hit(line uint64)
}

// newPrefetcher builds the named prefetcher. The caller has validated the
// name (config.Core.Validate rejects unknown names with the valid list);
// an unknown name here is a programming error and panics. streamDegree
// configures the stream prefetcher's lookahead; st may be nil and is only
// used by the managed policy's epoch counters.
func newPrefetcher(name string, streamDegree int, st *stats.Sim) Prefetcher {
	switch name {
	case "stream":
		return newStreamPrefetcher(streamDegree)
	case "spp":
		return newSPP()
	case "sisb":
		return newSISB()
	case "managed":
		return newManager(streamDegree, st)
	}
	panic("mem: unknown prefetcher " + name)
}
