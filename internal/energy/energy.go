// Package energy turns the simulator's event counts into a first-order
// dynamic-energy estimate, making the paper's qualitative power argument
// (§5.6) quantitative: a correct RFP costs one L1 access like the load it
// replaces (no validation re-read), a wrong RFP adds one extra L1 access,
// while value/address predictors pay for extra table lookups, validation
// accesses and — dominating everything — pipeline flushes that re-fetch and
// re-execute dozens of uops.
//
// The per-event energies are in abstract energy units (EU) with relative
// magnitudes taken from published CACTI-class estimates for the structure
// sizes involved (a 48 KiB L1 read costs on the order of 20x a small
// predictor-table read; DRAM costs ~100x an L1 read; a flush wastes the
// pipeline energy of the squashed uops). Absolute joules are out of scope —
// the comparisons the paper makes are relative.
package energy

import (
	"fmt"

	"rfpsim/internal/stats"
)

// Cost holds the per-event energy coefficients (energy units per event).
type Cost struct {
	// UopBase is the base pipeline energy of one committed uop (fetch,
	// rename, schedule, execute, retire).
	UopBase float64
	// L1Access is one L1 data cache access (load, store, prefetch or
	// validation probe).
	L1Access float64
	// L2Access, LLCAccess and MemAccess are accesses to the outer levels.
	L2Access  float64
	LLCAccess float64
	MemAccess float64
	// PTLookup is one Prefetch Table (or value/address predictor table)
	// lookup or update; small SRAM.
	PTLookup float64
	// RFWrite is one physical register file write (the prefetch fill).
	RFWrite float64
	// FlushedUop is the wasted energy per squashed uop on a pipeline
	// flush (it consumed fetch/rename/schedule energy without retiring).
	FlushedUop float64
	// Replay is one scheduler re-dispatch (wasted select/wakeup energy).
	Replay float64
}

// DefaultCost returns coefficients with CACTI-class relative magnitudes.
func DefaultCost() Cost {
	return Cost{
		UopBase:    1.0,
		L1Access:   1.2,
		L2Access:   6.0,
		LLCAccess:  18.0,
		MemAccess:  120.0,
		PTLookup:   0.06,
		RFWrite:    0.15,
		FlushedUop: 0.7,
		Replay:     0.15,
	}
}

// Breakdown is the energy bill of one simulation run.
type Breakdown struct {
	// Base is the committed-uop pipeline energy.
	Base float64
	// Memory is the cache/DRAM access energy of demand traffic.
	Memory float64
	// Predictor is the table lookup/update energy (PT, VP, AP tables).
	Predictor float64
	// PrefetchExtra is the additional memory energy caused by prefetch
	// machinery: wrong RFP re-accesses and DLVP probe traffic.
	PrefetchExtra float64
	// FlushWaste is squashed-uop energy from VP/MD flushes plus scheduler
	// replays.
	FlushWaste float64
}

// Total sums the breakdown.
func (b Breakdown) Total() float64 {
	return b.Base + b.Memory + b.Predictor + b.PrefetchExtra + b.FlushWaste
}

// String renders the breakdown compactly.
func (b Breakdown) String() string {
	return fmt.Sprintf("total %.0f EU (base %.0f, memory %.0f, predictor %.0f, prefetch-extra %.0f, flush-waste %.0f)",
		b.Total(), b.Base, b.Memory, b.Predictor, b.PrefetchExtra, b.FlushWaste)
}

// estimateFlushedUops approximates how many in-flight uops each pipeline
// flush squashes: half a window of the machine's sustained parallelism.
// Exposed as a variable for tests.
var flushDepth = 40.0

// FromStats converts a run's statistics into an energy breakdown under the
// given cost model.
func FromStats(s *stats.Sim, c Cost) Breakdown {
	var b Breakdown
	b.Base = float64(s.Instructions) * c.UopBase

	// Demand memory traffic: every load is served once at its hit level
	// (correct RFP prefetches replace, not add to, the load's access).
	// Stores access the L1 as well.
	levelCost := [stats.NumLevels]float64{
		stats.LevelL1:   c.L1Access,
		stats.LevelMSHR: c.L1Access, // the merge re-reads the fill buffer
		stats.LevelL2:   c.L1Access + c.L2Access,
		stats.LevelLLC:  c.L1Access + c.L2Access + c.LLCAccess,
		stats.LevelMem:  c.L1Access + c.L2Access + c.LLCAccess + c.MemAccess,
	}
	for l := 0; l < stats.NumLevels; l++ {
		b.Memory += float64(s.LoadHitLevel[l]) * levelCost[l]
	}
	b.Memory += float64(s.Stores) * c.L1Access

	// Predictor tables: the PT is consulted at every load allocation and
	// retirement; VP/AP tables likewise at prediction and training.
	if s.RFP.Injected > 0 || s.RFP.Executed > 0 {
		b.Predictor += 2 * float64(s.Loads) * c.PTLookup
		// Prefetch fills write the register file.
		b.Predictor += float64(s.RFP.Executed) * c.RFWrite
		// A wrong prefetch forced the load to access the L1 again.
		b.PrefetchExtra += float64(s.RFP.Wrong) * c.L1Access
	}
	if s.VP.Predicted > 0 || s.AP.AddressPredictable > 0 {
		b.Predictor += 2 * float64(s.Loads) * c.PTLookup
	}
	// DLVP/EPP probes are extra L1 traffic on top of the demand access
	// (the demand load still executes to validate).
	b.PrefetchExtra += float64(s.AP.ProbeLaunched) * c.L1Access
	// EPP re-executions re-read the L1 at retirement.
	b.PrefetchExtra += float64(s.EPPReexecutions) * c.L1Access

	// Flush waste: VP mispredicts and memory-ordering violations squash
	// and re-process a window of uops; replays waste scheduler slots.
	flushes := float64(s.VPFlushes + s.MemOrderViolations)
	b.FlushWaste = flushes*flushDepth*c.FlushedUop + float64(s.Replays)*c.Replay

	return b
}

// PerUop normalizes a breakdown by committed uops (energy per instruction,
// the paper-style metric).
func PerUop(s *stats.Sim, c Cost) float64 {
	if s.Instructions == 0 {
		return 0
	}
	return FromStats(s, c).Total() / float64(s.Instructions)
}
