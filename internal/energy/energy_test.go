package energy

import (
	"strings"
	"testing"

	"rfpsim/internal/stats"
)

func baseSim() *stats.Sim {
	s := &stats.Sim{Instructions: 10000, Cycles: 5000, Loads: 2500, Stores: 800}
	s.LoadHitLevel[stats.LevelL1] = 2300
	s.LoadHitLevel[stats.LevelL2] = 150
	s.LoadHitLevel[stats.LevelMem] = 50
	return s
}

func TestBreakdownBasics(t *testing.T) {
	c := DefaultCost()
	b := FromStats(baseSim(), c)
	if b.Base != 10000*c.UopBase {
		t.Errorf("base = %v", b.Base)
	}
	if b.Memory <= 0 {
		t.Error("memory energy must be positive")
	}
	if b.Predictor != 0 || b.PrefetchExtra != 0 || b.FlushWaste != 0 {
		t.Error("plain baseline must have no predictor/prefetch/flush energy")
	}
	if b.Total() != b.Base+b.Memory {
		t.Error("total mismatch")
	}
	if !strings.Contains(b.String(), "total") {
		t.Error("String() malformed")
	}
}

func TestDRAMAccessesDominateMemoryEnergy(t *testing.T) {
	c := DefaultCost()
	few := baseSim()
	many := baseSim()
	many.LoadHitLevel[stats.LevelMem] = 500
	many.LoadHitLevel[stats.LevelL1] = 1850
	if FromStats(many, c).Memory <= FromStats(few, c).Memory*2 {
		t.Error("10x DRAM misses should far more than double memory energy")
	}
}

func TestCorrectRFPAddsOnlyTableEnergy(t *testing.T) {
	c := DefaultCost()
	base := baseSim()
	rfp := baseSim()
	rfp.RFP.Injected = 1800
	rfp.RFP.Executed = 1500
	rfp.RFP.Useful = 1500 // all correct: no extra L1 traffic
	eb := FromStats(base, c)
	er := FromStats(rfp, c)
	if er.PrefetchExtra != 0 {
		t.Errorf("all-correct RFP reported %v extra prefetch energy", er.PrefetchExtra)
	}
	overhead := er.Total() - eb.Total()
	// Table lookups + RF writes only: well under one L1 access per load.
	if overhead <= 0 || overhead > float64(rfp.Loads)*c.L1Access {
		t.Errorf("RFP overhead = %v, want small positive", overhead)
	}
}

func TestWrongRFPPaysOneL1AccessEach(t *testing.T) {
	c := DefaultCost()
	s := baseSim()
	s.RFP.Injected = 1000
	s.RFP.Executed = 1000
	s.RFP.Useful = 900
	s.RFP.Wrong = 100
	b := FromStats(s, c)
	if b.PrefetchExtra != 100*c.L1Access {
		t.Errorf("wrong-prefetch energy = %v, want %v", b.PrefetchExtra, 100*c.L1Access)
	}
}

func TestFlushesAreExpensive(t *testing.T) {
	c := DefaultCost()
	vp := baseSim()
	vp.VP.Predicted = 500
	vp.VP.Mispredicted = 50
	vp.VPFlushes = 50
	b := FromStats(vp, c)
	if b.FlushWaste < 50*flushDepth*c.FlushedUop {
		t.Errorf("flush waste = %v", b.FlushWaste)
	}
	// 50 flushes must cost more than 100 wrong prefetches would.
	wrong := baseSim()
	wrong.RFP.Executed = 1000
	wrong.RFP.Wrong = 100
	if b.FlushWaste <= FromStats(wrong, c).PrefetchExtra {
		t.Error("flushes must dominate wrong prefetches (the paper's power argument)")
	}
}

func TestProbeTrafficCharged(t *testing.T) {
	c := DefaultCost()
	s := baseSim()
	s.AP.AddressPredictable = 1000
	s.AP.ProbeLaunched = 600
	s.EPPReexecutions = 40
	b := FromStats(s, c)
	want := (600 + 40) * c.L1Access
	if b.PrefetchExtra != want {
		t.Errorf("probe energy = %v, want %v", b.PrefetchExtra, want)
	}
	if b.Predictor == 0 {
		t.Error("AP tables must cost lookup energy")
	}
}

func TestPerUop(t *testing.T) {
	c := DefaultCost()
	s := baseSim()
	if got := PerUop(s, c); got <= 0 {
		t.Errorf("PerUop = %v", got)
	}
	var empty stats.Sim
	if PerUop(&empty, c) != 0 {
		t.Error("PerUop of empty stats must be 0")
	}
}

func TestDefaultCostOrdering(t *testing.T) {
	c := DefaultCost()
	if !(c.PTLookup < c.RFWrite && c.RFWrite < c.L1Access) {
		t.Error("small structures must cost less than the L1")
	}
	if !(c.L1Access < c.L2Access && c.L2Access < c.LLCAccess && c.LLCAccess < c.MemAccess) {
		t.Error("hierarchy energies must increase outward")
	}
}
