package trace

// Catalog returns the 65-workload suite mirroring the paper's Table 3:
// the full SPEC CPU2017 suite, SPEC CPU2006, and well-known Cloud and
// Client benchmarks, plus lammps. Each entry is a seeded kernel mix whose
// parameters encode what is publicly known about the application's
// behaviour (pointer-chasing mcf, FP-bound wrf, irregular tonto/gamess/
// milc, call-heavy perlbench/xalancbmk, and so on).
//
// The profiles are tuned so the population reproduces the paper's aggregate
// facts: ~93% of loads hit the L1, roughly half of all loads are
// stride-predictable, FSPEC is FP-latency-bound (low RFP sensitivity), and
// a handful of workloads are strongly latency-critical with modest
// coverage (xalancbmk, namd, lammps, hadoop).
func Catalog() []Spec {
	var specs []Spec
	add := func(name string, cat Category, p profile) {
		specs = append(specs, Spec{
			Name:     name,
			Category: cat,
			Seed:     hashName(name),
			prof:     p,
		})
	}

	// --- Archetype profiles -------------------------------------------------

	// intMix: typical SPECint — stacks, branches, some streaming, a hash.
	intMix := profile{
		stream: 3, branchy: 3, stack: 2, hash: 1, chase: 2,
		foot: footL1, bigFoot: footL2, stride: 8,
		takenProb: 0.85, constVals: 0.20, strideVals: 0.10,
	}
	// memBound: mcf/omnetpp — dominated by random pointer chasing.
	memBound := profile{
		randChase: 5, chase: 2, stream: 1, stack: 1,
		foot: footL1, bigFoot: footMem, stride: 8,
		constVals: 0.20, strideVals: 0.05,
	}
	// chaseCrit: xalancbmk/namd/lammps/hadoop — strided pointer chases on
	// the critical path, diluted by surrounding work as in real programs;
	// moderate coverage, outsized gains.
	chaseCrit := profile{
		chase: 3, stream: 2, stack: 1, hash: 2, branchy: 1,
		foot: footL1, bigFoot: footL2, stride: 16,
		strideBreak: 0.02, constVals: 0.25, strideVals: 0.10,
	}
	// fpBound: FSPEC — serial FMA chains dominate; loads plentiful but
	// off the critical path.
	fpBound := profile{
		fp: 5, stencil: 2, stream: 1,
		foot: footL1b, stride: 8, fpChain: 3,
		constVals: 0.15, strideVals: 0.15,
	}
	// fpStream: bandwidth-style FP (lbm, bwaves) — stencils and streams
	// over cache-resident tiles (the blocked inner loops of FSPEC codes).
	fpStream := profile{
		stencil: 4, stream: 3, fp: 1,
		foot: footL1, stride: 8,
		constVals: 0.15, strideVals: 0.15,
	}
	// irregular: tonto/gamess/milc — hash-dominated, low stride coverage.
	irregular := profile{
		hash: 5, fp: 2, stack: 1, branchy: 1,
		foot: footL1, bigFoot: footL2, stride: 8,
		takenProb: 0.8, constVals: 0.15, strideVals: 0.05,
	}
	// gatherMix: astar/soplex — indirect accesses fed by strided indices.
	gatherMix := profile{
		gather: 4, stream: 2, branchy: 1, stack: 1,
		foot: footL1, bigFoot: footLLC, stride: 8,
		takenProb: 0.8, constVals: 0.2, strideVals: 0.1,
	}
	// branchHeavy: gobmk/sjeng/deepsjeng/leela — hard branches.
	branchHeavy := profile{
		branchy: 5, stack: 2, stream: 1, hash: 1,
		foot: footL1, bigFoot: footL2, stride: 8,
		takenProb: 0.78, constVals: 0.2, strideVals: 0.05,
	}
	// streamHeavy: libquantum/lbm/hmmer — regular streaming.
	streamHeavy := profile{
		stream: 5, stencil: 1, branchy: 1,
		foot: footL1, stride: 64,
		takenProb: 0.9, constVals: 0.2, strideVals: 0.2,
	}
	// cloudMix: server codes — stack/branch-heavy with B-tree index
	// probes (searchKernel) and L2/LLC-resident data.
	cloudMix := profile{
		stack: 3, branchy: 2, hash: 2, chase: 2, stream: 2, gather: 1, search: 1,
		foot: footL1, bigFoot: footLLC, stride: 8,
		takenProb: 0.78, constVals: 0.22, strideVals: 0.05,
	}
	// clientMix: interactive codes — mixed, mostly cache-resident.
	clientMix := profile{
		stream: 3, branchy: 2, stack: 2, fp: 2, hash: 1, chase: 1,
		foot: footL1, bigFoot: footL2, stride: 8,
		takenProb: 0.8, constVals: 0.2, strideVals: 0.1,
	}

	with := func(p profile, mut func(*profile)) profile { mut(&p); return p }

	// --- SPEC CPU2006 (29) --------------------------------------------------
	add("spec06_perlbench", Spec06, intMix)
	add("spec06_bzip2", Spec06, with(streamHeavy, func(p *profile) { p.gather = 2; p.stride = 8 }))
	add("spec06_gcc", Spec06, with(intMix, func(p *profile) { p.stack = 3; p.bigFoot = footLLC }))
	add("spec06_mcf", Spec06, memBound)
	add("spec06_gobmk", Spec06, with(branchHeavy, func(p *profile) { p.search = 1 }))
	add("spec06_hmmer", Spec06, with(streamHeavy, func(p *profile) { p.stride = 16 }))
	add("spec06_sjeng", Spec06, with(branchHeavy, func(p *profile) { p.hash = 2 }))
	add("spec06_libquantum", Spec06, with(streamHeavy, func(p *profile) { p.foot = footL1b }))
	add("spec06_h264ref", Spec06, with(clientMix, func(p *profile) { p.stencil = 3; p.stream = 4 }))
	add("spec06_omnetpp", Spec06, with(memBound, func(p *profile) { p.hash = 2; p.bigFoot = footLLC }))
	add("spec06_astar", Spec06, gatherMix)
	add("spec06_xalancbmk", Spec06, chaseCrit)
	add("spec06_bwaves", Spec06, fpStream)
	add("spec06_gamess", Spec06, irregular)
	add("spec06_milc", Spec06, with(irregular, func(p *profile) { p.bigFoot = footLLC }))
	add("spec06_zeusmp", Spec06, with(fpStream, func(p *profile) { p.foot = footL1b }))
	add("spec06_gromacs", Spec06, fpBound)
	add("spec06_cactusADM", Spec06, with(fpStream, func(p *profile) { p.fpChain = 4 }))
	add("spec06_leslie3d", Spec06, fpStream)
	add("spec06_namd", Spec06, with(chaseCrit, func(p *profile) { p.fp = 2 }))
	add("spec06_dealII", Spec06, with(chaseCrit, func(p *profile) { p.fp = 1; p.stride = 8 }))
	add("spec06_soplex", Spec06, with(gatherMix, func(p *profile) { p.bigFoot = footL2 }))
	add("spec06_povray", Spec06, with(fpBound, func(p *profile) { p.branchy = 2; p.takenProb = 0.75 }))
	add("spec06_calculix", Spec06, fpBound)
	add("spec06_gemsFDTD", Spec06, with(fpStream, func(p *profile) { p.foot = footL1b }))
	add("spec06_tonto", Spec06, with(irregular, func(p *profile) { p.hash = 6 }))
	add("spec06_lbm", Spec06, with(fpStream, func(p *profile) { p.foot = footL1b; p.stride = 64 }))
	add("spec06_wrf", Spec06, with(fpBound, func(p *profile) { p.fpChain = 5 }))
	add("spec06_sphinx3", Spec06, with(fpBound, func(p *profile) { p.stream = 3 }))

	// --- SPEC CPU2017 INT (10) ----------------------------------------------
	add("spec17_perlbench", Spec17Int, with(intMix, func(p *profile) { p.stack = 3 }))
	add("spec17_gcc", Spec17Int, with(intMix, func(p *profile) { p.bigFoot = footLLC; p.hash = 2 }))
	add("spec17_mcf", Spec17Int, with(memBound, func(p *profile) { p.gather = 2 }))
	add("spec17_omnetpp", Spec17Int, with(memBound, func(p *profile) { p.bigFoot = footLLC; p.chase = 3 }))
	add("spec17_xalancbmk", Spec17Int, with(chaseCrit, func(p *profile) { p.stack = 2 }))
	add("spec17_x264", Spec17Int, with(clientMix, func(p *profile) { p.stencil = 4; p.stream = 4 }))
	add("spec17_deepsjeng", Spec17Int, with(branchHeavy, func(p *profile) { p.bigFoot = footLLC; p.search = 1 }))
	add("spec17_leela", Spec17Int, with(branchHeavy, func(p *profile) { p.chase = 2 }))
	add("spec17_exchange2", Spec17Int, with(branchHeavy, func(p *profile) { p.takenProb = 0.75; p.stream = 2 }))
	add("spec17_xz", Spec17Int, with(streamHeavy, func(p *profile) { p.gather = 3; p.bigFoot = footLLC }))

	// --- SPEC CPU2017 FP (10) -----------------------------------------------
	add("spec17_bwaves", Spec17FP, fpStream)
	add("spec17_cactuBSSN", Spec17FP, with(fpStream, func(p *profile) { p.fpChain = 4 }))
	add("spec17_lbm", Spec17FP, with(fpStream, func(p *profile) { p.foot = footL1b; p.stride = 64 }))
	add("spec17_wrf", Spec17FP, with(fpBound, func(p *profile) { p.fpChain = 5 }))
	add("spec17_cam4", Spec17FP, with(fpBound, func(p *profile) { p.branchy = 1 }))
	add("spec17_pop2", Spec17FP, with(fpStream, func(p *profile) { p.stream = 4 }))
	add("spec17_imagick", Spec17FP, with(fpBound, func(p *profile) { p.stream = 2; p.fpChain = 4 }))
	add("spec17_nab", Spec17FP, with(fpBound, func(p *profile) { p.chase = 1 }))
	add("spec17_fotonik3d", Spec17FP, with(fpStream, func(p *profile) { p.foot = footL1b }))
	add("spec17_roms", Spec17FP, fpStream)

	// --- Cloud (8) ------------------------------------------------------------
	add("spark", Cloud, with(cloudMix, func(p *profile) { p.gather = 2 }))
	add("bigbench", Cloud, with(cloudMix, func(p *profile) { p.hash = 3; p.bigFoot = footMem }))
	add("specjbb", Cloud, with(cloudMix, func(p *profile) { p.chase = 3 }))
	add("specjenterprise", Cloud, cloudMix)
	add("hadoop", Cloud, with(chaseCrit, func(p *profile) { p.stack = 2; p.branchy = 2 }))
	add("tpcc", Cloud, with(cloudMix, func(p *profile) { p.hash = 3; p.stack = 4 }))
	add("tpce", Cloud, with(cloudMix, func(p *profile) { p.gather = 2; p.bigFoot = footMem }))
	add("cassandra", Cloud, with(cloudMix, func(p *profile) { p.chase = 3; p.hash = 3 }))

	// --- Client (7) -----------------------------------------------------------
	add("sysmark_office", Client, with(clientMix, func(p *profile) { p.stack = 3 }))
	add("sysmark_media", Client, with(clientMix, func(p *profile) { p.stencil = 3; p.stream = 4 }))
	add("sysmark_data", Client, with(clientMix, func(p *profile) { p.gather = 2; p.hash = 2 }))
	add("geekbench_int", Client, with(clientMix, func(p *profile) { p.branchy = 3; p.chase = 2 }))
	add("geekbench_fp", Client, with(fpBound, func(p *profile) { p.stream = 2 }))
	add("geekbench_crypto", Client, with(streamHeavy, func(p *profile) { p.stride = 16; p.hash = 1 }))
	add("geekbench_ml", Client, with(fpStream, func(p *profile) { p.gather = 2 }))

	// --- HPC (1) ----------------------------------------------------------------
	add("lammps", HPC, with(chaseCrit, func(p *profile) { p.fp = 2; p.stride = 32 }))

	return specs
}

// hashName derives a stable seed from a workload name (FNV-1a).
func hashName(name string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return h
}
