package trace

import (
	"testing"

	"rfpsim/internal/isa"
	"rfpsim/internal/prng"
)

// collect drives one kernel instance for n iterations and returns its uops.
func collect(k kernel, n int) []isa.MicroOp {
	g := &generator{rng: prng.New(1)}
	e := &emitter{g: g, pcBase: 0x1000, rng: g.rng, vals: newValueModel(0.3, 0.1)}
	for i := 0; i < n; i++ {
		k.emit(e)
	}
	return g.queue
}

func loadsOf(ops []isa.MicroOp) []isa.MicroOp {
	var out []isa.MicroOp
	for _, op := range ops {
		if op.IsLoad() {
			out = append(out, op)
		}
	}
	return out
}

func TestChaseKernelIsSerialAndStrided(t *testing.T) {
	k := &chaseKernel{base: 0x8000, footprint: 1 << 14, stride: 16, workALUs: 1, ptr: 1, acc: 2}
	ops := collect(k, 100)
	loads := loadsOf(ops)
	if len(loads) != 100 {
		t.Fatalf("%d loads", len(loads))
	}
	for i, l := range loads {
		// Serial: the address operand is the load's own destination.
		if l.Src1 != l.Dst {
			t.Fatal("chase load not self-dependent")
		}
		if i > 0 && i < 50 { // before any wrap
			if l.Addr != loads[i-1].Addr+16 {
				t.Fatalf("chase stride broken at %d: %#x -> %#x", i, loads[i-1].Addr, l.Addr)
			}
		}
	}
}

func TestStreamKernelHasTwoStridedStreams(t *testing.T) {
	k := &streamKernel{
		base: 0x10000, footprint: 1 << 13, stride: 8, storeEvery: 4,
		idx: 1, addr: 2, data: 3, data2: 4, acc: 5,
	}
	ops := collect(k, 64)
	loads := loadsOf(ops)
	if len(loads) != 128 {
		t.Fatalf("%d loads, want 2 per iteration", len(loads))
	}
	// Loads alternate between the two streams, each strided by 8.
	for i := 2; i < 40; i++ {
		if loads[i].Addr != loads[i-2].Addr+8 {
			t.Fatalf("stream %d stride broken at %d", i%2, i)
		}
	}
	// Stores appear every 4th iteration.
	stores := 0
	for _, op := range ops {
		if op.IsStore() {
			stores++
		}
	}
	if stores != 16 {
		t.Errorf("%d stores, want 16", stores)
	}
}

func TestGatherKernelDependence(t *testing.T) {
	k := &gatherKernel{
		idxBase: 0x20000, idxFoot: 1 << 12, idxStride: 8,
		dataBase: 0x40000, dataFoot: 1 << 16, dataHotProb: 0.75,
		idxAddr: 1, idx: 2, data: 3, acc: 4,
	}
	ops := collect(k, 50)
	loads := loadsOf(ops)
	if len(loads) != 100 {
		t.Fatalf("%d loads", len(loads))
	}
	for i := 0; i < len(loads); i += 2 {
		idxLoad, dataLoad := loads[i], loads[i+1]
		if dataLoad.Src1 != idxLoad.Dst {
			t.Fatal("data load does not depend on index load")
		}
		if idxLoad.Addr < 0x20000 || idxLoad.Addr >= 0x20000+1<<12 {
			t.Fatalf("index load outside its region: %#x", idxLoad.Addr)
		}
		if dataLoad.Addr < 0x40000 || dataLoad.Addr >= 0x40000+1<<16 {
			t.Fatalf("data load outside its region: %#x", dataLoad.Addr)
		}
	}
}

func TestGatherHotSubsetSkew(t *testing.T) {
	k := &gatherKernel{
		idxBase: 0x20000, idxFoot: 1 << 12, idxStride: 8,
		dataBase: 0x40000, dataFoot: 1 << 16, dataHotProb: 0.75,
		idxAddr: 1, idx: 2, data: 3, acc: 4,
	}
	ops := collect(k, 2000)
	loads := loadsOf(ops)
	hot := 0
	for i := 1; i < len(loads); i += 2 {
		if loads[i].Addr < 0x40000+uint64(1<<16)/16 {
			hot++
		}
	}
	frac := float64(hot) / float64(len(loads)/2)
	if frac < 0.6 || frac > 0.9 {
		t.Errorf("hot-subset fraction = %.2f, want ~0.75+tail", frac)
	}
}

func TestBranchyKernelEntropy(t *testing.T) {
	k := &branchyKernel{
		base: 0x30000, footprint: 1 << 12, stride: 8, takenProb: 0.7,
		addr: 1, data: 2, acc: 3,
	}
	ops := collect(k, 3000)
	dataTaken, dataTotal := 0, 0
	// Slot 3 is the data-dependent branch, slot 4 the loop branch.
	for _, op := range ops {
		if op.IsBranch() && op.PC == 0x1000+3*4 {
			dataTotal++
			if op.Taken {
				dataTaken++
			}
		}
	}
	if dataTotal == 0 {
		t.Fatal("no data-dependent branches found")
	}
	frac := float64(dataTaken) / float64(dataTotal)
	if frac < 0.63 || frac > 0.77 {
		t.Errorf("data branch taken rate = %.2f, want ~0.7", frac)
	}
}

func TestHashKernelHotSkewAndUnpredictability(t *testing.T) {
	k := &hashKernel{
		base: 0x50000, footprint: 1 << 17, hotProb: 0.9, hotFoot: 1 << 12,
		h: 1, data: 2, acc: 3, state: 7,
	}
	ops := collect(k, 4000)
	loads := loadsOf(ops)
	hot, strideRepeats := 0, 0
	for i, l := range loads {
		if l.Addr < 0x50000+1<<12 {
			hot++
		}
		if i >= 2 {
			s1 := int64(loads[i].Addr) - int64(loads[i-1].Addr)
			s2 := int64(loads[i-1].Addr) - int64(loads[i-2].Addr)
			if s1 == s2 {
				strideRepeats++
			}
		}
	}
	if frac := float64(hot) / float64(len(loads)); frac < 0.85 {
		t.Errorf("hot fraction = %.2f, want ~0.9", frac)
	}
	if frac := float64(strideRepeats) / float64(len(loads)); frac > 0.05 {
		t.Errorf("hash addresses repeat strides %.2f of the time; must be unpredictable", frac)
	}
}

func TestStackKernelForwardingDistance(t *testing.T) {
	k := &stackKernel{base: 0x60000, slots: 64, depth: 3, sReg: 1, dReg: 2, vReg: 3, side: 4}
	ops := collect(k, 200)
	var lastStores []uint64
	nearHits := 0
	reloads := 0
	for _, op := range ops {
		switch {
		case op.IsStore():
			lastStores = append(lastStores, op.Addr)
		case op.IsLoad():
			reloads++
			// The reload must target one of the last `depth+1` stored slots.
			for i := len(lastStores) - 1; i >= 0 && i >= len(lastStores)-4; i-- {
				if lastStores[i] == op.Addr {
					nearHits++
					break
				}
			}
		}
	}
	if reloads == 0 {
		t.Fatal("no reloads")
	}
	if frac := float64(nearHits) / float64(reloads); frac < 0.9 {
		t.Errorf("only %.2f of reloads target recent stores", frac)
	}
}

func TestFPKernelChainStructure(t *testing.T) {
	k := &fpKernel{
		base: 0x70000, footprint: 1 << 12, stride: 8, chainLen: 3,
		addr: 1, data: isa.FirstFPReg, f: [2]isa.RegID{isa.FirstFPReg + 1, isa.FirstFPReg + 2},
	}
	ops := collect(k, 10)
	fmas := 0
	for _, op := range ops {
		if op.Class == isa.OpFMA {
			fmas++
			// The FMA chain accumulates into f[0]: serial by construction.
			if op.Dst != isa.FirstFPReg+1 || op.Src1 != isa.FirstFPReg+1 {
				t.Fatal("FMA chain not self-dependent")
			}
		}
	}
	if fmas != 30 {
		t.Errorf("%d FMAs, want chainLen*iters = 30", fmas)
	}
}

func TestStencilKernelThreeLoadsOneStore(t *testing.T) {
	k := &stencilKernel{
		base: 0x80000, footprint: 1 << 13, stride: 8, outBase: 0x90000,
		addr: 1, in: [3]isa.RegID{isa.FirstFPReg, isa.FirstFPReg + 1, isa.FirstFPReg + 2},
		out: isa.FirstFPReg + 3,
	}
	ops := collect(k, 20)
	loads, stores := 0, 0
	for _, op := range ops {
		if op.IsLoad() {
			loads++
		}
		if op.IsStore() {
			stores++
			if op.Addr < 0x90000 {
				t.Fatal("store outside output region")
			}
		}
	}
	if loads != 60 || stores != 20 {
		t.Errorf("loads=%d stores=%d, want 60/20", loads, stores)
	}
}

func TestRandChaseDependenceMix(t *testing.T) {
	k := &randChaseKernel{base: 0xA0000, footprint: 1 << 20, depProb: 0.4, ptr: 1, idx: 2, acc: 3}
	ops := collect(k, 3000)
	dep, total := 0, 0
	for _, op := range ops {
		if op.IsLoad() {
			total++
			if op.Src1 == k.ptr {
				dep++
			}
		}
	}
	frac := float64(dep) / float64(total)
	if frac < 0.3 || frac > 0.5 {
		t.Errorf("dependent-load fraction = %.2f, want ~0.4", frac)
	}
}

func TestSearchKernelProbeStructure(t *testing.T) {
	k := &searchKernel{base: 0xB0000, elems: 4096, depth: 5, ptr: 1, acc: 2}
	ops := collect(k, 500)
	loads := loadsOf(ops)
	if len(loads) == 0 {
		t.Fatal("no probe loads")
	}
	// Every probe is serial (address from the previous load's value) and
	// inside the array.
	for _, l := range loads {
		if l.Src1 != l.Dst {
			t.Fatal("probe not dependent on previous probe")
		}
		if l.Addr < 0xB0000 || l.Addr >= 0xB0000+4096*8 {
			t.Fatalf("probe outside array: %#x", l.Addr)
		}
	}
	// Probes per search are bounded by depth.
	if perSearch := float64(len(loads)) / 500; perSearch > 5.01 || perSearch < 2 {
		t.Errorf("%.1f probes per search, want 2..5", perSearch)
	}
	// The compare branches are roughly 50/50 — hard for any predictor.
	taken, total := 0, 0
	for _, op := range ops {
		if op.IsBranch() && op.Src1 == isa.RegID(1) {
			total++
			if op.Taken {
				taken++
			}
		}
	}
	if frac := float64(taken) / float64(total); frac < 0.4 || frac > 0.6 {
		t.Errorf("compare branch bias %.2f, want ~0.5", frac)
	}
}
