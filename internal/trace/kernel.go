// Package trace synthesizes the 65-workload suite of the paper's Table 3.
//
// The paper evaluates on proprietary traces of SPEC CPU 2006/2017, Cloud and
// Client applications. Those cannot be redistributed, so each workload here
// is a deterministic, seeded composition of micro-kernels whose memory and
// dependence behaviour spans the same axes the paper's analysis relies on:
//
//   - strided streams (RFP-friendly, high ILP)
//   - strided pointer chases (RFP-friendly AND latency-critical: each load's
//     address operand is the previous load's result, the Figure 3 pattern)
//   - random pointer chases (memory-bound, unpredictable: mcf/omnetpp)
//   - gathers A[B[i]] (predictable index load feeding an unpredictable one)
//   - stencils (multiple parallel strided streams plus stores)
//   - FP/FMA chains (execution-latency-bound: FSPEC, low RFP sensitivity)
//   - branchy scans (front-end bound phases)
//   - stack frames (store-to-load forwarding and memory disambiguation)
//   - hash probes (computed addresses: stride-unpredictable L2/LLC traffic)
//
// The RFP hardware only ever observes program counters, virtual addresses
// and register dependencies, so these kernels exercise exactly the code
// paths a real trace would.
package trace

import (
	"rfpsim/internal/isa"
	"rfpsim/internal/prng"
)

// kernel produces one loop iteration of micro-ops at a time.
type kernel interface {
	// emit appends one iteration of uops via e.
	emit(e *emitter)
}

// emitter appends uops to the generator's pending queue on behalf of one
// kernel instance. Each instance owns a PC region (so static load PCs are
// stable across iterations, which stride predictors require) and a register
// window (so kernels do not create false cross-kernel dependencies).
type emitter struct {
	g      *generator
	pcBase uint64
	rng    *prng.Source
	vals   *valueModel
}

func (e *emitter) push(op isa.MicroOp) { e.g.queue = append(e.g.queue, op) }

// pc returns the static PC for a slot within the kernel's region.
func (e *emitter) pc(slot int) uint64 { return e.pcBase + uint64(slot)*4 }

// alu emits a single-cycle integer op dst <- s1 op s2.
func (e *emitter) alu(slot int, dst, s1, s2 isa.RegID) {
	e.push(isa.MicroOp{PC: e.pc(slot), Class: isa.OpALU, Dst: dst, Src1: s1, Src2: s2})
}

// opc emits a generic computation of the given class.
func (e *emitter) opc(slot int, class isa.OpClass, dst, s1, s2 isa.RegID) {
	e.push(isa.MicroOp{PC: e.pc(slot), Class: class, Dst: dst, Src1: s1, Src2: s2})
}

// load emits a load of addr into dst whose address depends on addrSrc.
func (e *emitter) load(slot int, dst, addrSrc isa.RegID, addr uint64) {
	pc := e.pc(slot)
	e.push(isa.MicroOp{
		PC: pc, Class: isa.OpLoad, Dst: dst, Src1: addrSrc, Src2: isa.NoReg,
		Addr: addr, Size: 8, Value: e.vals.valueFor(pc, addr, e.rng),
	})
}

// loadPtr emits a pointer load: its value is inherently unpredictable (a
// heap address), so value predictors must not be able to break the
// dependence chain through it — mispricing this is what made naive VP
// models look unrealistically strong.
func (e *emitter) loadPtr(slot int, dst, addrSrc isa.RegID, addr uint64) {
	e.push(isa.MicroOp{
		PC: e.pc(slot), Class: isa.OpLoad, Dst: dst, Src1: addrSrc, Src2: isa.NoReg,
		Addr: addr, Size: 8, Value: e.rng.Uint64(),
	})
}

// store emits a store of dataSrc to addr; addrSrc carries the address
// dependence.
func (e *emitter) store(slot int, addrSrc, dataSrc isa.RegID, addr uint64) {
	e.push(isa.MicroOp{
		PC: e.pc(slot), Class: isa.OpStore, Dst: isa.NoReg,
		Src1: addrSrc, Src2: dataSrc, Addr: addr, Size: 8,
	})
}

// branch emits a conditional branch; condSrc carries the condition
// dependence (loads feeding branches create critical resolution chains).
func (e *emitter) branch(slot int, condSrc isa.RegID, taken bool) {
	e.push(isa.MicroOp{
		PC: e.pc(slot), Class: isa.OpBranch, Dst: isa.NoReg,
		Src1: condSrc, Src2: isa.NoReg,
		Taken: taken, Target: e.pcBase,
	})
}

// valueModel assigns each static load PC a value pattern so that value
// predictors see realistic predictability: some loads return constants
// (flags, vtable pointers), some return strided values (induction data),
// the rest are effectively random.
type valueModel struct {
	classes   map[uint64]uint8 // 0 const, 1 stride, 2 random
	next      map[uint64]uint64
	constFrac float64
	strideVal float64
}

const (
	valConst  = 0
	valStride = 1
	valRandom = 2
)

func newValueModel(constFrac, strideFrac float64) *valueModel {
	return &valueModel{
		classes:   make(map[uint64]uint8),
		next:      make(map[uint64]uint64),
		constFrac: constFrac,
		strideVal: strideFrac,
	}
}

func (v *valueModel) valueFor(pc, addr uint64, rng *prng.Source) uint64 {
	cls, ok := v.classes[pc]
	if !ok {
		switch r := rng.Float64(); {
		case r < v.constFrac:
			cls = valConst
		case r < v.constFrac+v.strideVal:
			cls = valStride
		default:
			cls = valRandom
		}
		v.classes[pc] = cls
		v.next[pc] = pc * 0x9E3779B97F4A7C15
	}
	switch cls {
	case valConst:
		return v.next[pc]
	case valStride:
		v.next[pc] += 8
		return v.next[pc]
	default:
		return rng.Uint64()
	}
}

// regWindow doles out architectural registers to kernel instances.
type regWindow struct {
	next   isa.RegID
	fpNext isa.RegID
}

func newRegWindow() *regWindow { return &regWindow{next: 1, fpNext: isa.FirstFPReg} }

// intReg allocates the next free integer register, wrapping if the workload
// has very many kernel instances (wrapping creates benign extra
// dependencies, as real register pressure would).
func (w *regWindow) intReg() isa.RegID {
	r := w.next
	w.next++
	if w.next >= isa.FirstFPReg {
		w.next = 1
	}
	return r
}

func (w *regWindow) fpReg() isa.RegID {
	r := w.fpNext
	w.fpNext++
	if w.fpNext >= isa.NumArchRegs {
		w.fpNext = isa.FirstFPReg
	}
	return r
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

// streamKernel walks an array with a fixed stride, accumulating. High ILP:
// successive loads are independent, so the OOO window hides much of the L1
// latency; RFP mostly saves scheduler replays and bandwidth.
type streamKernel struct {
	base, footprint, stride, off uint64
	storeEvery                   int
	iter                         int
	strideBreak                  float64
	idx, addr, data, data2, acc  isa.RegID
}

func (k *streamKernel) emit(e *emitter) {
	k.iter++
	e.alu(0, k.addr, k.idx, isa.NoReg) // address computation
	e.load(1, k.data, k.addr, k.base+k.off)
	e.load(2, k.data2, k.addr, k.base+2*k.footprint+k.off) // second input stream
	e.alu(3, k.acc, k.acc, k.data)
	e.alu(4, k.acc, k.acc, k.data2)
	e.alu(5, k.idx, k.idx, isa.NoReg)
	if k.storeEvery > 0 && k.iter%k.storeEvery == 0 {
		e.store(6, k.addr, k.acc, k.base+k.footprint+k.off)
	}
	e.branch(7, k.idx, true)
	if k.strideBreak > 0 && e.rng.Bool(k.strideBreak) {
		k.off = e.rng.Uint64n(k.footprint) &^ 7
	} else {
		k.off = (k.off + k.stride) % k.footprint
	}
}

// chaseKernel is a *strided* pointer chase: each load's address operand is
// the previous load's destination (a serial, 5-cycles-per-hop chain), while
// the address sequence itself advances by a constant stride — the layout of
// sequentially allocated linked lists and array-embedded recurrences. This
// is RFP's sweet spot: stride-predictable and latency-critical (Figure 3).
type chaseKernel struct {
	base, footprint, stride, off uint64
	strideBreak                  float64
	workALUs                     int
	ptr, acc                     isa.RegID
}

func (k *chaseKernel) emit(e *emitter) {
	addr := k.base + k.off
	if k.strideBreak > 0 && e.rng.Bool(k.strideBreak) {
		k.off = e.rng.Uint64n(k.footprint) &^ 7
	} else {
		k.off = (k.off + k.stride) % k.footprint
	}
	// The loaded VALUE is the next node's address (sequential allocation
	// makes node->next pointers strided): value predictors can break the
	// chain too — but they pay a pipeline flush at every stride break,
	// where RFP just re-reads the cache. This asymmetry is the paper's
	// §5.3 argument, and it emerges here mechanically.
	e.push(isa.MicroOp{
		PC: e.pc(0), Class: isa.OpLoad, Dst: k.ptr, Src1: k.ptr, Src2: isa.NoReg,
		Addr: addr, Size: 8, Value: k.base + k.off,
	})
	e.alu(1, k.acc, k.acc, k.ptr)
	for i := 0; i < k.workALUs; i++ {
		e.alu(2+i, k.acc, k.acc, isa.NoReg)
	}
	e.branch(2+k.workALUs, k.acc, true)
}

// randChaseKernel is a random pointer walk over a configurable footprint —
// the mcf/omnetpp pattern. Addresses are unpredictable, so neither RFP nor
// stride prefetching helps; large footprints make it DRAM-bound. Real
// pointer codes have partial memory-level parallelism (several chains in
// flight), modelled by depProb: each load depends on the previous load's
// value with that probability and is otherwise independent.
type randChaseKernel struct {
	base, footprint uint64
	depProb         float64
	ptr, idx, acc   isa.RegID
}

func (k *randChaseKernel) emit(e *emitter) {
	off := e.rng.Uint64n(k.footprint) &^ 7
	src := k.idx // independent: address from a cheap ALU chain
	if e.rng.Bool(k.depProb) {
		src = k.ptr // dependent: address needs the previous load's value
	}
	e.alu(0, k.idx, k.idx, isa.NoReg)
	e.loadPtr(1, k.ptr, src, k.base+off)
	e.alu(2, k.acc, k.acc, k.ptr)
	e.branch(3, k.acc, true)
}

// gatherKernel computes acc += A[B[i]]: the index load is strided and
// RFP-predictable; the data load's address depends on the index load's
// result and is unpredictable. Accelerating the index load shortens the
// critical path into the data load.
type gatherKernel struct {
	idxBase, idxFoot, idxStride, idxOff uint64
	dataBase, dataFoot                  uint64
	dataHotProb                         float64 // skewed reuse: most probes hit a hot subset
	idxAddr, idx, data, acc             isa.RegID
}

func (k *gatherKernel) emit(e *emitter) {
	e.alu(0, k.idxAddr, k.idxAddr, isa.NoReg)
	// Index arrays hold strided integers (B[i] = c + k*i in real gathers),
	// so the index load's VALUE is predictable even though the data
	// load's address is not — the load population value predictors
	// genuinely help, because breaking the idx->data dependence removes
	// a whole load latency from the critical path.
	e.push(isa.MicroOp{
		PC: e.pc(1), Class: isa.OpLoad, Dst: k.idx, Src1: k.idxAddr, Src2: isa.NoReg,
		Addr: k.idxBase + k.idxOff, Size: 8, Value: k.idxOff * 3,
	})
	span := k.dataFoot
	if e.rng.Bool(k.dataHotProb) {
		span = k.dataFoot / 16
	}
	dataOff := e.rng.Uint64n(span) &^ 7
	e.load(2, k.data, k.idx, k.dataBase+dataOff) // depends on index load
	e.alu(3, k.acc, k.acc, k.data)
	e.branch(4, k.acc, true)
	k.idxOff = (k.idxOff + k.idxStride) % k.idxFoot
}

// stencilKernel reads three neighbouring strided streams, combines them
// with FP ops and stores the result — the compiled shape of array stencils
// (zeusmp/leslie3d/cactus).
type stencilKernel struct {
	base, footprint, stride, off uint64
	strideBreak                  float64
	outBase                      uint64
	addr                         isa.RegID
	in                           [3]isa.RegID
	out                          isa.RegID
}

func (k *stencilKernel) emit(e *emitter) {
	e.alu(0, k.addr, k.addr, isa.NoReg)
	for i := 0; i < 3; i++ {
		e.load(1+i, k.in[i], k.addr, k.base+(k.off+uint64(i)*8)%k.footprint)
	}
	e.opc(4, isa.OpFP, k.out, k.in[0], k.in[1])
	e.opc(5, isa.OpFMA, k.out, k.out, k.in[2])
	e.store(6, k.addr, k.out, k.outBase+k.off)
	e.branch(7, k.addr, true)
	if k.strideBreak > 0 && e.rng.Bool(k.strideBreak) {
		k.off = e.rng.Uint64n(k.footprint) &^ 7
	} else {
		k.off = (k.off + k.stride) % k.footprint
	}
}

// fpKernel is a serial FMA chain fed by an occasional strided load — the
// FSPEC pattern. The chain's FP latency dominates, so even perfectly
// prefetched loads barely move IPC (the paper's wrf observation).
type fpKernel struct {
	base, footprint, stride, off uint64
	strideBreak                  float64
	chainLen                     int
	addr, data                   isa.RegID
	f                            [2]isa.RegID
}

func (k *fpKernel) emit(e *emitter) {
	e.alu(0, k.addr, k.addr, isa.NoReg)
	e.load(1, k.data, k.addr, k.base+k.off)
	for i := 0; i < k.chainLen; i++ {
		e.opc(2+i, isa.OpFMA, k.f[0], k.f[0], k.f[1]) // serial FMA chain
	}
	e.opc(2+k.chainLen, isa.OpFP, k.f[1], k.data, k.f[1])
	e.branch(3+k.chainLen, k.addr, true)
	if k.strideBreak > 0 && e.rng.Bool(k.strideBreak) {
		k.off = e.rng.Uint64n(k.footprint) &^ 7
	} else {
		k.off = (k.off + k.stride) % k.footprint
	}
}

// branchyKernel loads a strided value and branches on it with configurable
// predictability — compression/interpreter/game-tree codes (gobmk, sjeng,
// perlbench). Low takenProb entropy keeps the predictor accurate; values
// near 0.5 make it hard and shift the bottleneck to the front-end.
type branchyKernel struct {
	base, footprint, stride, off uint64
	takenProb                    float64
	addr, data, acc              isa.RegID
}

func (k *branchyKernel) emit(e *emitter) {
	e.alu(0, k.addr, k.addr, isa.NoReg)
	// The loaded value controls a data-dependent branch, so by definition
	// it varies unpredictably — a value predictor must not be able to
	// constant-fold the branch condition.
	e.loadPtr(1, k.data, k.addr, k.base+k.off)
	e.alu(2, k.acc, k.acc, k.data)
	e.branch(3, k.data, e.rng.Bool(k.takenProb)) // data-dependent branch
	e.branch(4, k.acc, true)                     // loop branch
	k.off = (k.off + k.stride) % k.footprint
}

// stackKernel writes then shortly reads back stack slots: store-to-load
// forwarding, unresolved-store disambiguation and the occasional ordering
// violation — call-frame behaviour (perlbench/gcc/xalancbmk).
type stackKernel struct {
	base       uint64
	slots      uint64 // power of two
	sp         uint64
	depth      uint64 // how far back the reload reaches
	sReg, dReg isa.RegID
	vReg, side isa.RegID
}

func (k *stackKernel) emit(e *emitter) {
	spAddr := k.base + (k.sp%k.slots)*8
	e.alu(0, k.sReg, k.sReg, isa.NoReg)
	e.store(1, k.sReg, k.vReg, spAddr)
	e.alu(2, k.vReg, k.vReg, isa.NoReg)
	// Reload two recently written slots (a frame saves/restores several
	// registers): forwarded from the SQ most times.
	back := k.sp - e.rng.Uint64n(k.depth+1)
	e.load(3, k.dReg, k.sReg, k.base+(back%k.slots)*8)
	back2 := k.sp - e.rng.Uint64n(k.depth+1)
	e.load(4, k.side, k.sReg, k.base+(back2%k.slots)*8)
	// Most reloads feed side computation; only occasionally does one sit
	// on the loop-carried chain (a reloaded frame pointer or callee-saved
	// register), as in real call-heavy code.
	if k.sp%4 == 0 {
		e.alu(5, k.vReg, k.vReg, k.dReg)
	} else {
		e.alu(5, k.side, k.side, k.dReg)
	}
	e.branch(6, k.vReg, true)
	k.sp++
}

// searchKernel performs a binary search over a sorted array: a short burst
// of dependent loads (each address derived from the previous comparison)
// with data-dependent branches — the B-tree/index-probe pattern of
// transaction processing (specjbb, tpcc). Neither the addresses (halving
// intervals around a random key) nor the branch directions are predictable,
// but each probe is only log2(n) deep, so the machine restarts a fresh
// chain every iteration — unlike the unbounded randChase.
type searchKernel struct {
	base, elems uint64 // sorted array of 8-byte keys
	depth       int    // probe depth per search (≈ log2 elems)
	ptr, acc    isa.RegID
}

func (k *searchKernel) emit(e *emitter) {
	lo, hi := uint64(0), k.elems
	slot := 0
	for d := 0; d < k.depth && lo < hi; d++ {
		mid := (lo + hi) / 2
		// The next probe address depends on the previous load's value
		// (the comparison result), so probes within a search are serial.
		e.loadPtr(slot, k.ptr, k.ptr, k.base+mid*8)
		e.branch(slot+1, k.ptr, e.rng.Bool(0.5)) // compare: unpredictable
		slot += 2
		if e.rng.Bool(0.5) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	e.alu(slot, k.acc, k.acc, k.ptr)
	e.branch(slot+1, k.acc, true) // loop branch
}

// hashKernel probes a table at hash-computed addresses: stride-free and
// value-free, the pattern behind tonto/gamess/milc's low RFP coverage.
// Real hash tables have skewed key popularity, so most probes land in a
// hot subset (which stays L1-resident) while the tail sweeps the full
// footprint (L2/LLC-resident depending on the preset).
type hashKernel struct {
	base, footprint uint64
	hotFoot         uint64  // hot-subset size (0 = footprint/16)
	hotProb         float64 // probability a probe targets the hot subset
	h, data, acc    isa.RegID
	state           uint64
}

func (k *hashKernel) emit(e *emitter) {
	// Cheap integer hash: two ALUs to compute the probe address.
	k.state = k.state*0x2545F4914F6CDD1D + 1
	hot := k.hotFoot
	if hot == 0 {
		hot = k.footprint / 16
	}
	span := k.footprint
	if e.rng.Bool(k.hotProb) {
		span = hot
	}
	off := (k.state >> 17) % span &^ 7
	e.alu(0, k.h, k.h, k.acc)
	e.alu(1, k.h, k.h, isa.NoReg)
	e.load(2, k.data, k.h, k.base+off)
	e.alu(3, k.acc, k.acc, k.data)
	e.branch(4, k.acc, true)
}
