package trace

import (
	"testing"

	"rfpsim/internal/isa"
)

func TestCatalogHas65Workloads(t *testing.T) {
	cat := Catalog()
	if len(cat) != 65 {
		t.Fatalf("catalog has %d workloads, want 65 (paper Table 3)", len(cat))
	}
	seen := map[string]bool{}
	for _, s := range cat {
		if s.Name == "" {
			t.Error("workload with empty name")
		}
		if seen[s.Name] {
			t.Errorf("duplicate workload %q", s.Name)
		}
		seen[s.Name] = true
		if s.Seed == 0 {
			t.Errorf("workload %q has zero seed", s.Name)
		}
	}
}

func TestCatalogCategoriesCovered(t *testing.T) {
	counts := map[Category]int{}
	for _, s := range Catalog() {
		counts[s.Category]++
	}
	for _, c := range Categories() {
		if counts[c] == 0 {
			t.Errorf("category %s has no workloads", c)
		}
	}
	if counts[Spec06] != 29 {
		t.Errorf("SPEC06 count = %d, want 29", counts[Spec06])
	}
	if counts[Spec17Int] != 10 || counts[Spec17FP] != 10 {
		t.Error("SPEC17 suites must be complete (10 int + 10 fp)")
	}
}

func TestByNameAndByCategory(t *testing.T) {
	s, ok := ByName("spec06_mcf")
	if !ok || s.Name != "spec06_mcf" {
		t.Fatal("ByName failed for spec06_mcf")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName found a nonexistent workload")
	}
	cloud := ByCategory(Cloud)
	if len(cloud) == 0 {
		t.Fatal("no cloud workloads")
	}
	for _, s := range cloud {
		if s.Category != Cloud {
			t.Errorf("ByCategory(Cloud) returned %s", s.Category)
		}
	}
	names := Names()
	if len(names) != 65 {
		t.Errorf("Names returned %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names not sorted/unique")
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	s, _ := ByName("spec06_gcc")
	g1, g2 := s.New(), s.New()
	var a, b isa.MicroOp
	for i := 0; i < 5000; i++ {
		if !g1.Next(&a) || !g2.Next(&b) {
			t.Fatal("generator ended")
		}
		if a != b {
			t.Fatalf("divergence at uop %d:\n%v\n%v", i, &a, &b)
		}
	}
}

func TestGeneratorSequenceNumbers(t *testing.T) {
	s, _ := ByName("spark")
	g := s.New()
	var op isa.MicroOp
	for i := uint64(0); i < 1000; i++ {
		g.Next(&op)
		if op.Seq != i {
			t.Fatalf("seq %d at position %d", op.Seq, i)
		}
	}
}

func TestGeneratorWellFormedUops(t *testing.T) {
	for _, s := range Catalog() {
		g := s.New()
		var op isa.MicroOp
		loads, branches := 0, 0
		for i := 0; i < 3000; i++ {
			if !g.Next(&op) {
				t.Fatalf("%s: generator ended early", s.Name)
			}
			switch op.Class {
			case isa.OpLoad:
				loads++
				if !op.Dst.Valid() {
					t.Fatalf("%s: load without destination", s.Name)
				}
				if op.Addr == 0 {
					t.Fatalf("%s: load with zero address", s.Name)
				}
				if op.Addr%8 != 0 {
					t.Fatalf("%s: misaligned load %#x", s.Name, op.Addr)
				}
			case isa.OpStore:
				if op.Dst != isa.NoReg {
					t.Fatalf("%s: store with destination", s.Name)
				}
				if op.Addr == 0 {
					t.Fatalf("%s: store with zero address", s.Name)
				}
			case isa.OpBranch:
				branches++
				if op.Target == 0 {
					t.Fatalf("%s: branch with zero target", s.Name)
				}
			}
			if op.Dst != isa.NoReg && !op.Dst.Valid() {
				t.Fatalf("%s: invalid dst %d", s.Name, op.Dst)
			}
		}
		if loads == 0 {
			t.Errorf("%s: no loads in 3000 uops", s.Name)
		}
		if branches == 0 {
			t.Errorf("%s: no branches in 3000 uops", s.Name)
		}
	}
}

func TestGeneratorLoadFraction(t *testing.T) {
	// Across the suite, loads should be a realistic fraction of the
	// dynamic uop stream (roughly a fifth to a third).
	total, loads := 0, 0
	for _, s := range Catalog() {
		g := s.New()
		var op isa.MicroOp
		for i := 0; i < 2000; i++ {
			g.Next(&op)
			total++
			if op.IsLoad() {
				loads++
			}
		}
	}
	frac := float64(loads) / float64(total)
	if frac < 0.12 || frac > 0.45 {
		t.Errorf("suite load fraction = %.2f, want ~0.15-0.40", frac)
	}
}

func TestGeneratorPCsAreStable(t *testing.T) {
	// A static load PC must always be a load (stable static code), and
	// strided kernels must reuse the same PC across iterations — the
	// prefetch table depends on it.
	s, _ := ByName("spec06_libquantum")
	g := s.New()
	classByPC := map[uint64]isa.OpClass{}
	countByPC := map[uint64]int{}
	var op isa.MicroOp
	for i := 0; i < 20000; i++ {
		g.Next(&op)
		if prev, ok := classByPC[op.PC]; ok && prev != op.Class {
			t.Fatalf("PC %#x changed class %v -> %v", op.PC, prev, op.Class)
		}
		classByPC[op.PC] = op.Class
		if op.IsLoad() {
			countByPC[op.PC]++
		}
	}
	max := 0
	for _, c := range countByPC {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Errorf("hottest load PC seen %d times, want >= 100", max)
	}
}

func TestStridedWorkloadHasDetectableStrides(t *testing.T) {
	s, _ := ByName("spec06_hmmer")
	g := s.New()
	lastAddr := map[uint64]uint64{}
	strideHits, strideTotal := 0, 0
	lastStride := map[uint64]int64{}
	var op isa.MicroOp
	for i := 0; i < 50000; i++ {
		g.Next(&op)
		if !op.IsLoad() {
			continue
		}
		if la, ok := lastAddr[op.PC]; ok {
			stride := int64(op.Addr) - int64(la)
			if ls, ok2 := lastStride[op.PC]; ok2 {
				strideTotal++
				if stride == ls {
					strideHits++
				}
			}
			lastStride[op.PC] = stride
		}
		lastAddr[op.PC] = op.Addr
	}
	if strideTotal == 0 {
		t.Fatal("no repeated load PCs")
	}
	if frac := float64(strideHits) / float64(strideTotal); frac < 0.5 {
		t.Errorf("stride repeat fraction = %.2f, want >= 0.5 for hmmer", frac)
	}
}

func TestValueModelClasses(t *testing.T) {
	// Constant-class loads must return the same value forever; across the
	// suite there must be some but not only constant-valued load PCs.
	nConst, nTotal := 0, 0
	for _, name := range []string{"spec06_perlbench", "spec06_gcc", "spark", "tpcc", "sysmark_office"} {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		g := s.New()
		firstVal := map[uint64]uint64{}
		constant := map[uint64]bool{}
		var op isa.MicroOp
		for i := 0; i < 30000; i++ {
			g.Next(&op)
			if !op.IsLoad() {
				continue
			}
			if v, ok := firstVal[op.PC]; ok {
				if v != op.Value {
					constant[op.PC] = false
				}
			} else {
				firstVal[op.PC] = op.Value
				constant[op.PC] = true
			}
		}
		for _, c := range constant {
			nTotal++
			if c {
				nConst++
			}
		}
	}
	if nConst == 0 {
		t.Error("no constant-valued load PCs anywhere; value prediction would be impossible")
	}
	if nConst == nTotal {
		t.Error("all load PCs constant; value prediction would be trivial")
	}
}

func TestSpecString(t *testing.T) {
	s, _ := ByName("lammps")
	if s.String() == "" || s.Category != HPC {
		t.Error("lammps spec malformed")
	}
}

func TestDegenerateProfileStillGenerates(t *testing.T) {
	g := newGenerator(Spec{Name: "empty", Seed: 1})
	var op isa.MicroOp
	for i := 0; i < 100; i++ {
		if !g.Next(&op) {
			t.Fatal("degenerate generator ended")
		}
	}
}

func TestRegWindowWraps(t *testing.T) {
	w := newRegWindow()
	seen := map[isa.RegID]bool{}
	for i := 0; i < 100; i++ {
		r := w.intReg()
		if !r.Valid() || r.IsFP() {
			t.Fatalf("intReg returned %v", r)
		}
		seen[r] = true
	}
	for i := 0; i < 100; i++ {
		r := w.fpReg()
		if !r.IsFP() {
			t.Fatalf("fpReg returned %v", r)
		}
	}
	if len(seen) < 16 {
		t.Error("intReg cycling through too few registers")
	}
}
