package trace

import (
	"fmt"
	"sort"

	"rfpsim/internal/isa"
	"rfpsim/internal/prng"
)

// Category groups workloads the way the paper's Table 3 does.
type Category string

// Workload categories.
const (
	Spec06    Category = "SPEC06"
	Spec17Int Category = "SPEC17-INT"
	Spec17FP  Category = "SPEC17-FP"
	Cloud     Category = "Cloud"
	Client    Category = "Client"
	HPC       Category = "HPC"
)

// Categories lists all categories in presentation order.
func Categories() []Category {
	return []Category{Spec06, Spec17Int, Spec17FP, Cloud, Client, HPC}
}

// profile describes one workload as a weighted kernel mix plus the shared
// parameters of those kernels. Weights are relative emission frequencies.
type profile struct {
	stream, chase, randChase, gather, stencil, fp, branchy, stack, hash, search int

	foot        uint64  // footprint of strided kernels (bytes)
	bigFoot     uint64  // footprint of randchase/hash kernels (bytes)
	stride      uint64  // byte stride of strided kernels
	strideBreak float64 // probability a strided kernel breaks its stride
	takenProb   float64 // branchy kernel's data-branch taken probability
	fpChain     int     // fp kernel's serial FMA chain length
	constVals   float64 // fraction of load PCs with constant values
	strideVals  float64 // fraction of load PCs with strided values
}

// Footprint presets. A workload composes several kernel instances, so the
// per-kernel L1 presets are sized for their SUM (plus store streams) to
// stay inside the 48 KiB L1; the outer presets are sized to be warmable
// within the simulation windows this repository uses (tens of thousands of
// uops), so steady-state hit levels match the preset's intent.
const (
	footL1  = 8 << 10   // comfortably L1-resident
	footL1b = 12 << 10  // L1-resident, more sets touched
	footL2  = 128 << 10 // L2-resident
	footLLC = 2 << 20   // LLC-resident (must exceed the 1.25 MiB L2 to produce LLC hits)
	footMem = 8 << 20   // DRAM-bound
)

// Spec names one workload of the suite.
type Spec struct {
	// Name is the workload identifier, e.g. "spec06_mcf".
	Name string
	// Category is the Table 3 grouping.
	Category Category
	// Seed drives all pseudo-random decisions of the generator.
	Seed uint64
	prof profile
}

// String implements fmt.Stringer.
func (s Spec) String() string { return fmt.Sprintf("%s (%s)", s.Name, s.Category) }

// New instantiates the workload's deterministic micro-op generator.
func (s Spec) New() isa.Generator { return newGenerator(s) }

// weightedKernel binds one kernel instance to its emitter and pick weight.
type weightedKernel struct {
	k kernel
	e *emitter
	w int
}

// Region is one contiguous virtual address range a workload touches.
type Region struct {
	// Base is the first byte of the region.
	Base uint64
	// Size is the region length in bytes.
	Size uint64
}

// generator interleaves the workload's kernel instances, one iteration at a
// time, weighted by the profile.
type generator struct {
	name     string
	rng      *prng.Source
	kernels  []weightedKernel
	regions  []Region
	totalW   int
	queue    []isa.MicroOp
	head     int
	seq      uint64
	picked   int
	schedule []int
	schedPos int
}

// Region spacing in the virtual address space; each kernel instance owns a
// disjoint 128 MiB region so kernels never alias.
const regionShift = 27

func newGenerator(s Spec) *generator {
	g := &generator{
		name: s.Name,
		rng:  prng.New(s.Seed),
	}
	vals := newValueModel(s.prof.constVals, s.prof.strideVals)
	regs := newRegWindow()
	region := 0
	addInstance := func(w int, build func(base uint64) (kernel, []Region)) {
		if w <= 0 {
			return
		}
		region++
		base := uint64(region) << regionShift
		e := &emitter{
			g:      g,
			pcBase: uint64(region) << 16,
			rng:    g.rng,
			vals:   vals,
		}
		k, touched := build(base)
		g.kernels = append(g.kernels, weightedKernel{k: k, e: e, w: w})
		g.regions = append(g.regions, touched...)
		g.totalW += w
	}

	p := s.prof
	stride := p.stride
	if stride == 0 {
		stride = 8
	}
	// Real programs are never perfectly strided: calls, reallocation and
	// phase changes break strides occasionally, which is what keeps real
	// RFP coverage at ~43% rather than ~100% on array codes.
	strideBreak := p.strideBreak
	if strideBreak == 0 {
		strideBreak = 0.025
	}
	addInstance(p.stream, func(base uint64) (kernel, []Region) {
		foot := nz(p.foot, footL1)
		k := &streamKernel{
			base: base, footprint: foot, stride: stride,
			storeEvery: 4, strideBreak: strideBreak,
			idx: regs.intReg(), addr: regs.intReg(), data: regs.intReg(),
			data2: regs.intReg(), acc: regs.intReg(),
		}
		return k, []Region{{base, 3 * foot}} // two load streams + store stream
	})
	addInstance(p.chase, func(base uint64) (kernel, []Region) {
		foot := nz(p.foot, footL1)
		// Pointer chases run with a deep dispatch backlog, so one stride
		// break mispredicts every outstanding instance — and, under value
		// prediction, costs a full pipeline flush. Real list traversals
		// break only at list boundaries (thousands of hops), hence the
		// much lower break rate than array code.
		k := &chaseKernel{
			base: base, footprint: foot, stride: stride,
			strideBreak: strideBreak * 0.04, workALUs: 1,
			ptr: regs.intReg(), acc: regs.intReg(),
		}
		return k, []Region{{base, foot}}
	})
	addInstance(p.randChase, func(base uint64) (kernel, []Region) {
		foot := nz(p.bigFoot, footMem)
		k := &randChaseKernel{
			base: base, footprint: foot, depProb: 0.4,
			ptr: regs.intReg(), idx: regs.intReg(), acc: regs.intReg(),
		}
		return k, []Region{{base, foot}}
	})
	addInstance(p.gather, func(base uint64) (kernel, []Region) {
		idxFoot, dataFoot := nz(p.foot, footL1), nz(p.bigFoot, footL2)
		k := &gatherKernel{
			idxBase: base, idxFoot: idxFoot, idxStride: stride,
			dataBase: base + (1 << 24), dataFoot: dataFoot,
			dataHotProb: 0.75,
			idxAddr:     regs.intReg(), idx: regs.intReg(), data: regs.intReg(), acc: regs.intReg(),
		}
		return k, []Region{{base, idxFoot}, {base + (1 << 24), dataFoot}}
	})
	addInstance(p.stencil, func(base uint64) (kernel, []Region) {
		foot := nz(p.foot, footL1b)
		k := &stencilKernel{
			base: base, footprint: foot, stride: stride,
			strideBreak: strideBreak,
			outBase:     base + (1 << 24),
			addr:        regs.intReg(),
			in:          [3]isa.RegID{regs.fpReg(), regs.fpReg(), regs.fpReg()},
			out:         regs.fpReg(),
		}
		return k, []Region{{base, foot}, {base + (1 << 24), foot}}
	})
	addInstance(p.fp, func(base uint64) (kernel, []Region) {
		foot := nz(p.foot, footL1)
		k := &fpKernel{
			base: base, footprint: foot, stride: stride,
			strideBreak: strideBreak,
			chainLen:    nzi(p.fpChain, 2),
			addr:        regs.intReg(), data: regs.fpReg(),
			f: [2]isa.RegID{regs.fpReg(), regs.fpReg()},
		}
		return k, []Region{{base, foot}}
	})
	addInstance(p.branchy, func(base uint64) (kernel, []Region) {
		foot := nz(p.foot, footL1)
		k := &branchyKernel{
			base: base, footprint: foot, stride: stride,
			takenProb: nzf(p.takenProb, 0.7),
			addr:      regs.intReg(), data: regs.intReg(), acc: regs.intReg(),
		}
		return k, []Region{{base, foot}}
	})
	addInstance(p.stack, func(base uint64) (kernel, []Region) {
		k := &stackKernel{
			base: base, slots: 512, depth: 3,
			sReg: regs.intReg(), dReg: regs.intReg(),
			vReg: regs.intReg(), side: regs.intReg(),
		}
		return k, []Region{{base, 512 * 8}}
	})
	addInstance(p.search, func(base uint64) (kernel, []Region) {
		foot := nz(p.bigFoot, footL2)
		k := &searchKernel{
			base: base, elems: foot / 8, depth: 5,
			ptr: regs.intReg(), acc: regs.intReg(),
		}
		return k, []Region{{base, foot}}
	})
	addInstance(p.hash, func(base uint64) (kernel, []Region) {
		foot := nz(p.bigFoot, footL2)
		k := &hashKernel{
			base: base, footprint: foot, hotProb: 0.9, hotFoot: foot / 32,
			h: regs.intReg(), data: regs.intReg(), acc: regs.intReg(),
			state: s.Seed,
		}
		return k, []Region{{base, foot}}
	})
	if len(g.kernels) == 0 {
		// A degenerate spec still produces a valid workload.
		addInstance(1, func(base uint64) (kernel, []Region) {
			k := &streamKernel{
				base: base, footprint: footL1, stride: 8, storeEvery: 4,
				idx: regs.intReg(), addr: regs.intReg(), data: regs.intReg(), acc: regs.intReg(),
			}
			return k, []Region{{base, 2 * footL1}}
		})
	}
	g.buildSchedule()
	return g
}

// Footprint visits every region the workload touches.
func (g *generator) Footprint(visit func(Region)) {
	for _, r := range g.regions {
		visit(r)
	}
}

// FootprintRegions returns the touched regions as [base, size] pairs; the
// core uses it to pre-warm caches — standing in for the billions of
// instructions that precede a measurement window in trace-driven studies.
func (g *generator) FootprintRegions() [][2]uint64 {
	out := make([][2]uint64, len(g.regions))
	for i, r := range g.regions {
		out[i] = [2]uint64{r.Base, r.Size}
	}
	return out
}

func nz(v, def uint64) uint64 {
	if v == 0 {
		return def
	}
	return v
}

func nzi(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func nzf(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// buildSchedule lays the kernel instances out in a fixed weighted
// round-robin order. Real programs have structured control flow — the same
// loops repeat in the same order — which path-history-based predictors
// (DLVP, the context prefetcher) depend on; a randomized interleave would
// erase that structure entirely.
func (g *generator) buildSchedule() {
	if len(g.kernels) == 0 {
		return
	}
	// Bresenham-style interleave: each kernel appears weight times per
	// totalW slots, spread as evenly as possible.
	credit := make([]int, len(g.kernels))
	for len(g.schedule) < g.totalW {
		best, bestCredit := 0, -1<<62
		for i := range g.kernels {
			credit[i] += g.kernels[i].w
			if credit[i] > bestCredit {
				best, bestCredit = i, credit[i]
			}
		}
		credit[best] -= g.totalW
		g.schedule = append(g.schedule, best)
	}
}

// Name implements isa.Generator.
func (g *generator) Name() string { return g.name }

// Next implements isa.Generator; the stream is infinite.
func (g *generator) Next(op *isa.MicroOp) bool {
	for g.head >= len(g.queue) {
		g.queue = g.queue[:0]
		g.head = 0
		g.pick().k.emit(g.pick0())
	}
	*op = g.queue[g.head]
	g.head++
	op.Seq = g.seq
	g.seq++
	return true
}

// pick selects the next kernel instance from the fixed weighted
// round-robin schedule and remembers it so pick0 can return the matching
// emitter.
func (g *generator) pick() *weightedKernel {
	g.picked = g.schedule[g.schedPos]
	g.schedPos++
	if g.schedPos == len(g.schedule) {
		g.schedPos = 0
	}
	return &g.kernels[g.picked]
}

func (g *generator) pick0() *emitter { return g.kernels[g.picked].e }

// ByName returns the catalog entry with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// ByCategory returns the catalog entries of one category, in catalog order.
func ByCategory(c Category) []Spec {
	var out []Spec
	for _, s := range Catalog() {
		if s.Category == c {
			out = append(out, s)
		}
	}
	return out
}

// Names returns all workload names, sorted.
func Names() []string {
	cat := Catalog()
	names := make([]string, len(cat))
	for i, s := range cat {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}
