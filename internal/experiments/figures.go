package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"rfpsim/internal/config"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
)

// runFig1 reproduces Figure 1: the performance headroom of an oracle
// prefetcher between each pair of adjacent hierarchy levels. The paper's
// shape: L1→RF (~9%) and Mem→LLC (~13%) dominate the middle levels despite
// L1 latency being 40x lower than DRAM's.
func runFig1(ctx context.Context, opts Options) (*Result, error) {
	base := runConfig(ctx, config.Baseline(), opts)
	oracles := []struct {
		name string
		mode config.OracleMode
	}{
		{"L1->RF", config.OracleL1ToRF},
		{"L2->L1", config.OracleL2ToL1},
		{"LLC->L2", config.OracleLLCToL2},
		{"Mem->LLC", config.OracleMemToLLC},
	}
	tb := stats.NewTable("Oracle", "Geomean speedup")
	metrics := map[string]float64{}
	for _, o := range oracles {
		runs := runConfig(ctx, config.Baseline().WithOracle(o.mode), opts)
		pairs, err := pairRuns(base, runs)
		if err != nil {
			return nil, err
		}
		sp := geomeanSpeedup(pairs)
		tb.AddRow(o.name, stats.Pct(sp))
		metrics["speedup_"+o.name] = sp
	}
	return &Result{
		ID:      "fig1",
		Title:   "Oracle prefetch headroom (paper: L1->RF 9%, Mem->LLC 13.3%, middle levels smaller)",
		Text:    tb.String(),
		Metrics: metrics,
	}, nil
}

// runFig2 reproduces Figure 2: where demand loads are served. Paper: 92.8%
// L1, with small MSHR/L2/LLC/DRAM slices.
func runFig2(ctx context.Context, opts Options) (*Result, error) {
	runs := runConfig(ctx, config.Baseline(), opts)
	tb := stats.NewTable("Level", "Fraction of loads")
	metrics := map[string]float64{}
	for l := 0; l < stats.NumLevels; l++ {
		f := meanOver(runs, func(s *stats.Sim) float64 { return s.LoadLevelFrac(l) })
		tb.AddRow(stats.LevelName(l), stats.Pct(f))
		metrics["frac_"+stats.LevelName(l)] = f
	}
	return &Result{
		ID:      "fig2",
		Title:   "Demand load distribution (paper: 92.8% L1 hits)",
		Text:    tb.String(),
		Metrics: metrics,
	}, nil
}

// runFig10 reproduces Figure 10: RFP speedup and coverage per workload
// category on the baseline core. Paper: 3.1% geomean speedup, 43.4%
// coverage.
func runFig10(ctx context.Context, opts Options) (*Result, error) {
	base := runConfig(ctx, config.Baseline(), opts)
	feat := runConfig(ctx, config.Baseline().WithRFP(), opts)
	pairs, err := pairRuns(base, feat)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Category", "Speedup", "Coverage")
	cats, grouped := byCategory(pairs)
	for _, cat := range cats {
		ps := grouped[cat]
		covs := make([]float64, len(ps))
		for i, p := range ps {
			covs[i] = p.feat.RFPCoverage()
		}
		tb.AddRow(string(cat), stats.Pct(geomeanSpeedup(ps)), stats.Pct(stats.Mean(covs)))
	}
	allCov := make([]float64, len(pairs))
	for i, p := range pairs {
		allCov[i] = p.feat.RFPCoverage()
	}
	sp := geomeanSpeedup(pairs)
	cov := stats.Mean(allCov)
	tb.AddRow("ALL", stats.Pct(sp), stats.Pct(cov))
	return &Result{
		ID:      "fig10",
		Title:   "RFP on baseline (paper: +3.1% geomean, 43.4% coverage)",
		Text:    tb.String(),
		Metrics: map[string]float64{"speedup": sp, "coverage": cov},
	}, nil
}

// runFig11 reproduces Figure 11: per-workload IPC gain and coverage,
// sorted by gain — the paper's correlation line chart as rows.
func runFig11(ctx context.Context, opts Options) (*Result, error) {
	base := runConfig(ctx, config.Baseline(), opts)
	feat := runConfig(ctx, config.Baseline().WithRFP(), opts)
	pairs, err := pairRuns(base, feat)
	if err != nil {
		return nil, err
	}
	sort.Slice(pairs, func(i, j int) bool {
		return stats.Speedup(pairs[i].base, pairs[i].feat) < stats.Speedup(pairs[j].base, pairs[j].feat)
	})
	tb := stats.NewTable("Workload", "IPC gain", "Coverage")
	nPos := 0
	for _, p := range pairs {
		sp := stats.Speedup(p.base, p.feat)
		if sp > 0 {
			nPos++
		}
		tb.AddRow(p.spec.Name, stats.Pct(sp), stats.Pct(p.feat.RFPCoverage()))
	}
	// Rank correlation between gain and coverage (the paper's point:
	// they correlate, with criticality-driven outliers).
	corr := rankCorrelation(pairs)
	txt := tb.String() + fmt.Sprintf("\nSpearman rank correlation(gain, coverage) = %.2f\n", corr)
	return &Result{
		ID:      "fig11",
		Title:   "Per-workload IPC gain vs coverage (paper: correlated, with criticality outliers)",
		Text:    txt,
		Metrics: map[string]float64{"rank_correlation": corr, "frac_improved": float64(nPos) / float64(len(pairs))},
	}, nil
}

// rankCorrelation computes Spearman's rho between speedup and coverage.
func rankCorrelation(pairs []pair) float64 {
	n := len(pairs)
	if n < 2 {
		return 0
	}
	speedups := make([]float64, n)
	covs := make([]float64, n)
	for i, p := range pairs {
		speedups[i] = stats.Speedup(p.base, p.feat)
		covs[i] = p.feat.RFPCoverage()
	}
	rs, rc := ranks(speedups), ranks(covs)
	var d2 float64
	for i := range rs {
		d := rs[i] - rc[i]
		d2 += d * d
	}
	nf := float64(n)
	return 1 - 6*d2/(nf*(nf*nf-1))
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, len(xs))
	for rank, i := range idx {
		r[i] = float64(rank)
	}
	return r
}

// runFig12 reproduces Figure 12: RFP on the 10-wide Baseline-2x. Paper:
// +5.7% and 53.7% coverage — more than on the baseline, because doubled
// execution resources expose more latency sensitivity and more L1
// bandwidth lets more prefetches dispatch.
func runFig12(ctx context.Context, opts Options) (*Result, error) {
	base := runConfig(ctx, config.Baseline2x(), opts)
	feat := runConfig(ctx, config.Baseline2x().WithRFP(), opts)
	pairs, err := pairRuns(base, feat)
	if err != nil {
		return nil, err
	}
	covs := make([]float64, len(pairs))
	for i, p := range pairs {
		covs[i] = p.feat.RFPCoverage()
	}
	sp, cov := geomeanSpeedup(pairs), stats.Mean(covs)
	tb := stats.NewTable("Config", "Speedup", "Coverage")
	tb.AddRow("baseline-2x + RFP", stats.Pct(sp), stats.Pct(cov))
	return &Result{
		ID:      "fig12",
		Title:   "RFP on Baseline-2x (paper: +5.7%, 53.7% coverage)",
		Text:    tb.String(),
		Metrics: map[string]float64{"speedup": sp, "coverage": cov},
	}, nil
}

// runFig13 reproduces Figure 13: the prefetch life-cycle funnel. Paper:
// packets injected for 72% of loads, executed for 48%, useful for 43%;
// ~5% wrong.
func runFig13(ctx context.Context, opts Options) (*Result, error) {
	runs := runConfig(ctx, config.Baseline().WithRFP(), opts)
	type row struct {
		name                              string
		injected, executed, useful, wrong float64
	}
	var rows []row
	cats := map[trace.Category][]Run{}
	for _, r := range runs {
		if r.Err != nil {
			return nil, r.Err
		}
		cats[r.Spec.Category] = append(cats[r.Spec.Category], r)
	}
	add := func(name string, rs []Run) row {
		return row{
			name:     name,
			injected: meanOver(rs, (*stats.Sim).RFPInjectedFrac),
			executed: meanOver(rs, (*stats.Sim).RFPExecutedFrac),
			useful:   meanOver(rs, (*stats.Sim).RFPCoverage),
			wrong:    meanOver(rs, (*stats.Sim).RFPWrongFrac),
		}
	}
	for _, c := range trace.Categories() {
		if len(cats[c]) > 0 {
			rows = append(rows, add(string(c), cats[c]))
		}
	}
	all := add("ALL", runs)
	rows = append(rows, all)
	tb := stats.NewTable("Category", "Injected", "Executed", "Useful", "Wrong")
	for _, r := range rows {
		tb.AddRow(r.name, stats.Pct(r.injected), stats.Pct(r.executed), stats.Pct(r.useful), stats.Pct(r.wrong))
	}
	return &Result{
		ID:    "fig13",
		Title: "RFP timeliness funnel (paper: 72% injected, 48% executed, 43% useful, ~5% wrong)",
		Text:  tb.String(),
		Metrics: map[string]float64{
			"injected": all.injected, "executed": all.executed,
			"useful": all.useful, "wrong": all.wrong,
		},
	}, nil
}

// runFig14 reproduces Figure 14: doubling L1 ports with half dedicated to
// RFP. Paper: +4.0% vs +3.1% shared, with 16.1% more prefetches executed.
func runFig14(ctx context.Context, opts Options) (*Result, error) {
	base := runConfig(ctx, config.Baseline(), opts)
	shared := runConfig(ctx, config.Baseline().WithRFP(), opts)
	dedCfg := config.Baseline().WithRFP()
	dedCfg.Name = "baseline+rfp-dedicated"
	dedCfg.RFPDedicatedPorts = dedCfg.LoadPorts
	ded := runConfig(ctx, dedCfg, opts)

	sharedPairs, err := pairRuns(base, shared)
	if err != nil {
		return nil, err
	}
	dedPairs, err := pairRuns(base, ded)
	if err != nil {
		return nil, err
	}
	spShared, spDed := geomeanSpeedup(sharedPairs), geomeanSpeedup(dedPairs)
	exShared := meanOver(shared, (*stats.Sim).RFPExecutedFrac)
	exDed := meanOver(ded, (*stats.Sim).RFPExecutedFrac)
	tb := stats.NewTable("Ports", "Speedup", "Prefetches executed")
	tb.AddRow("shared (lowest priority)", stats.Pct(spShared), stats.Pct(exShared))
	tb.AddRow("dedicated RFP ports", stats.Pct(spDed), stats.Pct(exDed))
	return &Result{
		ID:    "fig14",
		Title: "L1 bandwidth impact on RFP (paper: 4.0% dedicated vs 3.1% shared)",
		Text:  tb.String(),
		Metrics: map[string]float64{
			"speedup_shared": spShared, "speedup_dedicated": spDed,
			"executed_shared": exShared, "executed_dedicated": exDed,
		},
	}, nil
}

// runEffectiveness reproduces §5.2.2: of the useful prefetches, how many
// completed before the load even dispatched (fully hidden latency; the
// load behaves like a 1-cycle op) vs completed late (partial saving).
// Paper: 34.2% of loads fully hidden, 9.2% partially.
func runEffectiveness(ctx context.Context, opts Options) (*Result, error) {
	runs := runConfig(ctx, config.Baseline().WithRFP(), opts)
	full := meanOver(runs, func(s *stats.Sim) float64 {
		if s.Loads == 0 {
			return 0
		}
		return float64(s.RFP.FullyHidden) / float64(s.Loads)
	})
	useful := meanOver(runs, (*stats.Sim).RFPCoverage)
	partial := useful - full
	tb := stats.NewTable("Outcome", "Fraction of loads")
	tb.AddRow("prefetch complete before load dispatch (fully hidden)", stats.Pct(full))
	tb.AddRow("prefetch in flight at dispatch (partially hidden)", stats.Pct(partial))
	return &Result{
		ID:      "effectiveness",
		Title:   "RFP effectiveness (paper: 34.2% fully hidden, 9.2% partial)",
		Text:    tb.String(),
		Metrics: map[string]float64{"fully_hidden": full, "partial": partial},
	}, nil
}

// runTable2 prints the core parameters (Table 2 analogue).
func runTable2(context.Context, Options) (*Result, error) {
	b, x := config.Baseline(), config.Baseline2x()
	tb := stats.NewTable("Parameter", "Baseline", "Baseline-2x")
	rows := []struct {
		name string
		b, x interface{}
	}{
		{"Width (fetch/rename/commit)", b.Width, x.Width},
		{"ROB", b.ROBSize, x.ROBSize},
		{"Reservation stations", b.RSSize, x.RSSize},
		{"Load queue / Store queue", fmt.Sprintf("%d/%d", b.LQSize, b.SQSize), fmt.Sprintf("%d/%d", x.LQSize, x.SQSize)},
		{"INT/FP physical registers", fmt.Sprintf("%d/%d", b.IntPRF, b.FPPRF), fmt.Sprintf("%d/%d", x.IntPRF, x.FPPRF)},
		{"L1 load ports", b.LoadPorts, x.LoadPorts},
		{"L1D (latency)", fmt.Sprintf("48KiB 12-way (%d cyc)", b.Mem.L1Latency), fmt.Sprintf("48KiB 12-way (%d cyc)", x.Mem.L1Latency)},
		{"L2 (latency)", fmt.Sprintf("1.25MiB (%d cyc)", b.Mem.L2Latency), fmt.Sprintf("1.25MiB (%d cyc)", x.Mem.L2Latency)},
		{"LLC (latency)", fmt.Sprintf("3MiB (%d cyc)", b.Mem.LLCLatency), fmt.Sprintf("3MiB (%d cyc)", x.Mem.LLCLatency)},
		{"DRAM latency", b.Mem.MemLatency, x.Mem.MemLatency},
		{"VP/MD flush penalty", b.FlushPenalty, x.FlushPenalty},
	}
	for _, r := range rows {
		tb.AddRow(r.name, fmt.Sprint(r.b), fmt.Sprint(r.x))
	}
	return &Result{ID: "table2", Title: "Core parameters", Text: tb.String(), Metrics: map[string]float64{}}, nil
}

// runTable3 prints the workload suite (Table 3 analogue).
func runTable3(context.Context, Options) (*Result, error) {
	tb := stats.NewTable("Category", "Workloads")
	total := 0
	for _, c := range trace.Categories() {
		var names []string
		for _, s := range trace.ByCategory(c) {
			names = append(names, strings.TrimPrefix(strings.TrimPrefix(s.Name, "spec06_"), "spec17_"))
		}
		total += len(names)
		tb.AddRow(fmt.Sprintf("%s (%d)", c, len(names)), strings.Join(names, ", "))
	}
	return &Result{
		ID: "table3", Title: "Workload suite",
		Text:    tb.String(),
		Metrics: map[string]float64{"total": float64(total)},
	}, nil
}
