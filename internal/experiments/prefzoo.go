package experiments

import (
	"context"
	"fmt"

	"rfpsim/internal/config"
	"rfpsim/internal/stats"
)

// runPrefZoo crosses RFP with the L1 prefetcher zoo (stream, SPP, SISB and
// the adaptive managed policy; "none" is RFP with no cache prefetcher at
// all). The interesting shape: the schemes trade coverage against accuracy
// differently per workload class — stream wins on dense striding, SISB on
// recurring irregular streams, SPP in between — and the managed policy
// should track the best static choice per workload, since that is exactly
// what its shadow scoring selects for. managed_wins_frac counts the
// workloads where managed IPC is at least the best static scheme's IPC
// (ties count: picking the same scheme is a win for the policy).
func runPrefZoo(ctx context.Context, opts Options) (*Result, error) {
	schemes := []struct {
		key string
		cfg config.Core
	}{
		{"none", config.Baseline().WithRFP()},
		{"stream", config.Baseline().WithRFP().WithPrefetcher("stream")},
		{"spp", config.Baseline().WithRFP().WithPrefetcher("spp")},
		{"sisb", config.Baseline().WithRFP().WithPrefetcher("sisb")},
		{"managed", config.Baseline().WithRFP().WithPrefetcher("managed")},
	}

	base := runConfig(ctx, config.Baseline(), opts)
	tb := stats.NewTable("Prefetcher", "Speedup", "L1PF coverage", "L1PF accuracy", "Issued/kuop")
	metrics := map[string]float64{}
	ipcs := map[string][]float64{}
	for _, s := range schemes {
		runs := runConfig(ctx, s.cfg, opts)
		pairs, err := pairRuns(base, runs)
		if err != nil {
			return nil, err
		}
		sp := geomeanSpeedup(pairs)
		cov := meanOver(runs, (*stats.Sim).L1PFCoverage)
		acc := meanOver(runs, (*stats.Sim).L1PFAccuracy)
		ipk := meanOver(runs, func(st *stats.Sim) float64 {
			if st.Instructions == 0 {
				return 0
			}
			return 1000 * float64(st.L1PF.Issued) / float64(st.Instructions)
		})
		for _, r := range runs {
			ipcs[s.key] = append(ipcs[s.key], r.Stats.IPC())
		}
		tb.AddRow(s.key, stats.Pct(sp), stats.Pct(cov), stats.Pct(acc), fmt.Sprintf("%.1f", ipk))
		metrics["speedup_"+s.key] = sp
		metrics["coverage_"+s.key] = cov
		metrics["accuracy_"+s.key] = acc
		metrics["issued_kuop_"+s.key] = ipk
	}

	// Per-workload adaptivity score: on how many workloads does the
	// managed policy match or beat the best static scheme?
	wins := 0
	n := len(ipcs["managed"])
	for i := 0; i < n; i++ {
		best := ipcs["stream"][i]
		if ipcs["spp"][i] > best {
			best = ipcs["spp"][i]
		}
		if ipcs["sisb"][i] > best {
			best = ipcs["sisb"][i]
		}
		if ipcs["managed"][i] >= best {
			wins++
		}
	}
	winsFrac := 0.0
	if n > 0 {
		winsFrac = float64(wins) / float64(n)
	}
	metrics["managed_wins_frac"] = winsFrac

	txt := tb.String() + fmt.Sprintf(
		"\nManaged matches or beats the best static prefetcher on %d/%d workloads (%.0f%%).\n",
		wins, n, 100*winsFrac)
	return &Result{
		ID:      "prefzoo",
		Title:   "Extension: L1 prefetcher zoo under RFP (stream vs SPP vs SISB vs managed)",
		Text:    txt,
		Metrics: metrics,
	}, nil
}
