package experiments

import "strconv"

// MetricsCSVHeader is the machine-readable output schema shared by
// cmd/experiments -csv and cmd/rfpsweep: one row per (experiment, metric)
// pair. Sweep units use their "<sweep>/<workload>/<knobs>" label as the
// experiment cell, so sweep CSVs concatenate and pivot with figure CSVs.
var MetricsCSVHeader = []string{"experiment", "metric", "value"}

// FormatMetric renders a metric value exactly the way every CSV emitter
// in the repo does (shortest round-trip float form), so two emitters
// writing the same number write the same bytes.
func FormatMetric(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// FormatCount renders an integer-valued metric (cycles, instructions)
// without float exponent notation.
func FormatCount(v uint64) string {
	return strconv.FormatUint(v, 10)
}
