// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5 plus the Figure 1/2 motivation data). Each
// experiment runs the 65-workload suite on one or more core configurations
// and prints rows shaped like the paper's charts; headline metrics are also
// returned in a structured form so tests can assert the reproduction keeps
// the paper's shape (who wins, by roughly what factor).
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"rfpsim/internal/config"
	"rfpsim/internal/runner"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
)

// Options controls simulation windows and the workload set.
type Options struct {
	// WarmupUops runs (and discards) this many uops before measuring.
	WarmupUops uint64
	// MeasureUops is the measured window length.
	MeasureUops uint64
	// Workloads restricts the suite (nil = full 65-workload catalog).
	Workloads []trace.Spec
	// Parallel bounds concurrent workload simulations (0 = NumCPU).
	Parallel int
	// Seeds > 1 replicates every workload with perturbed generator seeds
	// and averages the metrics — the statistical-confidence mode. Each
	// replica is a distinct (but equally plausible) dynamic instance of
	// the same workload profile.
	Seeds int
}

// Default returns the standard options used by cmd/experiments: a 30k-uop
// warmup and a 60k-uop measurement window per workload.
func Default() Options {
	return Options{WarmupUops: 30000, MeasureUops: 60000}
}

// Quick returns reduced options for tests and smoke runs: every fourth
// workload plus the memory-bound outliers (so the outer memory wall stays
// represented).
func Quick() Options {
	specs := trace.Catalog()
	subset := make([]trace.Spec, 0, 20)
	have := map[string]bool{}
	for i, s := range specs {
		if i%4 == 0 {
			subset = append(subset, s)
			have[s.Name] = true
		}
	}
	for _, name := range []string{"spec06_mcf", "spec17_mcf", "spec06_omnetpp"} {
		if !have[name] {
			if s, ok := trace.ByName(name); ok {
				subset = append(subset, s)
			}
		}
	}
	return Options{WarmupUops: 10000, MeasureUops: 20000, Workloads: subset}
}

func (o Options) workloads() []trace.Spec {
	if o.Workloads != nil {
		return o.Workloads
	}
	return trace.Catalog()
}

func (o Options) parallel() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.NumCPU()
}

func (o Options) seeds() int {
	if o.Seeds > 1 {
		return o.Seeds
	}
	return 1
}

// Run is one workload's measured statistics under one configuration.
type Run struct {
	// Spec names the workload.
	Spec trace.Spec
	// Stats is the measured-window statistics block; nil when Err is set
	// (an errored or cancelled workload contributes nothing, never a
	// partial seed total).
	Stats *stats.Sim
	// Err reports a wedged pipeline (a model bug; tests fail on it) or a
	// cancelled run.
	Err error
}

// runConfig simulates every workload on cfg, in parallel, in catalog
// order, cancelling promptly when ctx does. With Seeds > 1, each workload
// runs as several seed replicas whose counters are summed — ratios
// computed from the sums are then replica-weighted averages (see
// runner.Run).
func runConfig(ctx context.Context, cfg config.Core, opts Options) []Run {
	specs := opts.workloads()
	runs := make([]Run, len(specs))
	sem := make(chan struct{}, opts.parallel())
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec trace.Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			st, err := runner.Run(ctx, runner.Job{
				Config:      cfg,
				Spec:        spec,
				WarmupUops:  opts.WarmupUops,
				MeasureUops: opts.MeasureUops,
				Seeds:       opts.seeds(),
			})
			runs[i] = Run{Spec: spec, Stats: st, Err: err}
		}(i, spec)
	}
	wg.Wait()
	return runs
}

// pair matches baseline and feature runs of the same workload.
type pair struct {
	spec trace.Spec
	base *stats.Sim
	feat *stats.Sim
}

// pairRuns zips two run sets, skipping errored entries.
func pairRuns(base, feat []Run) ([]pair, error) {
	if len(base) != len(feat) {
		return nil, fmt.Errorf("experiments: mismatched run sets (%d vs %d)", len(base), len(feat))
	}
	pairs := make([]pair, 0, len(base))
	for i := range base {
		if base[i].Err != nil {
			return nil, fmt.Errorf("experiments: %s baseline: %w", base[i].Spec.Name, base[i].Err)
		}
		if feat[i].Err != nil {
			return nil, fmt.Errorf("experiments: %s feature: %w", feat[i].Spec.Name, feat[i].Err)
		}
		pairs = append(pairs, pair{spec: base[i].Spec, base: base[i].Stats, feat: feat[i].Stats})
	}
	return pairs, nil
}

// geomeanSpeedup aggregates a pair set.
func geomeanSpeedup(pairs []pair) float64 {
	sp := make([]float64, len(pairs))
	for i, p := range pairs {
		sp[i] = stats.Speedup(p.base, p.feat)
	}
	return stats.GeoMeanSpeedup(sp)
}

// byCategory groups pairs preserving the canonical category order.
func byCategory(pairs []pair) ([]trace.Category, map[trace.Category][]pair) {
	m := map[trace.Category][]pair{}
	for _, p := range pairs {
		m[p.spec.Category] = append(m[p.spec.Category], p)
	}
	var order []trace.Category
	for _, c := range trace.Categories() {
		if len(m[c]) > 0 {
			order = append(order, c)
		}
	}
	return order, m
}

// meanOver averages a per-run metric.
func meanOver(runs []Run, f func(*stats.Sim) float64) float64 {
	vals := make([]float64, 0, len(runs))
	for _, r := range runs {
		if r.Err == nil {
			vals = append(vals, f(r.Stats))
		}
	}
	return stats.Mean(vals)
}

// Result is one experiment's rendered report plus headline metrics.
type Result struct {
	// ID is the experiment identifier (e.g. "fig10").
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Text is the rendered report.
	Text string
	// Metrics holds headline numbers keyed by name (fractions, not
	// percentages), for tests and EXPERIMENTS.md.
	Metrics map[string]float64
}

// MetricKeys returns the metric names in stable (sorted) order.
func (r *Result) MetricKeys() []string { return sortedMetricKeys(r.Metrics) }

// Experiment names one regenerable paper artifact.
type Experiment struct {
	// ID is the stable identifier used on the command line.
	ID string
	// Title describes the artifact.
	Title string
	// Run executes the experiment; cancelling the context aborts the
	// underlying simulations promptly.
	Run func(context.Context, Options) (*Result, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table2", "Table 2: core parameters", runTable2},
		{"table3", "Table 3: workload suite", runTable3},
		{"fig1", "Figure 1: oracle prefetch headroom per hierarchy level", runFig1},
		{"fig2", "Figure 2: demand load distribution across the hierarchy", runFig2},
		{"fig10", "Figure 10: RFP speedup and coverage per category", runFig10},
		{"fig11", "Figure 11: per-workload IPC gain vs coverage", runFig11},
		{"fig12", "Figure 12: RFP on the up-scaled Baseline-2x core", runFig12},
		{"fig13", "Figure 13: RFP timeliness (injected/executed/useful)", runFig13},
		{"fig14", "Figure 14: dedicated RFP L1 ports", runFig14},
		{"effectiveness", "Section 5.2.2: fully vs partially hidden loads", runEffectiveness},
		{"fig15", "Figure 15: RFP vs value prediction (EVES/Composite/EPP) and VP+RFP", runFig15},
		{"fig16", "Figure 16: DLVP coverage under its four constraints", runFig16},
		{"fig17", "Figure 17: confidence counter width sensitivity", runFig17},
		{"fig18", "Figure 18: Prefetch Table size sensitivity", runFig18},
		{"l1lat", "Section 5.5.2: L1 latency sensitivity (5 vs 6 cycles)", runL1Latency},
		{"context", "Section 5.5.3: context prefetcher on top of stride", runContext},
		{"pat", "Section 5.5.4: Page Address Table area optimization", runPAT},
		{"simplifications", "Section 5.5.5: pipeline simplifications", runSimplifications},
		{"table1", "Table 1: RFP storage requirements", runTable1},
		{"power", "Section 5.6 (quantified): energy per uop by scheme", runPower},
		{"bandwidth", "Section 5.6 (quantified): L1 access traffic by scheme", runBandwidth},
		{"critical", "Extension: criticality-targeted RFP (paper future work)", runCritical},
		{"hwprefetch", "Extension: RFP composed with a hardware cache prefetcher", runHWPrefetch},
		{"prefzoo", "Extension: L1 prefetcher zoo under RFP (stream/SPP/SISB/managed)", runPrefZoo},
		{"bpquality", "Extension: branch predictor quality vs RFP gain", runBPQuality},
		{"latealloc", "Section 3.3 variation: late register allocation", runLateAlloc},
		{"cycleacct", "Top-down commit-slot accounting (where RFP's gain comes from)", runCycleAccounting},
		{"clp", "Extension: cache-level-predicted RFP arming schedule", runCLP},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// sortedMetricKeys returns metric names in stable order.
func sortedMetricKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
