package experiments

import (
	"context"
	"rfpsim/internal/config"
	"rfpsim/internal/stats"
)

// runFig15 reproduces Figure 15: RFP against the value/address prediction
// prior art, and the VP+RFP fusion. Paper: EVES-style VP alone 2.2%, RFP
// alone 3.1%, VP+RFP 4.15% (54.6% combined coverage); Composite similar to
// VP; EPP slightly below Composite due to SSBF re-executions.
func runFig15(ctx context.Context, opts Options) (*Result, error) {
	base := runConfig(ctx, config.Baseline(), opts)
	metrics := map[string]float64{}
	tb := stats.NewTable("Scheme", "Speedup", "Coverage (loads helped)")

	type scheme struct {
		key string
		cfg config.Core
		cov func(*stats.Sim) float64
	}
	vpCov := func(s *stats.Sim) float64 { return s.VPCoverage() }
	rfpCov := func(s *stats.Sim) float64 { return s.RFPCoverage() }
	bothCov := func(s *stats.Sim) float64 { return s.VPCoverage() + s.RFPCoverage() }
	schemes := []scheme{
		{"vp_eves", config.Baseline().WithVP(config.VPEVES), vpCov},
		{"dlvp", config.Baseline().WithVP(config.VPDLVP), vpCov},
		{"composite", config.Baseline().WithVP(config.VPComposite), vpCov},
		{"epp", config.Baseline().WithVP(config.VPEPP), vpCov},
		{"rfp", config.Baseline().WithRFP(), rfpCov},
		{"vp+rfp", config.Baseline().WithVP(config.VPEVES).WithRFP(), bothCov},
	}
	for _, s := range schemes {
		runs := runConfig(ctx, s.cfg, opts)
		pairs, err := pairRuns(base, runs)
		if err != nil {
			return nil, err
		}
		sp := geomeanSpeedup(pairs)
		cov := meanOver(runs, s.cov)
		tb.AddRow(s.key, stats.Pct(sp), stats.Pct(cov))
		metrics["speedup_"+s.key] = sp
		metrics["coverage_"+s.key] = cov
	}
	return &Result{
		ID:      "fig15",
		Title:   "RFP vs value prediction (paper: VP 2.2%, RFP 3.1%, VP+RFP 4.15%)",
		Text:    tb.String(),
		Metrics: metrics,
	}, nil
}

// runFig16 reproduces Figure 16: the DLVP constraint waterfall. Paper:
// address-predictable like RFP; high-confidence filter → 49%; no-forward
// filter → 45%; L1 port availability → 22%; probe-in-time → 11%.
func runFig16(ctx context.Context, opts Options) (*Result, error) {
	runs := runConfig(ctx, config.Baseline().WithVP(config.VPDLVP), opts)
	frac := func(f func(*stats.Sim) uint64) float64 {
		return meanOver(runs, func(s *stats.Sim) float64 {
			if s.Loads == 0 {
				return 0
			}
			return float64(f(s)) / float64(s.Loads)
		})
	}
	ap := frac(func(s *stats.Sim) uint64 { return s.AP.AddressPredictable })
	hc := frac(func(s *stats.Sim) uint64 { return s.AP.HighConfidence })
	nf := frac(func(s *stats.Sim) uint64 { return s.AP.NoFwdPass })
	pl := frac(func(s *stats.Sim) uint64 { return s.AP.ProbeLaunched })
	pt := frac(func(s *stats.Sim) uint64 { return s.AP.ProbeInTime })

	tb := stats.NewTable("Constraint stage", "Fraction of loads")
	tb.AddRow("address predictable (any confidence)", stats.Pct(ap))
	tb.AddRow("+ high confidence (APHC)", stats.Pct(hc))
	tb.AddRow("+ no-FWD predictor", stats.Pct(nf))
	tb.AddRow("+ L1 port available", stats.Pct(pl))
	tb.AddRow("+ probe data back by allocation", stats.Pct(pt))
	return &Result{
		ID:    "fig16",
		Title: "DLVP constraint waterfall (paper: ~49% -> 45% -> 22% -> 11%)",
		Text:  tb.String(),
		Metrics: map[string]float64{
			"address_predictable": ap, "high_confidence": hc,
			"no_fwd": nf, "probe_launched": pl, "probe_in_time": pt,
		},
	}, nil
}
