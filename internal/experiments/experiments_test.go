package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
)

// tiny returns fast options for unit tests: a handful of workloads and
// short windows. The shape assertions here are deliberately loose — the
// full-suite checks live in the repro (shape) test below and in
// cmd/experiments output.
func tiny() Options {
	names := []string{
		"spec06_hmmer", "spec06_mcf", "spec06_xalancbmk",
		"spec06_wrf", "spec17_deepsjeng", "spark",
	}
	var specs []trace.Spec
	for _, n := range names {
		s, ok := trace.ByName(n)
		if !ok {
			panic("missing workload " + n)
		}
		specs = append(specs, s)
	}
	return Options{WarmupUops: 8000, MeasureUops: 15000, Workloads: specs}
}

func TestAllExperimentsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) < 19 {
		t.Errorf("only %d experiments registered; every paper artifact needs one", len(seen))
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig10"); !ok {
		t.Error("fig10 missing")
	}
	if _, ok := ByID("nonsense"); ok {
		t.Error("found nonsense experiment")
	}
}

func TestOptionsDefaults(t *testing.T) {
	d := Default()
	if d.WarmupUops == 0 || d.MeasureUops == 0 {
		t.Error("default windows must be positive")
	}
	if len(d.workloads()) != 65 {
		t.Errorf("default workload set = %d, want 65", len(d.workloads()))
	}
	q := Quick()
	if len(q.workloads()) >= 65 || len(q.workloads()) == 0 {
		t.Errorf("quick subset size = %d", len(q.workloads()))
	}
	if d.parallel() <= 0 {
		t.Error("parallel must be positive")
	}
}

func TestRunConfigProducesStats(t *testing.T) {
	runs := runConfig(context.Background(), config.Baseline(), tiny())
	if len(runs) != 6 {
		t.Fatalf("got %d runs", len(runs))
	}
	for _, r := range runs {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Spec.Name, r.Err)
		}
		if r.Stats.Instructions == 0 || r.Stats.IPC() <= 0 {
			t.Errorf("%s: empty stats", r.Spec.Name)
		}
	}
}

func TestPairRunsRejectsMismatch(t *testing.T) {
	a := runConfig(context.Background(), config.Baseline(), tiny())
	if _, err := pairRuns(a, a[:2]); err == nil {
		t.Error("mismatched lengths not rejected")
	}
	pairs, err := pairRuns(a, a)
	if err != nil || len(pairs) != len(a) {
		t.Errorf("self-pairing failed: %v", err)
	}
	if sp := geomeanSpeedup(pairs); sp != 0 {
		t.Errorf("self speedup = %v, want 0", sp)
	}
}

func TestTableExperimentsNeedNoSimulation(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3"} {
		e, _ := ByID(id)
		res, err := e.Run(context.Background(), Options{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.Text == "" {
			t.Errorf("%s produced no text", id)
		}
	}
}

func TestTable1MatchesPaperStorage(t *testing.T) {
	e, _ := ByID("table1")
	res, err := e.Run(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: 1K-entry PT = 6.5KB (52 bits/entry), PAT 64x44b, 128 RS bits.
	if res.Metrics["pt_bits_1k"] != 1024*52 {
		t.Errorf("PT bits = %v", res.Metrics["pt_bits_1k"])
	}
	if res.Metrics["pat_bits"] != 64*44 {
		t.Errorf("PAT bits = %v", res.Metrics["pat_bits"])
	}
	if res.Metrics["rs_bits"] != 128 {
		t.Errorf("RS bits = %v", res.Metrics["rs_bits"])
	}
}

func TestTable3Lists65(t *testing.T) {
	e, _ := ByID("table3")
	res, err := e.Run(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["total"] != 65 {
		t.Errorf("table3 lists %v workloads, want 65", res.Metrics["total"])
	}
	if !strings.Contains(res.Text, "mcf") || !strings.Contains(res.Text, "lammps") {
		t.Error("table3 missing expected workloads")
	}
}

func TestFig2Shape(t *testing.T) {
	e, _ := ByID("fig2")
	res, err := e.Run(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	l1 := res.Metrics["frac_L1"]
	if l1 < 0.5 {
		t.Errorf("L1 fraction = %v, implausibly low even for the tiny subset", l1)
	}
	sum := 0.0
	for l := 0; l < stats.NumLevels; l++ {
		sum += res.Metrics["frac_"+stats.LevelName(l)]
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("fractions sum to %v", sum)
	}
}

func TestFig10Shape(t *testing.T) {
	e, _ := ByID("fig10")
	res, err := e.Run(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["speedup"] <= 0 {
		t.Errorf("RFP speedup = %v, must be positive", res.Metrics["speedup"])
	}
	if cov := res.Metrics["coverage"]; cov < 0.15 || cov > 0.9 {
		t.Errorf("coverage = %v, out of plausible range", cov)
	}
	if !strings.Contains(res.Text, "ALL") {
		t.Error("fig10 table missing aggregate row")
	}
}

func TestFig13FunnelMonotone(t *testing.T) {
	e, _ := ByID("fig13")
	res, err := e.Run(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	inj, ex, use := res.Metrics["injected"], res.Metrics["executed"], res.Metrics["useful"]
	if !(inj >= ex && ex >= use && use > 0) {
		t.Errorf("funnel not monotone: injected %v >= executed %v >= useful %v > 0", inj, ex, use)
	}
}

func TestFig16WaterfallMonotone(t *testing.T) {
	e, _ := ByID("fig16")
	res, err := e.Run(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	ap := res.Metrics["address_predictable"]
	hc := res.Metrics["high_confidence"]
	nf := res.Metrics["no_fwd"]
	pl := res.Metrics["probe_launched"]
	pt := res.Metrics["probe_in_time"]
	if !(ap >= hc && hc >= nf && nf >= pl && pl >= pt) {
		t.Errorf("waterfall not monotone: %v %v %v %v %v", ap, hc, nf, pl, pt)
	}
	if ap == 0 {
		t.Error("no address-predictable loads at all")
	}
}

func TestFig17ConfidenceTradeoff(t *testing.T) {
	e, _ := ByID("fig17")
	res, err := e.Run(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Wider confidence must reduce both coverage and wrong prefetches
	// (the paper's core trade-off).
	if res.Metrics["coverage_4bit"] >= res.Metrics["coverage_1bit"] {
		t.Errorf("4-bit coverage %v not below 1-bit %v",
			res.Metrics["coverage_4bit"], res.Metrics["coverage_1bit"])
	}
	if res.Metrics["wrong_4bit"] >= res.Metrics["wrong_1bit"] {
		t.Errorf("4-bit wrong %v not below 1-bit %v",
			res.Metrics["wrong_4bit"], res.Metrics["wrong_1bit"])
	}
}

func TestEffectivenessSplit(t *testing.T) {
	e, _ := ByID("effectiveness")
	res, err := e.Run(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["fully_hidden"] <= 0 {
		t.Error("no fully hidden prefetches")
	}
	if res.Metrics["partial"] < 0 {
		t.Error("negative partial fraction")
	}
}

func TestPATStorageSaving(t *testing.T) {
	e, _ := ByID("pat")
	res, err := e.Run(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Metrics["storage_saving"]; s < 0.35 || s > 0.6 {
		t.Errorf("PAT storage saving = %v, want ~0.44 (paper ~50%%)", s)
	}
}

func TestSortedMetricKeys(t *testing.T) {
	keys := sortedMetricKeys(map[string]float64{"b": 1, "a": 2, "c": 3})
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("keys = %v", keys)
	}
}

func TestRankCorrelationBounds(t *testing.T) {
	if r := rankCorrelation(nil); r != 0 {
		t.Errorf("empty correlation = %v", r)
	}
	// Perfectly correlated synthetic pairs.
	mk := func(ipcRatio, cov float64) pair {
		base := &stats.Sim{Cycles: 1000, Instructions: 1000}
		feat := &stats.Sim{Cycles: 1000, Instructions: uint64(1000 * ipcRatio)}
		feat.Loads = 1000
		feat.RFP.Useful = uint64(1000 * cov)
		return pair{base: base, feat: feat}
	}
	pairs := []pair{mk(1.01, 0.1), mk(1.02, 0.2), mk(1.03, 0.3), mk(1.04, 0.4)}
	if r := rankCorrelation(pairs); r < 0.99 {
		t.Errorf("perfect correlation = %v, want ~1", r)
	}
	// Perfectly anti-correlated.
	pairs = []pair{mk(1.04, 0.1), mk(1.03, 0.2), mk(1.02, 0.3), mk(1.01, 0.4)}
	if r := rankCorrelation(pairs); r > -0.99 {
		t.Errorf("perfect anticorrelation = %v, want ~-1", r)
	}
}

// TestPaperShapeQuick is the repro gate: on a quarter of the suite with
// reduced windows, the qualitative claims of the paper must hold. The full
// suite (cmd/experiments -run all) is the real reproduction; this keeps CI
// honest without hour-long runs.
func TestPaperShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	opts := Quick()

	fig10, err := ByIDMust("fig10").Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if sp := fig10.Metrics["speedup"]; sp < 0.005 || sp > 0.12 {
		t.Errorf("RFP speedup = %v, want positive low single digits (paper 3.1%%)", sp)
	}
	if cov := fig10.Metrics["coverage"]; cov < 0.25 || cov > 0.8 {
		t.Errorf("RFP coverage = %v (paper 43.4%%)", cov)
	}

	fig1, err := ByIDMust("fig1").Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	l1rf := fig1.Metrics["speedup_L1->RF"]
	l2l1 := fig1.Metrics["speedup_L2->L1"]
	memllc := fig1.Metrics["speedup_Mem->LLC"]
	if l1rf <= l2l1 {
		t.Errorf("L1->RF headroom (%v) must exceed L2->L1 (%v): the paper's motivation", l1rf, l2l1)
	}
	if l1rf <= 0.01 || memllc <= 0.01 {
		t.Errorf("outer walls too small: L1->RF %v, Mem->LLC %v", l1rf, memllc)
	}
}

// ByIDMust panics when the experiment is missing (test helper).
func ByIDMust(id string) Experiment {
	e, ok := ByID(id)
	if !ok {
		panic("missing experiment " + id)
	}
	return e
}

func TestPowerExperimentShape(t *testing.T) {
	res, err := ByIDMust("power").Run(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["epu_baseline"] <= 0 {
		t.Fatal("baseline energy must be positive")
	}
	// Flush waste must burden the flush-prone schemes more than RFP.
	if res.Metrics["flush_epp"] < res.Metrics["flush_rfp"] {
		t.Errorf("EPP flush waste %v below RFP %v", res.Metrics["flush_epp"], res.Metrics["flush_rfp"])
	}
	// RFP must not blow up the energy budget (paper: no significant
	// power overhead).
	if res.Metrics["epu_rfp"] > 1.1*res.Metrics["epu_baseline"] {
		t.Errorf("RFP energy/uop %v vs baseline %v", res.Metrics["epu_rfp"], res.Metrics["epu_baseline"])
	}
}

func TestBandwidthExperimentShape(t *testing.T) {
	res, err := ByIDMust("bandwidth").Run(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	base := res.Metrics["l1apu_baseline"]
	if base <= 0 {
		t.Fatal("baseline L1 traffic must be positive")
	}
	// Neither scheme should come close to doubling L1 traffic (the
	// two-accesses-per-load failure mode of naive address prediction).
	for _, k := range []string{"l1apu_rfp", "l1apu_dlvp"} {
		if res.Metrics[k] > 1.5*base {
			t.Errorf("%s = %v vs baseline %v: traffic explosion", k, res.Metrics[k], base)
		}
	}
}

func TestCriticalExperimentShape(t *testing.T) {
	res, err := ByIDMust("critical").Run(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["injected_critical"] >= res.Metrics["injected_full"] {
		t.Error("criticality targeting must reduce prefetch traffic")
	}
	if res.Metrics["injected_critical"] <= 0 {
		t.Error("criticality targeting injected nothing")
	}
}

func TestHWPrefetchExperimentShape(t *testing.T) {
	res, err := ByIDMust("hwprefetch").Run(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	// RFP must retain a meaningful gain on top of the cache prefetcher
	// (it targets latency, not misses).
	if res.Metrics["speedup_rfp_on_hw"] <= 0 {
		t.Errorf("RFP on top of HW prefetching = %v, want positive", res.Metrics["speedup_rfp_on_hw"])
	}
}

// TestPrefZooShape checks the prefetcher-zoo experiment's plumbing on the
// tiny subset: every scheme reports sane coverage/accuracy fractions, the
// cache-prefetching schemes actually issue prefetches, and the managed
// adaptivity score is a fraction.
func TestPrefZooShape(t *testing.T) {
	res, err := ByIDMust("prefzoo").Run(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"stream", "spp", "sisb", "managed"} {
		if res.Metrics["issued_kuop_"+k] <= 0 {
			t.Errorf("%s issued no prefetches", k)
		}
		cov, acc := res.Metrics["coverage_"+k], res.Metrics["accuracy_"+k]
		if cov < 0 || cov > 1 || acc < 0 || acc > 1 {
			t.Errorf("%s coverage/accuracy out of range: %v / %v", k, cov, acc)
		}
	}
	// The no-prefetcher scheme must report zero L1PF activity.
	if res.Metrics["issued_kuop_none"] != 0 || res.Metrics["coverage_none"] != 0 {
		t.Errorf("scheme 'none' reports prefetch activity: %v issued/kuop",
			res.Metrics["issued_kuop_none"])
	}
	if wf := res.Metrics["managed_wins_frac"]; wf < 0 || wf > 1 {
		t.Errorf("managed_wins_frac = %v", wf)
	}
}

// TestRunConfigDeterministicUnderParallelism guards against shared-state
// races between concurrently simulated workloads: two independent parallel
// sweeps must produce identical cycle counts.
func TestRunConfigDeterministicUnderParallelism(t *testing.T) {
	opts := tiny()
	opts.Parallel = 6
	a := runConfig(context.Background(), config.Baseline().WithRFP(), opts)
	b := runConfig(context.Background(), config.Baseline().WithRFP(), opts)
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("run error: %v %v", a[i].Err, b[i].Err)
		}
		if a[i].Stats.Cycles != b[i].Stats.Cycles {
			t.Errorf("%s: nondeterministic cycles %d vs %d",
				a[i].Spec.Name, a[i].Stats.Cycles, b[i].Stats.Cycles)
		}
	}
}

// TestEveryExperimentRunsAtMicroScale executes all experiments on a
// two-workload, tiny-window configuration so every Run function's plumbing
// (config construction, pairing, metric assembly) is exercised in CI.
func TestEveryExperimentRunsAtMicroScale(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var micro Options
	for _, name := range []string{"spec06_hmmer", "spec06_mcf"} {
		s, ok := trace.ByName(name)
		if !ok {
			t.Fatal("missing workload")
		}
		micro.Workloads = append(micro.Workloads, s)
	}
	micro.WarmupUops = 3000
	micro.MeasureUops = 6000
	for _, e := range All() {
		res, err := e.Run(context.Background(), micro)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if res.ID != e.ID {
			t.Errorf("%s returned result id %q", e.ID, res.ID)
		}
		if res.Text == "" {
			t.Errorf("%s produced no output", e.ID)
		}
		for k, v := range res.Metrics {
			if v != v { // NaN guard
				t.Errorf("%s metric %s is NaN", e.ID, k)
			}
		}
	}
}

// TestSeedReplication: Seeds > 1 must aggregate counters across replicas
// (instructions roughly scale with the replica count) and remain
// deterministic.
func TestSeedReplication(t *testing.T) {
	opts := tiny()
	opts.Workloads = opts.Workloads[:2]
	opts.Seeds = 3
	a := runConfig(context.Background(), config.Baseline(), opts)
	b := runConfig(context.Background(), config.Baseline(), opts)
	for i := range a {
		if a[i].Err != nil {
			t.Fatal(a[i].Err)
		}
		want := 3 * opts.MeasureUops
		if a[i].Stats.Instructions < want || a[i].Stats.Instructions > want+30 {
			t.Errorf("%s: %d instructions across 3 replicas, want ~%d",
				a[i].Spec.Name, a[i].Stats.Instructions, want)
		}
		if a[i].Stats.Cycles != b[i].Stats.Cycles {
			t.Errorf("%s: seed replication nondeterministic", a[i].Spec.Name)
		}
	}
	// Replicas are genuinely different dynamic instances.
	opts.Seeds = 1
	single := runConfig(context.Background(), config.Baseline(), opts)
	if a[0].Stats.Cycles == 3*single[0].Stats.Cycles {
		t.Log("replica cycles happen to be an exact multiple; acceptable but unusual")
	}
}

func TestResultMetricKeysSorted(t *testing.T) {
	r := &Result{Metrics: map[string]float64{"z": 1, "a": 2}}
	keys := r.MetricKeys()
	if len(keys) != 2 || keys[0] != "a" {
		t.Errorf("keys = %v", keys)
	}
}

// TestRunConfigCancellation: a cancelled context makes every workload in
// the sweep report the cancellation with nil stats — no partial seed totals
// leak into downstream averaging.
func TestRunConfigCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runs := runConfig(ctx, config.Baseline(), tiny())
	if len(runs) == 0 {
		t.Fatal("no runs returned")
	}
	for _, r := range runs {
		if r.Err == nil || !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want wrapped context.Canceled", r.Spec.Name, r.Err)
		}
		if r.Stats != nil {
			t.Errorf("%s: cancelled run carries stats %+v, want nil", r.Spec.Name, r.Stats)
		}
	}
}
