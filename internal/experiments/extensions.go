package experiments

import (
	"context"
	"fmt"

	"rfpsim/internal/config"
	"rfpsim/internal/energy"
	"rfpsim/internal/stats"
)

// runPower quantifies the paper's qualitative §5.6 power discussion: energy
// per committed uop under a first-order event-energy model. The expected
// shape: correct RFP adds only small-table and register-write energy (no
// validation re-reads); wrong prefetches add one L1 access each; value and
// address predictors pay for probe traffic and — dominating — pipeline
// flushes.
func runPower(ctx context.Context, opts Options) (*Result, error) {
	cost := energy.DefaultCost()
	schemes := []struct {
		key string
		cfg config.Core
	}{
		{"baseline", config.Baseline()},
		{"rfp", config.Baseline().WithRFP()},
		{"vp_eves", config.Baseline().WithVP(config.VPEVES)},
		{"dlvp", config.Baseline().WithVP(config.VPDLVP)},
		{"epp", config.Baseline().WithVP(config.VPEPP)},
	}
	tb := stats.NewTable("Scheme", "Energy/uop", "vs baseline", "Flush waste", "Prefetch extra")
	metrics := map[string]float64{}
	var baseEPU float64
	for i, s := range schemes {
		runs := runConfig(ctx, s.cfg, opts)
		epu := meanOver(runs, func(st *stats.Sim) float64 { return energy.PerUop(st, cost) })
		flush := meanOver(runs, func(st *stats.Sim) float64 {
			if st.Instructions == 0 {
				return 0
			}
			return energy.FromStats(st, cost).FlushWaste / float64(st.Instructions)
		})
		extra := meanOver(runs, func(st *stats.Sim) float64 {
			if st.Instructions == 0 {
				return 0
			}
			return energy.FromStats(st, cost).PrefetchExtra / float64(st.Instructions)
		})
		if i == 0 {
			baseEPU = epu
		}
		rel := 0.0
		if baseEPU > 0 {
			rel = epu/baseEPU - 1
		}
		tb.AddRow(s.key, fmt.Sprintf("%.3f EU", epu), stats.Pct(rel),
			fmt.Sprintf("%.4f", flush), fmt.Sprintf("%.4f", extra))
		metrics["epu_"+s.key] = epu
		metrics["flush_"+s.key] = flush
		metrics["extra_"+s.key] = extra
	}
	return &Result{
		ID:      "power",
		Title:   "Energy per uop (paper §5.6: RFP adds little; flushes dominate VP/AP overheads)",
		Text:    tb.String(),
		Metrics: metrics,
	}, nil
}

// runBandwidth quantifies the §5.6 L1-bandwidth claim: a correct RFP
// replaces the demand load's access one-for-one, so total L1 accesses stay
// nearly flat; wrong prefetches add their re-read; DLVP-style probes are
// pure extra traffic.
func runBandwidth(ctx context.Context, opts Options) (*Result, error) {
	schemes := []struct {
		key string
		cfg config.Core
	}{
		{"baseline", config.Baseline()},
		{"rfp", config.Baseline().WithRFP()},
		{"dlvp", config.Baseline().WithVP(config.VPDLVP)},
	}
	tb := stats.NewTable("Scheme", "L1 accesses / uop", "vs baseline")
	metrics := map[string]float64{}
	var base float64
	for i, s := range schemes {
		runs := runConfig(ctx, s.cfg, opts)
		apu := meanOver(runs, func(st *stats.Sim) float64 {
			if st.Instructions == 0 {
				return 0
			}
			return float64(st.L1Accesses) / float64(st.Instructions)
		})
		if i == 0 {
			base = apu
		}
		rel := 0.0
		if base > 0 {
			rel = apu/base - 1
		}
		tb.AddRow(s.key, fmt.Sprintf("%.3f", apu), stats.Pct(rel))
		metrics["l1apu_"+s.key] = apu
	}
	return &Result{
		ID:      "bandwidth",
		Title:   "L1 access traffic (paper §5.6: correct RFP needs no validation re-read)",
		Text:    tb.String(),
		Metrics: metrics,
	}, nil
}

// runHWPrefetch answers the implicit compositionality question: does RFP
// still pay off when the baseline already has a hardware stream cache
// prefetcher? It should — cache prefetchers convert misses into L1 hits,
// which *grows* the population RFP can accelerate (L1 latency remains).
func runHWPrefetch(ctx context.Context, opts Options) (*Result, error) {
	plain := config.Baseline()
	hw := config.Baseline()
	hw.Name = "baseline+hwpf"
	hw.Mem.HWPrefetch = true
	hwRFP := hw.WithRFP()

	base := runConfig(ctx, plain, opts)
	hwRuns := runConfig(ctx, hw, opts)
	hwRFPRuns := runConfig(ctx, hwRFP, opts)
	rfpRuns := runConfig(ctx, config.Baseline().WithRFP(), opts)

	hwPairs, err := pairRuns(base, hwRuns)
	if err != nil {
		return nil, err
	}
	hwRFPPairs, err := pairRuns(hwRuns, hwRFPRuns)
	if err != nil {
		return nil, err
	}
	rfpPairs, err := pairRuns(base, rfpRuns)
	if err != nil {
		return nil, err
	}
	spHW := geomeanSpeedup(hwPairs)
	spRFPOnHW := geomeanSpeedup(hwRFPPairs)
	spRFP := geomeanSpeedup(rfpPairs)

	tb := stats.NewTable("Comparison", "Speedup")
	tb.AddRow("HW stream prefetcher vs baseline", stats.Pct(spHW))
	tb.AddRow("RFP on top of HW prefetcher", stats.Pct(spRFPOnHW))
	tb.AddRow("RFP on plain baseline", stats.Pct(spRFP))
	return &Result{
		ID:    "hwprefetch",
		Title: "RFP composed with a hardware cache prefetcher (orthogonality check)",
		Text:  tb.String(),
		Metrics: map[string]float64{
			"speedup_hw": spHW, "speedup_rfp_on_hw": spRFPOnHW, "speedup_rfp": spRFP,
		},
	}, nil
}

// runCycleAccounting is the top-down view of where RFP's gain comes from:
// commit slots blocked behind unfinished loads (the L1-latency wall) shrink
// and convert into retired slots, while exec/frontend stalls stay put.
func runCycleAccounting(ctx context.Context, opts Options) (*Result, error) {
	tb := stats.NewTable("Config", "Retired", "Load-stall", "Exec-stall", "Frontend")
	metrics := map[string]float64{}
	for _, withRFP := range []bool{false, true} {
		cfg := config.Baseline()
		key := "baseline"
		if withRFP {
			cfg = cfg.WithRFP()
			key = "rfp"
		}
		runs := runConfig(ctx, cfg, opts)
		var retired, load, exec, empty float64
		nOK := 0
		for _, r := range runs {
			if r.Err != nil {
				return nil, r.Err
			}
			a, b, c, d := r.Stats.Slots.Frac()
			retired += a
			load += b
			exec += c
			empty += d
			nOK++
		}
		n := float64(nOK)
		tb.AddRow(key, stats.Pct(retired/n), stats.Pct(load/n), stats.Pct(exec/n), stats.Pct(empty/n))
		metrics["retired_"+key] = retired / n
		metrics["loadstall_"+key] = load / n
		metrics["execstall_"+key] = exec / n
		metrics["frontend_"+key] = empty / n
	}
	return &Result{
		ID:      "cycleacct",
		Title:   "Top-down commit-slot accounting: RFP converts load stalls into retirement",
		Text:    tb.String(),
		Metrics: metrics,
	}, nil
}

// runLateAlloc exercises the §3.3 "Pipeline Variations" register file:
// physical registers claimed at writeback through virtual pointers. RFP
// must keep (approximately) its gain under the variation — the paper's
// point that RFP adapts to either register file design.
func runLateAlloc(ctx context.Context, opts Options) (*Result, error) {
	tb := stats.NewTable("Register file", "RFP speedup")
	metrics := map[string]float64{}
	for _, late := range []bool{false, true} {
		base := config.Baseline()
		base.LateRegAlloc = late
		key := "rename-time"
		if late {
			key = "late (virtual pointers)"
			base.Name = "baseline-late"
		}
		feat := base.WithRFP()
		baseRuns := runConfig(ctx, base, opts)
		featRuns := runConfig(ctx, feat, opts)
		pairs, err := pairRuns(baseRuns, featRuns)
		if err != nil {
			return nil, err
		}
		sp := geomeanSpeedup(pairs)
		tb.AddRow(key, stats.Pct(sp))
		if late {
			metrics["speedup_late"] = sp
		} else {
			metrics["speedup_rename"] = sp
		}
	}
	return &Result{
		ID:      "latealloc",
		Title:   "§3.3 pipeline variation: RFP with late (writeback-time) register allocation",
		Text:    tb.String(),
		Metrics: metrics,
	}, nil
}

// runBPQuality crosses branch predictor quality with RFP. On this suite
// most hard branches are data-dependent and irreducibly random, so TAGE
// and gshare land at similar misprediction rates and the experiment mainly
// demonstrates that RFP's gain is robust to the branch predictor choice;
// on pattern-heavy workloads (see the TAGE unit tests) the predictors
// separate and RFP's share of the critical path shifts accordingly.
func runBPQuality(ctx context.Context, opts Options) (*Result, error) {
	tb := stats.NewTable("Branch predictor", "RFP speedup", "Baseline mispredicts/kuop")
	metrics := map[string]float64{}
	for _, bp := range []string{"tage", "gshare"} {
		base := config.Baseline()
		base.BranchPredictor = bp
		base.Name = "baseline-" + bp
		feat := base.WithRFP()
		baseRuns := runConfig(ctx, base, opts)
		featRuns := runConfig(ctx, feat, opts)
		pairs, err := pairRuns(baseRuns, featRuns)
		if err != nil {
			return nil, err
		}
		sp := geomeanSpeedup(pairs)
		mpki := meanOver(baseRuns, func(st *stats.Sim) float64 {
			if st.Instructions == 0 {
				return 0
			}
			return 1000 * float64(st.BranchMispredicts) / float64(st.Instructions)
		})
		tb.AddRow(bp, stats.Pct(sp), fmt.Sprintf("%.2f", mpki))
		metrics["speedup_"+bp] = sp
		metrics["mpku_"+bp] = mpki
	}
	return &Result{
		ID:      "bpquality",
		Title:   "Branch predictor quality vs RFP gain (TAGE vs gshare baseline)",
		Text:    tb.String(),
		Metrics: metrics,
	}, nil
}

// runCritical evaluates the criticality-targeted RFP extension the paper
// leaves as future work (§5.1, citing FVP and CATCH): inject prefetches
// only for loads the commit-stall estimator flags as critical. Expected
// shape: a fraction of the prefetch traffic retains most of the speedup,
// because "not all prefetches have a high impact on performance".
func runCritical(ctx context.Context, opts Options) (*Result, error) {
	base := runConfig(ctx, config.Baseline(), opts)
	full := runConfig(ctx, config.Baseline().WithRFP(), opts)
	critCfg := config.Baseline().WithRFP()
	critCfg.RFP.CriticalOnly = true
	critCfg.Name = "baseline+rfp-critical"
	crit := runConfig(ctx, critCfg, opts)

	fullPairs, err := pairRuns(base, full)
	if err != nil {
		return nil, err
	}
	critPairs, err := pairRuns(base, crit)
	if err != nil {
		return nil, err
	}
	spFull, spCrit := geomeanSpeedup(fullPairs), geomeanSpeedup(critPairs)
	injFull := meanOver(full, (*stats.Sim).RFPInjectedFrac)
	injCrit := meanOver(crit, (*stats.Sim).RFPInjectedFrac)
	covFull := meanOver(full, (*stats.Sim).RFPCoverage)
	covCrit := meanOver(crit, (*stats.Sim).RFPCoverage)

	tb := stats.NewTable("Variant", "Speedup", "Injected", "Coverage")
	tb.AddRow("all eligible loads", stats.Pct(spFull), stats.Pct(injFull), stats.Pct(covFull))
	tb.AddRow("critical loads only", stats.Pct(spCrit), stats.Pct(injCrit), stats.Pct(covCrit))
	retained := 0.0
	if spFull != 0 {
		retained = spCrit / spFull
	}
	traffic := 0.0
	if injFull != 0 {
		traffic = injCrit / injFull
	}
	txt := tb.String() + fmt.Sprintf("\nCriticality targeting keeps %.0f%% of the speedup with %.0f%% of the prefetch traffic.\n",
		100*retained, 100*traffic)
	return &Result{
		ID:    "critical",
		Title: "Criticality-targeted RFP (paper §5.1 future work, FVP/CATCH-style)",
		Text:  txt,
		Metrics: map[string]float64{
			"speedup_full": spFull, "speedup_critical": spCrit,
			"injected_full": injFull, "injected_critical": injCrit,
		},
	}, nil
}
