package experiments

import (
	"context"
	"fmt"

	"rfpsim/internal/config"
	"rfpsim/internal/stats"
)

// runCLP evaluates the cache-level-predicted RFP arming schedule
// (docs/predictors.md): a PC-indexed predictor of the hierarchy level that
// will serve each load steers the register-file prefetch — predicted DRAM
// accesses are skipped (the prefetch cannot hide hundreds of cycles from
// rename anyway), predicted near hits arm the RFP-inflight bit early, and
// under queue pressure only criticality-flagged loads claim slots. The
// figure reports, over the full workload catalog, the predictor's coverage
// and per-level accuracy plus the IPC delta of CLP-scheduled RFP against
// both the plain baseline and flat (level-blind) RFP.
func runCLP(ctx context.Context, opts Options) (*Result, error) {
	base := runConfig(ctx, config.Baseline(), opts)
	flat := runConfig(ctx, config.Baseline().WithRFP(), opts)
	clp := runConfig(ctx, config.Baseline().WithCLP(), opts)

	flatPairs, err := pairRuns(base, flat)
	if err != nil {
		return nil, err
	}
	clpPairs, err := pairRuns(base, clp)
	if err != nil {
		return nil, err
	}
	spFlat, spCLP := geomeanSpeedup(flatPairs), geomeanSpeedup(clpPairs)

	cov := meanOver(clp, (*stats.Sim).CLPCoverage)
	acc := meanOver(clp, (*stats.Sim).CLPAccuracy)
	injFlat := meanOver(flat, (*stats.Sim).RFPInjectedFrac)
	injCLP := meanOver(clp, (*stats.Sim).RFPInjectedFrac)

	tb := stats.NewTable("Variant", "Speedup", "Injected", "CLP coverage", "CLP accuracy")
	tb.AddRow("flat RFP", stats.Pct(spFlat), stats.Pct(injFlat), "-", "-")
	tb.AddRow("CLP-scheduled RFP", stats.Pct(spCLP), stats.Pct(injCLP), stats.Pct(cov), stats.Pct(acc))

	lv := stats.NewTable("Level", "Predicted share", "Accuracy")
	metrics := map[string]float64{
		"speedup_flat": spFlat, "speedup_clp": spCLP,
		"coverage": cov, "accuracy": acc,
		"injected_flat": injFlat, "injected_clp": injCLP,
	}
	for l := 0; l < stats.NumLevels; l++ {
		l := l
		share := meanOver(clp, func(s *stats.Sim) float64 {
			tot := s.CLP.PredictedTotal()
			if tot == 0 {
				return 0
			}
			return float64(s.CLP.Predicted[l]) / float64(tot)
		})
		lacc := meanOver(clp, func(s *stats.Sim) float64 { return s.CLPLevelAccuracy(l) })
		lv.AddRow(stats.LevelName(l), stats.Pct(share), stats.Pct(lacc))
		metrics["share_"+stats.LevelName(l)] = share
		metrics["accuracy_"+stats.LevelName(l)] = lacc
	}

	skipped := meanOver(clp, func(s *stats.Sim) float64 {
		if s.Loads == 0 {
			return 0
		}
		return float64(s.CLP.SkippedDRAM) / float64(s.Loads)
	})
	early := meanOver(clp, func(s *stats.Sim) float64 {
		if s.RFP.Injected == 0 {
			return 0
		}
		return float64(s.CLP.EarlyArmed) / float64(s.RFP.Injected)
	})
	gated := meanOver(clp, func(s *stats.Sim) float64 {
		if s.Loads == 0 {
			return 0
		}
		return float64(s.CLP.CritGated) / float64(s.Loads)
	})
	metrics["skipped_dram_frac"] = skipped
	metrics["early_armed_frac"] = early
	metrics["crit_gated_frac"] = gated

	txt := tb.String() + "\nPer-level prediction breakdown (share of confident predictions, accuracy at that level):\n" +
		lv.String() + fmt.Sprintf(
		"\nSchedule actions: %s of loads skipped (predicted DRAM), %s of injected prefetches armed early (predicted near hit), %s of loads criticality-gated under queue pressure.\n",
		stats.Pct(skipped), stats.Pct(early), stats.Pct(gated))
	return &Result{
		ID:      "clp",
		Title:   "Extension: cache-level-predicted RFP arming schedule",
		Text:    txt,
		Metrics: metrics,
	}, nil
}
