package experiments

import (
	"context"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/stats"
)

// TestSuitePopulationFacts checks the synthetic suite against the paper's
// population-level facts the substitution (DESIGN.md §4) promises to
// preserve. It runs a quarter of the catalog with reduced windows, so the
// tolerances are generous; cmd/experiments -run all is the full check.
func TestSuitePopulationFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	opts := Quick()
	runs := runConfig(context.Background(), config.Baseline(), opts)

	// Fact 1 (Figure 2): the large majority of loads hit the L1.
	l1 := meanOver(runs, func(s *stats.Sim) float64 { return s.LoadLevelFrac(stats.LevelL1) })
	if l1 < 0.75 || l1 > 0.99 {
		t.Errorf("suite L1 hit fraction = %.3f, want ~0.86-0.93 (paper 92.8%%)", l1)
	}

	// Fact 2 (§3): most loads are NOT address-ready at allocation.
	notReady := meanOver(runs, func(s *stats.Sim) float64 {
		if s.Loads == 0 {
			return 0
		}
		return 1 - float64(s.LoadsAddrReadyAtAlloc)/float64(s.Loads)
	})
	if notReady < 0.5 {
		t.Errorf("not-ready-at-alloc = %.2f, want > 0.5 (paper 63%%)", notReady)
	}

	// Fact 3: loads are a realistic fraction of the uop stream.
	loadFrac := meanOver(runs, func(s *stats.Sim) float64 {
		if s.Instructions == 0 {
			return 0
		}
		return float64(s.Loads) / float64(s.Instructions)
	})
	if loadFrac < 0.15 || loadFrac > 0.40 {
		t.Errorf("load fraction = %.2f, want 0.15-0.40", loadFrac)
	}

	// Fact 4: IPCs span a realistic range — memory-bound outliers below
	// 0.5, cache-friendly codes above 2.5.
	lo, hi := 100.0, 0.0
	for _, r := range runs {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		ipc := r.Stats.IPC()
		if ipc < lo {
			lo = ipc
		}
		if ipc > hi {
			hi = ipc
		}
	}
	if lo > 0.5 {
		t.Errorf("no memory-bound outlier: min IPC %.2f", lo)
	}
	if hi < 2.5 {
		t.Errorf("no ILP-rich workload: max IPC %.2f", hi)
	}

	// Fact 5: branch mispredict rates are sane (not a broken predictor,
	// not an oracle).
	mpku := meanOver(runs, func(s *stats.Sim) float64 {
		if s.Instructions == 0 {
			return 0
		}
		return 1000 * float64(s.BranchMispredicts) / float64(s.Instructions)
	})
	if mpku < 0.3 || mpku > 25 {
		t.Errorf("suite mispredicts/kuop = %.2f, implausible", mpku)
	}
}
