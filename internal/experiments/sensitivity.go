package experiments

import (
	"context"
	"fmt"

	"rfpsim/internal/config"
	"rfpsim/internal/rfp"
	"rfpsim/internal/stats"
)

// runFig17 reproduces Figure 17: confidence counter width 1..4 bits. Wider
// counters raise accuracy but shed coverage; since RFP mispredictions are
// cheap (no flush), 1-bit wins on speedup — the paper's headline argument
// for low-confidence prefetching.
func runFig17(ctx context.Context, opts Options) (*Result, error) {
	base := runConfig(ctx, config.Baseline(), opts)
	tb := stats.NewTable("Confidence bits", "Speedup", "Coverage", "Wrong")
	metrics := map[string]float64{}
	for bits := 1; bits <= 4; bits++ {
		cfg := config.Baseline().WithRFP()
		cfg.RFP.ConfidenceBits = bits
		cfg.Name = fmt.Sprintf("rfp-conf%d", bits)
		runs := runConfig(ctx, cfg, opts)
		pairs, err := pairRuns(base, runs)
		if err != nil {
			return nil, err
		}
		sp := geomeanSpeedup(pairs)
		cov := meanOver(runs, (*stats.Sim).RFPCoverage)
		wrong := meanOver(runs, (*stats.Sim).RFPWrongFrac)
		tb.AddRow(fmt.Sprintf("%d-bit", bits), stats.Pct(sp), stats.Pct(cov), stats.Pct2(wrong))
		metrics[fmt.Sprintf("speedup_%dbit", bits)] = sp
		metrics[fmt.Sprintf("coverage_%dbit", bits)] = cov
		metrics[fmt.Sprintf("wrong_%dbit", bits)] = wrong
	}
	return &Result{
		ID:      "fig17",
		Title:   "Confidence width sensitivity (paper: 1-bit best; 4-bit drops coverage, wrong 5%->0.7%)",
		Text:    tb.String(),
		Metrics: metrics,
	}, nil
}

// runFig18 reproduces Figure 18: Prefetch Table entries 1K..16K. Paper:
// small monotone improvement that flattens out.
func runFig18(ctx context.Context, opts Options) (*Result, error) {
	base := runConfig(ctx, config.Baseline(), opts)
	tb := stats.NewTable("PT entries", "Speedup", "Coverage")
	metrics := map[string]float64{}
	for _, entries := range []int{1024, 2048, 4096, 8192, 16384} {
		cfg := config.Baseline().WithRFP()
		cfg.RFP.PTEntries = entries
		cfg.Name = fmt.Sprintf("rfp-pt%d", entries)
		runs := runConfig(ctx, cfg, opts)
		pairs, err := pairRuns(base, runs)
		if err != nil {
			return nil, err
		}
		sp := geomeanSpeedup(pairs)
		cov := meanOver(runs, (*stats.Sim).RFPCoverage)
		tb.AddRow(fmt.Sprintf("%dK", entries/1024), stats.Pct(sp), stats.Pct(cov))
		metrics[fmt.Sprintf("speedup_%dk", entries/1024)] = sp
		metrics[fmt.Sprintf("coverage_%dk", entries/1024)] = cov
	}
	return &Result{
		ID:      "fig18",
		Title:   "Prefetch Table size sensitivity (paper: 1K->16K gains little)",
		Text:    tb.String(),
		Metrics: metrics,
	}, nil
}

// runL1Latency reproduces §5.5.2: raising L1 latency from 5 to 6 cycles
// increases RFP's gain (there is more latency to hide).
func runL1Latency(ctx context.Context, opts Options) (*Result, error) {
	tb := stats.NewTable("L1 latency", "RFP speedup")
	metrics := map[string]float64{}
	for _, lat := range []int{5, 6} {
		b := config.Baseline()
		b.Mem.L1Latency = lat
		b.Name = fmt.Sprintf("baseline-l1@%d", lat)
		f := b.WithRFP()
		base := runConfig(ctx, b, opts)
		feat := runConfig(ctx, f, opts)
		pairs, err := pairRuns(base, feat)
		if err != nil {
			return nil, err
		}
		sp := geomeanSpeedup(pairs)
		tb.AddRow(fmt.Sprintf("%d cycles", lat), stats.Pct(sp))
		metrics[fmt.Sprintf("speedup_l1_%d", lat)] = sp
	}
	return &Result{
		ID:      "l1lat",
		Title:   "L1 latency sensitivity (paper: 6-cycle L1 raises RFP gain by ~0.5%)",
		Text:    tb.String(),
		Metrics: metrics,
	}, nil
}

// runContext reproduces §5.5.3: adding the path-based context prefetcher
// on top of the stride table. Paper: only +0.3%, so stride-only is enough.
func runContext(ctx context.Context, opts Options) (*Result, error) {
	base := runConfig(ctx, config.Baseline(), opts)
	stride := runConfig(ctx, config.Baseline().WithRFP(), opts)
	ctxCfg := config.Baseline().WithRFP()
	ctxCfg.RFP.UseContext = true
	ctxCfg.Name = "baseline+rfp+ctx"
	ctxRuns := runConfig(ctx, ctxCfg, opts)
	stridePairs, err := pairRuns(base, stride)
	if err != nil {
		return nil, err
	}
	ctxPairs, err := pairRuns(base, ctxRuns)
	if err != nil {
		return nil, err
	}
	spStride, spCtx := geomeanSpeedup(stridePairs), geomeanSpeedup(ctxPairs)
	tb := stats.NewTable("Prefetcher", "Speedup", "Coverage")
	tb.AddRow("stride only", stats.Pct(spStride), stats.Pct(meanOver(stride, (*stats.Sim).RFPCoverage)))
	tb.AddRow("stride + context", stats.Pct(spCtx), stats.Pct(meanOver(ctxRuns, (*stats.Sim).RFPCoverage)))
	return &Result{
		ID:      "context",
		Title:   "Context prefetcher (paper: +0.3% over stride — not worth the storage)",
		Text:    tb.String(),
		Metrics: map[string]float64{"speedup_stride": spStride, "speedup_context": spCtx},
	}, nil
}

// runPAT reproduces §5.5.4: PT entries hold a 6-bit PAT pointer + 12-bit
// page offset instead of a 64-bit VA. Paper: ~50% storage saved for a
// negligible 0.09% performance drop.
func runPAT(ctx context.Context, opts Options) (*Result, error) {
	base := runConfig(ctx, config.Baseline(), opts)
	full := runConfig(ctx, config.Baseline().WithRFP(), opts)
	patCfg := config.Baseline().WithRFP()
	patCfg.RFP.UsePAT = true
	patCfg.Name = "baseline+rfp+pat"
	pat := runConfig(ctx, patCfg, opts)
	fullPairs, err := pairRuns(base, full)
	if err != nil {
		return nil, err
	}
	patPairs, err := pairRuns(base, pat)
	if err != nil {
		return nil, err
	}
	spFull, spPAT := geomeanSpeedup(fullPairs), geomeanSpeedup(patPairs)
	sFull := rfp.Storage(config.Baseline().WithRFP().RFP, config.Baseline().RSSize)
	sPAT := rfp.Storage(patCfg.RFP, config.Baseline().RSSize)
	saving := 1 - float64(sPAT.TotalBits())/float64(sFull.TotalBits())
	tb := stats.NewTable("PT encoding", "Speedup", "Storage")
	tb.AddRow("full 64-bit VA", stats.Pct(spFull), fmtKB(sFull.TotalBits()))
	tb.AddRow("PAT pointer + offset", stats.Pct(spPAT), fmtKB(sPAT.TotalBits()))
	return &Result{
		ID:    "pat",
		Title: "PAT area optimization (paper: ~50% storage saved, -0.09% perf)",
		Text:  tb.String() + fmt.Sprintf("\nStorage saving: %s\n", stats.Pct(saving)),
		Metrics: map[string]float64{
			"speedup_full": spFull, "speedup_pat": spPAT, "storage_saving": saving,
		},
	}, nil
}

// runSimplifications reproduces §5.5.5: dropping prefetches on DTLB misses
// costs ~nothing; letting prefetches fetch L1 misses is worth ~0.02%.
func runSimplifications(ctx context.Context, opts Options) (*Result, error) {
	base := runConfig(ctx, config.Baseline(), opts)
	variants := []struct {
		key string
		mut func(*config.RFPConfig)
	}{
		{"default (drop on TLB miss, fetch L1 misses)", func(*config.RFPConfig) {}},
		{"walk TLB misses instead of dropping", func(r *config.RFPConfig) { r.DropOnTLBMiss = false }},
		{"drop prefetches that miss the L1", func(r *config.RFPConfig) { r.PrefetchOnL1Miss = false }},
	}
	tb := stats.NewTable("Variant", "Speedup", "Coverage")
	metrics := map[string]float64{}
	for i, v := range variants {
		cfg := config.Baseline().WithRFP()
		v.mut(&cfg.RFP)
		cfg.Name = fmt.Sprintf("rfp-simpl%d", i)
		runs := runConfig(ctx, cfg, opts)
		pairs, err := pairRuns(base, runs)
		if err != nil {
			return nil, err
		}
		sp := geomeanSpeedup(pairs)
		tb.AddRow(v.key, stats.Pct(sp), stats.Pct(meanOver(runs, (*stats.Sim).RFPCoverage)))
		metrics[fmt.Sprintf("speedup_%d", i)] = sp
	}
	return &Result{
		ID:      "simplifications",
		Title:   "Pipeline simplifications (paper: both are ~free)",
		Text:    tb.String(),
		Metrics: metrics,
	}, nil
}

// runTable1 reproduces Table 1: the RFP storage bill of materials.
func runTable1(context.Context, Options) (*Result, error) {
	tb := stats.NewTable("Structure", "Fields", "Storage")
	cfgPAT := config.DefaultRFP()
	cfgPAT.UsePAT = true
	rep1k := rfp.Storage(cfgPAT, config.Baseline().RSSize)
	cfg2k := cfgPAT
	cfg2k.PTEntries = 2048
	rep2k := rfp.Storage(cfg2k, config.Baseline().RSSize)
	tb.AddRow("Prefetch Table (1024-2048 entries)",
		"Tag 16b, Conf 1b, Utility 2b, Stride 8b, Inflight 7b, PAT ptr 6b, Page offset 12b",
		fmtKB(rep1k.PTBits)+" - "+fmtKB(rep2k.PTBits))
	tb.AddRow("Page Address Table (64 entries)", "Page address 44b", fmt.Sprintf("%db", rep1k.PATBits))
	tb.AddRow(fmt.Sprintf("RFP-inflight (%d RS entries)", config.Baseline().RSSize), "1b", fmt.Sprintf("%db", rep1k.RFPInflightBits))
	return &Result{
		ID:    "table1",
		Title: "RFP storage (paper: 6.5KB PT @1K entries, 352B PAT, 128b RS bits)",
		Text:  tb.String(),
		Metrics: map[string]float64{
			"pt_bits_1k": float64(rep1k.PTBits), "pat_bits": float64(rep1k.PATBits),
			"rs_bits": float64(rep1k.RFPInflightBits),
		},
	}, nil
}

func fmtKB(bits int) string {
	return fmt.Sprintf("%.1fKB", float64(bits)/8/1024)
}
