package check

import (
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/trace"
)

// TestRFPInvarianceAcrossCatalog is the tier-1 semantics suite: for
// EVERY workload in the Table 3 catalog, running with register file
// prefetching on must commit a byte-identical architectural trace to
// running with it off — RFP is a timing optimization and nothing else
// (the paper's core claim of architectural invisibility). The runtime
// invariant layer is active on both sides, so any violation of the
// microarchitectural contracts (docs/checking.md) fails the suite even
// when the digests happen to agree.
func TestRFPInvarianceAcrossCatalog(t *testing.T) {
	t.Parallel()
	variant := config.Baseline().WithRFP()
	base, _, err := BaseFor("norfp", variant)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range trace.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := requireClean(t, Differential{
				Base: base, Variant: variant,
				Spec: mustSpec(t, name), Uops: 3000,
			})
			if res.VariantStats.Loads == 0 {
				t.Fatal("variant retired no loads — the comparison is vacuous")
			}
		})
	}
}
