package check

import (
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/trace"
)

// TestManagedPrefetcherInvarianceAcrossCatalog extends the tier-1
// semantics suite to the prefetcher zoo: for EVERY catalog workload, the
// adaptive managed prefetcher (which exercises stream, SPP and SISB
// underneath, plus the epoch switch/throttle machinery) must commit a
// byte-identical architectural trace to the same core with no L1
// prefetcher at all. Cache prefetching moves data, never values — the
// same invisibility contract RFP is held to.
func TestManagedPrefetcherInvarianceAcrossCatalog(t *testing.T) {
	t.Parallel()
	variant := config.Baseline().WithRFP().WithPrefetcher("managed")
	base, _, err := BaseFor("nopf", variant)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range trace.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := requireClean(t, Differential{
				Base: base, Variant: variant,
				Spec: mustSpec(t, name), Uops: 3000,
			})
			if res.VariantStats.Loads == 0 {
				t.Fatal("variant retired no loads — the comparison is vacuous")
			}
		})
	}
}

// TestStaticPrefetcherInvariance runs the same nopf pairing for each
// static zoo member on a representative workload subset (one per
// memory-behavior class: streaming, pointer-chasing, mixed), long enough
// for every scheme to actually issue prefetches.
func TestStaticPrefetcherInvariance(t *testing.T) {
	t.Parallel()
	for _, pf := range []string{"stream", "spp", "sisb"} {
		pf := pf
		for _, wl := range []string{"spec06_libquantum", "spec06_mcf", "spec06_gcc"} {
			wl := wl
			t.Run(pf+"/"+wl, func(t *testing.T) {
				t.Parallel()
				variant := config.Baseline().WithRFP().WithPrefetcher(pf)
				base, _, err := BaseFor("nopf", variant)
				if err != nil {
					t.Fatal(err)
				}
				requireClean(t, Differential{
					Base: base, Variant: variant,
					Spec: mustSpec(t, wl), Uops: 6000,
				})
			})
		}
	}
}
