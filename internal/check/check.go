// Package check is the differential-correctness harness of
// docs/checking.md. Its oracle is RFP-invariance: register file
// prefetching (and the other speculation machinery this simulator
// models) is architecturally invisible — it may change WHEN a load's
// data arrives, never WHAT the program computes. The harness runs the
// same deterministic workload under two configurations, records a
// per-uop content hash of the committed architectural trace on each
// side (core.CommitDigest), and asserts the streams are identical,
// localizing any mismatch to the first divergent interval and uop.
//
// Supported pairings: RFP on/off, value prediction on/off, late
// register allocation on/off, oracle modes, and sampled vs full
// simulation (each replayed interval is compared against the matching
// window of the full run's stream). The runtime invariant layer
// (config.Checks) is force-enabled on both sides, so a differential run
// also reports invariant violations alongside any digest divergence.
package check

import (
	"context"
	"fmt"

	"rfpsim/internal/config"
	"rfpsim/internal/core"
	"rfpsim/internal/isa"
	"rfpsim/internal/runner"
	"rfpsim/internal/sample"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
)

// Default window and localization granularity.
const (
	// DefaultUops is the measured window when Differential.Uops is 0.
	DefaultUops = 30000
	// DefaultIntervalUops is the divergence-localization interval when
	// Differential.IntervalUops is 0.
	DefaultIntervalUops = 1000
)

// Differential describes one paired run: the same workload under Base
// and Variant, compared on committed architectural digests.
type Differential struct {
	// Base and Variant are the paired configurations. Base always runs
	// the full window; Variant runs sampled when VariantSampling is set.
	Base, Variant config.Core
	// Spec names the workload (a catalog entry, or a Spec wrapping an
	// uploaded trace via NewGen).
	Spec trace.Spec
	// NewGen, when set, overrides Spec.New as the uop source. It must
	// return a fresh generator producing an identical stream on every
	// call (each side consumes its own; a sampled variant additionally
	// re-instantiates it per profiling and replay pass).
	NewGen func() isa.Generator
	// Uops is the compared window length (default DefaultUops).
	Uops uint64
	// IntervalUops is the divergence-localization interval (default
	// DefaultIntervalUops).
	IntervalUops uint64
	// VariantSampling, when set, runs the Variant side sampled
	// (internal/sample) and compares each replayed interval against the
	// matching window of the Base full run.
	VariantSampling *runner.Sampling
	// BaseFaults and VariantFaults inject named model faults
	// (core.InjectFault) before the measured window on the respective
	// side. Tests only: they exist to prove the oracle catches the bug
	// class it claims to.
	BaseFaults, VariantFaults []string
}

// Result is the outcome of one differential run.
type Result struct {
	// Workload, Base and Variant identify the pairing.
	Workload, Base, Variant string
	// Uops and IntervalUops echo the effective window parameters.
	Uops, IntervalUops uint64
	// Diverged reports whether the digest streams differ anywhere.
	Diverged bool
	// Interval and UopIndex localize the first divergence: UopIndex is
	// the absolute index in the committed stream, Interval is
	// UopIndex/IntervalUops.
	Interval int
	UopIndex uint64
	// BaseHash and VariantHash are the two sides' content hashes over
	// the divergent interval.
	BaseHash, VariantHash uint64
	// BaseViolations and VariantViolations are the runtime invariant
	// violation totals (stats.CheckStats.Total) on each side.
	BaseViolations, VariantViolations uint64
	// BaseStats and VariantStats are the full statistics blocks.
	BaseStats, VariantStats *stats.Sim
}

// String formats the result the way rfpsim -diff prints it.
func (r *Result) String() string {
	if !r.Diverged {
		return fmt.Sprintf("%s: %s vs %s — %d uops identical (%d violations base, %d variant)",
			r.Workload, r.Base, r.Variant, r.Uops, r.BaseViolations, r.VariantViolations)
	}
	return fmt.Sprintf("%s: %s vs %s DIVERGED at uop %d (interval %d): base hash %#016x, variant hash %#016x (%d violations base, %d variant)",
		r.Workload, r.Base, r.Variant, r.UopIndex, r.Interval,
		r.BaseHash, r.VariantHash, r.BaseViolations, r.VariantViolations)
}

// segment is one contiguous digested window of the committed stream:
// the full run produces a single segment at position 0; a sampled run
// produces one per replayed interval.
type segment struct {
	pos  uint64
	digs []uint64
}

type side struct {
	segs []segment
	st   *stats.Sim
}

// Run executes both sides and compares the digest streams.
func (d Differential) Run(ctx context.Context) (*Result, error) {
	uops := d.Uops
	if uops == 0 {
		uops = DefaultUops
	}
	il := d.IntervalUops
	if il == 0 {
		il = DefaultIntervalUops
	}
	base, err := d.runSide(ctx, d.Base, d.BaseFaults, nil, uops, il)
	if err != nil {
		return nil, fmt.Errorf("check: %s base (%s): %w", d.Spec.Name, d.Base.Name, err)
	}
	variant, err := d.runSide(ctx, d.Variant, d.VariantFaults, d.VariantSampling, uops, il)
	if err != nil {
		return nil, fmt.Errorf("check: %s variant (%s): %w", d.Spec.Name, d.Variant.Name, err)
	}

	res := &Result{
		Workload: d.Spec.Name,
		Base:     d.Base.Name, Variant: d.Variant.Name,
		Uops: uops, IntervalUops: il,
		BaseViolations:    base.st.Checks.Total(),
		VariantViolations: variant.st.Checks.Total(),
		BaseStats:         base.st, VariantStats: variant.st,
	}
	baseDigs := base.segs[0].digs
	d.compare(res, baseDigs, variant.segs, il, d.VariantSampling == nil)
	return res, nil
}

// runSide executes one configuration and collects its digest segments.
func (d Differential) runSide(ctx context.Context, cfg config.Core, faults []string, sampling *runner.Sampling, uops, il uint64) (side, error) {
	// The checking layer is part of the harness contract: it is
	// timing-invisible, and a differential run should surface invariant
	// violations next to any divergence.
	cfg.Checks.Enabled = true
	job := runner.Job{
		Config:      cfg,
		Spec:        d.Spec,
		MeasureUops: uops,
		Seeds:       1,
	}
	if d.NewGen != nil {
		// The factory form works on both sides: the full run draws one
		// fresh generator, a sampled variant re-instantiates the stream
		// per profiling/replay pass (runner.Job.NewGen).
		job.NewGen = d.NewGen
	}
	segLimit := uops
	if sampling != nil {
		sp := sample.Normalized(*sampling)
		job.Sampling = &sp
		segLimit = sp.IntervalUops
	}
	var (
		segs    []segment
		digests []*core.CommitDigest
		hookErr error
	)
	job.AfterWarmup = func(c *core.Core) {
		for _, f := range faults {
			if err := c.InjectFault(f); err != nil && hookErr == nil {
				hookErr = err
			}
		}
		segs = append(segs, segment{pos: c.RetiredStreamPos()})
		digests = append(digests, c.EnableCommitDigest(il))
	}
	st, err := sample.Run(ctx, job)
	if err != nil {
		return side{}, err
	}
	if hookErr != nil {
		return side{}, hookErr
	}
	// Collect after the run: the digest slices grow during simulation.
	// Run may overshoot its retirement target by up to Width-1 uops, and
	// the overshoot differs between configurations, so every segment is
	// trimmed to the amount both sides are guaranteed to have digested.
	for i := range segs {
		digs := digests[i].Digests()
		if uint64(len(digs)) > segLimit {
			digs = digs[:segLimit]
		}
		segs[i].digs = digs
	}
	return side{segs: segs, st: st}, nil
}

// compare walks every variant segment against the base stream and
// records the first divergence. exhaustive marks a full-vs-full
// comparison, where the two streams must also have equal length.
func (d Differential) compare(res *Result, base []uint64, segs []segment, il uint64, exhaustive bool) {
	for _, s := range segs {
		for j, h := range s.digs {
			abs := s.pos + uint64(j)
			if abs >= uint64(len(base)) || base[abs] != h {
				d.markDivergence(res, base, s, abs, il)
				return
			}
		}
		if exhaustive && s.pos+uint64(len(s.digs)) < uint64(len(base)) {
			// The variant stream ended early (generator exhausted under
			// one configuration only) — that is a divergence too.
			d.markDivergence(res, base, s, s.pos+uint64(len(s.digs)), il)
			return
		}
	}
}

// markDivergence fills the localization fields for a divergence at
// absolute stream index abs.
func (d Differential) markDivergence(res *Result, base []uint64, s segment, abs, il uint64) {
	res.Diverged = true
	res.UopIndex = abs
	res.Interval = int(abs / il)
	lo, hi := uint64(res.Interval)*il, uint64(res.Interval+1)*il
	res.BaseHash = foldHash(sliceWindow(base, 0, lo, hi))
	res.VariantHash = foldHash(sliceWindow(s.digs, s.pos, lo, hi))
}

// sliceWindow returns the part of a digest slice (starting at absolute
// stream position pos) that overlaps the absolute window [lo, hi).
func sliceWindow(digs []uint64, pos, lo, hi uint64) []uint64 {
	end := pos + uint64(len(digs))
	if lo < pos {
		lo = pos
	}
	if hi > end {
		hi = end
	}
	if lo >= hi {
		return nil
	}
	return digs[lo-pos : hi-pos]
}

// foldHash folds per-uop digests into one interval content hash, the
// same FNV-1a mix core.CommitDigest.IntervalHash uses.
func foldHash(digs []uint64) uint64 {
	h := uint64(14695981039346656037)
	const prime = 1099511628211
	for _, d := range digs {
		for i := 0; i < 8; i++ {
			h ^= d & 0xFF
			h *= prime
			d >>= 8
		}
	}
	return h
}
