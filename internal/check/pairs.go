package check

import (
	"fmt"
	"strings"

	"rfpsim/internal/config"
)

// Modes are the named -diff pairings: each derives the BASE
// configuration from the configuration under test (the variant).
//
//	norfp       — variant with RFP disabled (RFP-invariance)
//	novp        — variant with value prediction disabled
//	nolatealloc — variant with late register allocation disabled
//	nopf        — variant with the L1 hardware prefetcher disabled
//	              (prefetcher-invariance: timing-only, architecturally
//	              invisible)
//	noclp       — variant with the cache-level-predicted RFP arming
//	              schedule disabled (CLP-invariance: skipping, early
//	              arming and criticality gating are timing-only)
//	baseline    — the plain Baseline/Baseline2x core (every mechanism off)
//	full        — the same configuration run full-window; the variant
//	              side runs sampled (requires a sampling spec)
func Modes() []string {
	return []string{"norfp", "novp", "nolatealloc", "nopf", "noclp", "baseline", "full"}
}

// BaseFor derives the base configuration for a named diff mode.
// sampledVsFull reports that the caller must run the variant sampled
// (mode "full").
func BaseFor(mode string, variant config.Core) (base config.Core, sampledVsFull bool, err error) {
	switch mode {
	case "norfp":
		base = variant
		base.RFP.Enabled = false
		base.RFP.UseCLP = false
		base.Name = strings.ReplaceAll(base.Name, "+rfp", "")
		if base.Name == variant.Name {
			base.Name += "-norfp"
		}
		return base, false, nil
	case "noclp":
		base = variant
		base.RFP.UseCLP = false
		base.Name = strings.ReplaceAll(base.Name, "+clp", "")
		if base.Name == variant.Name {
			base.Name += "-noclp"
		}
		return base, false, nil
	case "novp":
		base = variant
		base.VP.Mode = config.VPNone
		base.Name += "-novp"
		return base, false, nil
	case "nolatealloc":
		base = variant
		base.LateRegAlloc = false
		base.Name += "-nolatealloc"
		return base, false, nil
	case "nopf":
		base = variant
		base.Mem.Prefetcher = ""
		base.Mem.HWPrefetch = false
		base.Name += "-nopf"
		return base, false, nil
	case "baseline":
		base = variant
		base.RFP.Enabled = false
		base.RFP.UseCLP = false
		base.VP.Mode = config.VPNone
		base.Oracle = config.OracleNone
		base.LateRegAlloc = false
		base.Name = variant.Name + "-stripped"
		return base, false, nil
	case "full":
		base = variant
		base.Name += "-full"
		return base, true, nil
	}
	return config.Core{}, false, fmt.Errorf("check: unknown diff mode %q (supported: %s)",
		mode, strings.Join(Modes(), ", "))
}
