package check

import (
	"context"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/core"
	"rfpsim/internal/isa"
	"rfpsim/internal/trace"
)

// rfpBaitGen is a deterministic kernel engineered to make a prefetch
// with broken memory disambiguation deliver stale data. Every iteration:
//
//	div   r1 <- r1          ; 18-cycle chain delays the store's data
//	store [W_i] <- r1       ; W_i strides by 64 — a fresh word each time
//	alu   r3 <- r3
//	load  r2 <- [W_i]       ; fixed PC, perfectly strided
//	load  r4 <- [R_i]       ; second strided PC, never stored — its
//	                        ; prefetches are consumed cleanly, proving
//	                        ; the control run exercises consumption
//
// The load's Prefetch Table entry saturates quickly (stride 64, one
// instance in flight), so RFP fires at rename — while the older store
// to the SAME word is still waiting on the divide. Correct §3.2.1
// machinery keeps this safe three ways: the older-store scan, the
// issueStore stale-marking pass, and the ordering-violation flush.
// FaultRFPNoDisambiguation disables all three, so the load retires with
// pre-store memory — which the harness must catch.
type rfpBaitGen struct {
	i   uint64
	sub int
}

const (
	baitBase   = uint64(0x10000)
	baitBase2  = uint64(0x80000)
	baitStride = 64
	baitIters  = 1024
)

func (g *rfpBaitGen) Name() string { return "rfp-bait" }

func (g *rfpBaitGen) FootprintRegions() [][2]uint64 {
	return [][2]uint64{
		{baitBase, baitIters * baitStride},
		{baitBase2, baitIters * baitStride},
	}
}

func (g *rfpBaitGen) Next(op *isa.MicroOp) bool {
	w := baitBase + (g.i%baitIters)*baitStride
	val := g.i + 1
	*op = isa.MicroOp{PC: 0x400000 + uint64(g.sub)*4}
	switch g.sub {
	case 0:
		op.Class, op.Dst, op.Src1 = isa.OpDiv, 1, 1
	case 1:
		op.Class, op.Src1, op.Addr, op.Size, op.Value = isa.OpStore, 1, w, 8, val
	case 2:
		op.Class, op.Dst, op.Src1 = isa.OpALU, 3, 3
	case 3:
		op.Class, op.Dst, op.Addr, op.Size, op.Value = isa.OpLoad, 2, w, 8, val
	case 4:
		r := baitBase2 + (g.i%baitIters)*baitStride
		op.Class, op.Dst, op.Addr, op.Size, op.Value = isa.OpLoad, 4, r, 8, g.i*3
	}
	g.sub++
	if g.sub == 5 {
		g.sub = 0
		g.i++
	}
	return true
}

// baitDiff pairs a clean RFP run against the same configuration with
// the named faults injected on the variant side.
func baitDiff(faults []string) Differential {
	cfg := config.Baseline().WithRFP()
	variant := cfg
	if len(faults) > 0 {
		variant.Name += "+fault"
	}
	return Differential{
		Base: cfg, Variant: variant,
		Spec:          trace.Spec{Name: "rfp-bait", Category: "synthetic"},
		NewGen:        func() isa.Generator { return &rfpBaitGen{} },
		Uops:          8000,
		VariantFaults: faults,
	}
}

// TestFaultFreeBaitIsClean establishes the control: without the
// injected fault the bait kernel commits identically with the full
// disambiguation machinery engaged, no invariant fires, and prefetches
// are actually consumed (the test exercises what it claims to).
func TestFaultFreeBaitIsClean(t *testing.T) {
	t.Parallel()
	res := requireClean(t, baitDiff(nil))
	if res.VariantStats.RFP.Executed == 0 {
		t.Fatal("bait kernel executed no prefetches — the fault test would be vacuous")
	}
	if res.VariantStats.RFP.Useful == 0 {
		t.Fatal("bait kernel consumed no prefetched data — the fault test would be vacuous")
	}
}

// TestInjectedFaultCaughtByBothOracles is the acceptance check of
// docs/checking.md: skipping the RFP store-queue disambiguation must be
// caught BOTH by the differential digest oracle (the committed trace
// diverges from the clean run) AND by a runtime invariant
// (StaleDataDelivered counts loads that retired with pre-store data).
func TestInjectedFaultCaughtByBothOracles(t *testing.T) {
	t.Parallel()
	res, err := baitDiff([]string{core.FaultRFPNoDisambiguation}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diverged {
		t.Fatalf("differential oracle missed the injected fault: %s", res)
	}
	if res.VariantStats.Checks.StaleDataDelivered == 0 {
		t.Fatalf("StaleDataDelivered invariant missed the injected fault: %s", res)
	}
	if res.BaseViolations != 0 {
		t.Fatalf("clean base side reported violations: %s", res)
	}
}

// TestInjectFaultUnknownName keeps the fault registry honest.
func TestInjectFaultUnknownName(t *testing.T) {
	t.Parallel()
	d := baitDiff([]string{"no-such-fault"})
	if _, err := d.Run(context.Background()); err == nil {
		t.Fatal("expected an error for an unknown fault name")
	}
}
