package check

import (
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/trace"
)

// TestCLPInvarianceAcrossCatalog holds the cache-level-predicted RFP
// arming schedule to the same invisibility contract as every other
// mechanism: for EVERY catalog workload, CLP-scheduled RFP (DRAM
// skipping, near-hit early arming, criticality gating under queue
// pressure) must commit a byte-identical architectural trace to the same
// core with the schedule disabled. CLP only decides WHEN and WHETHER a
// register-file prefetch is sent — never what value a load commits.
func TestCLPInvarianceAcrossCatalog(t *testing.T) {
	t.Parallel()
	variant := config.Baseline().WithCLP()
	base, _, err := BaseFor("noclp", variant)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range trace.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := requireClean(t, Differential{
				Base: base, Variant: variant,
				Spec: mustSpec(t, name), Uops: 3000,
			})
			if res.VariantStats.Loads == 0 {
				t.Fatal("variant retired no loads — the comparison is vacuous")
			}
		})
	}
}
