package check

import (
	"bytes"
	"context"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/isa"
	"rfpsim/internal/runner"
	"rfpsim/internal/trace"
	"rfpsim/internal/tracefile"
)

// mustSpec fetches a catalog workload or fails the test.
func mustSpec(t *testing.T, name string) trace.Spec {
	t.Helper()
	spec, ok := trace.ByName(name)
	if !ok {
		t.Fatalf("workload %q not in catalog", name)
	}
	return spec
}

// requireClean runs the differential and fails on divergence or
// invariant violations.
func requireClean(t *testing.T, d Differential) *Result {
	t.Helper()
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatalf("unexpected divergence: %s", res)
	}
	if res.BaseViolations != 0 || res.VariantViolations != 0 {
		t.Fatalf("unexpected invariant violations: %s", res)
	}
	return res
}

func TestDifferentialVPOnOff(t *testing.T) {
	t.Parallel()
	for _, wk := range []string{"spec06_mcf", "spec17_xalancbmk", "hadoop"} {
		wk := wk
		t.Run(wk, func(t *testing.T) {
			t.Parallel()
			variant := config.Baseline().WithVP(config.VPEVES)
			base, _, err := BaseFor("novp", variant)
			if err != nil {
				t.Fatal(err)
			}
			requireClean(t, Differential{
				Base: base, Variant: variant,
				Spec: mustSpec(t, wk), Uops: 5000,
			})
		})
	}
}

func TestDifferentialLateAllocOnOff(t *testing.T) {
	t.Parallel()
	variant := config.Baseline().WithRFP()
	variant.LateRegAlloc = true
	variant.Name += "+latealloc"
	base, _, err := BaseFor("nolatealloc", variant)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, Differential{
		Base: base, Variant: variant,
		Spec: mustSpec(t, "spec17_mcf"), Uops: 5000,
	})
}

func TestDifferentialSampledVsFull(t *testing.T) {
	t.Parallel()
	variant := config.Baseline().WithRFP()
	base, sampled, err := BaseFor("full", variant)
	if err != nil {
		t.Fatal(err)
	}
	if !sampled {
		t.Fatal("mode full should request a sampled variant")
	}
	requireClean(t, Differential{
		Base: base, Variant: variant,
		Spec: mustSpec(t, "spec06_libquantum"),
		Uops: 10000,
		VariantSampling: &runner.Sampling{
			IntervalUops: 1000, MaxK: 3,
		},
	})
}

// TestDifferentialSampledTraceFactory pins that a sampled variant works
// on a NewGen factory — the rfpsim -diff full -trace path. The factory
// round-trips a catalog stream through the tracefile container, the
// same shape the service builds for uploaded traces.
func TestDifferentialSampledTraceFactory(t *testing.T) {
	t.Parallel()
	spec := mustSpec(t, "spec06_mcf")
	var buf bytes.Buffer
	w := tracefile.NewWriter(&buf)
	gen := spec.New()
	var op isa.MicroOp
	for i := 0; i < 12000; i++ {
		if !gen.Next(&op) {
			t.Fatalf("catalog generator ended at uop %d", i)
		}
		if err := w.Write(&op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	variant := config.Baseline().WithRFP()
	base, sampled, err := BaseFor("full", variant)
	if err != nil {
		t.Fatal(err)
	}
	if !sampled {
		t.Fatal("mode full should request a sampled variant")
	}
	requireClean(t, Differential{
		Base: base, Variant: variant,
		Spec: trace.Spec{Name: "trace-factory", Category: "trace-file"},
		NewGen: func() isa.Generator {
			r, err := tracefile.NewReader(bytes.NewReader(raw), "trace-factory")
			if err != nil {
				panic(err)
			}
			return r
		},
		Uops: 6000,
		VariantSampling: &runner.Sampling{
			IntervalUops: 1000, MaxK: 3,
		},
	})
}

func TestDifferentialOracle(t *testing.T) {
	t.Parallel()
	variant := config.Baseline().WithOracle(config.OracleL1ToRF)
	base, _, err := BaseFor("baseline", variant)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, Differential{
		Base: base, Variant: variant,
		Spec: mustSpec(t, "spec17_lbm"), Uops: 5000,
	})
}

func TestBaseForUnknownMode(t *testing.T) {
	t.Parallel()
	if _, _, err := BaseFor("bogus", config.Baseline()); err == nil {
		t.Fatal("expected an error for an unknown mode")
	}
}

// TestDivergenceLocalization plants a divergence by comparing two
// different workloads and checks the localization fields are coherent.
func TestDivergenceLocalization(t *testing.T) {
	t.Parallel()
	d := Differential{
		Base:    config.Baseline(),
		Variant: config.Baseline(),
		Spec:    mustSpec(t, "spec06_mcf"),
		Uops:    3000, IntervalUops: 500,
	}
	// Different generator streams under identical configs: the harness
	// must report divergence, almost surely in the first interval.
	other := mustSpec(t, "spec17_gcc")
	d.Variant.Name = "other-workload"
	base, err := d.runSide(context.Background(), d.Base, nil, nil, 3000, 500)
	if err != nil {
		t.Fatal(err)
	}
	d.Spec = other
	variant, err := d.runSide(context.Background(), d.Variant, nil, nil, 3000, 500)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{IntervalUops: 500}
	d.compare(res, base.segs[0].digs, variant.segs, 500, true)
	if !res.Diverged {
		t.Fatal("different workloads must diverge")
	}
	if res.Interval != int(res.UopIndex/500) {
		t.Fatalf("interval %d inconsistent with uop index %d", res.Interval, res.UopIndex)
	}
	if res.BaseHash == res.VariantHash {
		t.Fatalf("divergent interval hashes are equal: %#x", res.BaseHash)
	}
}
