package stats

// Accumulate folds src's counters into dst. It is the seed-replica merge
// used by -seeds averaging and by the rfpsimd service: every replica's
// counters are summed, so ratios computed from the sums are
// replica-weighted averages. Every numeric field of Sim (recursively
// through the nested counter blocks) must be propagated here; the
// reflection test in accumulate_test.go walks the struct and fails if a
// newly added counter is missing.
func Accumulate(dst, src *Sim) {
	dst.Cycles += src.Cycles
	dst.Instructions += src.Instructions
	dst.Loads += src.Loads
	dst.Stores += src.Stores
	dst.Branches += src.Branches
	dst.BranchMispredicts += src.BranchMispredicts
	for l := range dst.LoadHitLevel {
		dst.LoadHitLevel[l] += src.LoadHitLevel[l]
	}
	dst.StoreForwarded += src.StoreForwarded
	dst.MemOrderViolations += src.MemOrderViolations
	dst.HitMissMispredicts += src.HitMissMispredicts
	dst.Replays += src.Replays
	dst.RFP.Injected += src.RFP.Injected
	dst.RFP.Dropped += src.RFP.Dropped
	dst.RFP.DroppedTLBMiss += src.RFP.DroppedTLBMiss
	dst.RFP.Executed += src.RFP.Executed
	dst.RFP.Useful += src.RFP.Useful
	dst.RFP.FullyHidden += src.RFP.FullyHidden
	dst.RFP.Wrong += src.RFP.Wrong
	dst.RFP.L1Misses += src.RFP.L1Misses
	dst.RFP.PortConflicts += src.RFP.PortConflicts
	dst.VP.Predicted += src.VP.Predicted
	dst.VP.Correct += src.VP.Correct
	dst.VP.Mispredicted += src.VP.Mispredicted
	dst.AP.AddressPredictable += src.AP.AddressPredictable
	dst.AP.HighConfidence += src.AP.HighConfidence
	dst.AP.NoFwdPass += src.AP.NoFwdPass
	dst.AP.ProbeLaunched += src.AP.ProbeLaunched
	dst.AP.ProbeInTime += src.AP.ProbeInTime
	dst.DTLBMisses += src.DTLBMisses
	dst.L1Accesses += src.L1Accesses
	dst.LoadsAddrReadyAtAlloc += src.LoadsAddrReadyAtAlloc
	dst.Slots.Retired += src.Slots.Retired
	dst.Slots.StallLoad += src.Slots.StallLoad
	dst.Slots.StallExec += src.Slots.StallExec
	dst.Slots.StallEmpty += src.Slots.StallEmpty
	dst.VPFlushes += src.VPFlushes
	dst.EPPReexecutions += src.EPPReexecutions
}
