package stats

import "reflect"

// Accumulate folds src's counters into dst. It is the seed-replica merge
// used by -seeds averaging and by the rfpsimd service: every replica's
// counters are summed, so ratios computed from the sums are
// replica-weighted averages. Every numeric field of Sim (recursively
// through the nested counter blocks) must be propagated here; the
// reflection test in accumulate_test.go walks the struct and fails if a
// newly added counter is missing.
func Accumulate(dst, src *Sim) {
	dst.Cycles += src.Cycles
	dst.Instructions += src.Instructions
	dst.Loads += src.Loads
	dst.Stores += src.Stores
	dst.Branches += src.Branches
	dst.BranchMispredicts += src.BranchMispredicts
	for l := range dst.LoadHitLevel {
		dst.LoadHitLevel[l] += src.LoadHitLevel[l]
	}
	dst.StoreForwarded += src.StoreForwarded
	dst.MemOrderViolations += src.MemOrderViolations
	dst.HitMissMispredicts += src.HitMissMispredicts
	dst.Replays += src.Replays
	dst.RFP.Injected += src.RFP.Injected
	dst.RFP.Dropped += src.RFP.Dropped
	dst.RFP.DroppedTLBMiss += src.RFP.DroppedTLBMiss
	dst.RFP.Executed += src.RFP.Executed
	dst.RFP.Useful += src.RFP.Useful
	dst.RFP.FullyHidden += src.RFP.FullyHidden
	dst.RFP.Wrong += src.RFP.Wrong
	dst.RFP.L1Misses += src.RFP.L1Misses
	dst.RFP.PortConflicts += src.RFP.PortConflicts
	dst.L1PF.Issued += src.L1PF.Issued
	dst.L1PF.Useful += src.L1PF.Useful
	dst.L1PF.Late += src.L1PF.Late
	dst.L1PF.Unused += src.L1PF.Unused
	dst.L1PF.Dropped += src.L1PF.Dropped
	dst.L1PF.ManagerEpochs += src.L1PF.ManagerEpochs
	dst.L1PF.ManagerSwitches += src.L1PF.ManagerSwitches
	dst.L1PF.ManagerThrottledEpochs += src.L1PF.ManagerThrottledEpochs
	for l := range dst.CLP.Predicted {
		dst.CLP.Predicted[l] += src.CLP.Predicted[l]
		dst.CLP.Correct[l] += src.CLP.Correct[l]
	}
	dst.CLP.SkippedDRAM += src.CLP.SkippedDRAM
	dst.CLP.EarlyArmed += src.CLP.EarlyArmed
	dst.CLP.CritGated += src.CLP.CritGated
	dst.VP.Predicted += src.VP.Predicted
	dst.VP.Correct += src.VP.Correct
	dst.VP.Mispredicted += src.VP.Mispredicted
	dst.AP.AddressPredictable += src.AP.AddressPredictable
	dst.AP.HighConfidence += src.AP.HighConfidence
	dst.AP.NoFwdPass += src.AP.NoFwdPass
	dst.AP.ProbeLaunched += src.AP.ProbeLaunched
	dst.AP.ProbeInTime += src.AP.ProbeInTime
	dst.DTLBMisses += src.DTLBMisses
	dst.L1Accesses += src.L1Accesses
	dst.LoadsAddrReadyAtAlloc += src.LoadsAddrReadyAtAlloc
	dst.Slots.Retired += src.Slots.Retired
	dst.Slots.StallLoad += src.Slots.StallLoad
	dst.Slots.StallExec += src.Slots.StallExec
	dst.Slots.StallEmpty += src.Slots.StallEmpty
	dst.VPFlushes += src.VPFlushes
	dst.EPPReexecutions += src.EPPReexecutions
	dst.Checks.RFPQueueOverflow += src.Checks.RFPQueueOverflow
	dst.Checks.PTInflightUnderflow += src.Checks.PTInflightUnderflow
	dst.Checks.RFPPortOvercommit += src.Checks.RFPPortOvercommit
	dst.Checks.RFPArmLeadSkew += src.Checks.RFPArmLeadSkew
	dst.Checks.PRFMultiWriter += src.Checks.PRFMultiWriter
	dst.Checks.StaleDataDelivered += src.Checks.StaleDataDelivered
}

// Scale multiplies every counter of s by w. It is the weighted-replay
// aggregation of sampled simulation (internal/sample): a representative
// interval standing for w intervals contributes its counters w times, so
// ratios over the scaled sums are cluster-weighted averages — the SimPoint
// weighted-CPI construction. Unlike Accumulate it walks the struct by
// reflection, so a newly added counter is scaled automatically; the test
// in accumulate_test.go pins Scale(k) == k-fold Accumulate over every
// field.
func Scale(s *Sim, w uint64) {
	scaleValue(reflect.ValueOf(s).Elem(), w)
}

func scaleValue(v reflect.Value, w uint64) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			scaleValue(v.Field(i), w)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			scaleValue(v.Index(i), w)
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() * w)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() * int64(w))
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() * float64(w))
	}
}
