// Package stats collects simulation statistics and provides the aggregate
// math (geometric-mean speedups, coverage fractions, distributions) used by
// the paper's evaluation section.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sim aggregates every counter one core run produces. All fields are plain
// counters so the zero value is ready to use.
type Sim struct {
	// Cycles is the number of simulated core cycles.
	Cycles uint64
	// Instructions is the number of committed micro-ops.
	Instructions uint64

	// Loads is the number of committed load uops.
	Loads uint64
	// Stores is the number of committed store uops.
	Stores uint64
	// Branches is the number of committed branch uops.
	Branches uint64
	// BranchMispredicts counts committed mispredicted branches.
	BranchMispredicts uint64

	// LoadHitLevel[l] counts committed loads whose data came from level l
	// (see the Level* constants). This regenerates Figure 2.
	LoadHitLevel [NumLevels]uint64

	// StoreForwarded counts loads whose data was forwarded from an older
	// in-flight store.
	StoreForwarded uint64
	// MemOrderViolations counts pipeline flushes due to memory-ordering
	// violations (a load executed before a conflicting older store).
	MemOrderViolations uint64
	// HitMissMispredicts counts loads whose L1 hit/miss speculation was
	// wrong, forcing dependent replay.
	HitMissMispredicts uint64
	// Replays counts scheduler re-issues caused by wrong speculative
	// wakeups.
	Replays uint64

	// RFP is the register-file-prefetch counter block (Figure 13).
	RFP RFPStats
	// L1PF is the L1 hardware-prefetcher counter block (the prefetcher
	// zoo: stream/spp/sisb/managed).
	L1PF L1PFStats
	// CLP is the cache-level-predictor counter block (the RFP arming
	// extension; see docs/predictors.md).
	CLP CLPStats
	// VP is the value-prediction counter block (Figure 15).
	VP VPStats
	// AP is the address-prediction (DLVP) counter block (Figure 16).
	AP APStats

	// DTLBMisses counts first-level DTLB misses on demand accesses.
	DTLBMisses uint64

	// L1Accesses counts every L1 data cache access from any source:
	// demand loads and stores, RFP prefetches, wrong-prefetch re-reads
	// and DLVP probes. The paper's §5.6 bandwidth argument is about this
	// number: correct RFP keeps it flat while address predictors inflate
	// it with probe and validation traffic.
	L1Accesses uint64

	// LoadsAddrReadyAtAlloc counts loads whose address operands were
	// already available when the load allocated into the OOO window (the
	// paper reports 63% of loads are NOT ready at allocation, which is
	// what gives RFP its run-ahead).
	LoadsAddrReadyAtAlloc uint64

	// Slots is the top-down commit-slot accounting (see SlotStats).
	Slots SlotStats

	// VPFlushes counts pipeline flushes caused by value mispredictions.
	VPFlushes uint64
	// EPPReexecutions counts loads re-executed at retirement due to SSBF
	// (false) positives in the EPP scheme.
	EPPReexecutions uint64

	// Checks is the runtime invariant-violation block, populated only when
	// config.Checks is enabled (see docs/checking.md). Every field should
	// be zero on a healthy simulator; sweeps surface the total as
	// rfpsim_check_violations_total instead of crashing mid-grid.
	Checks CheckStats
}

// CheckStats counts runtime invariant violations, one counter per
// invariant so a nonzero total immediately names the broken contract.
// The invariants come straight from the paper's microarchitecture
// description: RFP is architecturally invisible, steals only free L1
// ports (§4.3), arms its in-flight bit exactly the scheduler depth ahead
// of the fill (§4.2), and the Prefetch Table's in-flight counters are
// balanced by commits and squashes (§4.1).
type CheckStats struct {
	// RFPQueueOverflow counts cycles the prefetch-queue occupancy exceeded
	// its configured capacity.
	RFPQueueOverflow uint64
	// PTInflightUnderflow counts Prefetch Table in-flight decrements that
	// would have driven a counter below zero (net of entries whose counts
	// were legitimately stranded by eviction).
	PTInflightUnderflow uint64
	// RFPPortOvercommit counts cycles where prefetches won more L1 load
	// ports than were actually free, or demand issue overcommitted the
	// load ports outright.
	RFPPortOvercommit uint64
	// RFPArmLeadSkew counts L1-hit prefetches whose RFP-inflight bit did
	// not lead the register-file fill by exactly the wakeup/select/read
	// depth (checked only when L1Latency == SchedDepth+2, the paper's
	// alignment).
	RFPArmLeadSkew uint64
	// PRFMultiWriter counts physical-register allocations that handed a
	// register already owned by another in-flight producer.
	PRFMultiWriter uint64
	// StaleDataDelivered counts retired loads whose modelled datapath
	// delivered a value different from what program-order memory holds —
	// the exact corruption RFP's store-queue disambiguation exists to
	// prevent.
	StaleDataDelivered uint64
}

// Total returns the violation count across all invariants.
func (c CheckStats) Total() uint64 {
	return c.RFPQueueOverflow + c.PTInflightUnderflow + c.RFPPortOvercommit +
		c.RFPArmLeadSkew + c.PRFMultiWriter + c.StaleDataDelivered
}

// Each calls fn for every invariant counter in a fixed order, using the
// snake_case names that appear in reports and metric labels.
func (c CheckStats) Each(fn func(name string, count uint64)) {
	fn("rfp_queue_overflow", c.RFPQueueOverflow)
	fn("pt_inflight_underflow", c.PTInflightUnderflow)
	fn("rfp_port_overcommit", c.RFPPortOvercommit)
	fn("rfp_arm_lead_skew", c.RFPArmLeadSkew)
	fn("prf_multi_writer", c.PRFMultiWriter)
	fn("stale_data_delivered", c.StaleDataDelivered)
}

// SlotStats classifies every commit slot of every cycle, top-down style:
// a slot either retired a uop or was blocked — by a load still fetching
// data (the population RFP attacks), by a non-load execution, or by an
// empty window (frontend stall after mispredicts/flushes).
type SlotStats struct {
	// Retired slots committed a uop.
	Retired uint64
	// StallLoad slots were blocked behind an unfinished load at the head.
	StallLoad uint64
	// StallExec slots were blocked behind a non-load head still executing.
	StallExec uint64
	// StallEmpty slots had no uop to retire (frontend-bound).
	StallEmpty uint64
}

// Total returns the slot count across categories.
func (s SlotStats) Total() uint64 {
	return s.Retired + s.StallLoad + s.StallExec + s.StallEmpty
}

// Frac returns category counts normalized by the total.
func (s SlotStats) Frac() (retired, load, exec, empty float64) {
	t := float64(s.Total())
	if t == 0 {
		return 0, 0, 0, 0
	}
	return float64(s.Retired) / t, float64(s.StallLoad) / t,
		float64(s.StallExec) / t, float64(s.StallEmpty) / t
}

// RFPStats counts the life cycle of register file prefetches, matching the
// "Prefetches Injected / Executed / Useful" bars of Figure 13.
type RFPStats struct {
	// Injected counts prefetch packets created at rename.
	Injected uint64
	// Dropped counts packets cancelled before execution (load beat the
	// prefetch to the L1 port, queue overflow, DTLB miss drop).
	Dropped uint64
	// DroppedTLBMiss counts the subset of Dropped caused by a DTLB miss.
	DroppedTLBMiss uint64
	// Executed counts prefetches that won L1 arbitration and brought data
	// into the register file.
	Executed uint64
	// Useful counts loads that consumed correctly prefetched data
	// ("coverage" in the paper).
	Useful uint64
	// FullyHidden counts useful prefetches that completed before the load
	// dispatched (the load behaved as a 1-cycle op, §5.2.2).
	FullyHidden uint64
	// Wrong counts executed prefetches whose predicted address mismatched
	// the load's address (the load re-accessed the cache).
	Wrong uint64
	// L1Misses counts executed prefetches that missed the L1 and were
	// allowed to fetch from the lower levels.
	L1Misses uint64
	// PortConflicts counts cycles an RFP request lost L1 arbitration to a
	// demand load.
	PortConflicts uint64
}

// L1PFStats counts the life cycle of L1 hardware prefetches (the cache
// prefetcher zoo), mirroring RFPStats for the scheme that fills caches
// instead of the register file. Coverage is Useful/Loads, accuracy is
// Useful/Issued, pollution shows up as Unused.
type L1PFStats struct {
	// Issued counts prefetch candidates that won an MSHR and filled the L1.
	Issued uint64
	// Useful counts demand accesses that consumed a prefetched line.
	Useful uint64
	// Late counts the subset of Useful where demand merged with the
	// prefetch still in flight (covered, but latency only partly hidden).
	Late uint64
	// Unused counts prefetched lines evicted without ever being consumed
	// (cache pollution).
	Unused uint64
	// Dropped counts candidates discarded for want of a free MSHR.
	Dropped uint64

	// ManagerEpochs/ManagerSwitches/ManagerThrottledEpochs instrument the
	// adaptive "managed" policy: decision epochs elapsed, active-prefetcher
	// switches taken, and epochs spent throttled to degree 1.
	ManagerEpochs          uint64
	ManagerSwitches        uint64
	ManagerThrottledEpochs uint64
}

// CLPStats counts cache-level-prediction outcomes and the RFP schedule
// decisions taken on them. Coverage is sum(Predicted)/Loads, accuracy is
// sum(Correct)/sum(Predicted); the per-level split shows where the
// predictor earns its keep (L1 predictions dominate and are the easiest).
type CLPStats struct {
	// Predicted[l] counts committed loads confidently predicted to be
	// served by hierarchy level l at dispatch.
	Predicted [NumLevels]uint64
	// Correct[l] counts the subset of Predicted[l] actually served by l.
	Correct [NumLevels]uint64
	// SkippedDRAM counts otherwise-eligible prefetches suppressed because
	// the load was predicted to go to DRAM (the prefetch cannot arrive in
	// time, so the queue slot and L1 port are saved).
	SkippedDRAM uint64
	// EarlyArmed counts executed prefetches whose RFP-inflight bit was
	// armed one cycle early on a predicted-L1/L2 hit.
	EarlyArmed uint64
	// CritGated counts otherwise-eligible prefetches suppressed by the
	// criticality gate while the prefetch queue was contested (half full
	// or more): only commit-stalling loads may claim the remaining slots.
	CritGated uint64
}

// PredictedTotal returns predictions summed across hierarchy levels.
func (c *CLPStats) PredictedTotal() uint64 {
	var t uint64
	for _, v := range c.Predicted {
		t += v
	}
	return t
}

// CorrectTotal returns correct predictions summed across hierarchy levels.
func (c *CLPStats) CorrectTotal() uint64 {
	var t uint64
	for _, v := range c.Correct {
		t += v
	}
	return t
}

// VPStats counts value-prediction outcomes.
type VPStats struct {
	// Predicted counts loads whose value was predicted and consumed.
	Predicted uint64
	// Correct counts predictions validated correct at execution.
	Correct uint64
	// Mispredicted counts predictions that were wrong and caused a
	// pipeline flush.
	Mispredicted uint64
}

// APStats instruments the DLVP constraint waterfall of Figure 16. Each
// counter is a number of loads.
type APStats struct {
	// AddressPredictable counts loads whose address the predictor matched
	// (any confidence).
	AddressPredictable uint64
	// HighConfidence counts loads passing the high-confidence filter.
	HighConfidence uint64
	// NoFwdPass counts loads additionally passing the no-store-forward
	// predictor.
	NoFwdPass uint64
	// ProbeLaunched counts loads whose early L1 probe found a free port.
	ProbeLaunched uint64
	// ProbeInTime counts loads whose probe data returned before rename
	// (only these become value predictions).
	ProbeInTime uint64
}

// Memory hierarchy levels, from the register file outwards.
const (
	// LevelL1 is a level-1 data cache hit.
	LevelL1 = iota
	// LevelMSHR is a hit on an in-flight miss (an MSHR merge).
	LevelMSHR
	// LevelL2 is a level-2 cache hit.
	LevelL2
	// LevelLLC is a last-level-cache hit.
	LevelLLC
	// LevelMem is a DRAM access.
	LevelMem
	// NumLevels is the number of distinct hit levels.
	NumLevels
)

// LevelName returns the printable name of a hit level.
func LevelName(l int) string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelMSHR:
		return "MSHR"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelMem:
		return "Mem"
	default:
		return fmt.Sprintf("level(%d)", l)
	}
}

// IPC returns committed instructions per cycle.
func (s *Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// RFPCoverage returns the fraction of all loads usefully prefetched (the
// paper's coverage definition).
func (s *Sim) RFPCoverage() float64 { return frac(s.RFP.Useful, s.Loads) }

// RFPInjectedFrac returns the fraction of loads with an injected prefetch.
func (s *Sim) RFPInjectedFrac() float64 { return frac(s.RFP.Injected, s.Loads) }

// RFPExecutedFrac returns the fraction of loads whose prefetch executed.
func (s *Sim) RFPExecutedFrac() float64 { return frac(s.RFP.Executed, s.Loads) }

// RFPWrongFrac returns the fraction of loads with a wrong-address prefetch.
func (s *Sim) RFPWrongFrac() float64 { return frac(s.RFP.Wrong, s.Loads) }

// L1PFCoverage returns the fraction of loads covered by an L1 hardware
// prefetch.
func (s *Sim) L1PFCoverage() float64 { return frac(s.L1PF.Useful, s.Loads) }

// L1PFAccuracy returns the fraction of issued L1 prefetches that were
// consumed.
func (s *Sim) L1PFAccuracy() float64 { return frac(s.L1PF.Useful, s.L1PF.Issued) }

// CLPCoverage returns the fraction of loads with a confident cache-level
// prediction.
func (s *Sim) CLPCoverage() float64 { return frac(s.CLP.PredictedTotal(), s.Loads) }

// CLPAccuracy returns the fraction of confident cache-level predictions
// that named the actual serving level.
func (s *Sim) CLPAccuracy() float64 { return frac(s.CLP.CorrectTotal(), s.CLP.PredictedTotal()) }

// CLPLevelAccuracy returns the prediction accuracy for hierarchy level l.
func (s *Sim) CLPLevelAccuracy(l int) float64 { return frac(s.CLP.Correct[l], s.CLP.Predicted[l]) }

// VPCoverage returns the fraction of loads that were value predicted.
func (s *Sim) VPCoverage() float64 { return frac(s.VP.Predicted, s.Loads) }

// LoadLevelFrac returns the fraction of loads served at hierarchy level l.
func (s *Sim) LoadLevelFrac(l int) float64 {
	var total uint64
	for _, c := range s.LoadHitLevel {
		total += c
	}
	return frac(s.LoadHitLevel[l], total)
}

func frac(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Speedup returns the relative IPC gain of s over base, e.g. 0.031 for a
// 3.1% speedup.
func Speedup(base, s *Sim) float64 {
	b := base.IPC()
	if b == 0 {
		return 0
	}
	return s.IPC()/b - 1
}

// GeoMeanSpeedup combines per-workload relative speedups (each expressed as
// a fraction, e.g. 0.031) by geometric mean of the IPC ratios, which is how
// the paper reports mean speedup.
func GeoMeanSpeedup(speedups []float64) float64 {
	if len(speedups) == 0 {
		return 0
	}
	sum := 0.0
	for _, sp := range speedups {
		sum += math.Log(1 + sp)
	}
	return math.Exp(sum/float64(len(speedups))) - 1
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Pct formats a fraction as a percentage with one decimal, e.g. "3.1%".
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// Pct2 formats a fraction as a percentage with two decimals.
func Pct2(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

// Table is a minimal fixed-width text table writer used by the experiment
// harness to print paper-style rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Distribution is a simple histogram over small non-negative integer keys,
// used e.g. for prefetch run-ahead distance distributions.
type Distribution struct {
	counts map[int]uint64
	total  uint64
}

// NewDistribution returns an empty distribution.
func NewDistribution() *Distribution {
	return &Distribution{counts: make(map[int]uint64)}
}

// Add records one observation of value v.
func (d *Distribution) Add(v int) {
	d.counts[v]++
	d.total++
}

// Total returns the number of observations.
func (d *Distribution) Total() uint64 { return d.total }

// Frac returns the fraction of observations equal to v.
func (d *Distribution) Frac(v int) float64 { return frac(d.counts[v], d.total) }

// Keys returns the observed values in ascending order.
func (d *Distribution) Keys() []int {
	keys := make([]int, 0, len(d.counts))
	for k := range d.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Quantile returns the smallest observed value v such that at least q of
// the mass is ≤ v. q must be in [0,1].
func (d *Distribution) Quantile(q float64) int {
	if d.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(d.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for _, k := range d.Keys() {
		cum += d.counts[k]
		if cum >= target {
			return k
		}
	}
	keys := d.Keys()
	return keys[len(keys)-1]
}
