package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestIPC(t *testing.T) {
	s := &Sim{Cycles: 200, Instructions: 500}
	if got := s.IPC(); got != 2.5 {
		t.Errorf("IPC = %v, want 2.5", got)
	}
	var zero Sim
	if zero.IPC() != 0 {
		t.Error("IPC of zero-value Sim must be 0")
	}
}

func TestCoverageFractions(t *testing.T) {
	s := &Sim{Loads: 1000}
	s.RFP.Injected = 720
	s.RFP.Executed = 480
	s.RFP.Useful = 434
	s.RFP.Wrong = 50
	if got := s.RFPCoverage(); got != 0.434 {
		t.Errorf("coverage = %v", got)
	}
	if got := s.RFPInjectedFrac(); got != 0.72 {
		t.Errorf("injected = %v", got)
	}
	if got := s.RFPExecutedFrac(); got != 0.48 {
		t.Errorf("executed = %v", got)
	}
	if got := s.RFPWrongFrac(); got != 0.05 {
		t.Errorf("wrong = %v", got)
	}
	var empty Sim
	if empty.RFPCoverage() != 0 {
		t.Error("coverage with zero loads must be 0")
	}
}

func TestLoadLevelFrac(t *testing.T) {
	s := &Sim{}
	s.LoadHitLevel[LevelL1] = 928
	s.LoadHitLevel[LevelMSHR] = 30
	s.LoadHitLevel[LevelL2] = 20
	s.LoadHitLevel[LevelLLC] = 12
	s.LoadHitLevel[LevelMem] = 10
	if got := s.LoadLevelFrac(LevelL1); got != 0.928 {
		t.Errorf("L1 frac = %v", got)
	}
	sum := 0.0
	for l := 0; l < NumLevels; l++ {
		sum += s.LoadLevelFrac(l)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("level fractions sum to %v, want 1", sum)
	}
}

func TestLevelName(t *testing.T) {
	for l := 0; l < NumLevels; l++ {
		if LevelName(l) == "" {
			t.Errorf("empty name for level %d", l)
		}
	}
	if !strings.Contains(LevelName(99), "99") {
		t.Error("unknown level name should include the number")
	}
}

func TestSpeedup(t *testing.T) {
	base := &Sim{Cycles: 1000, Instructions: 2000}
	fast := &Sim{Cycles: 1000, Instructions: 2062}
	got := Speedup(base, fast)
	if math.Abs(got-0.031) > 1e-9 {
		t.Errorf("speedup = %v, want 0.031", got)
	}
	var zero Sim
	if Speedup(&zero, fast) != 0 {
		t.Error("speedup vs zero base must be 0")
	}
}

func TestGeoMeanSpeedup(t *testing.T) {
	if GeoMeanSpeedup(nil) != 0 {
		t.Error("empty geomean must be 0")
	}
	// Uniform speedups: geomean equals the value.
	got := GeoMeanSpeedup([]float64{0.05, 0.05, 0.05})
	if math.Abs(got-0.05) > 1e-12 {
		t.Errorf("uniform geomean = %v", got)
	}
	// +100% and -50% cancel exactly under geometric mean.
	got = GeoMeanSpeedup([]float64{1.0, -0.5})
	if math.Abs(got) > 1e-12 {
		t.Errorf("cancelled geomean = %v, want 0", got)
	}
}

// Property: geomean of per-workload speedups is bounded by min and max.
func TestGeoMeanBoundedProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		sp := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			sp[i] = float64(r)/512 - 0.2 // range [-0.2, +0.3)
			lo = math.Min(lo, sp[i])
			hi = math.Max(hi, sp[i])
		}
		g := GeoMeanSpeedup(sp)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty must be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.031); got != "3.1%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct2(0.0415); got != "4.15%" {
		t.Errorf("Pct2 = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Workload", "Speedup")
	tb.AddRow("spec06_mcf", "5.0%")
	tb.AddRow("spec17_x264", "2.0%", "extra-dropped")
	out := tb.String()
	if !strings.Contains(out, "spec06_mcf") || !strings.Contains(out, "Speedup") {
		t.Errorf("table missing content:\n%s", out)
	}
	if strings.Contains(out, "extra-dropped") {
		t.Error("overflow cell should be dropped")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestDistribution(t *testing.T) {
	d := NewDistribution()
	if d.Quantile(0.5) != 0 {
		t.Error("quantile of empty distribution must be 0")
	}
	for i := 0; i < 60; i++ {
		d.Add(1)
	}
	for i := 0; i < 40; i++ {
		d.Add(5)
	}
	if d.Total() != 100 {
		t.Errorf("total = %d", d.Total())
	}
	if got := d.Frac(1); got != 0.6 {
		t.Errorf("frac(1) = %v", got)
	}
	if got := d.Quantile(0.5); got != 1 {
		t.Errorf("median = %d, want 1", got)
	}
	if got := d.Quantile(0.9); got != 5 {
		t.Errorf("p90 = %d, want 5", got)
	}
	if got := d.Quantile(1.0); got != 5 {
		t.Errorf("p100 = %d, want 5", got)
	}
	keys := d.Keys()
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 5 {
		t.Errorf("keys = %v", keys)
	}
}

// Property: quantile is monotone in q and always an observed key.
func TestDistributionQuantileProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		d := NewDistribution()
		seen := map[int]bool{}
		for _, v := range vals {
			d.Add(int(v))
			seen[int(v)] = true
		}
		if len(vals) == 0 {
			return true
		}
		prev := math.MinInt
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			k := d.Quantile(q)
			if !seen[k] || k < prev {
				return false
			}
			prev = k
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlotStats(t *testing.T) {
	s := SlotStats{Retired: 50, StallLoad: 30, StallExec: 15, StallEmpty: 5}
	if s.Total() != 100 {
		t.Errorf("total = %d", s.Total())
	}
	r, l, e, f := s.Frac()
	if r != 0.5 || l != 0.3 || e != 0.15 || f != 0.05 {
		t.Errorf("fracs = %v %v %v %v", r, l, e, f)
	}
	var zero SlotStats
	r, l, e, f = zero.Frac()
	if r+l+e+f != 0 {
		t.Error("zero slots must give zero fractions")
	}
}
