package stats

import (
	"fmt"
	"reflect"
	"testing"
)

// numericFieldPaths walks t recursively (structs and arrays) and returns
// the path of every numeric leaf field, e.g. "RFP.Useful" or
// "LoadHitLevel[2]".
func numericFieldPaths(t reflect.Type, prefix string) []string {
	var paths []string
	switch t.Kind() {
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			p := f.Name
			if prefix != "" {
				p = prefix + "." + f.Name
			}
			paths = append(paths, numericFieldPaths(f.Type, p)...)
		}
	case reflect.Array:
		for i := 0; i < t.Len(); i++ {
			paths = append(paths, numericFieldPaths(t.Elem(), fmt.Sprintf("%s[%d]", prefix, i))...)
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Float32, reflect.Float64:
		paths = append(paths, prefix)
	default:
		// Non-numeric leaves (none exist in Sim today) are not counters and
		// are ignored.
	}
	return paths
}

// fieldByPath resolves a path produced by numericFieldPaths against v.
func fieldByPath(v reflect.Value, path string) reflect.Value {
	cur := v
	for len(path) > 0 {
		switch path[0] {
		case '.':
			path = path[1:]
		case '[':
			var idx int
			var rest string
			end := 1
			for path[end] != ']' {
				end++
			}
			fmt.Sscanf(path[1:end], "%d", &idx)
			rest = path[end+1:]
			cur = cur.Index(idx)
			path = rest
		default:
			end := 0
			for end < len(path) && path[end] != '.' && path[end] != '[' {
				end++
			}
			cur = cur.FieldByName(path[:end])
			path = path[end:]
		}
	}
	return cur
}

// setNumeric stores sentinel into a numeric field.
func setNumeric(v reflect.Value, sentinel uint64) {
	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		v.SetFloat(float64(sentinel))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(int64(sentinel))
	default:
		v.SetUint(sentinel)
	}
}

func readNumeric(v reflect.Value) uint64 {
	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		return uint64(v.Float())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return uint64(v.Int())
	default:
		return v.Uint()
	}
}

// TestAccumulatePropagatesEveryCounter sets each numeric field of Sim
// (recursively, including the RFP/VP/AP/Slots blocks and the hit-level
// array) to a sentinel in the source and asserts Accumulate adds it into
// the destination. A counter added to Sim but forgotten in Accumulate
// would silently vanish from -seeds averaging; this test turns that into a
// named failure.
func TestAccumulatePropagatesEveryCounter(t *testing.T) {
	paths := numericFieldPaths(reflect.TypeOf(Sim{}), "")
	if len(paths) < 30 {
		t.Fatalf("walker found only %d numeric fields in stats.Sim — walker bug?", len(paths))
	}
	const sentinel = 7
	for _, path := range paths {
		src, dst := &Sim{}, &Sim{}
		setNumeric(fieldByPath(reflect.ValueOf(src).Elem(), path), sentinel)
		Accumulate(dst, src)
		if got := readNumeric(fieldByPath(reflect.ValueOf(dst).Elem(), path)); got != sentinel {
			t.Errorf("Accumulate drops Sim.%s: dst = %d, want %d", path, got, sentinel)
		}
	}
}

// TestScaleMatchesRepeatedAccumulate: for every numeric field, scaling by
// k must equal accumulating the block k times into a zero value — the
// equivalence that makes sampled weighted replay consistent with seed
// replication. Walking every field also guarantees Scale keeps up with
// newly added counters.
func TestScaleMatchesRepeatedAccumulate(t *testing.T) {
	paths := numericFieldPaths(reflect.TypeOf(Sim{}), "")
	const sentinel, k = 7, 5
	for _, path := range paths {
		scaled, summed := &Sim{}, &Sim{}
		src := &Sim{}
		setNumeric(fieldByPath(reflect.ValueOf(src).Elem(), path), sentinel)
		*scaled = *src
		Scale(scaled, k)
		for i := 0; i < k; i++ {
			Accumulate(summed, src)
		}
		if *scaled != *summed {
			t.Errorf("Scale(%d) != %d-fold Accumulate for Sim.%s", k, k, path)
		}
	}
}

// TestAccumulateAddsOntoExisting checks summation (not overwrite)
// semantics for a representative subset.
func TestAccumulateAddsOntoExisting(t *testing.T) {
	dst := &Sim{Cycles: 10, Loads: 3}
	dst.RFP.Useful = 2
	src := &Sim{Cycles: 5, Loads: 4}
	src.RFP.Useful = 1
	Accumulate(dst, src)
	if dst.Cycles != 15 || dst.Loads != 7 || dst.RFP.Useful != 3 {
		t.Errorf("Accumulate did not sum: Cycles=%d Loads=%d Useful=%d", dst.Cycles, dst.Loads, dst.RFP.Useful)
	}
}
