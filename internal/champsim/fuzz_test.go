package champsim_test

import (
	"bytes"
	"testing"

	"rfpsim/internal/champsim"
	"rfpsim/internal/isa"
)

// FuzzChampSimDecode drives arbitrary bytes through the record decoder
// and the uop converter and checks the structural invariants: a stream
// that is a whole number of records decodes cleanly to exactly len/64
// records, anything ending mid-record errors, every emitted memory uop
// carries a nonzero address, and the uop count is bounded by the cracking
// fan-out (at most 7 uops per 64-byte record). The committed corpus under
// testdata/fuzz/ covers truncated records, bad lengths and compression
// magic bytes (xz/gzip garbage must be rejected or decoded, never
// misparsed as records).
func FuzzChampSimDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 30))                                    // truncated record
	f.Add(make([]byte, champsim.RecordBytes+1))                // bad length
	f.Add([]byte{0xfd, '7', 'z', 'X', 'Z', 0x00, 0xde, 0xad})  // xz garbage
	f.Add([]byte{0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 1}) // gzip garbage
	valid := make([]byte, 2*champsim.RecordBytes)
	champsim.EncodeRecord(&champsim.Record{
		IP: 0x400000, DstRegs: [2]uint8{3}, SrcRegs: [4]uint8{5}, SrcMem: [4]uint64{0x1000},
	}, valid[:champsim.RecordBytes])
	champsim.EncodeRecord(&champsim.Record{
		IP: 0x400004, IsBranch: true, Taken: true,
	}, valid[champsim.RecordBytes:])
	f.Add(valid)
	f.Add(valid[:champsim.RecordBytes+7]) // valid record + truncated tail

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := champsim.NewDecoder(bytes.NewReader(data))
		conv := champsim.NewConverter(dec, "fuzz")
		var op isa.MicroOp
		var uops uint64
		maxUops := 7 * uint64(len(data)/champsim.RecordBytes)
		for conv.Next(&op) {
			uops++
			if uops > maxUops {
				t.Fatalf("emitted %d uops from %d whole records", uops, len(data)/champsim.RecordBytes)
			}
			if (op.Class == isa.OpLoad || op.Class == isa.OpStore) && op.Addr == 0 {
				t.Fatalf("memory uop with zero address: %+v", op)
			}
			if op.Seq != uops-1 {
				t.Fatalf("non-monotonic Seq %d at uop %d", op.Seq, uops-1)
			}
		}
		whole := uint64(len(data) / champsim.RecordBytes)
		if len(data)%champsim.RecordBytes == 0 {
			if err := dec.Err(); err != nil {
				t.Fatalf("whole-record stream errored: %v", err)
			}
			if dec.Records() != whole {
				t.Fatalf("decoded %d records from %d", dec.Records(), whole)
			}
		} else {
			if err := dec.Err(); err == nil {
				t.Fatal("mid-record stream did not error")
			}
			if dec.Records() != whole {
				t.Fatalf("decoded %d records before the truncation, want %d", dec.Records(), whole)
			}
		}
	})
}
