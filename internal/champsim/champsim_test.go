package champsim_test

import (
	"bytes"
	"compress/gzip"
	"flag"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"rfpsim/internal/champsim"
	"rfpsim/internal/isa"
	"rfpsim/internal/tracefile"
)

var update = flag.Bool("update", false, "rewrite the committed ChampSim fixture")

// fixtureRecords is the deterministic synthetic instruction stream behind
// testdata/tiny.champsim.gz: a xorshift-driven mix of ALU ops, loads
// (including two-slot load records), stores, and taken/not-taken branches
// over a small strided address region. TestFixtureUpToDate pins the
// committed file to exactly this stream.
func fixtureRecords() []champsim.Record {
	const n = 6000
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	recs := make([]champsim.Record, 0, n)
	ip := uint64(0x400000)
	for i := 0; i < n; i++ {
		r := champsim.Record{IP: ip}
		ip += 4
		switch roll := next() % 100; {
		case roll < 18: // load (a few with two source-memory slots)
			r.DstRegs[0] = uint8(1 + next()%16)
			r.SrcRegs[0] = uint8(1 + next()%16)
			r.SrcMem[0] = 0x10000000 + (next()%4096)*8
			if roll < 3 {
				r.SrcMem[1] = 0x20000000 + (next()%512)*8
			}
		case roll < 30: // store
			r.SrcRegs[0] = uint8(1 + next()%16)
			r.SrcRegs[1] = uint8(1 + next()%16)
			r.DstMem[0] = 0x30000000 + (next()%2048)*8
		case roll < 45: // branch
			r.IsBranch = true
			r.Taken = next()%3 != 0
			r.SrcRegs[0] = uint8(1 + next()%16)
			if r.Taken {
				ip = 0x400000 + (next()%2048)*4
			}
		default: // alu
			r.DstRegs[0] = uint8(1 + next()%16)
			r.SrcRegs[0] = uint8(1 + next()%16)
			r.SrcRegs[1] = uint8(1 + next()%16)
		}
		recs = append(recs, r)
	}
	return recs
}

func encodeRecords(recs []champsim.Record) []byte {
	buf := make([]byte, 0, len(recs)*champsim.RecordBytes)
	var b [champsim.RecordBytes]byte
	for i := range recs {
		champsim.EncodeRecord(&recs[i], b[:])
		buf = append(buf, b[:]...)
	}
	return buf
}

func TestDecodeEncodeRoundTrip(t *testing.T) {
	recs := fixtureRecords()
	raw := encodeRecords(recs)
	dec := champsim.NewDecoder(bytes.NewReader(raw))
	var got champsim.Record
	for i := range recs {
		if !dec.Next(&got) {
			t.Fatalf("decoder ended at record %d of %d: %v", i, len(recs), dec.Err())
		}
		if got != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got, recs[i])
		}
	}
	if dec.Next(&got) {
		t.Fatal("decoder yielded a record past the end")
	}
	if err := dec.Err(); err != nil {
		t.Fatalf("clean stream errored: %v", err)
	}
	if dec.Records() != uint64(len(recs)) {
		t.Fatalf("Records() = %d, want %d", dec.Records(), len(recs))
	}
}

// TestConverterMapping pins the record→uop cracking on hand-built
// instructions: ordering, register folding, scratch destinations, the
// load-op collapse, branch-target lookahead and the nop fallback.
func TestConverterMapping(t *testing.T) {
	recs := []champsim.Record{
		// load-op: one source-memory slot + a register destination
		{IP: 0x100, DstRegs: [2]uint8{3}, SrcRegs: [4]uint8{5}, SrcMem: [4]uint64{0x1000}},
		// two loads: first feeds the destination, second the scratch reg
		{IP: 0x104, DstRegs: [2]uint8{7}, SrcRegs: [4]uint8{5, 9}, SrcMem: [4]uint64{0x2000, 0x2008}},
		// taken branch: target is the NEXT record's ip
		{IP: 0x108, IsBranch: true, Taken: true, SrcRegs: [4]uint8{26}},
		// store with two register sources: src2 is the data register
		{IP: 0x200, SrcRegs: [4]uint8{5, 9}, DstMem: [2]uint64{0x3000}},
		// plain alu, register id 40 folds to (40-1)%32 = 7
		{IP: 0x204, DstRegs: [2]uint8{40}, SrcRegs: [4]uint8{33}},
		// nothing at all: a nop
		{IP: 0x208},
		// not-taken branch: no target
		{IP: 0x20c, IsBranch: true},
	}
	conv := champsim.NewConverter(champsim.NewDecoder(bytes.NewReader(encodeRecords(recs))), "t")
	want := []isa.MicroOp{
		{PC: 0x100, Class: isa.OpLoad, Dst: 2, Src1: 4, Src2: isa.NoReg, Addr: 0x1000, Size: 8},
		{PC: 0x104, Class: isa.OpLoad, Dst: 6, Src1: 4, Src2: isa.NoReg, Addr: 0x2000, Size: 8},
		{PC: 0x104, Class: isa.OpLoad, Dst: champsim.ScratchReg, Src1: 4, Src2: isa.NoReg, Addr: 0x2008, Size: 8},
		{PC: 0x108, Class: isa.OpBranch, Dst: isa.NoReg, Src1: 25, Src2: isa.NoReg, Taken: true, Target: 0x200},
		{PC: 0x200, Class: isa.OpStore, Dst: isa.NoReg, Src1: 4, Src2: 8, Addr: 0x3000, Size: 8},
		{PC: 0x204, Class: isa.OpALU, Dst: 7, Src1: 0, Src2: isa.NoReg},
		{PC: 0x208, Class: isa.OpNop, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
		{PC: 0x20c, Class: isa.OpBranch, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
	}
	var op isa.MicroOp
	for i, w := range want {
		if !conv.Next(&op) {
			t.Fatalf("converter ended at uop %d of %d: %v", i, len(want), conv.Err())
		}
		w.Seq = uint64(i)
		if op != w {
			t.Fatalf("uop %d:\n got %+v\nwant %+v", i, op, w)
		}
	}
	if conv.Next(&op) {
		t.Fatalf("unexpected extra uop %+v", op)
	}
	if err := conv.Err(); err != nil {
		t.Fatalf("converter errored: %v", err)
	}
	if conv.Records() != uint64(len(recs)) || conv.Uops() != uint64(len(want)) {
		t.Fatalf("counters: records %d uops %d, want %d/%d", conv.Records(), conv.Uops(), len(recs), len(want))
	}
}

func TestTruncatedTrace(t *testing.T) {
	raw := encodeRecords(fixtureRecords()[:3])
	dec := champsim.NewDecoder(bytes.NewReader(raw[:len(raw)-5]))
	var rec champsim.Record
	n := 0
	for dec.Next(&rec) {
		n++
	}
	if n != 2 {
		t.Fatalf("decoded %d records from a 2.9-record stream, want 2", n)
	}
	if err := dec.Err(); err == nil {
		t.Fatal("truncated stream reported no error")
	}
}

// TestRoundTripThroughTracefile is the converter↔tracefile property test:
// encoding the converted uop stream as .rfpt and decoding it back
// preserves the uop count, the PC stream and every memory-op address.
func TestRoundTripThroughTracefile(t *testing.T) {
	raw := encodeRecords(fixtureRecords())

	var direct []isa.MicroOp
	conv := champsim.NewConverter(champsim.NewDecoder(bytes.NewReader(raw)), "direct")
	var op isa.MicroOp
	for conv.Next(&op) {
		direct = append(direct, op)
	}
	if err := conv.Err(); err != nil {
		t.Fatalf("convert: %v", err)
	}

	var rfpt bytes.Buffer
	w := tracefile.NewWriter(&rfpt)
	conv = champsim.NewConverter(champsim.NewDecoder(bytes.NewReader(raw)), "encode")
	for conv.Next(&op) {
		if err := w.Write(&op); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	r, err := tracefile.NewReader(bytes.NewReader(rfpt.Bytes()), "decode")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for i := range direct {
		if !r.Next(&op) {
			t.Fatalf("rfpt stream ended at uop %d of %d: %v", i, len(direct), r.Err())
		}
		if op != direct[i] {
			t.Fatalf("uop %d:\n got %+v\nwant %+v", i, op, direct[i])
		}
		if (op.Class == isa.OpLoad || op.Class == isa.OpStore) && op.Addr == 0 {
			t.Fatalf("uop %d: memory op with zero address", i)
		}
	}
	if r.Next(&op) {
		t.Fatal("rfpt stream has extra uops")
	}
}

// TestFixtureUpToDate pins testdata/tiny.champsim.gz to fixtureRecords():
// the committed bytes must decode (through OpenFile's gzip sniffing) to
// exactly the generated stream. -update rewrites the fixture.
func TestFixtureUpToDate(t *testing.T) {
	path := filepath.Join("testdata", "tiny.champsim.gz")
	want := fixtureRecords()
	if *update {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(encodeRecords(want)); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f, err := champsim.OpenFile(path)
	if err != nil {
		t.Fatalf("open fixture (regenerate with -update): %v", err)
	}
	defer f.Close()
	dec := champsim.NewDecoder(f)
	var rec champsim.Record
	for i := range want {
		if !dec.Next(&rec) {
			t.Fatalf("fixture ended at record %d of %d: %v", i, len(want), dec.Err())
		}
		if rec != want[i] {
			t.Fatalf("fixture record %d drifted (regenerate with -update):\n got %+v\nwant %+v", i, rec, want[i])
		}
	}
	if dec.Next(&rec) {
		t.Fatal("fixture has extra records (regenerate with -update)")
	}
}

func TestOpenFileSniffing(t *testing.T) {
	recs := fixtureRecords()[:16]
	raw := encodeRecords(recs)
	dir := t.TempDir()

	readAll := func(path string) []byte {
		t.Helper()
		f, err := champsim.OpenFile(path)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		defer f.Close()
		b, err := io.ReadAll(f)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return b
	}

	rawPath := filepath.Join(dir, "t.champsim")
	if err := os.WriteFile(rawPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := readAll(rawPath); !bytes.Equal(got, raw) {
		t.Fatal("raw file did not round-trip")
	}

	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(raw)
	zw.Close()
	gzPath := filepath.Join(dir, "t.champsim.gz")
	if err := os.WriteFile(gzPath, gz.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := readAll(gzPath); !bytes.Equal(got, raw) {
		t.Fatal("gzip file did not round-trip")
	}

	if _, err := exec.LookPath("xz"); err != nil {
		t.Skip("xz tool not on PATH")
	}
	xzPath := filepath.Join(dir, "t.champsim.xz")
	cmd := exec.Command("xz", "-k", "-c", rawPath)
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("xz compress: %v", err)
	}
	if err := os.WriteFile(xzPath, out, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := readAll(xzPath); !bytes.Equal(got, raw) {
		t.Fatal("xz file did not round-trip")
	}
}
