// Package champsim ingests ChampSim instruction traces — the de-facto
// interchange format for cache/prefetcher research artifacts (SPEC CPU
// trace drops, the DPC/CRC championship suites) — and converts them into
// the simulator's micro-op stream so externally captured workloads flow
// through the same runner, service and sweep paths as the synthetic
// catalog (cmd/tracegen -from-champsim writes the converted .rfpt file).
//
// A ChampSim trace is a flat array of 64-byte little-endian records, one
// per retired instruction:
//
//	u64 ip | u8 is_branch | u8 branch_taken |
//	u8 destination_registers[2] | u8 source_registers[4] |
//	u64 destination_memory[2]   | u64 source_memory[4]
//
// Register number 0 and memory address 0 mean "slot unused". Traces are
// conventionally xz- or gzip-compressed; OpenFile sniffs the compression
// magic (gzip decodes in-process, xz through the external xz tool).
//
// # Conversion and its lossiness
//
// ChampSim records carry no opcode, data values, access sizes or
// explicit targets, so the mapping onto isa.MicroOp is lossy in
// documented, deterministic ways (docs/traces.md tabulates them):
//
//   - Each instruction cracks into uops in this order: one OpLoad per
//     used source_memory slot, then one OpBranch (branch instructions)
//     or one OpALU (instructions with a register destination and no
//     load), then one OpStore per used destination_memory slot.
//     Instructions with no registers, memory or branch bit become OpNop.
//   - Load-op instructions collapse into a single OpLoad writing the
//     architectural destination; only the first load of an instruction
//     gets the destination, further loads write the scratch register.
//   - There are no opcode classes: OpMul/OpDiv/OpFP/OpFMA never occur,
//     so execution-latency mix is flattened to single-cycle ALU ops.
//   - Register IDs are x86/Pin numbers (up to 255); they are folded onto
//     the 32 integer architectural registers as (id-1) mod 32. FP/vector
//     registers are not distinguished — FP register-file pressure and FP
//     latencies are lost.
//   - Data values are absent: every Value is 0, so value-predictor (vp)
//     results on converted traces are meaningless and should stay off.
//   - Access sizes are absent: every memory uop reads/writes MemSize (8)
//     bytes.
//   - Branch targets are absent: a taken branch's Target is the next
//     record's ip (one-record lookahead); not-taken branches carry
//     Target 0.
//
// What survives exactly — the per-PC load/store/branch structure, the
// dynamic PC stream, virtual addresses and register dependencies — is
// what RFP, the L1 prefetcher zoo and the cache-level predictor key on,
// which is the point of ingesting these traces.
package champsim

import (
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"

	"rfpsim/internal/isa"
)

// Format geometry of one ChampSim trace record.
const (
	// RecordBytes is the fixed size of one instruction record.
	RecordBytes = 64
	// NumDst is the destination slot count (registers and memory).
	NumDst = 2
	// NumSrc is the source slot count (registers and memory).
	NumSrc = 4
	// MemSize is the access size assumed for every converted memory uop;
	// ChampSim records carry none.
	MemSize = 8
)

// ScratchReg receives the results of loads beyond the first of an
// instruction (ChampSim does not say which destination each load feeds).
const ScratchReg = isa.RegID(31)

// ErrTruncated reports a trace that ends mid-record — bytes were lost,
// as opposed to the clean end-of-stream on a record boundary.
var ErrTruncated = errors.New("champsim: trace truncated mid-record")

// Record is one decoded ChampSim instruction record.
type Record struct {
	// IP is the instruction pointer.
	IP uint64
	// IsBranch and Taken are the branch bit and its outcome.
	IsBranch, Taken bool
	// DstRegs and SrcRegs are x86/Pin register numbers; 0 = slot unused.
	DstRegs [NumDst]uint8
	SrcRegs [NumSrc]uint8
	// DstMem and SrcMem are store/load virtual addresses; 0 = slot unused.
	DstMem [NumDst]uint64
	SrcMem [NumSrc]uint64
}

// DecodeRecord parses one 64-byte record (b must hold RecordBytes).
func DecodeRecord(b []byte, rec *Record) {
	rec.IP = binary.LittleEndian.Uint64(b[0:])
	rec.IsBranch = b[8] != 0
	rec.Taken = b[9] != 0
	copy(rec.DstRegs[:], b[10:12])
	copy(rec.SrcRegs[:], b[12:16])
	for i := 0; i < NumDst; i++ {
		rec.DstMem[i] = binary.LittleEndian.Uint64(b[16+8*i:])
	}
	for i := 0; i < NumSrc; i++ {
		rec.SrcMem[i] = binary.LittleEndian.Uint64(b[32+8*i:])
	}
}

// EncodeRecord writes rec as one 64-byte record (b must hold
// RecordBytes). It is the exact inverse of DecodeRecord, used by tests
// and fixture generators.
func EncodeRecord(rec *Record, b []byte) {
	for i := range b[:RecordBytes] {
		b[i] = 0
	}
	binary.LittleEndian.PutUint64(b[0:], rec.IP)
	if rec.IsBranch {
		b[8] = 1
	}
	if rec.Taken {
		b[9] = 1
	}
	copy(b[10:12], rec.DstRegs[:])
	copy(b[12:16], rec.SrcRegs[:])
	for i := 0; i < NumDst; i++ {
		binary.LittleEndian.PutUint64(b[16+8*i:], rec.DstMem[i])
	}
	for i := 0; i < NumSrc; i++ {
		binary.LittleEndian.PutUint64(b[32+8*i:], rec.SrcMem[i])
	}
}

// Decoder reads ChampSim records from an (already decompressed) stream.
type Decoder struct {
	r     io.Reader
	buf   [RecordBytes]byte
	count uint64
	err   error
}

// NewDecoder wraps r, which must yield raw (decompressed) record bytes.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Next decodes the next record. It returns false at end of stream or on
// error; Err distinguishes the two.
func (d *Decoder) Next(rec *Record) bool {
	if d.err != nil {
		return false
	}
	if _, err := io.ReadFull(d.r, d.buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("%w (after %d records)", ErrTruncated, d.count)
		}
		d.err = err
		return false
	}
	DecodeRecord(d.buf[:], rec)
	d.count++
	return true
}

// Err returns the first decode error (nil on a clean end of stream).
func (d *Decoder) Err() error {
	if d.err == io.EOF {
		return nil
	}
	return d.err
}

// Records returns the number of records decoded so far.
func (d *Decoder) Records() uint64 { return d.count }

// Converter cracks decoded records into micro-ops; it implements
// isa.Generator, so a ChampSim trace can drive a core directly or be
// re-encoded as .rfpt through tracefile.Writer.
type Converter struct {
	dec  *Decoder
	name string

	cur  Record
	have bool

	pending      [1 + NumDst + NumSrc]isa.MicroOp
	npend, ipend int

	seq     uint64
	records uint64
}

// NewConverter wraps dec as a generator named name.
func NewConverter(dec *Decoder, name string) *Converter {
	return &Converter{dec: dec, name: name}
}

// Name implements isa.Generator.
func (c *Converter) Name() string { return c.name }

// Err surfaces the decoder's error (nil on a clean end of stream).
func (c *Converter) Err() error { return c.dec.Err() }

// Records returns the number of instructions converted so far.
func (c *Converter) Records() uint64 { return c.records }

// Uops returns the number of micro-ops emitted so far.
func (c *Converter) Uops() uint64 { return c.seq }

// Next implements isa.Generator.
func (c *Converter) Next(op *isa.MicroOp) bool {
	for c.ipend >= c.npend {
		if !c.advance() {
			return false
		}
	}
	*op = c.pending[c.ipend]
	c.ipend++
	op.Seq = c.seq
	c.seq++
	return true
}

// advance cracks the next record into the pending buffer, keeping one
// record of lookahead so a taken branch's target can be the next ip.
func (c *Converter) advance() bool {
	if !c.have {
		if !c.dec.Next(&c.cur) {
			return false
		}
		c.have = true
	}
	var next Record
	nextIP := uint64(0)
	hasNext := c.dec.Next(&next)
	if hasNext {
		nextIP = next.IP
	}
	c.crack(&c.cur, nextIP)
	c.records++
	c.cur = next
	c.have = hasNext
	return true
}

// mapReg folds an x86/Pin register number onto the integer architectural
// registers; 0 means "slot unused".
func mapReg(id uint8) isa.RegID {
	if id == 0 {
		return isa.NoReg
	}
	return isa.RegID((id - 1) % isa.NumIntRegs)
}

// crack appends rec's micro-ops to the pending buffer (see the package
// comment for the mapping and its lossiness).
func (c *Converter) crack(rec *Record, nextIP uint64) {
	c.npend, c.ipend = 0, 0
	emit := func(op isa.MicroOp) {
		op.PC = rec.IP
		c.pending[c.npend] = op
		c.npend++
	}
	dst := isa.NoReg
	for _, id := range rec.DstRegs {
		if r := mapReg(id); r != isa.NoReg {
			dst = r
			break
		}
	}
	src1, src2 := isa.NoReg, isa.NoReg
	for _, id := range rec.SrcRegs {
		r := mapReg(id)
		if r == isa.NoReg {
			continue
		}
		if src1 == isa.NoReg {
			src1 = r
		} else if src2 == isa.NoReg {
			src2 = r
			break
		}
	}

	loads := 0
	for _, a := range rec.SrcMem {
		if a == 0 {
			continue
		}
		ld := isa.MicroOp{Class: isa.OpLoad, Addr: a, Size: MemSize, Src1: src1, Src2: isa.NoReg, Dst: ScratchReg}
		if loads == 0 && dst != isa.NoReg {
			ld.Dst = dst
		}
		emit(ld)
		loads++
	}
	switch {
	case rec.IsBranch:
		br := isa.MicroOp{Class: isa.OpBranch, Src1: src1, Src2: src2, Dst: isa.NoReg, Taken: rec.Taken}
		if rec.Taken {
			br.Target = nextIP
		}
		emit(br)
	case loads == 0 && dst != isa.NoReg:
		emit(isa.MicroOp{Class: isa.OpALU, Dst: dst, Src1: src1, Src2: src2})
	}
	for _, a := range rec.DstMem {
		if a == 0 {
			continue
		}
		data := src2
		if data == isa.NoReg {
			data = src1
		}
		emit(isa.MicroOp{Class: isa.OpStore, Addr: a, Size: MemSize, Src1: src1, Src2: data, Dst: isa.NoReg})
	}
	if c.npend == 0 {
		emit(isa.MicroOp{Class: isa.OpNop, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg})
	}
}

// Compression magics OpenFile sniffs.
var (
	gzipMagic = []byte{0x1f, 0x8b}
	xzMagic   = []byte{0xfd, '7', 'z', 'X', 'Z', 0x00}
)

// OpenFile opens a ChampSim trace file and returns a reader over its raw
// record bytes, sniffing the compression by magic: gzip decodes
// in-process; xz (the conventional distribution format) is decompressed
// through the external xz tool, with a clear error when the tool is not
// on PATH (the module deliberately has no third-party xz decoder).
// Anything else is read as uncompressed records.
func OpenFile(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	magic := make([]byte, len(xzMagic))
	n, err := io.ReadFull(f, magic)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		f.Close()
		return nil, err
	}
	magic = magic[:n]
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	switch {
	case hasPrefix(magic, xzMagic):
		f.Close()
		return openXZ(path)
	case hasPrefix(magic, gzipMagic):
		zr, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("champsim: %s: %w", path, err)
		}
		return &gzipFile{zr: zr, f: f}, nil
	default:
		return f, nil
	}
}

func hasPrefix(b, prefix []byte) bool {
	if len(b) < len(prefix) {
		return false
	}
	for i := range prefix {
		if b[i] != prefix[i] {
			return false
		}
	}
	return true
}

// gzipFile closes both the decompressor and the underlying file.
type gzipFile struct {
	zr *gzip.Reader
	f  *os.File
}

// Read implements io.Reader over the decompressed stream.
func (g *gzipFile) Read(p []byte) (int, error) { return g.zr.Read(p) }

// Close implements io.Closer.
func (g *gzipFile) Close() error {
	err := g.zr.Close()
	if cerr := g.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// openXZ streams `xz -dc path` — the Go standard library has no xz
// decoder and the module takes no third-party dependencies, so the tool
// is required for xz-compressed traces.
func openXZ(path string) (io.ReadCloser, error) {
	xz, err := exec.LookPath("xz")
	if err != nil {
		return nil, fmt.Errorf("champsim: %s is xz-compressed but no xz tool is on PATH; install xz-utils or decompress the trace first", path)
	}
	cmd := exec.Command(xz, "-dc", path)
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &xzPipe{cmd: cmd, out: out}, nil
}

// xzPipe reaps the xz subprocess on Close.
type xzPipe struct {
	cmd *exec.Cmd
	out io.ReadCloser
}

// Read implements io.Reader over the decompressed stream.
func (p *xzPipe) Read(b []byte) (int, error) { return p.out.Read(b) }

// Close implements io.Closer.
func (p *xzPipe) Close() error {
	p.out.Close()
	return p.cmd.Wait()
}
