package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"

	"rfpsim/internal/fabric"
	"rfpsim/internal/obs"
)

// TraceUploadResponse is the POST /v1/traces result body.
type TraceUploadResponse struct {
	TraceInfo
	// Dedup reports that identical bytes were already stored (in memory
	// or on the fabric disk tier) — the upload was free.
	Dedup bool `json:"dedup"`
}

// handleTraces is POST /v1/traces (upload raw .rfpt bytes, get the
// content address back) and GET /v1/traces (list the in-memory working
// set). Uploads are validated by a full decode before they are stored
// anywhere; rejects count into rfpsimd_trace_rejects_total and return the
// structured JSON error body every other endpoint uses.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		runID := r.Header.Get(RunIDHeader)
		if !obs.ValidRunID(runID) {
			runID = obs.NewRunID()
		}
		w.Header().Set(RunIDHeader, runID)
		raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
		if err != nil {
			s.metrics.traceRejects.Add(1)
			writeJSONError(w, http.StatusBadRequest, "invalid", "reading trace body: "+err.Error())
			return
		}
		info, dedup, err := s.traces.Add(raw)
		if err != nil {
			s.metrics.traceRejects.Add(1)
			s.logger.With("run_id", runID).Debug("trace upload rejected", "err", err.Error())
			writeJSONError(w, http.StatusBadRequest, "invalid", "bad trace upload: "+err.Error())
			return
		}
		s.metrics.tracesUploaded.Add(1)
		s.logger.With("run_id", runID).Info("trace uploaded",
			"address", info.Address[:12], "bytes", info.Bytes, "uops", info.Uops, "dedup", dedup)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(TraceUploadResponse{TraceInfo: info, Dedup: dedup})
	case http.MethodGet:
		list := s.traces.List()
		if list == nil {
			list = []TraceInfo{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(list)
	default:
		writeJSONError(w, http.StatusMethodNotAllowed, "invalid", "POST or GET only")
	}
}

// handleTraceByAddr is GET /v1/traces/{addr}: the stored trace's info
// (not its bytes), resolving through the disk tier like a simulation
// would.
func (s *Server) handleTraceByAddr(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "invalid", "GET only")
		return
	}
	addr := strings.TrimPrefix(r.URL.Path, "/v1/traces/")
	if !fabric.ValidAddr(addr) {
		writeJSONError(w, http.StatusBadRequest, "invalid", "malformed trace address")
		return
	}
	_, info, ok := s.traces.Get(addr)
	if !ok {
		writeJSONError(w, http.StatusNotFound, "invalid", "no trace stored under this address")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info)
}

// Status is a point-in-time operational snapshot of the daemon: the
// queue/worker state, job outcome counters, cache tiers and trace store.
// It exists for embedders that render live state — the browser console's
// status endpoint serves exactly this struct — and mirrors the same
// counters /metrics exposes, so a console chart and a Prometheus
// dashboard can never disagree.
type Status struct {
	// Draining reports a closed (shutting down) server.
	Draining bool `json:"draining"`
	// Workers, QueueDepth and TenantQueueDepth echo the admission limits.
	Workers          int `json:"workers"`
	QueueDepth       int `json:"queue_depth"`
	TenantQueueDepth int `json:"tenant_queue_depth"`
	// TenantsQueued counts tenants with at least one queued job.
	TenantsQueued int `json:"tenants_queued"`
	// JobsQueued and JobsRunning are the live queue/worker gauges.
	JobsQueued  int64 `json:"jobs_queued"`
	JobsRunning int64 `json:"jobs_running"`
	// Job outcome counters (rfpsimd_jobs_done_total by status).
	JobsOK        uint64 `json:"jobs_ok"`
	JobsCancelled uint64 `json:"jobs_cancelled"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsRejected  uint64 `json:"jobs_rejected"`
	// Result-cache counters and occupancy.
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	CacheEntries  int     `json:"cache_entries"`
	CacheBytes    int64   `json:"cache_bytes"`
	// Dedup counts requests coalesced onto an identical in-flight one.
	Dedup uint64 `json:"dedup"`
	// Trace store counters.
	TracesStored   int    `json:"traces_stored"`
	TracesUploaded uint64 `json:"traces_uploaded"`
	TraceRejects   uint64 `json:"trace_rejects"`
	// Fabric is the fabric tier snapshot; nil when no fabric is
	// configured.
	Fabric *fabric.Snapshot `json:"fabric,omitempty"`
}

// Status snapshots the server's operational state.
func (s *Server) Status() Status {
	s.mu.RLock()
	draining := s.closed
	s.mu.RUnlock()
	hits, misses := s.metrics.cacheHits.Load(), s.metrics.cacheMisses.Load()
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	st := Status{
		Draining:         draining,
		Workers:          s.opts.workers(),
		QueueDepth:       s.opts.queueDepth(),
		TenantQueueDepth: s.opts.tenantQueueDepth(),
		TenantsQueued:    s.sched.tenantsQueued(),
		JobsQueued:       s.metrics.jobsQueued.Load(),
		JobsRunning:      s.metrics.jobsRunning.Load(),
		JobsOK:           s.metrics.jobsOK.Load(),
		JobsCancelled:    s.metrics.jobsCancelled.Load(),
		JobsFailed:       s.metrics.jobsFailed.Load(),
		JobsRejected:     s.metrics.jobsRejected.Load(),
		CacheHits:        hits,
		CacheMisses:      misses,
		CacheHitRatio:    ratio,
		CacheEntries:     s.cache.len(),
		CacheBytes:       s.cache.bytes(),
		Dedup:            s.metrics.fabricDedup.Load(),
		TracesStored:     s.traces.Len(),
		TracesUploaded:   s.metrics.tracesUploaded.Load(),
		TraceRejects:     s.metrics.traceRejects.Load(),
	}
	if s.fabric != nil {
		snap := s.fabric.Metrics().Snapshot()
		st.Fabric = &snap
	}
	return st
}
