package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"testing"

	"rfpsim/internal/trace"
)

// TestContentAddressFormatPinned recomputes the cache key by hand from the
// documented format and asserts ContentAddress matches. internal/sweep
// dedups and checkpoints against this exact key, and the daemon's result
// cache files bodies under it, so the format must not silently drift: if
// this test fails, either revert the key change or bump every consumer
// (docs/service.md, docs/sweep.md, existing checkpoints become stale).
func TestContentAddressFormatPinned(t *testing.T) {
	req := SimRequest{
		Workload:    "spec06_mcf",
		Config:      ConfigSpec{RFP: true, PTEntries: 512},
		WarmupUops:  5000,
		MeasureUops: 10000,
		Seeds:       2,
	}
	got, err := ContentAddress(req)
	if err != nil {
		t.Fatal(err)
	}

	cfg, err := req.Config.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := trace.ByName(req.Workload)
	if !ok {
		t.Fatal("spec06_mcf missing from catalog")
	}
	h := sha256.New()
	fmt.Fprintf(h, "config:%s|workload:%s:seed:%d|warmup:%d|measure:%d|seeds:%d|cold:%t",
		cfgJSON, spec.Name, spec.Seed, 5000, 10000, 2, false)
	want := hex.EncodeToString(h.Sum(nil))
	if got != want {
		t.Errorf("content address format drifted:\n got %s\nwant %s", got, want)
	}
}

// TestContentAddressNormalizesDefaults: a request spelling out the default
// windows and seed count shares a key with one that omits them, so clients
// cannot split the cache by being explicit.
func TestContentAddressNormalizesDefaults(t *testing.T) {
	implicit := SimRequest{Workload: "spec06_mcf", Config: ConfigSpec{RFP: true}}
	explicit := SimRequest{
		Workload: "spec06_mcf", Config: ConfigSpec{RFP: true},
		WarmupUops: 30000, MeasureUops: 60000, Seeds: 1,
	}
	ki, err := ContentAddress(implicit)
	if err != nil {
		t.Fatal(err)
	}
	ke, err := ContentAddress(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if ki != ke {
		t.Errorf("defaulted and explicit requests key differently: %s vs %s", ki, ke)
	}

	distinct := explicit
	distinct.Config.PTEntries = 256
	if kd, err := ContentAddress(distinct); err != nil || kd == ke {
		t.Errorf("different configs must key differently (err=%v)", err)
	}
}

// TestPrefetcherContentAddress pins the prefetcher knob's cache-key
// behavior: a spec that omits the knob keys identically to the
// pre-prefetcher-zoo format (the field is omitempty in the marshaled
// config, so historical checkpoints stay valid), every prefetcher name
// keys distinctly, and the chosen name lands in the config segment of
// the documented key format.
func TestPrefetcherContentAddress(t *testing.T) {
	base := SimRequest{Workload: "spec06_mcf", Config: ConfigSpec{RFP: true}}
	kBase, err := ContentAddress(base)
	if err != nil {
		t.Fatal(err)
	}

	seen := map[string]string{"": kBase}
	for _, name := range []string{"stream", "spp", "sisb", "managed"} {
		req := base
		req.Config.Prefetcher = name
		k, err := ContentAddress(req)
		if err != nil {
			t.Fatalf("prefetcher %q: %v", name, err)
		}
		for prev, kp := range seen {
			if k == kp {
				t.Errorf("prefetcher %q shares content address with %q: %s", name, prev, k)
			}
		}
		seen[name] = k

		// Recompute from the documented format: the name rides inside the
		// marshaled config segment.
		cfg, err := req.Config.Build()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Mem.Prefetcher != name {
			t.Fatalf("Build dropped prefetcher %q", name)
		}
		cfgJSON, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		spec, _ := trace.ByName(req.Workload)
		h := sha256.New()
		fmt.Fprintf(h, "config:%s|workload:%s:seed:%d|warmup:%d|measure:%d|seeds:%d|cold:%t",
			cfgJSON, spec.Name, spec.Seed, 30000, 60000, 1, false)
		if want := hex.EncodeToString(h.Sum(nil)); k != want {
			t.Errorf("prefetcher %q content address format drifted:\n got %s\nwant %s", name, k, want)
		}
	}

	// The omitempty contract: an unset knob must not change the config
	// segment, or every pre-zoo cache entry and sweep checkpoint is
	// orphaned.
	cfg, err := base.Config.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(cfgJSON, []byte("Prefetcher")) {
		t.Errorf("unset prefetcher leaked into the config JSON: %s", cfgJSON)
	}

	if _, err := ContentAddress(SimRequest{
		Workload: "spec06_mcf",
		Config:   ConfigSpec{Prefetcher: "bogus"},
	}); err == nil {
		t.Error("unknown prefetcher name accepted")
	}
}

// TestSampledContentAddress pins the sampled key extension: the sampling
// parameters are appended to the full-run key (which stays byte-identical
// for non-sampled requests), defaults normalize into the same key, and a
// sampled request never collides with its full-window twin — a sampled
// result is an estimate and must not be served from the exact run's cache
// entry or vice versa.
func TestSampledContentAddress(t *testing.T) {
	full := SimRequest{
		Workload:    "spec06_mcf",
		Config:      ConfigSpec{RFP: true},
		WarmupUops:  30000,
		MeasureUops: 60000,
		Seeds:       1,
	}
	sampled := full
	sampled.Sampling = &SamplingSpec{}
	kFull, err := ContentAddress(full)
	if err != nil {
		t.Fatal(err)
	}
	kSampled, err := ContentAddress(sampled)
	if err != nil {
		t.Fatal(err)
	}
	if kFull == kSampled {
		t.Fatalf("sampled and full requests share content address %s", kFull)
	}

	// Pinned format: the normalized sampling params extend the full key.
	cfg, err := full.Config.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := trace.ByName(full.Workload)
	h := sha256.New()
	fmt.Fprintf(h, "config:%s|workload:%s:seed:%d|warmup:%d|measure:%d|seeds:%d|cold:%t",
		cfgJSON, spec.Name, spec.Seed, 30000, 60000, 1, false)
	fmt.Fprintf(h, "|sampling:interval:%d:maxk:%d:warmup:%d", 2000, 5, 2000)
	if want := hex.EncodeToString(h.Sum(nil)); kSampled != want {
		t.Errorf("sampled content address format drifted:\n got %s\nwant %s", kSampled, want)
	}

	// Spelling the defaults out shares the defaulted sampled key.
	explicit := full
	explicit.Sampling = &SamplingSpec{IntervalUops: 2000, MaxK: 5, WarmupUops: 2000}
	if ke, err := ContentAddress(explicit); err != nil || ke != kSampled {
		t.Errorf("explicit-defaults sampled key differs (err=%v):\n got %s\nwant %s", err, ke, kSampled)
	}

	// Different sampling parameters are different simulations.
	coarse := full
	coarse.Sampling = &SamplingSpec{IntervalUops: 4000}
	if kc, err := ContentAddress(coarse); err != nil || kc == kSampled {
		t.Errorf("different sampling params must key differently (err=%v)", err)
	}
}

// TestSampledResolveRejections: the resolver refuses sampled requests it
// could never execute, before any key is handed out — and accepts the
// ones it can: sampled traces work now, through the NewGen factory.
func TestSampledResolveRejections(t *testing.T) {
	multi := SimRequest{
		Workload: "spec06_mcf",
		Seeds:    3,
		Sampling: &SamplingSpec{},
	}
	if _, _, err := ResolveJob(multi); err == nil {
		t.Error("sampled request with Seeds=3 accepted")
	}
	bogus := SimRequest{
		TraceB64: "AAAA", // valid base64, not a valid trace
		Sampling: &SamplingSpec{},
	}
	if _, _, err := ResolveJob(bogus); err == nil {
		t.Error("sampled undecodable trace upload accepted")
	}
	sampled := SimRequest{
		TraceB64: base64.StdEncoding.EncodeToString(validTraceBytes(t, "spec06_mcf", 8000)),
		Sampling: &SamplingSpec{},
	}
	job, _, err := ResolveJob(sampled)
	if err != nil {
		t.Fatalf("sampled valid trace upload rejected: %v", err)
	}
	if job.NewGen == nil {
		t.Error("sampled trace job has no re-instantiable generator factory")
	}
}

// TestTraceAddressesDisjointFromCatalog pins the workload-key namespace
// split: an uploaded trace's content address can never collide with ANY
// catalog workload's address under the same configuration — the trace:
// prefix keys on the byte digest, catalog entries key on name+seed — so a
// malicious or accidental upload cannot poison a catalog cache entry.
func TestTraceAddressesDisjointFromCatalog(t *testing.T) {
	raw := validTraceBytes(t, "spec06_mcf", 8000)
	cfg := ConfigSpec{RFP: true}
	traceKey, err := ContentAddress(SimRequest{
		TraceB64: base64.StdEncoding.EncodeToString(raw),
		Config:   cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	refKey, err := ContentAddress(SimRequest{
		Workload: TraceWorkloadPrefix + TraceAddress(raw),
		Config:   cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if traceKey != refKey {
		t.Errorf("inline and by-reference submissions of identical bytes key differently:\n%s\n%s", traceKey, refKey)
	}
	for _, spec := range trace.Catalog() {
		catKey, err := ContentAddress(SimRequest{Workload: spec.Name, Config: cfg})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if catKey == traceKey {
			t.Errorf("uploaded trace shares content address with catalog workload %s", spec.Name)
		}
	}
}

// TestResolveJobMatchesServerKey pins the exported resolution to the
// daemon's internal one: same job fields, same cache key.
func TestResolveJobMatchesServerKey(t *testing.T) {
	req := quickReq()
	job, key, err := ResolveJob(req)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rj, err := srv.resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	if key != rj.key {
		t.Errorf("ResolveJob key %s != server resolve key %s", key, rj.key)
	}
	if job.Spec.Name != rj.job.Spec.Name || job.WarmupUops != rj.job.WarmupUops ||
		job.MeasureUops != rj.job.MeasureUops || job.Seeds != rj.job.Seeds {
		t.Errorf("ResolveJob job %+v != server job %+v", job, rj.job)
	}
	if got, want := job.TotalUops(), (req.WarmupUops+req.MeasureUops)*1; got != want {
		t.Errorf("TotalUops = %d, want %d", got, want)
	}
}

// TestResolveJobErrors mirrors the request-validation table for the
// exported path.
func TestResolveJobErrors(t *testing.T) {
	for i, req := range []SimRequest{
		{},
		{Workload: "no_such_workload"},
		{Workload: "spec06_mcf", Config: ConfigSpec{VP: "bogus"}},
		{TraceB64: "!!!not-base64!!!"},
	} {
		if _, _, err := ResolveJob(req); err == nil {
			t.Errorf("case %d: ResolveJob accepted an invalid request", i)
		}
		if _, err := ContentAddress(req); err == nil {
			t.Errorf("case %d: ContentAddress accepted an invalid request", i)
		}
	}
}
