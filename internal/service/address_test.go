package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"testing"

	"rfpsim/internal/trace"
)

// TestContentAddressFormatPinned recomputes the cache key by hand from the
// documented format and asserts ContentAddress matches. internal/sweep
// dedups and checkpoints against this exact key, and the daemon's result
// cache files bodies under it, so the format must not silently drift: if
// this test fails, either revert the key change or bump every consumer
// (docs/service.md, docs/sweep.md, existing checkpoints become stale).
func TestContentAddressFormatPinned(t *testing.T) {
	req := SimRequest{
		Workload:    "spec06_mcf",
		Config:      ConfigSpec{RFP: true, PTEntries: 512},
		WarmupUops:  5000,
		MeasureUops: 10000,
		Seeds:       2,
	}
	got, err := ContentAddress(req)
	if err != nil {
		t.Fatal(err)
	}

	cfg, err := req.Config.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := trace.ByName(req.Workload)
	if !ok {
		t.Fatal("spec06_mcf missing from catalog")
	}
	h := sha256.New()
	fmt.Fprintf(h, "config:%s|workload:%s:seed:%d|warmup:%d|measure:%d|seeds:%d|cold:%t",
		cfgJSON, spec.Name, spec.Seed, 5000, 10000, 2, false)
	want := hex.EncodeToString(h.Sum(nil))
	if got != want {
		t.Errorf("content address format drifted:\n got %s\nwant %s", got, want)
	}
}

// TestContentAddressNormalizesDefaults: a request spelling out the default
// windows and seed count shares a key with one that omits them, so clients
// cannot split the cache by being explicit.
func TestContentAddressNormalizesDefaults(t *testing.T) {
	implicit := SimRequest{Workload: "spec06_mcf", Config: ConfigSpec{RFP: true}}
	explicit := SimRequest{
		Workload: "spec06_mcf", Config: ConfigSpec{RFP: true},
		WarmupUops: 30000, MeasureUops: 60000, Seeds: 1,
	}
	ki, err := ContentAddress(implicit)
	if err != nil {
		t.Fatal(err)
	}
	ke, err := ContentAddress(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if ki != ke {
		t.Errorf("defaulted and explicit requests key differently: %s vs %s", ki, ke)
	}

	distinct := explicit
	distinct.Config.PTEntries = 256
	if kd, err := ContentAddress(distinct); err != nil || kd == ke {
		t.Errorf("different configs must key differently (err=%v)", err)
	}
}

// TestResolveJobMatchesServerKey pins the exported resolution to the
// daemon's internal one: same job fields, same cache key.
func TestResolveJobMatchesServerKey(t *testing.T) {
	req := quickReq()
	job, key, err := ResolveJob(req)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Workers: 1})
	defer srv.Close()
	rj, err := srv.resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	if key != rj.key {
		t.Errorf("ResolveJob key %s != server resolve key %s", key, rj.key)
	}
	if job.Spec.Name != rj.job.Spec.Name || job.WarmupUops != rj.job.WarmupUops ||
		job.MeasureUops != rj.job.MeasureUops || job.Seeds != rj.job.Seeds {
		t.Errorf("ResolveJob job %+v != server job %+v", job, rj.job)
	}
	if got, want := job.TotalUops(), (req.WarmupUops+req.MeasureUops)*1; got != want {
		t.Errorf("TotalUops = %d, want %d", got, want)
	}
}

// TestResolveJobErrors mirrors the request-validation table for the
// exported path.
func TestResolveJobErrors(t *testing.T) {
	for i, req := range []SimRequest{
		{},
		{Workload: "no_such_workload"},
		{Workload: "spec06_mcf", Config: ConfigSpec{VP: "bogus"}},
		{TraceB64: "!!!not-base64!!!"},
	} {
		if _, _, err := ResolveJob(req); err == nil {
			t.Errorf("case %d: ResolveJob accepted an invalid request", i)
		}
		if _, err := ContentAddress(req); err == nil {
			t.Errorf("case %d: ContentAddress accepted an invalid request", i)
		}
	}
}
