package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"rfpsim/internal/isa"
	"rfpsim/internal/runner"
	"rfpsim/internal/sample"
	"rfpsim/internal/trace"
	"rfpsim/internal/tracefile"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func postSim(t *testing.T, ts *httptest.Server, req SimRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sim", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// quickReq is a small but real simulation (~tens of ms).
func quickReq() SimRequest {
	return SimRequest{
		Workload:    "spec06_mcf",
		Config:      ConfigSpec{RFP: true},
		WarmupUops:  5000,
		MeasureUops: 10000,
	}
}

// TestCacheHitIsByteIdentical is the end-to-end determinism/caching check:
// two identical POSTs return byte-identical bodies, the second from the
// cache, and /metrics reflects one miss and one hit.
func TestCacheHitIsByteIdentical(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 2})
	resp1, body1 := postSim(t, ts, quickReq())
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Rfpsimd-Cache"); got != "miss" {
		t.Errorf("first POST cache header = %q, want miss", got)
	}
	resp2, body2 := postSim(t, ts, quickReq())
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Rfpsimd-Cache"); got != "hit" {
		t.Errorf("second POST cache header = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("cached body differs from computed body:\n%s\nvs\n%s", body1, body2)
	}
	var sr SimResponse
	if err := json.Unmarshal(body1, &sr); err != nil {
		t.Fatalf("bad response body: %v", err)
	}
	if sr.Cycles == 0 || sr.Instructions == 0 || sr.Stats == nil {
		t.Errorf("response missing simulation results: %+v", sr)
	}
	if h, m := svc.Metrics().cacheHits.Load(), svc.Metrics().cacheMisses.Load(); h != 1 || m != 1 {
		t.Errorf("cache metrics hits=%d misses=%d, want 1/1", h, m)
	}
}

// TestServiceMatchesDirectRunner pins the service path to the batch path:
// the same job submitted over HTTP and run through runner.Run (what
// cmd/rfpsim executes) must report the same cycle count.
func TestServiceMatchesDirectRunner(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, body := postSim(t, ts, quickReq())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}
	var sr SimResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}

	spec, ok := trace.ByName("spec06_mcf")
	if !ok {
		t.Fatal("spec06_mcf missing from catalog")
	}
	cfg, err := ConfigSpec{RFP: true}.Build()
	if err != nil {
		t.Fatal(err)
	}
	st, err := runner.Run(context.Background(), runner.Job{
		Config: cfg, Spec: spec, WarmupUops: 5000, MeasureUops: 10000, Seeds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != sr.Cycles || st.Instructions != sr.Instructions {
		t.Errorf("service path diverges from direct runner: service %d cycles / %d uops, direct %d / %d",
			sr.Cycles, sr.Instructions, st.Cycles, st.Instructions)
	}
}

// TestSampledSimEndpoint runs a sampled job over HTTP end to end: the
// response must echo the normalized sampling spec, summarize the replay
// plan, match the in-process sample.RunResult path exactly, and cache
// separately from the full-window twin.
func TestSampledSimEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	req := SimRequest{
		Workload:    "spec06_mcf",
		Config:      ConfigSpec{RFP: true},
		WarmupUops:  10000,
		MeasureUops: 20000,
		Sampling:    &SamplingSpec{},
	}
	resp, body := postSim(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}
	var sr SimResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Sampling == nil || sr.Sampling.IntervalUops != 2000 || sr.Sampling.MaxK != 5 {
		t.Fatalf("response sampling echo = %+v, want normalized defaults", sr.Sampling)
	}
	if sr.SampledPoints < 1 || sr.SampledPoints > 5 {
		t.Errorf("sampled points = %d, want 1..5", sr.SampledPoints)
	}
	if sr.SampledUops != uint64(sr.SampledPoints)*2000 {
		t.Errorf("sampled uops = %d with %d points", sr.SampledUops, sr.SampledPoints)
	}

	job, _, err := ResolveJob(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sample.RunResult(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles != sr.Cycles || res.Stats.Instructions != sr.Instructions {
		t.Errorf("service sampled path diverges from sample.RunResult: service %d cycles / %d uops, direct %d / %d",
			sr.Cycles, sr.Instructions, res.Stats.Cycles, res.Stats.Instructions)
	}

	// The full-window twin must compute fresh (distinct cache entry) and
	// report no sampling block.
	full := req
	full.Sampling = nil
	respF, bodyF := postSim(t, ts, full)
	if respF.StatusCode != http.StatusOK {
		t.Fatalf("full POST: %d %s", respF.StatusCode, bodyF)
	}
	if got := respF.Header.Get("X-Rfpsimd-Cache"); got != "miss" {
		t.Errorf("full twin served from cache (%q) — sampled and full keys collide", got)
	}
	var fr SimResponse
	if err := json.Unmarshal(bodyF, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Sampling != nil || fr.SampledPoints != 0 || fr.SampledUops != 0 {
		t.Errorf("full run reports sampling fields: %+v", fr)
	}
}

// TestTimeoutCancelsPromptlyWithoutLeak submits a job that cannot finish
// within its 1ms budget and asserts it returns quickly with a cancellation
// status, that /metrics records it, and that no worker or handler
// goroutine leaks (NumGoroutine settles back).
func TestTimeoutCancelsPromptlyWithoutLeak(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1})
	before := runtime.NumGoroutine()

	req := quickReq()
	req.MeasureUops = 40_000_000 // minutes of simulation if not cancelled
	req.TimeoutMS = 1
	start := time.Now()
	resp, body := postSim(t, ts, req)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status = %d %s, want 408", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Status != "cancelled" {
		t.Errorf("body = %s, want status cancelled", body)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %s, want prompt return", elapsed)
	}
	if got := svc.Metrics().jobsCancelled.Load(); got != 1 {
		t.Errorf("jobs cancelled metric = %d, want 1", got)
	}

	// The worker must be idle again and nothing may have leaked.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		if svc.Metrics().jobsRunning.Load() == 0 && runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: before=%d now=%d running=%d",
		before, runtime.NumGoroutine(), svc.Metrics().jobsRunning.Load())
}

// TestMetricsEndpoint checks the Prometheus exposition after a mixed
// workload of outcomes.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	postSim(t, ts, quickReq()) // miss + ok
	postSim(t, ts, quickReq()) // hit
	timedOut := quickReq()
	timedOut.MeasureUops = 40_000_000
	timedOut.TimeoutMS = 1
	postSim(t, ts, timedOut) // cancelled

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{
		"rfpsimd_jobs_done_total{status=\"ok\"} 1",
		"rfpsimd_jobs_done_total{status=\"cancelled\"} 1",
		"rfpsimd_cache_hits_total 1",
		"rfpsimd_cache_misses_total 2", // the ok job and the cancelled job
		"rfpsimd_jobs_queued 0",
		"rfpsimd_jobs_running 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "rfpsimd_sim_cycles_total") {
		t.Errorf("/metrics missing sim cycle counter")
	}
}

// TestBackpressure429 fills the one-deep queue behind a slow job and
// asserts the next job is rejected with 429 rather than queued unboundedly.
func TestBackpressure429(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})

	slow := quickReq()
	slow.MeasureUops = 40_000_000
	slow.TimeoutMS = (10 * time.Second).Milliseconds()

	// The blocking requests are cancelled via ctx when the test ends, so
	// Cleanup's svc.Close() drains promptly.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	post := func(r SimRequest) {
		b, _ := json.Marshal(r)
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sim", bytes.NewReader(b))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}
	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s (running=%d queued=%d)",
			desc, svc.Metrics().jobsRunning.Load(), svc.Metrics().jobsQueued.Load())
	}

	// Occupy the worker, then the single queue slot, sequentially so the
	// second job cannot race the worker for the buffer.
	first := slow
	go post(first)
	waitFor("worker busy", func() bool { return svc.Metrics().jobsRunning.Load() == 1 })
	second := slow
	second.MeasureUops++ // distinct cache key
	go post(second)
	waitFor("queue full", func() bool { return svc.Metrics().jobsQueued.Load() == 1 })

	third := slow
	third.MeasureUops += 7
	b, _ := json.Marshal(third)
	resp, err := http.Post(ts.URL+"/v1/sim", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterQueueFull {
		t.Errorf("429 Retry-After = %q, want %q", got, retryAfterQueueFull)
	}
	if got := svc.Metrics().jobsRejected.Load(); got != 1 {
		t.Errorf("jobs rejected metric = %d, want 1", got)
	}
}

// TestTraceUpload round-trips an uploaded .rfpt trace through the service.
func TestTraceUpload(t *testing.T) {
	spec, ok := trace.ByName("spec06_hmmer")
	if !ok {
		t.Fatal("spec06_hmmer missing")
	}
	gen := spec.New()
	var buf bytes.Buffer
	w := tracefile.NewWriter(&buf)
	var op isa.MicroOp
	for i := 0; i < 30000; i++ {
		if !gen.Next(&op) {
			break
		}
		if err := w.Write(&op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Options{Workers: 1})
	req := SimRequest{
		TraceB64:    base64.StdEncoding.EncodeToString(buf.Bytes()),
		Config:      ConfigSpec{RFP: true},
		WarmupUops:  5000,
		MeasureUops: 10000,
	}
	resp, body := postSim(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace POST: %d %s", resp.StatusCode, body)
	}
	var sr SimResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Instructions == 0 || !strings.HasPrefix(sr.Workload, "trace:") {
		t.Errorf("trace run result looks wrong: %+v", sr)
	}
	// Identical upload is a cache hit too (content-addressed).
	resp2, body2 := postSim(t, ts, req)
	if got := resp2.Header.Get("X-Rfpsimd-Cache"); got != "hit" {
		t.Errorf("second trace POST cache header = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached trace body differs")
	}
}

// TestRequestValidation exercises the 400 paths.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []SimRequest{
		{},                             // neither workload nor trace
		{Workload: "no_such_workload"}, // unknown workload
		{Workload: "spec06_mcf", TraceB64: "AAAA"},                               // both set
		{Workload: "spec06_mcf", Config: ConfigSpec{VP: "bogus"}},                // bad vp
		{Workload: "spec06_mcf", Config: ConfigSpec{PAT: true}},                  // RFP knob without rfp
		{Workload: "spec06_mcf", Seeds: 1000000},                                 // over the uop ceiling
		{TraceB64: "!!!not-base64!!!"},                                           // bad base64
		{TraceB64: base64.StdEncoding.EncodeToString([]byte("bogus")), Seeds: 2}, // trace + seeds
	}
	for i, req := range cases {
		resp, body := postSim(t, ts, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d (%s), want 400", i, resp.StatusCode, body)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/sim"); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/sim = %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestHealthzAndWorkloads smoke-tests the auxiliary endpoints.
func TestHealthzAndWorkloads(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}
	var h map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || h["status"] != "ok" {
		t.Errorf("healthz body = %v (%v)", h, err)
	}

	resp2, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var wl []map[string]string
	if err := json.NewDecoder(resp2.Body).Decode(&wl); err != nil {
		t.Fatal(err)
	}
	if len(wl) != len(trace.Catalog()) {
		t.Errorf("workloads listed %d, want %d", len(wl), len(trace.Catalog()))
	}
}

// TestDrainRefusesNewJobs verifies graceful-drain semantics: after Close,
// enqueue refuses with a draining signal and healthz reports it.
func TestDrainRefusesNewJobs(t *testing.T) {
	svc, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	svc.Close()

	b, _ := json.Marshal(quickReq())
	resp, err := http.Post(ts.URL+"/v1/sim", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST while draining = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterDrain {
		t.Errorf("503 Retry-After = %q, want %q", got, retryAfterDrain)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz while draining = %d, want 503", hresp.StatusCode)
	}
	if got := hresp.Header.Get("Retry-After"); got != retryAfterDrain {
		t.Errorf("/healthz draining Retry-After = %q, want %q", got, retryAfterDrain)
	}
}

// TestChecksKnob pins the checks wire knob: a checked job runs with the
// invariant layer on (the stats block carries the checker counters and,
// on a healthy model, zero violations feed the
// rfpsim_check_violations_total counter), keys a distinct content
// address from its unchecked twin, and reports identical timing results
// — the checker is observability, never behavior.
func TestChecksKnob(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 2})
	plain := quickReq()
	checked := quickReq()
	checked.Config.Checks = true

	kp, err := ContentAddress(plain)
	if err != nil {
		t.Fatal(err)
	}
	kc, err := ContentAddress(checked)
	if err != nil {
		t.Fatal(err)
	}
	if kp == kc {
		t.Fatal("checks knob must key a distinct content address")
	}

	resp1, body1 := postSim(t, ts, plain)
	resp2, body2 := postSim(t, ts, checked)
	if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d / %d", resp1.StatusCode, resp2.StatusCode)
	}
	var r1, r2 SimResponse
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Instructions != r2.Instructions {
		t.Fatalf("checker changed timing: %d/%d cycles, %d/%d instructions",
			r1.Cycles, r2.Cycles, r1.Instructions, r2.Instructions)
	}
	if r2.Stats.Checks.Total() != 0 {
		t.Fatalf("healthy model reported %d invariant violations", r2.Stats.Checks.Total())
	}
	if got := svc.Metrics().CheckViolations(); got != 0 {
		t.Fatalf("rfpsim_check_violations_total = %d, want 0", got)
	}
}
