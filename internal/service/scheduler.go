package service

import "sync"

// drrQuantum is the per-round deficit credit, in simulated uops (the unit
// of work the pool actually spends). Every tenant with queued work earns
// one quantum per scheduling round; a job dispatches when its tenant's
// accumulated deficit covers its TotalUops. Interactive tenants with
// small jobs therefore interleave at uop granularity with a bulk tenant's
// long queue instead of waiting behind it — classic deficit round-robin.
const drrQuantum = 64 * 1024

// tenantQueue is one tenant's FIFO plus its deficit counter.
type tenantQueue struct {
	jobs    []*job
	deficit uint64
}

// scheduler replaces the single FIFO job channel with per-tenant bounded
// queues drained by deficit round-robin. Admission (push) enforces both a
// per-tenant and a total bound, so one tenant saturating the daemon gets
// its own 429s while other tenants' queues stay open — the fair-share
// half of the fabric story (docs/fabric.md).
type scheduler struct {
	mu        sync.Mutex
	cond      *sync.Cond
	tenants   map[string]*tenantQueue
	order     []string // round-robin order over tenants with queued work
	rr        int      // next tenant index to credit
	perTenant int
	total     int
	queued    int
	closed    bool
}

func newScheduler(perTenant, total int) *scheduler {
	s := &scheduler{
		tenants:   make(map[string]*tenantQueue),
		perTenant: perTenant,
		total:     total,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// push admits a job to its tenant's queue. The outcomes mirror the old
// channel semantics: ok, queue-full (per-tenant or total), or draining.
func (s *scheduler) push(tenant string, j *job) (ok, draining bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, true
	}
	if s.queued >= s.total {
		return false, false
	}
	tq := s.tenants[tenant]
	if tq == nil {
		tq = &tenantQueue{}
		s.tenants[tenant] = tq
	}
	if len(tq.jobs) >= s.perTenant {
		return false, false
	}
	if len(tq.jobs) == 0 {
		s.order = append(s.order, tenant)
	}
	tq.jobs = append(tq.jobs, j)
	s.queued++
	s.cond.Signal()
	return true, false
}

// next blocks until a job is schedulable and returns it, or returns false
// once the scheduler is closed and fully drained (matching the old
// for-range-over-closed-channel worker loop).
func (s *scheduler) next() (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.queued > 0 {
			return s.dequeueLocked(), true
		}
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
}

// dequeueLocked runs DRR rounds until some tenant's head job is covered
// by its deficit. Deficits grow by one quantum per tenant per round, so
// the loop always terminates; a tenant whose queue empties leaves the
// rotation and forfeits its remaining deficit (standard DRR — an idle
// tenant must not bank credit).
func (s *scheduler) dequeueLocked() *job {
	for {
		if s.rr >= len(s.order) {
			s.rr = 0
		}
		name := s.order[s.rr]
		tq := s.tenants[name]
		tq.deficit += drrQuantum
		cost := tq.jobs[0].cost
		if tq.deficit >= cost {
			tq.deficit -= cost
			j := tq.jobs[0]
			copy(tq.jobs, tq.jobs[1:])
			tq.jobs[len(tq.jobs)-1] = nil
			tq.jobs = tq.jobs[:len(tq.jobs)-1]
			s.queued--
			if len(tq.jobs) == 0 {
				tq.deficit = 0
				s.order = append(s.order[:s.rr], s.order[s.rr+1:]...)
				// rr now points at the next tenant already.
			} else {
				s.rr++
			}
			return j
		}
		s.rr++
	}
}

// close stops admission and wakes every waiting worker; queued jobs still
// drain (next keeps returning them until empty).
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// depth returns the total queued job count.
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// tenantsQueued returns how many tenants currently have queued work.
func (s *scheduler) tenantsQueued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}
