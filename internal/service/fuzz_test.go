package service

import (
	"encoding/json"
	"testing"
)

// FuzzServiceRequest feeds arbitrary JSON through the daemon's request
// resolution path: decoding and resolving must never panic, and any
// request that resolves must key a stable, non-empty content address —
// resolving twice yields the same key (the property the result cache,
// the sweep checkpoint and cross-process dedup all assume). Seed corpus
// under testdata/fuzz/FuzzServiceRequest.
func FuzzServiceRequest(f *testing.F) {
	f.Add([]byte(`{"workload":"spec06_mcf","config":{"rfp":true},"warmup_uops":2000,"measure_uops":4000}`))
	f.Add([]byte(`{"workload":"hadoop","config":{"vp":"eves","checks":true},"sampling":{"max_k":2}}`))
	f.Add([]byte(`{"trace_b64":"UkZQVA==","config":{}}`))
	f.Add([]byte(`{"workload":"spec17_mcf","config":{"rfp":true,"pt_entries":128,"late_reg_alloc":true},"seeds":3}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req SimRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return // not a request: fine
		}
		if len(req.TraceB64) > 1<<16 {
			return // bound decode work; size limits are the HTTP layer's job
		}
		rj, err := resolveRequest(req)
		if err != nil {
			return // rejected: fine
		}
		if rj.key == "" {
			t.Fatal("resolved request has an empty content address")
		}
		again, err := resolveRequest(req)
		if err != nil {
			t.Fatalf("second resolution of an accepted request failed: %v", err)
		}
		if again.key != rj.key {
			t.Fatalf("content address not stable: %s vs %s", rj.key, again.key)
		}
	})
}
