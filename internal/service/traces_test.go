package service

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rfpsim/internal/fabric"
	"rfpsim/internal/isa"
	"rfpsim/internal/trace"
	"rfpsim/internal/tracefile"
)

// validTraceBytes encodes n uops of a catalog workload as raw .rfpt
// bytes — what POST /v1/traces accepts on the wire.
func validTraceBytes(t *testing.T, workload string, n int) []byte {
	t.Helper()
	spec, ok := trace.ByName(workload)
	if !ok {
		t.Fatalf("%s missing from catalog", workload)
	}
	gen := spec.New()
	var buf bytes.Buffer
	w := tracefile.NewWriter(&buf)
	var op isa.MicroOp
	for i := 0; i < n; i++ {
		if !gen.Next(&op) {
			t.Fatalf("generator ended at uop %d", i)
		}
		if err := w.Write(&op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newTS wraps a server without t.Cleanup so restart tests control the
// shutdown order themselves.
func newTS(svc *Server) *httptest.Server { return httptest.NewServer(svc.Handler()) }

func postSimURL(t *testing.T, url string, req SimRequest) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sim", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func postTrace(t *testing.T, url string, raw []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/traces", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestTracesEndpoint drives POST/GET /v1/traces: upload, content address,
// dedup on identical bytes, the listing, and per-address lookup.
func TestTracesEndpoint(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1})
	raw := validTraceBytes(t, "spec06_hmmer", 8000)
	wantAddr := TraceAddress(raw)

	resp, body := postTrace(t, ts.URL, raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	var up TraceUploadResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up.Address != wantAddr || up.Workload != TraceWorkloadPrefix+wantAddr || up.Dedup {
		t.Errorf("upload response = %+v, want address %s, dedup=false", up, wantAddr)
	}
	if up.Uops == 0 || up.Bytes != int64(len(raw)) {
		t.Errorf("upload response sizes wrong: %+v (raw %d bytes)", up, len(raw))
	}

	// Identical bytes dedup; the store keeps one copy.
	resp, body = postTrace(t, ts.URL, raw)
	var again TraceUploadResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatalf("re-upload: %d %s: %v", resp.StatusCode, body, err)
	}
	if !again.Dedup || again.Address != wantAddr {
		t.Errorf("re-upload = %+v, want dedup of %s", again, wantAddr)
	}
	if n := svc.Traces().Len(); n != 1 {
		t.Errorf("store holds %d traces after dedup, want 1", n)
	}
	if got := svc.Metrics().tracesUploaded.Load(); got != 2 {
		t.Errorf("rfpsimd_traces_uploaded_total = %d, want 2 (dedups count)", got)
	}

	// Listing and per-address lookup.
	res, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list []TraceInfo
	if err := json.NewDecoder(res.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(list) != 1 || list[0].Address != wantAddr {
		t.Errorf("trace list = %+v", list)
	}
	res, err = http.Get(ts.URL + "/v1/traces/" + wantAddr)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Errorf("GET by address = %d", res.StatusCode)
	}
	res, err = http.Get(ts.URL + "/v1/traces/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown address = %d, want 404", res.StatusCode)
	}
	res, err = http.Get(ts.URL + "/v1/traces/nothex")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("GET malformed address = %d, want 400", res.StatusCode)
	}
}

// TestTraceRejectsCounted pins satellite behavior: undecodable uploads
// and /v1/sim references to unknown trace addresses return structured
// JSON errors AND count into rfpsimd_trace_rejects_total.
func TestTraceRejectsCounted(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1})

	resp, body := postTrace(t, ts.URL, []byte("not a trace at all"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload = %d %s, want 400", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Status != "invalid" || !strings.Contains(e.Error, "bad trace upload") {
		t.Errorf("garbage upload error body = %s (err=%v)", body, err)
	}

	// A sim referencing a never-uploaded address is a trace reject too.
	unknown := SimRequest{
		Workload: TraceWorkloadPrefix + strings.Repeat("a", 64),
		Config:   ConfigSpec{RFP: true},
	}
	resp2, body2 := postSim(t, ts, unknown)
	if resp2.StatusCode != http.StatusBadRequest || !strings.Contains(string(body2), "unknown trace address") {
		t.Errorf("unknown trace sim = %d %s, want 400", resp2.StatusCode, body2)
	}
	// Inline uploads of undecodable bytes reject on the sim path as well.
	resp3, _ := postSim(t, ts, SimRequest{TraceB64: base64.StdEncoding.EncodeToString([]byte("bogus"))})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus inline trace sim = %d, want 400", resp3.StatusCode)
	}
	// A malformed address (not 64-hex) rejects and counts too.
	resp4, _ := postSim(t, ts, SimRequest{Workload: TraceWorkloadPrefix + "abc"})
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed trace address sim = %d, want 400", resp4.StatusCode)
	}

	if got := svc.Metrics().traceRejects.Load(); got != 4 {
		t.Errorf("rfpsimd_trace_rejects_total = %d, want 4", got)
	}
	// The counter is on /metrics under its documented name.
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(metrics), "rfpsimd_trace_rejects_total 4") {
		t.Errorf("/metrics missing rfpsimd_trace_rejects_total 4:\n%s", metrics)
	}
}

// TestTraceByReferenceSharesInlineCacheEntry: submitting "trace:<addr>"
// after an upload produces the same body AND the same cache entry as an
// inline trace_b64 submission of the identical bytes — the address IS the
// content digest, so the two submission paths converge by construction.
func TestTraceByReferenceSharesInlineCacheEntry(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	raw := validTraceBytes(t, "spec06_mcf", 16000)

	_, upBody := postTrace(t, ts.URL, raw)
	var up TraceUploadResponse
	if err := json.Unmarshal(upBody, &up); err != nil {
		t.Fatal(err)
	}

	byRef := SimRequest{
		Workload:    up.Workload,
		Config:      ConfigSpec{RFP: true},
		WarmupUops:  2000,
		MeasureUops: 8000,
	}
	resp, refBody := postSim(t, ts, byRef)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("by-reference sim: %d %s", resp.StatusCode, refBody)
	}
	if got := resp.Header.Get(CacheHeader); got != "miss" {
		t.Errorf("first by-reference sim tier = %q, want miss", got)
	}

	inline := byRef
	inline.Workload = ""
	inline.TraceB64 = base64.StdEncoding.EncodeToString(raw)
	resp2, inlineBody := postSim(t, ts, inline)
	if got := resp2.Header.Get(CacheHeader); got != "hit" {
		t.Errorf("inline twin tier = %q, want hit (shared cache entry)", got)
	}
	if !bytes.Equal(refBody, inlineBody) {
		t.Error("by-reference and inline bodies differ for identical trace bytes")
	}
}

// TestSampledTraceRun: sampling now works on uploaded traces (the NewGen
// factory re-decodes the stored bytes per profiling/replay pass), and the
// sampled result echoes the plan like a catalog run would.
func TestSampledTraceRun(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	raw := validTraceBytes(t, "spec06_hmmer", 40000)
	_, upBody := postTrace(t, ts.URL, raw)
	var up TraceUploadResponse
	if err := json.Unmarshal(upBody, &up); err != nil {
		t.Fatal(err)
	}

	req := SimRequest{
		Workload:    up.Workload,
		Config:      ConfigSpec{RFP: true},
		WarmupUops:  2000,
		MeasureUops: 30000,
		Sampling:    &SamplingSpec{},
	}
	resp, body := postSim(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sampled trace sim: %d %s", resp.StatusCode, body)
	}
	var sr SimResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Sampling == nil || sr.SampledPoints == 0 {
		t.Errorf("sampled trace run did not echo a replay plan: %+v", sr)
	}
	if sr.IPC <= 0 {
		t.Errorf("sampled trace run IPC = %v", sr.IPC)
	}
}

// TestTraceStoreSurvivesRestart: with a fabric disk tier, an uploaded
// trace outlives the daemon process — a fresh server on the same cache
// directory starts with an empty in-memory store, yet the same address
// dedups on re-upload and resolves for simulation.
func TestTraceStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	boot := func() (*Server, string, func()) {
		svc, err := New(Options{Workers: 1, Fabric: fabric.Options{Dir: dir}})
		if err != nil {
			t.Fatal(err)
		}
		ts := newTS(svc)
		return svc, ts.URL, func() { ts.Close(); svc.Close() }
	}

	raw := validTraceBytes(t, "spec06_mcf", 8000)
	addr := TraceAddress(raw)

	svc1, url1, stop1 := boot()
	if _, body := postTrace(t, url1, raw); !strings.Contains(string(body), addr) {
		t.Fatalf("upload failed: %s", body)
	}
	if svc1.Traces().Len() != 1 {
		t.Fatal("trace not in memory after upload")
	}
	stop1()

	svc2, url2, stop2 := boot()
	defer stop2()
	if n := svc2.Traces().Len(); n != 0 {
		t.Fatalf("fresh server has %d traces in memory, want 0", n)
	}
	// Re-upload dedups against the disk tier without re-storing.
	_, body := postTrace(t, url2, raw)
	var up TraceUploadResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if !up.Dedup {
		t.Error("re-upload after restart did not dedup via the disk tier")
	}
	// And the address resolves for simulation (promoting into memory).
	req := SimRequest{
		Workload:    TraceWorkloadPrefix + addr,
		Config:      ConfigSpec{RFP: true},
		WarmupUops:  1000,
		MeasureUops: 4000,
	}
	svcResp, simBody := postSimURL(t, url2, req)
	if svcResp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart trace sim: %d %s", svcResp.StatusCode, simBody)
	}
	if svc2.Traces().Len() != 1 {
		t.Error("resolved trace was not promoted into memory")
	}
}
