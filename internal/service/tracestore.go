package service

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"rfpsim/internal/isa"
	"rfpsim/internal/tracefile"
)

// TraceWorkloadPrefix marks a workload reference to an uploaded trace:
// "trace:" followed by the 64-hex SHA-256 of the raw .rfpt bytes (the
// address POST /v1/traces returned). The same prefix appears, with a
// shortened digest, as the Spec.Name of every trace-sourced job, so
// responses and CSV rows are labelled consistently across inline
// (trace_b64) and by-reference submissions.
const TraceWorkloadPrefix = "trace:"

// Trace bytes are small next to result bodies, but a store full of
// multi-megabyte uploads still needs bounds; whichever cap is hit first
// evicts LRU-wise (the persistent tier, when configured, keeps serving
// evicted addresses).
const (
	defaultTraceEntries = 64
	defaultTraceBytes   = 256 << 20
)

// TraceDiskTier is the persistent tier behind a TraceStore. It is the
// subset of *fabric.Fabric the store uses: traces live in the same
// content-addressed disk cache as result bodies (one immutable byte
// string per address, docs/fabric.md), which is what lets an uploaded
// trace survive a daemon restart.
type TraceDiskTier interface {
	// DiskGet returns the body stored under addr, if any.
	DiskGet(addr string) ([]byte, bool)
	// DiskPut persists body under addr (best-effort).
	DiskPut(addr string, body []byte)
	// HasDisk reports whether a disk tier is actually configured.
	HasDisk() bool
}

// TraceInfo describes one stored trace.
type TraceInfo struct {
	// Address is the SHA-256 of the raw trace bytes.
	Address string `json:"address"`
	// Workload is the ready-to-use workload reference ("trace:<address>").
	Workload string `json:"workload"`
	// Bytes is the encoded trace size.
	Bytes int64 `json:"bytes"`
	// Uops is the decoded micro-op count.
	Uops uint64 `json:"uops"`
}

// TraceStore holds uploaded .rfpt traces content-addressed by the
// SHA-256 of their raw bytes: a bounded in-memory LRU working set in
// front of an optional persistent tier (the fabric disk cache). Add
// fully decodes every upload, so a stored trace is guaranteed to
// instantiate as a generator later; Get transparently promotes disk-tier
// entries back into memory, which is how a trace uploaded before a
// daemon restart keeps resolving after it.
type TraceStore struct {
	mu         sync.Mutex
	entries    map[string]*list.Element
	lru        *list.List // front = most recently used
	maxEntries int
	maxBytes   int64
	totalBytes int64
	disk       TraceDiskTier // nil or HasDisk()==false when memory-only
}

type traceStoreEntry struct {
	info TraceInfo
	raw  []byte
}

// NewTraceStore builds a store bounded by maxEntries in-memory traces and
// maxBytes total raw bytes (0 selects the defaults: 64 entries, 256 MiB),
// with disk as the optional persistent tier.
func NewTraceStore(maxEntries int, maxBytes int64, disk TraceDiskTier) *TraceStore {
	if maxEntries <= 0 {
		maxEntries = defaultTraceEntries
	}
	if maxBytes <= 0 {
		maxBytes = defaultTraceBytes
	}
	return &TraceStore{
		entries:    make(map[string]*list.Element),
		lru:        list.New(),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		disk:       disk,
	}
}

// TraceAddress returns the content address of raw trace bytes: the
// lowercase-hex SHA-256 over the exact bytes uploaded, identical to the
// digest keying a trace_b64 inline upload — the two submission paths
// share cache entries by construction.
func TraceAddress(raw []byte) string {
	digest := sha256.Sum256(raw)
	return hex.EncodeToString(digest[:])
}

// decodeTrace validates raw as a complete .rfpt stream and counts its
// uops. A trace that fails here is rejected at upload time instead of
// failing later inside a worker.
func decodeTrace(raw []byte) (uops uint64, err error) {
	r, err := tracefile.NewReader(bytes.NewReader(raw), "upload")
	if err != nil {
		return 0, err
	}
	var op isa.MicroOp
	for r.Next(&op) {
		uops++
	}
	if err := r.Err(); err != nil {
		return 0, err
	}
	if uops == 0 {
		return 0, fmt.Errorf("trace contains no uops")
	}
	return uops, nil
}

// Add validates and stores a trace, returning its info and whether the
// identical bytes were already present (in memory or on the persistent
// tier). Rejected traces (bad magic, truncated records, empty stream) are
// not stored anywhere.
func (s *TraceStore) Add(raw []byte) (TraceInfo, bool, error) {
	uops, err := decodeTrace(raw)
	if err != nil {
		return TraceInfo{}, false, err
	}
	addr := TraceAddress(raw)
	info := TraceInfo{
		Address:  addr,
		Workload: TraceWorkloadPrefix + addr,
		Bytes:    int64(len(raw)),
		Uops:     uops,
	}

	s.mu.Lock()
	if el, ok := s.entries[addr]; ok {
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return info, true, nil
	}
	s.mu.Unlock()

	dedup := false
	if s.hasDisk() {
		if _, ok := s.disk.DiskGet(addr); ok {
			dedup = true // identical bytes survived from an earlier upload
		} else {
			s.disk.DiskPut(addr, raw)
		}
	}
	s.mu.Lock()
	s.insertLocked(info, raw)
	s.mu.Unlock()
	return info, dedup, nil
}

// Get returns the raw bytes and info of a stored trace, falling back to
// (and promoting from) the persistent tier on a memory miss.
func (s *TraceStore) Get(addr string) ([]byte, TraceInfo, bool) {
	s.mu.Lock()
	if el, ok := s.entries[addr]; ok {
		s.lru.MoveToFront(el)
		e := el.Value.(*traceStoreEntry)
		s.mu.Unlock()
		return e.raw, e.info, true
	}
	s.mu.Unlock()

	if !s.hasDisk() {
		return nil, TraceInfo{}, false
	}
	raw, ok := s.disk.DiskGet(addr)
	if !ok || TraceAddress(raw) != addr {
		// The disk tier also stores result bodies; an address that does
		// not hash to its own content cannot be a trace we stored.
		return nil, TraceInfo{}, false
	}
	uops, err := decodeTrace(raw)
	if err != nil {
		return nil, TraceInfo{}, false // a result body, not a trace
	}
	info := TraceInfo{
		Address:  addr,
		Workload: TraceWorkloadPrefix + addr,
		Bytes:    int64(len(raw)),
		Uops:     uops,
	}
	s.mu.Lock()
	s.insertLocked(info, raw)
	s.mu.Unlock()
	return raw, info, true
}

// List returns the in-memory working set, most recently used first.
// Traces evicted to the persistent tier are not listed but still resolve
// by address.
func (s *TraceStore) List() []TraceInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceInfo, 0, len(s.entries))
	for el := s.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*traceStoreEntry).info)
	}
	return out
}

// Len returns the in-memory trace count.
func (s *TraceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

func (s *TraceStore) hasDisk() bool { return s.disk != nil && s.disk.HasDisk() }

func (s *TraceStore) insertLocked(info TraceInfo, raw []byte) {
	if el, ok := s.entries[info.Address]; ok {
		s.lru.MoveToFront(el)
		return
	}
	s.entries[info.Address] = s.lru.PushFront(&traceStoreEntry{info: info, raw: raw})
	s.totalBytes += info.Bytes
	for (len(s.entries) > s.maxEntries || s.totalBytes > s.maxBytes) && s.lru.Len() > 1 {
		victim := s.lru.Back()
		e := victim.Value.(*traceStoreEntry)
		s.lru.Remove(victim)
		delete(s.entries, e.info.Address)
		s.totalBytes -= e.info.Bytes
	}
}
