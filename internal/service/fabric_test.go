package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rfpsim/internal/fabric"
)

// postSimTenant is postSim with a tenant header.
func postSimTenant(t *testing.T, ts *httptest.Server, req SimRequest, tenant string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sim", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(TenantHeader, tenant)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := new(bytes.Buffer)
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

// TestWarmStartFromDiskCache pins the persistence contract end to end: a
// result computed before a daemon restart is served from disk — with the
// disk tier header and a byte-identical body — by the next daemon over
// the same cache directory.
func TestWarmStartFromDiskCache(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Workers: 2, Fabric: fabric.Options{Dir: dir}}

	svc1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(svc1.Handler())
	resp1, body1 := postSim(t, ts1, quickReq())
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get(CacheHeader); got != "miss" {
		t.Fatalf("first POST cache header = %q, want miss", got)
	}
	ts1.Close()
	svc1.Close() // flushes disk writes

	// "Restart": a fresh daemon (empty memory cache) over the same dir.
	_, ts2 := newTestServer(t, opts)
	resp2, body2 := postSim(t, ts2, quickReq())
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm-start POST: %d %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get(CacheHeader); got != "disk" {
		t.Errorf("warm-start cache header = %q, want disk", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("warm-start body differs from computed body:\n%s\nvs\n%s", body1, body2)
	}
	// Promotion: the disk hit landed in memory, so the next is a memory hit.
	resp3, _ := postSim(t, ts2, quickReq())
	if got := resp3.Header.Get(CacheHeader); got != "hit" {
		t.Errorf("post-promotion cache header = %q, want hit", got)
	}
}

// TestCorruptDiskEntryResimulates pins the fabric safety property at the
// service layer: a corrupted persistent entry is never served — the
// daemon detects it, falls through to simulation, and the recomputed body
// matches the original bytes.
func TestCorruptDiskEntryResimulates(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Workers: 2, Fabric: fabric.Options{Dir: dir}}

	svc1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(svc1.Handler())
	_, body1 := postSim(t, ts1, quickReq())
	ts1.Close()
	svc1.Close()

	// Flip a byte in the single on-disk entry.
	var entryPath string
	filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && info.Mode().IsRegular() {
			entryPath = p
		}
		return nil
	})
	if entryPath == "" {
		t.Fatal("no disk entry written")
	}
	raw, err := os.ReadFile(entryPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(entryPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	svc2, ts2 := newTestServer(t, opts)
	resp, body2 := postSim(t, ts2, quickReq())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST over corrupt entry: %d %s", resp.StatusCode, body2)
	}
	if got := resp.Header.Get(CacheHeader); got != "miss" {
		t.Errorf("cache header = %q, want miss (re-simulated)", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("re-simulated body differs from the original computation")
	}
	if svc2.metrics.jobsOK.Load() != 1 {
		t.Errorf("jobs ok = %d, want 1 (one real re-simulation)", svc2.metrics.jobsOK.Load())
	}
}

// TestSingleFlightDedup pins the dedup contract: concurrent identical
// requests simulate once; followers serve the leader's bytes with the
// dedup tier header.
func TestSingleFlightDedup(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1})
	req := quickReq()
	req.MeasureUops = 60000 // long enough that all posts overlap the one simulation

	const n = 8
	var wg sync.WaitGroup
	tiers := make([]string, n)
	bodies := make([][]byte, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postSim(t, ts, req)
			codes[i], tiers[i], bodies[i] = resp.StatusCode, resp.Header.Get(CacheHeader), body
		}(i)
	}
	wg.Wait()

	misses, dedups := 0, 0
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		switch tiers[i] {
		case "miss":
			misses++
		case "dedup", "hit":
			dedups++
		default:
			t.Errorf("request %d served from unexpected tier %q", i, tiers[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs", i)
		}
	}
	if misses != 1 {
		t.Errorf("%d requests simulated, want exactly 1", misses)
	}
	if got := svc.metrics.jobsOK.Load(); got != 1 {
		t.Errorf("jobs ok = %d, want 1", got)
	}
	if svc.metrics.fabricDedup.Load() == 0 {
		t.Error("no request was coalesced — the posts did not overlap?")
	}
}

// TestFairShareInteractiveUnderBulk pins the DRR admission property: with
// one worker saturated by a bulk tenant's queue of heavy jobs, a small
// interactive job from another tenant completes while most of the bulk
// queue is still pending — it does not wait behind the whole backlog.
// The assertion is order-based (pending bulk count at the moment the
// interactive job returns), not timing-based.
func TestFairShareInteractiveUnderBulk(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 32, TenantQueueDepth: 16})

	bulkReq := func(i int) SimRequest {
		r := quickReq()
		r.MeasureUops = 100000
		r.Config.PTEntries = []int{128, 256, 512, 1024}[i%4]
		r.Seeds = 1 + i/4 // distinct content addresses per job
		return r
	}
	const bulk = 6
	var wg sync.WaitGroup
	for i := 0; i < bulk; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postSimTenant(t, ts, bulkReq(i), "bulk")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("bulk %d: %d %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	defer wg.Wait()

	// Wait until the bulk tenant has the worker busy and a deep queue.
	deadline := time.Now().Add(5 * time.Second)
	for svc.sched.depth() < bulk-1 {
		if time.Now().After(deadline) {
			t.Fatalf("bulk queue never filled: depth %d", svc.sched.depth())
		}
		time.Sleep(time.Millisecond)
	}

	ui := quickReq() // 15K uops against the bulk jobs' 105K each
	resp, body := postSimTenant(t, ts, ui, "interactive")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive job: %d %s", resp.StatusCode, body)
	}
	if pending := svc.sched.depth(); pending < 2 {
		t.Errorf("interactive job done with only %d bulk jobs pending — it waited behind the backlog", pending)
	}
}

// TestTenantQueueBoundIsolates pins per-tenant admission: one tenant
// filling its own queue gets 429s while another tenant's requests are
// still accepted.
func TestTenantQueueBoundIsolates(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 32, TenantQueueDepth: 2})

	variant := func(seeds int, measure uint64) SimRequest {
		r := quickReq()
		r.Seeds = seeds
		r.MeasureUops = measure
		return r
	}

	// Occupy the worker, then fill tenant A's queue of 2.
	var wg sync.WaitGroup
	post := func(req SimRequest, tenant string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postSimTenant(t, ts, req, tenant)
		}()
	}
	post(variant(1, 100000), "bulk")
	deadline := time.Now().Add(5 * time.Second)
	for svc.metrics.jobsRunning.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	post(variant(2, 100000), "bulk")
	post(variant(3, 100000), "bulk")
	for svc.sched.depth() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("bulk queue never filled: depth %d", svc.sched.depth())
		}
		time.Sleep(time.Millisecond)
	}

	// Tenant A's queue is full: its next job bounces.
	respA, bodyA := postSimTenant(t, ts, variant(4, 100000), "bulk")
	if respA.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota bulk job: %d %s, want 429", respA.StatusCode, bodyA)
	}
	if respA.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Another tenant is unaffected by A's saturation.
	respB, bodyB := postSimTenant(t, ts, variant(1, 20000), "other")
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("other tenant's job: %d %s, want 200", respB.StatusCode, bodyB)
	}
	wg.Wait()
}

// TestPeerTimeoutFallsBackToLocalSim pins the degradation property at the
// service layer: when the shard owner for a request hangs, the daemon
// eats the bounded peer timeout and then simulates locally — the client
// still gets a correct 200, never an error.
func TestPeerTimeoutFallsBackToLocalSim(t *testing.T) {
	release := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer hang.Close()
	defer close(release)

	self := "http://self.invalid:1"
	fopts := fabric.Options{
		Self:        self,
		Peers:       []string{self, hang.URL},
		PeerTimeout: 50 * time.Millisecond,
	}
	svc, ts := newTestServer(t, Options{Workers: 2, Fabric: fopts})

	// Find a request variant whose content address the hanging peer owns.
	probe, err := fabric.New(fopts)
	if err != nil {
		t.Fatal(err)
	}
	var req SimRequest
	found := false
	for seeds := 1; seeds <= 32 && !found; seeds++ {
		r := quickReq()
		r.Seeds = seeds
		addr, err := ContentAddress(r)
		if err != nil {
			t.Fatal(err)
		}
		if _, remote := probe.Owner(addr); remote {
			req, found = r, true
		}
	}
	if !found {
		t.Fatal("no request variant owned by the peer in 32 tries")
	}

	start := time.Now()
	resp, body := postSim(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST with hung owner: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(CacheHeader); got != "miss" {
		t.Errorf("cache header = %q, want miss (simulated locally)", got)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("request took %s; the peer timeout did not bound the stall", elapsed)
	}
	if svc.fabric.Metrics().PeerHits() != 0 {
		t.Error("hung peer recorded a hit")
	}
}
