package service

import (
	"io"
	"sync/atomic"

	"rfpsim/internal/obs"
)

// Metrics aggregates the service's observability counters. All fields are
// atomics so workers and handlers update them without locks; the block
// implements obs.Collector and is registered, together with the job
// latency and queue wait histograms, in the server's obs.Registry — the
// /metrics endpoint renders that registry, nothing else.
type Metrics struct {
	jobsQueued  atomic.Int64 // gauge: jobs accepted but not yet running
	jobsRunning atomic.Int64 // gauge: jobs currently simulating

	jobsOK        atomic.Uint64 // counter: jobs finished successfully
	jobsCancelled atomic.Uint64 // counter: jobs cancelled (timeout/disconnect)
	jobsFailed    atomic.Uint64 // counter: jobs that errored (wedge, bad trace)
	jobsRejected  atomic.Uint64 // counter: jobs refused with 429 (queue full)

	cacheHits      atomic.Uint64
	cacheMisses    atomic.Uint64
	cacheEvictions atomic.Uint64 // counter: in-memory LRU evictions
	fabricDedup    atomic.Uint64 // counter: requests coalesced onto an in-flight identical one

	tracesUploaded atomic.Uint64 // counter: traces accepted by POST /v1/traces
	traceRejects   atomic.Uint64 // counter: trace-sourced requests rejected (bad upload, unknown address)

	simCycles    atomic.Uint64 // total simulated cycles across all jobs
	simBusyNanos atomic.Uint64 // total wall time workers spent simulating

	l1pfIssued atomic.Uint64 // L1 hardware prefetches issued across all jobs
	l1pfUseful atomic.Uint64 // L1 hardware prefetches consumed by demand

	clpPredicted   atomic.Uint64 // confident cache-level predictions across all jobs
	clpCorrect     atomic.Uint64 // predictions matching the actual serving level
	clpSkippedDRAM atomic.Uint64 // RFP injections suppressed on a predicted DRAM hit
	clpEarlyArmed  atomic.Uint64 // prefetches armed early on a predicted near hit

	checkViolations atomic.Uint64 // invariant violations across checked jobs
}

// CheckViolations returns the invariant violations observed across all
// jobs that ran with the checker enabled (config.checks on the request).
func (m *Metrics) CheckViolations() uint64 { return m.checkViolations.Load() }

// WritePrometheus implements obs.Collector. The exposition format —
// metric names, label sets, ordering — is pinned by a golden test
// (TestMetricsExpositionGolden); treat any diff there as an API break for
// fleet dashboards.
func (m *Metrics) WritePrometheus(w io.Writer) {
	busy := float64(m.simBusyNanos.Load()) / 1e9
	cyclesPerSec := 0.0
	if busy > 0 {
		cyclesPerSec = float64(m.simCycles.Load()) / busy
	}
	obs.Gauge(w, "rfpsimd_jobs_queued", "Jobs accepted and waiting for a worker.", m.jobsQueued.Load())
	obs.Gauge(w, "rfpsimd_jobs_running", "Jobs currently simulating.", m.jobsRunning.Load())
	obs.Header(w, "rfpsimd_jobs_done_total", "counter", "Finished jobs by outcome.")
	obs.Sample(w, "rfpsimd_jobs_done_total", `status="ok"`, m.jobsOK.Load())
	obs.Sample(w, "rfpsimd_jobs_done_total", `status="cancelled"`, m.jobsCancelled.Load())
	obs.Sample(w, "rfpsimd_jobs_done_total", `status="error"`, m.jobsFailed.Load())
	obs.Counter(w, "rfpsimd_jobs_rejected_total", "Jobs refused with 429 because the queue was full.", m.jobsRejected.Load())
	obs.Counter(w, "rfpsimd_cache_hits_total", "Requests served from the result cache.", m.cacheHits.Load())
	obs.Counter(w, "rfpsimd_cache_misses_total", "Requests that had to simulate.", m.cacheMisses.Load())
	obs.Counter(w, "rfpsimd_cache_evictions_total", "Entries evicted from the in-memory result cache (LRU, docs/fabric.md).", m.cacheEvictions.Load())
	obs.Counter(w, "rfpsimd_fabric_dedup_total", "Requests coalesced onto a concurrent identical in-flight request.", m.fabricDedup.Load())
	obs.Counter(w, "rfpsimd_traces_uploaded_total", "Traces accepted by POST /v1/traces (re-uploads of identical bytes included).", m.tracesUploaded.Load())
	obs.Counter(w, "rfpsimd_trace_rejects_total", "Trace-sourced requests rejected: undecodable uploads and /v1/sim references to unknown trace addresses (docs/traces.md).", m.traceRejects.Load())
	obs.Counter(w, "rfpsimd_sim_cycles_total", "Simulated core cycles across all jobs.", m.simCycles.Load())
	obs.Counter(w, "rfpsimd_l1pf_issued_total", "L1 hardware prefetches issued across all jobs (docs/prefetchers.md).", m.l1pfIssued.Load())
	obs.Counter(w, "rfpsimd_l1pf_useful_total", "L1 hardware prefetches consumed by a demand access across all jobs.", m.l1pfUseful.Load())
	obs.Counter(w, "rfpsimd_clp_predicted_total", "Confident cache-level predictions across all jobs (docs/predictors.md).", m.clpPredicted.Load())
	obs.Counter(w, "rfpsimd_clp_correct_total", "Cache-level predictions matching the actual serving level.", m.clpCorrect.Load())
	obs.Counter(w, "rfpsimd_clp_skipped_dram_total", "RFP injections suppressed because CLP predicted a DRAM access.", m.clpSkippedDRAM.Load())
	obs.Counter(w, "rfpsimd_clp_early_armed_total", "RFP prefetches armed early on a CLP-predicted near hit.", m.clpEarlyArmed.Load())
	obs.Counter(w, "rfpsim_check_violations_total", "Runtime invariant violations across jobs run with the checker enabled (docs/checking.md).", m.checkViolations.Load())
	obs.Gauge(w, "rfpsimd_sim_cycles_per_second", "Simulated cycles per wall-clock second of worker busy time.", cyclesPerSec)

	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	obs.Gauge(w, "rfpsimd_cache_hit_ratio", "Fraction of result-cache lookups served from the cache.", ratio)
}
