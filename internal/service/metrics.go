package service

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics aggregates the service's observability counters. All fields are
// atomics so workers and handlers update them without locks; the /metrics
// endpoint renders them in the Prometheus text exposition format.
type Metrics struct {
	jobsQueued  atomic.Int64 // gauge: jobs accepted but not yet running
	jobsRunning atomic.Int64 // gauge: jobs currently simulating

	jobsOK        atomic.Uint64 // counter: jobs finished successfully
	jobsCancelled atomic.Uint64 // counter: jobs cancelled (timeout/disconnect)
	jobsFailed    atomic.Uint64 // counter: jobs that errored (wedge, bad trace)
	jobsRejected  atomic.Uint64 // counter: jobs refused with 429 (queue full)

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64

	simCycles    atomic.Uint64 // total simulated cycles across all jobs
	simBusyNanos atomic.Uint64 // total wall time workers spent simulating
}

// WritePrometheus renders the counters in the text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	busy := float64(m.simBusyNanos.Load()) / 1e9
	cyclesPerSec := 0.0
	if busy > 0 {
		cyclesPerSec = float64(m.simCycles.Load()) / busy
	}
	fmt.Fprintf(w, "# HELP rfpsimd_jobs_queued Jobs accepted and waiting for a worker.\n")
	fmt.Fprintf(w, "# TYPE rfpsimd_jobs_queued gauge\n")
	fmt.Fprintf(w, "rfpsimd_jobs_queued %d\n", m.jobsQueued.Load())
	fmt.Fprintf(w, "# HELP rfpsimd_jobs_running Jobs currently simulating.\n")
	fmt.Fprintf(w, "# TYPE rfpsimd_jobs_running gauge\n")
	fmt.Fprintf(w, "rfpsimd_jobs_running %d\n", m.jobsRunning.Load())
	fmt.Fprintf(w, "# HELP rfpsimd_jobs_done_total Finished jobs by outcome.\n")
	fmt.Fprintf(w, "# TYPE rfpsimd_jobs_done_total counter\n")
	fmt.Fprintf(w, "rfpsimd_jobs_done_total{status=\"ok\"} %d\n", m.jobsOK.Load())
	fmt.Fprintf(w, "rfpsimd_jobs_done_total{status=\"cancelled\"} %d\n", m.jobsCancelled.Load())
	fmt.Fprintf(w, "rfpsimd_jobs_done_total{status=\"error\"} %d\n", m.jobsFailed.Load())
	fmt.Fprintf(w, "# HELP rfpsimd_jobs_rejected_total Jobs refused with 429 because the queue was full.\n")
	fmt.Fprintf(w, "# TYPE rfpsimd_jobs_rejected_total counter\n")
	fmt.Fprintf(w, "rfpsimd_jobs_rejected_total %d\n", m.jobsRejected.Load())
	fmt.Fprintf(w, "# HELP rfpsimd_cache_hits_total Requests served from the result cache.\n")
	fmt.Fprintf(w, "# TYPE rfpsimd_cache_hits_total counter\n")
	fmt.Fprintf(w, "rfpsimd_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintf(w, "# HELP rfpsimd_cache_misses_total Requests that had to simulate.\n")
	fmt.Fprintf(w, "# TYPE rfpsimd_cache_misses_total counter\n")
	fmt.Fprintf(w, "rfpsimd_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintf(w, "# HELP rfpsimd_sim_cycles_total Simulated core cycles across all jobs.\n")
	fmt.Fprintf(w, "# TYPE rfpsimd_sim_cycles_total counter\n")
	fmt.Fprintf(w, "rfpsimd_sim_cycles_total %d\n", m.simCycles.Load())
	fmt.Fprintf(w, "# HELP rfpsimd_sim_cycles_per_second Simulated cycles per wall-clock second of worker busy time.\n")
	fmt.Fprintf(w, "# TYPE rfpsimd_sim_cycles_per_second gauge\n")
	fmt.Fprintf(w, "rfpsimd_sim_cycles_per_second %g\n", cyclesPerSec)
}
