package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"rfpsim/internal/fabric"
	"rfpsim/internal/isa"
	"rfpsim/internal/runner"
	"rfpsim/internal/sample"
	"rfpsim/internal/trace"
	"rfpsim/internal/tracefile"
)

// normalized returns the request with the documented defaults applied:
// 30000/60000-uop windows, a single seed, and the internal/sample
// defaults inside a sampling spec. Content addressing always runs on the
// normalized form, so a request that spells the defaults out and one that
// omits them share a cache entry.
func (req SimRequest) normalized() SimRequest {
	if req.WarmupUops == 0 {
		req.WarmupUops = 30000
	}
	if req.MeasureUops == 0 {
		req.MeasureUops = 60000
	}
	if req.Seeds < 1 {
		req.Seeds = 1
	}
	if req.Sampling != nil {
		norm := sample.Normalized(*req.Sampling.toRunner())
		req.Sampling = fromRunner(&norm)
	}
	return req
}

// resolveRequest validates a request into an executable job plus its
// content address. It is the single resolution path: the daemon, the
// exported ResolveJob/ContentAddress helpers and (through them) the sweep
// orchestrator all agree on what a request means and how it is keyed.
func resolveRequest(req SimRequest) (*resolvedJob, error) {
	if (req.Workload == "") == (req.TraceB64 == "") {
		return nil, errors.New("exactly one of workload and trace_b64 must be set")
	}
	req = req.normalized()
	cfg, err := req.Config.Build()
	if err != nil {
		return nil, err
	}

	rj := &resolvedJob{req: req}
	workloadKey := ""
	switch {
	case req.Workload != "" && strings.HasPrefix(req.Workload, TraceWorkloadPrefix):
		// A reference to a previously uploaded trace (POST /v1/traces).
		// The key is identical to an inline trace_b64 upload of the same
		// bytes — the address IS the content digest — so the two
		// submission paths share cache entries by construction.
		addr := strings.TrimPrefix(req.Workload, TraceWorkloadPrefix)
		if !fabric.ValidAddr(addr) {
			return nil, fmt.Errorf("malformed trace address %q (want the 64-hex sha256 from POST /v1/traces)", addr)
		}
		if req.Seeds > 1 {
			return nil, errors.New("seed replication requires a catalog workload, not an uploaded trace")
		}
		rj.traceAddr = addr
		rj.job.Spec = trace.Spec{Name: TraceWorkloadPrefix + addr[:16], Category: "trace-file"}
		workloadKey = TraceWorkloadPrefix + addr
	case req.Workload != "":
		spec, ok := trace.ByName(req.Workload)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q (GET /v1/workloads lists the suite)", req.Workload)
		}
		rj.job.Spec = spec
		workloadKey = fmt.Sprintf("workload:%s:seed:%d", spec.Name, spec.Seed)
	default:
		raw, err := base64.StdEncoding.DecodeString(req.TraceB64)
		if err != nil {
			return nil, fmt.Errorf("trace_b64 is not valid base64: %w", err)
		}
		if req.Seeds > 1 {
			return nil, errors.New("seed replication requires a catalog workload, not an uploaded trace")
		}
		addr := TraceAddress(raw)
		rj.traceRaw = raw
		rj.traceAddr = addr
		rj.job.Spec = trace.Spec{Name: TraceWorkloadPrefix + addr[:16], Category: "trace-file"}
		workloadKey = TraceWorkloadPrefix + addr
	}
	rj.job.Config = cfg
	rj.job.WarmupUops = req.WarmupUops
	rj.job.MeasureUops = req.MeasureUops
	rj.job.Seeds = req.Seeds
	rj.job.ColdCaches = req.ColdCaches
	rj.job.Sampling = req.Sampling.toRunner()
	if req.Sampling != nil {
		// Trace-sourced jobs sample too: execution attaches a NewGen
		// factory that re-decodes the stored bytes, which is exactly the
		// re-instantiable stream sampling needs (internal/sample).
		if err := sample.Validate(rj.job); err != nil {
			return nil, err
		}
	}

	// The cache key addresses the simulation's full input: the resolved
	// configuration (digested field by field), the workload spec and base
	// seed (or trace content digest), the windows, the replica count, and
	// cache warming. A sampled request additionally keys the normalized
	// sampling parameters — a sampled result is an estimator with its own
	// bias, so it must never be served from (or poison) the cache entry of
	// the full-window run it approximates. Determinism makes identical
	// keys identical results.
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	h := sha256.New()
	fmt.Fprintf(h, "config:%s|%s|warmup:%d|measure:%d|seeds:%d|cold:%t",
		cfgJSON, workloadKey, req.WarmupUops, req.MeasureUops, req.Seeds, req.ColdCaches)
	if sp := req.Sampling; sp != nil {
		fmt.Fprintf(h, "|sampling:interval:%d:maxk:%d:warmup:%d",
			sp.IntervalUops, sp.MaxK, sp.WarmupUops)
	}
	rj.key = hex.EncodeToString(h.Sum(nil))
	return rj, nil
}

// ResolveJob validates a request into the runner job it would execute and
// the content address the daemon's result cache files it under. Trace
// uploads get their generator attached, so the returned job is directly
// runnable via sample.Run (which is runner.Run for full-window jobs);
// callers outside the daemon (cmd/rfpsweep's local backend) therefore
// execute the exact code path a POST /v1/sim would, producing
// bit-identical statistics. Requests referencing an uploaded trace by
// address ("trace:<sha256>") need a store to resolve the bytes — use
// ResolveJobWith.
func ResolveJob(req SimRequest) (runner.Job, string, error) {
	return ResolveJobWith(req, nil)
}

// ResolveJobWith is ResolveJob with a trace store supplying the bytes
// behind "trace:<sha256>" workload references (nil rejects such
// references). The sweep local backend passes its store here so
// trace-sourced sweep units run without a daemon.
func ResolveJobWith(req SimRequest, traces *TraceStore) (runner.Job, string, error) {
	rj, err := resolveRequest(req)
	if err != nil {
		return runner.Job{}, "", err
	}
	if err := rj.loadTrace(traces); err != nil {
		return runner.Job{}, "", err
	}
	job := rj.job
	if rj.traceRaw != nil {
		if err := attachTraceGen(&job, rj.traceRaw); err != nil {
			return runner.Job{}, "", err
		}
	}
	return job, rj.key, nil
}

// loadTrace fills traceRaw for a by-reference trace workload from the
// store (inline trace_b64 uploads already carry their bytes).
func (rj *resolvedJob) loadTrace(traces *TraceStore) error {
	if rj.traceRaw != nil || rj.traceAddr == "" {
		return nil
	}
	if traces == nil {
		return fmt.Errorf("unknown trace address %s (no trace store attached)", rj.traceAddr)
	}
	raw, _, ok := traces.Get(rj.traceAddr)
	if !ok {
		return fmt.Errorf("unknown trace address %s (upload the trace via POST /v1/traces first)", rj.traceAddr)
	}
	rj.traceRaw = raw
	return nil
}

// attachTraceGen validates raw once and attaches a re-instantiable
// generator factory: every call re-decodes the same bytes, so sampled
// execution can profile the stream and then replay intervals, and seed
// replicas are structurally impossible (the runner rejects NewGen with
// Seeds > 1).
func attachTraceGen(job *runner.Job, raw []byte) error {
	name := job.Spec.Name
	if _, err := tracefile.NewReader(bytes.NewReader(raw), name); err != nil {
		return fmt.Errorf("bad trace upload: %w", err)
	}
	job.NewGen = func() isa.Generator {
		r, err := tracefile.NewReader(bytes.NewReader(raw), name)
		if err != nil {
			// The header was validated above and the bytes are immutable.
			panic("service: validated trace failed to reopen: " + err.Error())
		}
		return r
	}
	return nil
}

// ContentAddress returns the daemon's cache key for a request: the SHA-256
// over the fully resolved configuration, the workload identity (catalog
// name and base seed, or the trace digest), the normalized windows, the
// replica count and the cold-caches flag. It is exported so sweep
// deduplication and checkpointing key units exactly the way the rfpsimd
// result cache does — the key format is pinned by a test and must not
// drift.
func ContentAddress(req SimRequest) (string, error) {
	rj, err := resolveRequest(req)
	if err != nil {
		return "", err
	}
	return rj.key, nil
}
