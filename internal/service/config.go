package service

import (
	"fmt"

	"rfpsim/internal/config"
)

// ConfigSpec is the wire-format description of a core configuration: the
// same knobs cmd/rfpsim exposes as flags, resolved against the paper's
// Baseline (or Baseline-2x) defaults. The zero value is the plain
// baseline.
type ConfigSpec struct {
	// Upscaled selects the futuristic Baseline-2x core.
	Upscaled bool `json:"upscaled,omitempty"`

	// RFP enables Register File Prefetching; the remaining RFP knobs only
	// apply when it is set.
	RFP bool `json:"rfp,omitempty"`
	// PAT uses the Page Address Table PT encoding (§5.5.4).
	PAT bool `json:"pat,omitempty"`
	// Context adds the path-based context prefetcher (§5.5.3).
	Context bool `json:"context,omitempty"`
	// CriticalOnly restricts injection to criticality-flagged loads.
	CriticalOnly bool `json:"critical_only,omitempty"`
	// CLP enables the cache-level-predicted RFP arming schedule
	// (docs/predictors.md): predicted-DRAM loads are skipped, predicted
	// near hits arm early, and criticality gates contested queue slots.
	CLP bool `json:"clp,omitempty"`
	// ConfidenceBits overrides the confidence counter width (1-4).
	ConfidenceBits int `json:"confidence_bits,omitempty"`
	// PTEntries overrides the Prefetch Table size.
	PTEntries int `json:"pt_entries,omitempty"`
	// DedicatedPorts reserves that many L1 ports for RFP (Figure 14).
	DedicatedPorts int `json:"dedicated_ports,omitempty"`

	// VP selects value prediction: "eves", "dlvp", "composite" or "epp".
	VP string `json:"vp,omitempty"`
	// Oracle selects the idealized prefetch study: "l1", "l2", "llc" or
	// "mem".
	Oracle string `json:"oracle,omitempty"`

	// LateRegAlloc enables the §3.3 late register allocation variation.
	LateRegAlloc bool `json:"late_reg_alloc,omitempty"`
	// HWPrefetch adds the hardware stream cache prefetcher.
	HWPrefetch bool `json:"hw_prefetch,omitempty"`
	// Prefetcher selects a specific L1 hardware prefetcher ("stream",
	// "spp", "sisb" or "managed"); it supersedes the boolean HWPrefetch
	// knob, which remains as the legacy spelling of "stream".
	Prefetcher string `json:"prefetcher,omitempty"`

	// Checks enables the runtime invariant checker (docs/checking.md).
	// Violations ride back in the stats block and feed the daemon's
	// rfpsim_check_violations_total counter. Timing results are unchanged;
	// the knob still keys a distinct content address because the stats
	// block gains the checker counters.
	Checks bool `json:"checks,omitempty"`
}

// Build resolves the spec into a validated core configuration.
func (s ConfigSpec) Build() (config.Core, error) {
	cfg := config.Baseline()
	if s.Upscaled {
		cfg = config.Baseline2x()
	}
	if s.RFP {
		cfg = cfg.WithRFP()
		cfg.RFP.UsePAT = s.PAT
		cfg.RFP.UseContext = s.Context
		cfg.RFP.CriticalOnly = s.CriticalOnly
		cfg.RFP.UseCLP = s.CLP
		if s.ConfidenceBits != 0 {
			cfg.RFP.ConfidenceBits = s.ConfidenceBits
		}
		if s.PTEntries != 0 {
			cfg.RFP.PTEntries = s.PTEntries
		}
		cfg.RFPDedicatedPorts = s.DedicatedPorts
	} else if s.PAT || s.Context || s.CriticalOnly || s.CLP || s.ConfidenceBits != 0 || s.PTEntries != 0 || s.DedicatedPorts != 0 {
		return config.Core{}, fmt.Errorf("service: RFP knobs set but rfp is false")
	}
	switch s.VP {
	case "":
	case "eves":
		cfg = cfg.WithVP(config.VPEVES)
	case "dlvp":
		cfg = cfg.WithVP(config.VPDLVP)
	case "composite":
		cfg = cfg.WithVP(config.VPComposite)
	case "epp":
		cfg = cfg.WithVP(config.VPEPP)
	default:
		return config.Core{}, fmt.Errorf("service: unknown vp mode %q", s.VP)
	}
	switch s.Oracle {
	case "":
	case "l1":
		cfg = cfg.WithOracle(config.OracleL1ToRF)
	case "l2":
		cfg = cfg.WithOracle(config.OracleL2ToL1)
	case "llc":
		cfg = cfg.WithOracle(config.OracleLLCToL2)
	case "mem":
		cfg = cfg.WithOracle(config.OracleMemToLLC)
	default:
		return config.Core{}, fmt.Errorf("service: unknown oracle %q", s.Oracle)
	}
	cfg.LateRegAlloc = s.LateRegAlloc
	cfg.Mem.HWPrefetch = s.HWPrefetch
	if s.Prefetcher != "" {
		cfg = cfg.WithPrefetcher(s.Prefetcher)
	}
	cfg.Checks.Enabled = s.Checks
	if err := cfg.Validate(); err != nil {
		return config.Core{}, fmt.Errorf("service: invalid config: %w", err)
	}
	return cfg, nil
}
