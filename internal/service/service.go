// Package service implements rfpsimd, the long-running simulation daemon:
// an HTTP API that accepts simulation jobs, runs them on a bounded worker
// pool with backpressure, caches results by content address (simulations
// are deterministic pure functions of their job description), and emits
// its telemetry through the shared observability layer (internal/obs):
// every request gets a run ID that correlates the API response with every
// log line the job produced, /metrics is served from an obs.Registry
// holding the daemon's counters and latency histograms, and per-stage
// timing breakdowns ride back on response headers. The batch CLIs and
// this service share the same runner code, so a job submitted over HTTP
// produces bit-identical statistics to the same job run with cmd/rfpsim.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"rfpsim/internal/fabric"
	"rfpsim/internal/obs"
	"rfpsim/internal/runner"
	"rfpsim/internal/sample"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
)

// Response headers carrying per-request observability. They are headers,
// not body fields, because response bodies are deterministic functions of
// the request (byte-identical on cache replay) while run IDs and wall
// times are not.
const (
	// RunIDHeader carries the job's run ID on every /v1/sim response. A
	// client may supply its own valid ID on the request (the sweep HTTP
	// backend does) so daemon logs correlate with client logs; anything
	// invalid is replaced by a fresh ID.
	RunIDHeader = "X-Rfpsimd-Run-Id"
	// TimingsHeader carries the obs.Timings wire form (per-stage
	// wall-clock breakdown) on computed — not cache-replayed — responses.
	TimingsHeader = "X-Rfpsimd-Timings"
	// CacheHeader reports which tier served a /v1/sim response: "hit"
	// (this daemon's memory cache), "disk" (the persistent cache),
	// "peer" (the shard owner's cache), "dedup" (coalesced onto a
	// concurrent identical request's simulation) or "miss" (simulated
	// here). The body is byte-identical across all five.
	CacheHeader = "X-Rfpsimd-Cache"
	// TenantHeader names the requesting tenant for fair-share admission
	// (docs/fabric.md). Absent or malformed values fall back to
	// DefaultTenant rather than erroring: fairness is isolation between
	// identified bulk users, not authentication.
	TenantHeader = "X-Rfpsimd-Tenant"
	// DefaultTenant is the tenant bucket for requests with no (valid)
	// tenant header.
	DefaultTenant = "anon"
)

// Options configures the daemon.
type Options struct {
	// Workers bounds concurrent simulations (0 = NumCPU).
	Workers int
	// QueueDepth bounds jobs accepted but not yet running; a full queue
	// rejects new jobs with 429 (0 = 4x Workers).
	QueueDepth int
	// CacheEntries bounds the in-memory result cache's entry count
	// (0 = 4096).
	CacheEntries int
	// CacheBytes bounds the in-memory result cache's total body bytes
	// (0 = 256 MiB). Whichever cap is hit first evicts LRU-wise.
	CacheBytes int64
	// MaxJobUops caps (warmup+measure)*seeds per job so one request cannot
	// monopolize a worker for hours (0 = 50M).
	MaxJobUops uint64
	// DefaultTimeout applies to jobs that do not set timeout_ms (0 = none).
	DefaultTimeout time.Duration
	// Logger receives the daemon's structured logs (nil = slog.Default()).
	Logger *slog.Logger
	// Registry is the metrics registry /metrics renders; the server
	// registers its counter block and histograms into it (nil = a fresh
	// private registry). Pass one in to co-host additional collectors on
	// the same endpoint.
	Registry *obs.Registry
	// CPUProfileDir, when set, captures a CPU profile of each executed job
	// into <dir>/job-<runid>.pprof. The Go runtime supports one CPU
	// profile at a time, so under a busy pool only some jobs are captured.
	CPUProfileDir string
	// Fabric configures the distributed result fabric (persistent disk
	// cache, peer cache fill over a consistent-hash ring); the zero value
	// disables both tiers. See docs/fabric.md.
	Fabric fabric.Options
	// TenantQueueDepth bounds each tenant's admission queue
	// (0 = QueueDepth): one tenant's burst 429s against its own bound
	// while other tenants' queues stay open.
	TenantQueueDepth int
	// TraceCacheEntries and TraceCacheBytes bound the uploaded-trace
	// store's in-memory working set (0 = 64 entries / 256 MiB). With a
	// fabric disk tier configured, evicted and pre-restart traces keep
	// resolving from disk (docs/traces.md).
	TraceCacheEntries int
	TraceCacheBytes   int64
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 4 * o.workers()
}

func (o Options) maxJobUops() uint64 {
	if o.MaxJobUops > 0 {
		return o.MaxJobUops
	}
	return 50_000_000
}

func (o Options) tenantQueueDepth() int {
	if o.TenantQueueDepth > 0 {
		return o.TenantQueueDepth
	}
	return o.queueDepth()
}

// SimRequest is the POST /v1/sim body.
type SimRequest struct {
	// Workload names a Table 3 suite entry. Exactly one of Workload and
	// TraceB64 must be set.
	Workload string `json:"workload,omitempty"`
	// TraceB64 is a base64-encoded .rfpt binary trace to simulate instead
	// of a catalog workload (single seed only).
	TraceB64 string `json:"trace_b64,omitempty"`
	// Config selects the core configuration knobs.
	Config ConfigSpec `json:"config"`
	// WarmupUops and MeasureUops are the simulation windows
	// (default 30000/60000, matching the batch tools).
	WarmupUops  uint64 `json:"warmup_uops,omitempty"`
	MeasureUops uint64 `json:"measure_uops,omitempty"`
	// Seeds > 1 averages that many perturbed seed replicas.
	Seeds int `json:"seeds,omitempty"`
	// ColdCaches skips footprint-based cache warming.
	ColdCaches bool `json:"cold_caches,omitempty"`
	// Sampling requests SimPoint-style sampled simulation of the measured
	// window (single seed only; catalog workloads and uploaded traces
	// both work — trace jobs re-decode their bytes per pass). Omitted
	// fields take the documented defaults; the response echoes the
	// normalized spec plus the replay plan summary.
	Sampling *SamplingSpec `json:"sampling,omitempty"`
	// TimeoutMS cancels the job after this many milliseconds of wall time.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SamplingSpec is the wire form of runner.Sampling: zero values select the
// internal/sample defaults (2000-uop intervals, 5 representatives, one
// interval of per-point cycle warmup).
type SamplingSpec struct {
	IntervalUops uint64 `json:"interval_uops,omitempty"`
	MaxK         int    `json:"max_k,omitempty"`
	WarmupUops   uint64 `json:"warmup_uops,omitempty"`
}

// toRunner converts the wire spec to the runner's job form.
func (sp *SamplingSpec) toRunner() *runner.Sampling {
	if sp == nil {
		return nil
	}
	return &runner.Sampling{
		IntervalUops: sp.IntervalUops,
		MaxK:         sp.MaxK,
		WarmupUops:   sp.WarmupUops,
	}
}

// fromRunner converts a runner sampling spec back to wire form.
func fromRunner(sp *runner.Sampling) *SamplingSpec {
	if sp == nil {
		return nil
	}
	return &SamplingSpec{
		IntervalUops: sp.IntervalUops,
		MaxK:         sp.MaxK,
		WarmupUops:   sp.WarmupUops,
	}
}

// SimResponse is the POST /v1/sim result body. It contains no wall-clock
// or otherwise nondeterministic fields: identical requests produce
// byte-identical bodies, which is what makes the result cache a pure
// replay (the X-Rfpsimd-Cache header, not the body, distinguishes hit
// from miss).
type SimResponse struct {
	// Workload echoes the workload name (or trace digest).
	Workload string `json:"workload"`
	// Config is the resolved configuration name.
	Config string `json:"config"`
	// Seeds is the number of replicas summed into Stats.
	Seeds int `json:"seeds"`
	// WarmupUops/MeasureUops echo the resolved windows.
	WarmupUops  uint64 `json:"warmup_uops"`
	MeasureUops uint64 `json:"measure_uops"`
	// Cycles and Instructions aggregate the measured window across seeds.
	Cycles       uint64 `json:"cycles"`
	Instructions uint64 `json:"instructions"`
	// IPC is the replica-weighted instructions per cycle.
	IPC float64 `json:"ipc"`
	// Sampling echoes the normalized sampling spec of a sampled run
	// (absent for full runs). SampledPoints and SampledUops summarize the
	// replay plan — how many representative intervals were cycle-simulated
	// and their total measured volume — and SamplingErrorBound is the
	// plan's clustering-dispersion confidence signal in [0, 1] (see
	// docs/sampling.md; a heuristic, not a guarantee). For sampled runs
	// Cycles/Instructions/Stats are cluster-weight scaled estimates of the
	// full window.
	Sampling           *SamplingSpec `json:"sampling,omitempty"`
	SampledPoints      int           `json:"sampled_points,omitempty"`
	SampledUops        uint64        `json:"sampled_uops,omitempty"`
	SamplingErrorBound float64       `json:"sampling_error_bound,omitempty"`
	// Stats is the full statistics block (counters summed across seeds).
	Stats *stats.Sim `json:"stats"`
}

// Response assembles the deterministic result body for a completed job.
// The daemon and the sweep orchestrator's local backend share it, so a
// unit executed in-process reports exactly what a POST /v1/sim would.
func Response(job runner.Job, res sample.Result) SimResponse {
	st := res.Stats
	resp := SimResponse{
		Workload:     job.Spec.Name,
		Config:       job.Config.Name,
		Seeds:        job.Seeds,
		WarmupUops:   job.WarmupUops,
		MeasureUops:  job.MeasureUops,
		Cycles:       st.Cycles,
		Instructions: st.Instructions,
		IPC:          st.IPC(),
		Stats:        st,
	}
	if res.Plan != nil {
		norm := sample.Normalized(*job.Sampling)
		resp.Sampling = fromRunner(&norm)
		resp.SampledPoints = len(res.Plan.Points)
		resp.SampledUops = res.Plan.MeasuredUops()
		resp.SamplingErrorBound = res.Plan.ErrorBound
	}
	return resp
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error  string `json:"error"`
	Status string `json:"status"` // "invalid", "rejected", "cancelled", "error"
}

// resolvedJob is a validated request plus everything needed to execute it.
type resolvedJob struct {
	req       SimRequest
	job       runner.Job
	traceRaw  []byte // decoded trace upload, nil until loadTrace for by-reference traces
	traceAddr string // content address of a trace-sourced job, "" for catalog workloads
	key       string
}

type jobResult struct {
	body    []byte
	st      *stats.Sim
	timings *obs.Timings // per-stage breakdown of the computation, nil on error
	err     error
}

type job struct {
	ctx      context.Context
	resolved *resolvedJob
	tenant   string
	cost     uint64         // TotalUops, the DRR scheduling weight
	enqueued time.Time      // when the job entered the queue (queue-wait histogram)
	result   chan jobResult // buffered; the worker never blocks on it
}

// Server is the rfpsimd daemon state: worker pool, fair-share scheduler,
// cache tiers, metrics.
type Server struct {
	opts      Options
	sched     *scheduler
	wg        sync.WaitGroup
	metrics   *Metrics
	cache     *resultCache
	fabric    *fabric.Fabric // nil when no fabric tier is configured
	flights   fabric.FlightGroup
	traces    *TraceStore
	logger    *slog.Logger
	registry  *obs.Registry
	jobSecs   *obs.Histogram // wall-clock execution latency per job
	queueWait *obs.Histogram // time between enqueue and worker pickup

	mu     sync.RWMutex
	closed bool
}

// New starts the worker pool and returns the server. Callers must Close it
// to drain. It fails only when a configured fabric tier cannot be opened
// (e.g. an unwritable -cache-dir).
func New(opts Options) (*Server, error) {
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	registry := opts.Registry
	if registry == nil {
		registry = obs.NewRegistry()
	}
	s := &Server{
		opts:     opts,
		sched:    newScheduler(opts.tenantQueueDepth(), opts.queueDepth()),
		metrics:  &Metrics{},
		cache:    newResultCache(opts.CacheEntries, opts.CacheBytes),
		logger:   logger,
		registry: registry,
		jobSecs: obs.NewHistogram("rfpsimd_job_seconds",
			"Wall-clock execution latency of computed (non-cached) jobs.",
			0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60),
		queueWait: obs.NewHistogram("rfpsimd_queue_wait_seconds",
			"Time jobs spend queued before a worker picks them up.",
			0.0001, 0.001, 0.01, 0.1, 0.5, 1, 5, 10),
	}
	s.cache.onEvict = func() { s.metrics.cacheEvictions.Add(1) }
	if opts.Fabric.Enabled() {
		fopts := opts.Fabric
		if fopts.Logger == nil {
			fopts.Logger = logger
		}
		f, err := fabric.New(fopts)
		if err != nil {
			return nil, err
		}
		s.fabric = f
	}
	var traceTier TraceDiskTier
	if s.fabric != nil {
		traceTier = s.fabric
	}
	s.traces = NewTraceStore(opts.TraceCacheEntries, opts.TraceCacheBytes, traceTier)
	registry.Register(s.metrics)
	registry.Register(s.jobSecs)
	registry.Register(s.queueWait)
	if s.fabric != nil {
		registry.Register(s.fabric.Metrics())
	}
	for i := 0; i < opts.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Metrics exposes the counter block (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Registry exposes the metrics registry /metrics renders, so embedders
// (cmd/rfpsimd) can co-host extra collectors on the same endpoint.
func (s *Server) Registry() *obs.Registry { return s.registry }

// Close drains the service: no new jobs are accepted, queued and running
// jobs finish (their waiting handlers get results), then the workers exit
// and pending fabric write-backs complete. Call http.Server.Shutdown
// first so no handler is still trying to enqueue.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.sched.close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if s.fabric != nil {
		s.fabric.Close()
	}
}

// enqueue adds a job to its tenant's queue unless that queue (or the
// total) is full or the server is draining.
func (s *Server) enqueue(j *job) (ok, draining bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false, true
	}
	ok, draining = s.sched.push(j.tenant, j)
	if ok {
		s.metrics.jobsQueued.Add(1)
	}
	return ok, draining
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.sched.next()
		if !ok {
			return
		}
		s.metrics.jobsQueued.Add(-1)
		s.metrics.jobsRunning.Add(1)
		s.queueWait.Observe(time.Since(j.enqueued).Seconds())
		start := time.Now()
		res := s.execute(j.ctx, j.resolved)
		elapsed := time.Since(start)
		s.metrics.simBusyNanos.Add(uint64(elapsed))
		s.jobSecs.Observe(elapsed.Seconds())
		s.metrics.jobsRunning.Add(-1)
		log := obs.Logger(j.ctx).With(
			"workload", j.resolved.job.Spec.Name,
			"config", j.resolved.job.Config.Name,
			"elapsed", elapsed.Round(time.Microsecond))
		switch {
		case res.err == nil:
			s.metrics.jobsOK.Add(1)
			s.metrics.simCycles.Add(res.st.Cycles)
			s.metrics.l1pfIssued.Add(res.st.L1PF.Issued)
			s.metrics.l1pfUseful.Add(res.st.L1PF.Useful)
			s.metrics.clpPredicted.Add(res.st.CLP.PredictedTotal())
			s.metrics.clpCorrect.Add(res.st.CLP.CorrectTotal())
			s.metrics.clpSkippedDRAM.Add(res.st.CLP.SkippedDRAM)
			s.metrics.clpEarlyArmed.Add(res.st.CLP.EarlyArmed)
			if v := res.st.Checks.Total(); v > 0 {
				s.metrics.checkViolations.Add(v)
				log.Warn("invariant violations", "violations", v)
			}
			log.Info("job done", "status", "ok",
				"cycles", res.st.Cycles, "timings", res.timings.String())
		case errors.Is(res.err, context.Canceled) || errors.Is(res.err, context.DeadlineExceeded):
			s.metrics.jobsCancelled.Add(1)
			log.Warn("job cancelled", "status", "cancelled", "err", res.err.Error())
		default:
			s.metrics.jobsFailed.Add(1)
			log.Error("job failed", "status", "error", "err", res.err.Error())
		}
		j.result <- res
	}
}

// execute runs one resolved job and marshals (and caches) its response.
// The context already carries the request's run ID and logger; a fresh
// timings collector is attached here so runner/sample fill in the
// per-stage breakdown, which rides back in the jobResult (and, when
// CPUProfileDir is set, next to a job-<runid>.pprof capture).
func (s *Server) execute(ctx context.Context, rj *resolvedJob) jobResult {
	job := rj.job
	tctx, tim := obs.WithTimings(ctx)
	var res sample.Result
	run := func() error {
		var err error
		res, err = sample.RunResult(tctx, job)
		return err
	}
	var err error
	if s.opts.CPUProfileDir != "" {
		path := filepath.Join(s.opts.CPUProfileDir, "job-"+obs.RunID(ctx)+".pprof")
		var captured bool
		captured, err = obs.CaptureCPUProfile(path, run)
		if captured {
			obs.Logger(ctx).Debug("cpu profile captured", "path", path)
		}
	} else {
		err = run()
	}
	if err != nil {
		return jobResult{err: err}
	}
	body, err := json.Marshal(Response(job, res))
	if err != nil {
		return jobResult{err: err}
	}
	body = append(body, '\n')
	s.cache.put(rj.key, body)
	if s.fabric != nil {
		// Persist locally and converge the fleet: the shard owner gets a
		// best-effort write-back so any peer's future miss finds the
		// result in one hop (docs/fabric.md).
		s.fabric.DiskPut(rj.key, body)
		s.fabric.PushToOwner(rj.key, body)
	}
	return jobResult{body: body, st: res.Stats, timings: tim}
}

// resolve validates a request into an executable job with its cache key,
// loading by-reference trace bytes from the store and enforcing this
// server's per-job size ceiling on top of the shared resolution path (see
// address.go). Failures on trace-sourced requests — bad uploads, unknown
// or undecodable addresses — count into rfpsimd_trace_rejects_total so a
// console polluting the daemon with dead references shows up on
// dashboards.
func (s *Server) resolve(req SimRequest) (*resolvedJob, error) {
	rj, err := s.resolveInner(req)
	if err != nil && (req.TraceB64 != "" || strings.HasPrefix(req.Workload, TraceWorkloadPrefix)) {
		s.metrics.traceRejects.Add(1)
	}
	return rj, err
}

func (s *Server) resolveInner(req SimRequest) (*resolvedJob, error) {
	rj, err := resolveRequest(req)
	if err != nil {
		return nil, err
	}
	if err := rj.loadTrace(s.traces); err != nil {
		return nil, err
	}
	if rj.traceRaw != nil {
		// Attach (and thereby header-validate) the generator at resolve
		// time: an undecodable inline trace is the client's fault and must
		// 400 before a worker is spent on it.
		if err := attachTraceGen(&rj.job, rj.traceRaw); err != nil {
			return nil, err
		}
	}
	if total := rj.job.TotalUops(); total > s.opts.maxJobUops() {
		return nil, fmt.Errorf("job size %d uops exceeds the per-job limit of %d", total, s.opts.maxJobUops())
	}
	return rj, nil
}

// Traces exposes the uploaded-trace store (for embedding: the console
// submits through it, tests seed it).
func (s *Server) Traces() *TraceStore { return s.traces }

// Handler returns the HTTP API: POST /v1/sim, GET/PUT /v1/result/{addr},
// POST/GET /v1/traces, GET /v1/workloads, GET /healthz, GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sim", s.handleSim)
	mux.HandleFunc("/v1/result/", s.handleResult)
	mux.HandleFunc("/v1/traces", s.handleTraces)
	mux.HandleFunc("/v1/traces/", s.handleTraceByAddr)
	mux.HandleFunc("/v1/workloads", s.handleWorkloads)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Retry-After advice (in seconds) attached to backpressure responses. A
// full queue clears as soon as a worker frees up, so clients should probe
// again quickly; a draining server is going away, so clients should give
// the replacement time to come up (or move to another endpoint at once).
const (
	retryAfterQueueFull = "1"
	retryAfterDrain     = "30"
)

func writeJSONError(w http.ResponseWriter, code int, status, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg, Status: status})
}

// Admission-rejection sentinels. The single-flight leader resolves its
// flight with one of these when the queue refuses the job, so coalesced
// followers report the same backpressure status the leader did.
var (
	errQueueFull = errors.New("job queue is full, retry later")
	errDraining  = errors.New("server is draining")
)

// tenantFrom sanitizes the fair-share tenant header: 1-64 chars of
// [A-Za-z0-9._-]; anything else (including absence) buckets under
// DefaultTenant. The charset bound keeps tenant names log- and
// label-safe.
func tenantFrom(h string) string {
	if h == "" || len(h) > 64 {
		return DefaultTenant
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return DefaultTenant
		}
	}
	return h
}

// writeResult writes a deterministic result body with its serving-tier
// header.
func writeResult(w http.ResponseWriter, tier string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(CacheHeader, tier)
	w.Write(body)
}

// writeJobError maps a job/flight error onto the response contract shared
// by leaders and coalesced followers.
func writeJobError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", retryAfterQueueFull)
		writeJSONError(w, http.StatusTooManyRequests, "rejected", err.Error())
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", retryAfterDrain)
		writeJSONError(w, http.StatusServiceUnavailable, "rejected", err.Error())
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeJSONError(w, http.StatusRequestTimeout, "cancelled", err.Error())
	default:
		writeJSONError(w, http.StatusInternalServerError, "error", err.Error())
	}
}

// RequestError marks a Do failure as a client error: the request itself
// was invalid (unknown workload, malformed trace, over-limit job), as
// opposed to backpressure or an execution failure. The HTTP layer maps it
// to 400; the console surfaces it synchronously at submit time.
type RequestError struct {
	// Err is the underlying validation error.
	Err error
}

// Error implements error.
func (e *RequestError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *RequestError) Unwrap() error { return e.Err }

// DoResult is a completed Do call.
type DoResult struct {
	// Body is the deterministic SimResponse JSON (newline-terminated),
	// byte-identical across serving tiers.
	Body []byte
	// Tier reports which tier served the body: "hit", "disk", "dedup",
	// "peer" or "miss" (the CacheHeader values).
	Tier string
	// Timings is the per-stage wall-clock breakdown of a computed
	// ("miss") result; nil for cache-replayed tiers.
	Timings *obs.Timings
	// Key is the request's content address.
	Key string
}

// Do resolves and executes one request through the full serving path —
// memory cache, disk tier, single-flight dedup, peer fill, then
// fair-share admission and simulation — and returns the deterministic
// body with its serving tier. It is the programmatic twin of POST
// /v1/sim: the HTTP handler and the embedded console both call it, so an
// in-process submission hits exactly the tiers, metrics and logs an HTTP
// one would. The context carries cancellation (client disconnect, console
// shutdown) plus the obs run ID/logger; request timeouts are layered on
// top here. Invalid requests return a *RequestError; backpressure returns
// errQueueFull/errDraining (writeJobError maps both for HTTP callers).
func (s *Server) Do(ctx context.Context, req SimRequest, tenant string) (*DoResult, error) {
	log := obs.Logger(ctx)
	rj, err := s.resolve(req)
	if err != nil {
		log.Debug("request rejected", "status", "invalid", "err", err.Error())
		return nil, &RequestError{Err: err}
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	log = log.With("workload", rj.job.Spec.Name, "config", rj.job.Config.Name, "tenant", tenant)

	// Tier 1: this daemon's memory cache.
	if body, ok := s.cache.get(rj.key); ok {
		s.metrics.cacheHits.Add(1)
		log.Info("job served from cache", "tier", "memory", "key", rj.key[:12])
		return &DoResult{Body: body, Tier: "hit", Key: rj.key}, nil
	}
	// Tier 2: the persistent disk cache (promoted into memory on hit).
	if s.fabric != nil {
		if body, ok := s.fabric.DiskGet(rj.key); ok {
			s.cache.put(rj.key, body)
			log.Info("job served from cache", "tier", "disk", "key", rj.key[:12])
			return &DoResult{Body: body, Tier: "disk", Key: rj.key}, nil
		}
	}

	// Single-flight: concurrent identical requests coalesce onto one
	// computation. Followers wait for the leader's result; the leader is
	// responsible for resolving the flight on EVERY exit path below.
	fl, leader := s.flights.Join(rj.key)
	if !leader {
		s.metrics.fabricDedup.Add(1)
		body, err := fl.Wait(ctx)
		if err != nil {
			return nil, err
		}
		log.Info("job coalesced onto concurrent identical request", "key", rj.key[:12])
		return &DoResult{Body: body, Tier: "dedup", Key: rj.key}, nil
	}
	completed := false
	complete := func(body []byte, err error) {
		if !completed {
			completed = true
			s.flights.Complete(rj.key, fl, body, err)
		}
	}
	defer complete(nil, errors.New("request aborted before completion"))

	// Tier 3: the shard owner's cache (peer fill). Any failure here
	// degrades to simulating locally.
	if s.fabric != nil {
		if body, ok := s.fabric.FetchFromOwner(ctx, rj.key); ok {
			s.cache.put(rj.key, body)
			s.fabric.DiskPut(rj.key, body)
			complete(body, nil)
			log.Info("job served from cache", "tier", "peer", "key", rj.key[:12])
			return &DoResult{Body: body, Tier: "peer", Key: rj.key}, nil
		}
	}

	// Tier 4: simulate, through fair-share admission.
	s.metrics.cacheMisses.Add(1)
	log.Info("job accepted", "key", rj.key[:12], "total_uops", rj.job.TotalUops())

	// Caller cancellation propagates into the worker, runner and sample
	// layers through the job's context.
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	} else if s.opts.DefaultTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.DefaultTimeout)
		defer cancel()
	}

	j := &job{
		ctx: ctx, resolved: rj, tenant: tenant, cost: rj.job.TotalUops(),
		enqueued: time.Now(), result: make(chan jobResult, 1),
	}
	if ok, draining := s.enqueue(j); !ok {
		s.metrics.jobsRejected.Add(1)
		err := errQueueFull
		if draining {
			err = errDraining
		}
		complete(nil, err)
		return nil, err
	}

	// The worker always replies: cancellation propagates through ctx into
	// the simulation loop, which aborts within a context-poll interval.
	res := <-j.result
	complete(res.body, res.err)
	if res.err != nil {
		return nil, res.err
	}
	return &DoResult{Body: res.body, Tier: "miss", Timings: res.timings, Key: rj.key}, nil
}

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	// The run ID is minted (or adopted from the client) before anything
	// can fail, so even a 400 response carries the ID its log line has.
	runID := r.Header.Get(RunIDHeader)
	if !obs.ValidRunID(runID) {
		runID = obs.NewRunID()
	}
	w.Header().Set(RunIDHeader, runID)

	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "invalid", "POST only")
		return
	}
	var req SimRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "invalid", "bad request body: "+err.Error())
		return
	}

	// Client disconnect cancels the job; the run ID and logger ride the
	// same context into Do and from there into the worker, runner and
	// sample layers.
	ctx := obs.WithLogger(obs.WithRunID(r.Context(), runID), s.logger)
	res, err := s.Do(ctx, req, tenantFrom(r.Header.Get(TenantHeader)))
	if err != nil {
		var reqErr *RequestError
		if errors.As(err, &reqErr) {
			writeJSONError(w, http.StatusBadRequest, "invalid", err.Error())
			return
		}
		writeJobError(w, err)
		return
	}
	if res.Timings != nil {
		w.Header().Set(TimingsHeader, res.Timings.String())
	}
	writeResult(w, res.Tier, res.Body)
}

// handleResult is the fabric's peer protocol (docs/fabric.md):
//
//	GET /v1/result/{addr}[?wait=1] serves a cached body from this
//	daemon's memory or disk tier; with wait=1 it also joins an in-flight
//	computation of that address (bounded by the client's own deadline)
//	instead of 404ing it into a duplicate simulation. 404 means "owner
//	has nothing": the caller simulates.
//
//	PUT /v1/result/{addr} is the write-back: a peer that simulated an
//	address this daemon owns stores the body here so future fleet-wide
//	misses resolve in one hop. Bodies must parse as a SimResponse; the
//	address binding itself is trusted (the fabric assumes a trusted
//	fleet network, like /metrics and /debug/pprof).
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	addr := strings.TrimPrefix(r.URL.Path, "/v1/result/")
	if !fabric.ValidAddr(addr) {
		writeJSONError(w, http.StatusBadRequest, "invalid", "malformed content address")
		return
	}
	switch r.Method {
	case http.MethodGet:
		if body, ok := s.cache.get(addr); ok {
			writeResult(w, "hit", body)
			return
		}
		if s.fabric != nil {
			if body, ok := s.fabric.DiskGet(addr); ok {
				s.cache.put(addr, body)
				writeResult(w, "disk", body)
				return
			}
		}
		if r.URL.Query().Get("wait") == "1" {
			if fl, ok := s.flights.Inflight(addr); ok {
				if body, err := fl.Wait(r.Context()); err == nil && body != nil {
					if s.fabric != nil {
						s.fabric.MarkInflightServed()
					}
					writeResult(w, "inflight", body)
					return
				}
			}
		}
		writeJSONError(w, http.StatusNotFound, "invalid", "no result for this address")
	case http.MethodPut:
		body, err := readResultBody(r)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, "invalid", err.Error())
			return
		}
		s.cache.put(addr, body)
		if s.fabric != nil {
			s.fabric.DiskPut(addr, body)
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		writeJSONError(w, http.StatusMethodNotAllowed, "invalid", "GET or PUT only")
	}
}

// readResultBody reads and sanity-checks a pushed result body: it must be
// a parseable SimResponse with no unknown fields, so garbage (or an
// entirely different JSON document) cannot be parked in the cache.
func readResultBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var sr SimResponse
	if err := dec.Decode(&sr); err != nil {
		return nil, fmt.Errorf("body is not a SimResponse: %w", err)
	}
	if sr.Stats == nil {
		return nil, errors.New("body has no stats block")
	}
	return body, nil
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name     string `json:"name"`
		Category string `json:"category"`
	}
	var out []entry
	for _, c := range trace.Categories() {
		for _, spec := range trace.ByCategory(c) {
			out = append(out, entry{Name: spec.Name, Category: string(spec.Category)})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.closed
	s.mu.RUnlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterDrain)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body := map[string]interface{}{
		"status":         status,
		"workers":        s.opts.workers(),
		"queue_depth":    s.opts.queueDepth(),
		"tenant_depth":   s.opts.tenantQueueDepth(),
		"tenants_queued": s.sched.tenantsQueued(),
		"jobs_queued":    s.metrics.jobsQueued.Load(),
		"jobs_running":   s.metrics.jobsRunning.Load(),
		"cache_entries":  s.cache.len(),
		"cache_bytes":    s.cache.bytes(),
	}
	if s.fabric != nil {
		body["fabric"] = s.fabric.String()
	}
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.registry.Handler().ServeHTTP(w, r)
}
