// Package service implements rfpsimd, the long-running simulation daemon:
// an HTTP API that accepts simulation jobs, runs them on a bounded worker
// pool with backpressure, caches results by content address (simulations
// are deterministic pure functions of their job description), and emits
// its telemetry through the shared observability layer (internal/obs):
// every request gets a run ID that correlates the API response with every
// log line the job produced, /metrics is served from an obs.Registry
// holding the daemon's counters and latency histograms, and per-stage
// timing breakdowns ride back on response headers. The batch CLIs and
// this service share the same runner code, so a job submitted over HTTP
// produces bit-identical statistics to the same job run with cmd/rfpsim.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"rfpsim/internal/obs"
	"rfpsim/internal/runner"
	"rfpsim/internal/sample"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
	"rfpsim/internal/tracefile"
)

// Response headers carrying per-request observability. They are headers,
// not body fields, because response bodies are deterministic functions of
// the request (byte-identical on cache replay) while run IDs and wall
// times are not.
const (
	// RunIDHeader carries the job's run ID on every /v1/sim response. A
	// client may supply its own valid ID on the request (the sweep HTTP
	// backend does) so daemon logs correlate with client logs; anything
	// invalid is replaced by a fresh ID.
	RunIDHeader = "X-Rfpsimd-Run-Id"
	// TimingsHeader carries the obs.Timings wire form (per-stage
	// wall-clock breakdown) on computed — not cache-replayed — responses.
	TimingsHeader = "X-Rfpsimd-Timings"
)

// Options configures the daemon.
type Options struct {
	// Workers bounds concurrent simulations (0 = NumCPU).
	Workers int
	// QueueDepth bounds jobs accepted but not yet running; a full queue
	// rejects new jobs with 429 (0 = 4x Workers).
	QueueDepth int
	// CacheEntries bounds the result cache (0 = 4096).
	CacheEntries int
	// MaxJobUops caps (warmup+measure)*seeds per job so one request cannot
	// monopolize a worker for hours (0 = 50M).
	MaxJobUops uint64
	// DefaultTimeout applies to jobs that do not set timeout_ms (0 = none).
	DefaultTimeout time.Duration
	// Logger receives the daemon's structured logs (nil = slog.Default()).
	Logger *slog.Logger
	// Registry is the metrics registry /metrics renders; the server
	// registers its counter block and histograms into it (nil = a fresh
	// private registry). Pass one in to co-host additional collectors on
	// the same endpoint.
	Registry *obs.Registry
	// CPUProfileDir, when set, captures a CPU profile of each executed job
	// into <dir>/job-<runid>.pprof. The Go runtime supports one CPU
	// profile at a time, so under a busy pool only some jobs are captured.
	CPUProfileDir string
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 4 * o.workers()
}

func (o Options) maxJobUops() uint64 {
	if o.MaxJobUops > 0 {
		return o.MaxJobUops
	}
	return 50_000_000
}

// SimRequest is the POST /v1/sim body.
type SimRequest struct {
	// Workload names a Table 3 suite entry. Exactly one of Workload and
	// TraceB64 must be set.
	Workload string `json:"workload,omitempty"`
	// TraceB64 is a base64-encoded .rfpt binary trace to simulate instead
	// of a catalog workload (single seed only).
	TraceB64 string `json:"trace_b64,omitempty"`
	// Config selects the core configuration knobs.
	Config ConfigSpec `json:"config"`
	// WarmupUops and MeasureUops are the simulation windows
	// (default 30000/60000, matching the batch tools).
	WarmupUops  uint64 `json:"warmup_uops,omitempty"`
	MeasureUops uint64 `json:"measure_uops,omitempty"`
	// Seeds > 1 averages that many perturbed seed replicas.
	Seeds int `json:"seeds,omitempty"`
	// ColdCaches skips footprint-based cache warming.
	ColdCaches bool `json:"cold_caches,omitempty"`
	// Sampling requests SimPoint-style sampled simulation of the measured
	// window (catalog workloads with a single seed only). Omitted fields
	// take the documented defaults; the response echoes the normalized
	// spec plus the replay plan summary.
	Sampling *SamplingSpec `json:"sampling,omitempty"`
	// TimeoutMS cancels the job after this many milliseconds of wall time.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SamplingSpec is the wire form of runner.Sampling: zero values select the
// internal/sample defaults (2000-uop intervals, 5 representatives, one
// interval of per-point cycle warmup).
type SamplingSpec struct {
	IntervalUops uint64 `json:"interval_uops,omitempty"`
	MaxK         int    `json:"max_k,omitempty"`
	WarmupUops   uint64 `json:"warmup_uops,omitempty"`
}

// toRunner converts the wire spec to the runner's job form.
func (sp *SamplingSpec) toRunner() *runner.Sampling {
	if sp == nil {
		return nil
	}
	return &runner.Sampling{
		IntervalUops: sp.IntervalUops,
		MaxK:         sp.MaxK,
		WarmupUops:   sp.WarmupUops,
	}
}

// fromRunner converts a runner sampling spec back to wire form.
func fromRunner(sp *runner.Sampling) *SamplingSpec {
	if sp == nil {
		return nil
	}
	return &SamplingSpec{
		IntervalUops: sp.IntervalUops,
		MaxK:         sp.MaxK,
		WarmupUops:   sp.WarmupUops,
	}
}

// SimResponse is the POST /v1/sim result body. It contains no wall-clock
// or otherwise nondeterministic fields: identical requests produce
// byte-identical bodies, which is what makes the result cache a pure
// replay (the X-Rfpsimd-Cache header, not the body, distinguishes hit
// from miss).
type SimResponse struct {
	// Workload echoes the workload name (or trace digest).
	Workload string `json:"workload"`
	// Config is the resolved configuration name.
	Config string `json:"config"`
	// Seeds is the number of replicas summed into Stats.
	Seeds int `json:"seeds"`
	// WarmupUops/MeasureUops echo the resolved windows.
	WarmupUops  uint64 `json:"warmup_uops"`
	MeasureUops uint64 `json:"measure_uops"`
	// Cycles and Instructions aggregate the measured window across seeds.
	Cycles       uint64 `json:"cycles"`
	Instructions uint64 `json:"instructions"`
	// IPC is the replica-weighted instructions per cycle.
	IPC float64 `json:"ipc"`
	// Sampling echoes the normalized sampling spec of a sampled run
	// (absent for full runs). SampledPoints and SampledUops summarize the
	// replay plan — how many representative intervals were cycle-simulated
	// and their total measured volume — and SamplingErrorBound is the
	// plan's clustering-dispersion confidence signal in [0, 1] (see
	// docs/sampling.md; a heuristic, not a guarantee). For sampled runs
	// Cycles/Instructions/Stats are cluster-weight scaled estimates of the
	// full window.
	Sampling           *SamplingSpec `json:"sampling,omitempty"`
	SampledPoints      int           `json:"sampled_points,omitempty"`
	SampledUops        uint64        `json:"sampled_uops,omitempty"`
	SamplingErrorBound float64       `json:"sampling_error_bound,omitempty"`
	// Stats is the full statistics block (counters summed across seeds).
	Stats *stats.Sim `json:"stats"`
}

// Response assembles the deterministic result body for a completed job.
// The daemon and the sweep orchestrator's local backend share it, so a
// unit executed in-process reports exactly what a POST /v1/sim would.
func Response(job runner.Job, res sample.Result) SimResponse {
	st := res.Stats
	resp := SimResponse{
		Workload:     job.Spec.Name,
		Config:       job.Config.Name,
		Seeds:        job.Seeds,
		WarmupUops:   job.WarmupUops,
		MeasureUops:  job.MeasureUops,
		Cycles:       st.Cycles,
		Instructions: st.Instructions,
		IPC:          st.IPC(),
		Stats:        st,
	}
	if res.Plan != nil {
		norm := sample.Normalized(*job.Sampling)
		resp.Sampling = fromRunner(&norm)
		resp.SampledPoints = len(res.Plan.Points)
		resp.SampledUops = res.Plan.MeasuredUops()
		resp.SamplingErrorBound = res.Plan.ErrorBound
	}
	return resp
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error  string `json:"error"`
	Status string `json:"status"` // "invalid", "rejected", "cancelled", "error"
}

// resolvedJob is a validated request plus everything needed to execute it.
type resolvedJob struct {
	req      SimRequest
	job      runner.Job
	traceRaw []byte // decoded trace upload, nil for catalog workloads
	key      string
}

type jobResult struct {
	body    []byte
	st      *stats.Sim
	timings *obs.Timings // per-stage breakdown of the computation, nil on error
	err     error
}

type job struct {
	ctx      context.Context
	resolved *resolvedJob
	enqueued time.Time      // when the job entered the queue (queue-wait histogram)
	result   chan jobResult // buffered; the worker never blocks on it
}

// Server is the rfpsimd daemon state: worker pool, queue, cache, metrics.
type Server struct {
	opts      Options
	queue     chan *job
	wg        sync.WaitGroup
	metrics   *Metrics
	cache     *resultCache
	logger    *slog.Logger
	registry  *obs.Registry
	jobSecs   *obs.Histogram // wall-clock execution latency per job
	queueWait *obs.Histogram // time between enqueue and worker pickup

	mu     sync.RWMutex
	closed bool
}

// New starts the worker pool and returns the server. Callers must Close it
// to drain.
func New(opts Options) *Server {
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	registry := opts.Registry
	if registry == nil {
		registry = obs.NewRegistry()
	}
	s := &Server{
		opts:     opts,
		queue:    make(chan *job, opts.queueDepth()),
		metrics:  &Metrics{},
		cache:    newResultCache(opts.CacheEntries),
		logger:   logger,
		registry: registry,
		jobSecs: obs.NewHistogram("rfpsimd_job_seconds",
			"Wall-clock execution latency of computed (non-cached) jobs.",
			0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60),
		queueWait: obs.NewHistogram("rfpsimd_queue_wait_seconds",
			"Time jobs spend queued before a worker picks them up.",
			0.0001, 0.001, 0.01, 0.1, 0.5, 1, 5, 10),
	}
	registry.Register(s.metrics)
	registry.Register(s.jobSecs)
	registry.Register(s.queueWait)
	for i := 0; i < opts.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics exposes the counter block (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Registry exposes the metrics registry /metrics renders, so embedders
// (cmd/rfpsimd) can co-host extra collectors on the same endpoint.
func (s *Server) Registry() *obs.Registry { return s.registry }

// Close drains the service: no new jobs are accepted, queued and running
// jobs finish (their waiting handlers get results), then the workers exit.
// Call http.Server.Shutdown first so no handler is still trying to
// enqueue.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// enqueue adds a job unless the queue is full or the server is draining.
func (s *Server) enqueue(j *job) (ok, draining bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false, true
	}
	select {
	case s.queue <- j:
		s.metrics.jobsQueued.Add(1)
		return true, false
	default:
		return false, false
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.metrics.jobsQueued.Add(-1)
		s.metrics.jobsRunning.Add(1)
		s.queueWait.Observe(time.Since(j.enqueued).Seconds())
		start := time.Now()
		res := s.execute(j.ctx, j.resolved)
		elapsed := time.Since(start)
		s.metrics.simBusyNanos.Add(uint64(elapsed))
		s.jobSecs.Observe(elapsed.Seconds())
		s.metrics.jobsRunning.Add(-1)
		log := obs.Logger(j.ctx).With(
			"workload", j.resolved.job.Spec.Name,
			"config", j.resolved.job.Config.Name,
			"elapsed", elapsed.Round(time.Microsecond))
		switch {
		case res.err == nil:
			s.metrics.jobsOK.Add(1)
			s.metrics.simCycles.Add(res.st.Cycles)
			s.metrics.l1pfIssued.Add(res.st.L1PF.Issued)
			s.metrics.l1pfUseful.Add(res.st.L1PF.Useful)
			if v := res.st.Checks.Total(); v > 0 {
				s.metrics.checkViolations.Add(v)
				log.Warn("invariant violations", "violations", v)
			}
			log.Info("job done", "status", "ok",
				"cycles", res.st.Cycles, "timings", res.timings.String())
		case errors.Is(res.err, context.Canceled) || errors.Is(res.err, context.DeadlineExceeded):
			s.metrics.jobsCancelled.Add(1)
			log.Warn("job cancelled", "status", "cancelled", "err", res.err.Error())
		default:
			s.metrics.jobsFailed.Add(1)
			log.Error("job failed", "status", "error", "err", res.err.Error())
		}
		j.result <- res
	}
}

// execute runs one resolved job and marshals (and caches) its response.
// The context already carries the request's run ID and logger; a fresh
// timings collector is attached here so runner/sample fill in the
// per-stage breakdown, which rides back in the jobResult (and, when
// CPUProfileDir is set, next to a job-<runid>.pprof capture).
func (s *Server) execute(ctx context.Context, rj *resolvedJob) jobResult {
	job := rj.job
	if rj.traceRaw != nil {
		r, err := tracefile.NewReader(bytes.NewReader(rj.traceRaw), job.Spec.Name)
		if err != nil {
			return jobResult{err: fmt.Errorf("bad trace upload: %w", err)}
		}
		job.Gen = r
	}
	tctx, tim := obs.WithTimings(ctx)
	var res sample.Result
	run := func() error {
		var err error
		res, err = sample.RunResult(tctx, job)
		return err
	}
	var err error
	if s.opts.CPUProfileDir != "" {
		path := filepath.Join(s.opts.CPUProfileDir, "job-"+obs.RunID(ctx)+".pprof")
		var captured bool
		captured, err = obs.CaptureCPUProfile(path, run)
		if captured {
			obs.Logger(ctx).Debug("cpu profile captured", "path", path)
		}
	} else {
		err = run()
	}
	if err != nil {
		return jobResult{err: err}
	}
	body, err := json.Marshal(Response(job, res))
	if err != nil {
		return jobResult{err: err}
	}
	body = append(body, '\n')
	s.cache.put(rj.key, body)
	return jobResult{body: body, st: res.Stats, timings: tim}
}

// resolve validates a request into an executable job with its cache key,
// enforcing this server's per-job size ceiling on top of the shared
// resolution path (see address.go).
func (s *Server) resolve(req SimRequest) (*resolvedJob, error) {
	rj, err := resolveRequest(req)
	if err != nil {
		return nil, err
	}
	if total := rj.job.TotalUops(); total > s.opts.maxJobUops() {
		return nil, fmt.Errorf("job size %d uops exceeds the per-job limit of %d", total, s.opts.maxJobUops())
	}
	return rj, nil
}

// Handler returns the HTTP API: POST /v1/sim, GET /v1/workloads,
// GET /healthz, GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sim", s.handleSim)
	mux.HandleFunc("/v1/workloads", s.handleWorkloads)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Retry-After advice (in seconds) attached to backpressure responses. A
// full queue clears as soon as a worker frees up, so clients should probe
// again quickly; a draining server is going away, so clients should give
// the replacement time to come up (or move to another endpoint at once).
const (
	retryAfterQueueFull = "1"
	retryAfterDrain     = "30"
)

func writeJSONError(w http.ResponseWriter, code int, status, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg, Status: status})
}

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	// The run ID is minted (or adopted from the client) before anything
	// can fail, so even a 400 response carries the ID its log line has.
	runID := r.Header.Get(RunIDHeader)
	if !obs.ValidRunID(runID) {
		runID = obs.NewRunID()
	}
	w.Header().Set(RunIDHeader, runID)
	log := s.logger.With("run_id", runID)

	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "invalid", "POST only")
		return
	}
	var req SimRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "invalid", "bad request body: "+err.Error())
		return
	}
	rj, err := s.resolve(req)
	if err != nil {
		log.Debug("request rejected", "status", "invalid", "err", err.Error())
		writeJSONError(w, http.StatusBadRequest, "invalid", err.Error())
		return
	}

	if body, ok := s.cache.get(rj.key); ok {
		s.metrics.cacheHits.Add(1)
		log.Info("job served from cache",
			"workload", rj.job.Spec.Name, "config", rj.job.Config.Name, "key", rj.key[:12])
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Rfpsimd-Cache", "hit")
		w.Write(body)
		return
	}
	s.metrics.cacheMisses.Add(1)
	log.Info("job accepted",
		"workload", rj.job.Spec.Name, "config", rj.job.Config.Name,
		"key", rj.key[:12], "total_uops", rj.job.TotalUops())

	// Client disconnect cancels the job; the run ID and logger ride the
	// same context into the worker, runner and sample layers.
	ctx := obs.WithLogger(obs.WithRunID(r.Context(), runID), s.logger)
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	} else if s.opts.DefaultTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.DefaultTimeout)
		defer cancel()
	}

	j := &job{ctx: ctx, resolved: rj, enqueued: time.Now(), result: make(chan jobResult, 1)}
	if ok, draining := s.enqueue(j); !ok {
		s.metrics.jobsRejected.Add(1)
		if draining {
			w.Header().Set("Retry-After", retryAfterDrain)
			writeJSONError(w, http.StatusServiceUnavailable, "rejected", "server is draining")
		} else {
			w.Header().Set("Retry-After", retryAfterQueueFull)
			writeJSONError(w, http.StatusTooManyRequests, "rejected", "job queue is full, retry later")
		}
		return
	}

	// The worker always replies: cancellation propagates through ctx into
	// the simulation loop, which aborts within a context-poll interval.
	res := <-j.result
	switch {
	case res.err == nil:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Rfpsimd-Cache", "miss")
		w.Header().Set(TimingsHeader, res.timings.String())
		w.Write(res.body)
	case errors.Is(res.err, context.Canceled) || errors.Is(res.err, context.DeadlineExceeded):
		writeJSONError(w, http.StatusRequestTimeout, "cancelled", res.err.Error())
	default:
		writeJSONError(w, http.StatusInternalServerError, "error", res.err.Error())
	}
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name     string `json:"name"`
		Category string `json:"category"`
	}
	var out []entry
	for _, c := range trace.Categories() {
		for _, spec := range trace.ByCategory(c) {
			out = append(out, entry{Name: spec.Name, Category: string(spec.Category)})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.closed
	s.mu.RUnlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterDrain)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]interface{}{
		"status":        status,
		"workers":       s.opts.workers(),
		"queue_depth":   s.opts.queueDepth(),
		"jobs_queued":   s.metrics.jobsQueued.Load(),
		"jobs_running":  s.metrics.jobsRunning.Load(),
		"cache_entries": s.cache.len(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.registry.Handler().ServeHTTP(w, r)
}
