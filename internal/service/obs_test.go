package service

import (
	"bytes"
	"flag"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"

	"rfpsim/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current output")

// TestMetricsExpositionGolden pins the complete /metrics exposition of a
// fresh server — names, HELP/TYPE lines, label sets, histogram buckets,
// ordering — byte for byte. A fresh server's counters are all zero, so the
// output is deterministic. Fleet dashboards parse this format: a diff here
// is an API break, not a cosmetic change.
func TestMetricsExpositionGolden(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	const goldenPath = "testdata/metrics.golden"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("/metrics exposition drifted from %s (run with -update after deliberate changes)\ngot:\n%s\nwant:\n%s",
			goldenPath, got, want)
	}
}

// syncBuffer lets the handler goroutines and the test body share one log
// sink without racing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunIDCorrelatesResponseAndLogs pins the core observability contract:
// the run ID the client reads from the response header is the same ID on
// every log line the job emitted, and a computed response carries a
// parseable per-stage timings header.
func TestRunIDCorrelatesResponseAndLogs(t *testing.T) {
	var logs syncBuffer
	logger := slog.New(slog.NewTextHandler(&logs, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, ts := newTestServer(t, Options{Workers: 1, Logger: logger})

	resp, _ := postSim(t, ts, SimRequest{
		Workload:    "spec06_mcf",
		WarmupUops:  2000,
		MeasureUops: 4000,
		Seeds:       1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	runID := resp.Header.Get(RunIDHeader)
	if runID == "" || !obs.ValidRunID(runID) {
		t.Fatalf("%s header = %q, want a valid run ID", RunIDHeader, runID)
	}
	th := resp.Header.Get(TimingsHeader)
	tim, err := obs.ParseTimings(th)
	if err != nil {
		t.Fatalf("%s header %q does not parse: %v", TimingsHeader, th, err)
	}
	if tim.Total() <= 0 {
		t.Errorf("timings header %q reports no elapsed time", th)
	}

	out := logs.String()
	needle := "run_id=" + runID
	if n := strings.Count(out, needle); n < 2 {
		t.Errorf("log contains %q %d times, want >= 2 (accept + done lines):\n%s", needle, n, out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.Contains(line, "job done") && !strings.Contains(line, needle) {
			t.Errorf("job-done log line lacks the response's run ID %q: %s", runID, line)
		}
	}
}

// TestRunIDAdoption pins the cross-process correlation path the sweep HTTP
// backend relies on: a valid client-supplied ID is echoed and used;
// garbage (a log-injection attempt) is replaced with a fresh valid ID.
func TestRunIDAdoption(t *testing.T) {
	var logs syncBuffer
	logger := slog.New(slog.NewTextHandler(&logs, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, ts := newTestServer(t, Options{Workers: 1, Logger: logger})

	post := func(id string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sim",
			strings.NewReader(`{"workload":"spec06_mcf","warmup_uops":2000,"measure_uops":4000,"seeds":1}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if id != "" {
			req.Header.Set(RunIDHeader, id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	resp := post("sweep-unit-0042")
	if got := resp.Header.Get(RunIDHeader); got != "sweep-unit-0042" {
		t.Errorf("valid client run ID not adopted: header = %q", got)
	}
	if !strings.Contains(logs.String(), "run_id=sweep-unit-0042") {
		t.Errorf("adopted run ID missing from logs:\n%s", logs.String())
	}

	// Go's client forbids raw newlines in header values, so the injection
	// vector that reaches the daemon is an ID with other out-of-charset
	// bytes; ValidRunID must reject it and the daemon must mint a fresh ID.
	evil := "FORGED id; status=ok"
	resp = post(evil)
	got := resp.Header.Get(RunIDHeader)
	if got == evil || !obs.ValidRunID(got) {
		t.Errorf("invalid client run ID must be replaced with a fresh valid one, got %q", got)
	}
	if strings.Contains(logs.String(), "FORGED") {
		t.Errorf("out-of-charset run ID leaked into logs:\n%s", logs.String())
	}
}
