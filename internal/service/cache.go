package service

import "sync"

// resultCache is the content-addressed result cache. Simulations are
// deterministic pure functions of their job key — (config digest, workload
// spec, seed, windows) — so a cached body can be replayed byte-for-byte
// for any identical request. Entries are evicted FIFO beyond maxEntries;
// bodies are small (one marshalled stats block), so the default cap keeps
// the cache a few MB at most.
type resultCache struct {
	mu         sync.RWMutex
	entries    map[string][]byte
	order      []string // insertion order for FIFO eviction
	maxEntries int
}

func newResultCache(maxEntries int) *resultCache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &resultCache{entries: make(map[string][]byte), maxEntries: maxEntries}
}

func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	body, ok := c.entries[key]
	return body, ok
}

func (c *resultCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return // identical request raced; the bodies are identical too
	}
	for len(c.entries) >= c.maxEntries && len(c.order) > 0 {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[key] = body
	c.order = append(c.order, key)
}

func (c *resultCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
