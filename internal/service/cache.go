package service

import (
	"container/list"
	"sync"
)

// resultCache is the in-memory tier of the content-addressed result
// store. Simulations are deterministic pure functions of their job key —
// (config digest, workload spec, seed, windows) — so a cached body can be
// replayed byte-for-byte for any identical request. Eviction is true LRU
// (a get refreshes recency), capped by entry count and by total body
// bytes so a burst of unusually large responses cannot balloon the
// daemon; evictions feed rfpsimd_cache_evictions_total via the onEvict
// hook.
type resultCache struct {
	mu         sync.Mutex
	entries    map[string]*list.Element
	lru        *list.List // front = most recently used
	maxEntries int
	maxBytes   int64
	totalBytes int64
	onEvict    func() // optional eviction counter hook
}

type cacheEntry struct {
	key  string
	body []byte
}

// defaultCacheMaxBytes bounds the in-memory cache when Options leave it
// 0: 256 MiB, far above 4096 typical bodies, so the entry cap normally
// binds first.
const defaultCacheMaxBytes = 256 << 20

func newResultCache(maxEntries int, maxBytes int64) *resultCache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	if maxBytes <= 0 {
		maxBytes = defaultCacheMaxBytes
	}
	return &resultCache{
		entries:    make(map[string]*list.Element),
		lru:        list.New(),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
	}
}

func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

func (c *resultCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Identical request raced; the bodies are identical too. Just
		// refresh recency.
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, body: body})
	c.totalBytes += int64(len(body))
	for (len(c.entries) > c.maxEntries || c.totalBytes > c.maxBytes) && c.lru.Len() > 1 {
		victim := c.lru.Back()
		e := victim.Value.(*cacheEntry)
		c.lru.Remove(victim)
		delete(c.entries, e.key)
		c.totalBytes -= int64(len(e.body))
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *resultCache) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalBytes
}
