package config

import (
	"strings"
	"testing"
)

func TestBaselineValid(t *testing.T) {
	c := Baseline()
	if err := c.Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	if c.Width != 5 {
		t.Errorf("baseline width = %d, want 5", c.Width)
	}
	if c.Mem.L1Latency != 5 {
		t.Errorf("L1 latency = %d, want 5 (Tiger Lake)", c.Mem.L1Latency)
	}
	if c.Mem.MemLatency != 200 {
		t.Errorf("DRAM latency = %d, want 200", c.Mem.MemLatency)
	}
	// 48 KiB L1: 64 sets x 12 ways x 64B.
	if got := c.Mem.L1Sets * c.Mem.L1Ways * 64; got != 48*1024 {
		t.Errorf("L1 size = %d bytes, want 48 KiB", got)
	}
	if c.RFP.Enabled {
		t.Error("baseline must not enable RFP by default")
	}
}

func TestBaseline2xScaling(t *testing.T) {
	b, x := Baseline(), Baseline2x()
	if err := x.Validate(); err != nil {
		t.Fatalf("baseline-2x invalid: %v", err)
	}
	if x.Width != 2*b.Width {
		t.Errorf("2x width = %d", x.Width)
	}
	if x.ROBSize <= b.ROBSize || x.RSSize <= b.RSSize {
		t.Error("2x windows must grow")
	}
	if x.ALUPorts != 2*b.ALUPorts || x.FPPorts != 2*b.FPPorts {
		t.Error("2x execution units not doubled")
	}
	if x.LoadPorts != 2*b.LoadPorts {
		t.Error("2x L1 bandwidth not increased")
	}
	if x.Mem.L1Latency != b.Mem.L1Latency {
		t.Error("2x must keep cache latencies")
	}
}

func TestWithModifiers(t *testing.T) {
	c := Baseline().WithRFP()
	if !c.RFP.Enabled {
		t.Error("WithRFP did not enable RFP")
	}
	if !strings.Contains(c.Name, "rfp") {
		t.Errorf("name %q should mention rfp", c.Name)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("rfp config invalid: %v", err)
	}

	v := Baseline().WithVP(VPEVES)
	if v.VP.Mode != VPEVES {
		t.Error("WithVP did not set mode")
	}
	o := Baseline().WithOracle(OracleL1ToRF)
	if o.Oracle != OracleL1ToRF {
		t.Error("WithOracle did not set mode")
	}
	if !strings.Contains(o.Name, "L1->RF") {
		t.Errorf("oracle name %q", o.Name)
	}
	// Modifiers must not mutate the original.
	base := Baseline()
	_ = base.WithRFP()
	if base.RFP.Enabled {
		t.Error("WithRFP mutated receiver")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mut := []func(*Core){
		func(c *Core) { c.Width = 0 },
		func(c *Core) { c.ROBSize = 0 },
		func(c *Core) { c.IntPRF = 10 },
		func(c *Core) { c.LoadPorts = 0 },
		func(c *Core) { c.Mem.L2Latency = 2 },
		func(c *Core) { c.Mem.MemLatency = 30 },
		func(c *Core) { c.RFP.Enabled = true; c.RFP.PTEntries = 0 },
		func(c *Core) { c.RFP.Enabled = true; c.RFP.ConfidenceBits = 0 },
		func(c *Core) { c.SchedDepth = 0 },
	}
	for i, m := range mut {
		c := Baseline()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestDefaultRFPParameters(t *testing.T) {
	r := DefaultRFP()
	if r.PTEntries != 1024 || r.PTWays != 8 {
		t.Errorf("PT default %dx%d, want 1024x8", r.PTEntries, r.PTWays)
	}
	if r.ConfidenceBits != 1 || r.ConfidenceProb != 16 {
		t.Error("confidence defaults should be 1 bit, p=1/16")
	}
	if r.QueueSize != 64 {
		t.Errorf("RFP queue = %d, want 64", r.QueueSize)
	}
	if !r.PrefetchOnL1Miss || !r.DropOnTLBMiss {
		t.Error("pipeline simplification defaults wrong")
	}
}

func TestModeStrings(t *testing.T) {
	modes := []VPMode{VPNone, VPEVES, VPDLVP, VPComposite, VPEPP, VPMode(42)}
	for _, m := range modes {
		if m.String() == "" {
			t.Errorf("empty string for mode %d", int(m))
		}
	}
	oracles := []OracleMode{OracleNone, OracleL1ToRF, OracleL2ToL1, OracleLLCToL2, OracleMemToLLC, OracleMode(42)}
	for _, o := range oracles {
		if o.String() == "" {
			t.Errorf("empty string for oracle %d", int(o))
		}
	}
}
