// Package config defines the simulated core configurations. The Baseline
// mirrors the paper's Table 2 (parameters similar to an Intel Tiger Lake
// core); Baseline2x is the paper's futuristic up-scaled core (10-wide, all
// execution resources doubled, more L1 bandwidth).
package config

import "fmt"

// Core holds every microarchitectural parameter of one simulated core.
type Core struct {
	// Name labels the configuration in reports.
	Name string

	// Width is the fetch/rename/commit width in uops per cycle.
	Width int
	// IssueWidth is the maximum uops selected for execution per cycle.
	IssueWidth int
	// ROBSize is the reorder buffer capacity.
	ROBSize int
	// RSSize is the reservation station (scheduler) capacity.
	RSSize int
	// LQSize and SQSize are the load/store queue capacities.
	LQSize int
	SQSize int
	// IntPRF and FPPRF are physical register file sizes.
	IntPRF int
	FPPRF  int

	// ALUPorts, FPPorts, LoadPorts, StorePorts, BranchPorts bound how many
	// uops of each resource class may begin execution per cycle.
	ALUPorts    int
	FPPorts     int
	LoadPorts   int
	StorePorts  int
	BranchPorts int

	// RFPDedicatedPorts, when positive, adds that many L1 ports reserved
	// exclusively for RFP prefetches (the Figure 14 study). When zero, RFP
	// shares the demand LoadPorts at the lowest priority.
	RFPDedicatedPorts int

	// FrontendLatency is the fetch-to-rename depth in cycles (uop-cache
	// hit path).
	FrontendLatency int
	// MispredictPenalty is the branch redirect penalty in cycles.
	MispredictPenalty int
	// FlushPenalty is the pipeline flush penalty for value-prediction or
	// memory-disambiguation mispredictions (20 cycles per the paper).
	FlushPenalty int
	// SchedDepth is the wakeup/select/register-read depth (3 cycles per
	// Stark et al.); the RFP-inflight bit is set SchedDepth cycles before
	// prefetch completion.
	SchedDepth int

	// BranchPredictor selects the direction predictor: "tage" (default,
	// Tiger-Lake-class) or "gshare" (the ablation partner for the
	// bpquality experiment).
	BranchPredictor string

	// LateRegAlloc models the §3.3 "Pipeline Variations" register file: a
	// virtual register pointer is carried until writeback and the
	// physical register is only claimed when the value is produced, so
	// PRF pressure tracks completed-but-not-retired values instead of
	// everything renamed. RFP adapts per the paper: the prefetch behaves
	// like the load and claims the entry; a wrong prefetch hands the same
	// entry back to the demand load.
	LateRegAlloc bool

	// Mem describes the cache/memory hierarchy.
	Mem MemConfig

	// RFP configures register file prefetching; RFP.Enabled turns the
	// feature on.
	RFP RFPConfig

	// VP configures load value prediction.
	VP VPConfig

	// Oracle, when not OracleNone, enables the idealized prefetch study of
	// Figure 1: all hits at level N are served at the latency of level
	// N-1.
	Oracle OracleMode

	// Checks configures the opt-in runtime invariant layer
	// (docs/checking.md). It is timing-invisible: enabling it changes no
	// simulated cycle, only whether violations are counted.
	Checks Checks
}

// Checks configures the runtime invariant layer evaluated inside
// core.step and internal/rfp. Violations are counted into
// stats.Sim.Checks rather than panicking, so a long sweep reports a
// broken invariant instead of dying mid-grid.
type Checks struct {
	// Enabled turns the invariant checks on.
	Enabled bool
}

// MemConfig describes the cache and memory hierarchy.
type MemConfig struct {
	// L1Sets/L1Ways/L1Latency describe the L1 data cache. Latency is the
	// full load-to-use latency in cycles (address generation, translation,
	// lookup and rotation included), 5 on Tiger Lake.
	L1Sets    int
	L1Ways    int
	L1Latency int
	// L1MSHRs bounds outstanding L1 misses.
	L1MSHRs int

	// L2Sets/L2Ways/L2Latency describe the private L2.
	L2Sets    int
	L2Ways    int
	L2Latency int

	// LLCSets/LLCWays/LLCLatency describe the last-level cache slice.
	LLCSets    int
	LLCWays    int
	LLCLatency int

	// MemLatency is the DRAM access latency in cycles.
	MemLatency int

	// DTLBEntries/DTLBWays describe the first-level data TLB.
	DTLBEntries int
	DTLBWays    int
	// PageWalkLatency is the DTLB miss penalty in cycles.
	PageWalkLatency int

	// HWPrefetch enables a classic hardware stream prefetcher that fills
	// the caches on detected sequential miss patterns — the ablation
	// partner for RFP (which hides L1 latency rather than avoiding
	// misses).
	HWPrefetch bool
	// HWPrefetchDegree is how many lines ahead a confirmed stream
	// fetches (default 2).
	HWPrefetchDegree int

	// Prefetcher selects which L1 hardware prefetcher runs: one of
	// Prefetchers(), or empty to fall back to the legacy HWPrefetch knob
	// (which selects "stream"). The field is omitempty in JSON so
	// configurations predating the prefetcher zoo keep their content
	// addresses.
	Prefetcher string `json:",omitempty"`
}

// Prefetchers lists the valid MemConfig.Prefetcher names:
//
//	stream  — Smith-style sequential streams with direction confirmation
//	spp     — signature-path prefetching with path-confidence throttling
//	sisb    — temporal (irregular stream buffer) miss-chain replay
//	managed — adaptive manager selecting among the above per epoch
func Prefetchers() []string {
	return []string{"stream", "spp", "sisb", "managed"}
}

// ActivePrefetcher resolves the effective L1 prefetcher name: Prefetcher
// when set, "stream" when only the legacy HWPrefetch flag is on, and ""
// (no prefetching) otherwise.
func (m *MemConfig) ActivePrefetcher() string {
	if m.Prefetcher != "" {
		return m.Prefetcher
	}
	if m.HWPrefetch {
		return "stream"
	}
	return ""
}

// RFPConfig holds the register-file-prefetch parameters of Section 3.
type RFPConfig struct {
	// Enabled turns the feature on.
	Enabled bool
	// PTEntries is the Prefetch Table capacity (1K default; Figure 18
	// sweeps 1K..16K).
	PTEntries int
	// PTWays is the PT associativity (8 per §3.5).
	PTWays int
	// ConfidenceBits is the confidence counter width (1 default; Figure 17
	// sweeps 1..4).
	ConfidenceBits int
	// ConfidenceProb is the probability denominator for probabilistic
	// confidence increments (16 → p=1/16 per §3.1).
	ConfidenceProb int
	// QueueSize is the RFP FIFO capacity (64 per §3.5).
	QueueSize int
	// UsePAT selects the area-optimized Page Address Table encoding
	// instead of full virtual addresses in the PT (§3.5).
	UsePAT bool
	// PATEntries/PATWays describe the PAT (64 entries, 4-way).
	PATEntries int
	PATWays    int
	// UseContext additionally enables the path-based context prefetcher
	// (§5.5.3); it recovers some non-strided loads.
	UseContext bool
	// ContextEntries is the context predictor capacity.
	ContextEntries int
	// PrefetchOnL1Miss lets an RFP that misses the L1 continue to the
	// lower levels like a demand load (§3.2.2; default true).
	PrefetchOnL1Miss bool
	// DropOnTLBMiss drops prefetches that miss the DTLB (§3.2.2; default
	// true).
	DropOnTLBMiss bool
	// CriticalOnly restricts prefetch injection to loads the criticality
	// estimator flags as commit-stalling — the targeted-prefetching
	// extension the paper leaves as future work (§5.1).
	CriticalOnly bool
	// UseCLP drives RFP with a cache-level predictor (Jalili & Erez
	// style): loads confidently predicted to hit the L1/L2 arm the
	// RFP-inflight bit one cycle earlier, loads predicted to go to DRAM
	// skip prefetching, and when the prefetch queue is contested the
	// criticality estimator decides who keeps their slot. The field is
	// omitempty in JSON so configurations predating the predictor keep
	// their content addresses.
	UseCLP bool `json:",omitempty"`
}

// VPMode selects which load value/address prediction scheme runs.
type VPMode int

const (
	// VPNone disables value prediction.
	VPNone VPMode = iota
	// VPEVES is an EVES-style last-value + stride value predictor with
	// high-confidence thresholds and flush-on-mispredict.
	VPEVES
	// VPDLVP is the path-based address predictor that probes the L1 in
	// the frontend (DLVP).
	VPDLVP
	// VPComposite fuses EVES and DLVP (the Composite predictor).
	VPComposite
	// VPEPP models Early Pipeline Prefetch: DLVP-style address prediction
	// with register sharing and SSBF false-positive re-execution.
	VPEPP
)

// String implements fmt.Stringer.
func (m VPMode) String() string {
	switch m {
	case VPNone:
		return "none"
	case VPEVES:
		return "eves"
	case VPDLVP:
		return "dlvp"
	case VPComposite:
		return "composite"
	case VPEPP:
		return "epp"
	default:
		return fmt.Sprintf("vpmode(%d)", int(m))
	}
}

// VPConfig holds value-prediction parameters.
type VPConfig struct {
	// Mode selects the predictor.
	Mode VPMode
	// Entries is the predictor table capacity (the paper grants prior
	// work "very large storage" for fairness; 8K default).
	Entries int
	// ConfMax is the saturation value of the confidence counter; a
	// prediction is used only at saturation.
	ConfMax int
	// ConfProb is the probabilistic increment denominator (EVES uses
	// probabilistic confidence for strided values).
	ConfProb int
}

// OracleMode selects the Figure 1 idealized prefetch study.
type OracleMode int

const (
	// OracleNone disables oracle prefetching.
	OracleNone OracleMode = iota
	// OracleL1ToRF serves every L1 hit at register-file (1 cycle) latency.
	OracleL1ToRF
	// OracleL2ToL1 serves every L2 hit at L1 latency.
	OracleL2ToL1
	// OracleLLCToL2 serves every LLC hit at L2 latency.
	OracleLLCToL2
	// OracleMemToLLC serves every DRAM access at LLC latency.
	OracleMemToLLC
)

// String implements fmt.Stringer.
func (m OracleMode) String() string {
	switch m {
	case OracleNone:
		return "none"
	case OracleL1ToRF:
		return "L1->RF"
	case OracleL2ToL1:
		return "L2->L1"
	case OracleLLCToL2:
		return "LLC->L2"
	case OracleMemToLLC:
		return "Mem->LLC"
	default:
		return fmt.Sprintf("oracle(%d)", int(m))
	}
}

// Baseline returns the Tiger-Lake-like configuration of Table 2: a 5-wide
// OOO core at 4 GHz with a 48 KiB 5-cycle L1D, 1.25 MiB L2, 3 MiB LLC slice
// and 200-cycle DRAM.
func Baseline() Core {
	return Core{
		Name:              "baseline",
		Width:             5,
		IssueWidth:        5,
		ROBSize:           352,
		RSSize:            128,
		LQSize:            128,
		SQSize:            72,
		IntPRF:            280,
		FPPRF:             224,
		ALUPorts:          4,
		FPPorts:           3,
		LoadPorts:         2,
		StorePorts:        1,
		BranchPorts:       2,
		FrontendLatency:   5,
		MispredictPenalty: 15,
		FlushPenalty:      20,
		SchedDepth:        3,
		BranchPredictor:   "tage",
		Mem: MemConfig{
			L1Sets: 64, L1Ways: 12, L1Latency: 5, L1MSHRs: 16,
			L2Sets: 1024, L2Ways: 20, L2Latency: 14,
			LLCSets: 4096, LLCWays: 12, LLCLatency: 40,
			MemLatency:  200,
			DTLBEntries: 64, DTLBWays: 4, PageWalkLatency: 30,
		},
		RFP: DefaultRFP(),
		VP:  VPConfig{Mode: VPNone, Entries: 8192, ConfMax: 15, ConfProb: 4},
	}
}

// Baseline2x returns the futuristic up-scaled core of §5.1: 10-wide with all
// execution resources doubled and increased L1 bandwidth.
func Baseline2x() Core {
	c := Baseline()
	c.Name = "baseline-2x"
	c.Width = 10
	c.IssueWidth = 10
	c.ALUPorts *= 2
	c.FPPorts *= 2
	c.LoadPorts *= 2
	c.StorePorts *= 2
	c.BranchPorts *= 2
	c.Mem.L1MSHRs *= 2
	// The paper doubles "execution resources" (width, units, L1
	// bandwidth). Window structures grow more conservatively — extreme
	// depths would also saturate RFP's 7-bit per-PC in-flight counters,
	// degrading exactly the strided chains RFP targets.
	c.ROBSize = c.ROBSize * 3 / 2
	c.RSSize = c.RSSize * 3 / 2
	c.LQSize = c.LQSize * 3 / 2
	c.SQSize = c.SQSize * 3 / 2
	c.IntPRF = c.IntPRF * 3 / 2
	c.FPPRF = c.FPPRF * 3 / 2
	return c
}

// DefaultRFP returns the default RFP parameters of §3 (disabled; callers set
// Enabled).
func DefaultRFP() RFPConfig {
	return RFPConfig{
		Enabled:          false,
		PTEntries:        1024,
		PTWays:           8,
		ConfidenceBits:   1,
		ConfidenceProb:   16,
		QueueSize:        64,
		UsePAT:           false,
		PATEntries:       64,
		PATWays:          4,
		UseContext:       false,
		ContextEntries:   1024,
		PrefetchOnL1Miss: true,
		DropOnTLBMiss:    true,
	}
}

// WithRFP returns a copy of c with RFP enabled at default parameters.
func (c Core) WithRFP() Core {
	c.RFP.Enabled = true
	c.Name += "+rfp"
	return c
}

// WithCLP returns a copy of c with RFP enabled and driven by the
// cache-level predictor.
func (c Core) WithCLP() Core {
	if !c.RFP.Enabled {
		c = c.WithRFP()
	}
	c.RFP.UseCLP = true
	c.Name += "+clp"
	return c
}

// WithPrefetcher returns a copy of c with the named L1 hardware
// prefetcher enabled. The name must be one of Prefetchers(); Validate
// rejects anything else.
func (c Core) WithPrefetcher(name string) Core {
	c.Mem.Prefetcher = name
	c.Name += "+pf(" + name + ")"
	return c
}

// WithVP returns a copy of c with the given value-prediction mode.
func (c Core) WithVP(mode VPMode) Core {
	c.VP.Mode = mode
	c.Name += "+" + mode.String()
	return c
}

// WithOracle returns a copy of c with the given oracle prefetch mode.
func (c Core) WithOracle(m OracleMode) Core {
	c.Oracle = m
	c.Name += "+oracle(" + m.String() + ")"
	return c
}

// Validate checks configuration invariants and returns a descriptive error
// for the first violation.
func (c *Core) Validate() error {
	switch {
	case c.Width <= 0 || c.IssueWidth <= 0:
		return fmt.Errorf("config %q: widths must be positive", c.Name)
	case c.ROBSize <= 0 || c.RSSize <= 0 || c.LQSize <= 0 || c.SQSize <= 0:
		return fmt.Errorf("config %q: queue sizes must be positive", c.Name)
	case c.IntPRF < 64 || c.FPPRF < 64:
		return fmt.Errorf("config %q: PRF must cover architectural state", c.Name)
	case c.LoadPorts <= 0 || c.StorePorts <= 0 || c.ALUPorts <= 0:
		return fmt.Errorf("config %q: ports must be positive", c.Name)
	case c.Mem.L1Latency <= 0 || c.Mem.L2Latency <= c.Mem.L1Latency ||
		c.Mem.LLCLatency <= c.Mem.L2Latency || c.Mem.MemLatency <= c.Mem.LLCLatency:
		return fmt.Errorf("config %q: hierarchy latencies must increase", c.Name)
	case c.RFP.Enabled && (c.RFP.PTEntries <= 0 || c.RFP.PTWays <= 0 || c.RFP.QueueSize <= 0):
		return fmt.Errorf("config %q: invalid RFP parameters", c.Name)
	case c.RFP.Enabled && (c.RFP.ConfidenceBits < 1 || c.RFP.ConfidenceBits > 8):
		return fmt.Errorf("config %q: confidence bits out of range", c.Name)
	case c.RFP.UseCLP && !c.RFP.Enabled:
		return fmt.Errorf("config %q: RFP.UseCLP requires RFP.Enabled", c.Name)
	case c.SchedDepth <= 0:
		return fmt.Errorf("config %q: scheduling depth must be positive", c.Name)
	case c.BranchPredictor != "" && c.BranchPredictor != "tage" && c.BranchPredictor != "gshare":
		return fmt.Errorf("config %q: unknown branch predictor %q", c.Name, c.BranchPredictor)
	}
	if p := c.Mem.Prefetcher; p != "" {
		ok := false
		for _, v := range Prefetchers() {
			if p == v {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("config %q: unknown prefetcher %q (valid: %v)",
				c.Name, p, Prefetchers())
		}
	}
	return nil
}
