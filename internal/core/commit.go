package core

import (
	"rfpsim/internal/isa"
	"rfpsim/internal/rfp"
	"rfpsim/internal/stats"
)

// commit retires up to Width completed uops in program order, training the
// retirement-time predictors (the RFP Prefetch Table trains here because
// program order makes stride detection trivial, §3.1) and validating value
// predictions. A wrong predicted value flushes everything younger and
// restarts the frontend after the flush penalty.
func (c *Core) commit() {
	n := 0
	defer func() {
		// Top-down slot accounting: whatever the loop did not retire this
		// cycle is charged to the blocking reason at the head.
		c.st.Slots.Retired += uint64(n)
		lost := uint64(c.cfg.Width - n)
		if lost == 0 {
			return
		}
		if c.robCount == 0 {
			c.st.Slots.StallEmpty += lost
			return
		}
		e := &c.rob[c.robHead]
		switch {
		case !e.valid:
			c.st.Slots.StallEmpty += lost
		case e.isLoad():
			c.st.Slots.StallLoad += lost
		default:
			c.st.Slots.StallExec += lost
		}
	}()
	for ; n < c.cfg.Width && c.robCount > 0; n++ {
		e := &c.rob[c.robHead]
		if !e.valid || !e.issued || e.doneReal > c.cycle || e.execDone > c.cycle {
			if e.valid && n == 0 {
				c.blameHeadStall(e)
			}
			return
		}

		// EPP retirement validation: a Store Sequence Bloom Filter hit
		// (true or false positive) forces the load to re-execute before
		// it may retire (§2.2).
		if e.eppPredicted && c.ssbf != nil && c.ssbf.MayConflict(isa.LineAddr(e.op.Addr)) {
			e.eppPredicted = false
			e.execDone = c.cycle + c.hier.Latency(stats.LevelL1)
			c.st.EPPReexecutions++
			return
		}

		// Value prediction validation at retirement.
		if e.vpPredicted && !e.vpFlushed {
			if e.vpWrong {
				e.vpFlushed = true
				c.st.VP.Mispredicted++
				c.st.VPFlushes++
				c.flushFrom(1, true) // squash everything younger
				blocked := c.cycle + uint64(c.cfg.FlushPenalty)
				if blocked > c.fetchBlockedUntil {
					c.fetchBlockedUntil = blocked
				}
			} else {
				c.st.VP.Correct++
			}
		}

		c.retire(e)
	}
}

// blameHeadStall attributes a commit-head stall for criticality training.
// If the stalled entry is itself an unfinished load, it is critical; if it
// is waiting on an unfinished source produced by a load (the common case:
// an ALU consumer heads the ROB while its load crawls through the
// hierarchy), the blame propagates to that load.
func (c *Core) blameHeadStall(e *entry) {
	e.stalledHead = true
	if c.crit == nil {
		return
	}
	if e.isLoad() {
		return // marked at its own retirement via stalledHead
	}
	for s := 0; s < 2; s++ {
		if p := c.producerOf(e, s); p != nil && p.isLoad() && p.doneReal > c.cycle {
			c.crit.MarkCritical(p.op.PC)
		}
	}
}

// retire finalizes the head entry and frees its resources.
func (c *Core) retire(e *entry) {
	switch {
	case e.isLoad():
		c.st.Loads++
		c.lqCount--
		if c.profile != nil {
			c.profile.record(e)
		}
		c.trainLoadCommit(e.op.PC, e.pathAtDispatch, e.pathAtFetch, e.op.Addr, e.op.Value)
		// The cache-level predictor trains here and only here: the serving
		// level is a timing fact known at retirement, and commit-order
		// training keeps squashed or replayed instances out of the table
		// (FastForward deliberately skips it — functional warming has no
		// levels to observe).
		if c.clp != nil {
			if e.clpPredicted && int(e.clpLevel) == e.hitLevel {
				c.st.CLP.Correct[e.clpLevel]++
			}
			c.clp.Train(e.op.PC, e.hitLevel)
		}
		if c.crit != nil {
			if e.stalledHead {
				c.crit.MarkCritical(e.op.PC)
			} else {
				c.crit.MarkBenign(e.op.PC)
			}
		}
		if c.dlvp != nil {
			c.dlvp.TrainFwd(e.op.PC, e.forwarded)
		}
	case e.isStore():
		c.st.Stores++
		c.sqCount--
	case e.op.IsBranch():
		c.st.Branches++
	}
	c.releaseDstAtRetire(e)
	// Release the rename-table mapping if this uop is still the youngest
	// producer of its destination.
	if e.op.Dst.Valid() {
		if p := c.renameTable[e.op.Dst]; p.valid && p.seq == e.op.Seq {
			c.renameTable[e.op.Dst] = producer{}
		}
	}
	if c.chk != nil {
		c.chk.observeRetire(c, e)
	}
	c.traceUopEvent("commit    ", &e.op)
	if c.onRetire != nil {
		c.onRetire(e)
	}
	if c.onCommit != nil {
		c.onCommit(&e.op)
	}
	e.valid = false
	c.robHead = (c.robHead + 1) % len(c.rob)
	c.robCount--
	c.committed++
}

// trainLoadCommit trains the retirement-order load predictors shared by
// commit and functional fast-forward: the RFP Prefetch Table / context
// predictor (dispatch-time path), EVES, and the DLVP address table —
// which predicts at fetch, so it must train with the fetch-time path
// history or lookups never hit. The tables are independent of each
// other, so one ordering serves both callers.
func (c *Core) trainLoadCommit(pc, dispatchPath, fetchPath, addr, value uint64) {
	if c.pf != nil {
		c.pf.Commit(pc, dispatchPath, addr)
	}
	if c.eves != nil {
		c.eves.Train(pc, value)
	}
	if c.dlvp != nil {
		c.dlvp.TrainAddr(pc, fetchPath, addr)
	}
}

// flushFrom squashes every in-flight uop from the given ROB offset
// (inclusive) to the tail, returning their uops — plus everything still in
// the fetch queue — to the replay buffer in program order. It rebuilds the
// rename table from the surviving window. Offsets < robCount are required.
func (c *Core) flushFrom(fromOff int, refetch bool) {
	if fromOff >= c.robCount {
		c.requeueFetchQ(nil)
		return
	}
	c.traceFlush(fromOff, c.robCount-fromOff)
	// Collect squashed uops oldest-first and undo their bookkeeping. The
	// collection buffer is owned by the Core and reused across flushes
	// (its contents are copied into the replay buffer before this
	// function returns), keeping branch-mispredict recovery off the heap.
	squashed := c.squashBuf[:0]
	firstSeq := uint64(0)
	for off := fromOff; off < c.robCount; off++ {
		e := &c.rob[c.robIndex(off)]
		if !e.valid {
			continue
		}
		if firstSeq == 0 {
			firstSeq = e.op.Seq
		}
		op := e.op
		op.Seq = 0 // reassigned at re-dispatch
		squashed = append(squashed, op)

		if e.inRS {
			c.rsCount--
		}
		switch {
		case e.isLoad():
			c.lqCount--
			if e.ptAllocated {
				c.pf.Squash(e.op.PC)
				if c.chk != nil && c.chk.invariants {
					c.chk.ptDecrement(c)
				}
			}
			if e.evesAllocated {
				c.eves.Squash(e.op.PC)
			}
			if e.dlvpAllocated {
				c.dlvp.Squash(e.op.PC, e.pathAtFetch)
			}
		case e.isStore():
			c.sqCount--
			if e.addrKnown && c.chk != nil {
				c.chk.dropStoreIssued(e.op.Seq, e.op.Addr)
			}
		}
	}
	// Walk the squashed suffix youngest-first to unwind the register
	// mappings: each entry's own register returns to the free list and
	// the architectural map rolls back to the previous writer, ending at
	// the youngest SURVIVING mapping.
	for off := c.robCount - 1; off >= fromOff; off-- {
		e := &c.rob[c.robIndex(off)]
		if !e.valid {
			continue
		}
		c.releaseDstAtSquash(e)
		if !c.cfg.LateRegAlloc && e.op.Dst.Valid() {
			c.aratPReg[e.op.Dst] = e.prevPReg
		}
		e.valid = false
	}
	c.robCount = fromOff

	// Squashed prefetch packets evaporate from the RFP queue.
	if c.rfpQ != nil && firstSeq != 0 {
		dropped := c.rfpQ.DropWhere(func(p rfp.Packet) bool {
			return uint64(p.LoadID) >= firstSeq
		})
		c.st.RFP.Dropped += uint64(dropped)
	}

	// Rebuild the rename table from the surviving suffix.
	c.renameTable = [isa.NumArchRegs]producer{}
	for off := 0; off < c.robCount; off++ {
		e := &c.rob[c.robIndex(off)]
		if e.valid && e.op.Dst.Valid() {
			c.renameTable[e.op.Dst] = producer{seq: e.op.Seq, idx: c.robIndex(off), valid: true}
		}
	}

	c.squashBuf = squashed // keep any capacity growth for the next flush
	if refetch {
		c.requeueFetchQ(squashed)
	}

	// The squashed window may have contained the mispredicted branch that
	// was blocking fetch; recompute the halt from what survived.
	c.fetchHalted = false
	for off := 0; off < c.robCount; off++ {
		e := &c.rob[c.robIndex(off)]
		if e.valid && e.op.IsBranch() && e.mispredicted && !e.issued {
			c.fetchHalted = true
			break
		}
	}
}

// requeueFetchQ returns squashed ROB uops plus the current fetch queue to
// the front of the replay buffer, in program order, undoing fetch-time
// predictor allocations. The merged buffer is built in a Core-owned
// scratch slice and swapped with the replay buffer, so steady-state
// flushes reuse the two backing arrays instead of allocating.
func (c *Core) requeueFetchQ(squashed []isa.MicroOp) {
	merged := append(c.mergeBuf[:0], squashed...)
	for i := c.fetchHead; i < len(c.fetchQ); i++ {
		f := &c.fetchQ[i]
		if f.dlvpPredicted {
			c.dlvp.Squash(f.op.PC, f.pathAtFetch)
		}
		op := f.op
		op.Seq = 0
		merged = append(merged, op)
	}
	c.fetchQ = c.fetchQ[:0]
	c.fetchHead = 0

	if len(merged) == 0 {
		c.mergeBuf = merged
		return
	}
	merged = append(merged, c.pending[c.pendingHead:]...)
	// Swap buffers: the old replay backing array becomes the next flush's
	// scratch (its live contents were just copied into merged).
	c.mergeBuf = c.pending[:0]
	c.pending = merged
	c.pendingHead = 0
}
