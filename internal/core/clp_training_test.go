package core

import (
	"context"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/isa"
	"rfpsim/internal/predictor"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
)

// clpTestSpec returns the catalog workload the CLP training tests run on.
func clpTestSpec(t *testing.T) trace.Spec {
	t.Helper()
	spec, ok := trace.ByName("spec06_gcc")
	if !ok {
		t.Fatal("spec06_gcc missing from catalog")
	}
	return spec
}

// TestCLPUntrainedByFastForward pins the FastForward contract for the
// cache-level predictor: functional warming has no timing, so it must
// leave the CLP table untouched. After fast-forwarding a real workload,
// every load PC in the consumed stream must still miss the (tagged)
// table — no confident prediction, level 0.
func TestCLPUntrainedByFastForward(t *testing.T) {
	spec := clpTestSpec(t)
	const n = 20000

	// Collect the load PCs of the exact stream FastForward will consume.
	gen := spec.New()
	pcs := map[uint64]bool{}
	var op isa.MicroOp
	for i := 0; i < n && gen.Next(&op); i++ {
		if op.IsLoad() {
			pcs[op.PC] = true
		}
	}
	if len(pcs) == 0 {
		t.Fatal("stream contains no loads — the test is vacuous")
	}

	c := New(config.Baseline().WithCLP(), spec.New())
	if c.clp == nil {
		t.Fatal("WithCLP core built without a cache-level predictor")
	}
	if err := c.FastForward(context.Background(), n); err != nil {
		t.Fatal(err)
	}
	for pc := range pcs {
		if level, confident := c.clp.Predict(pc); confident || level != 0 {
			t.Fatalf("FastForward trained the CLP: Predict(%#x) = (%d, %v), want (0, false)", pc, level, confident)
		}
	}
}

// TestCLPTrainsOnlyAtCommit proves the predictor's training events are
// exactly the retired-load stream: replaying (PC, serving level) from the
// onRetire hook into a fresh reference CLP reproduces the core's table
// bit-for-bit, as observed through Predict. Squashed instances, replays
// and dispatch-time lookups therefore contribute nothing.
func TestCLPTrainsOnlyAtCommit(t *testing.T) {
	spec := clpTestSpec(t)
	c := New(config.Baseline().WithCLP(), spec.New())
	c.WarmCaches()

	ref := predictor.NewCLP(12, stats.NumLevels)
	pcs := map[uint64]bool{}
	retired := 0
	c.onRetire = func(e *entry) {
		if !e.isLoad() {
			return
		}
		// retire() has already trained c.clp on this entry; mirroring the
		// same (PC, level) into the reference keeps the tables in lockstep
		// iff retirement is the ONLY training site.
		ref.Train(e.op.PC, e.hitLevel)
		pcs[e.op.PC] = true
		retired++
	}
	if _, err := c.Run(context.Background(), 30000); err != nil {
		t.Fatal(err)
	}
	if retired == 0 {
		t.Fatal("no loads retired — the comparison is vacuous")
	}

	for pc := range pcs {
		gotL, gotC := c.clp.Predict(pc)
		wantL, wantC := ref.Predict(pc)
		if gotL != wantL || gotC != wantC {
			t.Fatalf("Predict(%#x) = (%d, %v) but retire-stream replay gives (%d, %v): CLP trained outside load commit",
				pc, gotL, gotC, wantL, wantC)
		}
	}
	if c.st.CLP.PredictedTotal() == 0 {
		t.Error("cycle run made no confident predictions — dispatch lookup is not wired")
	}
}
