package core

import (
	"context"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/isa"
	"rfpsim/internal/prng"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
)

// loopGen replays a fixed uop sequence forever, assigning sequence numbers
// and (for strided loads) advancing addresses by a per-slot stride.
type loopGen struct {
	name    string
	body    []isa.MicroOp
	strides []int64 // per-slot address stride applied each iteration
	wrap    uint64  // footprint bound for strided addresses (0 = unbounded)
	pos     int
	iter    uint64
	seq     uint64
}

func (g *loopGen) Name() string { return g.name }

func (g *loopGen) Next(op *isa.MicroOp) bool {
	*op = g.body[g.pos]
	if g.strides != nil && g.strides[g.pos] != 0 {
		delta := uint64(g.strides[g.pos] * int64(g.iter))
		if g.wrap != 0 {
			delta %= g.wrap
		}
		op.Addr += delta
	}
	op.Seq = g.seq
	g.seq++
	g.pos++
	if g.pos == len(g.body) {
		g.pos = 0
		g.iter++
	}
	return true
}

func run(t *testing.T, cfg config.Core, gen isa.Generator, n uint64) *stats.Sim {
	t.Helper()
	c := New(cfg, gen)
	st, err := c.Run(context.Background(), n)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return st
}

// alu builds an ALU uop.
func alu(pc uint64, dst, s1, s2 isa.RegID) isa.MicroOp {
	return isa.MicroOp{PC: pc, Class: isa.OpALU, Dst: dst, Src1: s1, Src2: s2}
}

func ld(pc uint64, dst, s1 isa.RegID, addr uint64) isa.MicroOp {
	return isa.MicroOp{PC: pc, Class: isa.OpLoad, Dst: dst, Src1: s1, Src2: isa.NoReg, Addr: addr, Size: 8}
}

func st8(pc uint64, s1, s2 isa.RegID, addr uint64) isa.MicroOp {
	return isa.MicroOp{PC: pc, Class: isa.OpStore, Dst: isa.NoReg, Src1: s1, Src2: s2, Addr: addr, Size: 8}
}

func br(pc uint64, taken bool) isa.MicroOp {
	return isa.MicroOp{PC: pc, Class: isa.OpBranch, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Taken: taken, Target: pc}
}

func TestSerialALUChainIPC(t *testing.T) {
	// r1 = alu(r1) forever: a strict dependence chain commits ~1 uop per
	// cycle once the window fills.
	g := &loopGen{name: "serial-alu", body: []isa.MicroOp{alu(0x10, 1, 1, isa.NoReg)}}
	st := run(t, config.Baseline(), g, 20000)
	ipc := st.IPC()
	if ipc < 0.90 || ipc > 1.05 {
		t.Errorf("serial ALU chain IPC = %.3f, want ~1.0", ipc)
	}
}

func TestIndependentALUsSaturateWidth(t *testing.T) {
	// Four independent chains: bounded by ALU ports (4) and width (5).
	g := &loopGen{name: "par-alu", body: []isa.MicroOp{
		alu(0x10, 1, 1, isa.NoReg),
		alu(0x14, 2, 2, isa.NoReg),
		alu(0x18, 3, 3, isa.NoReg),
		alu(0x1c, 4, 4, isa.NoReg),
	}}
	st := run(t, config.Baseline(), g, 40000)
	ipc := st.IPC()
	if ipc < 3.5 || ipc > 4.1 {
		t.Errorf("independent ALU IPC = %.3f, want ~4 (ALU ports)", ipc)
	}
}

func TestSerialLoadChainPaysL1Latency(t *testing.T) {
	// ptr = load[ptr] with the SAME address every time (L1-resident):
	// the chain's critical path is the 5-cycle L1 latency per load.
	g := &loopGen{name: "chase", body: []isa.MicroOp{ld(0x10, 1, 1, 0x8000)}}
	st := run(t, config.Baseline(), g, 10000)
	ipc := st.IPC()
	// 1 load per 5 cycles = 0.2 IPC.
	if ipc < 0.17 || ipc > 0.23 {
		t.Errorf("serial load chain IPC = %.3f, want ~0.2", ipc)
	}
	if st.LoadHitLevel[stats.LevelL1] < st.Loads*9/10 {
		t.Errorf("expected nearly all L1 hits, got %v of %d", st.LoadHitLevel, st.Loads)
	}
}

func TestOracleL1ToRFCollapsesLoadChain(t *testing.T) {
	g := func() *loopGen {
		return &loopGen{name: "chase", body: []isa.MicroOp{ld(0x10, 1, 1, 0x8000)}}
	}
	base := run(t, config.Baseline(), g(), 10000)
	oracle := run(t, config.Baseline().WithOracle(config.OracleL1ToRF), g(), 10000)
	sp := stats.Speedup(base, oracle)
	// Latency 5 -> 1 on a pure load chain: ~5x.
	if sp < 3.0 {
		t.Errorf("oracle L1->RF speedup = %.2f, want >= 3x on pure chain", sp)
	}
}

func TestRFPAcceleratesStridedChase(t *testing.T) {
	// A strided pointer chase: serial (address operand is the previous
	// load's result) but the address advances by +8 each iteration — the
	// paper's sweet spot (Figure 3 / chaseKernel).
	// The loop body has 4 uops so at most ~88 instances of the load PC
	// fit in the 352-entry window, within the 7-bit in-flight counter's
	// range; the footprint wraps inside the L1.
	mk := func() *loopGen {
		return &loopGen{
			name: "strided-chase",
			body: []isa.MicroOp{
				ld(0x10, 1, 1, 0x100000),
				alu(0x14, 2, 1, isa.NoReg),
				alu(0x18, 2, 2, isa.NoReg),
				br(0x1c, true),
			},
			strides: []int64{8, 0, 0, 0},
			wrap:    16 << 10,
		}
	}
	base := run(t, config.Baseline(), mk(), 30000)
	rfpd := run(t, config.Baseline().WithRFP(), mk(), 30000)
	sp := stats.Speedup(base, rfpd)
	if sp < 0.5 {
		t.Errorf("RFP speedup on strided chase = %.3f, want substantial (>0.5)", sp)
	}
	cov := rfpd.RFPCoverage()
	if cov < 0.5 {
		t.Errorf("RFP coverage on pure strided chase = %.3f, want > 0.5", cov)
	}
	if rfpd.RFP.Injected == 0 || rfpd.RFP.Executed == 0 {
		t.Error("RFP pipeline never engaged")
	}
}

func TestRFPHarmlessOnUnpredictableAddresses(t *testing.T) {
	// A hash-like pattern: strides never repeat, the PT must stay
	// low-confidence and RFP must not slow the machine down.
	body := []isa.MicroOp{
		ld(0x10, 1, 2, 0x100000),
		ld(0x14, 3, 2, 0x140000),
		alu(0x18, 2, 2, 1),
		br(0x1c, true),
	}
	strides := []int64{2248, 31 * 8, 0, 0} // not 8-bit encodable / irregular
	mk := func() *loopGen {
		return &loopGen{name: "irregular", body: body, strides: strides, wrap: 32 << 10}
	}
	base := run(t, config.Baseline(), mk(), 30000)
	rfpd := run(t, config.Baseline().WithRFP(), mk(), 30000)
	sp := stats.Speedup(base, rfpd)
	if sp < -0.02 {
		t.Errorf("RFP slowed an RFP-hostile workload by %.3f; lowest-priority ports must protect the baseline", -sp)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// store [X] <- r2 ; load r3 <- [X]: the load must forward, not
	// violate.
	body := []isa.MicroOp{
		alu(0x0c, 2, 2, isa.NoReg),
		st8(0x10, isa.NoReg, 2, 0x9000),
		ld(0x14, 3, isa.NoReg, 0x9000),
		alu(0x18, 4, 3, isa.NoReg),
	}
	st := run(t, config.Baseline(), &loopGen{name: "fwd", body: body}, 20000)
	if st.StoreForwarded == 0 {
		t.Fatal("no store-to-load forwarding observed")
	}
	if st.StoreForwarded < st.Loads/2 {
		t.Errorf("forwarded %d of %d loads, want most", st.StoreForwarded, st.Loads)
	}
}

func TestMemoryOrderingViolationsDetectedAndLearned(t *testing.T) {
	// The store's address operand depends on a slow chain while the load
	// to the same address is immediately ready: the load speculates past
	// the store at least once, causing a violation; store sets then
	// synchronize the pair so violations stop repeating every iteration.
	body := []isa.MicroOp{
		alu(0x10, 1, 1, isa.NoReg), // slow-ish chain feeding the store addr
		alu(0x14, 2, 1, isa.NoReg),
		st8(0x18, 2, 2, 0xA000),
		ld(0x1c, 3, isa.NoReg, 0xA000), // ready instantly: will speculate
		alu(0x20, 4, 3, isa.NoReg),
	}
	st := run(t, config.Baseline(), &loopGen{name: "viol", body: body}, 50000)
	if st.MemOrderViolations == 0 {
		t.Fatal("expected at least one ordering violation")
	}
	iterations := st.Loads
	if st.MemOrderViolations > iterations/4 {
		t.Errorf("violations %d of %d iterations: store sets are not learning",
			st.MemOrderViolations, iterations)
	}
	// Forwarding should dominate once synchronized.
	if st.StoreForwarded == 0 {
		t.Error("no forwarding after synchronization")
	}
}

func TestBranchMispredictsCreateBubbles(t *testing.T) {
	// Pattern-free branches: ~50% mispredicts shrink IPC well below the
	// all-taken variant.
	taken := &loopGen{name: "taken", body: []isa.MicroOp{
		alu(0x10, 1, 1, isa.NoReg), br(0x14, true),
	}}
	// Truly random directions are unlearnable for any predictor: bubbles
	// must show and cost IPC.
	rnd := func() isa.Generator {
		return &branchFlipGen{inner: &loopGen{name: "rnd", body: []isa.MicroOp{
			alu(0x100, 1, 1, isa.NoReg),
			br(0x104, true),
		}}, rng: prng.New(99)}
	}
	stTaken := run(t, config.Baseline(), taken, 30000)
	stRnd := run(t, config.Baseline(), rnd(), 30000)
	if stRnd.BranchMispredicts < stRnd.Branches/4 {
		t.Fatalf("random branches mispredicted only %d of %d", stRnd.BranchMispredicts, stRnd.Branches)
	}
	if stRnd.IPC() > 0.75*stTaken.IPC() {
		t.Errorf("mispredicts too cheap: %.3f vs %.3f", stRnd.IPC(), stTaken.IPC())
	}
	if stTaken.BranchMispredicts > stTaken.Branches/50 {
		t.Errorf("all-taken loop mispredicted %d of %d", stTaken.BranchMispredicts, stTaken.Branches)
	}
	// A long periodic pattern, in contrast, is learnable — and TAGE must
	// learn it at least as well as gshare.
	var body []isa.MicroOp
	pat := []bool{true, false, false, true, false, true, true, false, true, false, false, false, true, true, false, true, false}
	for i, tk := range pat {
		body = append(body, alu(uint64(0x100+8*i), 1, 1, isa.NoReg))
		body = append(body, br(uint64(0x104+8*i), tk))
	}
	mkPat := func() *loopGen { return &loopGen{name: "pat", body: body} }
	gshareCfg := config.Baseline()
	gshareCfg.BranchPredictor = "gshare"
	stG := run(t, gshareCfg, mkPat(), 30000)
	stT := run(t, config.Baseline(), mkPat(), 30000)
	if stT.BranchMispredicts > stG.BranchMispredicts {
		t.Errorf("TAGE mispredicted %d vs gshare %d on a learnable pattern",
			stT.BranchMispredicts, stG.BranchMispredicts)
	}
}

// branchFlipGen randomizes every branch direction of the inner generator —
// an unlearnable control stream.
type branchFlipGen struct {
	inner *loopGen
	rng   *prng.Source
}

func (g *branchFlipGen) Name() string { return g.inner.Name() }
func (g *branchFlipGen) Next(op *isa.MicroOp) bool {
	ok := g.inner.Next(op)
	if op.IsBranch() {
		op.Taken = g.rng.Bool(0.5)
	}
	return ok
}

func TestEVESAcceleratesConstantLoadChain(t *testing.T) {
	// A serial chain through a constant-valued load: value prediction
	// breaks the dependence.
	mk := func() *loopGen {
		body := []isa.MicroOp{
			ld(0x10, 1, 1, 0xB000), // addr depends on own value: serial
			alu(0x14, 2, 1, isa.NoReg),
		}
		g := &loopGen{name: "constval", body: body}
		g.body[0].Value = 0xB000 // constant value = its own address
		return g
	}
	base := run(t, config.Baseline(), mk(), 20000)
	vp := run(t, config.Baseline().WithVP(config.VPEVES), mk(), 20000)
	if vp.VP.Predicted == 0 {
		t.Fatal("EVES never predicted a constant load")
	}
	if vp.VP.Mispredicted > vp.VP.Predicted/10 {
		t.Errorf("EVES mispredicted %d of %d on a constant", vp.VP.Mispredicted, vp.VP.Predicted)
	}
	if sp := stats.Speedup(base, vp); sp < 0.3 {
		t.Errorf("VP speedup on value-critical chain = %.3f, want > 0.3", sp)
	}
}

func TestVPMispredictsFlushAndStayCorrect(t *testing.T) {
	// Values alternate in a long pseudo-pattern: EVES will occasionally
	// gain confidence and then miss, forcing flushes; the machine must
	// keep committing the right number of uops.
	body := []isa.MicroOp{ld(0x10, 1, isa.NoReg, 0xC000), alu(0x14, 2, 1, isa.NoReg)}
	g := &loopGen{name: "flaky", body: body}
	// Value changes every iteration via stride on value? loopGen doesn't
	// support that; emulate by making the value equal to the iteration
	// via strided *address* and Value tied to Addr below.
	g.strides = []int64{8, 0}
	cfg := config.Baseline().WithVP(config.VPEVES)
	cfg.VP.ConfMax = 2 // low threshold: force some mispredicts
	c := New(cfg, &valueFlipGen{g})
	st, err := c.Run(context.Background(), 20000)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if st.Instructions < 20000 {
		t.Errorf("committed %d, want 20000", st.Instructions)
	}
	if st.VPFlushes == 0 {
		t.Error("expected some VP flushes with a low threshold and flaky values")
	}
}

// valueFlipGen wraps a generator and gives loads values that repeat 7
// times then change — enough to gain low-threshold confidence and then
// mispredict.
type valueFlipGen struct{ inner *loopGen }

func (v *valueFlipGen) Name() string { return v.inner.Name() }
func (v *valueFlipGen) Next(op *isa.MicroOp) bool {
	ok := v.inner.Next(op)
	if op.IsLoad() {
		op.Value = op.Seq / 14 // changes every 7 iterations (2 uops/iter)
	}
	return ok
}

func TestDeterministicCycleCounts(t *testing.T) {
	spec, _ := trace.ByName("spec06_gcc")
	cfg := config.Baseline().WithRFP()
	a := New(cfg, spec.New())
	b := New(cfg, spec.New())
	stA, errA := a.Run(context.Background(), 15000)
	stB, errB := b.Run(context.Background(), 15000)
	if errA != nil || errB != nil {
		t.Fatalf("runs failed: %v %v", errA, errB)
	}
	if stA.Cycles != stB.Cycles {
		t.Fatalf("nondeterministic: %d vs %d cycles", stA.Cycles, stB.Cycles)
	}
	if stA.RFP != stB.RFP {
		t.Fatalf("nondeterministic RFP stats: %+v vs %+v", stA.RFP, stB.RFP)
	}
}

func TestAllWorkloadsRunOnAllFeatureConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cfgs := []config.Core{
		config.Baseline(),
		config.Baseline().WithRFP(),
		config.Baseline().WithVP(config.VPEVES),
		config.Baseline().WithVP(config.VPDLVP),
		config.Baseline().WithVP(config.VPComposite),
		config.Baseline().WithVP(config.VPEPP),
		config.Baseline2x().WithRFP(),
	}
	// A representative subset to keep runtime sane; the experiments
	// harness covers the full matrix.
	names := []string{"spec06_mcf", "spec06_wrf", "spec17_xalancbmk", "hadoop", "geekbench_int", "lammps"}
	for _, cfg := range cfgs {
		for _, name := range names {
			spec, ok := trace.ByName(name)
			if !ok {
				t.Fatalf("workload %s missing", name)
			}
			c := New(cfg, spec.New())
			st, err := c.Run(context.Background(), 8000)
			if err != nil {
				t.Errorf("%s on %s: %v", name, cfg.Name, err)
				continue
			}
			if st.Instructions < 8000 {
				t.Errorf("%s on %s: committed %d", name, cfg.Name, st.Instructions)
			}
			if st.IPC() <= 0.01 || st.IPC() > float64(cfg.Width) {
				t.Errorf("%s on %s: implausible IPC %.3f", name, cfg.Name, st.IPC())
			}
		}
	}
}

func TestLoadDistributionMostlyL1(t *testing.T) {
	// The suite is tuned so ~90+% of loads hit the L1 (paper Figure 2:
	// 92.8%); check a cache-friendly workload after cache warmup.
	spec, _ := trace.ByName("spec06_hmmer")
	c := New(config.Baseline(), spec.New())
	if err := c.Warmup(context.Background(), 40000); err != nil {
		t.Fatal(err)
	}
	st, err := c.Run(context.Background(), 30000)
	if err != nil {
		t.Fatal(err)
	}
	if f := st.LoadLevelFrac(stats.LevelL1); f < 0.85 {
		t.Errorf("hmmer L1 fraction = %.3f, want > 0.85", f)
	}
}

func TestMemBoundWorkloadMissesCaches(t *testing.T) {
	spec, _ := trace.ByName("spec06_mcf")
	st := run(t, config.Baseline(), spec.New(), 30000)
	missFrac := st.LoadLevelFrac(stats.LevelMem) + st.LoadLevelFrac(stats.LevelLLC) +
		st.LoadLevelFrac(stats.LevelL2) + st.LoadLevelFrac(stats.LevelMSHR)
	if missFrac < 0.10 {
		t.Errorf("mcf beyond-L1 fraction = %.3f, want >= 0.10", missFrac)
	}
	if st.IPC() > 1.5 || st.IPC() < 0.01 {
		t.Errorf("mcf IPC = %.3f, implausible for a memory-bound workload", st.IPC())
	}
}

func TestRunStopsAtTarget(t *testing.T) {
	g := &loopGen{name: "x", body: []isa.MicroOp{alu(0x10, 1, 1, isa.NoReg)}}
	c := New(config.Baseline(), g)
	st, err := c.Run(context.Background(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions < 500 || st.Instructions > 520 {
		t.Errorf("committed %d, want ~500", st.Instructions)
	}
	// Run again: resumes where it stopped.
	st, err = c.Run(context.Background(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions < 1000 {
		t.Errorf("second run total %d, want >= 1000", st.Instructions)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	bad := config.Baseline()
	bad.Width = 0
	New(bad, &loopGen{name: "x", body: []isa.MicroOp{alu(0x10, 1, 1, isa.NoReg)}})
}
