package core

import (
	"rfpsim/internal/config"
	"rfpsim/internal/isa"
	"rfpsim/internal/rfp"
	"rfpsim/internal/stats"
)

// fetch pulls up to Width uops per cycle from the replay buffer (flushed
// uops awaiting re-fetch) or the workload generator into the fetch queue,
// stamping each with the frontend latency. Fetch halts at an unresolved
// predicted-wrong branch (the machine would be on the wrong path; we model
// the bubble rather than simulating wrong-path uops) and during
// redirect/flush penalties.
func (c *Core) fetch() {
	if c.fetchHalted || c.cycle < c.fetchBlockedUntil {
		return
	}
	// The fetch/decode queue is a bounded structure; when rename is
	// backpressured (window full) fetch stalls rather than running ahead
	// indefinitely.
	maxQ := 4 * c.cfg.Width * c.cfg.FrontendLatency
	for i := 0; i < c.cfg.Width && c.fetchQLen() < maxQ; i++ {
		// The scratch uop lives on the Core: a local here escapes through
		// the Generator interface call and costs one heap allocation per
		// fetched uop.
		op := &c.fetchOp
		if c.pendingHead < len(c.pending) {
			*op = c.pending[c.pendingHead]
			c.pendingHead++
			if c.pendingHead == len(c.pending) {
				c.pending = c.pending[:0]
				c.pendingHead = 0
			}
		} else if !genNext(c, op) {
			return
		}
		f := fetched{
			op:          *op,
			readyAt:     c.cycle + uint64(c.cfg.FrontendLatency),
			pathAtFetch: c.fetchPath,
		}
		if op.IsBranch() {
			f.predTaken = c.bp.Predict(op.PC)
			f.mispredict = f.predTaken != op.Taken
			// Train immediately in fetch order (the standard trace-driven
			// idealization: no wrong path is ever fetched, so the resolved
			// outcome is available). Training at issue instead would make
			// global history depend on issue order, coupling branch
			// accuracy to unrelated scheduling perturbations.
			c.bp.Update(op.PC, op.Taken)
			// The fetch-time path history advances in fetch order, so a
			// static load always observes the same path for the same
			// control flow — required for path-based predictors to train.
			c.fetchPath = (c.fetchPath<<4 ^ (op.PC>>2)&0x7 ^ uint64(boolU(op.Taken))) & 0xFFFF
		}
		if op.IsLoad() {
			c.dlvpAtFetch(&f)
		}
		c.fetchQ = append(c.fetchQ, f)
		if f.mispredict {
			// Stop fetching: everything after this branch would be
			// wrong-path. Issue resolves the branch and schedules the
			// resume.
			c.fetchHalted = true
			return
		}
	}
}

// dlvpAtFetch runs the DLVP/EPP early address prediction and L1 probe at
// instruction fetch (§5.4), instrumenting the Figure 16 constraint
// waterfall: address predictability → high-confidence filter → no-forward
// filter → L1 port availability → probe timeliness (checked at rename).
func (c *Core) dlvpAtFetch(f *fetched) {
	if c.dlvp == nil {
		return
	}
	pred := c.dlvp.PredictAddr(f.op.PC, f.pathAtFetch)
	f.dlvpPredicted = true
	if !pred.Match {
		return
	}
	c.st.AP.AddressPredictable++
	if !pred.HighConfidence {
		return
	}
	c.st.AP.HighConfidence++
	if !c.dlvp.AllowedByNoFwd(f.op.PC) {
		return
	}
	c.st.AP.NoFwdPass++

	if c.cfg.VP.Mode == config.VPEPP {
		// EPP register sharing: if an in-flight load already covers the
		// predicted word, its register file entry is shared and no L1
		// probe is needed.
		for off := 0; off < c.robCount; off++ {
			e := &c.rob[c.robIndex(off)]
			if e.valid && e.isLoad() && sameWord(e.op.Addr, pred.Addr) {
				f.eppShared = true
				f.probeLaunched = true
				f.probeAddr = pred.Addr
				f.probeDoneAt = c.cycle
				c.st.AP.ProbeLaunched++
				return
			}
		}
	}

	// The early probe competes for L1 ports at the lowest priority;
	// demand loads, then RFP requests, have already claimed theirs this
	// cycle. Probes to pages without a DTLB translation are dropped (a
	// page walk would outlast the fetch-to-allocate window anyway, the
	// same reasoning as RFP's §3.2.2 simplification).
	if c.loadUsed >= c.cfg.LoadPorts || !c.hier.TLBCovers(pred.Addr) {
		return
	}
	c.loadUsed++
	c.st.AP.ProbeLaunched++
	res := c.hier.Access(pred.Addr, f.op.PC, c.cycle, false)
	f.probeLaunched = true
	f.probeAddr = pred.Addr
	f.probeDoneAt = res.DoneAt
}

// rename pulls up to Width frontend uops whose fetch latency has elapsed
// and dispatches them into the OOO window, performing register renaming,
// resource allocation, value-prediction consumption and RFP injection.
func (c *Core) rename() {
	if c.cycle < c.fetchBlockedUntil {
		return
	}
	for i := 0; i < c.cfg.Width; i++ {
		if c.fetchHead >= len(c.fetchQ) {
			c.fetchQ = c.fetchQ[:0]
			c.fetchHead = 0
			return
		}
		// Compact the drained prefix occasionally so the queue's backing
		// array stays small.
		if c.fetchHead > 256 {
			n := copy(c.fetchQ, c.fetchQ[c.fetchHead:])
			c.fetchQ = c.fetchQ[:n]
			c.fetchHead = 0
		}
		f := &c.fetchQ[c.fetchHead]
		if f.readyAt > c.cycle {
			return
		}
		if !c.canDispatch(&f.op) {
			return
		}
		c.dispatchOne(*f)
		c.fetchHead++
	}
}

// canDispatch checks every structural resource the uop needs.
func (c *Core) canDispatch(op *isa.MicroOp) bool {
	if c.robCount >= len(c.rob) || c.rsCount >= c.cfg.RSSize {
		return false
	}
	if op.IsLoad() && c.lqCount >= c.cfg.LQSize {
		return false
	}
	if op.IsStore() && c.sqCount >= c.cfg.SQSize {
		return false
	}
	if op.Dst.Valid() && !c.cfg.LateRegAlloc {
		if op.Dst.IsFP() {
			if c.fpPRFFree() <= 0 {
				return false
			}
		} else if c.intPRFFree() <= 0 {
			return false
		}
	}
	return true
}

// dispatchOne renames and allocates one uop into the window.
func (c *Core) dispatchOne(f fetched) {
	idx := c.robIndex(c.robCount)
	e := &c.rob[idx]
	e.reset()
	e.valid = true
	e.op = f.op
	c.nextSeq++
	e.op.Seq = c.nextSeq // dispatch order; 0 is never a valid producer
	e.dispatchCycle = c.cycle
	e.pathAtDispatch = c.pathHash
	e.pathAtFetch = f.pathAtFetch
	e.earliestIssue = c.cycle + uint64(c.cfg.SchedDepth)
	e.doneSpec = farFuture
	e.doneReal = farFuture
	e.execDone = farFuture
	e.predictedTaken = f.predTaken
	e.mispredicted = f.mispredict

	// Register renaming: record in-flight producers for each source.
	for s, reg := range [2]isa.RegID{f.op.Src1, f.op.Src2} {
		if reg.Valid() {
			if p := c.renameTable[reg]; p.valid {
				e.srcSeq[s] = p.seq
				e.srcIdx[s] = int32(p.idx)
			}
		}
	}
	if f.op.Dst.Valid() {
		c.renameTable[f.op.Dst] = producer{seq: e.op.Seq, idx: idx, valid: true}
		// With late register allocation (§3.3 variation) the physical
		// entry is claimed at completion, not here; until then the
		// consumer chain carries a virtual pointer.
		if !c.cfg.LateRegAlloc {
			e.pReg = c.allocPReg(f.op.Dst)
			e.prevPReg = c.aratPReg[f.op.Dst]
			c.aratPReg[f.op.Dst] = e.pReg
			if c.chk != nil && c.chk.invariants {
				c.chk.checkSingleWriter(c, e)
			}
		}
	}

	c.robCount++
	c.rsCount++
	e.inRS = true
	c.traceUopEvent("dispatch  ", &e.op)

	switch {
	case f.op.IsLoad():
		c.lqCount++
		c.dispatchLoad(e, idx, f)
	case f.op.IsStore():
		c.sqCount++
	case f.op.IsBranch():
		// Global path history feeds the context prefetcher and DLVP. The
		// history is a short window (the last few branches), not an
		// accumulating hash: path predictors rely on the same path
		// recurring, which an unbounded history never does.
		c.pathHash = (c.pathHash<<4 ^ (f.op.PC>>2)&0x7 ^ uint64(boolU(f.op.Taken))) & 0xFFFF
	}
}

// dispatchLoad applies the load-side features at allocation time: value
// prediction (EVES and/or the DLVP probe launched at fetch) and RFP packet
// injection (§3.2: the prefetch is triggered immediately after renaming,
// when the load's physical destination register is known).
func (c *Core) dispatchLoad(e *entry, idx int, f fetched) {
	// Instrument operand readiness at allocation (§3: 63% of loads are
	// not ready at allocation, which is RFP's run-ahead window).
	if c.srcReady(e, 0, c.cycle, false) && c.srcReady(e, 1, c.cycle, false) {
		c.st.LoadsAddrReadyAtAlloc++
	}

	// EVES value prediction (modes EVES, Composite, and VP+RFP).
	if c.eves != nil {
		e.evesAllocated = true
		if val, ok := c.eves.Predict(e.op.PC); ok {
			e.vpPredicted = true
			e.vpValue = val
			e.vpWrong = val != e.op.Value
			c.st.VP.Predicted++
			// Dependents consume the predicted value right away.
			e.doneSpec = c.cycle + 1
			e.doneReal = c.cycle + 1
		}
	}
	// DLVP/EPP: the early probe only helps if its data returned before
	// allocation (§5.4 constraint 4).
	if !e.vpPredicted && f.probeLaunched {
		e.dlvpAllocated = true
		if f.probeDoneAt <= c.cycle {
			c.st.AP.ProbeInTime++
			e.vpPredicted = true
			e.apPredicted = true
			e.eppPredicted = c.cfg.VP.Mode == config.VPEPP
			// The probed data is the load's value only if the predicted
			// address was right; staleness against in-flight stores is
			// detected when the load executes (it would have forwarded
			// from the store queue, so the L1 probe read old data).
			e.vpWrong = f.probeAddr != e.op.Addr
			c.st.VP.Predicted++
			e.doneSpec = c.cycle + 1
			e.doneReal = c.cycle + 1
		}
	} else if f.dlvpPredicted {
		e.dlvpAllocated = true
	}

	// RFP injection (§3.2). Allocate is called for every load so the
	// in-flight counter stays balanced; a packet is only injected when
	// the PT is confident — and, in the VP+RFP fusion, when the load was
	// not already value predicted (§5.3).
	if c.pf != nil {
		e.ptAllocated = true
		if c.chk != nil && c.chk.invariants {
			c.chk.ptAllocate()
		}
		addr, eligible := c.pf.Allocate(e.op.PC, c.pathHash)
		// The criticality-targeted variant (§5.1 future work) only spends
		// queue slots and L1 bandwidth on loads known to stall commit.
		if c.cfg.RFP.CriticalOnly && c.crit != nil && !c.crit.IsCritical(e.op.PC) {
			eligible = false
		}
		// The cache-level-predicted arming schedule (docs/predictors.md):
		// a confident level prediction shapes how — and whether — this
		// load's prefetch is spent.
		if c.clp != nil {
			if level, confident := c.clp.Predict(e.op.PC); confident {
				e.clpPredicted = true
				e.clpLevel = uint8(level)
				c.st.CLP.Predicted[level]++
				switch {
				case level == stats.LevelMem:
					// A rename-time prefetch cannot outrun a DRAM access;
					// the queue slot and L1 port go to a load they can help.
					if eligible && !e.vpPredicted {
						c.st.CLP.SkippedDRAM++
					}
					eligible = false
				case c.hier.NearHit(level):
					// Predicted L1/L2 hit: the per-level latency estimate is
					// short and reliable, so the RFP-inflight bit arms a
					// cycle early and the load can rely on the prefetch that
					// much sooner.
					e.clpEarlyArm = true
				}
			}
			// Contested queue: when half the prefetch slots are taken,
			// only commit-stalling (critical) loads may claim the rest.
			if eligible && !e.vpPredicted && c.rfpQ.Contested() &&
				!c.crit.IsCritical(e.op.PC) {
				eligible = false
				c.st.CLP.CritGated++
			}
		}
		if eligible && !e.vpPredicted {
			c.st.RFP.Injected++
			pkt := rfpPacket(e, idx, addr)
			if c.rfpQ.Push(pkt) {
				e.rfp = rfpQueued
				e.rfpAddr = addr
			} else {
				c.st.RFP.Dropped++
				e.rfp = rfpDropped
			}
		}
	}
}

func boolU(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// producerOf returns the in-flight producer of source s, or nil if the
// source is architecturally ready (no producer, or it already committed).
func (c *Core) producerOf(e *entry, s int) *entry {
	seq := e.srcSeq[s]
	if seq == 0 {
		return nil
	}
	p := &c.rob[e.srcIdx[s]]
	if !p.valid || p.op.Seq != seq {
		return nil // slot recycled: the producer committed
	}
	return p
}

// srcReady reports whether source s of e is available at cycle now.
// speculative selects whether to trust speculative wakeup times (doneSpec)
// or actual completion times (doneReal).
func (c *Core) srcReady(e *entry, s int, now uint64, speculative bool) bool {
	p := c.producerOf(e, s)
	if p == nil {
		return true
	}
	t := p.doneReal
	if speculative {
		t = p.doneSpec
	}
	return t <= now
}

// srcReadyAt returns the cycle source s becomes actually available (0 when
// already ready).
func (c *Core) srcReadyAt(e *entry, s int) uint64 {
	p := c.producerOf(e, s)
	if p == nil {
		return 0
	}
	return p.doneReal
}

// rfpPacket builds the prefetch packet for a load entry at ring slot idx:
// the dispatch sequence number identifies the dynamic instance (stable
// across ROB slot reuse), the physical destination register is where the
// data will land, and the slot lets the arbitration stage set the load's
// RFP-inflight bit in O(1).
func rfpPacket(e *entry, idx int, addr uint64) rfp.Packet {
	return rfp.Packet{
		LoadID: int(e.op.Seq), PC: e.op.PC, Addr: addr,
		PRFID: int(e.pReg), Slot: idx,
	}
}

// levelIsHit reports whether a hierarchy level counts as an L1 hit for the
// hit-miss predictor (MSHR merges behave like misses for wakeup purposes).
func levelIsHit(level int) bool { return level == stats.LevelL1 }
