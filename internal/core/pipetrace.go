package core

import (
	"fmt"
	"io"

	"rfpsim/internal/isa"
)

// pipeTrace streams human-readable pipeline events for a cycle window —
// the tool used to answer "what exactly happened to this load?" when
// debugging RFP timing. One line per event:
//
//	cycle 1042 dispatch  seq=87 pc=0x20004 load addr=0x8000040
//	cycle 1042 rfp-exec  seq=87 addr=0x8000040 fill=1047 armed=1044
//	cycle 1045 issue     seq=87 pc=0x20004 load
//	cycle 1046 commit    seq=85 pc=0x20008 alu
type pipeTrace struct {
	w          io.Writer
	from, to   uint64
	eventCount uint64
}

// AttachPipeTrace streams pipeline events for cycles in [from, to) to w.
// Pass from=0, to=^uint64(0) for an unbounded trace; nil w detaches.
func (c *Core) AttachPipeTrace(w io.Writer, from, to uint64) {
	if w == nil {
		c.pipe = nil
		return
	}
	c.pipe = &pipeTrace{w: w, from: from, to: to}
}

// PipeTraceEvents returns the number of events emitted so far.
func (c *Core) PipeTraceEvents() uint64 {
	if c.pipe == nil {
		return 0
	}
	return c.pipe.eventCount
}

// tracef emits one event line when tracing is active for this cycle.
func (c *Core) tracef(format string, args ...interface{}) {
	if c.pipe == nil || c.cycle < c.pipe.from || c.cycle >= c.pipe.to {
		return
	}
	c.pipe.eventCount++
	fmt.Fprintf(c.pipe.w, "cycle %d ", c.cycle)
	fmt.Fprintf(c.pipe.w, format, args...)
	io.WriteString(c.pipe.w, "\n")
}

// traceUop renders the identity of a uop for event lines.
func traceUop(op *isa.MicroOp) string {
	switch {
	case op.IsLoad():
		return fmt.Sprintf("seq=%d pc=%#x load addr=%#x", op.Seq, op.PC, op.Addr)
	case op.IsStore():
		return fmt.Sprintf("seq=%d pc=%#x store addr=%#x", op.Seq, op.PC, op.Addr)
	case op.IsBranch():
		return fmt.Sprintf("seq=%d pc=%#x branch taken=%v", op.Seq, op.PC, op.Taken)
	default:
		return fmt.Sprintf("seq=%d pc=%#x %s", op.Seq, op.PC, op.Class)
	}
}
