package core

import (
	"fmt"
	"io"

	"rfpsim/internal/isa"
	"rfpsim/internal/stats"
)

// pipeTrace streams human-readable pipeline events for a cycle window —
// the tool used to answer "what exactly happened to this load?" when
// debugging RFP timing. One line per event:
//
//	cycle 1042 dispatch  seq=87 pc=0x20004 load addr=0x8000040
//	cycle 1042 rfp-exec  seq=87 addr=0x8000040 fill=1047 armed=1044
//	cycle 1045 issue     seq=87 pc=0x20004 load
//	cycle 1046 commit    seq=85 pc=0x20008 alu
//
// Lazy-tracing contract: the simulator's cycle loop must stay zero-alloc
// when tracing is detached or the cycle is outside the window, so no event
// helper in this file may format, box, or build anything before its
// traceActive guard passes. Pipeline stages emit events only through the
// typed trace* helpers below (never fmt-style varargs at the call site,
// whose arguments are evaluated — and allocate — eagerly); every helper
// checks traceActive first and only then renders the line.
type pipeTrace struct {
	w          io.Writer
	from, to   uint64
	eventCount uint64
}

// AttachPipeTrace streams pipeline events for cycles in [from, to) to w.
// Pass from=0, to=^uint64(0) for an unbounded trace; nil w detaches.
func (c *Core) AttachPipeTrace(w io.Writer, from, to uint64) {
	if w == nil {
		c.pipe = nil
		return
	}
	c.pipe = &pipeTrace{w: w, from: from, to: to}
}

// PipeTraceEvents returns the number of events emitted so far.
func (c *Core) PipeTraceEvents() uint64 {
	if c.pipe == nil {
		return 0
	}
	return c.pipe.eventCount
}

// traceActive reports whether the current cycle's events are being traced.
// It is the only tracing cost the hot loop pays: two compares, no
// allocation, inlinable.
func (c *Core) traceActive() bool {
	return c.pipe != nil && c.cycle >= c.pipe.from && c.cycle < c.pipe.to
}

// tracef emits one event line. Callers must have passed traceActive: the
// guard here is a backstop for correctness (the window check must never be
// skipped), not a license to call this from the hot path — the vararg
// boxing at a tracef call site allocates even when tracing is off.
func (c *Core) tracef(format string, args ...interface{}) {
	if !c.traceActive() {
		return
	}
	c.pipe.eventCount++
	fmt.Fprintf(c.pipe.w, "cycle %d ", c.cycle)
	fmt.Fprintf(c.pipe.w, format, args...)
	io.WriteString(c.pipe.w, "\n")
}

// traceUopCalls counts traceUop invocations. The eager-argument bug this
// file's contract exists to prevent had traceUop running for every uop
// while tracing was detached; TestTraceUopLazyWhenDetached pins the count
// at zero so the bug cannot silently return.
var traceUopCalls uint64

// traceUop renders the identity of a uop for event lines.
func traceUop(op *isa.MicroOp) string {
	traceUopCalls++
	switch {
	case op.IsLoad():
		return fmt.Sprintf("seq=%d pc=%#x load addr=%#x", op.Seq, op.PC, op.Addr)
	case op.IsStore():
		return fmt.Sprintf("seq=%d pc=%#x store addr=%#x", op.Seq, op.PC, op.Addr)
	case op.IsBranch():
		return fmt.Sprintf("seq=%d pc=%#x branch taken=%v", op.Seq, op.PC, op.Taken)
	default:
		return fmt.Sprintf("seq=%d pc=%#x %s", op.Seq, op.PC, op.Class)
	}
}

// traceUopEvent emits "<stage> <uop identity>" for dispatch/commit-style
// events. stage carries its own column padding so the line format stays
// byte-identical to the golden trace.
func (c *Core) traceUopEvent(stage string, op *isa.MicroOp) {
	if !c.traceActive() {
		return
	}
	c.tracef("%s%s", stage, traceUop(op))
}

// traceIssue emits the issue event with its completion cycle.
func (c *Core) traceIssue(op *isa.MicroOp, done uint64) {
	if !c.traceActive() {
		return
	}
	c.tracef("issue     %s done=%d", traceUop(op), done)
}

// traceRFPHit emits the rfp-hit event for a load consuming prefetched data.
func (c *Core) traceRFPHit(op *isa.MicroOp, fillAt uint64) {
	if !c.traceActive() {
		return
	}
	c.tracef("rfp-hit   %s fill=%d", traceUop(op), fillAt)
}

// traceRFPExec emits the rfp-exec event for a granted prefetch request.
func (c *Core) traceRFPExec(seq, addr, fillAt, armedAt uint64, level int) {
	if !c.traceActive() {
		return
	}
	c.tracef("rfp-exec  seq=%d addr=%#x fill=%d armed=%d level=%s",
		seq, addr, fillAt, armedAt, stats.LevelName(level))
}

// traceFlush emits the flush event for a pipeline squash.
func (c *Core) traceFlush(fromOff, squashing int) {
	if !c.traceActive() {
		return
	}
	c.tracef("flush     from-offset=%d squashing=%d", fromOff, squashing)
}
