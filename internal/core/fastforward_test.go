package core

import (
	"context"
	"strings"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/isa"
	"rfpsim/internal/trace"
)

// TestFastForwardAdvancesStream pins the contract sampling relies on:
// FastForward(n) leaves the generator positioned exactly n uops in, so a
// subsequent Run commits the same stream suffix a by-hand skip produces.
func TestFastForwardAdvancesStream(t *testing.T) {
	spec, ok := trace.ByName("spec06_gcc")
	if !ok {
		t.Fatal("catalog workload spec06_gcc missing")
	}
	const skip, window = 12345, 200

	want := make([]uint64, 0, window)
	gen := spec.New()
	var op isa.MicroOp
	for i := 0; i < skip; i++ {
		if !gen.Next(&op) {
			t.Fatal("workload ended during manual skip")
		}
	}
	for i := 0; i < window; i++ {
		if !gen.Next(&op) {
			t.Fatal("workload ended during manual window")
		}
		want = append(want, op.PC)
	}

	c := New(config.Baseline(), spec.New())
	if err := c.FastForward(context.Background(), skip); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	c.OnCommit(func(op *isa.MicroOp) {
		if len(got) < window {
			got = append(got, op.PC)
		}
	})
	if _, err := c.Run(context.Background(), window); err != nil {
		t.Fatal(err)
	}
	if len(got) != window {
		t.Fatalf("committed %d uops, want %d", len(got), window)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("uop %d after fast-forward has PC %#x, manual skip says %#x", i, got[i], want[i])
		}
	}
}

func TestFastForwardRejectsStartedCore(t *testing.T) {
	spec, ok := trace.ByName("spec06_gcc")
	if !ok {
		t.Fatal("catalog workload spec06_gcc missing")
	}
	c := New(config.Baseline(), spec.New())
	if _, err := c.Run(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	err := c.FastForward(context.Background(), 100)
	if err == nil || !strings.Contains(err.Error(), "already simulated") {
		t.Fatalf("FastForward on a started core: err = %v", err)
	}
}

func TestFastForwardErrorsPastStreamEnd(t *testing.T) {
	// A finite generator: replay a short body via the core's own pending
	// buffer is not reachable from outside, so use a bounded wrapper.
	g := &boundedGen{inner: &loopGen{name: "finite", body: []isa.MicroOp{alu(0x10, 1, 1, isa.NoReg)}}, limit: 50}
	c := New(config.Baseline(), g)
	err := c.FastForward(context.Background(), 100)
	if err == nil || !strings.Contains(err.Error(), "ended") {
		t.Fatalf("FastForward past stream end: err = %v", err)
	}
}

// boundedGen truncates an infinite generator after limit uops.
type boundedGen struct {
	inner isa.Generator
	limit uint64
	n     uint64
}

func (g *boundedGen) Name() string { return g.inner.Name() }

func (g *boundedGen) Next(op *isa.MicroOp) bool {
	if g.n >= g.limit {
		return false
	}
	g.n++
	return g.inner.Next(op)
}
