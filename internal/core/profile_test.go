package core

import (
	"context"
	"strings"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/trace"
)

func TestProfileAccumulatesPerPC(t *testing.T) {
	spec, _ := trace.ByName("spec06_xalancbmk")
	c := New(config.Baseline().WithRFP(), spec.New())
	c.WarmCaches()
	c.EnableProfile()
	st, err := c.Run(context.Background(), 30000)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Profile()
	if p == nil {
		t.Fatal("profile not enabled")
	}
	top := p.Top(100)
	if len(top) == 0 {
		t.Fatal("no load PCs profiled")
	}
	var total, covered uint64
	for _, s := range top {
		total += s.Count
		covered += s.Covered
		if s.Covered > s.Count || s.Forwarded > s.Count {
			t.Fatalf("pc %#x: impossible counts %+v", s.PC, s)
		}
	}
	if total != st.Loads {
		t.Errorf("profile total %d != committed loads %d", total, st.Loads)
	}
	// RFP.Useful counts issue-time events, including loads that consumed
	// a prefetch and were then squashed by a flush (their replay retires
	// without one); the retirement-state profile therefore reads equal or
	// slightly lower.
	if covered > st.RFP.Useful || float64(covered) < 0.95*float64(st.RFP.Useful) {
		t.Errorf("profile covered %d vs RFP useful %d: outside the squash slack", covered, st.RFP.Useful)
	}
	// Top must be sorted by count.
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatal("Top not sorted")
		}
	}
	if !strings.Contains(p.String(), "Load PC") {
		t.Error("String() malformed")
	}
}

func TestProfileDisabledByDefault(t *testing.T) {
	spec, _ := trace.ByName("spec06_hmmer")
	c := New(config.Baseline(), spec.New())
	if _, err := c.Run(context.Background(), 2000); err != nil {
		t.Fatal(err)
	}
	if c.Profile() != nil {
		t.Error("profile allocated without EnableProfile")
	}
}

func TestProfileCoverageMatchesChaseExpectation(t *testing.T) {
	// The chase kernel's load PC (slot 0 of its region) must show high
	// coverage; the hash kernel's load must show ~none.
	spec, _ := trace.ByName("spec06_xalancbmk")
	c := New(config.Baseline().WithRFP(), spec.New())
	c.WarmCaches()
	c.EnableProfile()
	if err := c.Warmup(context.Background(), 20000); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), 30000); err != nil {
		t.Fatal(err)
	}
	var best, worst float64 = 0, 1
	for _, s := range c.Profile().Top(20) {
		if s.Count < 200 {
			continue
		}
		if cov := s.Coverage(); cov > best {
			best = cov
		} else if cov < worst {
			worst = cov
		}
	}
	if best < 0.5 {
		t.Errorf("no hot load above 50%% coverage (best %.2f)", best)
	}
	if worst > 0.2 {
		t.Errorf("no hot uncoverable load found (worst %.2f)", worst)
	}
}

func TestRunAheadDistribution(t *testing.T) {
	spec, _ := trace.ByName("spec06_hmmer")
	c := New(config.Baseline().WithRFP(), spec.New())
	c.WarmCaches()
	c.EnableProfile()
	if err := c.Warmup(context.Background(), 10000); err != nil {
		t.Fatal(err)
	}
	st, err := c.Run(context.Background(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	d := c.Profile().RunAhead
	if d.Total() != st.RFP.Useful {
		t.Errorf("run-ahead samples %d != useful prefetches %d", d.Total(), st.RFP.Useful)
	}
	// The mass at slack >= 0 is exactly the fully-hidden count (-1 marks
	// fills still in flight at issue).
	hidden := 0.0
	for _, k := range d.Keys() {
		if k >= 0 {
			hidden += d.Frac(k)
		}
	}
	got := uint64(hidden*float64(d.Total()) + 0.5)
	if got != st.RFP.FullyHidden {
		t.Errorf("run-ahead >=0 mass %d vs fully hidden %d", got, st.RFP.FullyHidden)
	}
}
