package core

import (
	"context"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/isa"
	"rfpsim/internal/stats"
)

// TestLoadPortLimitBoundsThroughput saturates the machine with independent
// loads: committed loads per cycle can never exceed the configured port
// count.
func TestLoadPortLimitBoundsThroughput(t *testing.T) {
	body := []isa.MicroOp{
		ld(0x10, 1, isa.NoReg, 0x8000),
		ld(0x14, 2, isa.NoReg, 0x8040),
		ld(0x18, 3, isa.NoReg, 0x8080),
		ld(0x1c, 4, isa.NoReg, 0x80c0),
	}
	for _, ports := range []int{1, 2} {
		cfg := config.Baseline()
		cfg.LoadPorts = ports
		st := run(t, cfg, &loopGen{name: "loads", body: body}, 20000)
		perCycle := float64(st.Loads) / float64(st.Cycles)
		if perCycle > float64(ports)*1.01 {
			t.Errorf("ports=%d: %.2f loads/cycle exceeds the port limit", ports, perCycle)
		}
		if perCycle < float64(ports)*0.85 {
			t.Errorf("ports=%d: %.2f loads/cycle badly underutilizes the ports", ports, perCycle)
		}
	}
}

// TestFPPortLimit saturates with independent FP ops.
func TestFPPortLimit(t *testing.T) {
	body := []isa.MicroOp{
		{PC: 0x10, Class: isa.OpFP, Dst: isa.FirstFPReg, Src1: isa.NoReg, Src2: isa.NoReg},
		{PC: 0x14, Class: isa.OpFP, Dst: isa.FirstFPReg + 1, Src1: isa.NoReg, Src2: isa.NoReg},
		{PC: 0x18, Class: isa.OpFP, Dst: isa.FirstFPReg + 2, Src1: isa.NoReg, Src2: isa.NoReg},
		{PC: 0x1c, Class: isa.OpFP, Dst: isa.FirstFPReg + 3, Src1: isa.NoReg, Src2: isa.NoReg},
	}
	cfg := config.Baseline()
	cfg.FPPorts = 2
	st := run(t, cfg, &loopGen{name: "fp", body: body}, 20000)
	if ipc := st.IPC(); ipc > 2.05 {
		t.Errorf("FP IPC %.2f exceeds 2 FP ports", ipc)
	}
}

// TestStorePortLimit saturates with independent stores.
func TestStorePortLimit(t *testing.T) {
	body := []isa.MicroOp{
		st8(0x10, isa.NoReg, 1, 0x9000),
		st8(0x14, isa.NoReg, 2, 0x9040),
	}
	st := run(t, config.Baseline(), &loopGen{name: "stores", body: body}, 20000)
	perCycle := float64(st.Stores) / float64(st.Cycles)
	if perCycle > 1.01 { // baseline has 1 store port
		t.Errorf("%.2f stores/cycle exceeds 1 store port", perCycle)
	}
}

// TestDivLatencyIsLong serial divides run at ~1/18 IPC.
func TestDivLatencyIsLong(t *testing.T) {
	body := []isa.MicroOp{{PC: 0x10, Class: isa.OpDiv, Dst: 1, Src1: 1, Src2: isa.NoReg}}
	st := run(t, config.Baseline(), &loopGen{name: "div", body: body}, 5000)
	want := 1.0 / float64(isa.OpDiv.ExecLatency())
	if ipc := st.IPC(); ipc > want*1.1 || ipc < want*0.85 {
		t.Errorf("serial divide IPC = %.4f, want ~%.4f", ipc, want)
	}
}

// TestPRFPressureStallsDispatch shrinks the PRF until it, not the ROB,
// gates the window; the machine must still run correctly (covered by the
// commit-order test) and visibly slower.
func TestPRFPressureStallsDispatch(t *testing.T) {
	// Independent DRAM-missing loads need a deep window for memory-level
	// parallelism; starving the rename registers collapses the MLP. Each
	// iteration consumes five destination registers so a 32-register
	// rename pool caps the window at ~6 iterations (vs 16 MSHRs' worth
	// with a full PRF).
	body := []isa.MicroOp{
		ld(0x10, 1, isa.NoReg, 0x1000000),
		alu(0x14, 2, 1, isa.NoReg),
		alu(0x18, 3, 2, isa.NoReg),
		alu(0x1c, 4, 3, isa.NoReg),
		alu(0x20, 5, 4, isa.NoReg),
	}
	mk := func() *loopGen {
		return &loopGen{name: "prf", body: body, strides: []int64{64, 0, 0, 0, 0}, wrap: 32 << 20}
	}
	wide := config.Baseline()
	tight := config.Baseline()
	tight.IntPRF = 64 // minimum the config allows: 32 rename registers
	stWide := run(t, wide, mk(), 8000)
	stTight := run(t, tight, mk(), 8000)
	if stTight.IPC() > 0.75*stWide.IPC() {
		t.Errorf("PRF pressure did not collapse MLP: %.3f vs %.3f",
			stTight.IPC(), stWide.IPC())
	}
}

// TestOracleMiddleLevels verifies the two middle oracle modes shorten the
// right accesses: an L2-resident pointer chase speeds up under the L2->L1
// oracle but not under Mem->LLC.
func TestOracleMiddleLevels(t *testing.T) {
	// Chase across 256KB (L2-resident once warmed), serial. The first
	// pass over the footprint is cold, so it runs inside a discarded
	// warmup window covering a bit more than one full wrap (4096
	// iterations of 2 uops).
	measure := func(cfg config.Core) *stats.Sim {
		g := &loopGen{
			name:    "l2chase",
			body:    []isa.MicroOp{ld(0x10, 1, 1, 0x100000), alu(0x14, 2, 1, isa.NoReg)},
			strides: []int64{64, 0},
			wrap:    256 << 10,
		}
		c := New(cfg, g)
		if err := c.Warmup(context.Background(), 10000); err != nil {
			t.Fatal(err)
		}
		st, err := c.Run(context.Background(), 8000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	base := measure(config.Baseline())
	l2 := measure(config.Baseline().WithOracle(config.OracleL2ToL1))
	mem := measure(config.Baseline().WithOracle(config.OracleMemToLLC))
	if base.LoadLevelFrac(stats.LevelL2) < 0.5 {
		t.Fatalf("chase not L2-resident after warmup: %.2f", base.LoadLevelFrac(stats.LevelL2))
	}
	if stats.Speedup(base, l2) < 0.2 {
		t.Errorf("L2->L1 oracle speedup %.3f on an L2-resident chase", stats.Speedup(base, l2))
	}
	if s := stats.Speedup(base, mem); s > 0.05 {
		t.Errorf("Mem->LLC oracle gained %.3f on a DRAM-free workload", s)
	}
}

// TestRFPDedicatedPortsNeverHurt adds dedicated RFP ports; speedup must be
// >= the shared configuration on a port-hungry workload.
func TestRFPDedicatedPortsNeverHurt(t *testing.T) {
	body := []isa.MicroOp{
		ld(0x10, 1, isa.NoReg, 0x8000),
		ld(0x14, 2, isa.NoReg, 0xA000),
		ld(0x18, 3, 3, 0xC000),
		alu(0x1c, 4, 3, isa.NoReg),
	}
	mk := func() *loopGen {
		return &loopGen{name: "hungry", body: body, strides: []int64{8, 8, 8, 0}, wrap: 8 << 10}
	}
	shared := config.Baseline().WithRFP()
	dedicated := config.Baseline().WithRFP()
	dedicated.RFPDedicatedPorts = 2
	stShared := run(t, shared, mk(), 20000)
	stDed := run(t, dedicated, mk(), 20000)
	if stDed.IPC() < 0.99*stShared.IPC() {
		t.Errorf("dedicated ports slowed the machine: %.3f vs %.3f", stDed.IPC(), stShared.IPC())
	}
	if stDed.RFP.Executed < stShared.RFP.Executed {
		t.Errorf("dedicated ports executed fewer prefetches: %d vs %d",
			stDed.RFP.Executed, stShared.RFP.Executed)
	}
}

// TestHitMissMispredictCausesReplays forces an alternating hit/miss load
// and checks replays are charged.
func TestHitMissMispredictCausesReplays(t *testing.T) {
	// A load striding through 8 MiB misses often; its dependent must
	// replay when the hit prediction was wrong.
	body := []isa.MicroOp{
		ld(0x10, 1, isa.NoReg, 0x100000),
		alu(0x14, 2, 1, isa.NoReg),
	}
	g := &loopGen{name: "missy", body: body, strides: []int64{64, 0}, wrap: 8 << 20}
	st := run(t, config.Baseline(), g, 20000)
	if st.HitMissMispredicts == 0 {
		t.Fatal("no hit-miss mispredicts on a missing stream")
	}
	if st.Replays == 0 {
		t.Error("hit-miss mispredicts produced no replays")
	}
}

// TestWideMachineRetiresFullWidth checks the 2x machine can actually
// sustain close to its commit width on embarrassingly parallel work.
func TestWideMachineRetiresFullWidth(t *testing.T) {
	var body []isa.MicroOp
	for i := 0; i < 10; i++ {
		body = append(body, alu(uint64(0x10+4*i), isa.RegID(1+i), isa.RegID(1+i), isa.NoReg))
	}
	st := run(t, config.Baseline2x(), &loopGen{name: "wide", body: body}, 50000)
	if ipc := st.IPC(); ipc < 7.2 {
		t.Errorf("2x machine IPC = %.2f on independent ALU chains, want near 8 (ALU ports)", ipc)
	}
}

// TestPRFConservation: after draining the pipeline (no uops in flight),
// every rename register must be back on its free list and the
// architectural map must hold exactly the architectural state — the
// register-file conservation law, checked across flush-heavy runs.
func TestPRFConservation(t *testing.T) {
	cfgs := []config.Core{
		config.Baseline(),
		config.Baseline().WithRFP(),
		config.Baseline().WithVP(config.VPEVES).WithRFP(),
	}
	for _, cfg := range cfgs {
		cfg.VP.ConfMax = 1 // provoke flushes in the VP config
		cfg.VP.ConfProb = 1
		c := New(cfg, newRandMemGen(13))
		if _, err := c.Run(context.Background(), 25000); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		// Drain: stop fetching and let the window empty.
		c.genDone = true
		for i := 0; i < 5000 && c.robCount > 0; i++ {
			c.step()
		}
		if c.robCount != 0 {
			t.Fatalf("%s: window failed to drain", cfg.Name)
		}
		if got, want := len(c.freeInt), cfg.IntPRF-isa.NumIntRegs; got != want {
			t.Errorf("%s: int free list %d, want %d (leak or double-free)", cfg.Name, got, want)
		}
		if got, want := len(c.freeFP), cfg.FPPRF-isa.NumFPRegs; got != want {
			t.Errorf("%s: fp free list %d, want %d", cfg.Name, got, want)
		}
		// No register may appear twice across the free list + ARAT.
		seen := map[int32]bool{}
		for _, p := range c.freeInt {
			if seen[p] {
				t.Fatalf("%s: int preg %d duplicated", cfg.Name, p)
			}
			seen[p] = true
		}
		for r := isa.RegID(0); r < isa.FirstFPReg; r++ {
			p := c.aratPReg[r]
			if seen[p] {
				t.Fatalf("%s: int preg %d both mapped and free", cfg.Name, p)
			}
			seen[p] = true
		}
		if len(seen) != cfg.IntPRF {
			t.Errorf("%s: %d of %d int pregs accounted for", cfg.Name, len(seen), cfg.IntPRF)
		}
	}
}
