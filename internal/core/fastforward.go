package core

import (
	"context"
	"fmt"

	"rfpsim/internal/isa"
)

// ffCtxCheckUops is how many functionally consumed uops pass between
// context polls inside FastForward.
const ffCtxCheckUops = 1 << 16

// FastForward consumes n uops from the workload generator without cycle
// simulation, training the long-lived predictive structures along the way
// (SMARTS-style functional warming). It exists for sampled simulation
// (internal/sample): a replayed interval deep inside a workload must see
// the predictor and cache state the full run would have accumulated over
// everything before it, and a short cycle-accurate warmup cannot rebuild
// tables whose useful history spans tens of thousands of uops.
//
// Trained functionally, in program order, exactly as the pipeline would:
//   - the branch direction predictor (Predict+Update per branch — the
//     full run also trains at fetch in fetch order, so the table state
//     matches a full run over the same stream);
//   - both path-history registers (fetch-time and dispatch-time advance
//     identically when nothing is in flight);
//   - cache and TLB contents via Hierarchy.Warm per memory uop;
//   - the RFP prefetch table and context predictor (Commit per load);
//   - the hit/miss predictor (against pre-warm L1 residence);
//   - the EVES and DLVP value/address predictors.
//
// Structures whose training observes pipeline timing — store sets
// (ordering violations), criticality, the cache-level predictor (it
// trains from the level that actually served each load, which only cycle
// simulation produces), the DLVP no-forward filter — are left alone:
// functional warming has no timing to train them with.
//
// FastForward must run before any cycle simulation; it returns an error
// if the core has already fetched or dispatched uops, if the generator
// ends early, or when ctx is cancelled. Statistics are untouched.
func (c *Core) FastForward(ctx context.Context, n uint64) error {
	if n == 0 {
		return nil
	}
	if c.cycle != 0 || c.robCount != 0 || c.fetchQLen() != 0 || c.nextSeq != 0 {
		return fmt.Errorf("core: FastForward called on a core that already simulated (cycle %d)", c.cycle)
	}
	var op isa.MicroOp
	for i := uint64(0); i < n; i++ {
		if i%ffCtxCheckUops == 0 {
			select {
			case <-ctx.Done():
				return fmt.Errorf("core: fast-forward cancelled at uop %d: %w", i, ctx.Err())
			default:
			}
		}
		if !genNext(c, &op) {
			return fmt.Errorf("core: workload ended %d uops into a %d-uop fast-forward", i, n)
		}
		switch {
		case op.IsBranch():
			c.bp.Predict(op.PC)
			c.bp.Update(op.PC, op.Taken)
			step := (op.PC>>2)&0x7 ^ uint64(boolU(op.Taken))
			c.fetchPath = (c.fetchPath<<4 ^ step) & 0xFFFF
			c.pathHash = (c.pathHash<<4 ^ step) & 0xFFFF
		case op.IsLoad():
			if c.hm != nil {
				c.hm.Update(op.PC, c.hier.L1Contains(op.Addr))
			}
			c.trainLoadCommit(op.PC, c.pathHash, c.fetchPath, op.Addr, op.Value)
			c.hier.Warm(op.Addr)
		case op.IsStore():
			if c.chk != nil {
				c.chk.noteStoreFunctional(op.Addr, op.Value)
			}
			c.hier.Warm(op.Addr)
		}
	}
	c.ffConsumed += n
	return nil
}

// genNext pulls the next uop for fast-forward, recording generator
// exhaustion the same way fetch does.
func genNext(c *Core, op *isa.MicroOp) bool {
	if c.genDone || !c.gen.Next(op) {
		c.genDone = true
		return false
	}
	return true
}
