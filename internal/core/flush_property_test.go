package core

import (
	"math/rand"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/isa"
)

// TestFlushReplayOrderProperty is the property test guarding the
// scratch-buffer rewrite of flushFrom/requeueFetchQ: for arbitrary window,
// fetch-queue and replay-buffer contents, a flush must leave the replay
// buffer holding exactly (squashed ROB uops oldest-first, then the fetch
// queue, then the prior replay contents), all with Seq cleared for
// re-dispatch. Repeated flushes against the same core exercise the buffer
// swap, so any aliasing between the scratch arrays and the live replay
// buffer corrupts an ordering this test pins.
func TestFlushReplayOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for iter := 0; iter < 50; iter++ {
		c := New(config.Baseline(), &loopGen{name: "unused", body: []isa.MicroOp{alu(0x10, 1, 1, isa.NoReg)}})
		var nextPC uint64 = 0x1000
		for round := 0; round < 4; round++ {
			// Grow the ROB tail with fresh synthetic entries (some invalid,
			// which a flush must skip).
			for i, n := 0, 1+rng.Intn(8); i < n && c.robCount < len(c.rob); i++ {
				e := &c.rob[c.robIndex(c.robCount)]
				e.reset()
				e.op = alu(nextPC, isa.NoReg, isa.NoReg, isa.NoReg)
				if rng.Intn(3) == 0 {
					e.op = br(nextPC, false)
				}
				nextPC += 4
				c.nextSeq++
				e.op.Seq = c.nextSeq
				e.valid = rng.Intn(6) != 0
				if e.valid {
					e.inRS = true
					c.rsCount++
				}
				c.robCount++
			}
			// Fresh fetch-queue contents.
			var tailOps []isa.MicroOp
			for i, n := 0, rng.Intn(5); i < n; i++ {
				op := alu(nextPC, isa.NoReg, isa.NoReg, isa.NoReg)
				nextPC += 4
				c.nextSeq++
				op.Seq = c.nextSeq
				c.fetchQ = append(c.fetchQ, fetched{op: op})
				tailOps = append(tailOps, op)
			}

			// The expected replay buffer, computed from pre-flush state by
			// the definition flushFrom is supposed to implement.
			preRobCount := c.robCount
			fromOff := rng.Intn(c.robCount + 1)
			var want []isa.MicroOp
			for off := fromOff; off < c.robCount; off++ {
				if e := &c.rob[c.robIndex(off)]; e.valid {
					op := e.op
					op.Seq = 0
					want = append(want, op)
				}
			}
			for _, op := range tailOps {
				op.Seq = 0
				want = append(want, op)
			}
			prior := append([]isa.MicroOp(nil), c.pending[c.pendingHead:]...)
			want = append(want, prior...)
			if len(want) == len(prior) {
				// Nothing squashed or requeued: the replay buffer must be
				// left untouched (same contents, same consumption point).
				want = prior
			}

			c.flushFrom(fromOff, true)

			wantRob := min(fromOff, preRobCount)
			if c.robCount != wantRob {
				t.Fatalf("iter %d round %d: robCount = %d after flushFrom(%d), want %d",
					iter, round, c.robCount, fromOff, wantRob)
			}
			if c.fetchQLen() != 0 {
				t.Fatalf("iter %d round %d: fetch queue not drained by flush", iter, round)
			}
			got := c.pending[c.pendingHead:]
			if len(got) != len(want) {
				t.Fatalf("iter %d round %d: replay buffer has %d uops, want %d", iter, round, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("iter %d round %d: replay[%d] = %+v, want %+v", iter, round, i, got[i], want[i])
				}
			}
		}
	}
}
