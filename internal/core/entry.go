// Package core is the cycle-based out-of-order core timing model the whole
// study runs on, with the paper's RFP pipeline integration (§3.2–3.3),
// value/address prediction hooks (§5.3–5.4) and the Figure 1 oracle modes.
//
// The model is the same abstraction level as the paper's Figures 6–9: an
// instruction selected for execution at cycle c delivers its result to
// dependents at c + latency; loads' latency comes from the memory
// hierarchy; wrongly speculated wakeups are cancelled and re-issued,
// consuming scheduler bandwidth. Structural resources (ROB, RS, LQ/SQ,
// physical registers, execution and L1 ports) are modelled discretely.
package core

import "rfpsim/internal/isa"

// farFuture marks an unknown completion time.
const farFuture = ^uint64(0) >> 1

// rfpState tracks a load's prefetch through its life cycle.
type rfpState uint8

const (
	// rfpNone: no prefetch was injected for this load.
	rfpNone rfpState = iota
	// rfpQueued: a prefetch packet is waiting in the RFP queue.
	rfpQueued
	// rfpExecuted: the prefetch won L1 arbitration and (will have)
	// brought data into the load's physical register.
	rfpExecuted
	// rfpDropped: the packet was cancelled before execution.
	rfpDropped
)

// entry is one in-flight micro-op: a fused ROB/RS/LSQ record.
type entry struct {
	op    isa.MicroOp
	valid bool

	// Renaming: srcSeq holds the sequence numbers of the producing
	// in-flight uops for each source operand, or 0 when the source was
	// architecturally ready at rename. (Sequence 0 cannot be a producer
	// because Seq is pre-incremented at dispatch.) srcIdx caches the
	// producer's ROB ring slot — stable while the producer is in flight —
	// so readiness checks are O(1): a slot whose occupant's Seq no longer
	// matches means the producer committed (flushed producers are
	// impossible: the consumer would have been flushed with them).
	srcSeq [2]uint64
	srcIdx [2]int32

	// Scheduling state.
	inRS       bool
	issued     bool
	prfClaimed bool // late-allocation mode: physical register claimed
	// Physical register bookkeeping (free-list mode): pReg is this uop's
	// allocated destination register; prevPReg is the register its
	// architectural destination mapped to before rename. prevPReg is
	// freed when this uop commits (the old value is then unreachable);
	// pReg is freed if this uop is squashed.
	pReg          int32
	prevPReg      int32
	earliestIssue uint64 // dispatch cycle + scheduling depth
	retryAt       uint64 // next cycle a blocked/replayed entry may retry

	// doneSpec is when dependents believe the result arrives (speculative
	// wakeup time); doneReal is when it actually does. They differ only
	// while a load's hit/miss speculation is unresolved.
	doneSpec uint64
	doneReal uint64
	// execDone is when the uop itself finished executing (for VP loads
	// doneSpec/doneReal are the early predicted-value times while
	// execDone tracks the validation access).
	execDone uint64

	dispatchCycle  uint64
	pathAtDispatch uint64
	pathAtFetch    uint64

	// Memory state.
	addrKnown        bool // store: address computed (it issued)
	forwarded        bool
	forwardedFromSeq uint64
	hitLevel         int

	// RFP state (§3.2-3.3).
	rfp          rfpState
	rfpAddr      uint64
	rfpFillAt    uint64 // prefetched data lands in the PRF
	rfpArmedAt   uint64 // RFP-inflight bit visible to the scheduler
	rfpLevel     int    // hierarchy level the prefetch hit
	rfpMDStale   bool   // an older store overwrote the prefetched data
	rfpFwdWaitPC uint64 // unresolved same-set store PC the prefetch waits on
	rfpConsumed  bool   // the load consumed prefetched register file data

	// Cache-level-prediction state (the CLP-driven arming schedule).
	clpPredicted bool  // a confident level prediction was made at dispatch
	clpLevel     uint8 // the predicted hierarchy level (valid iff clpPredicted)
	clpEarlyArm  bool  // predicted L1/L2 hit: arm the RFP bit a cycle early

	// Checker shadow-value state (checker.go), tracked only when the
	// checking layer is attached. delivered is the store value the
	// datapath read for this load; deliveredInit marks a read that saw
	// pre-store memory. rfpData* snapshot the value an executed prefetch
	// brought into the register file, consumed if the load accepts it.
	delivered      uint64
	deliveredKnown bool
	deliveredInit  bool
	rfpData        uint64
	rfpDataKnown   bool
	rfpDataInit    bool

	// Value prediction state.
	vpPredicted  bool
	vpValue      uint64
	vpWrong      bool
	vpFlushed    bool
	apPredicted  bool // the value came from an early L1 probe (DLVP/EPP)
	eppPredicted bool

	// Predictor bookkeeping so squash/commit can undo allocations.
	ptAllocated   bool // rfp prefetcher Allocate() was called
	evesAllocated bool
	dlvpAllocated bool

	// stalledHead records that this entry blocked the commit head for at
	// least one cycle — the criticality estimator's training signal.
	stalledHead bool

	// Branch state.
	predictedTaken bool
	mispredicted   bool
}

// reset clears the entry for reuse.
func (e *entry) reset() { *e = entry{} }

// isLoad reports whether the entry is a load.
func (e *entry) isLoad() bool { return e.op.Class == isa.OpLoad }

// isStore reports whether the entry is a store.
func (e *entry) isStore() bool { return e.op.Class == isa.OpStore }

// sameWord reports whether two byte addresses fall in the same aligned
// 8-byte word — the granularity at which the LSQ disambiguates.
func sameWord(a, b uint64) bool { return a>>3 == b>>3 }
