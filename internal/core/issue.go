package core

import (
	"rfpsim/internal/isa"
	"rfpsim/internal/rfp"
	"rfpsim/internal/stats"
)

// issue scans the reservation stations in age order and selects up to
// IssueWidth ready uops, respecting per-class execution port budgets.
// Wakeup is speculative (based on predicted completion times); an entry
// whose sources turn out not to be ready is dropped by the scoreboard and
// re-issued later, consuming select bandwidth — the replay mechanism of
// Stark et al. that RFP reuses for its cancel/re-dispatch (§3.3).
func (c *Core) issue() {
	slots := c.cfg.IssueWidth
	for off := 0; off < c.robCount && slots > 0; off++ {
		e := &c.rob[c.robIndex(off)]
		if !e.valid || !e.inRS || e.issued {
			continue
		}
		if c.cycle < e.earliestIssue || c.cycle < e.retryAt {
			continue
		}
		// Speculative wakeup: only entries whose sources *claim* to be
		// ready are selected.
		if !c.srcReady(e, 0, c.cycle, true) || !c.srcReady(e, 1, c.cycle, true) {
			continue
		}
		// Scoreboard check: a wrongly woken entry (a source's producer
		// missed its speculative latency) burns the select slot and
		// retries when the source actually completes.
		if !c.srcReady(e, 0, c.cycle, false) || !c.srcReady(e, 1, c.cycle, false) {
			c.st.Replays++
			r1, r2 := c.srcReadyAt(e, 0), c.srcReadyAt(e, 1)
			if r2 > r1 {
				r1 = r2
			}
			e.retryAt = r1
			slots--
			continue
		}
		if c.tryIssue(e, off) {
			slots--
		}
	}
}

// tryIssue attempts to start execution of e (at ROB offset off) at the
// current cycle, reporting whether it consumed an issue slot.
func (c *Core) tryIssue(e *entry, off int) bool {
	switch e.op.Class {
	case isa.OpALU, isa.OpMul, isa.OpDiv, isa.OpNop:
		if c.aluUsed >= c.cfg.ALUPorts || !c.claimDst(e) {
			return false
		}
		c.aluUsed++
		c.completeAt(e, c.cycle+uint64(e.op.Class.ExecLatency()))
	case isa.OpFP, isa.OpFMA:
		if c.fpUsed >= c.cfg.FPPorts || !c.claimDst(e) {
			return false
		}
		c.fpUsed++
		c.completeAt(e, c.cycle+uint64(e.op.Class.ExecLatency()))
	case isa.OpBranch:
		if c.branchUsed >= c.cfg.BranchPorts {
			return false
		}
		c.branchUsed++
		c.issueBranch(e)
	case isa.OpStore:
		if c.storeUsed >= c.cfg.StorePorts {
			return false
		}
		c.storeUsed++
		c.issueStore(e, off)
	case isa.OpLoad:
		return c.issueLoad(e, off)
	}
	return true
}

// claimDst acquires the physical destination register in the late-
// allocation pipeline variation (§3.3): the register is claimed when the
// value is produced rather than at rename. Returns false — and arranges a
// retry — when the file is exhausted; the virtual pointer simply waits.
func (c *Core) claimDst(e *entry) bool {
	if !c.cfg.LateRegAlloc || e.prfClaimed || !e.op.Dst.Valid() {
		return true
	}
	if e.op.Dst.IsFP() {
		if c.fpPRFFree() <= 0 {
			e.retryAt = c.cycle + 1
			return false
		}
	} else if c.intPRFFree() <= 0 {
		e.retryAt = c.cycle + 1
		return false
	}
	c.chargePRF(e.op.Dst, +1)
	e.prfClaimed = true
	return true
}

// releaseDstAtRetire frees register file resources when e retires: in
// free-list mode the PREVIOUS mapping of e's architectural destination dies
// (no consumer can name it anymore); in the late-allocation variation the
// produced-value count drops.
func (c *Core) releaseDstAtRetire(e *entry) {
	if !e.op.Dst.Valid() {
		return
	}
	if c.cfg.LateRegAlloc {
		if e.prfClaimed {
			c.chargePRF(e.op.Dst, -1)
		}
		return
	}
	c.freePReg(e.op.Dst, e.prevPReg)
}

// releaseDstAtSquash frees register file resources when e is squashed: its
// OWN register returns to the free list (the previous mapping is restored
// by the caller's ARAT walk).
func (c *Core) releaseDstAtSquash(e *entry) {
	if !e.op.Dst.Valid() {
		return
	}
	if c.cfg.LateRegAlloc {
		if e.prfClaimed {
			c.chargePRF(e.op.Dst, -1)
		}
		return
	}
	c.freePReg(e.op.Dst, e.pReg)
}

// completeAt marks e issued with the given completion time.
func (c *Core) completeAt(e *entry, done uint64) {
	c.traceIssue(&e.op, done)
	e.issued = true
	e.inRS = false
	c.rsCount--
	// VP-predicted loads already published an early completion time for
	// their dependents; keep it.
	if !e.vpPredicted {
		e.doneSpec = done
		e.doneReal = done
	}
	e.execDone = done
}

// issueBranch resolves a branch: the direction predictor is trained, and a
// misprediction schedules the frontend redirect that ends the fetch bubble
// started at fetch time.
func (c *Core) issueBranch(e *entry) {
	done := c.cycle + 1
	c.completeAt(e, done)
	if e.mispredicted {
		c.st.BranchMispredicts++
		// Fetch resumes so the first correct-path uop renames about
		// MispredictPenalty cycles after resolution.
		resume := done + uint64(maxInt(0, c.cfg.MispredictPenalty-c.cfg.FrontendLatency))
		if resume > c.fetchBlockedUntil {
			c.fetchBlockedUntil = resume
		}
		c.fetchHalted = false
	}
}

// issueStore computes the store's address, exposing it to younger loads,
// and checks for memory-ordering violations: a younger load that already
// executed and read the same word from a stale source must be flushed and
// re-executed (the store-set predictor is trained so the pair synchronizes
// in the future).
func (c *Core) issueStore(e *entry, myOff int) {
	c.completeAt(e, c.cycle+1)
	e.addrKnown = true
	// Stores fill the cache (write-allocate) but do not stall commit;
	// the access is fired here for cache-content fidelity.
	c.hier.Access(e.op.Addr, e.op.PC, c.cycle, false)
	if c.chk != nil {
		c.chk.noteStoreIssued(c, e.op.Seq, e.op.Addr, e.op.Value)
	}
	if c.ssbf != nil {
		c.ssbf.InsertStore(isa.LineAddr(e.op.Addr))
	}

	// Ordering-violation scan over younger loads.
	for off := myOff + 1; off < c.robCount; off++ {
		l := &c.rob[c.robIndex(off)]
		if !l.valid || !l.isLoad() || !l.issued {
			continue
		}
		if !sameWord(l.op.Addr, e.op.Addr) {
			continue
		}
		if l.forwarded && l.forwardedFromSeq > e.op.Seq {
			continue // data came from a store younger than this one
		}
		if c.faultRFPNoDisambiguation && l.rfpConsumed {
			continue // injected fault: RFP consumers dodge the flush
		}
		// Violation: flush from the load (inclusive) and synchronize the
		// pair in the store-set table.
		c.st.MemOrderViolations++
		c.ss.RecordViolation(l.op.PC, e.op.PC)
		c.flushFrom(off, true)
		return
	}

	if c.faultRFPNoDisambiguation {
		return // injected fault: executed prefetches are never marked stale
	}
	// Any not-yet-issued load whose prefetch covered this word now holds
	// stale data in its register; the load will re-look-up the caches
	// (§3.2.1: no flush needed when the load has not dispatched).
	for off := myOff + 1; off < c.robCount; off++ {
		l := &c.rob[c.robIndex(off)]
		if l.valid && l.isLoad() && !l.issued && l.rfp == rfpExecuted &&
			sameWord(l.rfpAddr, e.op.Addr) {
			l.rfpMDStale = true
		}
	}
}

// issueLoad runs the demand-load pipeline: RFP consumption, store-queue
// disambiguation, forwarding, and the cache access with speculative
// hit/miss wakeup. Returns whether an issue slot was consumed.
func (c *Core) issueLoad(e *entry, myOff int) bool {
	// Late-allocation variation: a load needs its destination entry (the
	// one its prefetch may already have claimed on its behalf) before it
	// can produce a value.
	if !c.claimDst(e) {
		return false
	}
	// --- RFP consumption (§3.3) ---
	if e.rfp == rfpQueued {
		// The load beat its own prefetch to the L1: cancel the packet.
		seq := e.op.Seq
		c.rfpQ.DropWhere(func(p rfp.Packet) bool { return uint64(p.LoadID) == seq })
		c.st.RFP.Dropped++
		e.rfp = rfpDropped
	}
	if e.rfp == rfpExecuted {
		if c.cycle < e.rfpArmedAt {
			// The RFP-inflight bit is not visible yet: the load cannot
			// rely on the prefetch and proceeds normally (§3.3); the
			// prefetched data is dropped.
			c.st.RFP.Dropped++
			e.rfp = rfpDropped
		} else if !e.rfpMDStale && e.rfpAddr == e.op.Addr {
			c.traceRFPHit(&e.op, e.rfpFillAt)
			if c.profile != nil {
				// Slack >= 0: data arrived at or before issue (the load is
				// fully hidden); -1: the fill is still in flight (partial).
				slack := -1
				if e.rfpFillAt <= c.cycle {
					slack = int(c.cycle - e.rfpFillAt)
				}
				c.profile.RunAhead.Add(slack)
			}
			// Correct prefetch: the load consumes the register file data
			// and bypasses the caches entirely — no L1 port needed.
			e.rfpConsumed = true
			if c.chk != nil {
				e.delivered, e.deliveredKnown, e.deliveredInit =
					e.rfpData, e.rfpDataKnown, e.rfpDataInit
			}
			c.st.RFP.Useful++
			if e.rfpFillAt <= c.cycle {
				c.st.RFP.FullyHidden++
			}
			e.hitLevel = e.rfpLevel
			c.st.LoadHitLevel[e.rfpLevel]++
			done := c.cycle + 1
			if e.rfpFillAt > done {
				done = e.rfpFillAt
			}
			c.completeAt(e, done)
			return true
		} else {
			// Wrong address (or data invalidated by an older store): the
			// speculatively scheduled dependents are cancelled by the
			// existing replay machinery and the load re-accesses the
			// cache below, costing the extra L1 bandwidth the paper
			// attributes to incorrect prefetches.
			c.st.RFP.Wrong++
			e.rfp = rfpDropped
		}
	}

	// --- Store-queue disambiguation ---
	loadSet := c.ss.IDFor(e.op.PC)
	for off := myOff - 1; off >= 0; off-- {
		s := &c.rob[c.robIndex(off)]
		if !s.valid || !s.isStore() {
			continue
		}
		if s.addrKnown {
			if sameWord(s.op.Addr, e.op.Addr) {
				// Store-to-load forwarding (needs an AGU/load port).
				if c.loadUsed >= c.cfg.LoadPorts {
					e.retryAt = c.cycle + 1
					return false
				}
				c.loadUsed++
				e.forwarded = true
				e.forwardedFromSeq = s.op.Seq
				if c.chk != nil {
					e.delivered, e.deliveredKnown, e.deliveredInit = s.op.Value, true, false
				}
				c.st.StoreForwarded++
				// A probe-based value prediction read the L1 before this
				// store's data existed there: the prediction is stale.
				if e.apPredicted {
					e.vpWrong = true
				}
				e.hitLevel = stats.LevelL1
				c.st.LoadHitLevel[stats.LevelL1]++
				c.completeAt(e, c.cycle+c.hier.Latency(stats.LevelL1))
				return true
			}
			continue
		}
		// Unresolved older store: the store-set predictor decides whether
		// to wait (predicted dependence) or speculate past it.
		if loadSet != -1 && c.ss.IDFor(s.op.PC) == loadSet {
			e.retryAt = c.cycle + 2 // wait for the store to resolve
			return false
		}
	}

	// --- Cache access with speculative hit/miss wakeup (§2.5) ---
	if c.loadUsed >= c.cfg.LoadPorts {
		e.retryAt = c.cycle + 1
		return false
	}
	c.loadUsed++
	if c.chk != nil {
		c.chk.trackLoadRead(e)
	}
	predictedHit := c.hm.Predict(e.op.PC)
	res := c.hier.Access(e.op.Addr, e.op.PC, c.cycle, true)
	actualHit := levelIsHit(res.Level)
	c.hm.Update(e.op.PC, actualHit)
	e.hitLevel = res.Level

	e.issued = true
	e.inRS = false
	c.rsCount--
	e.execDone = res.DoneAt
	if e.vpPredicted {
		// Dependents already run on the predicted value; the access
		// validates it (checked at commit).
		return true
	}
	e.doneReal = res.DoneAt
	if predictedHit {
		// Dependents are woken assuming an L1 hit; if wrong they replay.
		e.doneSpec = c.cycle + c.hier.Latency(stats.LevelL1)
		if !actualHit {
			c.st.HitMissMispredicts++
		}
	} else {
		e.doneSpec = res.DoneAt
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
