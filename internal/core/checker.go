package core

import "rfpsim/internal/isa"

// This file is the core half of the differential-correctness harness
// (docs/checking.md). It has two responsibilities, both opt-in and both
// timing-invisible — enabling them changes no simulated cycle:
//
//   - A commit digest: a 64-bit FNV-1a content hash per retired uop over
//     the architecturally visible fields (PC, class, registers, address,
//     branch outcome, value), plus — for loads — the value the modelled
//     datapath actually DELIVERED. internal/check compares digest streams
//     across paired configs (RFP on/off, VP on/off, sampled vs full) and
//     localizes a mismatch to the first divergent interval and uop.
//
//   - Runtime invariant checks (config.Checks): violations of the
//     paper's microarchitectural contracts are counted into
//     stats.Sim.Checks instead of panicking, so a sweep surfaces a broken
//     invariant as rfpsim_check_violations_total rather than dying.
//
// Why a delivered-value model at all: this simulator is trace-driven, so
// committed values come from the generator by fiat and a data-corruption
// bug (say, a prefetch consuming pre-store memory because the §3.2.1
// older-store scan was skipped) would never show up in committed values
// alone. The checker therefore shadows the memory the datapath reads:
// store issue appends a (seq, value) version to its 8-byte word (stores
// write the L1 at issue in this model), and every datapath read — demand
// cache read, store forward, RFP port grant — records which version the
// load consumed. At retirement all older stores have retired, so a
// correctly disambiguated load's delivered value provably equals the
// youngest program-order-preceding store's value (retiredMem); anything
// else is stale data, counted as StaleDataDelivered and folded into the
// digest so the differential oracle diverges too.
type checker struct {
	// invariants enables the structural runtime checks (config.Checks);
	// value tracking and the digest run whenever the checker exists.
	invariants bool
	digest     *CommitDigest

	// issued holds, per 8-byte word, the store versions the datapath can
	// observe, sorted by dispatch sequence. retired holds the youngest
	// retired (program-order) store value per word.
	issued  map[uint64][]memVersion
	retired map[uint64]uint64

	// ptInflight is the core-side Prefetch Table in-flight balance:
	// +1 per Allocate at dispatch, -1 per commit or squash of a
	// PT-allocated load. Going negative means a double decrement.
	ptInflight int64
	// ptUnderflowSeen is the last polled value of the rfp-side
	// decrement-at-zero counter.
	ptUnderflowSeen uint64
}

// memVersion is one store's write to a word, visible to loads with a
// larger dispatch sequence once the store has issued.
type memVersion struct {
	seq uint64
	val uint64
}

func newChecker(invariants bool) *checker {
	return &checker{
		invariants: invariants,
		issued:     make(map[uint64][]memVersion),
		retired:    make(map[uint64]uint64),
	}
}

// ckWord is the granularity at which the checker shadows memory — the
// same aligned 8-byte word the LSQ disambiguates at (sameWord).
func ckWord(addr uint64) uint64 { return addr >> 3 }

// noteStoreIssued records a store's write becoming visible to the
// datapath (stores write the L1 at issue in this model). Versions stay
// sorted by seq; out-of-order issue inserts from the back.
func (k *checker) noteStoreIssued(c *Core, seq, addr, val uint64) {
	w := ckWord(addr)
	list := append(k.issued[w], memVersion{seq: seq, val: val})
	for i := len(list) - 1; i > 0 && list[i-1].seq > list[i].seq; i-- {
		list[i-1], list[i] = list[i], list[i-1]
	}
	// Prune: any load still able to read has seq >= the ROB head's, so
	// one version older than the head plus everything younger suffices.
	if len(list) > 12 && c.robCount > 0 {
		headSeq := c.rob[c.robHead].op.Seq
		keepFrom := 0
		for i := len(list) - 1; i >= 0; i-- {
			if list[i].seq < headSeq {
				keepFrom = i
				break
			}
		}
		list = list[keepFrom:]
	}
	k.issued[w] = list
}

// dropStoreIssued removes a squashed store's version(s): its write is
// undone by the flush (the re-dispatched instance re-issues with a new
// sequence number), and a version left behind would alias a PAST
// sequence number onto a program-order-LATER store, corrupting valueAt
// for post-flush loads.
func (k *checker) dropStoreIssued(seq, addr uint64) {
	w := ckWord(addr)
	list := k.issued[w]
	for i := len(list) - 1; i >= 0; i-- {
		if list[i].seq == seq {
			list = append(list[:i], list[i+1:]...)
		}
	}
	k.issued[w] = list
}

// noteStoreFunctional records a store consumed by FastForward: program
// order, already "retired", and visible to every later load (sequence 0
// precedes every dispatched uop's sequence).
func (k *checker) noteStoreFunctional(addr, val uint64) {
	w := ckWord(addr)
	k.retired[w] = val
	k.issued[w] = append(k.issued[w][:0], memVersion{seq: 0, val: val})
}

// valueAt returns the value a datapath read of addr by the load with
// dispatch sequence loadSeq observes right now: the youngest issued store
// version older than the load. ok is false when no such store has issued
// — the read sees pre-store ("initial") memory.
func (k *checker) valueAt(addr, loadSeq uint64) (val uint64, ok bool) {
	list := k.issued[ckWord(addr)]
	for i := len(list) - 1; i >= 0; i-- {
		if list[i].seq < loadSeq {
			return list[i].val, true
		}
	}
	return 0, false
}

// trackLoadRead records the value a demand cache read delivers to e.
func (k *checker) trackLoadRead(e *entry) {
	if v, ok := k.valueAt(e.op.Addr, e.op.Seq); ok {
		e.delivered, e.deliveredKnown, e.deliveredInit = v, true, false
	} else {
		e.deliveredKnown, e.deliveredInit = false, true
	}
}

// observeRetire runs at retirement of every uop: it validates delivered
// load values against program-order memory, appends the uop's digest, and
// advances the retired-memory image on stores.
func (k *checker) observeRetire(c *Core, e *entry) {
	var loadVal uint64
	if e.isLoad() {
		loadVal = k.loadValue(c, e)
	}
	if k.digest != nil {
		h := digestOp(&e.op)
		if e.isLoad() {
			h = mix64(h, loadVal)
		}
		k.digest.uops = append(k.digest.uops, h)
	}
	if e.isStore() {
		k.retired[ckWord(e.op.Addr)] = e.op.Value
	}
	if e.isLoad() && e.ptAllocated && k.invariants {
		k.ptDecrement(c)
	}
}

// loadValue resolves the digest value for a retired load and flags stale
// deliveries. At a load's retirement every program-order-preceding store
// has retired, so retiredMem holds exactly the value a correctly
// disambiguated datapath must have delivered.
func (k *checker) loadValue(c *Core, e *entry) uint64 {
	rv, hasStore := k.retired[ckWord(e.op.Addr)]
	switch {
	case e.deliveredKnown:
		if hasStore && e.delivered != rv {
			c.st.Checks.StaleDataDelivered++
		}
		return e.delivered
	case e.deliveredInit:
		if hasStore {
			// The datapath read pre-store memory past a store that should
			// have been forwarded or waited for. Fold a value distinct
			// from rv into the digest so the differential oracle diverges
			// deterministically.
			c.st.Checks.StaleDataDelivered++
			return rv ^ 0xA5A5A5A5A5A5A5A5
		}
		return e.op.Value
	default:
		// No datapath read was tracked (e.g. a probe-predicted value):
		// program-order memory is what the load architecturally sees.
		if hasStore {
			return rv
		}
		return e.op.Value
	}
}

// ptAllocate / ptDecrement maintain the core-side Prefetch Table
// in-flight balance invariant.
func (k *checker) ptAllocate() { k.ptInflight++ }

func (k *checker) ptDecrement(c *Core) {
	k.ptInflight--
	if k.ptInflight < 0 {
		c.st.Checks.PTInflightUnderflow++
		k.ptInflight = 0
	}
}

// cycleChecks runs the once-per-cycle structural invariants.
func (k *checker) cycleChecks(c *Core) {
	if c.rfpQ != nil && c.rfpQ.Len() > c.rfpQ.Cap() {
		c.st.Checks.RFPQueueOverflow++
	}
	// Demand issue (loads, forwards, DLVP probes) must never overcommit
	// the L1 load ports; RFP grants are budgeted separately in
	// rfpArbitrate.
	if c.loadUsed > c.cfg.LoadPorts {
		c.st.Checks.RFPPortOvercommit++
	}
	if c.pf != nil {
		if u := c.pf.InflightUnderflows(); u > k.ptUnderflowSeen {
			c.st.Checks.PTInflightUnderflow += u - k.ptUnderflowSeen
			k.ptUnderflowSeen = u
		}
	}
}

// checkSingleWriter asserts the free-list single-writer discipline: a
// freshly allocated physical register must not be owned by any other
// in-flight producer. O(ROB) per dispatch, which is why it only runs
// under config.Checks.
func (k *checker) checkSingleWriter(c *Core, e *entry) {
	for off := 0; off < c.robCount; off++ {
		o := &c.rob[c.robIndex(off)]
		if o.valid && o.op.Dst.Valid() && o.op.Dst.IsFP() == e.op.Dst.IsFP() && o.pReg == e.pReg {
			c.st.Checks.PRFMultiWriter++
			return
		}
	}
}

// CommitDigest is a per-uop content hash of the committed architectural
// trace, appended in retirement (= program) order. Identical streams
// produce identical digests; internal/check compares them across paired
// configurations and localizes the first divergence.
type CommitDigest struct {
	interval uint64
	uops     []uint64
}

// IntervalUops returns the configured interval length in uops.
func (d *CommitDigest) IntervalUops() uint64 { return d.interval }

// Len returns the number of retired uops digested so far.
func (d *CommitDigest) Len() int { return len(d.uops) }

// Digests returns the per-uop digest stream (shared, not a copy).
func (d *CommitDigest) Digests() []uint64 { return d.uops }

// IntervalHash folds interval k's per-uop digests into one hash. The
// last interval may be short.
func (d *CommitDigest) IntervalHash(k int) uint64 {
	lo := uint64(k) * d.interval
	hi := lo + d.interval
	if hi > uint64(len(d.uops)) {
		hi = uint64(len(d.uops))
	}
	h := uint64(fnvOffset)
	for _, u := range d.uops[lo:hi] {
		h = mix64(h, u)
	}
	return h
}

// EnableCommitDigest attaches a commit digest with the given interval
// length (uops per interval hash; 0 means 1000) and returns it. Call
// before Run; the digest records every uop retired afterwards.
// Fast-forwarded uops are deliberately not digested, so a sampled run's
// stream aligns with the matching window of a full run.
func (c *Core) EnableCommitDigest(intervalUops uint64) *CommitDigest {
	if intervalUops == 0 {
		intervalUops = 1000
	}
	if c.chk == nil {
		c.chk = newChecker(c.cfg.Checks.Enabled)
	}
	c.chk.digest = &CommitDigest{interval: intervalUops}
	return c.chk.digest
}

// FNV-1a 64-bit, mixed 8 bytes at a time.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func mix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// digestOp hashes the architecturally visible fields of a retired uop.
// Seq is deliberately excluded: it is a dispatch artifact that differs
// across flush histories, while the committed stream must not.
func digestOp(op *isa.MicroOp) uint64 {
	h := mix64(uint64(fnvOffset), op.PC)
	h = mix64(h, uint64(op.Class))
	h = mix64(h, uint64(op.Dst)|uint64(op.Src1)<<8|uint64(op.Src2)<<16|uint64(op.Size)<<24)
	h = mix64(h, op.Addr)
	h = mix64(h, op.Value)
	t := op.Target
	if op.Taken {
		t ^= 1 << 63
	}
	return mix64(h, t)
}
