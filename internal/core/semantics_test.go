package core

import (
	"context"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/isa"
	"rfpsim/internal/trace"
)

// commitRecord captures the architectural essence of a retired uop.
type commitRecord struct {
	pc    uint64
	class isa.OpClass
	addr  uint64
	dst   isa.RegID
	taken bool
}

// committedStream runs n uops of a workload on cfg and returns the retired
// uop stream.
func committedStream(t *testing.T, cfg config.Core, spec trace.Spec, n uint64) []commitRecord {
	t.Helper()
	c := New(cfg, spec.New())
	var out []commitRecord
	c.OnCommit(func(op *isa.MicroOp) {
		out = append(out, commitRecord{
			pc: op.PC, class: op.Class, addr: op.Addr, dst: op.Dst, taken: op.Taken,
		})
	})
	if _, err := c.Run(context.Background(), n); err != nil {
		t.Fatalf("%s on %s: %v", spec.Name, cfg.Name, err)
	}
	return out
}

// TestSpeculationFeaturesAreTimingOnly is the strongest end-to-end
// correctness property the model has: RFP, value prediction and oracle
// prefetching may change WHEN instructions retire, never WHAT retires. A
// feature that flushed the wrong range, dropped a replayed uop or reordered
// commits would diverge here.
func TestSpeculationFeaturesAreTimingOnly(t *testing.T) {
	const n = 12000
	workloads := []string{"spec06_xalancbmk", "spec06_perlbench", "spec06_mcf", "spark"}
	features := []config.Core{
		config.Baseline().WithRFP(),
		config.Baseline().WithVP(config.VPEVES),
		config.Baseline().WithVP(config.VPDLVP),
		config.Baseline().WithVP(config.VPComposite),
		config.Baseline().WithVP(config.VPEPP),
		config.Baseline().WithVP(config.VPEVES).WithRFP(),
		config.Baseline().WithOracle(config.OracleL1ToRF),
	}
	for _, name := range workloads {
		spec, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		ref := committedStream(t, config.Baseline(), spec, n)
		if len(ref) < n {
			t.Fatalf("%s: reference committed only %d uops", name, len(ref))
		}
		for _, cfg := range features {
			got := committedStream(t, cfg, spec, n)
			if len(got) < n {
				t.Errorf("%s on %s: committed only %d uops", name, cfg.Name, len(got))
				continue
			}
			for i := 0; i < n; i++ {
				if got[i] != ref[i] {
					t.Errorf("%s on %s: commit stream diverged at %d:\n ref %+v\n got %+v",
						name, cfg.Name, i, ref[i], got[i])
					break
				}
			}
		}
	}
}

// TestFlushesReplayExactly forces heavy flushing (low-threshold VP on
// flaky values plus memory-ordering violations) and checks the commit
// stream still exactly matches the generated program order.
func TestFlushesReplayExactly(t *testing.T) {
	spec, ok := trace.ByName("tpcc") // stack-heavy: forwarding + violations
	if !ok {
		t.Fatal("missing workload")
	}
	cfg := config.Baseline().WithVP(config.VPEVES)
	cfg.VP.ConfMax = 1 // hair-trigger confidence: many mispredict flushes
	cfg.VP.ConfProb = 1

	// Reference stream straight from the generator.
	gen := spec.New()
	const n = 10000
	want := make([]commitRecord, n)
	var op isa.MicroOp
	for i := 0; i < n; i++ {
		gen.Next(&op)
		want[i] = commitRecord{pc: op.PC, class: op.Class, addr: op.Addr, dst: op.Dst, taken: op.Taken}
	}

	got := committedStream(t, cfg, spec, n)
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			t.Fatalf("commit stream diverged from program order at %d:\n want %+v\n got %+v",
				i, want[i], got[i])
		}
	}
}

// TestVPFlushesActuallyHappenUnderHairTrigger guards the flush-replay
// machinery with a generator whose load values repeat just long enough to
// gain hair-trigger confidence and then change — guaranteed mispredicts.
func TestVPFlushesActuallyHappenUnderHairTrigger(t *testing.T) {
	inner := &loopGen{name: "flip", body: []isa.MicroOp{
		ld(0x10, 1, isa.NoReg, 0xC000),
		alu(0x14, 2, 1, isa.NoReg),
	}}
	cfg := config.Baseline().WithVP(config.VPEVES)
	cfg.VP.ConfMax = 1
	cfg.VP.ConfProb = 1
	c := New(cfg, &valueFlipGen{inner})
	st, err := c.Run(context.Background(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if st.VPFlushes == 0 {
		t.Error("hair-trigger VP produced no flushes; the replay machinery went unexercised")
	}
}

// TestRFPQueueOverflowIsGraceful shrinks the RFP queue to 2 entries; the
// machine must stay correct and simply drop the overflow.
func TestRFPQueueOverflowIsGraceful(t *testing.T) {
	spec, _ := trace.ByName("spec06_hmmer")
	cfg := config.Baseline().WithRFP()
	cfg.RFP.QueueSize = 2
	c := New(cfg, spec.New())
	c.WarmCaches()
	st, err := c.Run(context.Background(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if st.RFP.Dropped == 0 {
		t.Error("a 2-entry queue on a stream workload must drop packets")
	}
	if st.Instructions < 20000 {
		t.Errorf("committed %d", st.Instructions)
	}
}

// TestTinyWindowsStillCorrect shrinks every window to stress structural
// stall paths (ROB/RS/LQ/SQ/PRF full).
func TestTinyWindowsStillCorrect(t *testing.T) {
	cfg := config.Baseline().WithRFP()
	cfg.ROBSize = 16
	cfg.RSSize = 8
	cfg.LQSize = 4
	cfg.SQSize = 4
	cfg.IntPRF = 64 + 8
	cfg.FPPRF = 64 + 8
	spec, _ := trace.ByName("spec06_gcc")
	got := committedStream(t, cfg, spec, 8000)
	gen := spec.New()
	var op isa.MicroOp
	for i := 0; i < 8000; i++ {
		gen.Next(&op)
		want := commitRecord{pc: op.PC, class: op.Class, addr: op.Addr, dst: op.Dst, taken: op.Taken}
		if got[i] != want {
			t.Fatalf("tiny-window commit diverged at %d", i)
		}
	}
}

// TestCommitStreamMatchesGeneratorOrder asserts the baseline core is a
// faithful in-order-retirement machine for every workload category.
func TestCommitStreamMatchesGeneratorOrder(t *testing.T) {
	for _, name := range []string{"spec06_wrf", "spec17_x264", "bigbench", "geekbench_fp", "lammps"} {
		spec, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		got := committedStream(t, config.Baseline(), spec, 6000)
		gen := spec.New()
		var op isa.MicroOp
		for i := 0; i < 6000; i++ {
			gen.Next(&op)
			want := commitRecord{pc: op.PC, class: op.Class, addr: op.Addr, dst: op.Dst, taken: op.Taken}
			if got[i] != want {
				t.Fatalf("%s: commit stream diverged at %d", name, i)
			}
		}
	}
}
