package core

import (
	"fmt"
	"sort"
	"strings"

	"rfpsim/internal/stats"
)

// PCProfile accumulates per-static-load statistics when profiling is
// enabled — the "which loads matter" view used to study coverage and
// criticality at instruction granularity (the paper's Figure 11 discussion
// of criticality outliers is about exactly this).
type PCProfile struct {
	pcs map[uint64]*PCStats
	// RunAhead is the distribution of how many cycles before the load's
	// issue its prefetch data arrived (0 = arrived exactly at issue or
	// later; larger = more slack). The §5.2.2 fully/partially-hidden
	// split is the mass above/at zero of this distribution.
	RunAhead *stats.Distribution
}

// PCStats is one static load's profile.
type PCStats struct {
	// PC is the static program counter.
	PC uint64
	// Count is the number of committed instances.
	Count uint64
	// Covered counts instances served by a correct RFP prefetch.
	Covered uint64
	// Wrong counts instances whose prefetch had the wrong address.
	Wrong uint64
	// Forwarded counts store-forwarded instances.
	Forwarded uint64
	// HeadStalls counts instances that blocked the commit head.
	HeadStalls uint64
	// LevelCounts histograms the hit levels.
	LevelCounts [stats.NumLevels]uint64
}

// Coverage returns the fraction of instances covered by RFP.
func (p *PCStats) Coverage() float64 {
	if p.Count == 0 {
		return 0
	}
	return float64(p.Covered) / float64(p.Count)
}

// EnableProfile turns on per-PC load profiling (a simulation-speed cost;
// off by default).
func (c *Core) EnableProfile() {
	c.profile = &PCProfile{
		pcs:      make(map[uint64]*PCStats),
		RunAhead: stats.NewDistribution(),
	}
}

// Profile returns the accumulated per-PC profile (nil unless enabled).
func (c *Core) Profile() *PCProfile { return c.profile }

// record accumulates one retired load.
func (p *PCProfile) record(e *entry) {
	s := p.pcs[e.op.PC]
	if s == nil {
		s = &PCStats{PC: e.op.PC}
		p.pcs[e.op.PC] = s
	}
	s.Count++
	if e.rfp == rfpExecuted && !e.rfpMDStale && e.rfpAddr == e.op.Addr && e.issued {
		// Covered is precisely the Useful condition at issue; the issue
		// path downgraded non-useful prefetches to rfpDropped, so any
		// surviving rfpExecuted here was consumed.
		s.Covered++
	}
	if e.rfp == rfpDropped && e.rfpAddr != 0 && e.rfpAddr != e.op.Addr {
		s.Wrong++
	}
	if e.forwarded {
		s.Forwarded++
	}
	if e.stalledHead {
		s.HeadStalls++
	}
	if e.hitLevel >= 0 && e.hitLevel < stats.NumLevels {
		s.LevelCounts[e.hitLevel]++
	}
}

// Top returns the n hottest load PCs by dynamic count.
func (p *PCProfile) Top(n int) []*PCStats {
	out := make([]*PCStats, 0, len(p.pcs))
	for _, s := range p.pcs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// String renders the top-15 table.
func (p *PCProfile) String() string {
	tb := stats.NewTable("Load PC", "Count", "Coverage", "Wrong", "Fwd", "HeadStalls", "L1%")
	for _, s := range p.Top(15) {
		l1 := 0.0
		if s.Count > 0 {
			l1 = float64(s.LevelCounts[stats.LevelL1]) / float64(s.Count)
		}
		tb.AddRow(fmt.Sprintf("%#x", s.PC),
			fmt.Sprint(s.Count),
			stats.Pct(s.Coverage()),
			fmt.Sprint(s.Wrong),
			fmt.Sprint(s.Forwarded),
			fmt.Sprint(s.HeadStalls),
			stats.Pct(l1))
	}
	return strings.TrimRight(tb.String(), "\n")
}
