package core

import (
	"context"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/isa"
	"rfpsim/internal/trace"
)

// TestLateRegAllocSemantics: the §3.3 pipeline variation must be
// timing-only like every other feature.
func TestLateRegAllocSemantics(t *testing.T) {
	spec, _ := trace.ByName("spec06_gcc")
	ref := committedStream(t, config.Baseline(), spec, 10000)
	late := config.Baseline().WithRFP()
	late.LateRegAlloc = true
	late.Name = "late-alloc"
	got := committedStream(t, late, spec, 10000)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("late-alloc commit stream diverged at %d", i)
		}
	}
}

// TestLateRegAllocRelievesPRFPressure: with a starved PRF, late allocation
// must outperform rename-time allocation — the entire point of virtual
// register pointers: only produced-but-unretired values hold entries.
func TestLateRegAllocRelievesPRFPressure(t *testing.T) {
	// DRAM-missing independent loads with long ALU tails: rename-time
	// allocation burns registers on uops that wait hundreds of cycles.
	body := []isa.MicroOp{
		ld(0x10, 1, isa.NoReg, 0x1000000),
		alu(0x14, 2, 1, isa.NoReg),
		alu(0x18, 3, 2, isa.NoReg),
		alu(0x1c, 4, 3, isa.NoReg),
		alu(0x20, 5, 4, isa.NoReg),
	}
	mk := func() *loopGen {
		return &loopGen{name: "prf", body: body, strides: []int64{64, 0, 0, 0, 0}, wrap: 32 << 20}
	}
	early := config.Baseline()
	early.IntPRF = 64
	late := early
	late.LateRegAlloc = true
	late.Name = "late"
	stEarly := run(t, early, mk(), 8000)
	stLate := run(t, late, mk(), 8000)
	if stLate.IPC() <= stEarly.IPC() {
		t.Errorf("late allocation did not relieve PRF pressure: %.3f vs %.3f",
			stLate.IPC(), stEarly.IPC())
	}
}

// TestLateRegAllocNoPressureIsNeutral: with an ample PRF the variation
// must be performance-neutral (within a small tolerance from retry
// timing).
func TestLateRegAllocNoPressureIsNeutral(t *testing.T) {
	spec, _ := trace.ByName("spec06_hmmer")
	base := config.Baseline()
	late := config.Baseline()
	late.LateRegAlloc = true
	late.Name = "late"
	mkRun := func(cfg config.Core) float64 {
		c := New(cfg, spec.New())
		c.WarmCaches()
		if err := c.Warmup(context.Background(), 10000); err != nil {
			t.Fatal(err)
		}
		st, err := c.Run(context.Background(), 20000)
		if err != nil {
			t.Fatal(err)
		}
		return st.IPC()
	}
	a, b := mkRun(base), mkRun(late)
	if b < 0.97*a || b > 1.03*a {
		t.Errorf("late allocation not neutral without pressure: %.3f vs %.3f", b, a)
	}
}
