package core

import (
	"rfpsim/internal/stats"
)

// rfpArbitrate drains the RFP queue onto whatever L1 load ports demand
// loads left free this cycle (plus any ports dedicated to RFP in the
// Figure 14 study). Requests are served oldest-first; the queue has the
// lowest priority at the L1 so baseline load latency is never hurt (§3.2).
//
// A granted request walks the same pipeline a load would: DTLB, older-store
// scan with memory disambiguation, then the L1 lookup. The RFP-inflight bit
// becomes visible to the scheduler SchedDepth cycles before the data lands
// in the register file — equal to the wakeup/select/register-read depth, so
// a load that observes the bit at wakeup has its dependents arrive exactly
// when the data does (§3.3).
func (c *Core) rfpArbitrate() {
	if c.rfpQ == nil {
		return
	}
	free := c.cfg.LoadPorts - c.loadUsed + c.cfg.RFPDedicatedPorts
	if c.rfpQ.Len() > 0 && free <= 0 {
		c.st.RFP.PortConflicts++
	}
	// Invariant (§4.3): prefetches may only ever win ports demand loads
	// left free this cycle; grants are counted against the budget
	// computed at entry.
	maxGrants, grants := free, 0
	for free > 0 {
		pkt, ok := c.rfpQ.Peek()
		if !ok {
			return
		}
		e := &c.rob[pkt.Slot]
		if !e.valid || e.op.Seq != uint64(pkt.LoadID) || e.rfp != rfpQueued {
			// The load issued, committed or was squashed meanwhile; the
			// packet is stale. (Drop accounting happened at that event.)
			c.rfpQ.Pop()
			continue
		}

		// Lowest priority extends to miss resources: if serving this
		// prefetch would need the last MSHR, it waits so demand misses
		// are never starved.
		if !c.hier.MSHRAvailable(pkt.Addr, c.cycle) {
			c.st.RFP.PortConflicts++
			return
		}

		// DTLB-miss drop (§3.2.2): a page walk would eat the whole
		// run-ahead, so the prefetch is abandoned before taking a port.
		if c.cfg.RFP.DropOnTLBMiss && !c.hier.TLBCovers(pkt.Addr) {
			c.rfpQ.Pop()
			e.rfp = rfpDropped
			c.st.RFP.Dropped++
			c.st.RFP.DroppedTLBMiss++
			continue
		}

		// Older-store scan with the predicted address (§3.2.1): the
		// prefetch is a proxy for the load, so it performs the same
		// memory disambiguation the load would.
		myOff := (pkt.Slot - c.robHead + len(c.rob)) % len(c.rob)
		action, fwdStore := c.rfpScanStores(e, myOff, pkt.Addr)
		switch action {
		case rfpScanWait:
			// An unresolved same-store-set store blocks the request;
			// FIFO order makes this head-of-line blocking, as in the
			// real queue.
			return
		case rfpScanForward:
			// The up-to-date data comes from the store queue entry.
			c.rfpQ.Pop()
			free--
			if grants++; grants > maxGrants && c.chk != nil && c.chk.invariants {
				c.st.Checks.RFPPortOvercommit++
			}
			e.rfp = rfpExecuted
			e.rfpAddr = pkt.Addr
			e.rfpFillAt = c.cycle + 1
			e.rfpArmedAt = c.cycle + 1
			e.rfpLevel = stats.LevelL1
			e.forwardedFromSeq = fwdStore.op.Seq
			if c.chk != nil {
				e.rfpData, e.rfpDataKnown, e.rfpDataInit = fwdStore.op.Value, true, false
			}
			c.st.RFP.Executed++
			continue
		}

		// L1 lookup. Optionally drop requests that miss the L1 (§5.5.5
		// sensitivity: serving misses is worth only ~0.02%).
		if !c.cfg.RFP.PrefetchOnL1Miss && !c.hier.L1Contains(pkt.Addr) {
			c.rfpQ.Pop()
			free--
			grants++ // the tag lookup consumed the port
			e.rfp = rfpDropped
			c.st.RFP.Dropped++
			continue
		}
		res := c.hier.Access(pkt.Addr, e.op.PC, c.cycle, false)
		c.rfpQ.Pop()
		free--
		if grants++; grants > maxGrants && c.chk != nil && c.chk.invariants {
			c.st.Checks.RFPPortOvercommit++
		}
		e.rfp = rfpExecuted
		e.rfpAddr = pkt.Addr
		e.rfpFillAt = res.DoneAt
		// The RFP-inflight bit is set in the first L1-lookup cycle, one
		// address-calculation stage after the port grant — for hits this
		// is exactly SchedDepth cycles before the data lands (§3.3); for
		// misses the bit is set at the same early point and the load's
		// dependents simply align to the later fill (§3.2.2). A confident
		// near-hit level prediction arms the bit at the port grant itself:
		// the predicted latency is known, so there is nothing to wait for
		// (the CLP extension deliberately departs from the flat schedule).
		if e.clpEarlyArm {
			e.rfpArmedAt = c.cycle + 1
			c.st.CLP.EarlyArmed++
		} else {
			e.rfpArmedAt = c.cycle + 2
		}
		if res.Level != stats.LevelL1 {
			c.st.RFP.L1Misses++
		}
		e.rfpLevel = res.Level
		if c.chk != nil {
			// Snapshot what the read actually returned: the youngest
			// already-issued older store's value, or pre-store memory.
			if v, ok := c.chk.valueAt(pkt.Addr, e.op.Seq); ok {
				e.rfpData, e.rfpDataKnown, e.rfpDataInit = v, true, false
			} else {
				e.rfpDataKnown, e.rfpDataInit = false, true
			}
			// Invariant (§3.3): for an L1 hit the RFP-inflight bit leads
			// the register file fill by exactly the wakeup/select/read
			// depth — checked when the config keeps the paper's alignment
			// L1Latency == SchedDepth + 2. Early-armed CLP prefetches are
			// exempt: stretching the lead is exactly their point.
			if c.chk.invariants && !e.clpEarlyArm && res.Level == stats.LevelL1 &&
				c.cfg.Mem.L1Latency == c.cfg.SchedDepth+2 &&
				e.rfpFillAt-e.rfpArmedAt != uint64(c.cfg.SchedDepth) {
				c.st.Checks.RFPArmLeadSkew++
			}
		}
		c.st.RFP.Executed++
		c.traceRFPExec(e.op.Seq, pkt.Addr, e.rfpFillAt, e.rfpArmedAt, res.Level)
	}
}

// rfpScan results.
const (
	rfpScanClear   = iota // no conflicting older store: go to the L1
	rfpScanWait           // unresolved same-set store: wait for it
	rfpScanForward        // resolved older store covers the word: take its data
)

// rfpScanStores performs the §3.2.1 older-store scan for a prefetch to
// addr on behalf of load e at ROB offset myOff (youngest-first, like the
// LSQ CAM). On rfpScanForward the covering store entry is returned.
func (c *Core) rfpScanStores(e *entry, myOff int, addr uint64) (action int, fwdStore *entry) {
	if c.faultRFPNoDisambiguation {
		return rfpScanClear, nil // injected fault: never scan, never wait
	}
	loadSet := c.ss.IDFor(e.op.PC)
	for off := myOff - 1; off >= 0; off-- {
		s := &c.rob[c.robIndex(off)]
		if !s.valid || !s.isStore() {
			continue
		}
		if s.addrKnown {
			if sameWord(s.op.Addr, addr) {
				return rfpScanForward, s
			}
			continue
		}
		// Unresolved store: the memory-dependence predictor decides
		// whether the prefetch waits or speculates past it (a wrong
		// "skip" is caught by issueStore marking the prefetch stale —
		// no flush, per §3.2.1, because the load has not dispatched).
		if loadSet != -1 && c.ss.IDFor(s.op.PC) == loadSet {
			return rfpScanWait, nil
		}
	}
	return rfpScanClear, nil
}
