package core

import (
	"context"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/trace"
)

// steadyCore builds a core on a real catalog workload and runs it long
// enough that every growable structure (fetch queue, replay buffer, MSHR
// list, flush scratch buffers) has reached its steady-state capacity.
func steadyCore(t *testing.T, cfg config.Core) *Core {
	t.Helper()
	spec, ok := trace.ByName("spec06_gcc")
	if !ok {
		t.Fatal("spec06_gcc missing from catalog")
	}
	c := New(cfg, spec.New())
	c.WarmCaches()
	if _, err := c.Run(context.Background(), 50000); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestStepZeroAllocs asserts the simulated-interval contract at the heart
// of the throughput work: with tracing detached and checks off, the cycle
// loop performs zero heap allocations per interval. This is the tier-1
// guard for the eager-trace-argument bug class (formatting trace events
// before the tracing guard) and for any new per-uop/per-event allocation
// sneaking into a pipeline stage.
func TestStepZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  config.Core
	}{
		{"baseline", config.Baseline()},
		{"rfp", config.Baseline().WithRFP()},
		// The prefetcher zoo rides the demand path, so every scheme (and
		// the adaptive manager, which runs all of them) must honor the
		// same zero-alloc contract.
		// The CLP schedule adds a prediction per dispatched load and a
		// training update per committed one; both must stay table-only.
		{"clp", config.Baseline().WithCLP()},
		{"spp", config.Baseline().WithRFP().WithPrefetcher("spp")},
		{"sisb", config.Baseline().WithRFP().WithPrefetcher("sisb")},
		{"managed", config.Baseline().WithRFP().WithPrefetcher("managed")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := steadyCore(t, tc.cfg)
			ctx := context.Background()
			avg := testing.AllocsPerRun(5, func() {
				if _, err := c.Run(ctx, 2000); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("steady-state interval allocated %.1f times per 2000 uops, want 0", avg)
			}
		})
	}
}

// TestTraceUopLazyWhenDetached pins the fix for the disabled-pipeTrace
// allocation bug: traceUop (and therefore its fmt.Sprintf) must never run
// while no trace is attached. The counter is the regression tripwire — an
// eagerly evaluated trace argument at any call site re-fires it.
func TestTraceUopLazyWhenDetached(t *testing.T) {
	c := steadyCore(t, config.Baseline().WithRFP())
	before := traceUopCalls
	if _, err := c.Run(context.Background(), 5000); err != nil {
		t.Fatal(err)
	}
	if got := traceUopCalls - before; got != 0 {
		t.Errorf("traceUop ran %d times with tracing detached, want 0", got)
	}

	// Sanity-check the counter itself: with a trace attached it must fire.
	c.AttachPipeTrace(discard{}, 0, ^uint64(0))
	before = traceUopCalls
	if _, err := c.Run(context.Background(), 1000); err != nil {
		t.Fatal(err)
	}
	if traceUopCalls == before {
		t.Error("traceUop never ran with an unbounded trace attached")
	}
}

// TestTraceOutsideWindowZeroAllocs covers the second disabled shape: a
// trace is attached but the current cycle lies outside its window, which
// must be just as allocation-free as no trace at all.
func TestTraceOutsideWindowZeroAllocs(t *testing.T) {
	c := steadyCore(t, config.Baseline().WithRFP())
	c.AttachPipeTrace(discard{}, ^uint64(0)-1, ^uint64(0))
	ctx := context.Background()
	avg := testing.AllocsPerRun(5, func() {
		if _, err := c.Run(ctx, 2000); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("out-of-window tracing allocated %.1f times per 2000 uops, want 0", avg)
	}
}

// discard is an io.Writer that drops everything (io.Discard would work,
// but a local type keeps the zero-alloc tests free of interface-conversion
// surprises across Go versions).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
