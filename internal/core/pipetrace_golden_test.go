package core

import (
	"bytes"
	"context"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/isa"
	"rfpsim/internal/trace"
)

// goldenGen is the fixed workload behind the pipeTrace golden: a
// load/alu/store/branch loop with strided addresses, fully deterministic.
func goldenGen() *loopGen {
	return &loopGen{
		name: "golden",
		body: []isa.MicroOp{
			ld(0x100, 1, isa.NoReg, 0x8000),
			alu(0x104, 2, 1, isa.NoReg),
			st8(0x108, 2, isa.NoReg, 0x9000),
			br(0x10c, true),
		},
		strides: []int64{64, 0, 64, 0},
	}
}

// pipeTraceGolden is the exact event stream the golden workload emits for
// cycles [1000, 1008) under Baseline+RFP. It pins the line format every
// downstream trace consumer (grep-based debugging, docs examples) relies
// on: "cycle <n> <event><pad> seq=... pc=0x... <kind> ...". The golden is
// intentionally brittle — a timing-model change that reschedules these
// uops must update it deliberately, with the diff reviewed, not silently.
const pipeTraceGolden = `cycle 1000 commit    seq=471 pc=0x100 load addr=0x9b40
cycle 1000 issue     seq=472 pc=0x104 alu done=1001
cycle 1000 dispatch  seq=642 pc=0x10c branch taken=true
cycle 1001 commit    seq=472 pc=0x104 alu
cycle 1001 issue     seq=473 pc=0x108 store addr=0xab40 done=1002
cycle 1001 dispatch  seq=643 pc=0x100 load addr=0xa600
cycle 1001 dispatch  seq=644 pc=0x104 alu
cycle 1002 commit    seq=473 pc=0x108 store addr=0xab40
cycle 1002 commit    seq=474 pc=0x10c branch taken=true
cycle 1003 issue     seq=642 pc=0x10c branch taken=true done=1004
cycle 1003 dispatch  seq=645 pc=0x108 store addr=0xb600
cycle 1006 commit    seq=475 pc=0x100 load addr=0x9b80
cycle 1006 issue     seq=476 pc=0x104 alu done=1007
cycle 1006 dispatch  seq=646 pc=0x10c branch taken=true
cycle 1007 commit    seq=476 pc=0x104 alu
cycle 1007 issue     seq=477 pc=0x108 store addr=0xab80 done=1008
cycle 1007 dispatch  seq=647 pc=0x100 load addr=0xa640
cycle 1007 dispatch  seq=648 pc=0x104 alu
`

// TestPipeTraceGolden replays the golden workload and compares the traced
// window byte for byte.
func TestPipeTraceGolden(t *testing.T) {
	c := New(config.Baseline().WithRFP(), goldenGen())
	var buf bytes.Buffer
	c.AttachPipeTrace(&buf, 1000, 1008)
	if _, err := c.Run(context.Background(), 2000); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != pipeTraceGolden {
		t.Errorf("pipeTrace output drifted from golden.\ngot:\n%s\nwant:\n%s", got, pipeTraceGolden)
	}
}

// traceLineRE is the grammar of every pipeTrace line: a cycle stamp, an
// event name left-padded to a fixed-width column, then the uop identity
// (seq + pc + kind-specific fields) or, for rfp-exec/rfp-hit, the
// prefetch fields.
var traceLineRE = regexp.MustCompile(
	`^cycle (\d+) (dispatch|issue|commit|flush|rfp-exec|rfp-hit) {2,}(seq=\d+ )?(pc=0x[0-9a-f]+ )?\S.*$`)

// TestPipeTraceLineGrammarAndWindow runs a real catalog workload with RFP
// and checks that (a) every emitted line matches the pinned grammar and
// (b) every cycle stamp lies inside the attached [from, to) window —
// from is inclusive, to is exclusive.
func TestPipeTraceLineGrammarAndWindow(t *testing.T) {
	spec, ok := trace.ByName("spec06_hmmer")
	if !ok {
		t.Fatal("spec06_hmmer missing from catalog")
	}
	c := New(config.Baseline().WithRFP(), spec.New())
	c.WarmCaches()
	if err := c.Warmup(context.Background(), 10000); err != nil {
		t.Fatal(err)
	}
	from, to := c.Cycle()+100, c.Cycle()+600
	var buf bytes.Buffer
	c.AttachPipeTrace(&buf, from, to)
	if _, err := c.Run(context.Background(), 5000); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no trace lines emitted")
	}
	seen := map[string]bool{}
	for _, line := range lines {
		m := traceLineRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("trace line does not match the pinned grammar: %q", line)
		}
		cyc, err := strconv.ParseUint(m[1], 10, 64)
		if err != nil {
			t.Fatalf("unparseable cycle in %q", line)
		}
		if cyc < from || cyc >= to {
			t.Fatalf("event at cycle %d outside window [%d, %d): %q", cyc, from, to, line)
		}
		seen[m[2]] = true
	}
	for _, ev := range []string{"dispatch", "issue", "commit"} {
		if !seen[ev] {
			t.Errorf("no %s events in a %d-cycle window", ev, to-from)
		}
	}
}
