package core

import (
	"context"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/isa"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
)

// TestVPRFPFusionExclusive: in the VP+RFP configuration a value-predicted
// load must not also inject a prefetch (§5.3: "an RFP is performed for a
// given load only if the load is not value predictable"), so per-load help
// never double-counts.
func TestVPRFPFusionExclusive(t *testing.T) {
	// Constant-valued strided load: both VP- and RFP-coverable.
	body := []isa.MicroOp{
		ld(0x10, 1, isa.NoReg, 0x8000),
		alu(0x14, 2, 1, isa.NoReg),
	}
	g := &loopGen{name: "both", body: body, strides: []int64{8, 0}, wrap: 8 << 10}
	// Give the load a constant value.
	g.body[0].Value = 0x1234
	cfg := config.Baseline().WithVP(config.VPEVES).WithRFP()
	c := New(cfg, g)
	st, err := c.Run(context.Background(), 30000)
	if err != nil {
		t.Fatal(err)
	}
	if st.VP.Predicted == 0 {
		t.Fatal("VP never predicted the constant load")
	}
	// Once VP is confident, RFP injection must stop for that PC: the sum
	// of helped loads stays ≤ all loads.
	if st.VP.Predicted+st.RFP.Injected > st.Loads+st.Loads/20 {
		t.Errorf("VP (%d) and RFP (%d) overlap on %d loads",
			st.VP.Predicted, st.RFP.Injected, st.Loads)
	}
}

// TestRFPDropOnTLBMissBehavior: loads striding across many pages with a
// cold TLB must show TLB-miss drops when the simplification is on, and
// none when off.
func TestRFPDropOnTLBMissBehavior(t *testing.T) {
	mk := func() *loopGen {
		return &loopGen{
			name: "pages",
			// The load is serial (address operand = its own value) so the
			// prefetch runs ahead of the demand stream and is the first
			// to touch each new page.
			body: []isa.MicroOp{
				ld(0x10, 1, 1, 0x1000000),
				alu(0x14, 2, 1, isa.NoReg),
				alu(0x18, 3, 2, isa.NoReg),
				br(0x1c, true),
			},
			// 120B stride (8-bit encodable) crosses a page every ~34
			// iterations; the wrap is far beyond the 64-entry DTLB reach.
			strides: []int64{120, 0, 0, 0},
			wrap:    16 << 20,
		}
	}
	on := config.Baseline().WithRFP()
	stOn := run(t, on, mk(), 30000)
	if stOn.RFP.DroppedTLBMiss == 0 {
		t.Error("no TLB-miss drops on a page-crossing stream")
	}
	off := config.Baseline().WithRFP()
	off.RFP.DropOnTLBMiss = false
	stOff := run(t, off, mk(), 30000)
	if stOff.RFP.DroppedTLBMiss != 0 {
		t.Error("TLB-miss drops counted with the simplification disabled")
	}
}

// TestWarmCachesMakesColdStartWarm compares first-window L1 hit rates with
// and without footprint warming.
func TestWarmCachesMakesColdStartWarm(t *testing.T) {
	spec, _ := trace.ByName("spec06_hmmer")
	cold := New(config.Baseline(), spec.New())
	stCold, err := cold.Run(context.Background(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	warm := New(config.Baseline(), spec.New())
	warm.WarmCaches()
	stWarm, err := warm.Run(context.Background(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if stWarm.LoadLevelFrac(stats.LevelL1) <= stCold.LoadLevelFrac(stats.LevelL1) {
		t.Errorf("warming did not raise the L1 hit rate: %.2f vs %.2f",
			stWarm.LoadLevelFrac(stats.LevelL1), stCold.LoadLevelFrac(stats.LevelL1))
	}
}

// TestWarmupWindowExcludesTrainingNoise: IPC measured after a warmup must
// be at least the cold-start IPC for a cache-friendly workload.
func TestWarmupWindowExcludesTrainingNoise(t *testing.T) {
	spec, _ := trace.ByName("spec06_hmmer")
	coldStats := func() *stats.Sim {
		c := New(config.Baseline(), spec.New())
		st, err := c.Run(context.Background(), 20000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}()
	warmStats := func() *stats.Sim {
		c := New(config.Baseline(), spec.New())
		if err := c.Warmup(context.Background(), 20000); err != nil {
			t.Fatal(err)
		}
		st, err := c.Run(context.Background(), 20000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}()
	if warmStats.IPC() < coldStats.IPC() {
		t.Errorf("warmed IPC %.3f below cold %.3f", warmStats.IPC(), coldStats.IPC())
	}
	// Commit retires up to Width uops in the final cycle, so the window
	// may overshoot by at most Width-1.
	if warmStats.Instructions < 20000 || warmStats.Instructions >= 20000+uint64(config.Baseline().Width) {
		t.Errorf("measured window = %d uops", warmStats.Instructions)
	}
}

// TestRFPOnL1MissBringsOuterData: with PrefetchOnL1Miss enabled (default),
// prefetches to L2-resident lines must record outer-level hits for covered
// loads.
func TestRFPOnL1MissBringsOuterData(t *testing.T) {
	// The body is 5 uops so outstanding instances of the load PC stay
	// inside the 7-bit in-flight counter's range.
	mk := func() *loopGen {
		return &loopGen{
			name: "l2stream",
			body: []isa.MicroOp{
				ld(0x10, 1, 1, 0x1000000),
				alu(0x14, 2, 1, isa.NoReg),
				alu(0x18, 3, 2, isa.NoReg),
				alu(0x1c, 4, 3, isa.NoReg),
				br(0x20, true),
			},
			strides: []int64{64, 0, 0, 0, 0},
			wrap:    128 << 10, // L2-resident once warmed (one pass = ~10k uops)
		}
	}
	cfg := config.Baseline().WithRFP()
	c := New(cfg, mk())
	if err := c.Warmup(context.Background(), 20000); err != nil { // first pass warms L2
		t.Fatal(err)
	}
	st, err := c.Run(context.Background(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if st.RFP.Useful == 0 {
		t.Fatal("no useful prefetches on a strided L2 stream")
	}
	if st.RFP.L1Misses == 0 {
		t.Error("no prefetch L1 misses recorded on an L2-resident stream")
	}
	beyond := st.LoadHitLevel[stats.LevelMSHR] + st.LoadHitLevel[stats.LevelL2] +
		st.LoadHitLevel[stats.LevelLLC] + st.LoadHitLevel[stats.LevelMem]
	if beyond == 0 {
		t.Error("covered loads recorded no outer-level hits")
	}
}

// TestOnCommitHookOrder: the observer must see strictly increasing PC-local
// order for a single-kernel loop (program order).
func TestOnCommitHookOrder(t *testing.T) {
	g := &loopGen{name: "seq", body: []isa.MicroOp{
		alu(0x10, 1, 1, isa.NoReg),
		alu(0x14, 2, 1, isa.NoReg),
		alu(0x18, 3, 2, isa.NoReg),
	}}
	c := New(config.Baseline(), g)
	wantPC := []uint64{0x10, 0x14, 0x18}
	i := 0
	c.OnCommit(func(op *isa.MicroOp) {
		if op.PC != wantPC[i%3] {
			t.Fatalf("commit %d out of order: pc=%#x", i, op.PC)
		}
		i++
	})
	if _, err := c.Run(context.Background(), 9000); err != nil {
		t.Fatal(err)
	}
	if i < 9000 {
		t.Errorf("observer saw %d commits", i)
	}
}

// TestDLVPProbeLifecycleOnStrideLoop drives a loop whose load is perfectly
// path- and stride-predictable, and checks the DLVP waterfall counters
// advance through every stage.
func TestDLVPProbeLifecycleOnStrideLoop(t *testing.T) {
	body := []isa.MicroOp{
		ld(0x10, 1, isa.NoReg, 0x8000),
		alu(0x14, 2, 1, isa.NoReg),
		br(0x18, true),
	}
	mk := func() *loopGen {
		return &loopGen{name: "dlvp", body: body, strides: []int64{8, 0, 0}, wrap: 8 << 10}
	}
	cfg := config.Baseline().WithVP(config.VPDLVP)
	c := New(cfg, mk())
	if err := c.Warmup(context.Background(), 20000); err != nil {
		t.Fatal(err)
	}
	st, err := c.Run(context.Background(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	ap := st.AP
	if ap.AddressPredictable == 0 || ap.HighConfidence == 0 {
		t.Fatalf("DLVP never matched a perfectly strided loop: %+v", ap)
	}
	if ap.ProbeLaunched == 0 {
		t.Fatal("no probes launched despite free ports")
	}
	if ap.ProbeInTime == 0 {
		t.Fatal("no probe returned before allocation")
	}
	if st.VP.Predicted == 0 {
		t.Fatal("in-time probes produced no value predictions")
	}
	// On a store-free loop the probes read valid data: near-zero flushes.
	if st.VP.Mispredicted > st.VP.Predicted/20 {
		t.Errorf("DLVP mispredicted %d of %d on a store-free strided loop",
			st.VP.Mispredicted, st.VP.Predicted)
	}
}

// TestDLVPStaleProbeDetectedViaForwarding: a load that forwards from an
// in-flight store must invalidate its probe-based prediction (the L1 probe
// read pre-store data).
func TestDLVPStaleProbeDetectedViaForwarding(t *testing.T) {
	// Store and reload the same slot every iteration; the load's address
	// is trivially predictable so DLVP will probe it, but the value comes
	// from the store queue.
	body := []isa.MicroOp{
		alu(0x0c, 2, 2, isa.NoReg),
		st8(0x10, isa.NoReg, 2, 0x9000),
		ld(0x14, 3, isa.NoReg, 0x9000),
		alu(0x18, 4, 3, isa.NoReg),
		br(0x1c, true),
	}
	cfg := config.Baseline().WithVP(config.VPDLVP)
	c := New(cfg, &loopGen{name: "stale", body: body})
	st, err := c.Run(context.Background(), 30000)
	if err != nil {
		t.Fatal(err)
	}
	if st.StoreForwarded == 0 {
		t.Fatal("no forwarding in a store-reload loop")
	}
	// The no-FWD filter learns to suppress these, so predictions (and
	// therefore flushes) must be rare relative to loads.
	if st.VP.Predicted > st.Loads/4 {
		t.Errorf("no-FWD filter let %d of %d store-forwarded loads predict",
			st.VP.Predicted, st.Loads)
	}
}

// TestCompositeFallsBackToProbe: the Composite configuration must produce
// more predictions than EVES alone on a workload whose values are random
// but addresses are predictable.
func TestCompositeCoversMoreThanEVES(t *testing.T) {
	body := []isa.MicroOp{
		ld(0x10, 1, isa.NoReg, 0x8000),
		alu(0x14, 2, 1, isa.NoReg),
		br(0x18, true),
	}
	mk := func(seed uint64) *valueFlipGen {
		// Values change constantly: EVES can't learn them; DLVP probes can
		// still fetch them early because the ADDRESS strides.
		g := &loopGen{name: "addrpred", body: body, strides: []int64{8, 0, 0}, wrap: 8 << 10}
		return &valueFlipGen{g}
	}
	runMode := func(mode config.VPMode) *stats.Sim {
		c := New(config.Baseline().WithVP(mode), mk(1))
		if err := c.Warmup(context.Background(), 20000); err != nil {
			t.Fatal(err)
		}
		st, err := c.Run(context.Background(), 20000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	eves := runMode(config.VPEVES)
	comp := runMode(config.VPComposite)
	if comp.VP.Predicted <= eves.VP.Predicted {
		t.Errorf("composite predicted %d, EVES %d: the DLVP side never engaged",
			comp.VP.Predicted, eves.VP.Predicted)
	}
}

// TestSlotAccountingConservation: every cycle contributes exactly Width
// commit slots across the four categories.
func TestSlotAccountingConservation(t *testing.T) {
	spec, _ := trace.ByName("spec06_gcc")
	c := New(config.Baseline(), spec.New())
	c.WarmCaches()
	st, err := c.Run(context.Background(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	want := st.Cycles * uint64(config.Baseline().Width)
	if got := st.Slots.Total(); got != want {
		t.Errorf("slot total %d != cycles*width %d", got, want)
	}
	r, l, e, f := st.Slots.Frac()
	if s := r + l + e + f; s < 0.999 || s > 1.001 {
		t.Errorf("slot fractions sum to %v", s)
	}
}

// TestSlotAccountingRFPShiftsLoadStalls: on a chase-critical workload RFP
// must convert load-stall slots into retired slots.
func TestSlotAccountingRFPShiftsLoadStalls(t *testing.T) {
	mk := func() *loopGen {
		return &loopGen{
			name: "chase",
			body: []isa.MicroOp{
				ld(0x10, 1, 1, 0x100000),
				alu(0x14, 2, 1, isa.NoReg),
				alu(0x18, 2, 2, isa.NoReg),
				br(0x1c, true),
			},
			strides: []int64{8, 0, 0, 0},
			wrap:    16 << 10,
		}
	}
	base := run(t, config.Baseline(), mk(), 30000)
	rfp := run(t, config.Baseline().WithRFP(), mk(), 30000)
	_, baseLoad, _, _ := base.Slots.Frac()
	rRet, rLoad, _, _ := rfp.Slots.Frac()
	bRet, _, _, _ := base.Slots.Frac()
	if rLoad >= baseLoad {
		t.Errorf("RFP did not reduce load-stall slots: %.2f vs %.2f", rLoad, baseLoad)
	}
	if rRet <= bRet {
		t.Errorf("RFP did not raise retired slots: %.2f vs %.2f", rRet, bRet)
	}
}
