package core

import (
	"context"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/isa"
	"rfpsim/internal/prng"
	"rfpsim/internal/trace"
)

// randMemGen emits a pseudo-random mix of stores and loads over a small
// address pool with tangled register dependences — a fuzz workload for the
// LSQ. Determinism comes from the seed.
type randMemGen struct {
	rng  *prng.Source
	seq  uint64
	pool []uint64
}

func newRandMemGen(seed uint64) *randMemGen {
	g := &randMemGen{rng: prng.New(seed)}
	for i := 0; i < 24; i++ {
		g.pool = append(g.pool, 0x40000+uint64(i)*8)
	}
	return g
}

func (g *randMemGen) Name() string { return "randmem" }

func (g *randMemGen) Next(op *isa.MicroOp) bool {
	r := g.rng.Intn(100)
	addr := g.pool[g.rng.Intn(len(g.pool))]
	reg := isa.RegID(1 + g.rng.Intn(8))
	reg2 := isa.RegID(1 + g.rng.Intn(8))
	pc := uint64(0x1000 + g.rng.Intn(32)*4)
	switch {
	case r < 30:
		*op = isa.MicroOp{PC: pc, Class: isa.OpStore, Dst: isa.NoReg,
			Src1: reg, Src2: reg2, Addr: addr, Size: 8}
	case r < 65:
		*op = isa.MicroOp{PC: pc, Class: isa.OpLoad, Dst: reg,
			Src1: reg2, Src2: isa.NoReg, Addr: addr, Size: 8}
	case r < 92:
		*op = isa.MicroOp{PC: pc, Class: isa.OpALU, Dst: reg, Src1: reg2, Src2: isa.NoReg}
	default:
		*op = isa.MicroOp{PC: pc, Class: isa.OpBranch, Dst: isa.NoReg,
			Src1: reg, Src2: isa.NoReg, Taken: g.rng.Bool(0.8), Target: pc}
	}
	op.Seq = g.seq
	g.seq++
	return true
}

// TestLSQForwardingMatchesReferenceModel is the LSQ's ground-truth check:
// replay the committed uop stream against a sequential memory model that
// tracks, for every word, the dispatch sequence number of the last store
// that wrote it. A committed load must have taken its data from exactly
// that store when it was still in flight — never from an older store, and
// never from the cache while a covering store was in the window.
func TestLSQForwardingMatchesReferenceModel(t *testing.T) {
	for _, withRFP := range []bool{false, true} {
		cfg := config.Baseline()
		if withRFP {
			cfg = cfg.WithRFP()
		}
		c := New(cfg, newRandMemGen(42))

		// lastStoreSeq maps word address -> dispatch seq of the last
		// committed store to it. Committed (retired) stores leave the
		// window, so a load may legally read the cache even though this
		// map has an entry; the invariant below therefore only constrains
		// loads that DID forward.
		lastStoreSeq := map[uint64]uint64{}
		inWindow := map[uint64]bool{} // store seq -> still in flight?
		checked := 0
		c.onRetire = func(e *entry) {
			switch {
			case e.isStore():
				lastStoreSeq[e.op.Addr>>3] = e.op.Seq
				delete(inWindow, e.op.Seq)
			case e.isLoad():
				want, haveStore := lastStoreSeq[e.op.Addr>>3]
				if e.forwarded {
					checked++
					// A forwarded load must name the latest older store
					// to its word — which, at the load's retirement, is
					// exactly the most recently retired store to that
					// word (all older stores retire first).
					if !haveStore || e.forwardedFromSeq != want {
						t.Fatalf("load seq=%d addr=%#x forwarded from store seq=%d, reference says %d (have=%v)",
							e.op.Seq, e.op.Addr, e.forwardedFromSeq, want, haveStore)
					}
				}
			}
		}
		// Track dispatches so stores in flight are known (white-box: the
		// dispatch path assigns Seq in program order).
		if _, err := c.Run(context.Background(), 60000); err != nil {
			t.Fatalf("rfp=%v: %v", withRFP, err)
		}
		if checked == 0 {
			t.Fatalf("rfp=%v: no forwarded loads exercised", withRFP)
		}
		t.Logf("rfp=%v: %d forwarded loads validated", withRFP, checked)
	}
}

// TestOrderingViolationsEventuallyStopOnFuzz runs the memory fuzz workload
// and checks the store-set predictor keeps learning: violations must not
// grow linearly with instruction count.
func TestOrderingViolationsEventuallyStopOnFuzz(t *testing.T) {
	c := New(config.Baseline(), newRandMemGen(7))
	st, err := c.Run(context.Background(), 30000)
	if err != nil {
		t.Fatal(err)
	}
	early := st.MemOrderViolations
	st, err = c.Run(context.Background(), 30000)
	if err != nil {
		t.Fatal(err)
	}
	late := st.MemOrderViolations - early
	if late > early && late > 50 {
		t.Errorf("violations accelerating: %d then %d — store sets not learning", early, late)
	}
}

// TestFuzzWorkloadSemanticsWithAllFeatures runs the adversarial memory mix
// through every feature combination, relying on the timing-only commit
// equivalence.
func TestFuzzWorkloadSemanticsWithAllFeatures(t *testing.T) {
	ref := make([]isa.MicroOp, 0, 20000)
	g := newRandMemGen(99)
	var op isa.MicroOp
	for i := 0; i < 20000; i++ {
		g.Next(&op)
		ref = append(ref, op)
	}
	cfgs := []config.Core{
		config.Baseline(),
		config.Baseline().WithRFP(),
		config.Baseline().WithVP(config.VPEVES).WithRFP(),
		config.Baseline2x().WithRFP(),
	}
	for _, cfg := range cfgs {
		c := New(cfg, newRandMemGen(99))
		i := 0
		c.OnCommit(func(got *isa.MicroOp) {
			if i < len(ref) {
				want := ref[i]
				if got.PC != want.PC || got.Addr != want.Addr || got.Class != want.Class {
					t.Fatalf("%s: commit %d diverged", cfg.Name, i)
				}
			}
			i++
		})
		if _, err := c.Run(context.Background(), 20000); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
}

// TestRFPOnFuzzNeverWedges hammers the RFP machinery with the adversarial
// mix across several seeds.
func TestRFPOnFuzzNeverWedges(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := config.Baseline().WithRFP()
		cfg.RFP.QueueSize = 4 // tiny queue: maximum churn
		c := New(cfg, newRandMemGen(seed))
		if _, err := c.Run(context.Background(), 15000); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestSuiteWorkloadsUnderLSQInvariant samples real suite workloads under
// the same forwarding reference model.
func TestSuiteWorkloadsUnderLSQInvariant(t *testing.T) {
	for _, name := range []string{"tpcc", "spec06_gcc", "spec17_perlbench"} {
		spec, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		c := New(config.Baseline().WithRFP(), spec.New())
		lastStoreSeq := map[uint64]uint64{}
		c.onRetire = func(e *entry) {
			switch {
			case e.isStore():
				lastStoreSeq[e.op.Addr>>3] = e.op.Seq
			case e.isLoad() && e.forwarded:
				if want, ok := lastStoreSeq[e.op.Addr>>3]; !ok || e.forwardedFromSeq != want {
					t.Fatalf("%s: load seq=%d forwarded from %d, reference %d",
						name, e.op.Seq, e.forwardedFromSeq, want)
				}
			}
		}
		if _, err := c.Run(context.Background(), 30000); err != nil {
			t.Fatal(err)
		}
	}
}
