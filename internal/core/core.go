package core

import (
	"context"
	"fmt"

	"rfpsim/internal/config"
	"rfpsim/internal/isa"
	"rfpsim/internal/mem"
	"rfpsim/internal/predictor"
	"rfpsim/internal/rfp"
	"rfpsim/internal/stats"
	"rfpsim/internal/vp"
)

// fetched is a uop sitting between fetch and rename.
type fetched struct {
	op      isa.MicroOp
	readyAt uint64 // earliest rename cycle (fetch + frontend latency)

	predTaken  bool
	mispredict bool

	pathAtFetch uint64 // global path hash snapshot used for prediction

	// DLVP early-probe state (§5.4): filled at fetch, consumed at rename.
	dlvpPredicted bool // PredictAddr was called (for squash accounting)
	probeLaunched bool
	probeAddr     uint64
	probeDoneAt   uint64
	eppShared     bool
}

// Core is one simulated out-of-order core bound to a workload generator.
type Core struct {
	cfg config.Core
	gen isa.Generator
	st  *stats.Sim

	hier *mem.Hierarchy
	bp   predictor.Direction
	hm   *predictor.HitMiss
	ss   *predictor.StoreSets

	pf   *rfp.Prefetcher
	rfpQ *rfp.Queue
	crit *predictor.Criticality
	clp  *predictor.CLP

	eves *vp.EVES
	dlvp *vp.DLVP
	ssbf *vp.SSBF

	cycle uint64

	// ROB ring buffer; rsCount/lqCount/sqCount track scheduler and LSQ
	// occupancy; intPRFUsed/fpPRFUsed track rename register pressure.
	rob      []entry
	robHead  int
	robCount int
	rsCount  int
	lqCount  int
	sqCount  int
	// Physical register file. In the default (rename-time allocation)
	// mode a real free list is maintained with the standard next-writer
	// freeing discipline, and aratPReg tracks the current architectural-
	// to-physical mapping. The LateRegAlloc variation (§3.3 virtual
	// pointers) instead counts produced-but-unretired values, which is
	// the natural storage model for a virtual-register scheme.
	freeInt    []int32
	freeFP     []int32
	aratPReg   [isa.NumArchRegs]int32
	intPRFUsed int
	fpPRFUsed  int

	// renameTable maps an architectural register to its youngest in-flight
	// producer.
	renameTable [isa.NumArchRegs]producer

	// Frontend.
	fetchQ            []fetched
	fetchHead         int
	pending           []isa.MicroOp // replay buffer (flush) ahead of the generator
	pendingHead       int
	fetchBlockedUntil uint64
	fetchHalted       bool // an unresolved mispredicted branch blocks fetch
	pathHash          uint64
	fetchPath         uint64 // path history as seen at fetch (for DLVP)
	nextSeq           uint64
	genDone           bool
	ffConsumed        uint64 // uops consumed functionally by FastForward
	// fetchOp is fetch's generator scratch uop. A stack-local would escape
	// through the Generator interface call and heap-allocate once per
	// fetched uop; hoisting it here keeps the frontend zero-alloc.
	fetchOp isa.MicroOp

	// squashBuf and mergeBuf are flushFrom/requeueFetchQ scratch storage,
	// reused across branch-mispredict and value-misprediction flushes so
	// recovery never allocates in steady state (see the hot-loop
	// allocation budget in docs/architecture.md).
	squashBuf []isa.MicroOp
	mergeBuf  []isa.MicroOp

	// Per-cycle port budgets (reset each cycle).
	aluUsed, fpUsed, loadUsed, storeUsed, branchUsed int

	committed uint64
	// Statistics window markers (see ResetStats).
	cycleBase  uint64
	commitBase uint64

	// pipe, when set, streams pipeline events (see AttachPipeTrace).
	pipe *pipeTrace
	// profile, when set, accumulates per-PC load statistics.
	profile *PCProfile

	// onCommit, when set, observes every retired uop in program order.
	// Tests use it to assert that speculation features are timing-only:
	// the committed stream must be identical with and without them.
	onCommit func(*isa.MicroOp)
	// onRetire is a white-box test hook observing the full entry state at
	// retirement (forwarding sources, hit levels, RFP outcome).
	onRetire func(*entry)

	// chk, when set, runs the differential/invariant checking layer
	// (checker.go); created by config.Checks or EnableCommitDigest.
	chk *checker
	// faultRFPNoDisambiguation is the InjectFault toggle (fault.go).
	faultRFPNoDisambiguation bool
}

// producer names the in-flight uop that will write an architectural
// register.
type producer struct {
	seq   uint64
	idx   int
	valid bool
}

// New builds a core for the given configuration and workload. The config
// must Validate; New panics otherwise (a bad config is a programming
// error, not a runtime condition).
func New(cfg config.Core, gen isa.Generator) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	st := &stats.Sim{}
	c := &Core{
		cfg:  cfg,
		gen:  gen,
		st:   st,
		hier: mem.NewHierarchy(cfg.Mem, cfg.Oracle, st),
		hm:   predictor.NewHitMiss(12),
		ss:   predictor.NewStoreSets(10),
		rob:  make([]entry, cfg.ROBSize),
	}
	if cfg.BranchPredictor == "gshare" {
		c.bp = predictor.NewBranch(16, 12)
	} else {
		c.bp = predictor.NewTAGE()
	}
	if cfg.RFP.Enabled {
		c.pf = rfp.NewPrefetcher(cfg.RFP, 0x5EED0F9F)
		c.rfpQ = rfp.NewQueue(cfg.RFP.QueueSize)
		// The criticality estimator serves two masters: the CriticalOnly
		// injection filter and the CLP contested-port gate. Either knob
		// brings it up; it trains from commit stalls whenever present.
		if cfg.RFP.CriticalOnly || cfg.RFP.UseCLP {
			c.crit = predictor.NewCriticality(12)
		}
		if cfg.RFP.UseCLP {
			c.clp = predictor.NewCLP(12, stats.NumLevels)
		}
	}
	switch cfg.VP.Mode {
	case config.VPEVES:
		c.eves = vp.NewEVES(cfg.VP, 11)
	case config.VPDLVP:
		c.dlvp = vp.NewDLVP(cfg.VP, 12)
	case config.VPComposite:
		c.eves = vp.NewEVES(cfg.VP, 11)
		c.dlvp = vp.NewDLVP(cfg.VP, 12)
	case config.VPEPP:
		c.dlvp = vp.NewDLVP(cfg.VP, 12)
		// 16 Kbit filter cleared every 2K stores: ~6% false-positive
		// rate, matching the "small fraction of loads re-executed at
		// retirement" the paper attributes to EPP.
		c.ssbf = vp.NewSSBF(16384, 2048)
	}
	// Initialize the register file: architectural state occupies the
	// first registers of each class; the rest populate the free lists.
	for i := 0; i < isa.NumIntRegs; i++ {
		c.aratPReg[i] = int32(i)
	}
	for i := 0; i < isa.NumFPRegs; i++ {
		c.aratPReg[int(isa.FirstFPReg)+i] = int32(i)
	}
	for p := isa.NumIntRegs; p < cfg.IntPRF; p++ {
		c.freeInt = append(c.freeInt, int32(p))
	}
	for p := isa.NumFPRegs; p < cfg.FPPRF; p++ {
		c.freeFP = append(c.freeFP, int32(p))
	}
	if cfg.Checks.Enabled {
		c.chk = newChecker(true)
	}
	return c
}

// Stats exposes the statistics block (live during a run).
func (c *Core) Stats() *stats.Sim { return c.st }

// OnCommit installs an observer invoked for every retired uop in program
// order (nil to remove).
func (c *Core) OnCommit(fn func(*isa.MicroOp)) { c.onCommit = fn }

// Cycle returns the current simulated cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

// RetiredStreamPos returns the workload-stream index of the next uop to
// retire: fast-forwarded uops plus cycle-simulated retirements
// (retirement is program order, so the two segments are contiguous). The
// differential harness (internal/check) uses it to align a replayed
// interval's commit digest with the matching window of a full run.
func (c *Core) RetiredStreamPos() uint64 { return c.ffConsumed + c.committed }

// ctxCheckInterval is how many cycles pass between context polls inside
// Run. Powers of two keep the check a mask in the hot loop.
const ctxCheckInterval = 1024

// Run simulates until n uops commit (or the workload ends) and returns the
// statistics. The context cancels an in-flight simulation: Run polls it
// every ctxCheckInterval cycles and returns ctx.Err() (wrapped) with the
// statistics window closed at the interruption point. It also returns an
// error if the pipeline wedges (a model bug) — detected as a long streak of
// cycles without any commit.
func (c *Core) Run(ctx context.Context, n uint64) (*stats.Sim, error) {
	target := c.committed + n
	lastCommitted := c.committed
	idle := 0
	for c.committed < target {
		if c.cycle%ctxCheckInterval == 0 {
			select {
			case <-ctx.Done():
				c.st.Cycles = c.cycle - c.cycleBase
				c.st.Instructions = c.committed - c.commitBase
				return c.st, fmt.Errorf("core: run cancelled at cycle %d: %w", c.cycle, ctx.Err())
			default:
			}
		}
		c.step()
		if c.committed == lastCommitted {
			idle++
			if idle > 100000 {
				return c.st, fmt.Errorf("core: pipeline wedged at cycle %d (%d/%d committed)",
					c.cycle, c.committed, target)
			}
		} else {
			idle = 0
			lastCommitted = c.committed
		}
		if c.genDone && c.robCount == 0 && c.fetchQLen() == 0 {
			break
		}
	}
	c.st.Cycles = c.cycle - c.cycleBase
	c.st.Instructions = c.committed - c.commitBase
	return c.st, nil
}

// ResetStats zeroes the statistics counters while keeping all
// microarchitectural state (caches, predictors, in-flight window). Call it
// after a warmup run so the measurement window starts from steady state,
// the standard methodology for trace-driven studies.
func (c *Core) ResetStats() {
	*c.st = stats.Sim{}
	c.cycleBase = c.cycle
	c.commitBase = c.committed
	if c.profile != nil {
		c.EnableProfile() // fresh per-PC tables and distributions
	}
}

// Warmup runs n uops and then resets statistics, returning any error. The
// context cancels the warmup the same way it cancels Run.
func (c *Core) Warmup(ctx context.Context, n uint64) error {
	_, err := c.Run(ctx, n)
	c.ResetStats()
	return err
}

// footprinter is implemented by workload generators that can enumerate the
// address regions they touch (see trace.Region).
type footprinter interface {
	FootprintRegions() [][2]uint64
}

// WarmCaches pre-touches the workload's declared memory footprint into the
// hierarchy so the measurement window starts from the steady-state cache
// contents a long-running program would have. Regions larger than a cache
// level naturally only keep their tail resident, just as a real scan would
// leave them.
func (c *Core) WarmCaches() {
	g, ok := c.gen.(footprinter)
	if !ok {
		return
	}
	for _, r := range g.FootprintRegions() {
		base, size := r[0], r[1]
		for a := base; a < base+size; a += isa.CacheLineSize {
			c.hier.Warm(a)
		}
	}
}

// step advances one cycle. Stage order within a cycle runs the back of the
// pipeline first so same-cycle structural hand-offs behave like hardware:
// commit frees slots, issue consumes results that completed earlier,
// demand loads get L1 ports before RFP requests, which get them before
// DLVP probes.
func (c *Core) step() {
	c.aluUsed, c.fpUsed, c.loadUsed, c.storeUsed, c.branchUsed = 0, 0, 0, 0, 0
	c.commit()
	c.issue()
	c.rename()
	// RFP arbitration runs after rename so a packet injected this cycle
	// can bid for a free port immediately — §3.2: "a prefetch request is
	// triggered immediately after register renaming". Demand loads issued
	// earlier this cycle have already claimed their ports, preserving
	// RFP's lowest priority.
	c.rfpArbitrate()
	c.fetch()
	if c.chk != nil && c.chk.invariants {
		c.chk.cycleChecks(c)
	}
	c.cycle++
}

// robIndex converts an offset from robHead into a ring index.
func (c *Core) robIndex(offset int) int { return (c.robHead + offset) % len(c.rob) }

func (c *Core) fetchQLen() int { return len(c.fetchQ) - c.fetchHead }

// intPRFFree and fpPRFFree report available rename registers. In free-list
// mode this is the free-list depth; in the late-allocation variation it is
// capacity minus produced values.
func (c *Core) intPRFFree() int {
	if c.cfg.LateRegAlloc {
		return c.cfg.IntPRF - isa.NumIntRegs - c.intPRFUsed
	}
	return len(c.freeInt)
}

func (c *Core) fpPRFFree() int {
	if c.cfg.LateRegAlloc {
		return c.cfg.FPPRF - isa.NumFPRegs - c.fpPRFUsed
	}
	return len(c.freeFP)
}

// chargePRF accounts a destination register allocation (+1) or release
// (-1) in the late-allocation counting model.
func (c *Core) chargePRF(dst isa.RegID, delta int) {
	if !dst.Valid() {
		return
	}
	if dst.IsFP() {
		c.fpPRFUsed += delta
	} else {
		c.intPRFUsed += delta
	}
}

// allocPReg pops a physical register for dst from the matching free list;
// canDispatch guarantees availability.
func (c *Core) allocPReg(dst isa.RegID) int32 {
	if dst.IsFP() {
		p := c.freeFP[len(c.freeFP)-1]
		c.freeFP = c.freeFP[:len(c.freeFP)-1]
		return p
	}
	p := c.freeInt[len(c.freeInt)-1]
	c.freeInt = c.freeInt[:len(c.freeInt)-1]
	return p
}

// freePReg returns a physical register to its free list.
func (c *Core) freePReg(dst isa.RegID, p int32) {
	if dst.IsFP() {
		c.freeFP = append(c.freeFP, p)
	} else {
		c.freeInt = append(c.freeInt, p)
	}
}
