package core

import "fmt"

// FaultRFPNoDisambiguation disables every protection that keeps a
// register file prefetch coherent with older in-flight stores: the
// §3.2.1 older-store scan at arbitration always reports "clear", stores
// stop marking executed prefetches stale (issueStore's rfpMDStale pass),
// and the memory-ordering violation scan exempts loads that consumed
// prefetched data. A load can then retire with pre-store data — exactly
// the corruption the checking harness must catch, via both the
// StaleDataDelivered runtime invariant and a differential-digest
// divergence (docs/checking.md).
const FaultRFPNoDisambiguation = "rfp-no-disambiguation"

// InjectFault enables a named, deliberately wrong model behaviour. It
// exists purely so the checking harness can prove its oracles detect the
// class of bug they claim to; nothing outside tests should call it.
func (c *Core) InjectFault(name string) error {
	switch name {
	case FaultRFPNoDisambiguation:
		c.faultRFPNoDisambiguation = true
		return nil
	}
	return fmt.Errorf("core: unknown fault %q", name)
}
