package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/trace"
)

func TestPipeTraceEmitsEvents(t *testing.T) {
	spec, _ := trace.ByName("spec06_hmmer")
	c := New(config.Baseline().WithRFP(), spec.New())
	c.WarmCaches()
	var buf bytes.Buffer
	c.AttachPipeTrace(&buf, 100, 300)
	if _, err := c.Run(context.Background(), 5000); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dispatch", "issue", "commit", "cycle "} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q events:\n%s", want, firstLines(out, 5))
		}
	}
	if c.PipeTraceEvents() == 0 {
		t.Error("event counter zero")
	}
	// Every line must carry a cycle stamp inside the window.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "cycle ") {
			t.Fatalf("malformed trace line %q", line)
		}
	}
}

func TestPipeTraceWindowBounds(t *testing.T) {
	spec, _ := trace.ByName("spec06_hmmer")
	c := New(config.Baseline(), spec.New())
	var buf bytes.Buffer
	c.AttachPipeTrace(&buf, 1<<40, 1<<41) // far future: nothing emitted
	if _, err := c.Run(context.Background(), 3000); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("events emitted outside window:\n%s", firstLines(buf.String(), 3))
	}
	c.AttachPipeTrace(nil, 0, 0) // detach must not panic
	if _, err := c.Run(context.Background(), 1000); err != nil {
		t.Fatal(err)
	}
}

func TestPipeTraceShowsRFPEvents(t *testing.T) {
	spec, _ := trace.ByName("spec06_hmmer")
	c := New(config.Baseline().WithRFP(), spec.New())
	c.WarmCaches()
	if err := c.Warmup(context.Background(), 10000); err != nil { // let the PT gain confidence
		t.Fatal(err)
	}
	var buf bytes.Buffer
	c.AttachPipeTrace(&buf, c.Cycle(), c.Cycle()+2000)
	if _, err := c.Run(context.Background(), 4000); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "rfp-exec") {
		t.Error("no rfp-exec events on a stream workload")
	}
	if !strings.Contains(out, "rfp-hit") {
		t.Error("no rfp-hit events on a stream workload")
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
