package predictor

// TAGE is a TAgged GEometric-history-length branch predictor (Seznec &
// Michaud, JILP 2006 — reference [66] territory for the paper's era of
// cores; Tiger-Lake-class machines ship TAGE-like predictors). It backs a
// bimodal base table with several partially tagged tables indexed by
// geometrically increasing history lengths; the longest matching history
// provides the prediction, and the "useful" bits steer replacement.
//
// The simulator uses it as the high-fidelity alternative to gshare: branch
// bubbles compete with load latency for the critical path, so predictor
// quality modulates how much RFP's latency hiding is worth (the bpquality
// experiment).
type TAGE struct {
	base []uint8 // bimodal 2-bit counters

	tables []tageTable
	// ghist is the global history (newest outcome in bit 0).
	ghist uint64
	// useAltOnNA biases between provider and alternate prediction for
	// weak (newly allocated) entries.
	useAltOnNA int8

	// lastCtx caches the lookup context between Predict and Update so the
	// update trains exactly what predicted. (The simulator resolves
	// branches in fetch order relative to their own prediction, so the
	// single-entry cache matches hardware's inflight prediction state.)
	last tageCtx

	allocTick uint64 // pseudo-random allocation tie-breaker
}

type tageTable struct {
	histLen uint
	mask    uint64
	entries []tageEntry
}

type tageEntry struct {
	tag uint16
	ctr int8  // signed 3-bit: >=0 taken
	u   uint8 // 2-bit usefulness
}

// tageCtx is copied by value into t.last on every prediction, so its
// per-table lookup state is fixed-size arrays rather than slices: Predict
// runs once per fetched branch and must not allocate.
type tageCtx struct {
	pc        uint64
	provider  int // table index, -1 = base
	altPred   bool
	provPred  bool
	provIdx   [tageTables]int
	provTag   [tageTables]uint16
	weakEntry bool
	valid     bool
}

// tage geometry.
const (
	tageTables    = 4
	tageTableBits = 10
	tageBaseBits  = 12
	tageCtrMax    = 3
	tageCtrMin    = -4
	tageUMax      = 3
)

// NewTAGE builds the predictor with four tagged tables on history lengths
// 5, 15, 44 and 64 (a geometric series, clamped to the 64-bit history
// register) over a 2^12-entry bimodal base.
func NewTAGE() *TAGE {
	t := &TAGE{base: make([]uint8, 1<<tageBaseBits)}
	for i := range t.base {
		t.base[i] = 2 // weakly taken
	}
	for _, h := range []uint{5, 15, 44, 64} {
		t.tables = append(t.tables, tageTable{
			histLen: h,
			mask:    uint64(1<<tageTableBits - 1),
			entries: make([]tageEntry, 1<<tageTableBits),
		})
	}
	return t
}

// foldHistory compresses len bits of history into width bits.
func foldHistory(h uint64, length, width uint) uint64 {
	if length > 64 {
		length = 64
	}
	h &= (1 << length) - 1
	var folded uint64
	for length > 0 {
		folded ^= h & (1<<width - 1)
		h >>= width
		if length < width {
			break
		}
		length -= width
	}
	return folded
}

func (t *TAGE) tableIndex(ti int, pc uint64) int {
	tab := &t.tables[ti]
	h := foldHistory(t.ghist, tab.histLen, tageTableBits)
	return int((pc>>2 ^ pc>>7 ^ h) & tab.mask)
}

func (t *TAGE) tableTag(ti int, pc uint64) uint16 {
	tab := &t.tables[ti]
	h := foldHistory(t.ghist, tab.histLen, 9)
	return uint16((pc>>2^h<<1^pc>>11)&0x1FF) | 0x200 // 10-bit tag, never 0
}

func (t *TAGE) basePred(pc uint64) bool {
	return t.base[(pc>>2)&(1<<tageBaseBits-1)] >= 2
}

// Predict returns the predicted direction for pc and caches the lookup
// context for the matching Update call.
func (t *TAGE) Predict(pc uint64) bool {
	ctx := tageCtx{pc: pc, provider: -1, valid: true}
	for ti := range t.tables {
		ctx.provIdx[ti] = t.tableIndex(ti, pc)
		ctx.provTag[ti] = t.tableTag(ti, pc)
	}
	ctx.altPred = t.basePred(pc)
	pred := ctx.altPred
	alt := ctx.altPred
	for ti := len(t.tables) - 1; ti >= 0; ti-- {
		e := &t.tables[ti].entries[ctx.provIdx[ti]]
		if e.tag != ctx.provTag[ti] {
			continue
		}
		if ctx.provider == -1 {
			ctx.provider = ti
			ctx.provPred = e.ctr >= 0
			ctx.weakEntry = e.ctr == 0 || e.ctr == -1
		} else {
			alt = e.ctr >= 0
			break
		}
	}
	if ctx.provider >= 0 {
		ctx.altPred = alt
		if ctx.weakEntry && t.useAltOnNA > 0 {
			pred = ctx.altPred
		} else {
			pred = ctx.provPred
		}
	}
	t.last = ctx
	return pred
}

// Update trains the predictor with the resolved direction for pc. It must
// follow the Predict call for the same branch (the simulator's in-order
// fetch guarantees this).
func (t *TAGE) Update(pc uint64, taken bool) {
	ctx := t.last
	if !ctx.valid || ctx.pc != pc {
		// Cold update (e.g. first sight): refresh the context.
		t.Predict(pc)
		ctx = t.last
	}
	t.last.valid = false
	t.allocTick++

	predicted := ctx.provPred
	if ctx.provider == -1 {
		predicted = ctx.altPred
	} else if ctx.weakEntry && t.useAltOnNA > 0 {
		predicted = ctx.altPred
	}

	// Train useAltOnNA on weak-entry disagreements.
	if ctx.provider >= 0 && ctx.weakEntry && ctx.provPred != ctx.altPred {
		if ctx.altPred == taken {
			if t.useAltOnNA < 7 {
				t.useAltOnNA++
			}
		} else if t.useAltOnNA > -8 {
			t.useAltOnNA--
		}
	}

	// Provider counter update.
	if ctx.provider >= 0 {
		e := &t.tables[ctx.provider].entries[ctx.provIdx[ctx.provider]]
		if taken {
			if e.ctr < tageCtrMax {
				e.ctr++
			}
		} else if e.ctr > tageCtrMin {
			e.ctr--
		}
		// Usefulness: provider was right where the alternate was wrong.
		if ctx.provPred != ctx.altPred {
			if ctx.provPred == taken {
				if e.u < tageUMax {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
	} else {
		i := (pc >> 2) & (1<<tageBaseBits - 1)
		if taken {
			if t.base[i] < 3 {
				t.base[i]++
			}
		} else if t.base[i] > 0 {
			t.base[i]--
		}
	}

	// Allocate a longer-history entry on a misprediction.
	if predicted != taken && ctx.provider < len(t.tables)-1 {
		start := ctx.provider + 1
		allocated := false
		for ti := start; ti < len(t.tables); ti++ {
			e := &t.tables[ti].entries[ctx.provIdx[ti]]
			if e.u == 0 {
				e.tag = ctx.provTag[ti]
				e.ctr = ctrInit(taken)
				e.u = 0
				allocated = true
				break
			}
		}
		if !allocated {
			// Decay usefulness so future allocations can land.
			for ti := start; ti < len(t.tables); ti++ {
				e := &t.tables[ti].entries[ctx.provIdx[ti]]
				if e.u > 0 {
					e.u--
				}
			}
		}
	}

	t.ghist = t.ghist<<1 | boolBit(taken)
}

func ctrInit(taken bool) int8 {
	if taken {
		return 0
	}
	return -1
}
