package predictor

// StoreSets is the memory-dependence predictor of Chrysos & Emer ("Memory
// Dependence Prediction using Store Sets", ISCA 1998). Loads and stores that
// were ever caught violating memory ordering are placed in a common store
// set; a load (or an RFP prefetch standing in for it, §3.2.1 of the paper)
// that finds an unresolved older store of its own set in the store queue
// waits for that store instead of speculating past it.
type StoreSets struct {
	mask   uint64
	ssit   []int32 // store-set ID table, indexed by hashed PC; -1 = none
	nextID int32
	maxID  int32
}

// InvalidSet is returned for PCs with no assigned store set.
const InvalidSet int32 = -1

// NewStoreSets builds a predictor with 2^tableBits SSIT entries.
func NewStoreSets(tableBits uint) *StoreSets {
	size := 1 << tableBits
	s := &StoreSets{
		mask:  uint64(size - 1),
		ssit:  make([]int32, size),
		maxID: int32(size),
	}
	for i := range s.ssit {
		s.ssit[i] = InvalidSet
	}
	return s
}

func (s *StoreSets) index(pc uint64) uint64 { return (pc ^ pc>>9) & s.mask }

// IDFor returns the store-set ID assigned to pc, or InvalidSet.
func (s *StoreSets) IDFor(pc uint64) int32 { return s.ssit[s.index(pc)] }

// RecordViolation merges the load and the store into one store set after an
// ordering violation, following the store-set merge rule: if neither has a
// set, allocate a fresh one; if one has a set, the other joins it; if both
// have sets, the store joins the load's set.
func (s *StoreSets) RecordViolation(loadPC, storePC uint64) {
	li, si := s.index(loadPC), s.index(storePC)
	lset, sset := s.ssit[li], s.ssit[si]
	switch {
	case lset == InvalidSet && sset == InvalidSet:
		id := s.nextID
		s.nextID = (s.nextID + 1) % s.maxID
		s.ssit[li], s.ssit[si] = id, id
	case lset == InvalidSet:
		s.ssit[li] = sset
	case sset == InvalidSet:
		s.ssit[si] = lset
	default:
		s.ssit[si] = lset
	}
}

// Clear removes the store-set assignment for pc. Periodic clearing (or
// clearing on excessive false dependencies) keeps sets from growing stale;
// the core clears a load's set when it waited on a store that turned out to
// write a different address.
func (s *StoreSets) Clear(pc uint64) { s.ssit[s.index(pc)] = InvalidSet }
