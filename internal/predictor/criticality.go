package predictor

// Criticality is a per-PC load criticality estimator in the spirit of
// Focused Value Prediction and CATCH (both cited by the paper, which
// leaves "targeted prefetching for specific load instructions" as future
// work — implemented here as an RFP extension). The heuristic is the
// classic commit-stall signal: a load whose latency made it block the ROB
// head was, by definition, on the critical path; one that retired without
// ever heading the stall is not. Saturating counters smooth the signal.
type Criticality struct {
	mask     uint64
	counters []uint8
	benigns  uint64 // fractional-decay tick counter
}

// critMax saturates the counter; IsCritical triggers at >= critMax/2.
const critMax = 15

// NewCriticality builds an estimator with 2^tableBits counters.
func NewCriticality(tableBits uint) *Criticality {
	size := 1 << tableBits
	return &Criticality{
		mask:     uint64(size - 1),
		counters: make([]uint8, size),
	}
}

func (c *Criticality) index(pc uint64) uint64 { return (pc ^ pc>>10) & c.mask }

// MarkCritical records that the load at pc stalled the commit head.
// Stalls move the counter fast (+3) because missing a critical load costs
// full exposed latency.
func (c *Criticality) MarkCritical(pc uint64) {
	i := c.index(pc)
	v := int(c.counters[i]) + 3
	if v > critMax {
		v = critMax
	}
	c.counters[i] = uint8(v)
}

// MarkBenign records a retirement that never stalled the head. Decay is
// fractional (every 8th benign retirement decrements) because even a
// critical load stalls the head on only a fraction of its dynamic
// instances — the window usually absorbs some of its latency — so a 1:1
// decay would drown the stall signal entirely.
func (c *Criticality) MarkBenign(pc uint64) {
	c.benigns++
	if c.benigns%8 != 0 {
		return
	}
	if i := c.index(pc); c.counters[i] > 0 {
		c.counters[i]--
	}
}

// IsCritical reports whether the load at pc is currently predicted
// performance-critical.
func (c *Criticality) IsCritical(pc uint64) bool {
	return c.counters[c.index(pc)] >= critMax/2
}
