package predictor

import (
	"math/rand"
	"testing"
)

// refCLP is an unbounded reference model of the cache-level predictor:
// per-PC level counters in a map, no table, no tags, no collisions. The
// real table must behave identically whenever its entries are not
// aliased, which the property test arranges by construction.
type refCLP struct {
	levels int
	conf   map[uint64][]uint8
}

func newRefCLP(levels int) *refCLP {
	return &refCLP{levels: levels, conf: map[uint64][]uint8{}}
}

func (r *refCLP) Train(pc uint64, level int) {
	if level < 0 || level >= r.levels {
		return
	}
	row := r.conf[pc]
	if row == nil {
		row = make([]uint8, r.levels)
		r.conf[pc] = row
	}
	for l := range row {
		if l == level {
			if row[l] <= clpMax-2 {
				row[l] += 2
			} else {
				row[l] = clpMax
			}
		} else if row[l] > 0 {
			row[l]--
		}
	}
}

func (r *refCLP) Predict(pc uint64) (int, bool) {
	row := r.conf[pc]
	if row == nil {
		return 0, false
	}
	best, bestLevel := uint8(0), 0
	for l, c := range row {
		if c > best {
			best, bestLevel = c, l
		}
	}
	return bestLevel, best >= clpThreshold
}

// TestCLPMatchesReferenceModel drives the tagged table and the unbounded
// map reference with an identical random train/predict stream (mirroring
// the SPP property test in internal/mem). The PCs are chosen to occupy
// distinct table entries, so any disagreement is a real logic bug in the
// table — indexing, tag handling, or the counter update rule.
func TestCLPMatchesReferenceModel(t *testing.T) {
	const levels = 5
	rng := rand.New(rand.NewSource(0xC19))
	table := NewCLP(14, levels)
	ref := newRefCLP(levels)

	// Draw PCs that collide on neither index nor (index, tag) pair.
	usedIdx := map[uint64]bool{}
	var pcs []uint64
	for len(pcs) < 48 {
		pc := rng.Uint64() &^ 0x3 // instruction-aligned, like real PCs
		if i := table.index(pc); !usedIdx[i] {
			usedIdx[i] = true
			pcs = append(pcs, pc)
		}
	}

	for step := 0; step < 20000; step++ {
		pc := pcs[rng.Intn(len(pcs))]
		if rng.Intn(4) == 0 {
			gotL, gotC := table.Predict(pc)
			wantL, wantC := ref.Predict(pc)
			if gotC != wantC || (gotC && gotL != wantL) {
				t.Fatalf("step %d pc %#x: Predict = (%d, %v), reference = (%d, %v)",
					step, pc, gotL, gotC, wantL, wantC)
			}
			continue
		}
		level := rng.Intn(levels)
		table.Train(pc, level)
		ref.Train(pc, level)
	}
}

// TestCLPTagReplacementRetrains pins the aliasing behavior the reference
// model cannot express: when a second PC maps to the same entry, its first
// Train must evict the old tag and restart the counters, so the old PC's
// confidence never leaks into the new one's predictions.
func TestCLPTagReplacementRetrains(t *testing.T) {
	const levels = 5
	p := NewCLP(4, levels) // tiny table to force sharing
	var a, b uint64 = 0x1000, 0
	for cand := uint64(0x2000); ; cand += 0x10 {
		if p.index(cand) == p.index(a) && p.clpTag(cand) != p.clpTag(a) {
			b = cand
			break
		}
	}
	for i := 0; i < 10; i++ {
		p.Train(a, 3)
	}
	if l, ok := p.Predict(a); !ok || l != 3 {
		t.Fatalf("after training, Predict(a) = (%d, %v), want (3, true)", l, ok)
	}
	// b shares the entry but not the tag: no confidence inheritance.
	if _, ok := p.Predict(b); ok {
		t.Fatal("Predict(b) confident before b was ever trained")
	}
	p.Train(b, 1)
	if _, ok := p.Predict(b); ok {
		t.Fatal("Predict(b) confident after a single observation — counters were not reset on tag replacement")
	}
	// And a's history is gone with its tag.
	if _, ok := p.Predict(a); ok {
		t.Fatal("Predict(a) still confident after its entry was re-tagged for b")
	}
}

// TestCLPOutOfRangeLevelIgnored guards the Train precondition: a level
// outside [0, levels) must be dropped, not corrupt adjacent rows.
func TestCLPOutOfRangeLevelIgnored(t *testing.T) {
	p := NewCLP(4, 5)
	p.Train(0x40, -1)
	p.Train(0x40, 5)
	if _, ok := p.Predict(0x40); ok {
		t.Fatal("out-of-range training produced a confident prediction")
	}
}
