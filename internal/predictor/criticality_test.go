package predictor

import "testing"

func TestCriticalityColdIsBenign(t *testing.T) {
	c := NewCriticality(10)
	if c.IsCritical(0x100) {
		t.Error("cold estimator must not flag loads critical")
	}
}

func TestCriticalityLearnsStallingLoad(t *testing.T) {
	c := NewCriticality(10)
	pc := uint64(0x200)
	for i := 0; i < 3; i++ {
		c.MarkCritical(pc)
	}
	if !c.IsCritical(pc) {
		t.Error("repeatedly stalling load not flagged")
	}
}

func TestCriticalitySurvivesDilutedStalls(t *testing.T) {
	// A load that stalls the head on 10% of its retirements must stay
	// critical: that is exactly the paper's "some prefetches matter more"
	// population.
	c := NewCriticality(10)
	pc := uint64(0x300)
	for i := 0; i < 200; i++ {
		if i%10 == 0 {
			c.MarkCritical(pc)
		} else {
			c.MarkBenign(pc)
		}
	}
	if !c.IsCritical(pc) {
		t.Error("load stalling on a tenth of retirements decayed out")
	}
}

func TestCriticalityDecaysNeverStalling(t *testing.T) {
	c := NewCriticality(10)
	pc := uint64(0x400)
	c.MarkCritical(pc)
	c.MarkCritical(pc)
	c.MarkCritical(pc)
	for i := 0; i < 200; i++ {
		c.MarkBenign(pc)
	}
	if c.IsCritical(pc) {
		t.Error("load that stopped stalling still flagged")
	}
}

func TestCriticalitySaturates(t *testing.T) {
	c := NewCriticality(8)
	pc := uint64(0x88)
	for i := 0; i < 100; i++ {
		c.MarkCritical(pc)
	}
	// Must still be critical and not have wrapped.
	if !c.IsCritical(pc) {
		t.Error("counter wrapped")
	}
}
