package predictor

// CLP is a cache-level predictor in the spirit of Jalili & Erez ("Reducing
// Load Latency with Cache Level Prediction"): a PC-indexed tagged table
// that predicts which memory hierarchy level will serve a load, trained at
// commit from the level that actually served it. RFP uses the prediction
// to shape its arming schedule — predicted near hits (L1/L2) arm the
// RFP-inflight bit earlier, predicted DRAM loads skip prefetching
// entirely, since a prefetch launched at rename cannot beat a demand load
// through a 200-cycle DRAM access anyway.
//
// Each entry carries one saturating confidence counter per hierarchy
// level. Training bumps the observed level's counter and decays the
// others, so a load that wanders between levels never reaches the
// confidence threshold and CLP abstains — a wrong level prediction is
// worse than none, because it either skips a useful prefetch or arms one
// on a latency estimate that will not hold.
//
// Storage is fixed at construction (a flat counter array, no maps), so
// predictions and training are allocation-free in the cycle loop.
type CLP struct {
	mask   uint64
	levels int
	tags   []uint16
	conf   []uint8 // len(tags) * levels, row-major per entry
}

// clpMax saturates the per-level confidence counters; clpThreshold is the
// minimum counter value at which a prediction is offered. A +2 bump / -1
// decay with a threshold of 8 needs a run of ~4 same-level observations
// to open predictions and a couple of contrary ones to close them.
const (
	clpMax       = 15
	clpThreshold = 8
)

// NewCLP builds a direct-mapped cache-level predictor with 2^tableBits
// entries over the given number of hierarchy levels (stats.NumLevels for
// the simulator's five-level hierarchy).
func NewCLP(tableBits uint, levels int) *CLP {
	size := 1 << tableBits
	return &CLP{
		mask:   uint64(size - 1),
		levels: levels,
		tags:   make([]uint16, size),
		conf:   make([]uint8, size*levels),
	}
}

func (p *CLP) index(pc uint64) uint64 { return (pc ^ pc>>12) & p.mask }

// clpTag folds the PC bits above the index into the entry tag. Tag 0 is
// reserved for "never trained", so a real PC folding to 0 is nudged to 1;
// the resulting alias is indistinguishable from any other tag collision
// and handled the same way (the entry retrains).
func (p *CLP) clpTag(pc uint64) uint16 {
	t := uint16(pc>>4) ^ uint16(pc>>20)
	if t == 0 {
		t = 1
	}
	return t
}

// Predict returns the hierarchy level expected to serve the load at pc.
// confident is false — and the level meaningless — when the entry is
// untrained, tagged for a different PC, or no level counter has reached
// the confidence threshold.
func (p *CLP) Predict(pc uint64) (level int, confident bool) {
	i := p.index(pc)
	if p.tags[i] != p.clpTag(pc) {
		return 0, false
	}
	row := p.conf[int(i)*p.levels : (int(i)+1)*p.levels]
	best, bestLevel := uint8(0), 0
	for l, c := range row {
		if c > best {
			best, bestLevel = c, l
		}
	}
	return bestLevel, best >= clpThreshold
}

// Train records that the load at pc was actually served by level. Call it
// at load commit only: the serving level is a timing fact, and training it
// anywhere else (e.g. at issue, where a later squash may discard the load)
// would let wrong-path or replayed instances pollute the table.
func (p *CLP) Train(pc uint64, level int) {
	if level < 0 || level >= p.levels {
		return
	}
	i := p.index(pc)
	row := p.conf[int(i)*p.levels : (int(i)+1)*p.levels]
	if tag := p.clpTag(pc); p.tags[i] != tag {
		// Tag replacement: the previous occupant's history is useless for
		// this PC, so the whole row restarts from zero.
		p.tags[i] = tag
		for l := range row {
			row[l] = 0
		}
	}
	for l := range row {
		if l == level {
			if row[l] <= clpMax-2 {
				row[l] += 2
			} else {
				row[l] = clpMax
			}
		} else if row[l] > 0 {
			row[l]--
		}
	}
}
