package predictor

import (
	"testing"

	"rfpsim/internal/prng"
)

func TestBranchLearnsAlwaysTaken(t *testing.T) {
	b := NewBranch(14, 12)
	pc := uint64(0x400)
	for i := 0; i < 8; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("always-taken branch predicted not-taken")
	}
}

func TestBranchLearnsAlwaysNotTaken(t *testing.T) {
	b := NewBranch(14, 12)
	pc := uint64(0x404)
	for i := 0; i < 8; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("never-taken branch predicted taken")
	}
}

func TestBranchLearnsAlternatingWithHistory(t *testing.T) {
	// gshare with global history should learn a strict T/NT alternation
	// once warmed, because the history disambiguates the two phases.
	b := NewBranch(16, 8)
	pc := uint64(0x4000)
	taken := false
	for i := 0; i < 4096; i++ {
		b.Update(pc, taken)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 512; i++ {
		if b.Predict(pc) == taken {
			correct++
		}
		b.Update(pc, taken)
		taken = !taken
	}
	if acc := float64(correct) / 512; acc < 0.95 {
		t.Errorf("alternating accuracy = %v, want >= 0.95", acc)
	}
}

func TestBranchRandomIsHard(t *testing.T) {
	b := NewBranch(14, 12)
	r := prng.New(5)
	pc := uint64(0x888)
	correct := 0
	const n = 20000
	for i := 0; i < n; i++ {
		taken := r.Bool(0.5)
		if b.Predict(pc) == taken {
			correct++
		}
		b.Update(pc, taken)
	}
	acc := float64(correct) / n
	if acc > 0.6 {
		t.Errorf("random branch accuracy %v suspiciously high", acc)
	}
}

func TestBranchTableBitsClamping(t *testing.T) {
	// Degenerate parameters must still produce a working predictor.
	for _, tb := range []uint{0, 3, 30} {
		b := NewBranch(tb, 40)
		b.Update(0x10, true)
		_ = b.Predict(0x10)
	}
}

func TestHitMissDefaultsToHit(t *testing.T) {
	h := NewHitMiss(12)
	if !h.Predict(0x1234) {
		t.Error("cold hit-miss predictor must predict hit")
	}
}

func TestHitMissLearnsMissingLoad(t *testing.T) {
	h := NewHitMiss(12)
	pc := uint64(0x500)
	// Misses penalize strongly: a few misses flip the prediction.
	for i := 0; i < 4; i++ {
		h.Update(pc, false)
	}
	if h.Predict(pc) {
		t.Error("repeatedly missing load still predicted hit")
	}
	// Recovery is slow: one hit must not flip it back.
	h.Update(pc, true)
	if h.Predict(pc) {
		t.Error("one hit flipped prediction back too eagerly")
	}
	for i := 0; i < 16; i++ {
		h.Update(pc, true)
	}
	if !h.Predict(pc) {
		t.Error("sustained hits should restore hit prediction")
	}
}

func TestHitMissSaturation(t *testing.T) {
	h := NewHitMiss(8)
	pc := uint64(0x77)
	for i := 0; i < 100; i++ {
		h.Update(pc, false)
	}
	for i := 0; i < 100; i++ {
		h.Update(pc, true)
	}
	if !h.Predict(pc) {
		t.Error("counter failed to saturate upward")
	}
}

func TestStoreSetsColdHasNoSet(t *testing.T) {
	s := NewStoreSets(10)
	if s.IDFor(0x123) != InvalidSet {
		t.Error("cold SSIT must have no set")
	}
}

func TestStoreSetsViolationMergesLoadAndStore(t *testing.T) {
	s := NewStoreSets(10)
	loadPC, storePC := uint64(0x100), uint64(0x200)
	s.RecordViolation(loadPC, storePC)
	l, st := s.IDFor(loadPC), s.IDFor(storePC)
	if l == InvalidSet || l != st {
		t.Errorf("violation did not merge: load=%d store=%d", l, st)
	}
}

func TestStoreSetsSecondStoreJoinsExistingSet(t *testing.T) {
	s := NewStoreSets(10)
	loadPC, s1, s2 := uint64(0x100), uint64(0x200), uint64(0x300)
	s.RecordViolation(loadPC, s1)
	s.RecordViolation(loadPC, s2)
	if s.IDFor(s2) != s.IDFor(loadPC) {
		t.Error("second store did not join load's set")
	}
	if s.IDFor(s1) != s.IDFor(loadPC) {
		t.Error("first store lost its set")
	}
}

func TestStoreSetsBothHaveSetsStoreJoinsLoad(t *testing.T) {
	s := NewStoreSets(10)
	s.RecordViolation(0x100, 0x200) // set A
	s.RecordViolation(0x110, 0x210) // set B
	// Now load 0x100 (set A) violates with store 0x210 (set B): the store
	// must move to the load's set.
	s.RecordViolation(0x100, 0x210)
	if s.IDFor(0x210) != s.IDFor(0x100) {
		t.Error("store did not join load's set on merge")
	}
}

func TestStoreSetsDistinctPairsGetDistinctSets(t *testing.T) {
	s := NewStoreSets(10)
	s.RecordViolation(0x100, 0x200)
	s.RecordViolation(0x101, 0x201)
	if s.IDFor(0x100) == s.IDFor(0x101) {
		t.Error("unrelated violations share a set")
	}
}

func TestStoreSetsClear(t *testing.T) {
	s := NewStoreSets(10)
	s.RecordViolation(0x100, 0x200)
	s.Clear(0x100)
	if s.IDFor(0x100) != InvalidSet {
		t.Error("Clear did not remove the set")
	}
	if s.IDFor(0x200) == InvalidSet {
		t.Error("Clear removed the store's set too")
	}
}
