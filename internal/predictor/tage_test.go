package predictor

import (
	"testing"

	"rfpsim/internal/prng"
)

// trainAndScore runs a direction sequence through p, returning accuracy
// over the second half (after warmup).
func trainAndScore(p interface {
	Predict(uint64) bool
	Update(uint64, bool)
}, pc uint64, seq []bool) float64 {
	correct, scored := 0, 0
	for i, taken := range seq {
		pred := p.Predict(pc)
		if i >= len(seq)/2 {
			scored++
			if pred == taken {
				correct++
			}
		}
		p.Update(pc, taken)
	}
	return float64(correct) / float64(scored)
}

func TestTAGELearnsBiasedBranch(t *testing.T) {
	p := NewTAGE()
	seq := make([]bool, 2000)
	for i := range seq {
		seq[i] = true
	}
	if acc := trainAndScore(p, 0x100, seq); acc < 0.99 {
		t.Errorf("always-taken accuracy = %v", acc)
	}
}

func TestTAGELearnsLongPeriodicPattern(t *testing.T) {
	// Period-7 patterns defeat a bimodal predictor but are trivial for
	// tagged geometric history.
	p := NewTAGE()
	pat := []bool{true, true, false, true, false, false, true}
	seq := make([]bool, 7000)
	for i := range seq {
		seq[i] = pat[i%len(pat)]
	}
	if acc := trainAndScore(p, 0x200, seq); acc < 0.95 {
		t.Errorf("period-7 accuracy = %v, want >= 0.95", acc)
	}
}

func TestTAGEBeatsGshareOnLongPatterns(t *testing.T) {
	// A period-24 pattern exceeds gshare's effective history here but
	// fits TAGE's longer tables.
	r := prng.New(77)
	pat := make([]bool, 24)
	for i := range pat {
		pat[i] = r.Bool(0.5)
	}
	seq := make([]bool, 40000)
	for i := range seq {
		seq[i] = pat[i%len(pat)]
	}
	tage := trainAndScore(NewTAGE(), 0x300, seq)
	gshare := trainAndScore(NewBranch(14, 10), 0x300, seq)
	if tage < gshare {
		t.Errorf("TAGE (%v) lost to gshare (%v) on a long pattern", tage, gshare)
	}
	if tage < 0.9 {
		t.Errorf("TAGE accuracy = %v on a learnable pattern", tage)
	}
}

func TestTAGERandomIsHard(t *testing.T) {
	p := NewTAGE()
	r := prng.New(5)
	seq := make([]bool, 20000)
	for i := range seq {
		seq[i] = r.Bool(0.5)
	}
	if acc := trainAndScore(p, 0x400, seq); acc > 0.62 {
		t.Errorf("random accuracy %v suspiciously high", acc)
	}
}

func TestTAGEMultipleBranches(t *testing.T) {
	// Two branches with opposite biases must not destructively alias.
	p := NewTAGE()
	for i := 0; i < 4000; i++ {
		pa := p.Predict(0x500)
		p.Update(0x500, true)
		pb := p.Predict(0x504)
		p.Update(0x504, false)
		if i > 3000 {
			if !pa || pb {
				t.Fatalf("iteration %d: aliased predictions %v %v", i, pa, pb)
			}
		}
	}
}

func TestTAGEColdUpdateDoesNotPanic(t *testing.T) {
	p := NewTAGE()
	// Update without a preceding Predict for that PC.
	p.Predict(0x600)
	p.Update(0x608, true) // different PC: context refresh path
	p.Update(0x610, false)
}

func TestFoldHistory(t *testing.T) {
	if foldHistory(0, 64, 10) != 0 {
		t.Error("zero history folds nonzero")
	}
	// Folding must cover all width bits.
	h := uint64(0xFFFF_FFFF_FFFF_FFFF)
	if foldHistory(h, 64, 10) == 0 {
		t.Error("all-ones history folded to zero")
	}
	if foldHistory(h, 130, 10) == foldHistory(h>>1|1<<63, 64, 10) {
		// Not a strict requirement, but the clamp path must run.
		t.Log("clamped-length folding exercised")
	}
}

func TestTAGEAllocationDecayPath(t *testing.T) {
	// Force repeated mispredictions with saturated-useful tables so the
	// usefulness-decay branch runs: many distinct-history hard branches.
	p := NewTAGE()
	r := prng.New(123)
	for i := 0; i < 50000; i++ {
		pc := uint64(0x1000 + (i%97)*4)
		p.Predict(pc)
		p.Update(pc, r.Bool(0.5))
	}
	// The predictor must remain functional afterwards.
	pc := uint64(0x8000)
	for i := 0; i < 200; i++ {
		p.Predict(pc)
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Error("TAGE unable to learn after heavy churn")
	}
}

func TestTAGEUseAltOnNATraining(t *testing.T) {
	// Weak (newly allocated) entries that disagree with the alternate
	// prediction exercise the useAltOnNA counter both directions.
	p := NewTAGE()
	r := prng.New(5)
	for i := 0; i < 20000; i++ {
		pc := uint64(0x2000 + (i%13)*4)
		p.Predict(pc)
		// Biased-but-noisy: allocations happen, weak entries abound.
		p.Update(pc, r.Bool(0.8))
	}
	// Sanity: still better than chance on the biased stream.
	correct, total := 0, 2000
	for i := 0; i < total; i++ {
		pc := uint64(0x2000 + (i%13)*4)
		pred := p.Predict(pc)
		taken := r.Bool(0.8)
		if pred == taken {
			correct++
		}
		p.Update(pc, taken)
	}
	if float64(correct)/float64(total) < 0.6 {
		t.Errorf("accuracy %.2f below the 0.8 bias floor", float64(correct)/float64(total))
	}
}
