// Package predictor implements the speculation substrates the OOO core
// relies on: a gshare conditional branch predictor, the Yoaz et al.
// load hit-miss predictor that drives speculative wakeup of load
// dependents, and a store-set memory-dependence predictor (Chrysos & Emer)
// used both by demand loads and by RFP prefetches for disambiguation
// against in-flight stores.
package predictor

import "math/bits"

// Direction is the interface both branch direction predictors (gshare and
// TAGE) implement; the core is parameterized on it.
type Direction interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains with the resolved direction.
	Update(pc uint64, taken bool)
}

// Compile-time conformance.
var (
	_ Direction = (*Branch)(nil)
	_ Direction = (*TAGE)(nil)
)

// Branch is a gshare direction predictor with 2-bit saturating counters.
// Branch targets come from the trace (the BTB is modelled as perfect, which
// is the common simplification for data-side studies like RFP).
type Branch struct {
	history     uint64
	historyMask uint64
	tableMask   uint64
	counters    []uint8
}

// NewBranch builds a gshare predictor with 2^tableBits counters and
// historyBits bits of global history. tableBits must be in [4, 24].
func NewBranch(tableBits, historyBits uint) *Branch {
	if tableBits < 4 {
		tableBits = 4
	}
	if tableBits > 24 {
		tableBits = 24
	}
	if historyBits > tableBits {
		historyBits = tableBits
	}
	size := 1 << tableBits
	b := &Branch{
		historyMask: 1<<historyBits - 1,
		tableMask:   uint64(size - 1),
		counters:    make([]uint8, size),
	}
	// Initialize to weakly taken: loop branches dominate and are taken.
	for i := range b.counters {
		b.counters[i] = 2
	}
	return b
}

func (b *Branch) index(pc uint64) uint64 {
	h := pc ^ (pc >> 13) ^ (b.history & b.historyMask)
	return (h ^ bits.RotateLeft64(h, 17)) & b.tableMask
}

// Predict returns the predicted direction for the branch at pc.
func (b *Branch) Predict(pc uint64) bool {
	return b.counters[b.index(pc)] >= 2
}

// Update trains the predictor with the resolved direction and shifts it
// into the global history.
func (b *Branch) Update(pc uint64, taken bool) {
	i := b.index(pc)
	c := b.counters[i]
	if taken {
		if c < 3 {
			b.counters[i] = c + 1
		}
	} else if c > 0 {
		b.counters[i] = c - 1
	}
	b.history = b.history<<1 | boolBit(taken)
}

func boolBit(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// HitMiss is the load hit-miss predictor of Yoaz et al.: it predicts
// whether a load will hit the L1 so the scheduler can speculatively wake
// the load's dependents at L1-hit latency. Per-PC 4-bit saturating counters
// strongly biased towards "hit" (92.8% of loads hit the L1).
type HitMiss struct {
	mask     uint64
	counters []uint8
}

// hitMissMax saturates the counter; predictions are "hit" above the
// midpoint.
const hitMissMax = 15

// NewHitMiss builds a hit-miss predictor with 2^tableBits counters.
func NewHitMiss(tableBits uint) *HitMiss {
	size := 1 << tableBits
	h := &HitMiss{
		mask:     uint64(size - 1),
		counters: make([]uint8, size),
	}
	for i := range h.counters {
		h.counters[i] = hitMissMax // strongly predict hit initially
	}
	return h
}

func (h *HitMiss) index(pc uint64) uint64 { return (pc ^ pc>>11) & h.mask }

// Predict reports whether the load at pc is predicted to hit the L1.
func (h *HitMiss) Predict(pc uint64) bool {
	return h.counters[h.index(pc)] > hitMissMax/2
}

// Update trains with the observed outcome. Hits recover slowly (+1) while
// misses penalize strongly (-4), mirroring the asymmetric cost of wrongly
// waking dependents of a missing load.
func (h *HitMiss) Update(pc uint64, hit bool) {
	i := h.index(pc)
	c := int(h.counters[i])
	if hit {
		c++
	} else {
		c -= 4
	}
	if c > hitMissMax {
		c = hitMissMax
	}
	if c < 0 {
		c = 0
	}
	h.counters[i] = uint8(c)
}
