package sample

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one representative interval of a replay plan.
type Point struct {
	// Index is the interval's position within the measured window; the
	// interval covers uops [Index*IntervalUops, (Index+1)*IntervalUops)
	// of the window.
	Index int
	// Weight is the number of intervals this representative stands for
	// (its cluster's size). Weights sum to the profiled interval count.
	Weight uint64
}

// Plan is a complete replay plan: which intervals to cycle-simulate and
// how to weight their statistics into a full-window estimate.
type Plan struct {
	// Workload names the planned workload.
	Workload string
	// IntervalUops is the interval length shared with the profile.
	IntervalUops uint64
	// Intervals is the number of profiled intervals (the sum of weights).
	Intervals int
	// Points lists the representatives in window order.
	Points []Point
	// ErrorBound is the clustering dispersion mapped to an expected
	// relative error on aggregate metrics: the weighted mean
	// member-to-centroid distance over unit-norm interval vectors,
	// normalized into [0, 1]. It is a heuristic confidence signal — 0
	// means every interval is indistinguishable from its representative,
	// larger values mean the representatives summarize the window less
	// faithfully — not a statistical guarantee.
	ErrorBound float64
}

// BuildPlan clusters a profile into at most maxK representative intervals.
// The seed makes clustering reproducible; callers derive it from the
// workload seed so the same job always replays the same intervals.
func BuildPlan(p *Profile, maxK int, seed uint64) (*Plan, error) {
	if p.Intervals() == 0 {
		return nil, fmt.Errorf("sample: profile of %s has no intervals", p.Workload)
	}
	if maxK < 1 {
		return nil, fmt.Errorf("sample: MaxK must be >= 1, got %d", maxK)
	}
	cl := kMeans(p.Vectors, maxK, seed)
	plan := &Plan{
		Workload:     p.Workload,
		IntervalUops: p.IntervalUops,
		Intervals:    p.Intervals(),
	}
	var weightedDist float64
	for c := 0; c < cl.K; c++ {
		if cl.Size[c] == 0 {
			continue
		}
		plan.Points = append(plan.Points, Point{
			Index:  cl.Representative[c],
			Weight: uint64(cl.Size[c]),
		})
		weightedDist += float64(cl.Size[c]) * cl.AvgDist[c]
	}
	sort.Slice(plan.Points, func(i, j int) bool { return plan.Points[i].Index < plan.Points[j].Index })
	// Unit-norm vectors are at most 2 apart, so dividing the weighted mean
	// dispersion by 2 lands the bound in [0, 1].
	plan.ErrorBound = weightedDist / float64(plan.Intervals) / 2
	return plan, nil
}

// MeasuredUops is the cycle-simulated measurement volume the plan needs —
// the quantity sampling exists to shrink.
func (p *Plan) MeasuredUops() uint64 {
	return uint64(len(p.Points)) * p.IntervalUops
}

// SampledFraction is MeasuredUops over the full profiled window.
func (p *Plan) SampledFraction() float64 {
	if p.Intervals == 0 {
		return 0
	}
	return float64(len(p.Points)) / float64(p.Intervals)
}

// String renders the plan as the simpoint table cmd/rfpsample prints.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d intervals x %d uops -> %d simpoints (%.1f%% of window, error bound %.3f)\n",
		p.Workload, p.Intervals, p.IntervalUops, len(p.Points), 100*p.SampledFraction(), p.ErrorBound)
	for _, pt := range p.Points {
		fmt.Fprintf(&b, "  interval %3d  window uops [%d, %d)  weight %d (%.1f%%)\n",
			pt.Index, uint64(pt.Index)*p.IntervalUops, uint64(pt.Index+1)*p.IntervalUops,
			pt.Weight, 100*float64(pt.Weight)/float64(p.Intervals))
	}
	return b.String()
}
