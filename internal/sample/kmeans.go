package sample

import (
	"math"

	"rfpsim/internal/prng"
)

// maxKMeansIters bounds Lloyd refinement; interval counts are small
// (tens to hundreds), so convergence is nearly always much earlier.
const maxKMeansIters = 64

// Clusters is a k-means partition of the profile's interval vectors.
type Clusters struct {
	// K is the cluster count actually used (<= the requested k when
	// duplicate seed points collapse).
	K int
	// Assign maps each interval index to its cluster.
	Assign []int
	// Size is the member count per cluster.
	Size []int
	// AvgDist is the mean member-to-centroid distance per cluster — the
	// dispersion that feeds the reported error bound.
	AvgDist []float64
	// Representative is, per cluster, the member interval closest to the
	// centroid (ties break to the earliest interval).
	Representative []int
}

// kMeans clusters vecs into at most k groups with k-means++ seeding and
// Lloyd refinement, fully deterministic for a given seed: prng-driven
// seeding, fixed iteration order and index-based tie-breaking. It panics
// on empty input (callers validate) and never returns empty clusters —
// an emptied cluster is reseeded with the point farthest from its
// centroid's replacement assignment.
func kMeans(vecs [][vectorDims]float64, k int, seed uint64) *Clusters {
	n := len(vecs)
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	rng := prng.New(seed)

	// k-means++ seeding: first centroid uniform, then proportional to
	// squared distance from the nearest chosen centroid.
	centroids := make([][vectorDims]float64, 0, k)
	centroids = append(centroids, vecs[rng.Intn(n)])
	d2 := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i := range vecs {
			d2[i] = dist2(vecs[i], centroids[0])
			for _, c := range centroids[1:] {
				if d := dist2(vecs[i], c); d < d2[i] {
					d2[i] = d
				}
			}
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with a centroid; fewer
			// clusters describe the data exactly.
			break
		}
		target := rng.Float64() * total
		pick := n - 1
		var cum float64
		for i, d := range d2 {
			cum += d
			if cum >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, vecs[pick])
	}
	k = len(centroids)

	assign := make([]int, n)
	size := make([]int, k)
	for iter := 0; iter < maxKMeansIters; iter++ {
		changed := false
		for i := range size {
			size[i] = 0
		}
		for i, v := range vecs {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := dist2(v, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			size[best]++
		}
		// Reseed any emptied cluster with the point farthest from its
		// current centroid, keeping K stable.
		for c := 0; c < k; c++ {
			if size[c] > 0 {
				continue
			}
			far, farD := -1, -1.0
			for i, v := range vecs {
				if size[assign[i]] <= 1 {
					continue
				}
				if d := dist2(v, centroids[assign[i]]); d > farD {
					far, farD = i, d
				}
			}
			if far < 0 {
				continue
			}
			size[assign[far]]--
			assign[far] = c
			size[c] = 1
			changed = true
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids as member means.
		for c := range centroids {
			centroids[c] = [vectorDims]float64{}
		}
		for i, v := range vecs {
			for d := 0; d < vectorDims; d++ {
				centroids[assign[i]][d] += v[d]
			}
		}
		for c := range centroids {
			if size[c] == 0 {
				continue
			}
			inv := 1 / float64(size[c])
			for d := 0; d < vectorDims; d++ {
				centroids[c][d] *= inv
			}
		}
	}

	cl := &Clusters{
		K:              k,
		Assign:         assign,
		Size:           size,
		AvgDist:        make([]float64, k),
		Representative: make([]int, k),
	}
	repD := make([]float64, k)
	for c := range repD {
		cl.Representative[c] = -1
		repD[c] = math.Inf(1)
	}
	for i, v := range vecs {
		c := assign[i]
		d := math.Sqrt(dist2(v, centroids[c]))
		cl.AvgDist[c] += d
		if d < repD[c] {
			repD[c] = d
			cl.Representative[c] = i
		}
	}
	for c := range cl.AvgDist {
		if cl.Size[c] > 0 {
			cl.AvgDist[c] /= float64(cl.Size[c])
		}
	}
	return cl
}

// dist2 is the squared Euclidean distance between two interval vectors.
func dist2(a, b [vectorDims]float64) float64 {
	var s float64
	for d := 0; d < vectorDims; d++ {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}
