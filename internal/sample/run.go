package sample

import (
	"context"
	"errors"
	"fmt"
	"time"

	"rfpsim/internal/obs"
	"rfpsim/internal/runner"
	"rfpsim/internal/stats"
)

// Defaults applied to a zero-valued runner.Sampling spec. With the
// standard 60000-uop measurement window they give 30 intervals and at
// most 5 replayed representatives — a 6x reduction in cycle-simulated
// measurement volume.
const (
	// DefaultIntervalUops is the default interval length.
	DefaultIntervalUops = 2000
	// DefaultMaxK is the default representative budget.
	DefaultMaxK = 5
)

// PlanSeedSalt decorrelates the clustering seed from the workload seed
// (which already drives uop generation). Exported so cmd/rfpsample derives
// the exact plan a sampled run would replay.
const PlanSeedSalt = 0x51A4B0177E5EED

// Normalized returns sp with the documented defaults applied: 2000-uop
// intervals, at most 5 representatives, and one interval of per-point
// warmup. Content addressing (internal/service) runs on the normalized
// form so a spec spelling the defaults out shares a cache entry with one
// that omits them.
func Normalized(sp runner.Sampling) runner.Sampling {
	if sp.IntervalUops == 0 {
		sp.IntervalUops = DefaultIntervalUops
	}
	if sp.MaxK == 0 {
		sp.MaxK = DefaultMaxK
	}
	if sp.WarmupUops == 0 {
		sp.WarmupUops = sp.IntervalUops
	}
	return sp
}

// Validate rejects sampled jobs that cannot be executed: sampling needs a
// re-instantiable uop source — a catalog workload or a NewGen factory —
// because the profiling pass and every replayed interval instantiate
// fresh generators; plus a single seed, a sane interval length and a
// positive representative budget.
func Validate(job runner.Job) error {
	if job.Sampling == nil {
		return nil
	}
	sp := Normalized(*job.Sampling)
	switch {
	case job.Gen != nil:
		return errors.New("sample: sampling needs a re-instantiable uop source (a catalog workload or a NewGen factory), not a one-shot generator")
	case job.Seeds > 1:
		return fmt.Errorf("sample: sampling supports a single seed, got Seeds=%d", job.Seeds)
	case job.Sampling.MaxK < 0:
		return fmt.Errorf("sample: MaxK must be >= 0, got %d", job.Sampling.MaxK)
	case job.MeasureUops < sp.IntervalUops:
		return fmt.Errorf("sample: measured window (%d uops) is shorter than one interval (%d uops)",
			job.MeasureUops, sp.IntervalUops)
	}
	return nil
}

// Result is a sampled (or full) execution outcome.
type Result struct {
	// Stats is the aggregate statistics block. For sampled runs the
	// counters are cluster-weight scaled, so totals estimate the full
	// window and ratios (IPC, coverage) are weighted averages.
	Stats *stats.Sim
	// Plan is the replay plan a sampled run used; nil for full runs.
	Plan *Plan
}

// Run executes a job, sampled when job.Sampling is set and as a plain
// full-window runner.Run otherwise. It is the execution entry point the
// service daemon, the sweep local backend and cmd/rfpsim share.
func Run(ctx context.Context, job runner.Job) (*stats.Sim, error) {
	res, err := RunResult(ctx, job)
	if err != nil {
		return nil, err
	}
	return res.Stats, nil
}

// RunResult is Run plus the replay plan, for callers that report the
// error bound and sampled volume (the service response, cmd/rfpsample).
func RunResult(ctx context.Context, job runner.Job) (Result, error) {
	if job.Sampling == nil {
		st, err := runner.Run(ctx, job)
		if err != nil {
			return Result{}, err
		}
		return Result{Stats: st}, nil
	}
	if err := Validate(job); err != nil {
		return Result{}, err
	}
	if err := job.Config.Validate(); err != nil {
		return Result{}, fmt.Errorf("sample: invalid config: %w", err)
	}
	sp := Normalized(*job.Sampling)

	// Phase 1+2: functional profile of the measured window, clustered
	// into the replay plan. The profiled window is the same [Warmup,
	// Warmup+Measure) stream slice a full run would measure. The whole
	// pass is billed to the "profile" timing stage — it is cost sampling
	// adds that a full run never pays.
	tim := obs.ContextTimings(ctx)
	begin := time.Now()
	var profile *Profile
	var err error
	if job.NewGen != nil {
		profile, err = ProfileGenerator(ctx, job.NewGen(), job.Spec.Name, job.WarmupUops, job.MeasureUops, sp.IntervalUops)
	} else {
		profile, err = ProfileSpec(ctx, job.Spec, job.WarmupUops, job.MeasureUops, sp.IntervalUops)
	}
	if err != nil {
		return Result{}, err
	}
	plan, err := BuildPlan(profile, sp.MaxK, job.Spec.Seed^PlanSeedSalt)
	if err != nil {
		return Result{}, err
	}
	if tim != nil {
		tim.Observe(obs.StageProfile, time.Since(begin))
	}
	obs.Logger(ctx).Debug("replay plan built",
		"workload", job.Spec.Name, "points", len(plan.Points),
		"intervals", plan.Intervals, "error_bound", plan.ErrorBound)

	// Phase 3: weighted replay. Each representative becomes a sub-job:
	// functionally warm up to shortly before the interval
	// (core.FastForward trains predictors and caches over the skipped
	// prefix, so the interval sees near-full-run predictor state), warm
	// up cycle-accurately for sp.WarmupUops, measure one interval, scale
	// by the cluster weight. All-or-nothing like runner.Run: any failed
	// point discards the whole result.
	total := &stats.Sim{}
	for _, pt := range plan.Points {
		st, err := replayPoint(ctx, job, sp, pt)
		if err != nil {
			return Result{}, err
		}
		begin = time.Now()
		stats.Scale(st, pt.Weight)
		stats.Accumulate(total, st)
		if tim != nil {
			tim.Observe(obs.StageAggregate, time.Since(begin))
		}
	}
	return Result{Stats: total, Plan: plan}, nil
}

// replayPoint cycle-simulates one representative interval.
func replayPoint(ctx context.Context, job runner.Job, sp runner.Sampling, pt Point) (*stats.Sim, error) {
	start := job.WarmupUops + uint64(pt.Index)*sp.IntervalUops
	warm := sp.WarmupUops
	if warm > start {
		warm = start // the stream has no history to warm up on
	}
	sub := runner.Job{
		Config:          job.Config,
		Spec:            job.Spec,
		NewGen:          job.NewGen,
		FastForwardUops: start - warm,
		WarmupUops:      warm,
		MeasureUops:     sp.IntervalUops,
		Seeds:           1,
		ColdCaches:      job.ColdCaches,
		AfterWarmup:     job.AfterWarmup,
	}
	st, err := runner.Run(ctx, sub)
	if err != nil {
		return nil, fmt.Errorf("sample: %s interval %d: %w", job.Spec.Name, pt.Index, err)
	}
	return st, nil
}
