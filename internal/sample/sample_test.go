package sample

import (
	"context"
	"math"
	"strings"
	"testing"

	"rfpsim/internal/config"
	"rfpsim/internal/runner"
	"rfpsim/internal/trace"
)

func mustSpec(t *testing.T, name string) trace.Spec {
	t.Helper()
	spec, ok := trace.ByName(name)
	if !ok {
		t.Fatalf("catalog workload %s missing", name)
	}
	return spec
}

func TestProfileShapeAndDeterminism(t *testing.T) {
	spec := mustSpec(t, "spec06_gcc")
	p1, err := ProfileSpec(context.Background(), spec, 30000, 60000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p1.Intervals(), 30; got != want {
		t.Fatalf("intervals = %d, want %d", got, want)
	}
	for i, v := range p1.Vectors {
		var norm float64
		for _, x := range v {
			norm += x * x
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Fatalf("interval %d vector norm^2 = %g, want 1", i, norm)
		}
	}
	p2, err := ProfileSpec(context.Background(), spec, 30000, 60000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Vectors {
		if p1.Vectors[i] != p2.Vectors[i] {
			t.Fatalf("interval %d vector differs between identical profiling passes", i)
		}
	}
}

func TestProfileRejectsDegenerateWindows(t *testing.T) {
	spec := mustSpec(t, "spec06_gcc")
	if _, err := ProfileSpec(context.Background(), spec, 0, 1000, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := ProfileSpec(context.Background(), spec, 0, 1000, 2000); err == nil {
		t.Fatal("window shorter than one interval accepted")
	}
}

func TestKMeansDeterministicPartition(t *testing.T) {
	spec := mustSpec(t, "spark")
	p, err := ProfileSpec(context.Background(), spec, 0, 60000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	a := kMeans(p.Vectors, 5, 42)
	b := kMeans(p.Vectors, 5, 42)
	if a.K != b.K {
		t.Fatalf("K differs across identical runs: %d vs %d", a.K, b.K)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment of interval %d differs across identical runs", i)
		}
	}
	total := 0
	for c := 0; c < a.K; c++ {
		if a.Size[c] == 0 {
			t.Fatalf("cluster %d is empty", c)
		}
		rep := a.Representative[c]
		if rep < 0 || rep >= len(p.Vectors) {
			t.Fatalf("cluster %d representative %d out of range", c, rep)
		}
		if a.Assign[rep] != c {
			t.Fatalf("cluster %d representative %d belongs to cluster %d", c, rep, a.Assign[rep])
		}
		total += a.Size[c]
	}
	if total != len(p.Vectors) {
		t.Fatalf("cluster sizes sum to %d, want %d", total, len(p.Vectors))
	}
}

func TestBuildPlanWeightsAndBound(t *testing.T) {
	spec := mustSpec(t, "spec06_xalancbmk")
	p, err := ProfileSpec(context.Background(), spec, 30000, 60000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(p, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Points) == 0 || len(plan.Points) > 5 {
		t.Fatalf("plan has %d points, want 1..5", len(plan.Points))
	}
	var weights uint64
	last := -1
	for _, pt := range plan.Points {
		if pt.Index <= last {
			t.Fatalf("plan points not in strictly increasing window order: %v", plan.Points)
		}
		last = pt.Index
		weights += pt.Weight
	}
	if weights != uint64(plan.Intervals) {
		t.Fatalf("weights sum to %d, want the interval count %d", weights, plan.Intervals)
	}
	if plan.ErrorBound < 0 || plan.ErrorBound > 1 {
		t.Fatalf("error bound %g outside [0,1]", plan.ErrorBound)
	}
	if got := plan.MeasuredUops(); got != uint64(len(plan.Points))*2000 {
		t.Fatalf("MeasuredUops = %d", got)
	}
	if !strings.Contains(plan.String(), "simpoints") {
		t.Fatalf("plan String misses the summary line:\n%s", plan.String())
	}
}

func TestValidateRejections(t *testing.T) {
	spec := mustSpec(t, "spec06_gcc")
	base := runner.Job{
		Config:      config.Baseline(),
		Spec:        spec,
		WarmupUops:  30000,
		MeasureUops: 60000,
		Seeds:       1,
		Sampling:    &runner.Sampling{},
	}
	multi := base
	multi.Seeds = 3
	if err := Validate(multi); err == nil || !strings.Contains(err.Error(), "single seed") {
		t.Fatalf("Seeds=3 error = %v", err)
	}
	gen := base
	gen.Gen = spec.New()
	if err := Validate(gen); err == nil || !strings.Contains(err.Error(), "generator") {
		t.Fatalf("Gen override error = %v", err)
	}
	short := base
	short.MeasureUops = 500
	if err := Validate(short); err == nil || !strings.Contains(err.Error(), "interval") {
		t.Fatalf("short window error = %v", err)
	}
	negK := base
	negK.Sampling = &runner.Sampling{MaxK: -1}
	if err := Validate(negK); err == nil || !strings.Contains(err.Error(), "MaxK") {
		t.Fatalf("MaxK=-1 error = %v", err)
	}
	if err := Validate(base); err != nil {
		t.Fatalf("valid sampled job rejected: %v", err)
	}
}

func TestRunFullPassthrough(t *testing.T) {
	job := runner.Job{
		Config:      config.Baseline(),
		Spec:        mustSpec(t, "spec06_gcc"),
		WarmupUops:  2000,
		MeasureUops: 4000,
		Seeds:       1,
	}
	direct, err := runner.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunResult(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != nil {
		t.Fatal("full run reported a replay plan")
	}
	if *res.Stats != *direct {
		t.Fatal("full-run passthrough differs from runner.Run")
	}
}

func TestSampledRunDeterministic(t *testing.T) {
	job := runner.Job{
		Config:      config.Baseline(),
		Spec:        mustSpec(t, "spark"),
		WarmupUops:  30000,
		MeasureUops: 60000,
		Seeds:       1,
		Sampling:    &runner.Sampling{},
	}
	a, err := RunResult(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunResult(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if *a.Stats != *b.Stats {
		t.Fatal("sampled statistics differ between identical runs")
	}
	if len(a.Plan.Points) != len(b.Plan.Points) {
		t.Fatal("replay plans differ between identical runs")
	}
}

// TestSampledAccuracy is the subsystem's acceptance gate: on a spread of
// catalog workloads the sampled IPC estimate must land within ±2% of the
// full-run IPC while cycle-simulating at most a fifth of the measured
// window.
func TestSampledAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled-vs-full comparison simulates full windows")
	}
	names := []string{
		"spec06_mcf", "spec06_gcc", "spec06_xalancbmk",
		"spec06_wrf", "spark", "spec17_lbm",
	}
	for _, n := range names {
		t.Run(n, func(t *testing.T) {
			job := runner.Job{
				Config:      config.Baseline(),
				Spec:        mustSpec(t, n),
				WarmupUops:  30000,
				MeasureUops: 60000,
				Seeds:       1,
			}
			full, err := runner.Run(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			sampled := job
			sampled.Sampling = &runner.Sampling{}
			res, err := RunResult(context.Background(), sampled)
			if err != nil {
				t.Fatal(err)
			}
			if got, limit := res.Plan.MeasuredUops(), job.MeasureUops/5; got > limit {
				t.Fatalf("sampled run measures %d uops, budget is %d (1/5 of the window)", got, limit)
			}
			relErr := res.Stats.IPC()/full.IPC() - 1
			t.Logf("full IPC %.3f sampled %.3f err %+.2f%% (%d points, bound %.3f)",
				full.IPC(), res.Stats.IPC(), 100*relErr, len(res.Plan.Points), res.Plan.ErrorBound)
			if math.Abs(relErr) > 0.02 {
				t.Fatalf("sampled IPC %.4f deviates %+.2f%% from full-run %.4f (tolerance ±2%%)",
					res.Stats.IPC(), 100*relErr, full.IPC())
			}
		})
	}
}
