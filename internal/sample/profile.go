// Package sample implements SimPoint-style sampled simulation: a cheap
// functional pass over a workload's uop stream collects per-interval
// basic-block vectors, a deterministic k-means clusterer picks a handful
// of representative intervals plus weights, and a replay planner turns a
// runner.Job into warmup+measure sub-jobs at those intervals whose
// statistics are cluster-weight scaled into a full-window estimate. The
// point is to cut cycle-simulated work by ~5x and more while staying
// within a couple of percent of the full-run IPC, which is what makes
// suite-wide parameter sweeps (internal/sweep) tractable. The
// profile/cluster pass bills its wall time to the "profile" stage of the
// context's obs.Timings collector — the one stage a full run never pays.
package sample

import (
	"context"
	"fmt"
	"math"

	"rfpsim/internal/isa"
	"rfpsim/internal/prng"
	"rfpsim/internal/trace"
)

// vectorDims is the dimensionality basic-block vectors are randomly
// projected down to, the same dimension reduction SimPoint applies before
// clustering. Block counts are sparse over an unbounded PC space; a fixed
// ±1 random projection preserves relative distances well at this size
// while keeping k-means cheap and allocation-free per interval.
const vectorDims = 32

// ctxCheckUops is how many functionally generated uops pass between
// context polls during profiling and fast-forward.
const ctxCheckUops = 1 << 16

// Profile is the result of the functional profiling pass: one projected,
// L2-normalized basic-block vector per interval of the measured window.
type Profile struct {
	// Workload names the profiled workload.
	Workload string
	// IntervalUops is the interval length the window was split into.
	IntervalUops uint64
	// Vectors holds one unit-norm vector per interval, in window order.
	Vectors [][vectorDims]float64
}

// Intervals returns the number of profiled intervals.
func (p *Profile) Intervals() int { return len(p.Vectors) }

// bbvAccum builds one interval's basic-block vector. A basic block is the
// straight-line run of uops ending at a branch; its ID is the PC of its
// first uop and its contribution is weighted by the block length, exactly
// the SimPoint construction. Blocks are projected into the fixed-dimension
// vector as they close, so the sparse per-block count map never
// materializes.
type bbvAccum struct {
	vec        [vectorDims]float64
	blockStart uint64
	blockLen   uint64
	haveBlock  bool
}

// note observes one functionally generated uop.
func (a *bbvAccum) note(op *isa.MicroOp) {
	if !a.haveBlock {
		a.blockStart = op.PC
		a.haveBlock = true
	}
	a.blockLen++
	if op.IsBranch() {
		a.close()
	}
}

// close folds the in-progress block into the projected vector.
func (a *bbvAccum) close() {
	if !a.haveBlock || a.blockLen == 0 {
		return
	}
	// Deterministic per-block ±1 projection row derived from the block ID;
	// two prng draws give 128 independent bits, plenty for vectorDims.
	h := prng.New(a.blockStart ^ 0xB10C5EED)
	bits := h.Uint64()
	w := float64(a.blockLen)
	for d := 0; d < vectorDims; d++ {
		if bits&(1<<uint(d)) != 0 {
			a.vec[d] += w
		} else {
			a.vec[d] -= w
		}
	}
	a.blockStart = 0
	a.blockLen = 0
	a.haveBlock = false
}

// finish closes the trailing block and L2-normalizes the vector so
// distances compare interval shapes, not interval lengths.
func (a *bbvAccum) finish() [vectorDims]float64 {
	a.close()
	var norm float64
	for _, v := range a.vec {
		norm += v * v
	}
	if norm > 0 {
		inv := 1 / math.Sqrt(norm)
		for d := range a.vec {
			a.vec[d] *= inv
		}
	}
	return a.vec
}

// ProfileGenerator runs the functional profiling pass over gen: it drains
// skip uops (the job's warmup window), then splits the next measure uops
// into intervals of interval uops each and collects one basic-block
// vector per full interval. A trailing remainder shorter than one
// interval is dropped from the profile (and therefore from the sampled
// estimate). The pass consumes gen.
func ProfileGenerator(ctx context.Context, gen isa.Generator, name string, skip, measure, interval uint64) (*Profile, error) {
	if interval == 0 {
		return nil, fmt.Errorf("sample: interval length is 0")
	}
	if measure < interval {
		return nil, fmt.Errorf("sample: measured window (%d uops) is shorter than one interval (%d uops)", measure, interval)
	}
	if err := drain(ctx, gen, name, skip); err != nil {
		return nil, err
	}
	n := int(measure / interval)
	p := &Profile{
		Workload:     name,
		IntervalUops: interval,
		Vectors:      make([][vectorDims]float64, 0, n),
	}
	var op isa.MicroOp
	var acc bbvAccum
	for i := 0; i < n; i++ {
		if err := ctxErr(ctx, name, "profile"); err != nil {
			return nil, err
		}
		for u := uint64(0); u < interval; u++ {
			if !gen.Next(&op) {
				return nil, fmt.Errorf("sample: %s ended after %d of %d profiled intervals", name, i, n)
			}
			acc.note(&op)
		}
		p.Vectors = append(p.Vectors, acc.finish())
		acc = bbvAccum{}
	}
	return p, nil
}

// ProfileSpec profiles a catalog workload: a fresh generator is
// instantiated from the spec, so the pass does not disturb any generator
// the caller holds.
func ProfileSpec(ctx context.Context, spec trace.Spec, skip, measure, interval uint64) (*Profile, error) {
	return ProfileGenerator(ctx, spec.New(), spec.Name, skip, measure, interval)
}

// drain advances gen by n uops without simulating them — the functional
// fast-forward used both by profiling (to reach the measured window) and
// by replay (to reach a representative interval).
func drain(ctx context.Context, gen isa.Generator, name string, n uint64) error {
	var op isa.MicroOp
	for i := uint64(0); i < n; i++ {
		if i%ctxCheckUops == 0 {
			if err := ctxErr(ctx, name, "fast-forward"); err != nil {
				return err
			}
		}
		if !gen.Next(&op) {
			return fmt.Errorf("sample: %s ended %d uops into a %d-uop fast-forward", name, i, n)
		}
	}
	return nil
}

func ctxErr(ctx context.Context, name, phase string) error {
	select {
	case <-ctx.Done():
		return fmt.Errorf("sample: %s %s cancelled: %w", name, phase, ctx.Err())
	default:
		return nil
	}
}
