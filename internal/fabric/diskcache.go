package fabric

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
)

// entryMagic versions the on-disk entry format. An entry is one file
// holding a single header line — magic, body length, SHA-256 of the body —
// followed by the raw response body:
//
//	rfpfab1 <len> <sha256-hex>\n<body>
//
// The header makes truncation and bit-rot detectable: a Get that fails
// length or digest verification deletes the file and reports a miss, so a
// corrupted entry costs one re-simulation, never a wrong answer.
const entryMagic = "rfpfab1"

// maxDiskEntryBytes bounds a single entry body; anything larger is
// refused (bodies are one marshalled stats block, a few KB).
const maxDiskEntryBytes = 64 << 20

// DiskCache is the persistent tier of the result fabric: a
// content-addressed store of response bodies under a sharded directory
// tree (dir/<addr[:2]>/<addr>), written atomically via same-directory
// rename so a crash mid-write never leaves a half-entry under its final
// name. A byte-capped LRU janitor evicts the least-recently-used entries
// inline on Put; recency survives restarts approximately via file mtimes
// (Get touches the file).
type DiskCache struct {
	dir      string
	maxBytes int64

	mu         sync.Mutex
	entries    map[string]*list.Element // addr -> lru element
	lru        *list.List               // front = most recent
	totalBytes int64

	hits      counter
	misses    counter
	writes    counter
	evictions counter
	corrupt   counter
}

type diskEntry struct {
	addr string
	size int64 // file size (header + body)
}

// DefaultDiskMaxBytes caps the disk cache when Options leave it 0: 1 GiB.
const DefaultDiskMaxBytes = 1 << 30

// OpenDiskCache opens (creating if needed) the cache rooted at dir and
// rebuilds the LRU index from the existing entries, oldest-mtime first.
func OpenDiskCache(dir string, maxBytes int64) (*DiskCache, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultDiskMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fabric: cache dir: %w", err)
	}
	c := &DiskCache{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
	type found struct {
		addr  string
		size  int64
		mtime int64
	}
	var existing []found
	shards, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() || !validAddr(f.Name()) {
				// Leftover tmp files from a crashed write are garbage;
				// sweep them now.
				if !f.IsDir() {
					os.Remove(filepath.Join(dir, sh.Name(), f.Name()))
				}
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			existing = append(existing, found{addr: f.Name(), size: info.Size(), mtime: info.ModTime().UnixNano()})
		}
	}
	sort.Slice(existing, func(i, j int) bool {
		if existing[i].mtime != existing[j].mtime {
			return existing[i].mtime < existing[j].mtime
		}
		return existing[i].addr < existing[j].addr
	})
	for _, e := range existing {
		c.entries[e.addr] = c.lru.PushFront(&diskEntry{addr: e.addr, size: e.size})
		c.totalBytes += e.size
	}
	c.evictOverCapLocked()
	return c, nil
}

// validAddr reports whether s looks like a content address: 64 lowercase
// hex characters. Everything entering a file path is gated on this, so a
// hostile addr ("../../etc/passwd") can never escape the cache tree.
func validAddr(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (c *DiskCache) path(addr string) string {
	return filepath.Join(c.dir, addr[:2], addr)
}

// Get returns the body stored under addr, verifying the header's length
// and digest. Corrupt or truncated entries are deleted and reported as a
// miss — the caller re-simulates instead of serving garbage.
func (c *DiskCache) Get(addr string) ([]byte, bool) {
	if !validAddr(addr) {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.entries[addr]
	if ok {
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	raw, err := os.ReadFile(c.path(addr))
	if err != nil {
		c.dropEntry(addr)
		c.misses.Add(1)
		return nil, false
	}
	body, ok := decodeEntry(raw)
	if !ok {
		c.corrupt.Add(1)
		c.dropEntry(addr)
		os.Remove(c.path(addr))
		c.misses.Add(1)
		return nil, false
	}
	// Touch the mtime so restart-time LRU seeding approximates recency.
	now := timeNow()
	os.Chtimes(c.path(addr), now, now)
	c.hits.Add(1)
	return body, true
}

// decodeEntry parses and verifies one on-disk entry.
func decodeEntry(raw []byte) ([]byte, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, false
	}
	fields := bytes.Fields(raw[:nl])
	if len(fields) != 3 || string(fields[0]) != entryMagic {
		return nil, false
	}
	n, err := strconv.ParseInt(string(fields[1]), 10, 64)
	if err != nil || n < 0 || n > maxDiskEntryBytes {
		return nil, false
	}
	body := raw[nl+1:]
	if int64(len(body)) != n {
		return nil, false
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != string(fields[2]) {
		return nil, false
	}
	return body, true
}

// Put stores body under addr: write to a temp file in the final shard
// directory, fsync-free atomic rename, then run the byte-cap janitor. A
// racing identical Put is harmless — both bodies are byte-identical by
// the determinism contract.
func (c *DiskCache) Put(addr string, body []byte) error {
	if !validAddr(addr) {
		return fmt.Errorf("fabric: invalid content address %q", addr)
	}
	if len(body) > maxDiskEntryBytes {
		return fmt.Errorf("fabric: entry body %d bytes exceeds the %d cap", len(body), maxDiskEntryBytes)
	}
	c.mu.Lock()
	_, exists := c.entries[addr]
	c.mu.Unlock()
	if exists {
		return nil
	}
	shard := filepath.Join(c.dir, addr[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return err
	}
	sum := sha256.Sum256(body)
	header := fmt.Sprintf("%s %d %s\n", entryMagic, len(body), hex.EncodeToString(sum[:]))
	tmp, err := os.CreateTemp(shard, "tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.WriteString(header); err == nil {
		_, err = tmp.Write(body)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, c.path(addr)); err != nil {
		os.Remove(tmpName)
		return err
	}
	size := int64(len(header) + len(body))
	c.mu.Lock()
	if _, ok := c.entries[addr]; !ok {
		c.entries[addr] = c.lru.PushFront(&diskEntry{addr: addr, size: size})
		c.totalBytes += size
	}
	c.evictOverCapLocked()
	c.mu.Unlock()
	c.writes.Add(1)
	return nil
}

// evictOverCapLocked removes least-recently-used entries until the total
// is back under the byte cap. Called with c.mu held.
func (c *DiskCache) evictOverCapLocked() {
	for c.totalBytes > c.maxBytes && c.lru.Len() > 1 {
		el := c.lru.Back()
		e := el.Value.(*diskEntry)
		c.lru.Remove(el)
		delete(c.entries, e.addr)
		c.totalBytes -= e.size
		os.Remove(c.path(e.addr))
		c.evictions.Add(1)
	}
}

// dropEntry removes addr from the index (unreadable or corrupt file).
func (c *DiskCache) dropEntry(addr string) {
	c.mu.Lock()
	if el, ok := c.entries[addr]; ok {
		c.totalBytes -= el.Value.(*diskEntry).size
		c.lru.Remove(el)
		delete(c.entries, addr)
	}
	c.mu.Unlock()
}

// Len returns the indexed entry count.
func (c *DiskCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the indexed total size (headers included).
func (c *DiskCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalBytes
}
