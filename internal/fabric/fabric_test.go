package fabric

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupSingleFlight pins the dedup contract: one leader per
// address, followers all observe the leader's result.
func TestFlightGroupSingleFlight(t *testing.T) {
	var g FlightGroup
	addr := addrFor(3)
	lead, isLeader := g.Join(addr)
	if !isLeader {
		t.Fatal("first join is not leader")
	}

	const followers = 8
	var wg, joined sync.WaitGroup
	joined.Add(followers)
	var leaders atomic.Int64
	results := make([][]byte, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, leader := g.Join(addr)
			joined.Done()
			if leader {
				leaders.Add(1)
				return
			}
			body, err := f.Wait(context.Background())
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			results[i] = body
		}(i)
	}
	// Complete only after every follower has joined the live flight —
	// otherwise a late Join would lead a new flight nobody resolves.
	joined.Wait()
	g.Complete(addr, lead, body(3), nil)
	wg.Wait()
	if leaders.Load() != 0 {
		t.Fatalf("%d extra leaders while a flight was active", leaders.Load())
	}
	for i, r := range results {
		if !bytes.Equal(r, body(3)) {
			t.Errorf("follower %d got %q", i, r)
		}
	}
	// After completion the address is free again: next join leads.
	if _, leader := g.Join(addr); !leader {
		t.Error("address not released after Complete")
	}
}

// TestFlightWaitRespectsContext: a follower whose client disconnects must
// not block forever on a slow leader.
func TestFlightWaitRespectsContext(t *testing.T) {
	var g FlightGroup
	f, _ := g.Join(addrFor(4))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := f.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait returned %v, want deadline exceeded", err)
	}
}

// newPeerFabric builds a two-member fabric whose "self" is a non-owner
// for the returned address, with the owner role played by the given test
// server.
func newPeerFabric(t *testing.T, owner *httptest.Server, timeout time.Duration) (*Fabric, string) {
	t.Helper()
	self := "http://self.invalid:1"
	f, err := New(Options{
		Self:        self,
		Peers:       []string{self, owner.URL},
		PeerTimeout: timeout,
		Client:      owner.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find an address the test server owns.
	for i := 0; i < 10000; i++ {
		a := addrFor(i)
		if o, remote := f.Owner(a); remote && o == owner.URL {
			return f, a
		}
	}
	t.Fatal("no address owned by the peer in 10000 tries")
	return nil, ""
}

// TestFetchFromOwnerHitAndMiss covers the peer-fill protocol happy paths.
func TestFetchFromOwnerHitAndMiss(t *testing.T) {
	want := body(42)
	var status atomic.Int64
	status.Store(http.StatusOK)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("wait") != "1" {
			t.Errorf("peer GET missing wait=1: %s", r.URL)
		}
		code := int(status.Load())
		w.WriteHeader(code)
		if code == http.StatusOK {
			w.Write(want)
		}
	}))
	defer srv.Close()

	f, addr := newPeerFabric(t, srv, time.Second)
	got, ok := f.FetchFromOwner(context.Background(), addr)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("fetch = %q, %v", got, ok)
	}
	if f.metrics.peerHits.Load() != 1 {
		t.Errorf("peer hits = %d, want 1", f.metrics.peerHits.Load())
	}

	status.Store(http.StatusNotFound)
	if _, ok := f.FetchFromOwner(context.Background(), addr); ok {
		t.Fatal("404 reported as a hit")
	}
	if f.metrics.peerMisses.Load() != 1 {
		t.Errorf("peer misses = %d, want 1", f.metrics.peerMisses.Load())
	}
}

// TestFetchFromOwnerTimeoutFallsBack pins a fabric edge case from the
// issue: a hung owner must cost at most PeerTimeout, return a miss (the
// caller then simulates locally), and put the owner on cooldown so the
// next miss skips it entirely.
func TestFetchFromOwnerTimeoutFallsBack(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(release)

	f, addr := newPeerFabric(t, srv, 50*time.Millisecond)
	start := time.Now()
	_, ok := f.FetchFromOwner(context.Background(), addr)
	elapsed := time.Since(start)
	if ok {
		t.Fatal("timed-out fetch reported a hit")
	}
	if elapsed > time.Second {
		t.Fatalf("fetch took %s, want ~50ms timeout", elapsed)
	}
	if f.metrics.peerErrors.Load() != 1 {
		t.Errorf("peer errors = %d, want 1", f.metrics.peerErrors.Load())
	}
	// The owner is now cooling: the next fetch skips without any request.
	if _, ok := f.FetchFromOwner(context.Background(), addr); ok {
		t.Fatal("cooling owner reported a hit")
	}
	if f.metrics.peerSkipped.Load() != 1 {
		t.Errorf("peer skipped = %d, want 1", f.metrics.peerSkipped.Load())
	}
}

// TestPushToOwner pins the write-back path: a computed body lands on the
// owner via PUT, asynchronously, and Close waits for it.
func TestPushToOwner(t *testing.T) {
	type put struct {
		addr string
		body []byte
	}
	got := make(chan put, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut {
			t.Errorf("push used %s, want PUT", r.Method)
		}
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		got <- put{addr: r.URL.Path, body: buf.Bytes()}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	f, addr := newPeerFabric(t, srv, time.Second)
	f.PushToOwner(addr, body(9))
	f.Close()
	select {
	case p := <-got:
		if p.addr != "/v1/result/"+addr {
			t.Errorf("push path = %s", p.addr)
		}
		if !bytes.Equal(p.body, body(9)) {
			t.Errorf("push body = %q", p.body)
		}
	default:
		t.Fatal("Close returned before the push landed")
	}
	if f.metrics.pushes.Load() != 1 {
		t.Errorf("push counter = %d, want 1", f.metrics.pushes.Load())
	}
}

// TestOwnerSelfIsLocal: addresses we own never trigger peer traffic.
func TestOwnerSelfIsLocal(t *testing.T) {
	self := "http://self:1"
	f, err := New(Options{Self: self, Peers: []string{self, "http://peer:2"}})
	if err != nil {
		t.Fatal(err)
	}
	sawRemote, sawLocal := false, false
	for i := 0; i < 200; i++ {
		if _, remote := f.Owner(addrFor(i)); remote {
			sawRemote = true
		} else {
			sawLocal = true
		}
	}
	if !sawRemote || !sawLocal {
		t.Fatalf("2-node ring should split ownership; remote=%v local=%v", sawRemote, sawLocal)
	}
	// Single-member ring (peers == just self): everything is local.
	solo, err := New(Options{Self: self, Peers: []string{self}})
	if err != nil {
		t.Fatal(err)
	}
	if _, remote := solo.Owner(addrFor(1)); remote {
		t.Error("solo ring produced a remote owner")
	}
}
