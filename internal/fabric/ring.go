package fabric

import (
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over the fleet's daemon base URLs. Every
// daemon builds the ring from the same -peers list, so all of them agree —
// with no coordination protocol — on which peer owns which slice of the
// content-address space. Ownership only steers the peer-fill lookup and
// the write-back push; it is never a correctness boundary, because any
// daemon can always simulate any address itself (results are pure
// functions of the address).
//
// Placement is deterministic: FNV-1a over "node#i" for the virtual-node
// points and over the address for lookups, both stable across processes
// and platforms. Removing a node moves only the addresses that node owned
// (pinned by TestRingRebalanceMovesOnlyRemovedShare).
type Ring struct {
	points []ringPoint
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVirtualNodes is the per-node virtual point count used when
// NewRing is given 0. 64 points per node keeps the max/mean ownership
// skew under ~1.35x for small fleets while the ring stays tiny.
const DefaultVirtualNodes = 64

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// NewRing builds a ring over the given nodes (deduplicated; order does
// not matter — two daemons given the same set in different orders build
// identical rings). A nil or empty node list returns an empty ring whose
// Owner is always "".
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	sort.Strings(r.nodes)
	for _, n := range r.nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(n + "#" + itoa(i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// itoa avoids strconv for this tiny loop-bound formatting need.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// Owner returns the node owning addr: the first virtual point clockwise
// from the address hash. Empty ring returns "".
func (r *Ring) Owner(addr string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(addr)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the ring members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }
