package fabric

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func body(i int) []byte { return []byte(fmt.Sprintf(`{"result":%d}`, i)) }

// TestDiskCacheRoundTripAndRestart pins the persistence contract: a body
// put under an address is returned byte-identically, including by a fresh
// DiskCache opened over the same directory (the restart path).
func TestDiskCacheRoundTripAndRestart(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	addr := addrFor(1)
	if _, ok := c.Get(addr); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Put(addr, body(1)); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(addr)
	if !ok || !bytes.Equal(got, body(1)) {
		t.Fatalf("get = %q, %v", got, ok)
	}

	// Restart: a fresh instance over the same dir serves the same bytes.
	c2, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 1 {
		t.Fatalf("restart index has %d entries, want 1", c2.Len())
	}
	got, ok = c2.Get(addr)
	if !ok || !bytes.Equal(got, body(1)) {
		t.Fatalf("restart get = %q, %v", got, ok)
	}

	// The entry lives in a 2-hex shard directory.
	if _, err := os.Stat(filepath.Join(dir, addr[:2], addr)); err != nil {
		t.Errorf("entry not at sharded path: %v", err)
	}
}

// TestDiskCacheCorruptionDetected pins the safety property: truncated or
// bit-flipped entries are detected, deleted and reported as misses —
// never served.
func TestDiskCacheCorruptionDetected(t *testing.T) {
	for name, corrupt := range map[string]func(path string) error{
		"truncated": func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, raw[:len(raw)-3], 0o644)
		},
		"bitflip": func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			raw[len(raw)-1] ^= 0x40
			return os.WriteFile(p, raw, 0o644)
		},
		"garbage": func(p string) error {
			return os.WriteFile(p, []byte("not an entry at all"), 0o644)
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := OpenDiskCache(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			addr := addrFor(7)
			if err := c.Put(addr, body(7)); err != nil {
				t.Fatal(err)
			}
			if err := corrupt(filepath.Join(dir, addr[:2], addr)); err != nil {
				t.Fatal(err)
			}
			if got, ok := c.Get(addr); ok {
				t.Fatalf("corrupted entry served: %q", got)
			}
			if c.corrupt.Load() != 1 {
				t.Errorf("corrupt counter = %d, want 1", c.corrupt.Load())
			}
			if _, err := os.Stat(filepath.Join(dir, addr[:2], addr)); !os.IsNotExist(err) {
				t.Errorf("corrupted entry not deleted: %v", err)
			}
			// A later Put must be able to repopulate the address.
			if err := c.Put(addr, body(7)); err != nil {
				t.Fatal(err)
			}
			if got, ok := c.Get(addr); !ok || !bytes.Equal(got, body(7)) {
				t.Fatalf("repopulated get = %q, %v", got, ok)
			}
		})
	}
}

// TestDiskCacheByteCapLRU pins the janitor: inserts beyond the byte cap
// evict the least-recently-used entries, and a Get refreshes recency.
func TestDiskCacheByteCapLRU(t *testing.T) {
	dir := t.TempDir()
	// Each entry is header (~75B) + body (~12B); cap to roughly 4 entries.
	c, err := OpenDiskCache(dir, 360)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Put(addrFor(i), body(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch entry 0 so entry 1 is now the LRU victim.
	if _, ok := c.Get(addrFor(0)); !ok {
		t.Fatal("entry 0 missing before cap hit")
	}
	if err := c.Put(addrFor(4), body(4)); err != nil {
		t.Fatal(err)
	}
	if c.evictions.Load() == 0 {
		t.Fatal("no evictions past the byte cap")
	}
	if _, ok := c.Get(addrFor(1)); ok {
		t.Error("LRU victim (entry 1) survived eviction")
	}
	if _, ok := c.Get(addrFor(0)); !ok {
		t.Error("recently touched entry 0 was evicted before older entries")
	}
	if c.Bytes() > 360 {
		t.Errorf("cache holds %d bytes, cap is 360", c.Bytes())
	}
}

// TestDiskCacheRejectsHostileAddr pins the path-traversal gate.
func TestDiskCacheRejectsHostileAddr(t *testing.T) {
	c, err := OpenDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range []string{
		"../../../../etc/passwd",
		"short",
		addrFor(0)[:63] + "Z",
		"", "AB" + addrFor(0)[2:],
	} {
		if err := c.Put(addr, body(0)); err == nil {
			t.Errorf("Put(%q) accepted a non-address", addr)
		}
		if _, ok := c.Get(addr); ok {
			t.Errorf("Get(%q) hit on a non-address", addr)
		}
	}
}

// TestDiskCacheRestartSweepsTmpFiles: a crash mid-write leaves a tmp file;
// reopening the cache must delete it and not index it.
func TestDiskCacheRestartSweepsTmpFiles(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, "ab")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(shard, "tmp-crashed")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Errorf("tmp file indexed: %d entries", c.Len())
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("crashed tmp file not swept: %v", err)
	}
}
