package fabric

import (
	"io"
	"sync/atomic"

	"rfpsim/internal/obs"
)

// counter is a tiny alias so the cache/client code reads cleanly.
type counter = atomic.Uint64

// Metrics is the fabric's observability block (obs.Collector). The server
// registers it in its obs.Registry only when the fabric is enabled, so a
// fabric-less daemon's /metrics exposition is unchanged.
type Metrics struct {
	f *Fabric

	peerHits       counter // peer-fill lookups served by the shard owner
	peerMisses     counter // owner consulted but had nothing (we simulate)
	peerErrors     counter // owner unreachable/errored (we simulate)
	peerSkipped    counter // owner on cooldown, lookup skipped
	pushes         counter // computed results written back to their owner
	pushErrors     counter // write-backs that failed (best-effort)
	servedInflight counter // peer GETs served by joining a running flight
}

// WritePrometheus implements obs.Collector; the rfpsimd_fabric_* namespace
// is documented in docs/fabric.md.
func (m *Metrics) WritePrometheus(w io.Writer) {
	var peers, diskEntries int
	var diskBytes int64
	var dHits, dMisses, dWrites, dEvict, dCorrupt uint64
	if m.f != nil {
		peers = m.f.ring.Len()
		if d := m.f.disk; d != nil {
			diskEntries = d.Len()
			diskBytes = d.Bytes()
			dHits = d.hits.Load()
			dMisses = d.misses.Load()
			dWrites = d.writes.Load()
			dEvict = d.evictions.Load()
			dCorrupt = d.corrupt.Load()
		}
	}
	obs.Gauge(w, "rfpsimd_fabric_ring_peers", "Members of the consistent-hash ring (docs/fabric.md).", peers)
	obs.Gauge(w, "rfpsimd_fabric_disk_entries", "Entries indexed in the persistent disk cache.", diskEntries)
	obs.Gauge(w, "rfpsimd_fabric_disk_bytes", "Total bytes indexed in the persistent disk cache.", diskBytes)
	obs.Counter(w, "rfpsimd_fabric_disk_hits_total", "Lookups served from the disk cache.", dHits)
	obs.Counter(w, "rfpsimd_fabric_disk_misses_total", "Disk cache lookups that found nothing usable.", dMisses)
	obs.Counter(w, "rfpsimd_fabric_disk_writes_total", "Entries written to the disk cache.", dWrites)
	obs.Counter(w, "rfpsimd_fabric_disk_evictions_total", "Entries evicted by the disk cache's byte-cap janitor.", dEvict)
	obs.Counter(w, "rfpsimd_fabric_disk_corrupt_total", "Corrupted or truncated disk entries detected (deleted, re-simulated).", dCorrupt)
	obs.Counter(w, "rfpsimd_fabric_peer_hits_total", "Local misses served by the shard owner's cache.", m.peerHits.Load())
	obs.Counter(w, "rfpsimd_fabric_peer_misses_total", "Owner lookups that returned no result (simulated locally).", m.peerMisses.Load())
	obs.Counter(w, "rfpsimd_fabric_peer_errors_total", "Owner lookups that failed (timeout or transport error).", m.peerErrors.Load())
	obs.Counter(w, "rfpsimd_fabric_peer_skipped_total", "Owner lookups skipped because the owner was on failure cooldown.", m.peerSkipped.Load())
	obs.Counter(w, "rfpsimd_fabric_push_total", "Locally computed results pushed to their shard owner.", m.pushes.Load())
	obs.Counter(w, "rfpsimd_fabric_push_errors_total", "Owner write-backs that failed (best-effort, not retried).", m.pushErrors.Load())
	obs.Counter(w, "rfpsimd_fabric_inflight_served_total", "Peer result GETs served by waiting on an in-flight computation.", m.servedInflight.Load())
}

// Snapshot is a point-in-time copy of the fabric's tier state, for
// embedders that render live fabric health (the rfpsimd console's status
// endpoint) without scraping the Prometheus exposition.
type Snapshot struct {
	// RingPeers is the consistent-hash ring membership count.
	RingPeers int `json:"ring_peers"`
	// DiskEntries and DiskBytes are the persistent tier's occupancy.
	DiskEntries int   `json:"disk_entries"`
	DiskBytes   int64 `json:"disk_bytes"`
	// DiskHits and DiskMisses are the persistent tier's lookup counters.
	DiskHits   uint64 `json:"disk_hits"`
	DiskMisses uint64 `json:"disk_misses"`
	// PeerHits, PeerMisses and PeerErrors are the owner-lookup counters.
	PeerHits   uint64 `json:"peer_hits"`
	PeerMisses uint64 `json:"peer_misses"`
	PeerErrors uint64 `json:"peer_errors"`
	// Pushes counts locally computed results written back to their owner.
	Pushes uint64 `json:"pushes"`
}

// Snapshot captures the current tier state.
func (m *Metrics) Snapshot() Snapshot {
	snap := Snapshot{
		PeerHits:   m.peerHits.Load(),
		PeerMisses: m.peerMisses.Load(),
		PeerErrors: m.peerErrors.Load(),
		Pushes:     m.pushes.Load(),
	}
	if m.f != nil {
		snap.RingPeers = m.f.ring.Len()
		if d := m.f.disk; d != nil {
			snap.DiskEntries = d.Len()
			snap.DiskBytes = d.Bytes()
			snap.DiskHits = d.hits.Load()
			snap.DiskMisses = d.misses.Load()
		}
	}
	return snap
}

// PeerHits returns the peer-fill hit count (for tests and smoke checks).
func (m *Metrics) PeerHits() uint64 { return m.peerHits.Load() }

// DiskHits returns the disk-tier hit count (for tests and smoke checks).
func (m *Metrics) DiskHits() uint64 {
	if m.f == nil || m.f.disk == nil {
		return 0
	}
	return m.f.disk.hits.Load()
}
