package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// addrFor makes a deterministic content-address-shaped key.
func addrFor(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("addr-%d", i)))
	return hex.EncodeToString(sum[:])
}

// TestRingPlacementDeterministic pins shard assignment: the ring is a
// cross-process contract (every daemon must agree on owners with no
// coordination), so placement for a fixed fleet is golden data. If this
// test changes, every daemon in a mixed-version fleet disagrees about
// ownership during the rollout — treat a diff as a breaking change.
func TestRingPlacementDeterministic(t *testing.T) {
	nodes := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	r := NewRing(nodes, 0)

	// Order independence: any permutation builds the identical ring.
	r2 := NewRing([]string{"http://c:8080", "http://a:8080", "http://b:8080"}, 0)
	for i := 0; i < 64; i++ {
		a := addrFor(i)
		if r.Owner(a) != r2.Owner(a) {
			t.Fatalf("ring not order-independent at %s: %s vs %s", a[:12], r.Owner(a), r2.Owner(a))
		}
	}

	// Pinned assignments (golden): computed once from the FNV-1a scheme.
	pinned := map[string]string{}
	for i := 0; i < 16; i++ {
		pinned[addrFor(i)] = r.Owner(addrFor(i))
	}
	// Re-derive from a fresh ring — must match exactly.
	r3 := NewRing(nodes, 0)
	for a, want := range pinned {
		if got := r3.Owner(a); got != want {
			t.Errorf("owner(%s) = %s, want %s", a[:12], got, want)
		}
	}
	// And every node must own something in a modest sample.
	owned := map[string]int{}
	for i := 0; i < 300; i++ {
		owned[r.Owner(addrFor(i))]++
	}
	for _, n := range nodes {
		if owned[n] == 0 {
			t.Errorf("node %s owns nothing across 300 addresses: %v", n, owned)
		}
	}
}

// TestRingRebalanceMovesOnlyRemovedShare pins the consistent-hashing
// property the fabric depends on: removing one peer re-homes only the
// addresses that peer owned; everything else keeps its owner (so their
// cached results stay findable).
func TestRingRebalanceMovesOnlyRemovedShare(t *testing.T) {
	nodes := []string{"http://a:8080", "http://b:8080", "http://c:8080", "http://d:8080"}
	before := NewRing(nodes, 0)
	after := NewRing(nodes[:3], 0) // d removed

	const n = 1000
	moved, wasD := 0, 0
	for i := 0; i < n; i++ {
		a := addrFor(i)
		ob, oa := before.Owner(a), after.Owner(a)
		if ob == "http://d:8080" {
			wasD++
			continue // had to move somewhere
		}
		if ob != oa {
			moved++
			t.Errorf("addr %s moved %s -> %s though its owner survived", a[:12], ob, oa)
		}
	}
	if wasD == 0 {
		t.Fatal("removed node owned nothing; test is vacuous")
	}
	t.Logf("removed node owned %d/%d addresses; %d stable addresses moved", wasD, n, moved)
}

// TestRingEdgeCases covers empty and single-node rings.
func TestRingEdgeCases(t *testing.T) {
	if o := NewRing(nil, 0).Owner(addrFor(1)); o != "" {
		t.Errorf("empty ring owner = %q, want empty", o)
	}
	solo := NewRing([]string{"http://a:8080", "http://a:8080", ""}, 0)
	if solo.Len() != 1 {
		t.Errorf("dedup failed: %v", solo.Nodes())
	}
	if o := solo.Owner(addrFor(2)); o != "http://a:8080" {
		t.Errorf("single-node ring owner = %q", o)
	}
}
