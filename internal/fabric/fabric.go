// Package fabric is the distributed result fabric shared by the rfpsimd
// fleet (docs/fabric.md). Every simulation result is a deterministic pure
// function of its content address, which makes results location- and
// time-independent: a body computed by any daemon, any time, can be served
// byte-identically by every other daemon. The fabric exploits that with
// three tiers behind each daemon's in-memory cache:
//
//   - a persistent, content-addressed disk cache (DiskCache) that survives
//     restarts;
//   - a consistent-hash ring (Ring) assigning every content address a
//     shard owner, so a local miss asks exactly one peer — the owner —
//     via GET /v1/result/{addr} before simulating, and locally computed
//     results are written back to the owner so the fleet converges on
//     one well-known location per address;
//   - single-flight dedup (FlightGroup), so concurrent identical requests
//     — including peer GETs landing while the owner computes — simulate
//     once.
//
// Consistency is trivial by construction: entries are immutable (one
// address, one byte string, forever), so there is nothing to invalidate
// and staleness cannot exist. Every failure mode degrades to "simulate
// locally", never to a wrong answer.
package fabric

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"
)

// timeNow is indirected for tests that need deterministic mtimes.
var timeNow = time.Now

// Options configures a daemon's view of the fabric.
type Options struct {
	// Dir roots the persistent disk cache ("" = no disk tier).
	Dir string
	// MaxBytes caps the disk cache (0 = DefaultDiskMaxBytes, 1 GiB).
	MaxBytes int64
	// Self is this daemon's advertised base URL; it identifies us on the
	// ring so we never "peer-fetch" from ourselves.
	Self string
	// Peers lists every fleet member's base URL (including Self; it is
	// added if missing). Empty disables the peer tier.
	Peers []string
	// PeerTimeout bounds one owner lookup or write-back (0 = 2s).
	PeerTimeout time.Duration
	// Client is the HTTP client for peer traffic (nil = a fresh client).
	Client *http.Client
	// Logger receives fabric diagnostics (nil = slog.Default()).
	Logger *slog.Logger
}

func (o Options) peerTimeout() time.Duration {
	if o.PeerTimeout > 0 {
		return o.PeerTimeout
	}
	return 2 * time.Second
}

// Enabled reports whether the options ask for any fabric tier at all.
func (o Options) Enabled() bool { return o.Dir != "" || len(o.Peers) > 0 }

// peerHealth is one ring member's failure state. A peer that times out or
// errors goes on a fixed cooldown during which owner lookups skip straight
// to local simulation — a dead owner must not add its timeout to every
// miss.
type peerHealth struct {
	mu        sync.Mutex
	failures  int
	coolUntil time.Time
}

// peerCooldown grows linearly in consecutive failures, capped at 30s: a
// single blip costs 2s of skipping, a dead peer settles at one probe per
// 30s.
func (p *peerHealth) markFailure() {
	p.mu.Lock()
	p.failures++
	d := time.Duration(p.failures) * 2 * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	p.coolUntil = timeNow().Add(d)
	p.mu.Unlock()
}

func (p *peerHealth) markSuccess() {
	p.mu.Lock()
	p.failures = 0
	p.coolUntil = time.Time{}
	p.mu.Unlock()
}

func (p *peerHealth) cooling() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.coolUntil.After(timeNow())
}

// Fabric ties the tiers together for one daemon.
type Fabric struct {
	opts    Options
	disk    *DiskCache
	ring    *Ring
	client  *http.Client
	logger  *slog.Logger
	metrics Metrics
	health  map[string]*peerHealth
	pushWG  sync.WaitGroup
}

// New opens the configured tiers. An unopenable cache directory is an
// error (the operator asked for persistence and did not get it); an empty
// Options yields a fabric whose every lookup misses, which is valid but
// pointless — callers usually gate on Options.Enabled first.
func New(opts Options) (*Fabric, error) {
	f := &Fabric{
		opts:   opts,
		client: opts.Client,
		logger: opts.Logger,
		health: make(map[string]*peerHealth),
	}
	if f.client == nil {
		f.client = &http.Client{}
	}
	if f.logger == nil {
		f.logger = slog.Default()
	}
	if opts.Dir != "" {
		d, err := OpenDiskCache(opts.Dir, opts.MaxBytes)
		if err != nil {
			return nil, err
		}
		f.disk = d
	}
	nodes := opts.Peers
	if len(nodes) > 0 && opts.Self != "" {
		found := false
		for _, n := range nodes {
			if normalizeURL(n) == normalizeURL(opts.Self) {
				found = true
				break
			}
		}
		if !found {
			nodes = append(append([]string{}, nodes...), opts.Self)
		}
	}
	normalized := make([]string, 0, len(nodes))
	for _, n := range nodes {
		normalized = append(normalized, normalizeURL(n))
	}
	f.ring = NewRing(normalized, 0)
	for _, n := range f.ring.Nodes() {
		f.health[n] = &peerHealth{}
	}
	f.metrics.f = f
	return f, nil
}

// normalizeURL trims whitespace and a trailing slash so "-peers http://a/"
// and "-self http://a" identify the same ring member.
func normalizeURL(u string) string { return strings.TrimSuffix(strings.TrimSpace(u), "/") }

// Metrics returns the fabric's collector for registry registration.
func (f *Fabric) Metrics() *Metrics { return &f.metrics }

// Ring exposes the hash ring (healthz reporting, tests).
func (f *Fabric) Ring() *Ring { return f.ring }

// HasDisk reports whether the persistent tier is configured.
func (f *Fabric) HasDisk() bool { return f.disk != nil }

// Close waits for in-flight write-backs to finish (each is bounded by
// PeerTimeout, so this terminates promptly).
func (f *Fabric) Close() { f.pushWG.Wait() }

// DiskGet consults the persistent tier.
func (f *Fabric) DiskGet(addr string) ([]byte, bool) {
	if f.disk == nil {
		return nil, false
	}
	return f.disk.Get(addr)
}

// DiskPut stores a body in the persistent tier (best effort: a full disk
// degrades the daemon to memory-only caching, it does not fail requests).
func (f *Fabric) DiskPut(addr string, body []byte) {
	if f.disk == nil {
		return
	}
	if err := f.disk.Put(addr, body); err != nil {
		f.logger.Warn("fabric: disk cache write failed", "addr", addr[:12], "err", err.Error())
	}
}

// Owner returns the ring owner for addr and whether that owner is a
// remote peer (false when the ring is empty, we own the shard, or no self
// identity was configured).
func (f *Fabric) Owner(addr string) (string, bool) {
	if f.ring.Len() < 2 || f.opts.Self == "" {
		return "", false
	}
	owner := f.ring.Owner(addr)
	if owner == "" || owner == normalizeURL(f.opts.Self) {
		return "", false
	}
	return owner, true
}

// FetchFromOwner asks addr's shard owner for the body before simulating
// locally. Any failure — owner cooling down, timeout, non-200, bad body —
// returns miss; the caller simulates. The peer GET's ?wait=1 asks the
// owner to hold the request briefly if the result is being computed right
// now, which is what makes concurrent identical requests across the fleet
// collapse onto one simulation.
func (f *Fabric) FetchFromOwner(ctx context.Context, addr string) ([]byte, bool) {
	owner, remote := f.Owner(addr)
	if !remote {
		return nil, false
	}
	h := f.health[owner]
	if h != nil && h.cooling() {
		f.metrics.peerSkipped.Add(1)
		return nil, false
	}
	ctx, cancel := context.WithTimeout(ctx, f.opts.peerTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/v1/result/"+addr+"?wait=1", nil)
	if err != nil {
		return nil, false
	}
	resp, err := f.client.Do(req)
	if err != nil {
		f.metrics.peerErrors.Add(1)
		if h != nil {
			h.markFailure()
		}
		return nil, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxDiskEntryBytes+1))
	if err != nil || len(body) > maxDiskEntryBytes {
		f.metrics.peerErrors.Add(1)
		if h != nil {
			h.markFailure()
		}
		return nil, false
	}
	switch resp.StatusCode {
	case http.StatusOK:
		if h != nil {
			h.markSuccess()
		}
		f.metrics.peerHits.Add(1)
		return body, true
	case http.StatusNotFound:
		if h != nil {
			h.markSuccess() // the peer is alive, it just has nothing
		}
		f.metrics.peerMisses.Add(1)
		return nil, false
	default:
		f.metrics.peerErrors.Add(1)
		if h != nil {
			h.markFailure()
		}
		return nil, false
	}
}

// PushToOwner writes a locally computed body back to addr's shard owner,
// asynchronously and best-effort: the fleet converges on one well-known
// location per address, but a lost push only costs a future re-simulation.
func (f *Fabric) PushToOwner(addr string, body []byte) {
	owner, remote := f.Owner(addr)
	if !remote {
		return
	}
	h := f.health[owner]
	if h != nil && h.cooling() {
		return
	}
	f.pushWG.Add(1)
	go func() {
		defer f.pushWG.Done()
		ctx, cancel := context.WithTimeout(context.Background(), f.opts.peerTimeout())
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, owner+"/v1/result/"+addr, strings.NewReader(string(body)))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := f.client.Do(req)
		if err != nil {
			f.metrics.pushErrors.Add(1)
			if h != nil {
				h.markFailure()
			}
			return
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
			f.metrics.pushErrors.Add(1)
			f.logger.Debug("fabric: owner push rejected", "addr", addr[:12], "owner", owner, "status", resp.StatusCode)
			return
		}
		if h != nil {
			h.markSuccess()
		}
		f.metrics.pushes.Add(1)
	}()
}

// MarkInflightServed counts a peer result GET served by waiting on an
// in-flight computation (the service's /v1/result handler calls it).
func (f *Fabric) MarkInflightServed() { f.metrics.servedInflight.Add(1) }

// ValidAddr re-exports the address gate for the HTTP handler layer.
func ValidAddr(addr string) bool { return validAddr(addr) }

// String describes the configured tiers for startup logs.
func (f *Fabric) String() string {
	disk := "off"
	if f.disk != nil {
		disk = fmt.Sprintf("dir=%s cap=%dB", f.opts.Dir, f.disk.maxBytes)
	}
	return fmt.Sprintf("disk(%s) ring(%d peers)", disk, f.ring.Len())
}
