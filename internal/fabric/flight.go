package fabric

import (
	"context"
	"sync"
)

// Flight is one in-progress computation of a content address. The leader
// (the goroutine that started it) eventually calls FlightGroup.Complete
// exactly once; everyone else blocks on Done and reads the shared result.
type Flight struct {
	done chan struct{}
	body []byte
	err  error
}

// Done is closed when the flight completes.
func (f *Flight) Done() <-chan struct{} { return f.done }

// Result returns the flight's outcome; only valid after Done is closed.
func (f *Flight) Result() ([]byte, error) { return f.body, f.err }

// FlightGroup deduplicates concurrent identical work by content address
// (single-flight): the first Join for an address becomes the leader and
// simulates; later Joins — and peer GETs that land while the owner is
// computing — wait for the leader's result instead of simulating again.
type FlightGroup struct {
	mu sync.Mutex
	m  map[string]*Flight
}

// Join returns the flight for addr and whether the caller is its leader.
func (g *FlightGroup) Join(addr string) (*Flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[string]*Flight)
	}
	if f, ok := g.m[addr]; ok {
		return f, false
	}
	f := &Flight{done: make(chan struct{})}
	g.m[addr] = f
	return f, true
}

// Complete resolves the flight and releases every waiter. Only the leader
// calls it, exactly once, on every exit path (success, simulation error,
// admission rejection) — a leaked flight would wedge all its followers.
func (g *FlightGroup) Complete(addr string, f *Flight, body []byte, err error) {
	f.body, f.err = body, err
	g.mu.Lock()
	if g.m[addr] == f {
		delete(g.m, addr)
	}
	g.mu.Unlock()
	close(f.done)
}

// Inflight returns the current flight for addr, if any, without joining
// it. The owner's GET /v1/result handler uses this to let a peer wait for
// a computation that is already running instead of 404ing it into a
// duplicate simulation.
func (g *FlightGroup) Inflight(addr string) (*Flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f, ok := g.m[addr]
	return f, ok
}

// Wait blocks until the flight completes or ctx ends, returning the
// flight result or ctx's error.
func (f *Flight) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-f.done:
		return f.body, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
