// Package prng provides a tiny, fast, deterministic pseudo-random number
// generator (SplitMix64) used by the workload generators and by the RFP
// probabilistic confidence counters. Determinism matters: the same seed must
// produce the same trace and the same simulated cycle count on every run,
// which the test suite asserts.
package prng

// Source is a SplitMix64 generator. The zero value is a valid generator
// seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with zero n")
	}
	return s.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// OneIn returns true with probability 1/n. It panics if n <= 0.
func (s *Source) OneIn(n int) bool {
	if n <= 0 {
		panic("prng: OneIn with non-positive n")
	}
	if n == 1 {
		return true
	}
	return s.Intn(n) == 0
}
