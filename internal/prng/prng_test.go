package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(1)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("only %d of 7 values seen", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestOneInPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("OneIn(0) did not panic")
		}
	}()
	New(1).OneIn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(3)
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.25) > 0.01 {
		t.Errorf("Bool(0.25) rate = %v", p)
	}
}

func TestOneInRate(t *testing.T) {
	s := New(9)
	if !s.OneIn(1) {
		t.Error("OneIn(1) must always be true")
	}
	hits := 0
	const n = 160000
	for i := 0; i < n; i++ {
		if s.OneIn(16) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-1.0/16) > 0.005 {
		t.Errorf("OneIn(16) rate = %v, want ~0.0625", p)
	}
}

// Property: Uint64n always in range for arbitrary positive n.
func TestUint64nRangeProperty(t *testing.T) {
	s := New(11)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	_ = s.Uint64() // must not panic
}
