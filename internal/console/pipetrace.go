package console

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rfpsim/internal/core"
	"rfpsim/internal/obs"
	"rfpsim/internal/sample"
	"rfpsim/internal/service"
)

// pipeTraceMaxCycles bounds the traced window: the endpoint exists to
// inspect a few hundred cycles around a point of interest, not to stream
// a whole run into the browser.
const pipeTraceMaxCycles = 2048

// pipeTraceMaxEvents bounds the parsed event list (a pathological window
// can emit several events per uop per cycle).
const pipeTraceMaxEvents = 20000

// PipeTraceRequest asks for a bounded pipeline-event window: the workload
// (catalog name or "trace:<sha256>" reference), the configuration, and
// how many cycles to trace after warmup.
type PipeTraceRequest struct {
	Workload   string             `json:"workload"`
	Config     service.ConfigSpec `json:"config"`
	WarmupUops uint64             `json:"warmup_uops,omitempty"`
	// Cycles is the traced window length (default 256, cap 2048).
	Cycles uint64 `json:"cycles,omitempty"`
}

// PipeTraceEvent is one parsed pipeline event. Event is the stage
// ("dispatch", "issue", "commit", "rfp-exec", ...); Kind is the uop class
// when the line carries one; Detail keeps the remaining key=value pairs
// verbatim (addr=…, fill=…, done=…).
type PipeTraceEvent struct {
	Cycle  uint64 `json:"cycle"`
	Event  string `json:"event"`
	Seq    uint64 `json:"seq,omitempty"`
	PC     string `json:"pc,omitempty"`
	Kind   string `json:"kind,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// PipeTraceResponse is the traced window plus the run summary of the
// bounded simulation that produced it.
type PipeTraceResponse struct {
	Workload  string           `json:"workload"`
	Config    string           `json:"config"`
	FromCycle uint64           `json:"from_cycle"`
	ToCycle   uint64           `json:"to_cycle"`
	Events    []PipeTraceEvent `json:"events"`
	// Truncated reports that the event cap cut the window short.
	Truncated bool `json:"truncated,omitempty"`
}

// handlePipeTrace runs a small in-process simulation with pipeline
// tracing attached for a bounded cycle window and returns the events
// parsed into JSON. The run bypasses the worker pool deliberately: it is
// interactive, tiny (tens of thousands of uops), and its wall time is
// bounded by the uop cap, so queueing it behind batch jobs would make
// the diagram view useless on a busy daemon.
func (c *Console) handlePipeTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req PipeTraceRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	cycles := req.Cycles
	if cycles == 0 {
		cycles = 256
	}
	if cycles > pipeTraceMaxCycles {
		cycles = pipeTraceMaxCycles
	}

	// Resolve through the shared path so trace references, config
	// validation and defaulting behave exactly like a job submission. The
	// measure window only needs to outlast the traced cycle window: at
	// the core's commit width W the window can retire at most W*cycles
	// uops, so 8x is a safe margin without being slow.
	simReq := service.SimRequest{
		Workload:    req.Workload,
		Config:      req.Config,
		WarmupUops:  req.WarmupUops,
		MeasureUops: 8 * cycles,
	}
	if simReq.WarmupUops == 0 {
		simReq.WarmupUops = 2000
	}
	job, _, err := service.ResolveJobWith(simReq, c.svc.Traces())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	var buf bytes.Buffer
	var from, to uint64
	job.AfterWarmup = func(cr *core.Core) {
		from, to = cr.Cycle(), cr.Cycle()+cycles
		cr.AttachPipeTrace(&buf, from, to)
	}
	ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
	defer cancel()
	ctx = obs.WithLogger(obs.WithRunID(ctx, obs.NewRunID()), c.logger)
	if _, err := sample.RunResult(ctx, job); err != nil {
		writeError(w, http.StatusBadRequest, "pipetrace run failed: "+err.Error())
		return
	}

	events, truncated := parsePipeTrace(buf.String())
	writeJSON(w, PipeTraceResponse{
		Workload:  job.Spec.Name,
		Config:    job.Config.Name,
		FromCycle: from,
		ToCycle:   to,
		Events:    events,
		Truncated: truncated,
	})
}

// parsePipeTrace converts the human-readable event lines (format pinned
// by core's TestPipeTraceGolden) into structured events. Unknown tokens
// land in Detail instead of failing: the diagram degrades gracefully if
// the core grows a new event field.
func parsePipeTrace(s string) (events []PipeTraceEvent, truncated bool) {
	events = []PipeTraceEvent{}
	for _, line := range strings.Split(s, "\n") {
		f := strings.Fields(line)
		if len(f) < 3 || f[0] != "cycle" {
			continue
		}
		if len(events) >= pipeTraceMaxEvents {
			return events, true
		}
		cyc, err := strconv.ParseUint(f[1], 10, 64)
		if err != nil {
			continue
		}
		ev := PipeTraceEvent{Cycle: cyc, Event: f[2]}
		var detail []string
		for _, tok := range f[3:] {
			key, val, isKV := strings.Cut(tok, "=")
			switch {
			case isKV && key == "seq":
				if n, err := strconv.ParseUint(val, 10, 64); err == nil {
					ev.Seq = n
					continue
				}
			case isKV && key == "pc":
				ev.PC = val
				continue
			case !isKV && ev.Kind == "":
				ev.Kind = tok
				continue
			}
			detail = append(detail, tok)
		}
		ev.Detail = strings.Join(detail, " ")
		events = append(events, ev)
	}
	return events, false
}
