package console

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rfpsim/internal/champsim"
	"rfpsim/internal/experiments"
	"rfpsim/internal/fabric"
	"rfpsim/internal/isa"
	"rfpsim/internal/obs"
	"rfpsim/internal/service"
	"rfpsim/internal/tracefile"
)

var update = flag.Bool("update", false, "rewrite golden files")

// champsimFixture is the committed ChampSim trace the whole ingestion
// path is tested against (see internal/champsim).
const champsimFixture = "../champsim/testdata/tiny.champsim.gz"

// daemon is one booted rfpsimd-shaped test server: the service handler
// plus the mounted console, exactly the mux cmd/rfpsimd builds.
type daemon struct {
	svc *service.Server
	ts  *httptest.Server
}

func bootDaemon(t *testing.T, cacheDir string) *daemon {
	t.Helper()
	logger, err := obs.NewLogger(io.Discard, "text", "error")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Options{
		Workers: 2,
		Logger:  logger,
		Fabric:  fabric.Options{Dir: cacheDir, Logger: logger},
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	Mount(mux, svc, Options{Logger: logger})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	t.Cleanup(svc.Close)
	return &daemon{svc: svc, ts: ts}
}

// convertFixture cracks the committed ChampSim trace into .rfpt bytes
// in-process — the same conversion `tracegen -from-champsim` runs.
func convertFixture(t *testing.T) []byte {
	t.Helper()
	src, err := champsim.OpenFile(champsimFixture)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	conv := champsim.NewConverter(champsim.NewDecoder(src), "tiny")
	var buf bytes.Buffer
	w := tracefile.NewWriter(&buf)
	var op isa.MicroOp
	for conv.Next(&op) {
		if err := w.Write(&op); err != nil {
			t.Fatal(err)
		}
	}
	if err := conv.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(res.Body)
		t.Fatalf("GET %s: %s: %s", url, res.Status, body)
	}
	if err := json.NewDecoder(res.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func postJSON(t *testing.T, url string, req, resp any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, _ := io.ReadAll(res.Body)
	if res.StatusCode == http.StatusOK && resp != nil {
		if err := json.Unmarshal(body, resp); err != nil {
			t.Fatalf("POST %s: undecodable %q: %v", url, body, err)
		}
	}
	return res.StatusCode, string(body)
}

// waitDone polls the job until it leaves the running state.
func waitDone(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var v JobView
		getJSON(t, base+"/console/api/jobs/"+id, &v)
		if v.State != "running" {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s still running after 60s", id)
	return JobView{}
}

func fetchBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, _ := io.ReadAll(res.Body)
	return res.StatusCode, body
}

// TestConsoleEndToEnd is the headline harness: upload a converted
// ChampSim trace, watch it dedup, run it through the console, download
// the CSV, then restart the daemon on the same cache directory and prove
// the trace and the result both survive on the disk tier with a
// byte-identical CSV.
func TestConsoleEndToEnd(t *testing.T) {
	cacheDir := t.TempDir()
	d := bootDaemon(t, cacheDir)
	base := d.ts.URL

	// The console page and its assets serve from the embedded tree.
	code, index := fetchBody(t, base+"/console/")
	if code != http.StatusOK {
		t.Fatalf("GET /console/ = %d", code)
	}
	for _, frag := range []string{"<title>rfpsim console</title>", `id="jobs"`, `id="pipetrace"`} {
		if !strings.Contains(string(index), frag) {
			t.Errorf("console index missing fragment %q", frag)
		}
	}
	if code, js := fetchBody(t, base+"/console/static/app.js"); code != http.StatusOK || !bytes.Contains(js, []byte("refreshStatus")) {
		t.Errorf("GET /console/static/app.js = %d, want the embedded app", code)
	}

	// Fresh-daemon status: everything zero, fabric tier present.
	var st service.Status
	getJSON(t, base+"/console/api/status", &st)
	if st.Workers != 2 || st.JobsOK != 0 || st.TracesStored != 0 {
		t.Errorf("fresh status = %+v", st)
	}
	if st.Fabric == nil {
		t.Error("fabric snapshot missing from status with a disk tier configured")
	}

	// Upload the converted ChampSim fixture; re-upload must dedup.
	raw := convertFixture(t)
	wantAddr := service.TraceAddress(raw)
	res, err := http.Post(base+"/v1/traces", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var up service.TraceUploadResponse
	if err := json.NewDecoder(res.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if up.Address != wantAddr || up.Dedup {
		t.Fatalf("upload = %+v, want address %s dedup=false", up, wantAddr)
	}
	res, err = http.Post(base+"/v1/traces", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var up2 service.TraceUploadResponse
	if err := json.NewDecoder(res.Body).Decode(&up2); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if !up2.Dedup {
		t.Error("re-upload of identical bytes did not dedup")
	}

	// The workload picker lists the catalog and the uploaded trace.
	var workloads []WorkloadEntry
	getJSON(t, base+"/console/api/workloads", &workloads)
	var haveCatalog, haveTrace bool
	for _, wl := range workloads {
		if wl.Name == "spec06_mcf" {
			haveCatalog = true
		}
		if wl.Name == up.Workload {
			haveTrace = true
			if wl.Uops != up.Uops {
				t.Errorf("picker uops = %d, upload said %d", wl.Uops, up.Uops)
			}
		}
	}
	if !haveCatalog || !haveTrace {
		t.Fatalf("picker missing catalog=%t trace=%t entries", haveCatalog, haveTrace)
	}

	// Submit the trace through the console and poll to completion.
	simReq := service.SimRequest{
		Workload:    up.Workload,
		Config:      service.ConfigSpec{RFP: true},
		WarmupUops:  1000,
		MeasureUops: 4000,
	}
	var submitted JobView
	if code, body := postJSON(t, base+"/console/api/jobs", simReq, &submitted); code != http.StatusOK {
		t.Fatalf("submit = %d: %s", code, body)
	}
	if submitted.Workload != service.TraceWorkloadPrefix+wantAddr[:16] {
		t.Errorf("job workload = %q", submitted.Workload)
	}
	done := waitDone(t, base, submitted.ID)
	if done.State != "done" || done.Tier != "miss" {
		t.Fatalf("first run = %+v, want done/miss", done)
	}
	if done.IPC <= 0 || done.Cycles == 0 {
		t.Errorf("first run has empty metrics: %+v", done)
	}

	// The per-job CSV is the byte-pinned sweep schema.
	code, gotCSV := fetchBody(t, base+"/console/api/jobs/"+submitted.ID+"/csv")
	if code != http.StatusOK {
		t.Fatalf("job CSV = %d", code)
	}
	wantCSV := expectedCSV(t, done)
	if string(gotCSV) != wantCSV {
		t.Errorf("job CSV:\n%s\nwant:\n%s", gotCSV, wantCSV)
	}
	if _, agg := fetchBody(t, base+"/console/api/csv"); string(agg) != wantCSV {
		t.Errorf("aggregate CSV diverges from the only job's CSV:\n%s", agg)
	}

	// The raw result body parses as a SimResponse for the trace spec.
	_, resultBody := fetchBody(t, base+"/console/api/jobs/"+submitted.ID+"/result")
	var simResp service.SimResponse
	if err := json.Unmarshal(resultBody, &simResp); err != nil {
		t.Fatalf("result body: %v", err)
	}
	if simResp.Workload != done.Workload {
		t.Errorf("result workload = %q, want %q", simResp.Workload, done.Workload)
	}

	// Resubmitting is a pure cache replay.
	var again JobView
	postJSON(t, base+"/console/api/jobs", simReq, &again)
	if v := waitDone(t, base, again.ID); v.Tier != "hit" {
		t.Errorf("second run tier = %q, want hit", v.Tier)
	}

	// Restart on the same cache directory: the trace must resolve from
	// the fabric disk tier and the result must replay from it,
	// byte-identically.
	d.ts.Close()
	d.svc.Close()
	d2 := bootDaemon(t, cacheDir)
	base2 := d2.ts.URL

	var st2 service.Status
	getJSON(t, base2+"/console/api/status", &st2)
	if st2.TracesStored != 0 {
		t.Errorf("restarted daemon has %d traces in memory, want 0 (disk only)", st2.TracesStored)
	}
	var replay JobView
	if code, body := postJSON(t, base2+"/console/api/jobs", simReq, &replay); code != http.StatusOK {
		t.Fatalf("post-restart submit = %d: %s", code, body)
	}
	replayDone := waitDone(t, base2, replay.ID)
	if replayDone.State != "done" || replayDone.Tier != "disk" {
		t.Fatalf("post-restart run = %+v, want done/disk", replayDone)
	}
	if _, csv2 := fetchBody(t, base2+"/console/api/jobs/"+replay.ID+"/csv"); string(csv2) != wantCSV {
		t.Errorf("post-restart CSV diverges:\n%s\nwant:\n%s", csv2, wantCSV)
	}

	// Structured errors for bad submissions.
	if code, body := postJSON(t, base2+"/console/api/jobs", service.SimRequest{Workload: "no_such_workload"}, nil); code != http.StatusBadRequest || !strings.Contains(body, "error") {
		t.Errorf("bad submit = %d: %s", code, body)
	}
}

// expectedCSV renders the sweep schema for one finished console job using
// the same experiments helpers the server does — any drift between the
// console CSV and sweep.Summary.WriteCSV breaks here.
func expectedCSV(t *testing.T, v JobView) string {
	t.Helper()
	var buf bytes.Buffer
	cw := csv.NewWriter(&buf)
	if err := cw.Write(experiments.MetricsCSVHeader); err != nil {
		t.Fatal(err)
	}
	label := "console/" + v.Workload
	for _, row := range [][]string{
		{label, "ipc", experiments.FormatMetric(v.IPC)},
		{label, "cycles", experiments.FormatCount(v.Cycles)},
		{label, "instructions", experiments.FormatCount(v.Instructions)},
	} {
		if err := cw.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	cw.Flush()
	return buf.String()
}

// TestConsoleIndexGolden pins the served console page byte for byte: the
// index is an API surface (CI smoke greps it, operators bookmark it), so
// edits to the embedded HTML must be deliberate.
func TestConsoleIndexGolden(t *testing.T) {
	d := bootDaemon(t, "")
	code, body := fetchBody(t, d.ts.URL+"/console/")
	if code != http.StatusOK {
		t.Fatalf("GET /console/ = %d", code)
	}
	golden := filepath.Join("testdata", "index.golden")
	if *update {
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("served index diverges from %s (run with -update after a deliberate UI change)", golden)
	}
}

// TestConsoleStatusGolden pins the status JSON shape on a fresh
// fixed-size daemon: field names and zero values are what dashboards and
// the embedded app bind to.
func TestConsoleStatusGolden(t *testing.T) {
	d := bootDaemon(t, t.TempDir())
	code, body := fetchBody(t, d.ts.URL+"/console/api/status")
	if code != http.StatusOK {
		t.Fatalf("GET status = %d", code)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, body, "", "  "); err != nil {
		t.Fatal(err)
	}
	pretty.WriteByte('\n')
	golden := filepath.Join("testdata", "status.golden")
	if *update {
		if err := os.WriteFile(golden, pretty.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if pretty.String() != string(want) {
		t.Errorf("status JSON diverges from golden:\n%s\nwant:\n%s", pretty.String(), want)
	}
}

// TestConsolePipeTrace drives the diagram endpoint: a bounded window of
// parsed events, each inside the reported cycle range, with the pipeline
// stages the UI colors.
func TestConsolePipeTrace(t *testing.T) {
	d := bootDaemon(t, "")
	url := d.ts.URL + "/console/api/pipetrace"

	var pt PipeTraceResponse
	req := PipeTraceRequest{
		Workload: "spec06_mcf",
		Config:   service.ConfigSpec{RFP: true},
		Cycles:   64,
	}
	if code, body := postJSON(t, url, req, &pt); code != http.StatusOK {
		t.Fatalf("pipetrace = %d: %s", code, body)
	}
	if len(pt.Events) == 0 {
		t.Fatal("pipetrace returned no events")
	}
	if pt.ToCycle != pt.FromCycle+64 {
		t.Errorf("window = [%d, %d), want 64 cycles", pt.FromCycle, pt.ToCycle)
	}
	stages := map[string]bool{}
	for _, ev := range pt.Events {
		if ev.Cycle < pt.FromCycle || ev.Cycle >= pt.ToCycle {
			t.Fatalf("event outside window: %+v", ev)
		}
		stages[ev.Event] = true
		if ev.Event == "dispatch" && ev.Seq == 0 {
			t.Fatalf("dispatch event lost its seq: %+v", ev)
		}
	}
	for _, want := range []string{"dispatch", "issue", "commit"} {
		if !stages[want] {
			t.Errorf("no %q events in a 64-cycle window (stages seen: %v)", want, stages)
		}
	}

	// Unknown workloads fail loudly, not with an empty diagram.
	if code, _ := postJSON(t, url, PipeTraceRequest{Workload: "nope"}, nil); code != http.StatusBadRequest {
		t.Errorf("pipetrace of unknown workload = %d, want 400", code)
	}

	// Oversized windows clamp instead of erroring.
	var big PipeTraceResponse
	req.Cycles = 1 << 20
	if code, body := postJSON(t, url, req, &big); code != http.StatusOK {
		t.Fatalf("clamped pipetrace = %d: %s", code, body)
	}
	if big.ToCycle-big.FromCycle != pipeTraceMaxCycles {
		t.Errorf("window = %d cycles, want clamp to %d", big.ToCycle-big.FromCycle, pipeTraceMaxCycles)
	}
}

// TestParsePipeTrace pins the parser against the exact line format core's
// golden test guarantees.
func TestParsePipeTrace(t *testing.T) {
	input := "cycle 1042 dispatch  seq=87 pc=0x20004 load addr=0x8000040\n" +
		"cycle 1042 rfp-exec  seq=87 addr=0x8000040 fill=1047 armed=1044\n" +
		"cycle 1046 commit    seq=85 pc=0x20008 alu\n" +
		"garbage line\n"
	events, truncated := parsePipeTrace(input)
	if truncated {
		t.Error("tiny input reported truncated")
	}
	want := []PipeTraceEvent{
		{Cycle: 1042, Event: "dispatch", Seq: 87, PC: "0x20004", Kind: "load", Detail: "addr=0x8000040"},
		{Cycle: 1042, Event: "rfp-exec", Seq: 87, Detail: "addr=0x8000040 fill=1047 armed=1044"},
		{Cycle: 1046, Event: "commit", Seq: 85, PC: "0x20008", Kind: "alu"},
	}
	if len(events) != len(want) {
		t.Fatalf("parsed %d events, want %d: %+v", len(events), len(want), events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}
