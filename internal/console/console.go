// Package console is rfpsimd's embedded browser UI: a self-contained,
// dependency-free operator console served from the daemon's own process
// under /console/. It submits catalog or uploaded-trace jobs through the
// exact tier walk a POST /v1/sim runs (service.Server.Do), watches queue
// depth, tenant queues and cache/fabric hit ratios live off the same
// counters /metrics exposes (service.Status), downloads per-job and
// aggregate CSVs in the byte-pinned sweep schema, and renders bounded
// pipeline-trace windows as per-cycle diagrams.
//
// Everything the browser loads — HTML, JS, CSS — is compiled into the
// binary with go:embed; the console works on an air-gapped machine and
// never fetches an external asset. The JSON API under /console/api/ is
// what the embedded app consumes; it is exercised end to end (upload →
// simulate → poll → CSV download) by the package tests and the CI
// console-smoke job. See docs/console.md.
package console

import (
	"embed"
	"encoding/json"
	"io/fs"
	"log/slog"
	"net/http"
	"sync"

	"rfpsim/internal/service"
	"rfpsim/internal/trace"
)

//go:embed static
var staticFS embed.FS

// Console serves the UI and its JSON API on top of a service.Server. It
// keeps its own bounded in-memory job log (the daemon's result cache
// stores bodies by content address; the console additionally remembers
// which jobs THIS UI submitted, in order, with their outcome).
type Console struct {
	svc    *service.Server
	logger *slog.Logger

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // submission order, oldest first
	maxJobs int
}

// Options configures New.
type Options struct {
	// Logger receives console events (nil = slog.Default()).
	Logger *slog.Logger
	// MaxJobs bounds the in-memory job log; the oldest finished jobs are
	// dropped past it (0 = 256).
	MaxJobs int
}

// New builds a console over svc.
func New(svc *service.Server, opts Options) *Console {
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	maxJobs := opts.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 256
	}
	return &Console{
		svc:     svc,
		logger:  logger,
		jobs:    make(map[string]*job),
		maxJobs: maxJobs,
	}
}

// Handler returns the console's HTTP handler. Mount it at /console/ (the
// routes are absolute, matching what the embedded app requests).
func (c *Console) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/console", c.handleIndex)
	mux.HandleFunc("/console/", c.handleIndex)
	static, err := fs.Sub(staticFS, "static")
	if err != nil {
		// The subtree is embedded at compile time; failure here is a
		// build defect, not a runtime condition.
		panic("console: embedded static tree missing: " + err.Error())
	}
	mux.Handle("/console/static/", http.StripPrefix("/console/static/", http.FileServerFS(static)))
	mux.HandleFunc("/console/api/status", c.handleStatus)
	mux.HandleFunc("/console/api/workloads", c.handleWorkloads)
	mux.HandleFunc("/console/api/jobs", c.handleJobs)
	mux.HandleFunc("/console/api/jobs/", c.handleJobByID)
	mux.HandleFunc("/console/api/csv", c.handleAggregateCSV)
	mux.HandleFunc("/console/api/pipetrace", c.handlePipeTrace)
	return mux
}

// handleIndex serves the embedded single-page app.
func (c *Console) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/console" && r.URL.Path != "/console/" {
		http.NotFound(w, r)
		return
	}
	body, err := staticFS.ReadFile("static/index.html")
	if err != nil {
		http.Error(w, "console: embedded index missing", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(body)
}

// handleStatus serves the live operational snapshot the dashboard polls:
// service.Status, verbatim — the console can never disagree with a
// Prometheus dashboard scraped off the same daemon.
func (c *Console) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, c.svc.Status())
}

// WorkloadEntry is one submittable workload in the picker: a catalog
// entry, or an uploaded trace resolvable as "trace:<sha256>".
type WorkloadEntry struct {
	Name     string `json:"name"`
	Category string `json:"category"`
	// Uops is the decoded length for uploaded traces (0 for catalog
	// entries, whose generators are endless).
	Uops uint64 `json:"uops,omitempty"`
}

// handleWorkloads lists everything the submit form can run: the full
// catalog in category order, then the trace store's working set.
func (c *Console) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	entries := []WorkloadEntry{}
	for _, sp := range trace.Catalog() {
		entries = append(entries, WorkloadEntry{Name: sp.Name, Category: string(sp.Category)})
	}
	for _, ti := range c.svc.Traces().List() {
		entries = append(entries, WorkloadEntry{Name: ti.Workload, Category: "trace-file", Uops: ti.Uops})
	}
	writeJSON(w, entries)
}

// writeJSON renders v as the response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeError renders the console API's error shape, mirroring the
// daemon's structured JSON errors.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"status": "error", "error": msg})
}

// Mount registers the console on mux (rfpsimd calls this; tests drive
// Handler directly).
func Mount(mux *http.ServeMux, svc *service.Server, opts Options) *Console {
	c := New(svc, opts)
	mux.Handle("/console", c.Handler())
	mux.Handle("/console/", c.Handler())
	return c
}
