// rfpsim console: a dependency-free single-page app over /console/api/.
// Everything here is plain fetch + DOM; the daemon serves this file from
// its own binary (go:embed), so the console works with no network access
// beyond the daemon itself.
"use strict";

const $ = (id) => document.getElementById(id);

// ---- status tiles -------------------------------------------------------

function tile(label, value, cls) {
  const div = document.createElement("div");
  div.className = "tile" + (cls ? " " + cls : "");
  const v = document.createElement("div");
  v.className = "value";
  v.textContent = value;
  const l = document.createElement("div");
  l.className = "label";
  l.textContent = label;
  div.append(v, l);
  return div;
}

function pct(x) { return (100 * x).toFixed(1) + "%"; }

async function refreshStatus() {
  try {
    const st = await (await fetch("/console/api/status")).json();
    const box = $("status");
    box.replaceChildren(
      tile("workers", st.workers),
      tile("queued", st.jobs_queued, st.jobs_queued >= st.queue_depth ? "warn" : ""),
      tile("running", st.jobs_running),
      tile("tenants queued", st.tenants_queued),
      tile("jobs ok", st.jobs_ok),
      tile("jobs failed", st.jobs_failed + st.jobs_rejected, st.jobs_failed + st.jobs_rejected > 0 ? "warn" : ""),
      tile("cache hit ratio", pct(st.cache_hit_ratio)),
      tile("cache entries", st.cache_entries),
      tile("dedup", st.dedup),
      tile("traces stored", st.traces_stored),
      tile("trace rejects", st.trace_rejects, st.trace_rejects > 0 ? "warn" : ""),
    );
    if (st.fabric) {
      box.append(
        tile("ring peers", st.fabric.ring_peers),
        tile("disk entries", st.fabric.disk_entries),
        tile("disk hits", st.fabric.disk_hits),
        tile("peer hits", st.fabric.peer_hits),
      );
    }
    if (st.draining) box.append(tile("state", "draining", "warn"));
  } catch (e) {
    $("status").replaceChildren(tile("daemon", "unreachable", "warn"));
  }
}

// ---- workload pickers ---------------------------------------------------

async function refreshWorkloads() {
  const entries = await (await fetch("/console/api/workloads")).json();
  for (const sel of [$("workload"), $("pt-workload")]) {
    const prev = sel.value;
    sel.replaceChildren();
    for (const e of entries) {
      const opt = document.createElement("option");
      opt.value = e.name;
      opt.textContent = e.name + " (" + e.category + (e.uops ? ", " + e.uops + " uops" : "") + ")";
      sel.append(opt);
    }
    if (prev) sel.value = prev;
  }
}

// ---- job submission + log ----------------------------------------------

async function submitJob(ev) {
  ev.preventDefault();
  const req = {
    workload: $("workload").value,
    config: { rfp: $("rfp").checked },
    warmup_uops: Number($("warmup").value),
    measure_uops: Number($("measure").value),
  };
  if ($("sampled").checked) req.sampling = {};
  const res = await fetch("/console/api/jobs", {
    method: "POST",
    headers: { "Content-Type": "application/json" },
    body: JSON.stringify(req),
  });
  if (!res.ok) alert("submit failed: " + (await res.json()).error);
  refreshJobs();
}

async function uploadTrace(ev) {
  ev.preventDefault();
  const file = $("trace-file").files[0];
  if (!file) return;
  const res = await fetch("/v1/traces", { method: "POST", body: await file.arrayBuffer() });
  const body = await res.json();
  $("upload-result").textContent = res.ok
    ? body.workload + " (" + body.uops + " uops" + (body.dedup ? ", dedup" : "") + ")"
    : "rejected: " + body.error;
  refreshWorkloads();
}

async function refreshJobs() {
  const jobs = await (await fetch("/console/api/jobs")).json();
  const body = $("jobs-body");
  body.replaceChildren();
  for (const j of jobs) {
    const tr = document.createElement("tr");
    const links = j.state === "done"
      ? `<a href="/console/api/jobs/${j.id}/csv" download="${j.id}.csv">csv</a> <a href="/console/api/jobs/${j.id}/result">json</a>`
      : "";
    tr.innerHTML =
      `<td class="mono">${j.id}</td><td>${j.workload}</td>` +
      `<td class="state-${j.state}">${j.state}${j.error ? ": " + j.error : ""}</td>` +
      `<td>${j.tier || ""}</td>` +
      `<td>${j.ipc ? j.ipc.toFixed(4) : ""}</td>` +
      `<td>${j.cycles || ""}</td><td>${j.instructions || ""}</td><td>${links}</td>`;
    body.append(tr);
  }
}

// ---- pipeline trace diagram --------------------------------------------

const EVENT_ORDER = ["dispatch", "issue", "commit"];

async function runPipeTrace(ev) {
  ev.preventDefault();
  const req = {
    workload: $("pt-workload").value,
    config: { rfp: $("pt-rfp").checked },
    cycles: Number($("pt-cycles").value),
  };
  const res = await fetch("/console/api/pipetrace", {
    method: "POST",
    headers: { "Content-Type": "application/json" },
    body: JSON.stringify(req),
  });
  const box = $("pipetrace");
  if (!res.ok) {
    box.textContent = "pipetrace failed: " + (await res.json()).error;
    return;
  }
  box.replaceChildren(renderDiagram(await res.json()));
}

// renderDiagram lays events out as a grid: one row per uop (seq), one
// column per cycle, each cell marked with the pipeline stage that touched
// the uop that cycle. RFP events get their own accent so prefetch timing
// is visible against the demand stream.
function renderDiagram(pt) {
  const wrap = document.createElement("div");
  const head = document.createElement("p");
  head.textContent = `${pt.workload} / ${pt.config}: cycles ${pt.from_cycle}..${pt.to_cycle}` +
    ` (${pt.events.length} events${pt.truncated ? ", truncated" : ""})`;
  wrap.append(head);
  if (!pt.events.length) return wrap;

  const seqs = [...new Set(pt.events.filter(e => e.seq).map(e => e.seq))].sort((a, b) => a - b);
  const table = document.createElement("table");
  table.className = "diagram";
  for (const seq of seqs.slice(0, 64)) {
    const evs = pt.events.filter(e => e.seq === seq);
    const tr = document.createElement("tr");
    const th = document.createElement("th");
    const pc = evs.find(e => e.pc);
    th.textContent = `#${seq} ${evs[0].kind || ""} ${pc ? pc.pc : ""}`;
    tr.append(th);
    for (let c = pt.from_cycle; c < pt.to_cycle; c++) {
      const td = document.createElement("td");
      const here = evs.filter(e => e.cycle === c);
      if (here.length) {
        const ev = here.sort((a, b) =>
          EVENT_ORDER.indexOf(a.event) - EVENT_ORDER.indexOf(b.event))[0];
        td.className = "ev ev-" + ev.event.replace(/[^a-z]/g, "");
        td.title = here.map(e => `${e.event} ${e.detail || ""}`).join("\n");
        td.textContent = ev.event[0].toUpperCase();
      }
      tr.append(td);
    }
    table.append(tr);
  }
  wrap.append(table);
  return wrap;
}

// ---- wiring -------------------------------------------------------------

$("submit-form").addEventListener("submit", submitJob);
$("upload-form").addEventListener("submit", uploadTrace);
$("pipetrace-form").addEventListener("submit", runPipeTrace);
refreshStatus();
refreshWorkloads();
refreshJobs();
setInterval(refreshStatus, 2000);
setInterval(refreshJobs, 2000);
