package console

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"

	"rfpsim/internal/experiments"
	"rfpsim/internal/obs"
	"rfpsim/internal/service"
)

// job is one console submission. The daemon's result cache owns the body
// by content address; the console additionally remembers which jobs this
// UI submitted, in order, with outcome and serving tier.
type job struct {
	mu sync.Mutex
	// id is the run ID (X-Rfpsimd-Run-Id), minted at submission so every
	// log line of the job correlates with the console row.
	id string
	// workload is the resolved spec name ("spec06_mcf", "trace:1fd9…").
	workload string
	// key is the request's content address.
	key string
	req service.SimRequest

	state string // "running", "done" or "error"
	tier  string
	err   string
	body  []byte
	resp  *service.SimResponse
	done  chan struct{}
}

// JobView is the JSON shape of one job row.
type JobView struct {
	ID       string `json:"id"`
	Workload string `json:"workload"`
	Key      string `json:"key"`
	State    string `json:"state"`
	Tier     string `json:"tier,omitempty"`
	Error    string `json:"error,omitempty"`
	// IPC, Cycles and Instructions are filled once the job is done.
	IPC          float64 `json:"ipc,omitempty"`
	Cycles       uint64  `json:"cycles,omitempty"`
	Instructions uint64  `json:"instructions,omitempty"`
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.id,
		Workload: j.workload,
		Key:      j.key,
		State:    j.state,
		Tier:     j.tier,
		Error:    j.err,
	}
	if j.resp != nil {
		v.IPC = j.resp.IPC
		v.Cycles = j.resp.Cycles
		v.Instructions = j.resp.Instructions
	}
	return v
}

// handleJobs is POST /console/api/jobs (submit a service.SimRequest; the
// response carries the run ID to poll) and GET (the job log, newest
// first).
func (c *Console) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req service.SimRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		v, err := c.submit(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, v)
	case http.MethodGet:
		c.mu.Lock()
		views := make([]JobView, 0, len(c.order))
		for i := len(c.order) - 1; i >= 0; i-- {
			views = append(views, c.jobs[c.order[i]].view())
		}
		c.mu.Unlock()
		writeJSON(w, views)
	default:
		writeError(w, http.StatusMethodNotAllowed, "POST or GET only")
	}
}

// submit validates req eagerly (bad requests fail the POST, not a
// background goroutine) and runs it through the daemon's full tier walk
// under the "console" tenant, so console jobs queue fairly against API
// traffic and share every cache tier with it.
func (c *Console) submit(req service.SimRequest) (JobView, error) {
	rjob, key, err := service.ResolveJobWith(req, c.svc.Traces())
	if err != nil {
		return JobView{}, err
	}
	j := &job{
		id:       obs.NewRunID(),
		workload: rjob.Spec.Name,
		key:      key,
		req:      req,
		state:    "running",
		done:     make(chan struct{}),
	}
	c.mu.Lock()
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	c.evictLocked()
	c.mu.Unlock()

	go func() {
		ctx := obs.WithLogger(obs.WithRunID(context.Background(), j.id), c.logger)
		res, err := c.svc.Do(ctx, j.req, "console")
		j.mu.Lock()
		defer j.mu.Unlock()
		defer close(j.done)
		if err != nil {
			j.state = "error"
			j.err = err.Error()
			return
		}
		var resp service.SimResponse
		if err := json.Unmarshal(res.Body, &resp); err != nil {
			j.state = "error"
			j.err = "undecodable result body: " + err.Error()
			return
		}
		j.state = "done"
		j.tier = res.Tier
		j.body = res.Body
		j.resp = &resp
	}()
	return j.view(), nil
}

// evictLocked drops the oldest finished jobs past the log bound. Running
// jobs are never dropped — their goroutines still need the entry.
func (c *Console) evictLocked() {
	for len(c.order) > c.maxJobs {
		dropped := false
		for i, id := range c.order {
			j := c.jobs[id]
			j.mu.Lock()
			running := j.state == "running"
			j.mu.Unlock()
			if running {
				continue
			}
			delete(c.jobs, id)
			c.order = append(c.order[:i], c.order[i+1:]...)
			dropped = true
			break
		}
		if !dropped {
			return
		}
	}
}

// handleJobByID serves /console/api/jobs/{id}[/csv|/result].
func (c *Console) handleJobByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/console/api/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	switch sub {
	case "":
		writeJSON(w, j.view())
	case "result":
		j.mu.Lock()
		body, state := j.body, j.state
		j.mu.Unlock()
		if state != "done" {
			writeError(w, http.StatusConflict, "job is "+state+", no result body yet")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case "csv":
		j.mu.Lock()
		resp, state, workload := j.resp, j.state, j.workload
		j.mu.Unlock()
		if state != "done" {
			writeError(w, http.StatusConflict, "job is "+state+", no CSV yet")
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		if err := writeJobsCSV(w, []csvRow{{label: "console/" + workload, resp: resp}}); err != nil {
			c.logger.Error("console csv write failed", "err", err.Error())
		}
	default:
		writeError(w, http.StatusNotFound, "unknown job subresource "+sub)
	}
}

// handleAggregateCSV renders every finished job, in submission order, in
// the exact schema sweep aggregates use — a console session's results
// paste straight into the same plotting pipeline as an rfpsweep CSV.
func (c *Console) handleAggregateCSV(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	var rows []csvRow
	c.mu.Lock()
	for _, id := range c.order {
		j := c.jobs[id]
		j.mu.Lock()
		if j.state == "done" {
			rows = append(rows, csvRow{label: "console/" + j.workload, resp: j.resp})
		}
		j.mu.Unlock()
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "text/csv")
	if err := writeJobsCSV(w, rows); err != nil {
		c.logger.Error("console csv write failed", "err", err.Error())
	}
}

// csvRow is one finished job to render.
type csvRow struct {
	label string
	resp  *service.SimResponse
}

// writeJobsCSV emits the byte-pinned sweep schema — the header and the
// ipc/cycles/instructions rows per unit, formatted by the same
// experiments helpers sweep.Summary.WriteCSV uses. A console CSV and a
// sweep CSV of the same simulations are byte-identical modulo labels.
func writeJobsCSV(w io.Writer, rows []csvRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(experiments.MetricsCSVHeader); err != nil {
		return err
	}
	for _, row := range rows {
		if row.resp == nil {
			return errors.New("console: finished job without a response")
		}
		cells := [][]string{
			{row.label, "ipc", experiments.FormatMetric(row.resp.IPC)},
			{row.label, "cycles", experiments.FormatCount(row.resp.Cycles)},
			{row.label, "instructions", experiments.FormatCount(row.resp.Instructions)},
		}
		for _, cell := range cells {
			if err := cw.Write(cell); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
