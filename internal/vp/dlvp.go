package vp

import (
	"rfpsim/internal/config"
	"rfpsim/internal/prng"
)

// dlvpEntry tracks the address behaviour of a load under one control-flow
// path: base address, address stride, confidence and an in-flight counter.
type dlvpEntry struct {
	tag      uint16
	valid    bool
	hasBase  bool
	lastAddr uint64
	stride   int64
	conf     uint8
	inflight int16
	lru      uint64
}

// DLVP is the path-based load address predictor of Sheikh, Cain and
// Damodaran (MICRO 2017): at fetch it predicts the load's address from the
// load PC hashed with global branch path history, probes the L1 with the
// prediction, and uses the probed data as a value prediction if it arrives
// before the load allocates. Being flush-on-mispredict, it needs a high
// confidence threshold; being fetch-launched, it also needs the no-forward
// filter below to avoid in-flight-store hazards. Both filters, plus L1
// port availability and probe timing, produce the coverage waterfall of
// Figure 16 (instrumented in the core).
type DLVP struct {
	sets    int
	ways    int
	entries []dlvpEntry
	// High-confidence threshold for actually using a prediction; any
	// lower confidence still counts as "address predictable" in the
	// Figure 16 accounting.
	confHigh uint8
	confMax  uint8
	rng      *prng.Source
	prob     int
	stamp    uint64

	// noFwd is a per-PC filter that suppresses predictions for loads that
	// were recently forwarded from in-flight stores: for those, the L1
	// does not hold the right data at probe time.
	noFwd     []uint8
	noFwdMask uint64
}

// dlvpWays is the predictor associativity.
const dlvpWays = 4

// NewDLVP builds the predictor from cfg.
func NewDLVP(cfg config.VPConfig, seed uint64) *DLVP {
	entries := cfg.Entries
	if entries < dlvpWays {
		entries = dlvpWays
	}
	entries -= entries % dlvpWays
	prob := cfg.ConfProb
	if prob <= 0 {
		prob = 1
	}
	nfSize := 4096
	return &DLVP{
		sets:      entries / dlvpWays,
		ways:      dlvpWays,
		entries:   make([]dlvpEntry, entries),
		confHigh:  uint8(cfg.ConfMax),
		confMax:   uint8(cfg.ConfMax),
		rng:       prng.New(seed),
		prob:      prob,
		noFwd:     make([]uint8, nfSize),
		noFwdMask: uint64(nfSize - 1),
	}
}

func (d *DLVP) index(pc, path uint64) uint64 {
	h := pc ^ path*0x9E3779B97F4A7C15
	return (h ^ h>>13) % uint64(d.sets)
}

func (d *DLVP) tagOf(pc, path uint64) uint16 {
	h := pc ^ path>>5
	return uint16(h>>3) | 1
}

func (d *DLVP) find(pc, path uint64) *dlvpEntry {
	base := int(d.index(pc, path)) * d.ways
	tag := d.tagOf(pc, path)
	for i := base; i < base+d.ways; i++ {
		if d.entries[i].valid && d.entries[i].tag == tag {
			return &d.entries[i]
		}
	}
	return nil
}

func (d *DLVP) alloc(pc, path uint64) *dlvpEntry {
	base := int(d.index(pc, path)) * d.ways
	victim := base
	for i := base; i < base+d.ways; i++ {
		e := &d.entries[i]
		if !e.valid {
			victim = i
			break
		}
		// Trained entries are precious: victimize the lowest-confidence
		// way first so one-shot paths do not churn out stable patterns.
		v := &d.entries[victim]
		if e.conf < v.conf || (e.conf == v.conf && e.lru < v.lru) {
			victim = i
		}
	}
	d.stamp++
	d.entries[victim] = dlvpEntry{tag: d.tagOf(pc, path), valid: true, lru: d.stamp}
	return &d.entries[victim]
}

// Prediction is the outcome of a DLVP lookup at fetch.
type Prediction struct {
	// Addr is the predicted address (valid when Match).
	Addr uint64
	// Match reports whether the predictor had any trained entry whose
	// stride pattern currently repeats (the raw "address predictable"
	// population of Figure 16).
	Match bool
	// HighConfidence reports whether the entry passes the usage
	// threshold.
	HighConfidence bool
}

// PredictAddr looks up the predictor at fetch and counts the instance in
// flight. A missing entry is created here (not at first retirement) so the
// in-flight counter counts every instance from the start; creating it at
// retirement would leave the counter permanently short by the pipeline
// occupancy at creation time, shifting every strided prediction.
func (d *DLVP) PredictAddr(pc, path uint64) Prediction {
	e := d.find(pc, path)
	if e == nil {
		e = d.alloc(pc, path)
		e.lastAddr = 0
		e.conf = 0
	}
	if e.inflight < 1<<14 {
		e.inflight++
	}
	d.stamp++
	e.lru = d.stamp
	addr := uint64(int64(e.lastAddr) + e.stride*int64(e.inflight))
	return Prediction{
		Addr:           addr,
		Match:          e.hasBase && e.conf > 0,
		HighConfidence: e.hasBase && e.conf >= d.confHigh,
	}
}

// TrainAddr updates the address pattern at load retirement.
func (d *DLVP) TrainAddr(pc, path, addr uint64) {
	e := d.find(pc, path)
	if e == nil {
		// Entry evicted while the load was in flight: recreate.
		e = d.alloc(pc, path)
		e.lastAddr = addr
		e.hasBase = true
		return
	}
	if e.inflight > 0 {
		e.inflight--
	}
	if !e.hasBase {
		e.lastAddr = addr
		e.hasBase = true
		return
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride {
		if e.conf < d.confMax && d.rng.OneIn(d.prob) {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
	}
	e.lastAddr = addr
}

// Squash releases the in-flight slot of a squashed load.
func (d *DLVP) Squash(pc, path uint64) {
	if e := d.find(pc, path); e != nil && e.inflight > 0 {
		e.inflight--
	}
}

func (d *DLVP) nfIndex(pc uint64) uint64 { return (pc >> 2) & d.noFwdMask }

// AllowedByNoFwd reports whether the no-forward filter permits predicting
// this load (i.e. it has not recently taken data from an in-flight store).
func (d *DLVP) AllowedByNoFwd(pc uint64) bool {
	return d.noFwd[d.nfIndex(pc)] < 2
}

// TrainFwd records whether the committed load was store-forwarded. The
// counter saturates at 3 and decays on non-forwarded instances, so a
// phase-change eventually re-enables prediction.
func (d *DLVP) TrainFwd(pc uint64, wasForwarded bool) {
	i := d.nfIndex(pc)
	if wasForwarded {
		if d.noFwd[i] < 3 {
			d.noFwd[i]++
		}
	} else if d.noFwd[i] > 0 {
		d.noFwd[i]--
	}
}
