package vp

import (
	"testing"
	"testing/quick"

	"rfpsim/internal/config"
)

// Property: for any value stride and base, a long consistent run makes
// EVES predict the correct next value with the right number of
// outstanding instances folded in.
func TestEVESStrideLearningProperty(t *testing.T) {
	f := func(strideRaw int16, baseRaw uint32, outstandingRaw uint8) bool {
		stride := int64(strideRaw)
		base := uint64(baseRaw)
		outstanding := int(outstandingRaw%6) + 1
		v := NewEVES(config.VPConfig{Entries: 256, ConfMax: 3, ConfProb: 1}, 1)
		pc := uint64(0x40)
		val := base
		for i := 0; i < 10; i++ {
			v.Train(pc, val)
			val = uint64(int64(val) + stride)
		}
		last := uint64(int64(base) + 9*stride)
		var got uint64
		var ok bool
		for i := 0; i < outstanding; i++ {
			got, ok = v.Predict(pc)
			if !ok {
				return false
			}
		}
		want := uint64(int64(last) + stride*int64(outstanding))
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: predict/train call balance never corrupts the in-flight
// counter — after draining all predictions with matching trains, a fresh
// prediction equals last + stride.
func TestEVESInflightBalanceProperty(t *testing.T) {
	f := func(burstRaw uint8) bool {
		burst := int(burstRaw%10) + 1
		v := NewEVES(config.VPConfig{Entries: 256, ConfMax: 2, ConfProb: 1}, 1)
		pc := uint64(0x80)
		val := uint64(1000)
		for i := 0; i < 8; i++ {
			v.Train(pc, val)
			val += 8
		}
		// Burst of predictions, then matching trains.
		for i := 0; i < burst; i++ {
			if _, ok := v.Predict(pc); !ok {
				return false
			}
		}
		for i := 0; i < burst; i++ {
			v.Train(pc, val)
			val += 8
		}
		got, ok := v.Predict(pc)
		v.Squash(pc)
		return ok && got == val // val is last trained + 8 already
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DLVP's address learning mirrors EVES on addresses for any
// stride/path.
func TestDLVPStrideLearningProperty(t *testing.T) {
	f := func(strideRaw int16, pathRaw uint16) bool {
		stride := int64(strideRaw)
		path := uint64(pathRaw)
		d := NewDLVP(config.VPConfig{Entries: 512, ConfMax: 2, ConfProb: 1}, 1)
		pc := uint64(0x300)
		addr := uint64(1 << 30)
		for i := 0; i < 8; i++ {
			d.TrainAddr(pc, path, addr)
			addr = uint64(int64(addr) + stride)
		}
		p := d.PredictAddr(pc, path)
		if !p.HighConfidence {
			return false
		}
		last := uint64(int64(1<<30) + 7*stride)
		d.Squash(pc, path)
		return p.Addr == uint64(int64(last)+stride)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
