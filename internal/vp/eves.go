// Package vp implements the prior-art comparison points of Sections 5.3
// and 5.4: an EVES-style load value predictor, the DLVP path-based address
// predictor (with its no-forward filter), the Composite fusion of the two,
// and the SSBF used by the EPP scheme. The pipeline costs (flushes, port
// arbitration, probe timing) are modelled by internal/core; this package is
// the predictor state.
package vp

import (
	"rfpsim/internal/config"
	"rfpsim/internal/prng"
)

// evesEntry tracks one static load's value behaviour: last value, value
// stride, a high saturation confidence counter and an in-flight counter so
// back-to-back instances of a strided value chain predict distinct values.
type evesEntry struct {
	tag      uint16
	valid    bool
	hasBase  bool
	lastVal  uint64
	stride   int64
	conf     uint8
	inflight int16
	lru      uint64
}

// EVES is a last-value + stride (E-Stride flavored) value predictor with
// the very high confidence thresholds value prediction requires: a
// misprediction costs a full pipeline flush (20 cycles in the paper), so
// predictions are only used after a long run of consistent behaviour. That
// accuracy/coverage trade-off is exactly what limits VP coverage relative
// to RFP (§5.3).
type EVES struct {
	sets    int
	ways    int
	entries []evesEntry
	confMax uint8
	rng     *prng.Source
	prob    int
	stamp   uint64
}

// evesWays is the predictor associativity.
const evesWays = 4

// NewEVES builds the predictor from cfg.
func NewEVES(cfg config.VPConfig, seed uint64) *EVES {
	entries := cfg.Entries
	if entries < evesWays {
		entries = evesWays
	}
	entries -= entries % evesWays
	confMax := uint8(cfg.ConfMax)
	if confMax == 0 {
		confMax = 15
	}
	prob := cfg.ConfProb
	if prob <= 0 {
		prob = 1
	}
	return &EVES{
		sets:    entries / evesWays,
		ways:    evesWays,
		entries: make([]evesEntry, entries),
		confMax: confMax,
		rng:     prng.New(seed),
		prob:    prob,
	}
}

func (v *EVES) setFor(pc uint64) int    { return int((pc >> 2) % uint64(v.sets)) }
func (v *EVES) tagFor(pc uint64) uint16 { return uint16((pc>>2)/uint64(v.sets)) | 1 }

func (v *EVES) find(pc uint64) *evesEntry {
	base := v.setFor(pc) * v.ways
	tag := v.tagFor(pc)
	for i := base; i < base+v.ways; i++ {
		if v.entries[i].valid && v.entries[i].tag == tag {
			return &v.entries[i]
		}
	}
	return nil
}

func (v *EVES) alloc(pc uint64) *evesEntry {
	base := v.setFor(pc) * v.ways
	victim := base
	for i := base; i < base+v.ways; i++ {
		e := &v.entries[i]
		if !e.valid {
			victim = i
			break
		}
		// Trained entries resist eviction by cold allocations.
		w := &v.entries[victim]
		if e.conf < w.conf || (e.conf == w.conf && e.lru < w.lru) {
			victim = i
		}
	}
	v.stamp++
	v.entries[victim] = evesEntry{tag: v.tagFor(pc), valid: true, lru: v.stamp}
	return &v.entries[victim]
}

// Predict is called at rename; it returns the predicted value when the
// entry's confidence is saturated, and counts the instance in flight. A
// missing entry is created here (not at first training) so the in-flight
// counter covers every dynamic instance — creating it at retirement would
// leave the counter short by the pipeline occupancy at creation, shifting
// every strided value prediction and turning a "confident" entry into a
// reliable mispredictor (each miss costs a full flush).
func (v *EVES) Predict(pc uint64) (val uint64, ok bool) {
	e := v.find(pc)
	if e == nil {
		e = v.alloc(pc)
	}
	if e.inflight < 1<<14 {
		e.inflight++
	}
	v.stamp++
	e.lru = v.stamp
	if e.conf < v.confMax || !e.hasBase {
		return 0, false
	}
	return uint64(int64(e.lastVal) + e.stride*int64(e.inflight)), true
}

// Train updates the predictor with the committed value.
func (v *EVES) Train(pc uint64, val uint64) {
	e := v.find(pc)
	if e == nil {
		// Evicted while in flight: recreate with the base established.
		e = v.alloc(pc)
		e.lastVal = val
		e.hasBase = true
		return
	}
	if e.inflight > 0 {
		e.inflight--
	}
	if !e.hasBase {
		e.lastVal = val
		e.hasBase = true
		return
	}
	stride := int64(val) - int64(e.lastVal)
	if stride == e.stride {
		if e.conf < v.confMax && v.rng.OneIn(v.prob) {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
	}
	e.lastVal = val
}

// Squash releases the in-flight slot of a squashed load.
func (v *EVES) Squash(pc uint64) {
	if e := v.find(pc); e != nil && e.inflight > 0 {
		e.inflight--
	}
}
