package vp

// SSBF is the Store Sequence Bloom Filter used by EPP (Alves et al., "Early
// Address Prediction: Efficient Pipeline Prefetch and Reuse") to validate
// that no store wrote an early-reused load's line between prediction and
// retirement. Being a Bloom filter it never misses a real conflict but
// produces false positives, each of which forces the load to re-execute at
// retirement — the overhead that makes EPP slightly slower than pure
// Composite VP in the paper's Figure 15 discussion.
type SSBF struct {
	bits       []uint64
	mask       uint64
	inserted   int
	resetEvery int
}

// NewSSBF builds a filter with sizeBits bits (rounded down to a power of
// two, minimum 64) that clears itself after resetEvery insertions —
// matching the epoch-based clearing of the original design.
func NewSSBF(sizeBits, resetEvery int) *SSBF {
	n := 64
	for n*2 <= sizeBits {
		n *= 2
	}
	if resetEvery <= 0 {
		resetEvery = 1024
	}
	return &SSBF{
		bits:       make([]uint64, n/64),
		mask:       uint64(n - 1),
		resetEvery: resetEvery,
	}
}

func (f *SSBF) hashes(lineAddr uint64) (uint64, uint64) {
	h1 := (lineAddr ^ lineAddr>>17) * 0x9E3779B97F4A7C15
	h2 := (lineAddr ^ lineAddr>>9) * 0xBF58476D1CE4E5B9
	return h1 & f.mask, (h2 >> 7) & f.mask
}

func (f *SSBF) set(bit uint64)      { f.bits[bit/64] |= 1 << (bit % 64) }
func (f *SSBF) get(bit uint64) bool { return f.bits[bit/64]&(1<<(bit%64)) != 0 }

// InsertStore records a store to lineAddr.
func (f *SSBF) InsertStore(lineAddr uint64) {
	b1, b2 := f.hashes(lineAddr)
	f.set(b1)
	f.set(b2)
	f.inserted++
	if f.inserted >= f.resetEvery {
		for i := range f.bits {
			f.bits[i] = 0
		}
		f.inserted = 0
	}
}

// MayConflict reports whether a store to lineAddr may have occurred since
// the last epoch reset. False positives are possible; false negatives
// within an epoch are not.
func (f *SSBF) MayConflict(lineAddr uint64) bool {
	b1, b2 := f.hashes(lineAddr)
	return f.get(b1) && f.get(b2)
}
