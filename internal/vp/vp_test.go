package vp

import (
	"testing"

	"rfpsim/internal/config"
)

func evesCfg() config.VPConfig {
	return config.VPConfig{Entries: 1024, ConfMax: 4, ConfProb: 1}
}

func TestEVESLearnsConstant(t *testing.T) {
	v := NewEVES(evesCfg(), 1)
	pc := uint64(0x100)
	for i := 0; i < 10; i++ {
		v.Train(pc, 42)
	}
	val, ok := v.Predict(pc)
	if !ok || val != 42 {
		t.Errorf("constant prediction = %d ok=%v, want 42", val, ok)
	}
}

func TestEVESLearnsStridedValues(t *testing.T) {
	v := NewEVES(evesCfg(), 1)
	pc := uint64(0x104)
	for i := uint64(0); i < 10; i++ {
		v.Train(pc, 100+8*i)
	}
	// Last trained value 172; one instance in flight → predict 180.
	val, ok := v.Predict(pc)
	if !ok || val != 180 {
		t.Errorf("strided prediction = %d ok=%v, want 180", val, ok)
	}
	// Second outstanding instance → 188.
	val, ok = v.Predict(pc)
	if !ok || val != 188 {
		t.Errorf("second strided prediction = %d, want 188", val)
	}
}

func TestEVESRandomValuesNotPredicted(t *testing.T) {
	v := NewEVES(evesCfg(), 1)
	pc := uint64(0x108)
	vals := []uint64{5, 99, 3, 1234, 7, 42, 8, 77, 23, 6}
	for _, x := range vals {
		v.Train(pc, x)
	}
	if _, ok := v.Predict(pc); ok {
		t.Error("random values predicted")
	}
}

func TestEVESValueChangeResetsConfidence(t *testing.T) {
	v := NewEVES(evesCfg(), 1)
	pc := uint64(0x10c)
	for i := 0; i < 10; i++ {
		v.Train(pc, 7)
	}
	v.Train(pc, 1000)
	if _, ok := v.Predict(pc); ok {
		t.Error("still confident after value change")
	}
}

func TestEVESSquashReleasesInflight(t *testing.T) {
	v := NewEVES(evesCfg(), 1)
	pc := uint64(0x110)
	for i := uint64(0); i < 10; i++ {
		v.Train(pc, 8*i)
	}
	a, _ := v.Predict(pc)
	v.Squash(pc)
	b, _ := v.Predict(pc)
	if a != b {
		t.Errorf("squash did not rewind inflight: %d vs %d", a, b)
	}
}

func TestEVESColdPredictsNothing(t *testing.T) {
	v := NewEVES(evesCfg(), 1)
	if _, ok := v.Predict(0x999); ok {
		t.Error("cold predictor predicted")
	}
}

func TestEVESProbabilisticConfidence(t *testing.T) {
	cfg := evesCfg()
	cfg.ConfProb = 8
	v := NewEVES(cfg, 3)
	pc := uint64(0x200)
	for i := 0; i < 5; i++ {
		v.Train(pc, 1)
	}
	if _, ok := v.Predict(pc); ok {
		t.Error("p=1/8 counter saturated after 4 repeats")
	}
	for i := 0; i < 400; i++ {
		v.Train(pc, 1)
	}
	if _, ok := v.Predict(pc); !ok {
		t.Error("p=1/8 counter not saturated after 400 repeats")
	}
}

func TestDLVPAddressPrediction(t *testing.T) {
	d := NewDLVP(evesCfg(), 1)
	pc, path := uint64(0x300), uint64(0x7)
	for i := uint64(0); i < 12; i++ {
		d.TrainAddr(pc, path, 0x8000+8*i)
	}
	p := d.PredictAddr(pc, path)
	if !p.Match || !p.HighConfidence {
		t.Fatalf("trained DLVP: match=%v hc=%v", p.Match, p.HighConfidence)
	}
	if p.Addr != 0x8000+8*11+8 {
		t.Errorf("predicted %#x", p.Addr)
	}
}

func TestDLVPPathSensitivity(t *testing.T) {
	d := NewDLVP(evesCfg(), 1)
	pc := uint64(0x304)
	// Same PC, two paths, two different (constant) addresses.
	for i := 0; i < 12; i++ {
		d.TrainAddr(pc, 0x1, 0x111000)
		d.TrainAddr(pc, 0x2, 0x222000)
	}
	p1 := d.PredictAddr(pc, 0x1)
	p2 := d.PredictAddr(pc, 0x2)
	if !p1.HighConfidence || !p2.HighConfidence {
		t.Fatal("path-split training not confident")
	}
	if p1.Addr != 0x111000 || p2.Addr != 0x222000 {
		t.Errorf("path predictions %#x / %#x", p1.Addr, p2.Addr)
	}
}

func TestDLVPLowVsHighConfidence(t *testing.T) {
	d := NewDLVP(config.VPConfig{Entries: 1024, ConfMax: 8, ConfProb: 1}, 1)
	pc, path := uint64(0x308), uint64(0)
	// 4 stride repeats: matching but below the high threshold of 8.
	for i := uint64(0); i < 5; i++ {
		d.TrainAddr(pc, path, 0x9000+8*i)
	}
	p := d.PredictAddr(pc, path)
	if !p.Match {
		t.Error("stride repeats should at least Match")
	}
	if p.HighConfidence {
		t.Error("high confidence reached too early")
	}
}

func TestDLVPSquash(t *testing.T) {
	d := NewDLVP(evesCfg(), 1)
	pc, path := uint64(0x30c), uint64(0)
	for i := uint64(0); i < 12; i++ {
		d.TrainAddr(pc, path, 8*i)
	}
	a := d.PredictAddr(pc, path).Addr
	d.Squash(pc, path)
	b := d.PredictAddr(pc, path).Addr
	if a != b {
		t.Error("squash did not rewind DLVP inflight")
	}
}

func TestNoFwdFilter(t *testing.T) {
	d := NewDLVP(evesCfg(), 1)
	pc := uint64(0x400)
	if !d.AllowedByNoFwd(pc) {
		t.Error("cold no-fwd filter must allow")
	}
	d.TrainFwd(pc, true)
	d.TrainFwd(pc, true)
	if d.AllowedByNoFwd(pc) {
		t.Error("repeatedly forwarded load still allowed")
	}
	// Decay re-enables.
	for i := 0; i < 4; i++ {
		d.TrainFwd(pc, false)
	}
	if !d.AllowedByNoFwd(pc) {
		t.Error("filter did not decay")
	}
}

func TestSSBFNoFalseNegativesWithinEpoch(t *testing.T) {
	f := NewSSBF(1024, 1<<30)
	addrs := []uint64{0x1000, 0x2040, 0x3080, 0x40C0}
	for _, a := range addrs {
		f.InsertStore(a)
	}
	for _, a := range addrs {
		if !f.MayConflict(a) {
			t.Errorf("false negative for %#x", a)
		}
	}
}

func TestSSBFFalsePositivesExist(t *testing.T) {
	f := NewSSBF(256, 1<<30) // small filter, heavy load
	for i := uint64(0); i < 200; i++ {
		f.InsertStore(i * 64)
	}
	fp := 0
	for i := uint64(1000); i < 1200; i++ {
		if f.MayConflict(i * 64) {
			fp++
		}
	}
	if fp == 0 {
		t.Error("a saturated small Bloom filter must produce false positives")
	}
}

func TestSSBFEpochReset(t *testing.T) {
	f := NewSSBF(1024, 4)
	for i := uint64(0); i < 4; i++ { // 4th insert triggers reset
		f.InsertStore(i * 64)
	}
	if f.MayConflict(0) {
		t.Error("filter not cleared after epoch")
	}
}

func TestSSBFFreshIsEmpty(t *testing.T) {
	f := NewSSBF(1024, 100)
	hits := 0
	for i := uint64(0); i < 100; i++ {
		if f.MayConflict(i * 64) {
			hits++
		}
	}
	if hits != 0 {
		t.Errorf("fresh filter reported %d conflicts", hits)
	}
}

func TestEVESTinyTableStillWorks(t *testing.T) {
	v := NewEVES(config.VPConfig{Entries: 1, ConfMax: 2, ConfProb: 1}, 1)
	for i := 0; i < 8; i++ {
		v.Train(0x10, 5)
	}
	if val, ok := v.Predict(0x10); !ok || val != 5 {
		t.Error("minimum-size EVES broken")
	}
}
