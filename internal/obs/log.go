package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// WithLogger returns a context carrying the logger. Layers below the API
// boundary retrieve it with Logger instead of importing a global, so a
// test (or a second server in the same process) can capture its own logs.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, ctxKeyLogger, l)
}

// Logger returns the context's logger (or slog.Default) with the
// context's run ID attached as the run_id attribute. This is the one call
// sites use — runner, sample and sweep log lines all carry the run ID the
// API boundary minted without threading it explicitly.
func Logger(ctx context.Context) *slog.Logger {
	l, _ := ctx.Value(ctxKeyLogger).(*slog.Logger)
	if l == nil {
		l = slog.Default()
	}
	if id := RunID(ctx); id != "" {
		l = l.With("run_id", id)
	}
	return l
}

// NewLogger builds a slog logger writing to w. format is "text" or
// "json"; level is a slog level name ("debug", "info", "warn", "error").
// The CLIs share it so -log-format/-log-level mean the same thing
// everywhere.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("obs: bad log level %q (debug, info, warn or error): %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: bad log format %q (text or json)", format)
	}
	return slog.New(h), nil
}
