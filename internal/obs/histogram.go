package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket Prometheus histogram with lock-free
// observation: workers record latencies without contending on a mutex,
// and the exposition renders the standard cumulative `le` buckets plus
// _sum and _count. Buckets are chosen at construction and never change,
// so two scrapes always describe the same schema.
type Histogram struct {
	name   string
	help   string
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds (in the metric's unit, typically seconds). It panics on a
// non-ascending bound list — bucket schemas are compile-time decisions,
// not runtime input.
func NewHistogram(name, help string, bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending at %d", name, i))
		}
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values so far.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// WritePrometheus implements Collector.
func (h *Histogram) WritePrometheus(w io.Writer) {
	Header(w, h.name, "histogram", h.help)
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		Sample(w, h.name+"_bucket", fmt.Sprintf("le=%q", fmt.Sprintf("%g", b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	Sample(w, h.name+"_bucket", `le="+Inf"`, cum)
	Sample(w, h.name+"_sum", "", h.Sum())
	Sample(w, h.name+"_count", "", h.Count())
}
