package obs

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// TestRunIDFormat: run IDs are 16 lowercase hex chars, unique enough that
// a small batch never collides, and accepted by ValidRunID.
func TestRunIDFormat(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewRunID()
		if len(id) != 16 {
			t.Fatalf("run ID %q has length %d, want 16", id, len(id))
		}
		if !ValidRunID(id) {
			t.Fatalf("NewRunID produced an invalid ID %q", id)
		}
		if seen[id] {
			t.Fatalf("run ID %q repeated within 1000 draws", id)
		}
		seen[id] = true
	}
}

func TestValidRunID(t *testing.T) {
	for _, ok := range []string{"a", "deadbeef00112233", "A-Z_09"} {
		if !ValidRunID(ok) {
			t.Errorf("ValidRunID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", strings.Repeat("a", 65), "has space", "new\nline", `quo"te`} {
		if ValidRunID(bad) {
			t.Errorf("ValidRunID(%q) = true, want false", bad)
		}
	}
}

// TestLoggerCarriesRunID: Logger picks up both the context logger and the
// context run ID, so downstream layers log correlated lines without
// explicit plumbing.
func TestLoggerCarriesRunID(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(slog.NewTextHandler(&buf, nil))
	ctx := WithLogger(context.Background(), l)
	ctx = WithRunID(ctx, "cafe0123")
	Logger(ctx).Info("hello", "k", "v")
	line := buf.String()
	if !strings.Contains(line, "run_id=cafe0123") || !strings.Contains(line, "k=v") {
		t.Errorf("log line missing run_id or attrs: %q", line)
	}
	if got := RunID(context.Background()); got != "" {
		t.Errorf("RunID of a bare context = %q, want empty", got)
	}
}

func TestNewLoggerValidation(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "xml", "info"); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "json", "chatty"); err == nil {
		t.Error("bad level accepted")
	}
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("x")
	if !strings.Contains(buf.String(), `"msg":"x"`) {
		t.Errorf("json logger output: %q", buf.String())
	}
}

// TestTimingsRoundTrip: the wire form survives String -> ParseTimings and
// Merge adds stage-wise.
func TestTimingsRoundTrip(t *testing.T) {
	tm := &Timings{}
	tm.Observe(StageWarmup, 1500*time.Millisecond)
	tm.Observe(StageMeasure, 2*time.Second)
	tm.Observe(StageMeasure, time.Second) // accumulates
	tm.Observe("bogus", time.Hour)        // dropped, not panicking

	if got := tm.Stage(StageMeasure); got != 3*time.Second {
		t.Errorf("measure = %s, want 3s", got)
	}
	if got := tm.Total(); got != 4500*time.Millisecond {
		t.Errorf("total = %s, want 4.5s", got)
	}

	parsed, err := ParseTimings(tm.String())
	if err != nil {
		t.Fatalf("ParseTimings(%q): %v", tm.String(), err)
	}
	for _, s := range Stages() {
		if parsed.Stage(s) != tm.Stage(s) {
			t.Errorf("stage %s: parsed %s, want %s", s, parsed.Stage(s), tm.Stage(s))
		}
	}

	other := &Timings{}
	other.Observe(StageWarmup, 500*time.Millisecond)
	tm.Merge(other)
	if got := tm.Stage(StageWarmup); got != 2*time.Second {
		t.Errorf("merged warmup = %s, want 2s", got)
	}
	if !strings.Contains(tm.Pretty(), "total") {
		t.Errorf("Pretty missing total: %q", tm.Pretty())
	}
}

func TestParseTimingsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "warmup", "warmup=-1", "warmup=abc", "unknown=1"} {
		if _, err := ParseTimings(bad); err == nil {
			t.Errorf("ParseTimings(%q) accepted", bad)
		}
	}
}

// TestContextTimings: WithTimings attaches a collector that downstream
// stages fill; a bare context yields nil (the zero-overhead batch path).
func TestContextTimings(t *testing.T) {
	if ContextTimings(context.Background()) != nil {
		t.Fatal("bare context has timings")
	}
	ctx, tm := WithTimings(context.Background())
	ContextTimings(ctx).Observe(StageAggregate, time.Millisecond)
	if got := tm.Stage(StageAggregate); got != time.Millisecond {
		t.Errorf("aggregate = %s, want 1ms", got)
	}
}

// TestHistogramExposition pins the cumulative-bucket rendering.
func TestHistogramExposition(t *testing.T) {
	h := NewHistogram("x_seconds", "Help text.", 0.1, 1, 10)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.7)
	h.Observe(99)
	var buf bytes.Buffer
	h.WritePrometheus(&buf)
	want := `# HELP x_seconds Help text.
# TYPE x_seconds histogram
x_seconds_bucket{le="0.1"} 1
x_seconds_bucket{le="1"} 3
x_seconds_bucket{le="10"} 3
x_seconds_bucket{le="+Inf"} 4
x_seconds_sum 100.25
x_seconds_count 4
`
	if buf.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestRegistryOrder: collectors render in registration order, the
// property the /metrics golden tests rely on.
func TestRegistryOrder(t *testing.T) {
	r := NewRegistry()
	r.Register(CollectorFunc(func(w io.Writer) { w.Write([]byte("first\n")) }))
	r.Register(CollectorFunc(func(w io.Writer) { w.Write([]byte("second\n")) }))
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if buf.String() != "first\nsecond\n" {
		t.Errorf("registry output %q", buf.String())
	}
}
