package obs

import (
	"sort"
	"sync"
	"time"
)

// latencyMinSamples is how many observations a LatencyWindow needs before
// it reports a percentile: below this the sample is too thin to mean
// anything and Quantile returns 0 ("no opinion"), which callers treat as
// "use your configured floor".
const latencyMinSamples = 8

// LatencyWindow tracks the most recent N operation latencies in a fixed
// ring and answers percentile queries over them. The sweep HTTP backend
// uses one to learn the fleet's p95 response time and trigger hedged
// requests past it; keeping only a bounded recent window (rather than a
// lifetime histogram) makes the threshold track load shifts within a
// sweep. All methods are safe for concurrent use.
type LatencyWindow struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	full bool
}

// NewLatencyWindow returns a window over the last size observations
// (size <= 0 selects 128).
func NewLatencyWindow(size int) *LatencyWindow {
	if size <= 0 {
		size = 128
	}
	return &LatencyWindow{buf: make([]time.Duration, size)}
}

// Observe records one latency sample, displacing the oldest once the
// window is full.
func (w *LatencyWindow) Observe(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next++
	if w.next == len(w.buf) {
		w.next, w.full = 0, true
	}
	w.mu.Unlock()
}

// Len returns how many samples the window currently holds.
func (w *LatencyWindow) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lenLocked()
}

func (w *LatencyWindow) lenLocked() int {
	if w.full {
		return len(w.buf)
	}
	return w.next
}

// Quantile returns the q-th (0 < q <= 1) latency quantile over the
// window, or 0 while fewer than latencyMinSamples observations exist.
func (w *LatencyWindow) Quantile(q float64) time.Duration {
	w.mu.Lock()
	n := w.lenLocked()
	if n < latencyMinSamples || q <= 0 || q > 1 {
		w.mu.Unlock()
		return 0
	}
	samples := make([]time.Duration, n)
	copy(samples, w.buf[:n])
	w.mu.Unlock()

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(float64(n)*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return samples[idx]
}

// P95 is shorthand for Quantile(0.95).
func (w *LatencyWindow) P95() time.Duration { return w.Quantile(0.95) }
