package obs

import (
	"fmt"
	"io"
	"net/http"
	"sync"
)

// Collector renders a block of metrics in the Prometheus text exposition
// format (version 0.0.4). internal/service.Metrics, internal/sweep.Metrics
// and Histogram all implement it, which is what lets one registry serve
// every emitter in the process from a single /metrics endpoint.
type Collector interface {
	WritePrometheus(w io.Writer)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(w io.Writer)

// WritePrometheus implements Collector.
func (f CollectorFunc) WritePrometheus(w io.Writer) { f(w) }

// Registry is the process-wide metrics registry: collectors register once
// and /metrics renders them in registration order. Rendering order is
// deterministic, which is what lets a golden test pin the whole
// exposition format.
type Registry struct {
	mu         sync.RWMutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a collector. Registration order is exposition order.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// WritePrometheus renders every registered collector in order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.collectors {
		c.WritePrometheus(w)
	}
}

// ContentType is the exposition-format content type /metrics responds
// with.
const ContentType = "text/plain; version=0.0.4"

// Handler returns the /metrics HTTP handler for this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WritePrometheus(w)
	})
}

// formatValue renders a sample value the way the pre-obs emitters did:
// integers with %d, floats with %g — pinned by the /metrics golden tests.
func formatValue(v any) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%g", x)
	case float32:
		return fmt.Sprintf("%g", x)
	default:
		return fmt.Sprintf("%d", x)
	}
}

// Header writes the # HELP / # TYPE preamble of one metric family.
func Header(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// Sample writes one sample line; labels is the raw `k="v",...` label body
// (empty for an unlabelled sample).
func Sample(w io.Writer, name, labels string, v any) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
}

// Gauge writes a complete single-sample gauge family.
func Gauge(w io.Writer, name, help string, v any) {
	Header(w, name, "gauge", help)
	Sample(w, name, "", v)
}

// Counter writes a complete single-sample counter family.
func Counter(w io.Writer, name, help string, v any) {
	Header(w, name, "counter", help)
	Sample(w, name, "", v)
}
