package obs

import (
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	runtimepprof "runtime/pprof"
	"sync"
)

// RegisterPprof mounts the net/http/pprof handlers under /debug/pprof/ on
// the mux. It is deliberately a separate, opt-in call (rfpsimd's -pprof
// flag) rather than an import side effect on http.DefaultServeMux:
// profiling endpoints expose heap contents and must never be reachable
// unless the operator asked for them.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// cpuProfileMu serializes CPU profile captures: the Go runtime supports
// one CPU profile at a time process-wide.
var cpuProfileMu sync.Mutex

// CaptureCPUProfile runs fn with a CPU profile written to path. The
// runtime allows only one CPU profile at a time, so when another capture
// is already running fn executes unprofiled and captured is false — a
// busy worker pool degrades to sampling some jobs instead of failing
// them. The returned error is fn's own; profile plumbing failures are
// logged and fn still runs.
func CaptureCPUProfile(path string, fn func() error) (captured bool, err error) {
	if cpuProfileMu.TryLock() {
		f, ferr := os.Create(path)
		if ferr != nil {
			cpuProfileMu.Unlock()
			slog.Default().Warn("cpu profile skipped", "path", path, "err", ferr)
			return false, fn()
		}
		if perr := runtimepprof.StartCPUProfile(f); perr != nil {
			f.Close()
			os.Remove(path)
			cpuProfileMu.Unlock()
			slog.Default().Warn("cpu profile skipped", "path", path, "err", perr)
			return false, fn()
		}
		defer func() {
			runtimepprof.StopCPUProfile()
			f.Close()
			cpuProfileMu.Unlock()
		}()
		return true, fn()
	}
	return false, fn()
}
