package obs

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Stage names of the per-job timing breakdown. They mirror the phases of
// one simulation job end to end: the sampling profile/cluster pass
// (sampled jobs only), the functional fast-forward, the cycle-accurate
// warmup, the measured window, and statistics aggregation/scaling.
const (
	StageProfile     = "profile"
	StageFastForward = "fastforward"
	StageWarmup      = "warmup"
	StageMeasure     = "measure"
	StageAggregate   = "aggregate"
)

// Stages lists the stage names in canonical (pipeline) order — the order
// every serialization uses.
func Stages() []string {
	return []string{StageProfile, StageFastForward, StageWarmup, StageMeasure, StageAggregate}
}

// Timings accumulates wall-clock time per simulation stage. A collector
// is attached to a context with WithTimings at a job boundary (the
// rfpsimd worker, the sweep orchestrator, rfpsim -v) and filled in by
// internal/runner and internal/sample as they execute; a sampled job's
// many replay sub-runs all add into the same collector. All methods are
// safe for concurrent use.
//
// Timings are observability, never results: they ride on response
// headers (service.TimingsHeader) and side-channel CSVs, and must stay
// out of any byte-pinned body — simulation results are deterministic,
// wall time is not.
type Timings struct {
	profile     atomic.Int64 // nanoseconds per stage
	fastForward atomic.Int64
	warmup      atomic.Int64
	measure     atomic.Int64
	aggregate   atomic.Int64
}

// WithTimings attaches a fresh collector to the context and returns it.
func WithTimings(ctx context.Context) (context.Context, *Timings) {
	t := &Timings{}
	return context.WithValue(ctx, ctxKeyTimings, t), t
}

// ContextTimings returns the context's collector, or nil when the caller
// did not ask for a breakdown (the common batch path: zero overhead
// beyond a context lookup per stage).
func ContextTimings(ctx context.Context) *Timings {
	t, _ := ctx.Value(ctxKeyTimings).(*Timings)
	return t
}

func (t *Timings) cell(stage string) *atomic.Int64 {
	switch stage {
	case StageProfile:
		return &t.profile
	case StageFastForward:
		return &t.fastForward
	case StageWarmup:
		return &t.warmup
	case StageMeasure:
		return &t.measure
	case StageAggregate:
		return &t.aggregate
	}
	return nil
}

// Observe adds d to the named stage. Unknown stages are dropped rather
// than panicking: a timing is telemetry, not a result.
func (t *Timings) Observe(stage string, d time.Duration) {
	if c := t.cell(stage); c != nil {
		c.Add(int64(d))
	}
}

// Stage returns the accumulated time of one stage.
func (t *Timings) Stage(stage string) time.Duration {
	if c := t.cell(stage); c != nil {
		return time.Duration(c.Load())
	}
	return 0
}

// Total returns the sum over all stages.
func (t *Timings) Total() time.Duration {
	var sum time.Duration
	for _, s := range Stages() {
		sum += t.Stage(s)
	}
	return sum
}

// Merge adds o's stage totals into t (used when a remote backend returns
// a breakdown in a response header).
func (t *Timings) Merge(o *Timings) {
	for _, s := range Stages() {
		t.Observe(s, o.Stage(s))
	}
}

// String renders the wire form: `stage=seconds` pairs in canonical order,
// semicolon-separated, seconds as plain ASCII decimals — safe to put in
// an HTTP header and parseable by ParseTimings.
func (t *Timings) String() string {
	var b strings.Builder
	for i, s := range Stages() {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(s)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(t.Stage(s).Seconds(), 'f', -1, 64))
	}
	return b.String()
}

// Pretty renders a human-readable breakdown for CLI -v output, e.g.
// "profile 12ms, fastforward 0s, warmup 4ms, measure 103ms, aggregate 8µs
// (total 119ms)".
func (t *Timings) Pretty() string {
	var b strings.Builder
	for i, s := range Stages() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", s, t.Stage(s).Round(time.Microsecond))
	}
	fmt.Fprintf(&b, " (total %s)", t.Total().Round(time.Microsecond))
	return b.String()
}

// ParseTimings parses the wire form String produces. Unknown stages are
// an error so a format drift between fleet versions fails loudly at the
// parse site instead of silently zeroing a stage.
func ParseTimings(s string) (*Timings, error) {
	t := &Timings{}
	if s == "" {
		return nil, fmt.Errorf("obs: empty timings string")
	}
	for _, part := range strings.Split(s, ";") {
		stage, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("obs: bad timings segment %q", part)
		}
		secs, err := strconv.ParseFloat(val, 64)
		if err != nil || secs < 0 {
			return nil, fmt.Errorf("obs: bad timings value %q", part)
		}
		if t.cell(stage) == nil {
			return nil, fmt.Errorf("obs: unknown timings stage %q", stage)
		}
		t.Observe(stage, time.Duration(secs*float64(time.Second)))
	}
	return t, nil
}
