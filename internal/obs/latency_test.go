package obs

import (
	"testing"
	"time"
)

func TestLatencyWindowWarmup(t *testing.T) {
	w := NewLatencyWindow(16)
	for i := 0; i < latencyMinSamples-1; i++ {
		w.Observe(time.Millisecond)
	}
	if got := w.P95(); got != 0 {
		t.Fatalf("P95 with %d samples = %v, want 0 (no opinion)", latencyMinSamples-1, got)
	}
	w.Observe(time.Millisecond)
	if got := w.P95(); got != time.Millisecond {
		t.Fatalf("P95 over uniform 1ms samples = %v", got)
	}
}

func TestLatencyWindowP95(t *testing.T) {
	w := NewLatencyWindow(100)
	for i := 1; i <= 100; i++ {
		w.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := w.P95(); got != 95*time.Millisecond {
		t.Fatalf("P95 of 1..100ms = %v, want 95ms", got)
	}
	if got := w.Quantile(0.5); got != 50*time.Millisecond {
		t.Fatalf("P50 of 1..100ms = %v, want 50ms", got)
	}
}

// TestLatencyWindowSlides pins the point of a window: old samples fall
// out, so the percentile tracks the recent regime, not sweep history.
func TestLatencyWindowSlides(t *testing.T) {
	w := NewLatencyWindow(10)
	for i := 0; i < 10; i++ {
		w.Observe(time.Second) // old slow regime
	}
	for i := 0; i < 10; i++ {
		w.Observe(time.Millisecond) // new fast regime displaces it
	}
	if got := w.P95(); got != time.Millisecond {
		t.Fatalf("P95 after window slid = %v, want 1ms", got)
	}
	if w.Len() != 10 {
		t.Fatalf("Len = %d, want 10", w.Len())
	}
}
