// Package obs is the shared observability layer: every serving and batch
// surface in the stack (rfpsimd, rfpsweep, rfpsample, rfpsim) emits its
// telemetry through this package so a simulation can be followed across
// process boundaries with one run ID, one metrics registry and one
// per-stage timing breakdown.
//
// It provides four things, all carried through context.Context so the
// core pipeline stays free of observability imports except at its seams:
//
//   - run IDs (NewRunID / WithRunID / RunID): generated at the rfpsimd
//     API boundary (or by the sweep orchestrator per unit) and attached
//     to every log line downstream;
//   - structured logging (Logger / WithLogger / NewLogger): log/slog
//     loggers that automatically pick up the context's run ID;
//   - a Prometheus registry (Registry / Collector / Histogram and the
//     text-exposition helpers): one /metrics code path shared by the
//     daemon and the sweep orchestrator instead of per-package emitters;
//   - per-stage timings (Timings / WithTimings / ContextTimings): the
//     profile / fastforward / warmup / measure / aggregate wall-clock
//     breakdown internal/runner and internal/sample fill in, surfaced
//     in rfpsimd response headers, sweep timing CSVs and rfpsim -v.
//
// See docs/observability.md for the full metric, label and log-field
// inventory and docs/architecture.md for where this layer sits.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	mathrand "math/rand"
)

type ctxKey int

const (
	ctxKeyRunID ctxKey = iota
	ctxKeyLogger
	ctxKeyTimings
)

// NewRunID returns a fresh 16-hex-character run identifier. IDs are
// random, not sequential: they correlate log lines across processes, so
// two daemons must never mint the same ID for different jobs.
func NewRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively unheard of; fall back to a
		// weaker source rather than refusing to serve.
		for i := range b {
			b[i] = byte(mathrand.Int())
		}
	}
	return hex.EncodeToString(b[:])
}

// ValidRunID reports whether id is acceptable as a caller-supplied run ID
// (propagated from a request header into logs): 1-64 characters from
// [0-9a-zA-Z_-]. Anything else is discarded and replaced by NewRunID so
// log injection through the header is impossible.
func ValidRunID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// WithRunID returns a context carrying the run ID. Logger extracts it, so
// every log line below this point is correlated.
func WithRunID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRunID, id)
}

// RunID returns the context's run ID, or "" when none was attached.
func RunID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRunID).(string)
	return id
}
