package runner

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"rfpsim/internal/config"
	"rfpsim/internal/trace"
)

func mcf(t *testing.T) trace.Spec {
	t.Helper()
	spec, ok := trace.ByName("spec06_mcf")
	if !ok {
		t.Fatal("spec06_mcf missing from catalog")
	}
	return spec
}

// TestRunIsDeterministic: identical jobs are pure functions — every counter
// matches across runs. This property is what makes the service's result
// cache sound.
func TestRunIsDeterministic(t *testing.T) {
	job := Job{
		Config:      config.Baseline().WithRFP(),
		Spec:        mcf(t),
		WarmupUops:  5000,
		MeasureUops: 10000,
		Seeds:       1,
	}
	a, err := Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("identical jobs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestSeedReplicasAccumulate: a multi-seed job sums counters over replicas
// whose seeds actually differ (so it is not just N copies of one run).
func TestSeedReplicasAccumulate(t *testing.T) {
	base := Job{
		Config:      config.Baseline(),
		Spec:        mcf(t),
		WarmupUops:  5000,
		MeasureUops: 10000,
		Seeds:       1,
	}
	one, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	multi := base
	multi.Seeds = 3
	three, err := Run(context.Background(), multi)
	if err != nil {
		t.Fatal(err)
	}
	// Each replica commits at least the measured window (plus a few uops of
	// commit-group overshoot that varies with the seed), so the summed total
	// sits just above 3x the window.
	if three.Instructions < 3*base.MeasureUops || three.Instructions > 3*(base.MeasureUops+100) {
		t.Errorf("3-seed uops = %d, want ~3x%d", three.Instructions, base.MeasureUops)
	}
	if three.Cycles == 3*one.Cycles {
		t.Errorf("3-seed cycles exactly 3x the single run (%d): replica seeds not perturbed?", three.Cycles)
	}
	if three.Cycles <= one.Cycles {
		t.Errorf("3-seed cycles %d not greater than single-seed %d", three.Cycles, one.Cycles)
	}
}

// TestCancelledContextDiscardsResult: cancellation surfaces ctx.Err and
// discards any partial accumulation (nil stats, never a mixed total).
func TestCancelledContextDiscardsResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := Run(ctx, Job{
		Config:      config.Baseline(),
		Spec:        mcf(t),
		WarmupUops:  5000,
		MeasureUops: 10000,
		Seeds:       2,
	})
	if st != nil {
		t.Errorf("cancelled run returned stats %+v, want nil", st)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestDeadlineCancelsMidRun: a deadline expiring inside the measured window
// aborts promptly instead of running the window to completion.
func TestDeadlineCancelsMidRun(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	st, err := Run(ctx, Job{
		Config:      config.Baseline(),
		Spec:        mcf(t),
		WarmupUops:  5000,
		MeasureUops: 40_000_000,
		Seeds:       1,
	})
	if st != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("got (%v, %v), want (nil, wrapped DeadlineExceeded)", st, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %s, want prompt abort", elapsed)
	}
}

// TestGenWithMultipleSeedsRejected: a one-shot generator cannot back
// several replicas.
func TestGenWithMultipleSeedsRejected(t *testing.T) {
	spec := mcf(t)
	_, err := Run(context.Background(), Job{
		Config:      config.Baseline(),
		Spec:        spec,
		Gen:         spec.New(),
		WarmupUops:  100,
		MeasureUops: 100,
		Seeds:       2,
	})
	if err == nil {
		t.Error("Gen with Seeds=2 accepted, want error")
	}
}

// TestInvalidConfigErrorsInsteadOfPanicking: runner.Run validates up front
// so service jobs with bad knobs fail as errors, not panics in a worker.
func TestInvalidConfigErrorsInsteadOfPanicking(t *testing.T) {
	cfg := config.Baseline()
	cfg.ROBSize = 0
	_, err := Run(context.Background(), Job{
		Config:      cfg,
		Spec:        mcf(t),
		MeasureUops: 100,
		Seeds:       1,
	})
	if err == nil {
		t.Error("invalid config accepted, want error")
	}
}

// TestRejectsEmptyWindowAndImplicitSeeds: a job that would silently
// simulate nothing (MeasureUops 0) or silently default its replica count
// (Seeds 0) is a caller bug and must fail loudly with a field-naming
// error, not return an empty or single-seed result.
func TestRejectsEmptyWindowAndImplicitSeeds(t *testing.T) {
	good := Job{
		Config:      config.Baseline(),
		Spec:        mcf(t),
		WarmupUops:  100,
		MeasureUops: 100,
		Seeds:       1,
	}

	noMeasure := good
	noMeasure.MeasureUops = 0
	if st, err := Run(context.Background(), noMeasure); err == nil || !strings.Contains(err.Error(), "MeasureUops") {
		t.Errorf("MeasureUops=0: got (%v, %v), want error naming MeasureUops", st, err)
	}

	for _, seeds := range []int{0, -2} {
		bad := good
		bad.Seeds = seeds
		if st, err := Run(context.Background(), bad); err == nil || !strings.Contains(err.Error(), "Seeds") {
			t.Errorf("Seeds=%d: got (%v, %v), want error naming Seeds", seeds, st, err)
		}
	}
}

// TestRejectsSampledJob: runner.Run is the full-window path; a job
// carrying a Sampling spec must be routed through internal/sample.Run,
// and silently ignoring the spec would return full-run statistics under a
// sampled content address.
func TestRejectsSampledJob(t *testing.T) {
	job := Job{
		Config:      config.Baseline(),
		Spec:        mcf(t),
		WarmupUops:  100,
		MeasureUops: 100,
		Seeds:       1,
		Sampling:    &Sampling{IntervalUops: 50},
	}
	if st, err := Run(context.Background(), job); err == nil || !strings.Contains(err.Error(), "sample") {
		t.Errorf("sampled job: got (%v, %v), want error pointing at internal/sample", st, err)
	}
}

// TestTotalUops: the job-size accounting the service ceiling and the
// sweep ETA both rely on counts every replica's warmup and measurement.
func TestTotalUops(t *testing.T) {
	j := Job{WarmupUops: 30000, MeasureUops: 60000}
	if got := j.TotalUops(); got != 90000 {
		t.Errorf("single-seed TotalUops = %d, want 90000", got)
	}
	j.Seeds = 3
	if got := j.TotalUops(); got != 270000 {
		t.Errorf("3-seed TotalUops = %d, want 270000", got)
	}
	j.Seeds = -1 // TotalUops stays defined (one replica) even though Run rejects it
	if got := j.TotalUops(); got != 90000 {
		t.Errorf("negative-seed TotalUops = %d, want 90000", got)
	}
}
