// Package runner executes complete simulation jobs: construct a core for a
// workload, warm caches and predictors, run the measurement window, and
// optionally replicate the whole sequence across perturbed seeds. It is
// the single code path behind the batch CLIs (cmd/rfpsim,
// cmd/suitestats), the experiment harness and the rfpsimd service, so
// cancellation and determinism behave identically everywhere.
// Observability rides on the context (internal/obs): when the caller
// attached a timings collector the runner bills each stage's wall time
// to it (fastforward / warmup / measure / aggregate), and per-replica
// debug logs carry the caller's run ID.
package runner

import (
	"context"
	"errors"
	"fmt"
	"time"

	"rfpsim/internal/config"
	"rfpsim/internal/core"
	"rfpsim/internal/isa"
	"rfpsim/internal/obs"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
)

// SeedStride perturbs the workload seed between replicas (a large odd
// constant — the golden-ratio increment — so replica seeds are well
// spread). It is part of the deterministic job definition: the same Job
// always simulates the same replica set.
const SeedStride = 0x9E3779B97F4A7C15

// Job describes one deterministic simulation unit.
type Job struct {
	// Config is the core configuration to simulate.
	Config config.Core
	// Spec names the workload. With Gen unset, each replica runs
	// Spec.New() with a per-replica perturbed seed.
	Spec trace.Spec
	// Gen, when set, overrides Spec.New() as the uop source (the
	// trace-file path). Generator state is consumed by a run, so Gen
	// requires Seeds <= 1.
	Gen isa.Generator
	// NewGen, when set, is a re-instantiable generator factory overriding
	// Spec.New(): every call must return a fresh generator producing an
	// identical uop stream (uploaded traces re-decoded from bytes). Unlike
	// the one-shot Gen it survives multiple runs, so sampled execution
	// (internal/sample) can profile the stream and then replay intervals.
	// Seed perturbation is meaningless for a fixed stream, so NewGen still
	// requires Seeds <= 1, and at most one of Gen/NewGen may be set.
	NewGen func() isa.Generator
	// FastForwardUops functionally consumes this many uops before the
	// cycle-accurate warmup, training long-lived predictors and warming
	// caches without simulating timing (core.FastForward). Sampled replay
	// (internal/sample) uses it to reach an interval deep in the stream
	// with full-run-equivalent predictor state at a fraction of the cost.
	FastForwardUops uint64
	// WarmupUops runs (and discards) this many uops before measuring.
	WarmupUops uint64
	// MeasureUops is the measured window length. Run rejects 0: a job
	// that measures nothing is a caller bug, not an empty result.
	MeasureUops uint64
	// Seeds is the replica count and must be explicit (>= 1). Seeds > 1
	// replicates the job with perturbed generator seeds and sums the
	// counters (ratios over the sums are replica-weighted averages). Run
	// rejects 0 so a forgotten field fails loudly instead of silently
	// meaning "one replica".
	Seeds int
	// ColdCaches skips footprint-based cache warming.
	ColdCaches bool
	// Sampling, when set, asks for SimPoint-style sampled simulation:
	// only representative intervals of the measured window are
	// cycle-simulated and the statistics are cluster-weight scaled.
	// Run itself rejects a sampled job — execute it with
	// internal/sample.Run, which profiles, clusters and replays through
	// this runner. The spec lives here (not in internal/sample) so Job
	// stays the single wire-independent job description.
	Sampling *Sampling
	// AfterWarmup, when set, observes each replica's core between warmup
	// and the measured run (pipe traces, per-PC profiles). Under
	// sampling it fires once per replayed interval.
	AfterWarmup func(*core.Core)
}

// Sampling configures sampled simulation of a job's measured window. The
// zero value of each field selects the documented default; internal/sample
// owns the defaulting and the execution.
type Sampling struct {
	// IntervalUops is the profiling/replay interval length (default 2000).
	// The measured window is split into MeasureUops/IntervalUops
	// intervals; a trailing remainder shorter than one interval is not
	// sampled.
	IntervalUops uint64
	// MaxK bounds the number of representative intervals (default 5).
	// Fewer are simulated when the clusterer needs fewer, or when the
	// window has fewer intervals than MaxK.
	MaxK int
	// WarmupUops is the per-representative cycle-accurate warmup run
	// before each measured interval, on top of footprint cache warming
	// (default: one interval).
	WarmupUops uint64
}

func (j Job) seeds() int {
	if j.Seeds > 1 {
		return j.Seeds
	}
	return 1
}

// TotalUops is the job's simulated volume across all replicas,
// (warmup+measure)*seeds. The service checks it against its per-job
// ceiling and the sweep orchestrator weighs progress/ETA by it.
func (j Job) TotalUops() uint64 {
	return (j.WarmupUops + j.MeasureUops) * uint64(j.seeds())
}

// Run executes the job, honouring ctx cancellation between and within
// replicas. On any error — including cancellation — the partially
// accumulated total is discarded and a nil Sim is returned: a Job's result
// is all replicas or nothing, so averaged metrics can never silently mix
// replica counts.
//
// Observability rides on the context: when obs.WithTimings attached a
// collector, each stage's wall time (fastforward / warmup / measure /
// aggregate) is added to it, and per-replica completions are logged at
// debug level through obs.Logger, carrying whatever run ID the caller
// minted at its API boundary.
func Run(ctx context.Context, job Job) (*stats.Sim, error) {
	if err := job.Config.Validate(); err != nil {
		return nil, fmt.Errorf("runner: invalid config: %w", err)
	}
	if job.MeasureUops == 0 {
		return nil, errors.New("runner: MeasureUops is 0 — the job would simulate nothing; set the measured window explicitly")
	}
	if job.Seeds < 1 {
		return nil, fmt.Errorf("runner: Seeds is %d — the replica count must be explicit; set Seeds: 1 for a single replica", job.Seeds)
	}
	if job.Sampling != nil {
		return nil, errors.New("runner: job requests sampled simulation; execute it with internal/sample.Run (runner.Run is the full-window path)")
	}
	if (job.Gen != nil || job.NewGen != nil) && job.seeds() > 1 {
		return nil, errors.New("runner: a generator override supports a single seed only")
	}
	if job.Gen != nil && job.NewGen != nil {
		return nil, errors.New("runner: Gen and NewGen are mutually exclusive generator overrides")
	}
	tim := obs.ContextTimings(ctx)
	observe := func(stage string, since time.Time) {
		if tim != nil {
			tim.Observe(stage, time.Since(since))
		}
	}
	total := &stats.Sim{}
	for s := 0; s < job.seeds(); s++ {
		replica := job.Spec
		replica.Seed = job.Spec.Seed + uint64(s)*SeedStride
		gen := job.Gen
		if gen == nil && job.NewGen != nil {
			gen = job.NewGen()
		}
		if gen == nil {
			gen = replica.New()
		}
		c := core.New(job.Config, gen)
		if !job.ColdCaches {
			c.WarmCaches()
		}
		begin := time.Now()
		if err := c.FastForward(ctx, job.FastForwardUops); err != nil {
			return nil, fmt.Errorf("runner: %s seed %d fast-forward: %w", job.Spec.Name, s, err)
		}
		observe(obs.StageFastForward, begin)
		begin = time.Now()
		if err := c.Warmup(ctx, job.WarmupUops); err != nil {
			return nil, fmt.Errorf("runner: %s seed %d warmup: %w", job.Spec.Name, s, err)
		}
		observe(obs.StageWarmup, begin)
		if job.AfterWarmup != nil {
			job.AfterWarmup(c)
		}
		begin = time.Now()
		st, err := c.Run(ctx, job.MeasureUops)
		if err != nil {
			return nil, fmt.Errorf("runner: %s seed %d: %w", job.Spec.Name, s, err)
		}
		observe(obs.StageMeasure, begin)
		begin = time.Now()
		stats.Accumulate(total, st)
		observe(obs.StageAggregate, begin)
		obs.Logger(ctx).Debug("replica complete",
			"workload", job.Spec.Name, "config", job.Config.Name,
			"seed_index", s, "cycles", st.Cycles, "uops", st.Instructions)
	}
	return total, nil
}
