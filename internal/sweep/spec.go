// Package sweep is the parameter-sweep orchestrator behind cmd/rfpsweep:
// it expands a JSON sweep specification (axes over service.ConfigSpec
// knobs crossed with workloads) into deterministic simulation units keyed
// by the same content address the rfpsimd result cache uses, executes them
// through a pluggable backend (in-process runner or a load-balanced fleet
// of rfpsimd endpoints), journals every completed unit to an append-only
// JSONL checkpoint so a crashed sweep resumes where it stopped, and
// aggregates the results into the CSV schema cmd/experiments emits.
//
// Observability goes through internal/obs: each unit gets a run ID that
// the HTTP backend forwards to the executing daemon (so one ID follows a
// unit across processes), per-stage timing breakdowns are collected into
// Summary.Timings for the optional -timings CSV, and the Metrics block
// implements obs.Collector so -metrics-addr serves it from the same
// registry machinery rfpsimd uses. See docs/observability.md.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"rfpsim/internal/fabric"
	"rfpsim/internal/service"
	"rfpsim/internal/trace"
)

// Spec is the JSON sweep description.
type Spec struct {
	// Name labels the sweep; it prefixes every unit label (and therefore
	// every CSV "experiment" cell).
	Name string `json:"name"`
	// Mode selects what each grid point runs: "sim" (the default, and
	// what the empty string means) simulates and reports IPC;
	// "check_diff" runs the differential correctness oracle of
	// internal/check against every grid point instead — each
	// configuration is paired with a derived base (DiffMode) and the
	// committed architectural digests are compared. See docs/checking.md.
	Mode string `json:"mode,omitempty"`
	// DiffMode names the check pairing for mode "check_diff": one of
	// check.Modes ("norfp", "novp", "nolatealloc", "nopf", "baseline",
	// "full"); empty means "norfp". Only valid with mode "check_diff".
	DiffMode string `json:"diff_mode,omitempty"`
	// Workloads lists catalog entries to sweep over. An entry may also be
	// "all" (the whole catalog), "category:<name>" (one Table 3 category)
	// or "trace:<sha256>" (an uploaded trace by content address; the local
	// backend resolves it from its trace store, the HTTP backend from the
	// daemons' — upload with rfpsweep -traces or POST /v1/traces first).
	// Duplicates after expansion are rejected.
	Workloads []string `json:"workloads"`
	// Base is the configuration every grid point starts from; axes
	// override individual knobs on top of it.
	Base service.ConfigSpec `json:"base"`
	// Axes span the grid: the cartesian product of all axis values is
	// applied to Base. The first axis varies slowest.
	Axes []Axis `json:"axes,omitempty"`
	// WarmupUops/MeasureUops/Seeds/ColdCaches mirror the service request
	// fields and apply to every unit (defaults 30000/60000/1/false).
	WarmupUops  uint64 `json:"warmup_uops,omitempty"`
	MeasureUops uint64 `json:"measure_uops,omitempty"`
	Seeds       int    `json:"seeds,omitempty"`
	ColdCaches  bool   `json:"cold_caches,omitempty"`
	// Sampling applies SimPoint-style sampled simulation to every unit
	// (see docs/sampling.md): representative intervals only, weighted
	// statistics, roughly a 5x cut in per-unit simulation cost. Sampled
	// units key to different content addresses than their full-window
	// twins, so flipping this on a resumed sweep re-simulates every unit.
	Sampling *service.SamplingSpec `json:"sampling,omitempty"`
	// TimeoutMS bounds each unit's wall time on the executing backend.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Axis is one swept knob: a service.ConfigSpec JSON field name and the
// values it takes.
type Axis struct {
	Knob   string            `json:"knob"`
	Values []json.RawMessage `json:"values"`
}

// Unit is one deterministic grid point: a fully resolved simulation
// request plus the rfpsimd content address that identifies it in the
// checkpoint journal, the daemon result cache and the aggregate CSV.
type Unit struct {
	// Label is the human-readable identity, "<sweep>/<workload>/<knobs>";
	// it is the CSV "experiment" column.
	Label string
	// Req is the request any backend executes.
	Req service.SimRequest
	// Key is service.ContentAddress(Req).
	Key string
}

// ParseSpec decodes and validates a sweep spec (unknown fields are
// rejected so a typoed knob cannot silently sweep nothing).
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep: bad spec: %w", err)
	}
	if s.Name == "" {
		return nil, fmt.Errorf("sweep: spec needs a name")
	}
	if len(s.Workloads) == 0 {
		return nil, fmt.Errorf("sweep: spec needs at least one workload")
	}
	switch s.Mode {
	case "", "sim":
		if s.DiffMode != "" {
			return nil, fmt.Errorf("sweep: diff_mode %q needs mode \"check_diff\"", s.DiffMode)
		}
	case "check_diff":
	default:
		return nil, fmt.Errorf("sweep: unknown mode %q (supported: sim, check_diff)", s.Mode)
	}
	return &s, nil
}

// CheckDiff reports whether this spec runs the differential oracle
// instead of plain simulations.
func (s *Spec) CheckDiff() bool { return s.Mode == "check_diff" }

// workloads expands the workload selectors against the catalog.
func (s *Spec) workloads() ([]trace.Spec, error) {
	var specs []trace.Spec
	seen := map[string]bool{}
	add := func(sp trace.Spec) error {
		if seen[sp.Name] {
			return fmt.Errorf("sweep: workload %s selected twice", sp.Name)
		}
		seen[sp.Name] = true
		specs = append(specs, sp)
		return nil
	}
	for _, w := range s.Workloads {
		switch {
		case w == "all":
			for _, sp := range trace.Catalog() {
				if err := add(sp); err != nil {
					return nil, err
				}
			}
		case strings.HasPrefix(w, "category:"):
			cat := trace.Category(strings.TrimPrefix(w, "category:"))
			matched := trace.ByCategory(cat)
			if len(matched) == 0 {
				return nil, fmt.Errorf("sweep: category %q matches no workloads", cat)
			}
			for _, sp := range matched {
				if err := add(sp); err != nil {
					return nil, err
				}
			}
		case strings.HasPrefix(w, service.TraceWorkloadPrefix):
			// An uploaded trace by content address. The spec entry carries
			// the full 64-hex digest (so the unit keys exactly like a POST
			// /v1/sim for the same trace); labels shorten it for the CSV.
			addr := strings.TrimPrefix(w, service.TraceWorkloadPrefix)
			if !fabric.ValidAddr(addr) {
				return nil, fmt.Errorf("sweep: malformed trace address %q (want the 64-hex sha256 from POST /v1/traces)", w)
			}
			if err := add(trace.Spec{Name: w, Category: "trace-file"}); err != nil {
				return nil, err
			}
		default:
			sp, ok := trace.ByName(w)
			if !ok {
				return nil, fmt.Errorf("sweep: unknown workload %q", w)
			}
			if err := add(sp); err != nil {
				return nil, err
			}
		}
	}
	return specs, nil
}

// applyAxes overrides one knob per axis on top of the base config, going
// through JSON so the knob names are exactly the wire-format field names
// (and unknown knobs fail loudly instead of sweeping nothing).
func applyAxes(base service.ConfigSpec, axes []Axis, choice []int) (service.ConfigSpec, error) {
	raw, err := json.Marshal(base)
	if err != nil {
		return service.ConfigSpec{}, err
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		return service.ConfigSpec{}, err
	}
	for i, ax := range axes {
		fields[ax.Knob] = ax.Values[choice[i]]
	}
	merged, err := json.Marshal(fields)
	if err != nil {
		return service.ConfigSpec{}, err
	}
	dec := json.NewDecoder(bytes.NewReader(merged))
	dec.DisallowUnknownFields()
	var out service.ConfigSpec
	if err := dec.Decode(&out); err != nil {
		return service.ConfigSpec{}, fmt.Errorf("sweep: applying axes: %w", err)
	}
	return out, nil
}

// axisLabel renders one knob=value pair; string values drop their quotes.
func axisLabel(ax Axis, v json.RawMessage) string {
	var s string
	if err := json.Unmarshal(v, &s); err == nil {
		return ax.Knob + "=" + s
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, v); err != nil {
		return ax.Knob + "=" + string(v)
	}
	return ax.Knob + "=" + buf.String()
}

// Expand enumerates the full grid in deterministic order: the cartesian
// product of the axes (first axis slowest), workloads innermost. Every
// unit's configuration is validated by building it, and every unit is
// keyed by the daemon's content address; duplicate keys (two grid points
// resolving to the same simulation) are rejected rather than silently
// collapsed, since they would make "done units" ambiguous on resume.
func (s *Spec) Expand() ([]Unit, error) {
	if s.CheckDiff() {
		return nil, fmt.Errorf("sweep: mode \"check_diff\" expands with ExpandDiff, not Expand")
	}
	specs, err := s.workloads()
	if err != nil {
		return nil, err
	}
	for i, ax := range s.Axes {
		if ax.Knob == "" || len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %d needs a knob and at least one value", i)
		}
	}

	choice := make([]int, len(s.Axes))
	var units []Unit
	byKey := map[string]string{}
	for {
		cfg, err := applyAxes(s.Base, s.Axes, choice)
		if err != nil {
			return nil, err
		}
		if _, err := cfg.Build(); err != nil {
			return nil, fmt.Errorf("sweep: grid point %s: %w", pointLabel(s.Axes, choice), err)
		}
		for _, wl := range specs {
			req := service.SimRequest{
				Workload:    wl.Name,
				Config:      cfg,
				WarmupUops:  s.WarmupUops,
				MeasureUops: s.MeasureUops,
				Seeds:       s.Seeds,
				ColdCaches:  s.ColdCaches,
				Sampling:    s.Sampling,
				TimeoutMS:   s.TimeoutMS,
			}
			key, err := service.ContentAddress(req)
			if err != nil {
				return nil, fmt.Errorf("sweep: %s/%s: %w", wl.Name, pointLabel(s.Axes, choice), err)
			}
			label := s.Name + "/" + displayName(wl.Name) + "/" + pointLabel(s.Axes, choice)
			if prev, dup := byKey[key]; dup {
				return nil, fmt.Errorf("sweep: units %s and %s resolve to the same simulation (key %s)", prev, label, key[:12])
			}
			byKey[key] = label
			units = append(units, Unit{Label: label, Req: req, Key: key})
		}
		// Odometer increment over the axes, last axis fastest.
		i := len(s.Axes) - 1
		for ; i >= 0; i-- {
			choice[i]++
			if choice[i] < len(s.Axes[i].Values) {
				break
			}
			choice[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return units, nil
}

// displayName shortens a trace-addressed workload name for labels the
// same way the daemon names the resolved spec (trace: plus 16 hex chars);
// catalog names pass through unchanged. The unit's request keeps the full
// digest, so keying is unaffected.
func displayName(name string) string {
	const short = len(service.TraceWorkloadPrefix) + 16
	if strings.HasPrefix(name, service.TraceWorkloadPrefix) && len(name) > short {
		return name[:short]
	}
	return name
}

// pointLabel renders one grid point's swept knobs ("base" when no axes).
func pointLabel(axes []Axis, choice []int) string {
	if len(axes) == 0 {
		return "base"
	}
	parts := make([]string, len(axes))
	for i, ax := range axes {
		parts[i] = axisLabel(ax, ax.Values[choice[i]])
	}
	return strings.Join(parts, ",")
}
