package sweep

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"rfpsim/internal/obs"
)

// TestSweepMetricsZeroStateGolden pins the zero-state exposition format
// byte for byte — names, HELP/TYPE lines, label sets, ordering — the same
// way the service's golden test pins rfpsimd's. Dashboards scrape this via
// rfpsweep -metrics-addr; a diff here is an API break.
func TestSweepMetricsZeroStateGolden(t *testing.T) {
	const want = `# HELP rfpsweep_units_total Units in the expanded sweep grid.
# TYPE rfpsweep_units_total gauge
rfpsweep_units_total 0
# HELP rfpsweep_units_done_total Units completed, by how.
# TYPE rfpsweep_units_done_total counter
rfpsweep_units_done_total{how="run"} 0
rfpsweep_units_done_total{how="checkpoint"} 0
# HELP rfpsweep_units_failed_total Units that exhausted their retries.
# TYPE rfpsweep_units_failed_total counter
rfpsweep_units_failed_total 0
# HELP rfpsweep_unit_retries_total Extra backend attempts beyond each unit's first.
# TYPE rfpsweep_unit_retries_total counter
rfpsweep_unit_retries_total 0
# HELP rfpsweep_hedge_launched_total Speculative hedged attempts launched past the p95 latency threshold (docs/fabric.md).
# TYPE rfpsweep_hedge_launched_total counter
rfpsweep_hedge_launched_total 0
# HELP rfpsweep_hedge_wins_total Hedged attempts whose response arrived before the primary's.
# TYPE rfpsweep_hedge_wins_total counter
rfpsweep_hedge_wins_total 0
# HELP rfpsim_check_violations_total Runtime invariant violations across check_diff units (docs/checking.md).
# TYPE rfpsim_check_violations_total counter
rfpsim_check_violations_total 0
# HELP rfpsweep_diff_divergences_total check_diff units whose committed digests diverged.
# TYPE rfpsweep_diff_divergences_total counter
rfpsweep_diff_divergences_total 0
# HELP rfpsweep_backend_requests_total Requests per backend endpoint.
# TYPE rfpsweep_backend_requests_total counter
# HELP rfpsweep_backend_errors_total Failed requests per backend endpoint.
# TYPE rfpsweep_backend_errors_total counter
# HELP rfpsweep_backend_latency_seconds_sum Cumulative request latency per backend endpoint.
# TYPE rfpsweep_backend_latency_seconds_sum counter
`
	var b strings.Builder
	(&Metrics{}).WritePrometheus(&b)
	if b.String() != want {
		t.Errorf("zero-state exposition drifted:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// smallSpecJSON is a 1-workload, 2-point grid small enough to execute
// in-process in a test.
const smallSpecJSON = `{
	"name": "timsweep",
	"workloads": ["spec06_mcf"],
	"base": {"rfp": true},
	"axes": [{"knob": "pt_entries", "values": [128, 256]}],
	"warmup_uops": 2000,
	"measure_uops": 4000
}`

// TestTimingsCSV runs a small local sweep and checks the -timings CSV:
// one row per (executed unit, stage) in grid order, with a positive
// measure-stage wall time for every unit the runner actually simulated.
func TestTimingsCSV(t *testing.T) {
	spec, err := ParseSpec([]byte(smallSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	units, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(context.Background(), units, LocalBackend{}, Options{Parallel: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Timings) != len(units) {
		t.Fatalf("collected timings for %d units, want %d", len(sum.Timings), len(units))
	}

	var buf bytes.Buffer
	if err := sum.WriteTimingsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "experiment,stage,seconds" {
		t.Fatalf("header = %q", lines[0])
	}
	wantRows := len(units) * len(obs.Stages())
	if len(lines)-1 != wantRows {
		t.Fatalf("got %d data rows, want %d (%d units x %d stages)", len(lines)-1, wantRows, len(units), len(obs.Stages()))
	}
	// Rows follow grid order with the stage cycle repeating per unit.
	stages := obs.Stages()
	for i, line := range lines[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != 3 {
			t.Fatalf("row %d: %q", i, line)
		}
		wantUnit := units[i/len(stages)].Label
		if cols[0] != wantUnit {
			t.Errorf("row %d experiment = %q, want %q", i, cols[0], wantUnit)
		}
		if cols[1] != stages[i%len(stages)] {
			t.Errorf("row %d stage = %q, want %q", i, cols[1], stages[i%len(stages)])
		}
	}
	// Every executed unit simulated something, so its measure time is > 0.
	for _, u := range units {
		if sum.Timings[u.Key].Stage(obs.StageMeasure) <= 0 {
			t.Errorf("unit %s has no measure-stage wall time", u.Label)
		}
	}
}

// TestTimingsExcludedFromPinnedOutputs guards the determinism contract:
// the aggregate CSV must not change because timings were collected.
func TestTimingsExcludedFromPinnedOutputs(t *testing.T) {
	spec, err := ParseSpec([]byte(smallSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	units, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(context.Background(), units, LocalBackend{}, Options{Parallel: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := sum.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	for _, stage := range obs.Stages() {
		if strings.Contains(csv.String(), ","+stage+",") {
			t.Errorf("aggregate CSV leaked timing stage %q:\n%s", stage, csv.String())
		}
	}
}
