package sweep

import (
	"context"
	"time"

	"rfpsim/internal/sample"
	"rfpsim/internal/service"
)

// Backend executes one sweep unit to completion. Implementations own
// their transient-failure handling (the HTTP backend retries and fails
// over internally); an error returned here is terminal for the unit.
type Backend interface {
	// Run executes the unit and returns its deterministic result.
	Run(ctx context.Context, u Unit) (*service.SimResponse, error)
	// Name labels the backend in metrics and progress output.
	Name() string
}

// LocalBackend runs units in-process through internal/sample (which is
// internal/runner for full-window units) — the exact code path a POST
// /v1/sim executes on a daemon, so a sweep run locally and the same sweep
// run against a fleet produce identical CSVs.
type LocalBackend struct {
	// Metrics, when set, records per-unit latency under the "local"
	// backend label.
	Metrics *Metrics
	// Traces, when set, supplies the bytes behind "trace:<sha256>"
	// workload references (rfpsweep -traces fills it). Nil makes such
	// units fail resolution with an "unknown trace address" error.
	Traces *service.TraceStore
}

// Name implements Backend.
func (LocalBackend) Name() string { return "local" }

// Run implements Backend.
func (b LocalBackend) Run(ctx context.Context, u Unit) (*service.SimResponse, error) {
	job, _, err := service.ResolveJobWith(u.Req, b.Traces)
	if err != nil {
		return nil, err
	}
	if u.Req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(u.Req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	start := time.Now()
	res, err := sample.RunResult(ctx, job)
	if b.Metrics != nil {
		b.Metrics.observe(b.Name(), time.Since(start), err != nil)
	}
	if err != nil {
		return nil, err
	}
	resp := service.Response(job, res)
	return &resp, nil
}
