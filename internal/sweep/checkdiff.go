package sweep

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"sync"

	"rfpsim/internal/check"
	"rfpsim/internal/experiments"
	"rfpsim/internal/obs"
	"rfpsim/internal/runner"
)

// DiffUnit is one check_diff grid point: a variant configuration under
// test, paired with the base the diff mode derives from it.
type DiffUnit struct {
	// Label is "<sweep>/<workload>/<knobs>", the CSV "experiment" cell.
	Label string
	// Diff is the fully specified paired run.
	Diff check.Differential
}

// ExpandDiff enumerates the check_diff grid in the same deterministic
// order Expand uses: cartesian product of the axes (first axis slowest),
// workloads innermost. Every grid point's configuration is the VARIANT
// side of a differential; the base side is derived by the spec's
// DiffMode. Knobs the differential harness deliberately ignores are
// rejected rather than silently dropped.
func (s *Spec) ExpandDiff() ([]DiffUnit, error) {
	if !s.CheckDiff() {
		return nil, fmt.Errorf("sweep: ExpandDiff needs mode \"check_diff\", not %q", s.Mode)
	}
	mode := s.DiffMode
	if mode == "" {
		mode = "norfp"
	}
	// The differential digests both sides from stream position 0 and runs
	// a single seed; warmup/seed/cold knobs would silently mean something
	// different than they do for a sim sweep, so they fail loudly.
	if s.WarmupUops != 0 {
		return nil, fmt.Errorf("sweep: check_diff digests start at stream position 0; warmup_uops must be unset")
	}
	if s.Seeds > 1 {
		return nil, fmt.Errorf("sweep: check_diff compares single-seed runs; seeds must be unset")
	}
	if s.ColdCaches {
		return nil, fmt.Errorf("sweep: check_diff warms both sides identically; cold_caches must be unset")
	}
	if s.Sampling != nil && mode != "full" {
		return nil, fmt.Errorf("sweep: sampling only applies to diff_mode \"full\" (sampled vs full), not %q", mode)
	}

	specs, err := s.workloads()
	if err != nil {
		return nil, err
	}
	for i, ax := range s.Axes {
		if ax.Knob == "" || len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %d needs a knob and at least one value", i)
		}
	}

	choice := make([]int, len(s.Axes))
	var units []DiffUnit
	for {
		cfg, err := applyAxes(s.Base, s.Axes, choice)
		if err != nil {
			return nil, err
		}
		variant, err := cfg.Build()
		if err != nil {
			return nil, fmt.Errorf("sweep: grid point %s: %w", pointLabel(s.Axes, choice), err)
		}
		base, sampledVsFull, err := check.BaseFor(mode, variant)
		if err != nil {
			return nil, err
		}
		for _, wl := range specs {
			d := check.Differential{
				Base: base, Variant: variant,
				Spec: wl,
				Uops: s.MeasureUops,
			}
			if sampledVsFull {
				d.VariantSampling = &runner.Sampling{}
				if sp := s.Sampling; sp != nil {
					d.VariantSampling = &runner.Sampling{
						IntervalUops: sp.IntervalUops,
						MaxK:         sp.MaxK,
						WarmupUops:   sp.WarmupUops,
					}
				}
			}
			label := s.Name + "/" + wl.Name + "/" + pointLabel(s.Axes, choice)
			units = append(units, DiffUnit{Label: label, Diff: d})
		}
		i := len(s.Axes) - 1
		for ; i >= 0; i-- {
			choice[i]++
			if choice[i] < len(s.Axes[i].Values) {
				break
			}
			choice[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return units, nil
}

// DiffSummary is the outcome of a check_diff sweep.
type DiffSummary struct {
	// Units is the grid in deterministic order.
	Units []DiffUnit
	// Results maps unit label to outcome for every unit that ran.
	Results map[string]*check.Result
	// Failed lists units whose differential could not run at all (as
	// opposed to running and diverging).
	Failed []UnitError
}

// Clean reports whether every unit ran, no digests diverged and no
// runtime invariant fired — the pass/fail verdict of the sweep.
func (s *DiffSummary) Clean() bool {
	if len(s.Failed) > 0 || len(s.Results) < len(s.Units) {
		return false
	}
	for _, r := range s.Results {
		if r.Diverged || r.BaseViolations != 0 || r.VariantViolations != 0 {
			return false
		}
	}
	return true
}

// RunCheckDiff executes every differential unit with bounded
// parallelism, feeding divergence and violation counts into the metrics
// block (rfpsim_check_violations_total, rfpsweep_diff_divergences_total)
// and, when progress is non-nil, printing each unit's one-line verdict
// the way rfpsim -diff does. Unit failures do not abort the sweep.
func RunCheckDiff(ctx context.Context, units []DiffUnit, parallel int, m *Metrics, progress io.Writer) (*DiffSummary, error) {
	if m == nil {
		m = &Metrics{}
	}
	m.total.Store(uint64(len(units)))
	if parallel <= 0 {
		parallel = 4
	}
	sum := &DiffSummary{
		Units:   units,
		Results: make(map[string]*check.Result, len(units)),
	}
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		sem = make(chan struct{}, parallel)
	)
	for _, u := range units {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(u DiffUnit) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			log := obs.Logger(ctx).With("unit", u.Label)
			res, err := u.Diff.Run(ctx)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				log.Warn("diff unit failed", "err", err.Error())
				m.failed.Add(1)
				mu.Lock()
				sum.Failed = append(sum.Failed, UnitError{Unit: Unit{Label: u.Label}, Err: err})
				mu.Unlock()
				return
			}
			m.done.Add(1)
			m.checkViolations.Add(res.BaseViolations + res.VariantViolations)
			if res.Diverged {
				m.diffDivergences.Add(1)
				log.Warn("digest divergence", "uop", res.UopIndex, "interval", res.Interval)
			}
			mu.Lock()
			sum.Results[u.Label] = res
			if progress != nil {
				fmt.Fprintf(progress, "%s: %s\n", u.Label, res)
			}
			mu.Unlock()
		}(u)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return sum, err
	}
	if n := len(sum.Failed); n > 0 {
		return sum, fmt.Errorf("sweep: %d of %d diff units failed to run; first: %s: %w",
			n, len(units), sum.Failed[0].Unit.Label, sum.Failed[0].Err)
	}
	return sum, nil
}

// WriteCSV renders the verdicts in deterministic grid order using the
// experiments CSV schema: per unit a diverged flag (0/1) and the two
// sides' invariant violation totals. Localization detail (first
// divergent uop, interval hashes) is human-facing and goes to the
// progress stream instead, keeping this file byte-deterministic.
func (s *DiffSummary) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(experiments.MetricsCSVHeader); err != nil {
		return err
	}
	for _, u := range s.Units {
		res, ok := s.Results[u.Label]
		if !ok {
			continue
		}
		diverged := "0"
		if res.Diverged {
			diverged = "1"
		}
		rows := [][]string{
			{u.Label, "diverged", diverged},
			{u.Label, "base_violations", strconv.FormatUint(res.BaseViolations, 10)},
			{u.Label, "variant_violations", strconv.FormatUint(res.VariantViolations, 10)},
		}
		for _, row := range rows {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
