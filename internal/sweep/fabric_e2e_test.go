package sweep

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"testing"

	"rfpsim/internal/fabric"
	"rfpsim/internal/service"
)

// swapHandler lets a "daemon restart" replace the service behind a live
// listener without rebinding the port (the ring identity is the URL, so
// the port must survive the restart).
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	h.ServeHTTP(w, r)
}

func (s *swapHandler) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// scrapeCounter fetches url/metrics and returns the value of the exactly
// named sample line (name plus optional label set).
func scrapeCounter(t *testing.T, url, sample string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(sample) + ` ([0-9.e+-]+)$`)
	m := re.FindSubmatch(raw)
	if m == nil {
		t.Fatalf("%s/metrics has no sample %q", url, sample)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestFabricFleetSweepServesSecondRunFromFabric is the distributed-fabric
// acceptance test: a 3-daemon fleet with a shared hash ring and per-daemon
// disk caches runs a sweep twice, with every daemon restarted (fresh
// process-equivalent: empty memory cache, same cache dir, same URL) in
// between. The second run must simulate (almost) nothing — >=90% of units
// served by the fabric's disk and peer tiers — and produce a byte-identical
// aggregate CSV.
func TestFabricFleetSweepServesSecondRunFromFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon e2e")
	}
	const daemons = 3

	listeners := make([]net.Listener, daemons)
	urls := make([]string, daemons)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}

	dirs := make([]string, daemons)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	newDaemon := func(i int) *service.Server {
		svc, err := service.New(service.Options{
			Workers: 2,
			Fabric: fabric.Options{
				Dir:   dirs[i],
				Self:  urls[i],
				Peers: urls,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}

	services := make([]*service.Server, daemons)
	swappers := make([]*swapHandler, daemons)
	for i := 0; i < daemons; i++ {
		services[i] = newDaemon(i)
		swappers[i] = &swapHandler{h: services[i].Handler()}
		hs := &http.Server{Handler: swappers[i]}
		go hs.Serve(listeners[i])
		defer hs.Close()
	}
	defer func() {
		for _, svc := range services {
			svc.Close()
		}
	}()

	units := testUnits(t) // 24 distinct units
	runSweep := func() string {
		be, err := NewHTTPBackend(urls, HTTPBackendOptions{Metrics: &Metrics{}})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := Run(context.Background(), units, be, Options{Parallel: 6}, nil)
		if err != nil {
			t.Fatal(err)
		}
		var csv bytes.Buffer
		if err := sum.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return csv.String()
	}

	simulated := func() float64 {
		total := 0.0
		for _, u := range urls {
			total += scrapeCounter(t, u, `rfpsimd_jobs_done_total{status="ok"}`)
		}
		return total
	}

	csv1 := runSweep()
	sim1 := simulated()
	if sim1 < float64(len(units)) {
		t.Fatalf("first run simulated %g jobs, want >= %d (distinct units)", sim1, len(units))
	}

	// Restart the whole fleet: new Server per slot, same dir + URL. Close
	// the old one first so its async owner write-backs are flushed.
	for i := 0; i < daemons; i++ {
		services[i].Close()
		services[i] = newDaemon(i)
		swappers[i].swap(services[i].Handler())
	}

	csv2 := runSweep()
	sim2 := simulated() // fresh daemons: counts only second-run simulations
	if csv2 != csv1 {
		t.Errorf("aggregate CSV differs between runs:\nrun1:\n%s\nrun2:\n%s", csv1, csv2)
	}
	budget := float64(len(units)) * 0.10
	if sim2 > budget {
		t.Errorf("second run simulated %g of %d units; fabric must serve >= 90%%", sim2, len(units))
	}
	// The fabric tiers actually did the serving (not just the assertion's
	// complement): disk and peer hits across the fleet cover the units.
	served := 0.0
	for _, u := range urls {
		served += scrapeCounter(t, u, "rfpsimd_fabric_disk_hits_total")
		served += scrapeCounter(t, u, "rfpsimd_fabric_peer_hits_total")
	}
	if served+sim2 < float64(len(units)) {
		t.Errorf("fabric served %g + simulated %g < %d units", served, sim2, len(units))
	}
	fmt.Printf("fabric e2e: run2 simulated=%g fabric-served=%g of %d units\n", sim2, served, len(units))
}
