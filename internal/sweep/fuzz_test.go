package sweep

import "testing"

// FuzzSweepSpec feeds arbitrary JSON to the spec parser and, when it
// parses, expands a bounded grid: neither step may panic, and every
// expanded unit must carry a non-empty label and content address (the
// invariants the checkpoint journal and the CSV key on). Oversized
// grids are skipped — the contract under test is validation, not
// combinatorics. Seed corpus under testdata/fuzz/FuzzSweepSpec.
func FuzzSweepSpec(f *testing.F) {
	f.Add([]byte(smallSpecJSON))
	f.Add([]byte(diffSpecJSON))
	f.Add([]byte(`{"name":"n","workloads":["all"],"base":{}}`))
	f.Add([]byte(`{"name":"n","workloads":["category:cloud"],"base":{"vp":"eves"},"sampling":{"max_k":2}}`))
	f.Add([]byte(`{"name":"n","workloads":["spec06_mcf"],"axes":[{"knob":"rfp","values":[true,false]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return // rejected: fine
		}
		product := 1
		for _, ax := range s.Axes {
			product *= max(len(ax.Values), 1)
			if product > 8 {
				return
			}
		}
		if len(s.Workloads) > 4 {
			return
		}
		var labels []string
		if s.CheckDiff() {
			units, err := s.ExpandDiff()
			if err != nil {
				return
			}
			for _, u := range units {
				labels = append(labels, u.Label)
			}
		} else {
			units, err := s.Expand()
			if err != nil {
				return
			}
			for _, u := range units {
				if u.Key == "" {
					t.Fatalf("unit %q expanded with an empty content address", u.Label)
				}
				labels = append(labels, u.Label)
			}
		}
		for _, l := range labels {
			if l == "" {
				t.Fatal("unit expanded with an empty label")
			}
		}
	})
}
