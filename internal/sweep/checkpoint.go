package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"rfpsim/internal/service"
)

// checkpointEntry is one journal line: a completed unit's content address
// and its full deterministic result. The label rides along so a journal
// is inspectable with standard JSONL tooling.
type checkpointEntry struct {
	Key   string               `json:"key"`
	Label string               `json:"label"`
	Resp  *service.SimResponse `json:"resp"`
}

// Journal is the append-only JSONL checkpoint. Each completed unit is
// written as one line in a single write syscall, so a crash can corrupt
// at most the final line — which LoadCheckpoint tolerates by design.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if needed) the checkpoint for appending.
// Records are whole lines written in one syscall, so a file that does not
// end in '\n' carries a torn tail from a crash mid-append; it is truncated
// back to the last complete line here, otherwise the next record would
// concatenate onto the fragment and turn a tolerable torn tail into
// interior corruption.
func OpenJournal(path string) (*Journal, error) {
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 && data[len(data)-1] != '\n' {
		keep := int64(bytes.LastIndexByte(data, '\n') + 1)
		if err := os.Truncate(path, keep); err != nil {
			return nil, fmt.Errorf("sweep: healing torn checkpoint tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: opening checkpoint: %w", err)
	}
	return &Journal{f: f}, nil
}

// Record appends one completed unit. The line is marshalled fully before
// the single Write call; partial lines can only come from a crash mid-
// syscall, never from interleaved workers.
func (j *Journal) Record(u Unit, resp *service.SimResponse) error {
	line, err := json.Marshal(checkpointEntry{Key: u.Key, Label: u.Label, Resp: resp})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("sweep: writing checkpoint: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// CheckpointState is what a journal replays to.
type CheckpointState struct {
	// Results maps unit content address to the recorded response.
	Results map[string]*service.SimResponse
	// Entries counts valid journal lines (including duplicates).
	Entries int
	// Duplicates counts lines whose key was already recorded (a unit
	// journalled twice, e.g. by a crash between write and ack on a
	// previous resume); the first record wins — results are deterministic,
	// so any duplicate body is identical anyway.
	Duplicates int
	// TruncatedTail is true when the final line was cut short (the crash
	// case) and therefore ignored.
	TruncatedTail bool
}

// LoadCheckpoint replays a journal. A missing file is an empty state. A
// malformed or incomplete final line is tolerated (that is exactly what a
// kill -9 mid-append leaves behind); malformed interior lines mean real
// corruption and fail loudly.
func LoadCheckpoint(path string) (*CheckpointState, error) {
	st := &CheckpointState{Results: map[string]*service.SimResponse{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: reading checkpoint: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed journal ends with '\n', so the final split element is
	// empty; anything non-empty there is a torn tail candidate too.
	last := len(lines) - 1
	for last >= 0 && len(bytes.TrimSpace(lines[last])) == 0 {
		last--
	}
	for i := 0; i <= last; i++ {
		line := bytes.TrimSpace(lines[i])
		if len(line) == 0 {
			continue
		}
		var e checkpointEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" || e.Resp == nil {
			if i == last {
				st.TruncatedTail = true
				continue
			}
			return nil, fmt.Errorf("sweep: checkpoint %s line %d is corrupt (not a truncated tail): %v", path, i+1, err)
		}
		st.Entries++
		if _, dup := st.Results[e.Key]; dup {
			st.Duplicates++
			continue
		}
		st.Results[e.Key] = e.Resp
	}
	return st, nil
}
