package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rfpsim/internal/isa"
	"rfpsim/internal/service"
	"rfpsim/internal/trace"
	"rfpsim/internal/tracefile"
)

// testSpecJSON is a 2-workload x (4 pt_entries x 3 confidence_bits) grid:
// 24 units, the acceptance-test scale.
const testSpecJSON = `{
	"name": "ptsweep",
	"workloads": ["spec06_mcf", "spec06_hmmer"],
	"base": {"rfp": true},
	"axes": [
		{"knob": "pt_entries", "values": [128, 256, 512, 1024]},
		{"knob": "confidence_bits", "values": [1, 2, 3]}
	],
	"warmup_uops": 2000,
	"measure_uops": 4000
}`

func testUnits(t *testing.T) []Unit {
	t.Helper()
	spec, err := ParseSpec([]byte(testSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	units, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return units
}

func TestExpandGrid(t *testing.T) {
	units := testUnits(t)
	if len(units) != 24 {
		t.Fatalf("expanded %d units, want 24", len(units))
	}
	// Deterministic order: first axis slowest, workloads innermost.
	wantFirst := []string{
		"ptsweep/spec06_mcf/pt_entries=128,confidence_bits=1",
		"ptsweep/spec06_hmmer/pt_entries=128,confidence_bits=1",
		"ptsweep/spec06_mcf/pt_entries=128,confidence_bits=2",
	}
	for i, want := range wantFirst {
		if units[i].Label != want {
			t.Errorf("unit %d label = %q, want %q", i, units[i].Label, want)
		}
	}
	if last := units[23].Label; last != "ptsweep/spec06_hmmer/pt_entries=1024,confidence_bits=3" {
		t.Errorf("final unit label = %q", last)
	}
	// Unit keys are exactly the daemon's content addresses.
	seen := map[string]bool{}
	for _, u := range units {
		key, err := service.ContentAddress(u.Req)
		if err != nil {
			t.Fatal(err)
		}
		if key != u.Key {
			t.Errorf("%s: unit key %s != content address %s", u.Label, u.Key, key)
		}
		if seen[key] {
			t.Errorf("duplicate key %s", key)
		}
		seen[key] = true
		if u.Req.Config.PTEntries == 0 || u.Req.Config.ConfidenceBits == 0 || !u.Req.Config.RFP {
			t.Errorf("%s: axes not applied: %+v", u.Label, u.Req.Config)
		}
	}
}

func TestExpandRejectsBadSpecs(t *testing.T) {
	cases := map[string]string{
		"unknown spec field": `{"name":"x","workloads":["spec06_mcf"],"bogus":1}`,
		"unknown knob":       `{"name":"x","workloads":["spec06_mcf"],"base":{"rfp":true},"axes":[{"knob":"pt_entriez","values":[128]}]}`,
		"unknown workload":   `{"name":"x","workloads":["no_such"]}`,
		"duplicate workload": `{"name":"x","workloads":["spec06_mcf","spec06_mcf"]}`,
		"empty axis":         `{"name":"x","workloads":["spec06_mcf"],"axes":[{"knob":"pt_entries","values":[]}]}`,
		"invalid config":     `{"name":"x","workloads":["spec06_mcf"],"axes":[{"knob":"pt_entries","values":[128]}]}`,
		"missing name":       `{"workloads":["spec06_mcf"]}`,
		"colliding points":   `{"name":"x","workloads":["spec06_mcf"],"base":{"rfp":true},"axes":[{"knob":"pt_entries","values":[1024,1024]}]}`,
	}
	for name, js := range cases {
		spec, err := ParseSpec([]byte(js))
		if err == nil {
			_, err = spec.Expand()
		}
		if err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestExpandSelectors(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"name":"s","workloads":["all"],"base":{"rfp":true},"warmup_uops":1000,"measure_uops":1000}`))
	if err != nil {
		t.Fatal(err)
	}
	units, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) < 60 {
		t.Errorf(`"all" expanded to %d units, want the full catalog`, len(units))
	}
	if units[0].Label != "s/"+units[0].Req.Workload+"/base" {
		t.Errorf("axis-free label = %q, want .../base", units[0].Label)
	}

	spec2, err := ParseSpec([]byte(`{"name":"s","workloads":["category:Cloud"]}`))
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := spec2.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cloud) == 0 || len(cloud) >= len(units) {
		t.Errorf("category:Cloud expanded to %d units, want a proper non-empty subset of %d", len(cloud), len(units))
	}
	for _, u := range cloud {
		sp, ok := trace.ByName(u.Req.Workload)
		if !ok || sp.Category != trace.Cloud {
			t.Errorf("category:Cloud selected %s (category %s)", u.Req.Workload, sp.Category)
		}
	}
}

// flakyHandler returns 429 (with Retry-After) for the first reject sim
// POSTs, then delegates to the real daemon handler.
func flakyHandler(h http.Handler, reject int32) (http.Handler, *atomic.Int32) {
	var n atomic.Int32
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/sim" && n.Add(1) <= reject {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"job queue is full, retry later","status":"rejected"}`)
			return
		}
		h.ServeHTTP(w, r)
	}), &n
}

// TestHTTPBackendRetriesAndFailsOver: a unit first hitting a 429ing
// endpoint must land on the healthy one and succeed, counting a retry.
func TestHTTPBackendRetriesAndFailsOver(t *testing.T) {
	svcA, err := service.New(service.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svcA.Close()
	always429 := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintln(w, `{"error":"full","status":"rejected"}`)
	})
	tsA := httptest.NewServer(always429)
	defer tsA.Close()
	tsB := httptest.NewServer(svcA.Handler())
	defer tsB.Close()

	m := &Metrics{}
	be, err := NewHTTPBackend([]string{tsA.URL, tsB.URL}, HTTPBackendOptions{
		Metrics: m, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	units := testUnits(t)
	resp, err := be.Run(context.Background(), units[0])
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if resp.Cycles == 0 {
		t.Errorf("empty response: %+v", resp)
	}

	// The same unit locally must agree exactly.
	local, err := (LocalBackend{}).Run(context.Background(), units[0])
	if err != nil {
		t.Fatal(err)
	}
	if local.Cycles != resp.Cycles || local.IPC != resp.IPC {
		t.Errorf("http result (%d cycles, ipc %g) != local (%d cycles, ipc %g)",
			resp.Cycles, resp.IPC, local.Cycles, local.IPC)
	}
}

// TestHTTPBackendPermanentErrorsDoNotRetry: a 400 means the whole fleet
// would reject the unit, so exactly one attempt is made.
func TestHTTPBackendPermanentErrorsDoNotRetry(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintln(w, `{"error":"bad","status":"invalid"}`)
	}))
	defer ts.Close()
	be, err := NewHTTPBackend([]string{ts.URL}, HTTPBackendOptions{BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Run(context.Background(), testUnits(t)[0]); err == nil {
		t.Fatal("expected an error for a 400 response")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("400 retried: %d attempts, want 1", got)
	}
}

// TestHTTPBackendBoundedRetries: a persistently failing fleet gives up
// after MaxAttempts rather than spinning forever.
func TestHTTPBackendBoundedRetries(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintln(w, `{"error":"boom","status":"error"}`)
	}))
	defer ts.Close()
	m := &Metrics{}
	be, err := NewHTTPBackend([]string{ts.URL}, HTTPBackendOptions{
		MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = be.Run(context.Background(), testUnits(t)[0])
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v, want bounded-attempts failure", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("made %d attempts, want 3", got)
	}
	if got := m.Retried(); got != 2 {
		t.Errorf("retried metric = %d, want 2", got)
	}
}

// TestMetricsExposition smoke-tests the Prometheus rendering.
func TestMetricsExposition(t *testing.T) {
	m := &Metrics{}
	m.total.Store(4)
	m.done.Add(2)
	m.failed.Add(1)
	m.observe("local", 3*time.Millisecond, false)
	var b strings.Builder
	m.WritePrometheus(&b)
	for _, want := range []string{
		"rfpsweep_units_total 4",
		`rfpsweep_units_done_total{how="run"} 2`,
		"rfpsweep_units_failed_total 1",
		`rfpsweep_backend_requests_total{backend="local"} 1`,
		`rfpsweep_backend_latency_seconds_sum{backend="local"} 0.003`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("metrics missing %q in:\n%s", want, b.String())
		}
	}
}

// TestSpecRoundTripsThroughJSON: the spec type itself marshals cleanly
// (what -dry-run users see is what Expand runs).
func TestSpecRoundTripsThroughJSON(t *testing.T) {
	spec, err := ParseSpec([]byte(testSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := ParseSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	u1, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	u2, err := spec2.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(u1) != len(u2) {
		t.Fatalf("round-tripped spec expands differently: %d vs %d units", len(u1), len(u2))
	}
	for i := range u1 {
		if u1[i].Key != u2[i].Key {
			t.Errorf("unit %d key differs after round trip", i)
		}
	}
}

// traceRFPT encodes n uops of a catalog workload into raw .rfpt bytes —
// the format POST /v1/traces (and the local backend's trace store)
// accepts.
func traceRFPT(t *testing.T, n int) []byte {
	t.Helper()
	sp, ok := trace.ByName("spec06_mcf")
	if !ok {
		t.Fatal("spec06_mcf missing from catalog")
	}
	gen := sp.New()
	var buf bytes.Buffer
	w := tracefile.NewWriter(&buf)
	var op isa.MicroOp
	for i := 0; i < n; i++ {
		if !gen.Next(&op) {
			t.Fatalf("catalog generator ended at uop %d", i)
		}
		if err := w.Write(&op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepTraceWorkload: a "trace:<sha256>" spec entry expands next to a
// catalog workload, resolves through the local backend's trace store, and
// the aggregate CSV is byte-identical across two full runs — the same
// determinism contract catalog-only sweeps pin.
func TestSweepTraceWorkload(t *testing.T) {
	store := service.NewTraceStore(0, 0, nil)
	info, _, err := store.Add(traceRFPT(t, 6000))
	if err != nil {
		t.Fatal(err)
	}

	specJSON := fmt.Sprintf(`{
		"name": "trsweep",
		"workloads": ["spec06_mcf", %q],
		"base": {"rfp": true},
		"axes": [{"knob": "pt_entries", "values": [128, 256]}],
		"warmup_uops": 1000,
		"measure_uops": 3000
	}`, info.Workload)
	spec, err := ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	units, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 4 {
		t.Fatalf("expanded %d units, want 4", len(units))
	}
	// Labels shorten the digest the way the daemon names the spec; the
	// request keeps the full address so keys match POST /v1/sim exactly.
	wantLabel := "trsweep/" + info.Workload[:len("trace:")+16] + "/pt_entries=128"
	if units[1].Label != wantLabel {
		t.Errorf("trace unit label = %q, want %q", units[1].Label, wantLabel)
	}
	if units[1].Req.Workload != info.Workload {
		t.Errorf("trace unit request workload = %q, want %q", units[1].Req.Workload, info.Workload)
	}

	runCSV := func() string {
		backend := LocalBackend{Traces: store}
		sum, err := Run(context.Background(), units, backend, Options{Parallel: 2}, &Metrics{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sum.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := runCSV()
	if second := runCSV(); second != first {
		t.Errorf("trace-sourced sweep CSV not deterministic:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if !strings.Contains(first, wantLabel) {
		t.Errorf("CSV missing trace unit rows:\n%s", first)
	}

	// Without a store the trace unit must fail loudly, not hang or panic.
	if _, err := (LocalBackend{}).Run(context.Background(), units[1]); err == nil {
		t.Error("trace unit ran without a trace store")
	}
}

// TestExpandRejectsBadTraceAddress pins the loud failure for a malformed
// trace selector (anything but 64 hex chars after the prefix).
func TestExpandRejectsBadTraceAddress(t *testing.T) {
	for _, w := range []string{"trace:", "trace:abc", "trace:" + strings.Repeat("z", 64)} {
		spec := &Spec{Name: "bad", Workloads: []string{w}}
		if _, err := spec.Expand(); err == nil {
			t.Errorf("workload %q accepted", w)
		}
	}
}
