package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rfpsim/internal/obs"
	"rfpsim/internal/service"
)

// HTTPBackendOptions tunes the remote backend's failover behaviour.
type HTTPBackendOptions struct {
	// MaxAttempts bounds tries per unit across all endpoints (0 = 8).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff (0 = 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps a single backoff or Retry-After wait (0 = 10s).
	MaxBackoff time.Duration
	// Client is the HTTP client (nil = a client with no overall timeout;
	// per-unit deadlines come from the request's timeout_ms via ctx).
	Client *http.Client
	// Metrics, when set, records per-endpoint request counts and latency.
	Metrics *Metrics
	// Hedge enables hedged requests: once an attempt has been in flight
	// longer than the observed p95 unit latency, a speculative duplicate
	// goes to a different healthy endpoint and the first response wins.
	// The daemon-side result fabric deduplicates the two identical
	// requests, so a hedge costs one extra HTTP round trip, not one
	// extra simulation. Needs >= 2 endpoints to do anything.
	Hedge bool
	// HedgeMinDelay floors the hedge trigger so a cold p95 (or a very
	// fast fleet) cannot double request load for free (0 = 250ms).
	HedgeMinDelay time.Duration
}

func (o HTTPBackendOptions) maxAttempts() int {
	if o.MaxAttempts > 0 {
		return o.MaxAttempts
	}
	return 8
}

func (o HTTPBackendOptions) baseBackoff() time.Duration {
	if o.BaseBackoff > 0 {
		return o.BaseBackoff
	}
	return 100 * time.Millisecond
}

func (o HTTPBackendOptions) maxBackoff() time.Duration {
	if o.MaxBackoff > 0 {
		return o.MaxBackoff
	}
	return 10 * time.Second
}

func (o HTTPBackendOptions) hedgeMinDelay() time.Duration {
	if o.HedgeMinDelay > 0 {
		return o.HedgeMinDelay
	}
	return 250 * time.Millisecond
}

// endpoint is one rfpsimd instance plus its health state. An endpoint
// that rejects or errors is put on cooldown — honouring an explicit
// Retry-After when the daemon sent one, exponential in its consecutive
// failures otherwise — so the balancer steers units to healthy peers
// instead of hammering a full queue.
type endpoint struct {
	url string

	mu        sync.Mutex
	coolUntil time.Time
	failures  int // consecutive failures, reset on success
}

func (e *endpoint) availableAt() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.coolUntil
}

func (e *endpoint) markSuccess() {
	e.mu.Lock()
	e.failures = 0
	e.coolUntil = time.Time{}
	e.mu.Unlock()
}

// markCooldown records a failure and applies the given cooldown (already
// jittered/capped by the caller).
func (e *endpoint) markCooldown(d time.Duration) {
	e.mu.Lock()
	e.failures++
	until := time.Now().Add(d)
	if until.After(e.coolUntil) {
		e.coolUntil = until
	}
	e.mu.Unlock()
}

// HTTPBackend executes units against a fleet of rfpsimd endpoints with
// round-robin load balancing, per-endpoint health tracking, bounded
// retries with jittered exponential backoff, and 429/503 backpressure
// honoured via Retry-After.
type HTTPBackend struct {
	opts      HTTPBackendOptions
	endpoints []*endpoint
	client    *http.Client
	latency   *obs.LatencyWindow // successful-request latencies, feeds the hedge trigger
	next      uint64
	nextMu    sync.Mutex
}

// NewHTTPBackend builds the backend over one or more rfpsimd base URLs
// (e.g. "http://host:8080").
func NewHTTPBackend(urls []string, opts HTTPBackendOptions) (*HTTPBackend, error) {
	if len(urls) == 0 {
		return nil, errors.New("sweep: http backend needs at least one endpoint")
	}
	b := &HTTPBackend{opts: opts, client: opts.Client, latency: obs.NewLatencyWindow(0)}
	if b.client == nil {
		b.client = &http.Client{}
	}
	for _, u := range urls {
		b.endpoints = append(b.endpoints, &endpoint{url: u})
	}
	return b, nil
}

// Name implements Backend.
func (b *HTTPBackend) Name() string { return fmt.Sprintf("http(%d endpoints)", len(b.endpoints)) }

// pick chooses the next endpoint round-robin, preferring ones off
// cooldown. If the whole fleet is cooling down it returns the one that
// recovers soonest plus how long to wait for it.
func (b *HTTPBackend) pick() (*endpoint, time.Duration) {
	b.nextMu.Lock()
	start := b.next
	b.next++
	b.nextMu.Unlock()

	now := time.Now()
	var soonest *endpoint
	var soonestAt time.Time
	for i := 0; i < len(b.endpoints); i++ {
		e := b.endpoints[(start+uint64(i))%uint64(len(b.endpoints))]
		at := e.availableAt()
		if !at.After(now) {
			return e, 0
		}
		if soonest == nil || at.Before(soonestAt) {
			soonest, soonestAt = e, at
		}
	}
	return soonest, time.Until(soonestAt)
}

// pickOther returns a healthy endpoint other than avoid, or nil when
// none exists right now. Hedges never wait for a cooldown: a hedge is a
// latency bet, and betting on a cooling endpoint is a losing one.
func (b *HTTPBackend) pickOther(avoid *endpoint) *endpoint {
	b.nextMu.Lock()
	start := b.next
	b.next++
	b.nextMu.Unlock()

	now := time.Now()
	for i := 0; i < len(b.endpoints); i++ {
		e := b.endpoints[(start+uint64(i))%uint64(len(b.endpoints))]
		if e != avoid && !e.availableAt().After(now) {
			return e
		}
	}
	return nil
}

// backoff returns the jittered exponential cooldown for the n-th
// consecutive failure (n >= 1): base*2^(n-1), x0.5–1.5 jitter, capped.
func (b *HTTPBackend) backoff(n int) time.Duration {
	d := b.opts.baseBackoff() << (n - 1)
	if max := b.opts.maxBackoff(); d > max || d <= 0 {
		d = max
	}
	d = time.Duration(float64(d) * (0.5 + rand.Float64()))
	if max := b.opts.maxBackoff(); d > max {
		d = max
	}
	return d
}

// retryAfter parses a Retry-After header (delta-seconds form) into the
// endpoint cooldown, capped at MaxBackoff; ok is false when absent.
func (b *HTTPBackend) retryAfter(h string) (time.Duration, bool) {
	if h == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0, false
	}
	d := time.Duration(secs) * time.Second
	if max := b.opts.maxBackoff(); d > max {
		d = max
	}
	return d, true
}

// sleep waits d unless the context ends first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// errPermanent marks responses that retrying cannot fix (4xx validation).
type errPermanent struct{ err error }

// Error returns the wrapped error's message.
func (e errPermanent) Error() string { return e.err.Error() }

// Unwrap exposes the wrapped error to errors.Is/As.
func (e errPermanent) Unwrap() error { return e.err }

// Run implements Backend: round-robin over healthy endpoints, retrying
// transient failures (429/503 backpressure, 5xx, transport errors) up to
// MaxAttempts times before giving up on the unit.
func (b *HTTPBackend) Run(ctx context.Context, u Unit) (*service.SimResponse, error) {
	body, err := json.Marshal(u.Req)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 1; attempt <= b.opts.maxAttempts(); attempt++ {
		if attempt > 1 && b.opts.Metrics != nil {
			b.opts.Metrics.retried.Add(1)
		}
		e, wait := b.pick()
		if err := sleep(ctx, wait); err != nil {
			return nil, err
		}
		resp, err := b.attempt(ctx, e, body)
		if err == nil {
			return resp, nil
		}
		// Cancellation is terminal, never a retryable endpoint failure:
		// either our own context ended, or the attempt was cancelled
		// mid-flight (the unit's deadline fired inside the transport) —
		// retrying a cancelled unit on another endpoint only duplicates
		// abandoned work.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if errors.Is(err, context.Canceled) {
			return nil, err
		}
		var perm errPermanent
		if errors.As(err, &perm) {
			return nil, perm.err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("sweep: unit %s failed after %d attempts: %w", u.Label, b.opts.maxAttempts(), lastErr)
}

// attempt runs one logical try of a unit: a plain post, or — with
// hedging enabled — a post that a speculative duplicate races once the
// p95-derived delay passes. The hedge goes to a different healthy
// endpoint; the first response (success or failure) of the pair that
// finishes wins, and the loser's request context is cancelled. Losing
// hedges never touch endpoint health: a cancelled transport error says
// nothing about the endpoint.
func (b *HTTPBackend) attempt(ctx context.Context, e *endpoint, body []byte) (*service.SimResponse, error) {
	if !b.opts.Hedge || len(b.endpoints) < 2 {
		return b.post(ctx, e, body)
	}
	delay := b.latency.P95()
	if min := b.opts.hedgeMinDelay(); delay < min {
		delay = min
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		resp   *service.SimResponse
		err    error
		hedged bool
	}
	results := make(chan outcome, 2)
	inflight := 1
	go func() {
		r, err := b.post(hctx, e, body)
		results <- outcome{r, err, false}
	}()

	timer := time.NewTimer(delay)
	defer timer.Stop()
	armed := true
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !armed {
				continue
			}
			armed = false
			e2 := b.pickOther(e)
			if e2 == nil {
				continue // no second healthy endpoint: nothing to hedge with
			}
			if b.opts.Metrics != nil {
				b.opts.Metrics.hedgeLaunched.Add(1)
			}
			inflight++
			go func() {
				r, err := b.post(hctx, e2, body)
				results <- outcome{r, err, true}
			}()
		case o := <-results:
			inflight--
			if o.err == nil {
				if o.hedged && b.opts.Metrics != nil {
					b.opts.Metrics.hedgeWins.Add(1)
				}
				return o.resp, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if inflight == 0 {
				return nil, firstErr
			}
			// The other attempt is still racing; let it finish the try.
		}
	}
}

// post sends the unit to one endpoint and classifies the outcome,
// updating the endpoint's health state.
func (b *HTTPBackend) post(ctx context.Context, e *endpoint, body []byte) (*service.SimResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.url+"/v1/sim", bytes.NewReader(body))
	if err != nil {
		return nil, errPermanent{err}
	}
	req.Header.Set("Content-Type", "application/json")
	// Forward the unit's run ID so the daemon's job logs carry the same
	// ID as the orchestrator's unit logs — one grep follows a unit across
	// both processes.
	if id := obs.RunID(ctx); id != "" {
		req.Header.Set(service.RunIDHeader, id)
	}
	start := time.Now()
	resp, err := b.client.Do(req)
	if b.opts.Metrics != nil {
		defer func() { b.opts.Metrics.observe(e.url, time.Since(start), err != nil) }()
	}
	if err != nil {
		// A cancelled request (unit deadline, or this was the losing half
		// of a hedge) says nothing about the endpoint: report it without
		// touching health state.
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		e.mu.Lock()
		n := e.failures + 1
		e.mu.Unlock()
		e.markCooldown(b.backoff(n))
		return nil, fmt.Errorf("%s: %w", e.url, err)
	}
	defer resp.Body.Close()
	raw, readErr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if readErr != nil {
		err = fmt.Errorf("%s: reading response: %w", e.url, readErr)
		e.markCooldown(b.backoff(1))
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var sr service.SimResponse
		if jsonErr := json.Unmarshal(raw, &sr); jsonErr != nil {
			err = fmt.Errorf("%s: bad response body: %w", e.url, jsonErr)
			return nil, err
		}
		// A computed response carries the daemon's per-stage timing
		// breakdown in a header (cache replays do not — the cost was paid
		// by an earlier request). Merge it into the caller's collector so
		// sweep timing CSVs work identically across backends.
		if t := obs.ContextTimings(ctx); t != nil {
			if h := resp.Header.Get(service.TimingsHeader); h != "" {
				if parsed, perr := obs.ParseTimings(h); perr == nil {
					t.Merge(parsed)
				}
			}
		}
		e.markSuccess()
		b.latency.Observe(time.Since(start))
		return &sr, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		// Backpressure: the daemon told us how long to stay away.
		d, ok := b.retryAfter(resp.Header.Get("Retry-After"))
		if !ok {
			e.mu.Lock()
			n := e.failures + 1
			e.mu.Unlock()
			d = b.backoff(n)
		}
		e.markCooldown(d)
		err = fmt.Errorf("%s: %d backpressure: %s", e.url, resp.StatusCode, bytes.TrimSpace(raw))
		return nil, err
	case http.StatusBadRequest, http.StatusMethodNotAllowed, http.StatusNotFound:
		// The fleet will reject this unit everywhere; do not retry.
		err = errPermanent{fmt.Errorf("%s: %d: %s", e.url, resp.StatusCode, bytes.TrimSpace(raw))}
		return nil, err
	default:
		// 408 (cancelled), 500 (sim error) and anything else transient:
		// another endpoint (or a later retry) may still succeed.
		e.mu.Lock()
		n := e.failures + 1
		e.mu.Unlock()
		e.markCooldown(b.backoff(n))
		err = fmt.Errorf("%s: %d: %s", e.url, resp.StatusCode, bytes.TrimSpace(raw))
		return nil, err
	}
}
