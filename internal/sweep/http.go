package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rfpsim/internal/obs"
	"rfpsim/internal/service"
)

// HTTPBackendOptions tunes the remote backend's failover behaviour.
type HTTPBackendOptions struct {
	// MaxAttempts bounds tries per unit across all endpoints (0 = 8).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff (0 = 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps a single backoff or Retry-After wait (0 = 10s).
	MaxBackoff time.Duration
	// Client is the HTTP client (nil = a client with no overall timeout;
	// per-unit deadlines come from the request's timeout_ms via ctx).
	Client *http.Client
	// Metrics, when set, records per-endpoint request counts and latency.
	Metrics *Metrics
}

func (o HTTPBackendOptions) maxAttempts() int {
	if o.MaxAttempts > 0 {
		return o.MaxAttempts
	}
	return 8
}

func (o HTTPBackendOptions) baseBackoff() time.Duration {
	if o.BaseBackoff > 0 {
		return o.BaseBackoff
	}
	return 100 * time.Millisecond
}

func (o HTTPBackendOptions) maxBackoff() time.Duration {
	if o.MaxBackoff > 0 {
		return o.MaxBackoff
	}
	return 10 * time.Second
}

// endpoint is one rfpsimd instance plus its health state. An endpoint
// that rejects or errors is put on cooldown — honouring an explicit
// Retry-After when the daemon sent one, exponential in its consecutive
// failures otherwise — so the balancer steers units to healthy peers
// instead of hammering a full queue.
type endpoint struct {
	url string

	mu        sync.Mutex
	coolUntil time.Time
	failures  int // consecutive failures, reset on success
}

func (e *endpoint) availableAt() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.coolUntil
}

func (e *endpoint) markSuccess() {
	e.mu.Lock()
	e.failures = 0
	e.coolUntil = time.Time{}
	e.mu.Unlock()
}

// markCooldown records a failure and applies the given cooldown (already
// jittered/capped by the caller).
func (e *endpoint) markCooldown(d time.Duration) {
	e.mu.Lock()
	e.failures++
	until := time.Now().Add(d)
	if until.After(e.coolUntil) {
		e.coolUntil = until
	}
	e.mu.Unlock()
}

// HTTPBackend executes units against a fleet of rfpsimd endpoints with
// round-robin load balancing, per-endpoint health tracking, bounded
// retries with jittered exponential backoff, and 429/503 backpressure
// honoured via Retry-After.
type HTTPBackend struct {
	opts      HTTPBackendOptions
	endpoints []*endpoint
	client    *http.Client
	next      uint64
	nextMu    sync.Mutex
}

// NewHTTPBackend builds the backend over one or more rfpsimd base URLs
// (e.g. "http://host:8080").
func NewHTTPBackend(urls []string, opts HTTPBackendOptions) (*HTTPBackend, error) {
	if len(urls) == 0 {
		return nil, errors.New("sweep: http backend needs at least one endpoint")
	}
	b := &HTTPBackend{opts: opts, client: opts.Client}
	if b.client == nil {
		b.client = &http.Client{}
	}
	for _, u := range urls {
		b.endpoints = append(b.endpoints, &endpoint{url: u})
	}
	return b, nil
}

// Name implements Backend.
func (b *HTTPBackend) Name() string { return fmt.Sprintf("http(%d endpoints)", len(b.endpoints)) }

// pick chooses the next endpoint round-robin, preferring ones off
// cooldown. If the whole fleet is cooling down it returns the one that
// recovers soonest plus how long to wait for it.
func (b *HTTPBackend) pick() (*endpoint, time.Duration) {
	b.nextMu.Lock()
	start := b.next
	b.next++
	b.nextMu.Unlock()

	now := time.Now()
	var soonest *endpoint
	var soonestAt time.Time
	for i := 0; i < len(b.endpoints); i++ {
		e := b.endpoints[(start+uint64(i))%uint64(len(b.endpoints))]
		at := e.availableAt()
		if !at.After(now) {
			return e, 0
		}
		if soonest == nil || at.Before(soonestAt) {
			soonest, soonestAt = e, at
		}
	}
	return soonest, time.Until(soonestAt)
}

// backoff returns the jittered exponential cooldown for the n-th
// consecutive failure (n >= 1): base*2^(n-1), x0.5–1.5 jitter, capped.
func (b *HTTPBackend) backoff(n int) time.Duration {
	d := b.opts.baseBackoff() << (n - 1)
	if max := b.opts.maxBackoff(); d > max || d <= 0 {
		d = max
	}
	d = time.Duration(float64(d) * (0.5 + rand.Float64()))
	if max := b.opts.maxBackoff(); d > max {
		d = max
	}
	return d
}

// retryAfter parses a Retry-After header (delta-seconds form) into the
// endpoint cooldown, capped at MaxBackoff; ok is false when absent.
func (b *HTTPBackend) retryAfter(h string) (time.Duration, bool) {
	if h == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0, false
	}
	d := time.Duration(secs) * time.Second
	if max := b.opts.maxBackoff(); d > max {
		d = max
	}
	return d, true
}

// sleep waits d unless the context ends first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// errPermanent marks responses that retrying cannot fix (4xx validation).
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

// Run implements Backend: round-robin over healthy endpoints, retrying
// transient failures (429/503 backpressure, 5xx, transport errors) up to
// MaxAttempts times before giving up on the unit.
func (b *HTTPBackend) Run(ctx context.Context, u Unit) (*service.SimResponse, error) {
	body, err := json.Marshal(u.Req)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 1; attempt <= b.opts.maxAttempts(); attempt++ {
		if attempt > 1 && b.opts.Metrics != nil {
			b.opts.Metrics.retried.Add(1)
		}
		e, wait := b.pick()
		if err := sleep(ctx, wait); err != nil {
			return nil, err
		}
		resp, err := b.post(ctx, e, body)
		if err == nil {
			return resp, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var perm errPermanent
		if errors.As(err, &perm) {
			return nil, perm.err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("sweep: unit %s failed after %d attempts: %w", u.Label, b.opts.maxAttempts(), lastErr)
}

// post sends the unit to one endpoint and classifies the outcome,
// updating the endpoint's health state.
func (b *HTTPBackend) post(ctx context.Context, e *endpoint, body []byte) (*service.SimResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.url+"/v1/sim", bytes.NewReader(body))
	if err != nil {
		return nil, errPermanent{err}
	}
	req.Header.Set("Content-Type", "application/json")
	// Forward the unit's run ID so the daemon's job logs carry the same
	// ID as the orchestrator's unit logs — one grep follows a unit across
	// both processes.
	if id := obs.RunID(ctx); id != "" {
		req.Header.Set(service.RunIDHeader, id)
	}
	start := time.Now()
	resp, err := b.client.Do(req)
	if b.opts.Metrics != nil {
		defer func() { b.opts.Metrics.observe(e.url, time.Since(start), err != nil) }()
	}
	if err != nil {
		e.mu.Lock()
		n := e.failures + 1
		e.mu.Unlock()
		e.markCooldown(b.backoff(n))
		return nil, fmt.Errorf("%s: %w", e.url, err)
	}
	defer resp.Body.Close()
	raw, readErr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if readErr != nil {
		err = fmt.Errorf("%s: reading response: %w", e.url, readErr)
		e.markCooldown(b.backoff(1))
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var sr service.SimResponse
		if jsonErr := json.Unmarshal(raw, &sr); jsonErr != nil {
			err = fmt.Errorf("%s: bad response body: %w", e.url, jsonErr)
			return nil, err
		}
		// A computed response carries the daemon's per-stage timing
		// breakdown in a header (cache replays do not — the cost was paid
		// by an earlier request). Merge it into the caller's collector so
		// sweep timing CSVs work identically across backends.
		if t := obs.ContextTimings(ctx); t != nil {
			if h := resp.Header.Get(service.TimingsHeader); h != "" {
				if parsed, perr := obs.ParseTimings(h); perr == nil {
					t.Merge(parsed)
				}
			}
		}
		e.markSuccess()
		return &sr, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		// Backpressure: the daemon told us how long to stay away.
		d, ok := b.retryAfter(resp.Header.Get("Retry-After"))
		if !ok {
			e.mu.Lock()
			n := e.failures + 1
			e.mu.Unlock()
			d = b.backoff(n)
		}
		e.markCooldown(d)
		err = fmt.Errorf("%s: %d backpressure: %s", e.url, resp.StatusCode, bytes.TrimSpace(raw))
		return nil, err
	case http.StatusBadRequest, http.StatusMethodNotAllowed, http.StatusNotFound:
		// The fleet will reject this unit everywhere; do not retry.
		err = errPermanent{fmt.Errorf("%s: %d: %s", e.url, resp.StatusCode, bytes.TrimSpace(raw))}
		return nil, err
	default:
		// 408 (cancelled), 500 (sim error) and anything else transient:
		// another endpoint (or a later retry) may still succeed.
		e.mu.Lock()
		n := e.failures + 1
		e.mu.Unlock()
		e.markCooldown(b.backoff(n))
		err = fmt.Errorf("%s: %d: %s", e.url, resp.StatusCode, bytes.TrimSpace(raw))
		return nil, err
	}
}
