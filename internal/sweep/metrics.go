package sweep

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics aggregates the orchestrator's observability counters in the
// same Prometheus text style the rfpsimd daemon exposes: units by
// outcome, retries, and per-backend request latency.
type Metrics struct {
	total   atomic.Uint64 // gauge: units in the sweep
	done    atomic.Uint64 // counter: units completed this run
	skipped atomic.Uint64 // counter: units satisfied by the checkpoint
	failed  atomic.Uint64 // counter: units terminally failed
	retried atomic.Uint64 // counter: extra backend attempts

	mu       sync.Mutex
	backends map[string]*backendStats
}

// backendStats is one backend/endpoint's request ledger.
type backendStats struct {
	requests     uint64
	errors       uint64
	latencyNanos uint64
}

// Done returns the number of units completed by this run so far.
func (m *Metrics) Done() uint64 { return m.done.Load() }

// Failed returns the number of terminally failed units so far.
func (m *Metrics) Failed() uint64 { return m.failed.Load() }

// Retried returns the number of extra backend attempts so far.
func (m *Metrics) Retried() uint64 { return m.retried.Load() }

// Skipped returns the number of units satisfied by the checkpoint.
func (m *Metrics) Skipped() uint64 { return m.skipped.Load() }

// observe records one backend request.
func (m *Metrics) observe(backend string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.backends == nil {
		m.backends = map[string]*backendStats{}
	}
	bs := m.backends[backend]
	if bs == nil {
		bs = &backendStats{}
		m.backends[backend] = bs
	}
	bs.requests++
	if failed {
		bs.errors++
	}
	bs.latencyNanos += uint64(d)
}

// WritePrometheus renders the counters in the text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP rfpsweep_units_total Units in the expanded sweep grid.\n")
	fmt.Fprintf(w, "# TYPE rfpsweep_units_total gauge\n")
	fmt.Fprintf(w, "rfpsweep_units_total %d\n", m.total.Load())
	fmt.Fprintf(w, "# HELP rfpsweep_units_done_total Units completed, by how.\n")
	fmt.Fprintf(w, "# TYPE rfpsweep_units_done_total counter\n")
	fmt.Fprintf(w, "rfpsweep_units_done_total{how=\"run\"} %d\n", m.done.Load())
	fmt.Fprintf(w, "rfpsweep_units_done_total{how=\"checkpoint\"} %d\n", m.skipped.Load())
	fmt.Fprintf(w, "# HELP rfpsweep_units_failed_total Units that exhausted their retries.\n")
	fmt.Fprintf(w, "# TYPE rfpsweep_units_failed_total counter\n")
	fmt.Fprintf(w, "rfpsweep_units_failed_total %d\n", m.failed.Load())
	fmt.Fprintf(w, "# HELP rfpsweep_unit_retries_total Extra backend attempts beyond each unit's first.\n")
	fmt.Fprintf(w, "# TYPE rfpsweep_unit_retries_total counter\n")
	fmt.Fprintf(w, "rfpsweep_unit_retries_total %d\n", m.retried.Load())

	m.mu.Lock()
	names := make([]string, 0, len(m.backends))
	for n := range m.backends {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# HELP rfpsweep_backend_requests_total Requests per backend endpoint.\n")
	fmt.Fprintf(w, "# TYPE rfpsweep_backend_requests_total counter\n")
	for _, n := range names {
		fmt.Fprintf(w, "rfpsweep_backend_requests_total{backend=%q} %d\n", n, m.backends[n].requests)
	}
	fmt.Fprintf(w, "# HELP rfpsweep_backend_errors_total Failed requests per backend endpoint.\n")
	fmt.Fprintf(w, "# TYPE rfpsweep_backend_errors_total counter\n")
	for _, n := range names {
		fmt.Fprintf(w, "rfpsweep_backend_errors_total{backend=%q} %d\n", n, m.backends[n].errors)
	}
	fmt.Fprintf(w, "# HELP rfpsweep_backend_latency_seconds_sum Cumulative request latency per backend endpoint.\n")
	fmt.Fprintf(w, "# TYPE rfpsweep_backend_latency_seconds_sum counter\n")
	for _, n := range names {
		fmt.Fprintf(w, "rfpsweep_backend_latency_seconds_sum{backend=%q} %g\n", n, float64(m.backends[n].latencyNanos)/1e9)
	}
	m.mu.Unlock()
}
