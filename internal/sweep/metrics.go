package sweep

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rfpsim/internal/obs"
)

// Metrics aggregates the orchestrator's observability counters: units by
// outcome, retries, and per-backend request latency. It implements
// obs.Collector, so cmd/rfpsweep registers it in an obs.Registry and
// serves it over HTTP (-metrics-addr) exactly the way rfpsimd serves its
// own block; the exposition format is pinned by a golden test.
type Metrics struct {
	total   atomic.Uint64 // gauge: units in the sweep
	done    atomic.Uint64 // counter: units completed this run
	skipped atomic.Uint64 // counter: units satisfied by the checkpoint
	failed  atomic.Uint64 // counter: units terminally failed
	retried atomic.Uint64 // counter: extra backend attempts

	hedgeLaunched atomic.Uint64 // counter: speculative hedged attempts launched
	hedgeWins     atomic.Uint64 // counter: hedged attempts that beat the primary

	checkViolations atomic.Uint64 // counter: invariant violations (check_diff units)
	diffDivergences atomic.Uint64 // counter: check_diff units whose digests diverged

	mu       sync.Mutex
	backends map[string]*backendStats
}

// backendStats is one backend/endpoint's request ledger.
type backendStats struct {
	requests     uint64
	errors       uint64
	latencyNanos uint64
}

// Done returns the number of units completed by this run so far.
func (m *Metrics) Done() uint64 { return m.done.Load() }

// Failed returns the number of terminally failed units so far.
func (m *Metrics) Failed() uint64 { return m.failed.Load() }

// Retried returns the number of extra backend attempts so far.
func (m *Metrics) Retried() uint64 { return m.retried.Load() }

// Skipped returns the number of units satisfied by the checkpoint.
func (m *Metrics) Skipped() uint64 { return m.skipped.Load() }

// observe records one backend request.
func (m *Metrics) observe(backend string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.backends == nil {
		m.backends = map[string]*backendStats{}
	}
	bs := m.backends[backend]
	if bs == nil {
		bs = &backendStats{}
		m.backends[backend] = bs
	}
	bs.requests++
	if failed {
		bs.errors++
	}
	bs.latencyNanos += uint64(d)
}

// WritePrometheus implements obs.Collector (text exposition format).
func (m *Metrics) WritePrometheus(w io.Writer) {
	obs.Gauge(w, "rfpsweep_units_total", "Units in the expanded sweep grid.", m.total.Load())
	obs.Header(w, "rfpsweep_units_done_total", "counter", "Units completed, by how.")
	obs.Sample(w, "rfpsweep_units_done_total", `how="run"`, m.done.Load())
	obs.Sample(w, "rfpsweep_units_done_total", `how="checkpoint"`, m.skipped.Load())
	obs.Counter(w, "rfpsweep_units_failed_total", "Units that exhausted their retries.", m.failed.Load())
	obs.Counter(w, "rfpsweep_unit_retries_total", "Extra backend attempts beyond each unit's first.", m.retried.Load())
	obs.Counter(w, "rfpsweep_hedge_launched_total", "Speculative hedged attempts launched past the p95 latency threshold (docs/fabric.md).", m.hedgeLaunched.Load())
	obs.Counter(w, "rfpsweep_hedge_wins_total", "Hedged attempts whose response arrived before the primary's.", m.hedgeWins.Load())
	obs.Counter(w, "rfpsim_check_violations_total", "Runtime invariant violations across check_diff units (docs/checking.md).", m.checkViolations.Load())
	obs.Counter(w, "rfpsweep_diff_divergences_total", "check_diff units whose committed digests diverged.", m.diffDivergences.Load())

	m.mu.Lock()
	names := make([]string, 0, len(m.backends))
	for n := range m.backends {
		names = append(names, n)
	}
	sort.Strings(names)
	obs.Header(w, "rfpsweep_backend_requests_total", "counter", "Requests per backend endpoint.")
	for _, n := range names {
		obs.Sample(w, "rfpsweep_backend_requests_total", fmt.Sprintf("backend=%q", n), m.backends[n].requests)
	}
	obs.Header(w, "rfpsweep_backend_errors_total", "counter", "Failed requests per backend endpoint.")
	for _, n := range names {
		obs.Sample(w, "rfpsweep_backend_errors_total", fmt.Sprintf("backend=%q", n), m.backends[n].errors)
	}
	obs.Header(w, "rfpsweep_backend_latency_seconds_sum", "counter", "Cumulative request latency per backend endpoint.")
	for _, n := range names {
		obs.Sample(w, "rfpsweep_backend_latency_seconds_sum", fmt.Sprintf("backend=%q", n), float64(m.backends[n].latencyNanos)/1e9)
	}
	m.mu.Unlock()
}
