package sweep

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

const diffSpecJSON = `{
	"name": "diffsweep",
	"mode": "check_diff",
	"workloads": ["spec06_mcf"],
	"base": {"rfp": true},
	"axes": [{"knob": "pt_entries", "values": [128, 256]}],
	"measure_uops": 3000
}`

// TestCheckDiffSweep runs a small differential sweep end to end: every
// grid point pairs RFP-on against the derived RFP-off base, digests
// must agree, and the CSV carries one verdict block per unit in grid
// order.
func TestCheckDiffSweep(t *testing.T) {
	spec, err := ParseSpec([]byte(diffSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if !spec.CheckDiff() {
		t.Fatal("spec should be in check_diff mode")
	}
	units, err := spec.ExpandDiff()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("got %d units, want 2", len(units))
	}
	for _, u := range units {
		if u.Diff.Base.RFP.Enabled || !u.Diff.Variant.RFP.Enabled {
			t.Fatalf("unit %s: default diff mode must pair RFP-off base against RFP-on variant", u.Label)
		}
	}

	m := &Metrics{}
	var progress bytes.Buffer
	sum, err := RunCheckDiff(context.Background(), units, 2, m, &progress)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Clean() {
		t.Fatalf("differential sweep not clean: %+v", sum.Results)
	}
	if m.Done() != 2 || m.checkViolations.Load() != 0 || m.diffDivergences.Load() != 0 {
		t.Fatalf("metrics: done=%d violations=%d divergences=%d",
			m.Done(), m.checkViolations.Load(), m.diffDivergences.Load())
	}
	if n := strings.Count(progress.String(), "identical"); n != 2 {
		t.Fatalf("progress reported %d identical units, want 2:\n%s", n, progress.String())
	}

	var csvOut bytes.Buffer
	if err := sum.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if lines[0] != "experiment,metric,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines)-1 != len(units)*3 {
		t.Fatalf("got %d data rows, want %d", len(lines)-1, len(units)*3)
	}
	for i, u := range units {
		if want := u.Label + ",diverged,0"; lines[1+3*i] != want {
			t.Fatalf("row %d = %q, want %q", 1+3*i, lines[1+3*i], want)
		}
	}
}

// TestCheckDiffSpecValidation pins the loud-failure contract of the
// mode/diff_mode knobs.
func TestCheckDiffSpecValidation(t *testing.T) {
	bad := []string{
		`{"name": "x", "workloads": ["spec06_mcf"], "mode": "bogus"}`,
		`{"name": "x", "workloads": ["spec06_mcf"], "diff_mode": "norfp"}`,
	}
	for _, js := range bad {
		if _, err := ParseSpec([]byte(js)); err == nil {
			t.Errorf("spec %s should not parse", js)
		}
	}

	spec, err := ParseSpec([]byte(diffSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Expand(); err == nil {
		t.Error("Expand must reject a check_diff spec")
	}

	reject := func(mutate func(*Spec)) {
		t.Helper()
		s, err := ParseSpec([]byte(diffSpecJSON))
		if err != nil {
			t.Fatal(err)
		}
		mutate(s)
		if _, err := s.ExpandDiff(); err == nil {
			t.Errorf("ExpandDiff should reject the mutated spec")
		}
	}
	reject(func(s *Spec) { s.WarmupUops = 1000 })
	reject(func(s *Spec) { s.Seeds = 3 })
	reject(func(s *Spec) { s.ColdCaches = true })
	reject(func(s *Spec) { s.DiffMode = "nonsense" })
}
