package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rfpsim/internal/service"
)

// recordingBackend wraps a backend and records which unit keys it ran.
type recordingBackend struct {
	inner Backend
	mu    sync.Mutex
	ran   map[string]int
}

func (r *recordingBackend) Name() string { return r.inner.Name() }
func (r *recordingBackend) Run(ctx context.Context, u Unit) (*service.SimResponse, error) {
	r.mu.Lock()
	if r.ran == nil {
		r.ran = map[string]int{}
	}
	r.ran[u.Key]++
	r.mu.Unlock()
	return r.inner.Run(ctx, u)
}

func runToCSV(t *testing.T, sum *Summary) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := sum.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestCrashResumeJournal is the crash-tolerance contract: a journal with a
// truncated final line and a duplicated unit replays to exactly the units
// it fully recorded, -resume re-runs exactly the missing ones, and the
// aggregate CSV matches a from-scratch run byte for byte.
func TestCrashResumeJournal(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"name": "crash", "workloads": ["spec06_mcf", "spec06_hmmer"],
		"base": {"rfp": true},
		"axes": [{"knob": "pt_entries", "values": [256, 512, 1024]}],
		"warmup_uops": 2000, "measure_uops": 4000
	}`))
	if err != nil {
		t.Fatal(err)
	}
	units, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 6 {
		t.Fatalf("grid is %d units, want 6", len(units))
	}

	// From-scratch reference run (no checkpoint at all).
	ref, err := Run(context.Background(), units, LocalBackend{}, Options{Parallel: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := runToCSV(t, ref)

	// Doctor a journal: units 0..2 recorded, unit 1 duplicated, unit 3's
	// line truncated mid-record (the kill -9 case).
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.ckpt")
	var buf bytes.Buffer
	writeLine := func(u Unit) []byte {
		line, err := json.Marshal(checkpointEntry{Key: u.Key, Label: u.Label, Resp: ref.Results[u.Key]})
		if err != nil {
			t.Fatal(err)
		}
		return append(line, '\n')
	}
	for _, i := range []int{0, 1, 2, 1} {
		buf.Write(writeLine(units[i]))
	}
	torn := writeLine(units[3])
	buf.Write(torn[:len(torn)/2])
	if err := os.WriteFile(ckpt, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 4 || st.Duplicates != 1 || !st.TruncatedTail || len(st.Results) != 3 {
		t.Fatalf("checkpoint state = entries %d, dups %d, truncated %t, results %d; want 4/1/true/3",
			st.Entries, st.Duplicates, st.TruncatedTail, len(st.Results))
	}

	// Resume must re-run exactly units 3, 4, 5 — once each.
	rec := &recordingBackend{inner: LocalBackend{}}
	m := &Metrics{}
	sum, err := Run(context.Background(), units, rec, Options{
		Parallel: 2, CheckpointPath: ckpt, Resume: true,
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Complete() || sum.Skipped != 3 {
		t.Fatalf("resume: complete %t, skipped %d; want true/3", sum.Complete(), sum.Skipped)
	}
	wantRan := map[string]int{units[3].Key: 1, units[4].Key: 1, units[5].Key: 1}
	rec.mu.Lock()
	for k, n := range rec.ran {
		if wantRan[k] != n {
			t.Errorf("unit %s ran %d times, want %d", k[:12], n, wantRan[k])
		}
	}
	for k := range wantRan {
		if rec.ran[k] == 0 {
			t.Errorf("missing unit %s was not re-run", k[:12])
		}
	}
	rec.mu.Unlock()
	if m.Done() != 3 || m.Skipped() != 3 {
		t.Errorf("metrics done=%d skipped=%d, want 3/3", m.Done(), m.Skipped())
	}

	if got := runToCSV(t, sum); !bytes.Equal(got, wantCSV) {
		t.Errorf("resumed CSV differs from from-scratch CSV:\n--- resumed\n%s\n--- scratch\n%s", got, wantCSV)
	}

	// A second resume is a no-op: everything satisfied by the checkpoint.
	rec2 := &recordingBackend{inner: LocalBackend{}}
	sum2, err := Run(context.Background(), units, rec2, Options{
		Parallel: 2, CheckpointPath: ckpt, Resume: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.ran) != 0 || sum2.Skipped != 6 {
		t.Errorf("second resume ran %d units (skipped %d), want 0 (6)", len(rec2.ran), sum2.Skipped)
	}
	if got := runToCSV(t, sum2); !bytes.Equal(got, wantCSV) {
		t.Error("no-op resume CSV differs")
	}
}

// TestInteriorCorruptionFailsLoudly: a mangled line that is NOT the tail
// is real corruption, not a crash artifact, and must not be skipped.
func TestInteriorCorruptionFailsLoudly(t *testing.T) {
	units := testUnits(t)
	ckpt := filepath.Join(t.TempDir(), "bad.ckpt")
	good, err := json.Marshal(checkpointEntry{Key: units[0].Key, Label: units[0].Label, Resp: &service.SimResponse{}})
	if err != nil {
		t.Fatal(err)
	}
	content := append([]byte("{\"key\": \"mangl"), '\n')
	content = append(content, good...)
	content = append(content, '\n')
	if err := os.WriteFile(ckpt, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(ckpt); err == nil {
		t.Fatal("interior corruption loaded without error")
	}
}

// TestSweepAcceptance is the tentpole's end-to-end scenario: a 24-unit
// sweep against two live rfpsimd instances, one of which rejects with 429
// backpressure for part of the run; the orchestrator is killed roughly
// halfway and resumed; the final CSV is byte-identical to the same sweep
// run locally in one uninterrupted shot.
func TestSweepAcceptance(t *testing.T) {
	units := testUnits(t)
	if len(units) < 24 {
		t.Fatalf("acceptance sweep needs >= 24 units, have %d", len(units))
	}

	// Reference: the whole grid in one local shot, no checkpoint.
	ref, err := Run(context.Background(), units, LocalBackend{}, Options{Parallel: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := runToCSV(t, ref)

	// Two real daemons; B's first 6 sim POSTs are rejected with 429.
	svcA, err := service.New(service.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svcA.Close()
	svcB, err := service.New(service.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svcB.Close()
	tsA := httptest.NewServer(svcA.Handler())
	defer tsA.Close()
	flaky, rejects := flakyHandler(svcB.Handler(), 6)
	tsB := httptest.NewServer(flaky)
	defer tsB.Close()

	ckpt := filepath.Join(t.TempDir(), "accept.ckpt")
	newBackend := func(m *Metrics) Backend {
		be, err := NewHTTPBackend([]string{tsA.URL, tsB.URL}, HTTPBackendOptions{
			Metrics: m, BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return be
	}

	// Phase 1: kill the orchestrator once roughly half the grid is done.
	m1 := &Metrics{}
	ctx, cancel := context.WithCancel(context.Background())
	killer := make(chan struct{})
	go func() {
		defer close(killer)
		for m1.Done() < uint64(len(units))/2 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, err = Run(ctx, units, newBackend(m1), Options{Parallel: 4, CheckpointPath: ckpt}, m1)
	<-killer
	if err == nil {
		t.Fatal("killed run reported success; cancel came too late to matter")
	}

	st, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Results) == 0 || len(st.Results) >= len(units) {
		t.Fatalf("after the kill the journal has %d/%d units; want a partial sweep", len(st.Results), len(units))
	}
	t.Logf("killed after %d/%d units journalled, %d retries, %d rejects consumed",
		len(st.Results), len(units), m1.Retried(), rejects.Load())

	// Phase 2: resume against the same fleet; only missing units run.
	m2 := &Metrics{}
	rec := &recordingBackend{inner: newBackend(m2)}
	sum, err := Run(context.Background(), units, rec, Options{
		Parallel: 4, CheckpointPath: ckpt, Resume: true,
	}, m2)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Complete() {
		t.Fatalf("resumed sweep incomplete: %d/%d", len(sum.Results), len(units))
	}
	if sum.Skipped != len(st.Results) {
		t.Errorf("resume skipped %d units, journal held %d", sum.Skipped, len(st.Results))
	}
	for k, n := range rec.ran {
		if n != 1 {
			t.Errorf("unit %s ran %d times on resume", k[:12], n)
		}
		if _, done := st.Results[k]; done {
			t.Errorf("unit %s was journalled but re-run", k[:12])
		}
	}
	if got := int(m2.Done()) + sum.Skipped; got != len(units) {
		t.Errorf("done %d + skipped %d != %d units", m2.Done(), sum.Skipped, len(units))
	}

	// The backpressured, killed, resumed, fleet-executed sweep must emit
	// exactly the bytes of the one-shot local run.
	if got := runToCSV(t, sum); !bytes.Equal(got, wantCSV) {
		t.Errorf("distributed+resumed CSV differs from one-shot local CSV:\n--- distributed\n%s\n--- local\n%s", got, wantCSV)
	}
	if rejects.Load() < 6 {
		t.Errorf("flaky endpoint consumed only %d rejects; 429 path not exercised", rejects.Load())
	}
}
