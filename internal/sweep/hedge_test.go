package sweep

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeResult is a minimal valid SimResponse body for fake endpoints that
// never run a simulator.
const fakeResult = `{"workload":"spec06_mcf","config":"c","seeds":1,"warmup_uops":1,"measure_uops":1,"cycles":7,"instructions":9,"ipc":1.28}`

// TestHedgedRequestWinsOnSlowPrimary pins the hedge contract: when the
// primary endpoint stalls past the hedge delay, a speculative attempt on
// the other endpoint answers the unit, and both hedge counters tick.
func TestHedgedRequestWinsOnSlowPrimary(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	// Registered after slow.Close so it runs first: the server cannot
	// observe the loser's cancellation (the unread POST body blocks the
	// background read), so Close would otherwise wait on the handler.
	defer close(release)
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, fakeResult)
	}))
	defer fast.Close()

	m := &Metrics{}
	be, err := NewHTTPBackend([]string{slow.URL, fast.URL}, HTTPBackendOptions{
		Metrics: m, Hedge: true, HedgeMinDelay: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Force the slow server to be the primary pick.
	primary := be.endpoints[0]

	resp, err := be.attempt(context.Background(), primary, []byte(`{}`))
	if err != nil {
		t.Fatalf("attempt: %v", err)
	}
	if resp.Cycles != 7 {
		t.Errorf("hedged response cycles = %d, want 7 (from the fast endpoint)", resp.Cycles)
	}
	if got := m.hedgeLaunched.Load(); got != 1 {
		t.Errorf("hedges launched = %d, want 1", got)
	}
	if got := m.hedgeWins.Load(); got != 1 {
		t.Errorf("hedge wins = %d, want 1", got)
	}
	// The losing primary was cancelled, not failed: its health state must
	// be untouched, or hedging would progressively bench the whole fleet.
	if primary.availableAt().After(time.Now()) {
		t.Error("hedge loser was put on cooldown")
	}
	primary.mu.Lock()
	failures := primary.failures
	primary.mu.Unlock()
	if failures != 0 {
		t.Errorf("hedge loser charged %d failures", failures)
	}
}

// TestHedgeNotLaunchedWhenPrimaryIsFast: a primary answering inside the
// hedge delay must not spend a speculative request.
func TestHedgeNotLaunchedWhenPrimaryIsFast(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		fmt.Fprint(w, fakeResult)
	}))
	defer ts.Close()
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		fmt.Fprint(w, fakeResult)
	}))
	defer ts2.Close()

	m := &Metrics{}
	be, err := NewHTTPBackend([]string{ts.URL, ts2.URL}, HTTPBackendOptions{
		Metrics: m, Hedge: true, HedgeMinDelay: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.attempt(context.Background(), be.endpoints[0], []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("%d requests for a fast unit, want 1", got)
	}
	if got := m.hedgeLaunched.Load(); got != 0 {
		t.Errorf("hedges launched = %d, want 0", got)
	}
}

// TestRunCancellationIsTerminal pins the satellite contract: a context
// cancelled mid-attempt ends the unit immediately instead of burning the
// remaining retries against other endpoints.
func TestRunCancellationIsTerminal(t *testing.T) {
	var calls atomic.Int32
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		started <- struct{}{}
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(release) // before ts.Close: the unread POST body hides client hang-ups from the handler

	be, err := NewHTTPBackend([]string{ts.URL}, HTTPBackendOptions{
		MaxAttempts: 8, BaseBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	_, err = be.Run(ctx, testUnits(t)[0])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("cancelled unit made %d attempts, want 1", got)
	}
}

// TestEndpointHealthRecovery pins the health state machine: consecutive
// failures stack cooldown, and one success fully resets the endpoint —
// failure count and cooldown both — so a recovered daemon rejoins the
// rotation at full weight.
func TestEndpointHealthRecovery(t *testing.T) {
	var fails atomic.Int32
	fails.Store(2)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fails.Add(-1) >= 0 {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintln(w, `{"error":"boom","status":"error"}`)
			return
		}
		fmt.Fprint(w, fakeResult)
	}))
	defer ts.Close()

	be, err := NewHTTPBackend([]string{ts.URL}, HTTPBackendOptions{
		BaseBackoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := be.endpoints[0]
	for i := 1; i <= 2; i++ {
		if _, err := be.post(context.Background(), e, []byte(`{}`)); err == nil {
			t.Fatalf("failure %d did not error", i)
		}
		e.mu.Lock()
		failures := e.failures
		e.mu.Unlock()
		if failures != i {
			t.Fatalf("after failure %d: failures = %d", i, failures)
		}
	}
	if !e.availableAt().After(time.Now()) {
		t.Fatal("failing endpoint has no cooldown")
	}
	if _, err := be.post(context.Background(), e, []byte(`{}`)); err != nil {
		t.Fatalf("recovery request: %v", err)
	}
	e.mu.Lock()
	failures := e.failures
	e.mu.Unlock()
	if failures != 0 {
		t.Errorf("failures after recovery = %d, want 0", failures)
	}
	if e.availableAt().After(time.Now()) {
		t.Error("recovered endpoint still on cooldown")
	}
}
